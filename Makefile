# Developer entry points. `make check` is the gate every change must pass:
# build + vet + gofmt drift + simlint + race-enabled tests.

GO ?= go

.PHONY: all build vet test race fmt-check lint lint-fix-check typestate-smoke check bench alloc-check fault-smoke sweep-smoke oracle-smoke baseline clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fails (and lists the offenders) if any file is not gofmt-formatted.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# simlint is the repository's own static analysis (internal/lint): it
# enforces determinism (no wall clock, no math/rand, no order-sensitive map
# iteration, no goroutines in sim-scheduled code), sim-time and unit
# discipline (name-based and flow-sensitive), sweep worker-race and
# cache-key completeness, the telemetry nil-safety contract, the
# //inv: interval contracts (range proofs, narrow-counter overflow,
# static<->runtime check coverage), and the //state: typestate contracts
# (pooled-packet exactly-once free, scheduler handle lifecycles, ownership
# transfer). -stale-allow also fails the build on //lint:allow directives
# that no longer suppress anything. Stdlib-only.
lint:
	$(GO) run ./cmd/simlint -stale-allow ./...

# Autofix regression gate: apply simlint -fix to the before/after fixtures
# and require byte-identical golden output plus an idempotent second pass.
lint-fix-check:
	$(GO) test -run 'TestFixGoldens|TestApplyEdits|TestRunFix' ./internal/lint ./cmd/simlint

# Typestate smoke: the engine's join/widening unit tests and the three
# lifecycle-analyzer fixtures (poollife, handlestate, ownxfer, plus the
# clean Port->Link->Host hand-off), then the packet pool's checkdebug
# poison tests — the runtime tripwire behind the static exactly-once-free
# proof — in both build-tag modes.
typestate-smoke:
	$(GO) test -run 'JoinEnv|MergeAtJoin|LoopWidening|Fixtures/(poollife|handlestate|ownxfer|ownclean)' ./internal/lint
	$(GO) test -tags checkdebug ./internal/packet
	$(GO) test ./internal/packet

check: build vet fmt-check lint lint-fix-check typestate-smoke race fault-smoke sweep-smoke oracle-smoke

# Fault-injection smoke: a full-mix faulted sweep must complete, stay
# deterministic, conserve every packet/byte, and keep DCTCP+ no worse than
# DCTCP per fault class (the resilience gate behind EXPERIMENTS.md).
fault-smoke:
	$(GO) test -run 'Faulted|Conservation|Resilience|RequestRetry' \
		./internal/fault ./internal/exp ./internal/workload

# Sweep-orchestration smoke: run a tiny grid twice against the same cache.
# The second pass must be pure cache replay (100% hit rate) and its
# aggregate table must be byte-identical to the first pass — the
# end-to-end guarantee behind internal/sweep's content-addressed cache.
sweep-smoke:
	@set -e; dir=$$(mktemp -d); trap 'rm -rf "$$dir"' EXIT; \
	$(GO) build -o "$$dir/sweep" ./cmd/sweep; \
	args="-q -name smoke -protocols dctcp+,dctcp -flows 20,40 -seeds 1,2 \
		-rounds 6 -warmup 2 -rtomin 10ms -cache-dir $$dir/cache"; \
	"$$dir/sweep" $$args >"$$dir/first.txt"; \
	"$$dir/sweep" $$args -resume >"$$dir/second.txt"; \
	grep -q "0 run, 8 cached (hit rate 100%)" "$$dir/second.txt" || { \
		echo "sweep-smoke: second pass was not pure cache replay:"; \
		cat "$$dir/second.txt"; exit 1; }; \
	sed -n '1,/^$$/p' "$$dir/first.txt" >"$$dir/first.tbl"; \
	sed -n '1,/^$$/p' "$$dir/second.txt" >"$$dir/second.tbl"; \
	cmp -s "$$dir/first.tbl" "$$dir/second.tbl" || { \
		echo "sweep-smoke: cached aggregates differ from first pass:"; \
		diff "$$dir/first.tbl" "$$dir/second.tbl"; exit 1; }; \
	echo "sweep-smoke: 8/8 cache hits, aggregates byte-identical"

# Trace-oracle conformance smoke: the rule-level oracle tests, the full
# protocol × fault-class matrix (TestOracleMatrix) and the metamorphic
# harness must run violation-free, then the incast command's -oracle gate
# must pass a faulted multi-protocol sweep end to end. On violation the
# command writes the minimized event-window trace to $(ORACLE_TRACE),
# which CI uploads as the failure artifact.
ORACLE_TRACE ?= oracle-violations.txt
oracle-smoke:
	$(GO) test ./internal/oracle
	$(GO) test -run 'Oracle' ./internal/exp ./internal/sweep
	$(GO) run ./cmd/incast -protocols tcp,dctcp,dctcp+,d2tcp+ -flows 48 \
		-rounds 4 -warmup 1 -faults all -oracle -oracle-trace $(ORACLE_TRACE) >/dev/null
	@echo "oracle-smoke: protocol x fault matrix oracle-clean"

# Benchmarks with the alloc column: the sim, netsim and tcp hot paths must
# report 0 allocs/op (the AllocsPerRun tests in those packages pin it).
bench:
	$(GO) test -bench=. -benchmem ./internal/sim ./internal/netsim ./internal/tcp

# Just the allocation-budget regression tests, without the benchmarks.
alloc-check:
	$(GO) test -run 'AllocBudget|AllocFree' ./internal/sim ./internal/netsim ./internal/tcp

# Regenerate the committed telemetry baseline manifest (reduced scale; see
# cmd/report -h for the full-figure knobs).
baseline:
	$(GO) run ./cmd/report -rounds 24 -warmup 6 -baseline BENCH_baseline.json

clean:
	$(GO) clean ./...
