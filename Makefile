# Developer entry points. `make check` is the gate every change must pass:
# build + vet + gofmt drift + simlint + race-enabled tests.

GO ?= go

.PHONY: all build vet test race fmt-check lint check bench alloc-check fault-smoke baseline clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fails (and lists the offenders) if any file is not gofmt-formatted.
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# simlint is the repository's own static analysis (internal/lint): it
# enforces determinism (no wall clock, no math/rand, no order-sensitive map
# iteration, no goroutines in sim-scheduled code), sim-time and unit
# discipline, and the telemetry nil-safety contract. Stdlib-only.
lint:
	$(GO) run ./cmd/simlint ./...

check: build vet fmt-check lint race fault-smoke

# Fault-injection smoke: a full-mix faulted sweep must complete, stay
# deterministic, conserve every packet/byte, and keep DCTCP+ no worse than
# DCTCP per fault class (the resilience gate behind EXPERIMENTS.md).
fault-smoke:
	$(GO) test -run 'Faulted|Conservation|Resilience|RequestRetry' \
		./internal/fault ./internal/exp ./internal/workload

# Benchmarks with the alloc column: the sim, netsim and tcp hot paths must
# report 0 allocs/op (the AllocsPerRun tests in those packages pin it).
bench:
	$(GO) test -bench=. -benchmem ./internal/sim ./internal/netsim ./internal/tcp

# Just the allocation-budget regression tests, without the benchmarks.
alloc-check:
	$(GO) test -run 'AllocBudget|AllocFree' ./internal/sim ./internal/netsim ./internal/tcp

# Regenerate the committed telemetry baseline manifest (reduced scale; see
# cmd/report -h for the full-figure knobs).
baseline:
	$(GO) run ./cmd/report -rounds 24 -warmup 6 -baseline BENCH_baseline.json

clean:
	$(GO) clean ./...
