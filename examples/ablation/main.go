// Ablation sweeps the DCTCP+ design parameters the paper's §V-D gives
// guidance for — backoff_time_unit and divisor_factor — plus the
// desynchronization switch, using the library's custom-factory hook. It is
// the runnable counterpart of the BenchmarkAblation_* benches.
package main

import (
	"fmt"

	dcp "dctcpplus"
)

const flows = 120

func run(cfg dcp.EnhancementConfig) dcp.IncastResult {
	o := dcp.DefaultIncastOptions(dcp.ProtoDCTCPPlus, flows)
	o.Rounds = 30
	o.WarmupRounds = 8
	o.Factory = dcp.DCTCPPlusFactory(o.RTOMin, o.Testbed.Seed, cfg)
	return dcp.RunIncast(o)
}

func main() {
	fmt.Printf("DCTCP+ parameter ablations at N=%d concurrent flows\n\n", flows)

	fmt.Println("backoff_time_unit (additive slow_time step):")
	for _, unit := range []dcp.Duration{
		100 * dcp.Microsecond, 200 * dcp.Microsecond, 400 * dcp.Microsecond,
		800 * dcp.Microsecond, 1600 * dcp.Microsecond, 3200 * dcp.Microsecond,
	} {
		cfg := dcp.DefaultEnhancementConfig()
		cfg.BackoffUnit = unit
		r := run(cfg)
		fmt.Printf("  unit=%-8v goodput=%5.0f Mbps  fct=%7.2fms  timeouts=%d\n",
			unit, r.GoodputMbps.Mean, r.FCTms.Mean, r.Timeouts)
	}
	fmt.Println("  (§V-D: too small cannot relieve severe fan-in congestion;")
	fmt.Println("   too large over-throttles and wastes bandwidth)")

	fmt.Println("\ndivisor_factor (multiplicative slow_time decrease):")
	for _, div := range []float64{1.25, 1.5, 2, 4, 8} {
		cfg := dcp.DefaultEnhancementConfig()
		cfg.DivisorFactor = div
		r := run(cfg)
		fmt.Printf("  divisor=%-5v goodput=%5.0f Mbps  fct=%7.2fms  timeouts=%d\n",
			div, r.GoodputMbps.Mean, r.FCTms.Mean, r.Timeouts)
	}
	fmt.Println("  (§V-D: too big recovers prematurely; too conservative")
	fmt.Println("   retards the rate regulation)")

	fmt.Println("\ndesynchronization (randomized vs deterministic backoff):")
	for _, randomize := range []bool{true, false} {
		cfg := dcp.DefaultEnhancementConfig()
		cfg.Randomize = randomize
		r := run(cfg)
		fmt.Printf("  randomize=%-5v goodput=%5.0f Mbps  fct=%7.2fms  timeouts=%d\n",
			randomize, r.GoodputMbps.Mean, r.FCTms.Mean, r.Timeouts)
	}
}
