// Quickstart: run one incast experiment under DCTCP+ and print the
// headline numbers. This is the smallest end-to-end use of the library:
// pick a protocol, configure the paper's testbed, run, read the summary.
package main

import (
	"fmt"

	dcp "dctcpplus"
)

func main() {
	// 100 concurrent flows answer a barrier-synchronized aggregator with
	// 1MB/100 bytes each, over the paper's 2-tier GbE testbed.
	opts := dcp.DefaultIncastOptions(dcp.ProtoDCTCPPlus, 100)
	opts.Rounds = 30
	opts.WarmupRounds = 8

	res := dcp.RunIncast(opts)

	fmt.Println("DCTCP+ incast, N = 100 concurrent flows, 1MB per round")
	fmt.Printf("  goodput:     %.0f Mbps (stddev %.0f)\n",
		res.GoodputMbps.Mean, res.GoodputMbps.Std)
	fmt.Printf("  FCT:         mean %.2f ms, p95 %.2f ms, p99 %.2f ms\n",
		res.FCTms.Mean, res.FCTms.P95, res.FCTms.P99)
	fmt.Printf("  timeouts:    %d (FLoss %d / LAck %d)\n",
		res.Timeouts, res.FLossTO, res.LAckTO)
	fmt.Printf("  drops at bottleneck: %d\n", res.BottleneckDrops)

	// The same load under plain DCTCP collapses into RTO-dominated rounds.
	opts.Protocol = dcp.ProtoDCTCP
	base := dcp.RunIncast(opts)
	fmt.Println("\nPlain DCTCP under the same load:")
	fmt.Printf("  goodput:     %.0f Mbps\n", base.GoodputMbps.Mean)
	fmt.Printf("  FCT:         mean %.2f ms\n", base.FCTms.Mean)
	fmt.Printf("  timeouts:    %d\n", base.Timeouts)
}
