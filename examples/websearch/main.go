// Websearch models the partition/aggregate pattern the paper's
// introduction motivates (Google web search, Bing, MapReduce shuffles): a
// front-end fans a query out to hundreds of leaf workers and can only
// answer once the slowest response arrives, so the *tail* of the fan-in
// FCT is the user-visible latency.
//
// The example sweeps the fan-in width across the three protocols and
// reports the tail view: at what width does each transport stop delivering
// interactive latency?
package main

import (
	"fmt"

	dcp "dctcpplus"
)

func main() {
	widths := []int{20, 50, 100, 150, 200}
	protocols := []dcp.Protocol{dcp.ProtoTCP, dcp.ProtoDCTCP, dcp.ProtoDCTCPPlus}

	// A 200ms answer budget, a common interactive SLA: each query must
	// aggregate all responses within it.
	const slaMS = 200.0

	fmt.Println("Partition/aggregate fan-in: p99 round latency (ms) vs fan-in width")
	fmt.Printf("%-10s", "width")
	for _, p := range protocols {
		fmt.Printf(" %12s", p)
	}
	fmt.Println()

	type key struct {
		p dcp.Protocol
		n int
	}
	meets := map[key]bool{}
	for _, n := range widths {
		fmt.Printf("%-10d", n)
		for _, p := range protocols {
			o := dcp.DefaultIncastOptions(p, n)
			o.Rounds = 30
			o.WarmupRounds = 8
			r := dcp.RunIncast(o)
			fmt.Printf(" %10.1fms", r.FCTms.P99)
			meets[key{p, n}] = r.FCTms.P99 < slaMS
		}
		fmt.Println()
	}

	fmt.Printf("\nWidths meeting a %.0fms p99 SLA:\n", slaMS)
	for _, p := range protocols {
		max := 0
		for _, n := range widths {
			if meets[key{p, n}] && n > max {
				max = n
			}
		}
		if max == 0 {
			fmt.Printf("  %-14s none of the tested widths\n", p)
		} else {
			fmt.Printf("  %-14s up to %d-way fan-in\n", p, max)
		}
	}
}
