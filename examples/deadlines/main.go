// Deadlines demonstrates the §VII composition of the enhancement mechanism
// with D2TCP (deadline-aware DCTCP): a high fan-in incast where each
// responder carries an urgency factor. Plain D2TCP differentiates
// bandwidth by deadline but still collapses under massive fan-in; d2tcp+
// keeps the differentiation while surviving hundreds of flows.
package main

import (
	"fmt"

	dcp "dctcpplus"
)

func main() {
	const flows = 120
	fmt.Printf("Mixed-deadline incast, N=%d (urgencies cycle 0.5 / 1 / 2)\n\n", flows)
	fmt.Printf("%-10s %12s %12s %12s %10s\n",
		"protocol", "goodput", "fct.mean", "fct.p99", "timeouts")
	for _, p := range []dcp.Protocol{dcp.ProtoD2TCP, dcp.ProtoD2TCPPlus, dcp.ProtoDCTCPPlus} {
		o := dcp.DefaultIncastOptions(p, flows)
		o.Rounds = 30
		o.WarmupRounds = 8
		r := dcp.RunIncast(o)
		fmt.Printf("%-10s %9.0f Mb %10.2fms %10.2fms %10d\n",
			p, r.GoodputMbps.Mean, r.FCTms.Mean, r.FCTms.P99, r.Timeouts)
	}
	fmt.Println("\nd2tcp collapses like DCTCP once the fan-in exceeds the pipeline;")
	fmt.Println("wrapping it with the DCTCP+ mechanism (d2tcp+) restores liveness")
	fmt.Println("while the gamma-corrected backoff keeps differentiating deadlines.")
}
