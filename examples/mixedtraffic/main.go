// Mixedtraffic reproduces the §VI-C scenario as a library user would: an
// incast workload competing with two persistent bulk transfers through the
// same bottleneck port (Fig. 10). It shows the performance-isolation
// property the paper claims: DCTCP+ keeps short-flow FCT low without
// starving the long flows.
package main

import (
	"fmt"

	dcp "dctcpplus"
)

func main() {
	protocols := []dcp.Protocol{dcp.ProtoTCP, dcp.ProtoDCTCP, dcp.ProtoDCTCPPlus}
	const flows = 80

	fmt.Printf("Incast (N=%d, 1MB/round) sharing the bottleneck with 2 persistent flows\n\n", flows)
	fmt.Printf("%-14s %12s %12s %14s %18s %6s\n",
		"protocol", "goodput", "fct.p99", "longflow.mean", "longflow.per-flow", "jain")
	for _, p := range protocols {
		o := dcp.DefaultBackgroundIncastOptions(p, flows)
		o.Incast.Rounds = 30
		o.Incast.WarmupRounds = 8
		o.ChunkBytes = 1 << 20
		r := dcp.RunBackgroundIncast(o)
		fmt.Printf("%-14s %9.0f Mb %10.2fms %11.0f Mb   %-15v %6.2f\n",
			p, r.GoodputMbps.Mean, r.FCTms.P99, r.LongFlowMbps.Mean,
			fmtMbps(r.PerFlowMeanMbps), dcp.JainIndex(r.PerFlowMeanMbps))
	}

	fmt.Println("\nReading the table: the incast rounds should keep millisecond-scale")
	fmt.Println("p99 FCT only under DCTCP+, while the two long flows still share the")
	fmt.Println("leftover capacity (the paper reports ~400 Mbps each).")
}

func fmtMbps(v []float64) string {
	s := "["
	for i, m := range v {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.0f", m)
	}
	return s + "]"
}
