module dctcpplus

go 1.22
