package sim

import (
	"testing"
	"testing/quick"
)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler()
	var got []int
	s.At(30*Time(Microsecond), func() { got = append(got, 3) })
	s.At(10*Time(Microsecond), func() { got = append(got, 1) })
	s.At(20*Time(Microsecond), func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30*Time(Microsecond) {
		t.Errorf("Now = %v, want 30us", s.Now())
	}
}

func TestSchedulerFIFOAtSameInstant(t *testing.T) {
	s := NewScheduler()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestSchedulerAfterAndClockAdvance(t *testing.T) {
	s := NewScheduler()
	var at1, at2 Time
	s.After(100, func() {
		at1 = s.Now()
		s.After(50, func() { at2 = s.Now() })
	})
	s.Run()
	if at1 != 100 || at2 != 150 {
		t.Errorf("fired at %d,%d want 100,150", at1, at2)
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	e := s.At(10, func() { fired = true })
	s.Cancel(e)
	s.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !e.Cancelled() {
		t.Error("event not marked cancelled")
	}
	// Double cancel and cancel-nil must be harmless.
	s.Cancel(e)
	s.Cancel(nil)
}

func TestSchedulerCancelMiddleOfHeap(t *testing.T) {
	s := NewScheduler()
	var got []int
	var evs []*Event
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, s.At(Time(i), func() { got = append(got, i) }))
	}
	// Cancel all odd events.
	for i := 1; i < 20; i += 2 {
		s.Cancel(evs[i])
	}
	s.Run()
	if len(got) != 10 {
		t.Fatalf("got %d events, want 10", len(got))
	}
	for _, v := range got {
		if v%2 != 0 {
			t.Errorf("odd (cancelled) event %d fired", v)
		}
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var count int
	for i := 1; i <= 10; i++ {
		s.At(Time(i)*Time(Millisecond), func() { count++ })
	}
	s.RunUntil(Time(5) * Time(Millisecond))
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	if s.Pending() != 5 {
		t.Errorf("pending = %d, want 5", s.Pending())
	}
	s.Run()
	if count != 10 {
		t.Errorf("count after Run = %d, want 10", count)
	}
}

func TestSchedulerRunFor(t *testing.T) {
	s := NewScheduler()
	var count int
	for i := 1; i <= 4; i++ {
		s.At(Time(i)*10, func() { count++ })
	}
	s.RunFor(20) // events at 10, 20
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
}

func TestSchedulerHalt(t *testing.T) {
	s := NewScheduler()
	var count int
	for i := 0; i < 10; i++ {
		s.At(Time(i), func() {
			count++
			if count == 3 {
				s.Halt()
			}
		})
	}
	s.Run()
	if count != 3 {
		t.Errorf("count = %d, want 3 after Halt", count)
	}
	if s.Pending() != 7 {
		t.Errorf("pending = %d, want 7", s.Pending())
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewScheduler()
	s.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		s.At(50, func() {})
	})
	s.Run()
}

func TestNegativeAfterClampsToNow(t *testing.T) {
	s := NewScheduler()
	s.At(100, func() {
		s.After(-5, func() {
			if s.Now() != 100 {
				t.Errorf("negative After fired at %v, want 100", s.Now())
			}
		})
	})
	s.Run()
}

func TestTimerResetStop(t *testing.T) {
	s := NewScheduler()
	fires := 0
	tm := NewTimer(s, func() { fires++ })
	if tm.Armed() {
		t.Error("new timer armed")
	}
	tm.Reset(100)
	if !tm.Armed() || tm.Deadline() != 100 {
		t.Errorf("deadline = %v, want 100", tm.Deadline())
	}
	tm.Reset(200) // replaces the first arm
	s.Run()
	if fires != 1 {
		t.Errorf("fires = %d, want 1 (Reset must replace)", fires)
	}
	if tm.Armed() {
		t.Error("timer still armed after fire")
	}

	tm.Reset(50)
	tm.Stop()
	s.Run()
	if fires != 1 {
		t.Error("stopped timer fired")
	}
	if tm.Deadline() != Infinity {
		t.Error("disarmed deadline should be Infinity")
	}
}

func TestTimerResetAt(t *testing.T) {
	s := NewScheduler()
	var firedAt Time = -1
	tm := NewTimer(s, func() { firedAt = s.Now() })
	tm.ResetAt(77)
	s.Run()
	if firedAt != 77 {
		t.Errorf("fired at %v, want 77", firedAt)
	}
}

func TestTimerRearmFromCallback(t *testing.T) {
	s := NewScheduler()
	fires := 0
	var tm *Timer
	tm = NewTimer(s, func() {
		fires++
		if fires < 3 {
			tm.Reset(10)
		}
	})
	tm.Reset(10)
	s.Run()
	if fires != 3 {
		t.Errorf("fires = %d, want 3", fires)
	}
	if s.Now() != 30 {
		t.Errorf("now = %v, want 30", s.Now())
	}
}

// Property: for any batch of event delays, the scheduler fires them in
// non-decreasing time order and ends with the clock at the max.
func TestSchedulerOrderProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewScheduler()
		var fired []Time
		var max Time
		for _, d := range delays {
			tt := Time(d)
			if tt > max {
				max = tt
			}
			s.At(tt, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(delays) == 0 || s.Now() == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFiredCounter(t *testing.T) {
	s := NewScheduler()
	for i := 0; i < 5; i++ {
		s.At(Time(i), func() {})
	}
	s.Run()
	if s.Fired() != 5 {
		t.Errorf("Fired = %d, want 5", s.Fired())
	}
}
