package sim

import "testing"

func BenchmarkSchedulerChurn(b *testing.B) {
	// Steady-state event churn: each fired event schedules a successor,
	// with a 64-event backlog — the simulator's hot loop.
	s := NewScheduler()
	var fn func()
	fn = func() { s.After(10, fn) }
	for i := 0; i < 64; i++ {
		s.After(Duration(i), fn)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}

func BenchmarkSchedulerCancel(b *testing.B) {
	s := NewScheduler()
	evs := make([]*Event, 0, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(evs) == cap(evs) {
			for _, e := range evs {
				s.Cancel(e)
			}
			evs = evs[:0]
		}
		evs = append(evs, s.At(s.Now()+Time(i%1000)+1, func() {}))
	}
}

func BenchmarkTimerReset(b *testing.B) {
	s := NewScheduler()
	tm := NewTimer(s, func() {})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Reset(Duration(100 + i%10))
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkRNGDuration(b *testing.B) {
	r := NewRNG(1)
	var sink Duration
	for i := 0; i < b.N; i++ {
		sink += r.Duration(100 * Microsecond)
	}
	_ = sink
}

func BenchmarkRNGExp(b *testing.B) {
	r := NewRNG(1)
	var sink Duration
	for i := 0; i < b.N; i++ {
		sink += r.Exp(Millisecond)
	}
	_ = sink
}

// TestSchedulerAllocBudget pins the engine's steady-state budget at zero:
// once the event freelist is primed, churn (fire + reschedule), timer
// rearming and cancellation all recycle Event objects instead of minting
// new ones.
func TestSchedulerAllocBudget(t *testing.T) {
	s := NewScheduler()
	var fn func()
	fn = func() { s.After(10, fn) }
	for i := 0; i < 64; i++ {
		s.After(Duration(i), fn)
	}
	for i := 0; i < 128; i++ {
		s.Step()
	}
	if got := testing.AllocsPerRun(500, func() { s.Step() }); got != 0 {
		t.Fatalf("Step allocates %.1f times per event, want 0", got)
	}

	tm := NewTimer(s, func() {})
	tm.Reset(Second)
	if got := testing.AllocsPerRun(500, func() { tm.Reset(Second) }); got != 0 {
		t.Fatalf("Timer.Reset allocates %.1f times per rearm, want 0", got)
	}

	noop := func() {}
	s.Cancel(s.After(Second, noop)) // prime the one extra freelist slot
	if got := testing.AllocsPerRun(500, func() { s.Cancel(s.After(Second, noop)) }); got != 0 {
		t.Fatalf("schedule+cancel allocates %.1f times per cycle, want 0", got)
	}
}
