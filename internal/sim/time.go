// Package sim provides the discrete-event simulation engine underlying the
// DCTCP+ reproduction: a virtual clock with nanosecond resolution, a
// binary-heap event scheduler with cancellable timers, and a deterministic
// pseudo-random number generator.
//
// All protocol and network models in this repository are driven exclusively
// by this engine; no wall-clock time is consulted anywhere, so a run is a
// pure function of its configuration and seed.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, measured in integer nanoseconds since the
// start of the simulation. The zero Time is the simulation epoch.
//
// int64 nanoseconds give a range of roughly 292 years, far beyond any
// simulated experiment; arithmetic never needs to worry about overflow in
// practice.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration so the familiar unit constants can be used, but it is a
// distinct type to keep virtual and wall-clock time from mixing.
type Duration int64

// Convenient duration units, matching time package semantics.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Infinity is a time later than any event a simulation will ever schedule.
const Infinity Time = 1<<63 - 1

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns the time as a floating-point number of seconds since the
// simulation epoch.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Micros returns the time as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

// String formats the time as seconds with microsecond precision.
func (t Time) String() string {
	if t == Infinity {
		return "+inf"
	}
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// Seconds returns the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Micros returns the duration as floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// Millis returns the duration as floating-point milliseconds.
func (d Duration) Millis() float64 { return float64(d) / 1e6 }

// Std converts the virtual duration to a time.Duration for formatting.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// String formats the duration using the standard library's rendering.
func (d Duration) String() string { return time.Duration(d).String() }

// DurationOf converts a standard library duration into a virtual Duration.
func DurationOf(d time.Duration) Duration { return Duration(d) }

// Scale returns d scaled by the factor f, rounding toward zero.
func (d Duration) Scale(f float64) Duration { return Duration(float64(d) * f) }
