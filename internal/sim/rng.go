package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (splitmix64 core). Every stochastic decision in the simulator — the
// randomized slow_time backoff in DCTCP+, workload inter-arrival times,
// flow-size sampling — draws from an RNG seeded from the experiment config,
// so runs are exactly reproducible.
//
// splitmix64 passes BigCrush, has a full 2^64 period per stream, and is
// allocation-free. We deliberately avoid math/rand so that the generator's
// sequence is pinned by this repository rather than by the Go release.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds give
// independent-looking streams; seed 0 is valid.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives a new independent generator from this one. Used to give each
// flow/host its own stream so that adding a flow does not perturb the draws
// seen by existing flows.
func (r *RNG) Fork() *RNG {
	// Mix the next output into a fresh state with an odd constant so the
	// child stream decorrelates from the parent's continuation.
	return &RNG{state: r.Uint64()*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9}
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: RNG.Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: RNG.Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Duration returns a uniform Duration in [0, d). A non-positive d yields 0.
// This is the primitive behind the paper's random(backoff_time_unit):
// "we randomize the sending time by making time unit backoff_time_unit
// evenly distributed for slow_time" (Algorithm 1).
func (r *RNG) Duration(d Duration) Duration {
	if d <= 0 {
		return 0
	}
	return Duration(r.Int63n(int64(d)))
}

// Exp returns an exponentially distributed duration with the given mean,
// used for Poisson inter-arrival processes in the benchmark workload.
func (r *RNG) Exp(mean Duration) Duration {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	// Guard against log(0).
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return Duration(-float64(mean) * math.Log(u))
}

// Pareto returns a bounded Pareto sample in [lo, hi] with shape alpha,
// the standard heavy-tailed model for data-center flow sizes.
func (r *RNG) Pareto(lo, hi float64, alpha float64) float64 {
	if lo <= 0 || hi <= lo {
		return lo
	}
	u := r.Float64()
	la := math.Pow(lo, alpha)
	ha := math.Pow(hi, alpha)
	return math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/alpha)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the n elements accessed via swap uniformly at random.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}
