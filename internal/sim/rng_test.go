package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds collided %d/1000 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestRNGFloat64Mean(t *testing.T) {
	r := NewRNG(99)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Errorf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGDuration(t *testing.T) {
	r := NewRNG(11)
	d := Duration(100 * Microsecond)
	for i := 0; i < 10000; i++ {
		v := r.Duration(d)
		if v < 0 || v >= d {
			t.Fatalf("Duration out of range: %v", v)
		}
	}
	if r.Duration(0) != 0 || r.Duration(-5) != 0 {
		t.Error("non-positive Duration should return 0")
	}
}

// Property: the mean of random(backoff_time_unit) draws approaches unit/2,
// which is what makes the paper's AIMD backoff average to unit/2 per step.
func TestRNGDurationMean(t *testing.T) {
	r := NewRNG(2026)
	unit := Duration(100 * Microsecond)
	var sum Duration
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Duration(unit)
	}
	mean := float64(sum) / n
	want := float64(unit) / 2
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("mean draw = %v, want ~%v", mean, want)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(314)
	mean := Duration(1 * Millisecond)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(r.Exp(mean))
	}
	got := sum / n
	if math.Abs(got-float64(mean))/float64(mean) > 0.02 {
		t.Errorf("exp mean = %v, want ~%v", got, float64(mean))
	}
	if r.Exp(0) != 0 {
		t.Error("Exp(0) should be 0")
	}
}

func TestRNGParetoBounds(t *testing.T) {
	r := NewRNG(8)
	for i := 0; i < 10000; i++ {
		v := r.Pareto(1e3, 1e6, 1.1)
		if v < 1e3-1 || v > 1e6+1 {
			t.Fatalf("Pareto out of bounds: %v", v)
		}
	}
	if r.Pareto(0, 10, 1) != 0 {
		t.Error("degenerate Pareto lo<=0 should return lo")
	}
	if r.Pareto(10, 5, 1) != 10 {
		t.Error("degenerate Pareto hi<=lo should return lo")
	}
}

func TestRNGParetoHeavyTail(t *testing.T) {
	// With alpha close to 1, the empirical mean should sit well above the
	// median — a sanity check that we actually get a heavy tail.
	r := NewRNG(77)
	const n = 50000
	vals := make([]float64, n)
	var sum float64
	for i := range vals {
		vals[i] = r.Pareto(1e3, 1e8, 1.05)
		sum += vals[i]
	}
	mean := sum / n
	// Median of bounded pareto with these params is near lo*2^(1/alpha).
	below := 0
	for _, v := range vals {
		if v < mean {
			below++
		}
	}
	if float64(below)/n < 0.75 {
		t.Errorf("expected heavy tail (most samples below mean); below=%d/%d", below, n)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRNGPermProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGFork(t *testing.T) {
	parent := NewRNG(1)
	child := parent.Fork()
	// Child stream should not mirror the parent continuation.
	same := 0
	for i := 0; i < 1000; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("forked stream collided %d/1000 times", same)
	}
}

func TestRNGShuffle(t *testing.T) {
	r := NewRNG(6)
	v := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	r.Shuffle(len(v), func(i, j int) { v[i], v[j] = v[j], v[i] })
	seen := make([]bool, 10)
	for _, x := range v {
		seen[x] = true
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("element %d lost in shuffle", i)
		}
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(0).Add(100 * Microsecond)
	if tm != Time(100_000) {
		t.Errorf("Add = %v", tm)
	}
	if tm.Sub(Time(40_000)) != 60*Microsecond {
		t.Error("Sub wrong")
	}
	if !Time(5).Before(Time(6)) || !Time(6).After(Time(5)) {
		t.Error("Before/After wrong")
	}
	if Time(1_500_000_000).Seconds() != 1.5 {
		t.Error("Seconds wrong")
	}
	if Duration(1500).Micros() != 1.5 {
		t.Error("Micros wrong")
	}
	if (2 * Millisecond).Millis() != 2 {
		t.Error("Millis wrong")
	}
	if Infinity.String() != "+inf" {
		t.Error("Infinity string")
	}
	if (100 * Microsecond).Scale(0.5) != 50*Microsecond {
		t.Error("Scale wrong")
	}
}
