package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events are created through
// Scheduler.At/After and may be cancelled before they fire.
type Event struct {
	when Time
	seq  uint64 // tie-breaker: FIFO among events at the same instant
	fn   func()
	idx  int // heap index, -1 once removed
}

// When returns the virtual time at which the event is (or was) due.
func (e *Event) When() Time { return e.when }

// Cancelled reports whether the event has been removed from the queue,
// either by firing or by an explicit Cancel.
func (e *Event) Cancelled() bool { return e.idx < 0 }

// eventQueue implements heap.Interface ordered by (when, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*q = old[:n-1]
	return e
}

// Scheduler is the discrete-event core: a virtual clock plus a priority
// queue of pending events. It is single-threaded by design — the entire
// simulation advances by popping the earliest event and running its
// callback, which may schedule further events.
type Scheduler struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	fired   uint64
	halted  bool
}

// NewScheduler returns an empty scheduler positioned at the epoch.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Pending returns the number of events currently queued.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Fired returns the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// At schedules fn to run at time t and returns a cancellable handle.
// Scheduling in the past panics: it always indicates a model bug.
func (s *Scheduler) At(t Time, fn func()) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e := &Event{when: t, seq: s.nextSeq, fn: fn}
	s.nextSeq++
	heap.Push(&s.queue, e)
	return e
}

// After schedules fn to run d after the current time.
func (s *Scheduler) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// Cancel removes a pending event so it never fires. Cancelling an event that
// has already fired or been cancelled is a harmless no-op, which lets timer
// owners cancel unconditionally.
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.idx < 0 {
		return
	}
	heap.Remove(&s.queue, e.idx)
	e.idx = -1
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed.
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*Event)
	// Monotone-clock invariant, asserted inline because internal/check
	// imports this package: At() rejects past scheduling at insertion, and
	// this guards the pop side against heap corruption.
	if e.when < s.now {
		panic(fmt.Sprintf("sim: clock would move backwards: %v -> %v", s.now, e.when))
	}
	s.now = e.when
	s.fired++
	e.fn()
	return true
}

// Run executes events until the queue drains or Halt is called.
func (s *Scheduler) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// RunUntil executes events with timestamps at or before deadline. The clock
// finishes at min(deadline, time of last event) — it does not jump forward
// past the final event.
func (s *Scheduler) RunUntil(deadline Time) {
	s.halted = false
	for !s.halted && len(s.queue) > 0 && s.queue[0].when <= deadline {
		s.Step()
	}
}

// RunFor executes events for d of virtual time from the current instant.
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// Halt stops Run/RunUntil after the currently executing event returns.
// Pending events remain queued.
func (s *Scheduler) Halt() { s.halted = true }

// Timer is a restartable one-shot timer bound to a scheduler, in the style
// of kernel timers: Reset re-arms it (replacing any pending expiry), Stop
// disarms it. The callback is fixed at construction.
type Timer struct {
	s  *Scheduler
	fn func()
	ev *Event
}

// NewTimer creates a disarmed timer that will invoke fn on expiry.
func NewTimer(s *Scheduler, fn func()) *Timer {
	return &Timer{s: s, fn: fn}
}

// Reset (re-)arms the timer to fire d from now.
func (t *Timer) Reset(d Duration) {
	t.s.Cancel(t.ev)
	t.ev = t.s.After(d, func() {
		t.ev = nil
		t.fn()
	})
}

// ResetAt (re-)arms the timer to fire at absolute time at.
func (t *Timer) ResetAt(at Time) {
	t.s.Cancel(t.ev)
	t.ev = t.s.At(at, func() {
		t.ev = nil
		t.fn()
	})
}

// Stop disarms the timer if it is pending.
func (t *Timer) Stop() {
	t.s.Cancel(t.ev)
	t.ev = nil
}

// Armed reports whether the timer currently has a pending expiry.
func (t *Timer) Armed() bool { return t.ev != nil && !t.ev.Cancelled() }

// Deadline returns the pending expiry time, or Infinity if disarmed.
func (t *Timer) Deadline() Time {
	if !t.Armed() {
		return Infinity
	}
	return t.ev.When()
}
