package sim

import "fmt"

// Event is a scheduled callback. Events are created through
// Scheduler.At/After (or their arg-carrying variants) and may be cancelled
// before they fire.
//
// Handle lifetime: a *Event returned by the scheduler is live until it
// fires or is cancelled, after which the scheduler recycles the object for
// a future event. A dead handle must therefore not be passed to Cancel
// once any later event may have been scheduled — owners that re-arm (the
// Timer, the sender's pacing gate) clear their handle field as the first
// action of the callback, which is the idiom this contract is built for.
// Cancelling a dead handle before any reuse remains a harmless no-op.
//
// The contract is machine-checked: simlint's handlestate analyzer tracks
// every handle from mint (At/After and the Arg variants) to dead
// (fire/Cancel), and enforces the clear-field-first idiom on re-arming
// callbacks.
//
// state: handle armed -> dead
type Event struct {
	when Time
	seq  uint64 // tie-breaker: FIFO among events at the same instant
	fn   func()
	afn  func(any) // arg-carrying callback (exactly one of fn/afn is set)
	arg  any
	idx  int    // heap index, -1 once removed
	next *Event // freelist link while recycled
}

// When returns the virtual time at which the event is (or was) due.
func (e *Event) When() Time { return e.when }

// Cancelled reports whether the event has been removed from the queue,
// either by firing or by an explicit Cancel.
func (e *Event) Cancelled() bool { return e.idx < 0 }

// Scheduler is the discrete-event core: a virtual clock plus a priority
// queue of pending events. It is single-threaded by design — the entire
// simulation advances by popping the earliest event and running its
// callback, which may schedule further events.
//
// The event queue is an inline binary heap ordered by (when, seq), and
// fired or cancelled events are recycled through a freelist, so the
// steady-state schedule/fire cycle — the per-packet inner loop of every
// experiment — allocates nothing.
type Scheduler struct {
	now     Time
	queue   []*Event // binary heap by (when, seq)
	nextSeq uint64
	fired   uint64
	halted  bool
	free    *Event // recycled events
}

// NewScheduler returns an empty scheduler positioned at the epoch.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Pending returns the number of events currently queued.
func (s *Scheduler) Pending() int { return len(s.queue) }

// Fired returns the total number of events executed so far.
func (s *Scheduler) Fired() uint64 { return s.fired }

// alloc takes an event from the freelist, minting a new one only when the
// pool is dry — after warm-up the live set reaches its high-water mark and
// every schedule reuses a fired event.
//
//hot:path
func (s *Scheduler) alloc() *Event {
	if e := s.free; e != nil {
		s.free = e.next
		e.next = nil
		return e
	}
	//lint:allow hotalloc event pool growth is amortized: the freelist reaches the backlog's high-water mark and then every schedule reuses a fired event
	return &Event{}
}

// release recycles a fired or cancelled event. Callback and argument are
// cleared so the freelist does not pin dead objects.
func (s *Scheduler) release(e *Event) {
	e.fn = nil
	e.afn = nil
	e.arg = nil
	e.idx = -1
	e.next = s.free
	s.free = e
}

// schedule inserts a prepared event into the heap.
func (s *Scheduler) schedule(e *Event, t Time) *Event {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, s.now))
	}
	e.when = t
	e.seq = s.nextSeq
	s.nextSeq++
	e.idx = len(s.queue)
	//lint:allow hotalloc heap growth is amortized: the backing array reaches the event backlog's high-water mark and is then reused
	s.queue = append(s.queue, e)
	s.up(e.idx)
	return e
}

// At schedules fn to run at time t and returns a cancellable handle.
// Scheduling in the past panics: it always indicates a model bug.
//
// state: mint
func (s *Scheduler) At(t Time, fn func()) *Event {
	e := s.alloc()
	e.fn = fn
	return s.schedule(e, t)
}

// After schedules fn to run d after the current time.
//
// state: mint
func (s *Scheduler) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now.Add(d), fn)
}

// AtArg schedules fn(arg) to run at time t. Binding the argument in the
// event instead of a closure lets per-packet callers (the port's
// serialization completion, the link's propagation delivery) schedule with
// a callback constructed once at wiring time: passing a pointer through
// arg does not allocate, while capturing it in a fresh closure would.
//
// arg is an ownership sink: a pooled packet scheduled for delivery is the
// callee's to free once the event is queued.
//
// state: mint
// state: xfer arg
func (s *Scheduler) AtArg(t Time, fn func(any), arg any) *Event {
	e := s.alloc()
	e.afn = fn
	e.arg = arg
	return s.schedule(e, t)
}

// AfterArg schedules fn(arg) to run d after the current time.
//
// state: mint
// state: xfer arg
func (s *Scheduler) AfterArg(d Duration, fn func(any), arg any) *Event {
	if d < 0 {
		d = 0
	}
	return s.AtArg(s.now.Add(d), fn, arg)
}

// Cancel removes a pending event so it never fires. Cancelling nil or an
// event that has already fired or been cancelled is a harmless no-op (as
// long as the handle has not been recycled — see the Event contract),
// which lets timer owners cancel unconditionally.
//
// state: kill e
func (s *Scheduler) Cancel(e *Event) {
	if e == nil || e.idx < 0 {
		return
	}
	i := e.idx
	last := len(s.queue) - 1
	if i != last {
		s.queue[i] = s.queue[last]
		s.queue[i].idx = i
	}
	s.queue[last] = nil
	s.queue = s.queue[:last]
	if i != last {
		if !s.up(i) {
			s.down(i)
		}
	}
	s.release(e)
}

// less orders the heap by (when, seq).
func (s *Scheduler) less(i, j int) bool {
	a, b := s.queue[i], s.queue[j]
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// swap exchanges two heap slots, maintaining the events' indices.
func (s *Scheduler) swap(i, j int) {
	s.queue[i], s.queue[j] = s.queue[j], s.queue[i]
	s.queue[i].idx = i
	s.queue[j].idx = j
}

// up sifts the element at i toward the root; it reports whether it moved.
func (s *Scheduler) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

// down sifts the element at i toward the leaves.
func (s *Scheduler) down(i int) {
	n := len(s.queue)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		least := left
		if right := left + 1; right < n && s.less(right, left) {
			least = right
		}
		if !s.less(least, i) {
			return
		}
		s.swap(i, least)
		i = least
	}
}

// Step executes the single earliest pending event, advancing the clock to
// its timestamp. It reports whether an event was executed.
//
//hot:path
func (s *Scheduler) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := s.queue[0]
	last := len(s.queue) - 1
	s.queue[0] = s.queue[last]
	s.queue[0].idx = 0
	s.queue[last] = nil
	s.queue = s.queue[:last]
	if last > 0 {
		s.down(0)
	}
	// Monotone-clock invariant, asserted inline because internal/check
	// imports this package: At() rejects past scheduling at insertion, and
	// this guards the pop side against heap corruption.
	if e.when < s.now {
		panic(fmt.Sprintf("sim: clock would move backwards: %v -> %v", s.now, e.when))
	}
	s.now = e.when
	s.fired++
	// Recycle before running: the callback commonly schedules a successor,
	// which then reuses this very event object.
	fn, afn, arg := e.fn, e.afn, e.arg
	s.release(e)
	if fn != nil {
		fn()
	} else {
		afn(arg)
	}
	return true
}

// Run executes events until the queue drains or Halt is called.
func (s *Scheduler) Run() {
	s.halted = false
	for !s.halted && s.Step() {
	}
}

// RunUntil executes events with timestamps at or before deadline. The clock
// finishes at min(deadline, time of last event) — it does not jump forward
// past the final event.
func (s *Scheduler) RunUntil(deadline Time) {
	s.halted = false
	for !s.halted && len(s.queue) > 0 && s.queue[0].when <= deadline {
		s.Step()
	}
}

// RunFor executes events for d of virtual time from the current instant.
func (s *Scheduler) RunFor(d Duration) { s.RunUntil(s.now.Add(d)) }

// Halt stops Run/RunUntil after the currently executing event returns.
// Pending events remain queued.
func (s *Scheduler) Halt() { s.halted = true }

// Timer is a restartable one-shot timer bound to a scheduler, in the style
// of kernel timers: Reset re-arms it (replacing any pending expiry), Stop
// disarms it. The callback is fixed at construction, and so is the wrapper
// that clears the pending-event handle — re-arming (the per-ACK RTO reset)
// allocates nothing.
//
// state: handle disarmed -> armed
type Timer struct {
	s    *Scheduler
	fn   func()
	wrap func()
	ev   *Event
}

// NewTimer creates a disarmed timer that will invoke fn on expiry.
//
// state: mint
func NewTimer(s *Scheduler, fn func()) *Timer {
	t := &Timer{s: s, fn: fn}
	t.wrap = func() {
		t.ev = nil
		t.fn()
	}
	return t
}

// Reset (re-)arms the timer to fire d from now.
//
// state: move t disarmed,armed -> armed
//
//hot:path
func (t *Timer) Reset(d Duration) {
	t.s.Cancel(t.ev)
	t.ev = t.s.After(d, t.wrap)
}

// ResetAt (re-)arms the timer to fire at absolute time at.
//
// state: move t disarmed,armed -> armed
func (t *Timer) ResetAt(at Time) {
	t.s.Cancel(t.ev)
	t.ev = t.s.At(at, t.wrap)
}

// Stop disarms the timer if it is pending.
//
// state: move t disarmed,armed -> disarmed
func (t *Timer) Stop() {
	t.s.Cancel(t.ev)
	t.ev = nil
}

// Armed reports whether the timer currently has a pending expiry.
func (t *Timer) Armed() bool { return t.ev != nil && !t.ev.Cancelled() }

// Deadline returns the pending expiry time, or Infinity if disarmed.
func (t *Timer) Deadline() Time {
	if !t.Armed() {
		return Infinity
	}
	return t.ev.When()
}
