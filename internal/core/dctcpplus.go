// Package core implements DCTCP+, the primary contribution of "Slowing
// Little Quickens More: Improving DCTCP for Massive Concurrent Flows"
// (Miao et al., ICPP 2015).
//
// DCTCP+ addresses two failure modes of DCTCP under high fan-in traffic:
//
//  1. When the congestion window has already been driven to its floor,
//     further ECN feedback cannot reduce the sending rate. DCTCP+ switches
//     to regulating the *sending time interval*: each transmission is
//     delayed by slow_time, trading hundreds of microseconds of pacing
//     for the hundreds of milliseconds a timeout would cost ("slowing
//     little quickens more").
//
//  2. Synchronized minimum-window flows still burst past the small
//     pipeline capacity of a data-center path and cause full-window
//     losses. DCTCP+ desynchronizes the senders by drawing each slow_time
//     increment uniformly from the backoff unit.
//
// The mechanism is the three-state machine of the paper's Figure 4 driven
// by the AIMD regulation of Algorithm 1:
//
//	DCTCP_NORMAL   --(cwnd at floor && (ECE || retransmit))--> DCTCP_Time_Inc
//	DCTCP_Time_Inc --(congestion persists)--> slow_time += random(unit)
//	DCTCP_Time_Inc --(no congestion)--> DCTCP_Time_Des, slow_time /= divisor
//	DCTCP_Time_Des --(congestion)--> DCTCP_Time_Inc, slow_time += random(unit)
//	DCTCP_Time_Des --(slow_time > threshold_T)--> slow_time /= divisor
//	DCTCP_Time_Des --(slow_time <= threshold_T)--> DCTCP_NORMAL
//
// The state machine is evaluated on every ACK (the paper's
// ndctcp_status_evolution hook) and on every retransmission timeout; the
// pacing delay applies at the transmit choke point (tcp_transmit_skb in
// the paper's kernel implementation, Sender.pump here).
//
// Enhancer implements the mechanism generically over any inner congestion
// control module, reflecting the paper's §VII observation that "the idea of
// enhancement mechanism could be coalesced with other data center
// protocols"; New composes it with DCTCP to produce DCTCP+ itself.
package core

import (
	"dctcpplus/internal/check"
	"dctcpplus/internal/dctcp"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/tcp"
	"dctcpplus/internal/telemetry"
)

// State is a DCTCP+ state-machine state (Figure 4).
type State int

const (
	// StateNormal: the inner protocol operates untouched.
	StateNormal State = iota
	// StateTimeInc: the window is at its floor and congestion feedback
	// keeps arriving; slow_time grows additively.
	StateTimeInc
	// StateTimeDes: congestion feedback stopped; slow_time decays
	// multiplicatively until it falls below threshold_T.
	StateTimeDes
)

func (s State) String() string {
	switch s {
	case StateNormal:
		return "DCTCP_NORMAL"
	case StateTimeInc:
		return "DCTCP_Time_Inc"
	case StateTimeDes:
		return "DCTCP_Time_Des"
	}
	return "?"
}

// Config parameterizes the enhancement mechanism. Guidance from §V-D:
// the backoff unit should be about the baseline RTT — large units waste
// bandwidth, small ones cannot relieve severe fan-in congestion — and the
// divisor should be 2: bigger recovers prematurely, smaller retards the
// regulation.
type Config struct {
	// BackoffUnit is backoff_time_unit, the additive step of slow_time.
	//inv: BackoffUnit >= 1
	BackoffUnit sim.Duration
	// DivisorFactor divides slow_time on each decrease step.
	//inv: DivisorFactor > 1
	DivisorFactor float64
	// ThresholdT: once slow_time decays to or below this value in
	// DCTCP_Time_Des, the machine returns to DCTCP_NORMAL.
	//inv: ThresholdT >= 0
	ThresholdT sim.Duration
	// DecayInterval rate-limits multiplicative decreases of slow_time to
	// at most one per interval, mirroring DCTCP's once-per-window cut
	// cadence. Without it, a handful of clean ACKs at the tail of a
	// congestion episode erase a slow_time that took tens of marked ACKs
	// to build, and the regulation never reaches the "hundreds to
	// thousands of microseconds" operating point the paper describes
	// (§V-A). This is the paper's "Threshold ... to guarantee the
	// relatively smooth regulation of the sending rate" knob, realized as
	// a cadence. Zero decays on every evaluation.
	//inv: DecayInterval >= 0
	DecayInterval sim.Duration
	// Randomize draws each slow_time increment uniformly from
	// [0, BackoffUnit) to desynchronize concurrent flows. Disabling it
	// yields the partially-implemented DCTCP+ of the paper's Figure 6,
	// which collapses again past ~100 flows.
	Randomize bool
}

// DefaultConfig returns the calibrated parameters for the simulated
// testbed: divisor 2 and randomization on, per §V-D. The backoff unit is
// the *effective* baseline RTT of the operating regime — on the paper's
// hardware that includes hundreds of microseconds of 2010-era kernel stack
// latency on top of the ~60us wire RTT, and under fan-in load the queueing
// delay at a full 128KB buffer adds ~1ms. We default to 800us; the
// equilibrium slow_time then reaches the "hundreds to thousands of
// microseconds" the paper describes (§V-A), which is what lets hundreds of
// concurrent flows share the bottleneck without loss. See
// BenchmarkAblation_BackoffUnit for the sensitivity sweep behind this
// choice.
func DefaultConfig() Config {
	return Config{
		BackoffUnit:   800 * sim.Microsecond,
		DivisorFactor: 2,
		ThresholdT:    50 * sim.Microsecond,
		DecayInterval: 1 * sim.Millisecond,
		Randomize:     true,
	}
}

func (c Config) validate() {
	switch {
	case c.BackoffUnit <= 0:
		panic("core: BackoffUnit must be positive")
	case c.DivisorFactor <= 1:
		panic("core: DivisorFactor must exceed 1")
	case c.ThresholdT < 0:
		panic("core: negative ThresholdT")
	case c.DecayInterval < 0:
		panic("core: negative DecayInterval")
	}
}

// Stats counts state-machine activity on one sender.
type Stats struct {
	EnterTimeInc  int64 // Normal/TimeDes -> TimeInc transitions
	IncSteps      int64 // additive slow_time increases (incl. entries)
	DecSteps      int64 // multiplicative slow_time decreases
	ReturnsNormal int64 // TimeDes -> Normal transitions
	MaxSlowTime   sim.Duration

	// Occupancy is the virtual time spent in each state (indexed by
	// State), accumulated at every transition; call Enhancer.Occupancy for
	// values that include the currently open interval.
	Occupancy [3]sim.Duration
}

// Enhancer wraps an inner congestion-control module with the DCTCP+
// sending-time-interval regulation. It is itself a tcp.CongestionControl.
type Enhancer struct {
	inner tcp.CongestionControl
	cfg   Config

	state State
	// slowTime is the paper's slow_time pacing term: additive increases
	// and multiplicative decays keep it a non-negative delay.
	//inv: slowTime >= 0
	slowTime  sim.Duration
	lastDecay sim.Time
	stateFrom sim.Time // when the current state was entered
	stats     Stats

	// Telemetry instruments; nil (no-op) unless AttachTelemetry was called.
	mEnterTimeInc  *telemetry.Counter
	mIncSteps      *telemetry.Counter
	mDecSteps      *telemetry.Counter
	mReturnsNormal *telemetry.Counter
	mSlowTime      *telemetry.Histogram
	mOccupancy     [3]*telemetry.Counter // ns per Figure-4 state
}

// Enhance wraps inner with the enhancement mechanism. Use New for DCTCP+
// proper; Enhance exists for the §VII extension experiments (e.g. Reno-ECN
// plus the mechanism).
func Enhance(inner tcp.CongestionControl, cfg Config) *Enhancer {
	cfg.validate()
	if inner == nil {
		panic("core: nil inner congestion control")
	}
	return &Enhancer{inner: inner, cfg: cfg}
}

// New returns DCTCP+: DCTCP with the enhancement mechanism. gain is the
// DCTCP EWMA gain (dctcp.DefaultGain for the paper's setting).
func New(gain float64, cfg Config) *Enhancer {
	return Enhance(dctcp.New(gain), cfg)
}

// Name returns the inner algorithm's name with a "+" suffix ("dctcp+").
func (e *Enhancer) Name() string { return e.inner.Name() + "+" }

// Inner returns the wrapped congestion-control module.
func (e *Enhancer) Inner() tcp.CongestionControl { return e.inner }

// State returns the current Figure-4 state.
func (e *Enhancer) State() State { return e.state }

// SlowTime returns the current sending time interval.
func (e *Enhancer) SlowTime() sim.Duration { return e.slowTime }

// Stats returns a snapshot of the state-machine counters.
func (e *Enhancer) Stats() Stats { return e.stats }

// Occupancy returns the time spent in each state up to now, including the
// currently open interval.
func (e *Enhancer) Occupancy(now sim.Time) [3]sim.Duration {
	occ := e.stats.Occupancy
	occ[e.state] += now.Sub(e.stateFrom)
	return occ
}

// setState transitions the machine, closing the occupancy interval of the
// previous state.
func (e *Enhancer) setState(s *tcp.Sender, next State) {
	now := s.Now()
	interval := now.Sub(e.stateFrom)
	e.stats.Occupancy[e.state] += interval
	e.mOccupancy[e.state].Add(int64(interval))
	e.stateFrom = now
	e.state = next
}

// AttachTelemetry registers the state machine's instruments on reg under
// the given labels: transition and AIMD-step counters, a slow_time
// histogram (observed in nanoseconds after every adjustment), and one
// occupancy counter (ns) per Figure-4 state. The inner congestion-control
// module is attached too when it supports telemetry. With a nil registry
// the instruments stay nil and every update is a no-op.
func (e *Enhancer) AttachTelemetry(reg *telemetry.Registry, labels ...telemetry.Label) {
	e.mEnterTimeInc = reg.Counter("core_enter_timeinc_total", labels...)
	e.mIncSteps = reg.Counter("core_slow_time_inc_steps_total", labels...)
	e.mDecSteps = reg.Counter("core_slow_time_dec_steps_total", labels...)
	e.mReturnsNormal = reg.Counter("core_returns_normal_total", labels...)
	e.mSlowTime = reg.Histogram("core_slow_time_ns", labels...)
	for st := StateNormal; st <= StateTimeDes; st++ {
		lbls := append(append([]telemetry.Label(nil), labels...),
			telemetry.L("state", st.String()))
		e.mOccupancy[st] = reg.Counter("core_state_occupancy_ns", lbls...)
	}
	if a, ok := e.inner.(telemetry.Attacher); ok {
		a.AttachTelemetry(reg, labels...)
	}
}

// FlushTelemetry folds the currently open state-occupancy interval into
// both the stats and the occupancy counter, restarting the interval at now.
// Runners call it once at end-of-run so the dump accounts for every
// simulated nanosecond; Occupancy() remains consistent because the open
// interval is re-anchored, not double-counted.
func (e *Enhancer) FlushTelemetry(now sim.Time) {
	interval := now.Sub(e.stateFrom)
	if interval <= 0 {
		return
	}
	e.stats.Occupancy[e.state] += interval
	e.mOccupancy[e.state].Add(int64(interval))
	e.stateFrom = now
}

// ConfigUsed returns the enhancement configuration.
func (e *Enhancer) ConfigUsed() Config { return e.cfg }

// Init anchors the state-machine clocks at the sender's start time, then
// initializes the inner module. Senders are created mid-run (staggered
// incast arrivals, background flows); without the anchor, the first
// setState/Occupancy call would attribute all virtual time since t=0 to
// DCTCP_NORMAL occupancy, and the decay cadence would measure from the
// epoch instead of from the flow's start.
func (e *Enhancer) Init(s *tcp.Sender) {
	e.stateFrom = s.Now()
	e.lastDecay = s.Now()
	e.inner.Init(s)
}

// OnAck lets the inner module observe the ACK, then evaluates the state
// machine — the ndctcp_status_evolution() hook.
func (e *Enhancer) OnAck(s *tcp.Sender, acked int64, ece bool) {
	e.inner.OnAck(s, acked, ece)
	e.evolve(s, ece, false)
}

// SsthreshAfterECN delegates to the inner module.
func (e *Enhancer) SsthreshAfterECN(s *tcp.Sender) float64 {
	return e.inner.SsthreshAfterECN(s)
}

// SsthreshAfterLoss delegates to the inner module.
func (e *Enhancer) SsthreshAfterLoss(s *tcp.Sender) float64 {
	return e.inner.SsthreshAfterLoss(s)
}

// OnTimeout notifies the inner module, then evaluates the state machine
// with the retransmission condition set.
func (e *Enhancer) OnTimeout(s *tcp.Sender) {
	e.inner.OnTimeout(s)
	e.evolve(s, false, true)
}

// PacingDelay returns the sending time interval while the machine is
// engaged. With randomization on, each transmission's delay is drawn
// uniformly from [slow_time/2, 3*slow_time/2) — mean slow_time — so that
// concurrent flows whose slow_time values have converged to similar levels
// still inject packets at scattered instants (Fig. 3(c)); the sender
// caches one draw per packet. Without randomization (the Fig. 6 partial
// implementation) the delay is exactly slow_time.
func (e *Enhancer) PacingDelay(s *tcp.Sender) sim.Duration {
	if e.state == StateNormal {
		return e.inner.PacingDelay(s)
	}
	if e.cfg.Randomize && e.slowTime > 0 {
		return e.slowTime/2 + s.RNG().Duration(e.slowTime)
	}
	return e.slowTime
}

// CwndCap pins the window at its floor while the sending-time-interval
// regulation is engaged: in State-II and State-III the rate is governed by
// slow_time, and the window is by definition at its minimum ("when cwnd
// reaches to the minimum size, and the sender is required to further
// decrease its cwnd"). Growth resumes once the machine returns to
// DCTCP_NORMAL.
func (e *Enhancer) CwndCap(s *tcp.Sender) (float64, bool) {
	if e.state == StateNormal {
		if capper, ok := e.inner.(tcp.CwndCapper); ok {
			return capper.CwndCap(s)
		}
		return 0, false
	}
	return s.MinCwndMSS(), true
}

// backoffStep returns one additive slow_time increment: uniform in
// [0, BackoffUnit) when randomizing (the desynchronization mechanism),
// exactly BackoffUnit otherwise (Figure 6's partial implementation).
func (e *Enhancer) backoffStep(s *tcp.Sender) sim.Duration {
	if e.cfg.Randomize {
		return s.RNG().Duration(e.cfg.BackoffUnit)
	}
	return e.cfg.BackoffUnit
}

// divide applies the multiplicative decrease to slow_time, at most once
// per DecayInterval. It reports whether a decrease was applied. The gate
// measures from lastDecay unconditionally: lastDecay is anchored at Init
// and re-anchored whenever the machine enters DCTCP_Time_Des, so the first
// decrease obeys the cadence too. (An earlier version gated on
// stats.DecSteps > 0, which let the first decrease bypass DecayInterval
// entirely — a single clean ACK right after entering Time_Des could halve
// a slow_time that took tens of marked ACKs to build.)
func (e *Enhancer) divide(s *tcp.Sender) bool {
	now := s.Now()
	if e.cfg.DecayInterval > 0 && now.Sub(e.lastDecay) < e.cfg.DecayInterval {
		return false
	}
	e.lastDecay = now
	e.slowTime = sim.Duration(float64(e.slowTime) / e.cfg.DivisorFactor)
	check.NonNegativeDur("core.slow_time after decrease", e.slowTime)
	e.stats.DecSteps++
	e.mDecSteps.Add(1)
	e.mSlowTime.Observe(int64(e.slowTime))
	return true
}

// increase applies one additive step and records the high-water mark.
func (e *Enhancer) increase(s *tcp.Sender) {
	e.slowTime += e.backoffStep(s)
	check.NonNegativeDur("core.slow_time after increase", e.slowTime)
	e.stats.IncSteps++
	e.mIncSteps.Add(1)
	e.mSlowTime.Observe(int64(e.slowTime))
	if e.slowTime > e.stats.MaxSlowTime {
		e.stats.MaxSlowTime = e.slowTime
	}
}

// evolve is Algorithm 1: one state-machine step. Entering the mechanism
// from DCTCP_NORMAL requires both that the window has diminished to its
// floor and that congestion feedback keeps arriving (State-II's definition:
// "cwnd has diminished to the minimum value, and meanwhile the sender is
// notified to further decrease the sending rate"). Once engaged, the
// machine stays engaged on any congestion signal — ECN echo or timeout
// retransmission — even while the window floats slightly above the floor;
// slow_time, not the window, is the controlled variable in these states.
func (e *Enhancer) evolve(s *tcp.Sender, ece, retrans bool) {
	// Algorithm 1 invariants: slow_time is engaged only outside
	// DCTCP_NORMAL, and never negative.
	if e.state == StateNormal {
		check.ZeroDur("core.slow_time in DCTCP_NORMAL", e.slowTime)
	}
	check.NonNegativeDur("core.slow_time", e.slowTime)

	// Congestion signals: ECN echo, a timeout retransmission event, or an
	// ongoing loss-recovery episode ("retransmission after the timeout" —
	// while the sender is still repairing losses, every ACK confirms the
	// network asked it to slow down). The recovery clause is what lets a
	// timeout-heavy round pump slow_time up instead of decaying it during
	// the clean post-RTO drain.
	congested := ece || retrans || s.State() != tcp.StateOpen
	atFloor := s.CwndMSS() <= s.MinCwndMSS()

	switch e.state {
	case StateNormal:
		if congested && atFloor {
			e.setState(s, StateTimeInc)
			e.stats.EnterTimeInc++
			e.mEnterTimeInc.Add(1)
			e.slowTime = 0
			e.increase(s)
		}
	case StateTimeInc:
		if congested {
			e.increase(s)
		} else {
			e.setState(s, StateTimeDes)
			// Restart the decay cadence: slow_time has just finished
			// building, so the first multiplicative decrease waits a full
			// DecayInterval rather than firing on the first clean ACK.
			e.lastDecay = s.Now()
			e.divide(s)
		}
	case StateTimeDes:
		switch {
		case congested:
			e.setState(s, StateTimeInc)
			e.stats.EnterTimeInc++
			e.mEnterTimeInc.Add(1)
			e.increase(s)
		case e.slowTime > e.cfg.ThresholdT:
			e.divide(s)
		default:
			e.setState(s, StateNormal)
			e.slowTime = 0
			e.stats.ReturnsNormal++
			e.mReturnsNormal.Add(1)
		}
	}
}

// SenderConfig returns the tcp.Config preset for DCTCP+ endpoints: precise
// ECN echo and — per the paper's footnote 3 — a window floor of 1 MSS for
// smoother rate changes.
func SenderConfig() tcp.Config {
	cfg := dctcp.Config()
	cfg.MinCwnd = 1
	return cfg
}
