package core

import (
	"testing"
	"testing/quick"

	"dctcpplus/internal/dctcp"
	"dctcpplus/internal/netsim"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/tcp"
)

// plusWire builds a two-host path with a controllable CE-marking shim, a
// DCTCP+ sender and a precise-echo receiver.
type plusWire struct {
	sched *sim.Scheduler
	conn  *tcp.Conn
	enh   *Enhancer
	mark  *bool
}

type ceShim struct {
	dst  netsim.Node
	mark *bool
}

func (m *ceShim) ID() packet.NodeID { return 50 }
func (m *ceShim) Deliver(p *packet.Packet) {
	if *m.mark && p.IsData() && p.ECN == packet.ECT {
		p.ECN = packet.CE
	}
	m.dst.Deliver(p)
}

func newPlusWire(cfg Config, mut func(*tcp.Config)) *plusWire {
	s := sim.NewScheduler()
	a := netsim.NewHost(s, 1, "a")
	b := netsim.NewHost(s, 2, "b")
	mark := new(bool)
	shim := &ceShim{dst: b, mark: mark}
	a.SetUplink(netsim.NewPort(s, netsim.NewLink(s, shim, 1e9, 50*sim.Microsecond),
		netsim.PortConfig{BufferBytes: 4 << 20}))
	b.SetUplink(netsim.NewPort(s, netsim.NewLink(s, a, 1e9, 50*sim.Microsecond),
		netsim.PortConfig{BufferBytes: 4 << 20}))
	tcfg := SenderConfig()
	if mut != nil {
		mut(&tcfg)
	}
	enh := New(dctcp.DefaultGain, cfg)
	conn := tcp.NewConn(tcfg, enh, a, b, 3)
	return &plusWire{sched: s, conn: conn, enh: enh, mark: mark}
}

func TestStateStrings(t *testing.T) {
	if StateNormal.String() != "DCTCP_NORMAL" ||
		StateTimeInc.String() != "DCTCP_Time_Inc" ||
		StateTimeDes.String() != "DCTCP_Time_Des" ||
		State(9).String() != "?" {
		t.Error("state strings wrong")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{BackoffUnit: 0, DivisorFactor: 2},
		{BackoffUnit: 1, DivisorFactor: 1},
		{BackoffUnit: 1, DivisorFactor: 2, ThresholdT: -1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad config %d did not panic", i)
				}
			}()
			Enhance(tcp.NewReno{}, cfg)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil inner did not panic")
			}
		}()
		Enhance(nil, DefaultConfig())
	}()
}

func TestNameAndAccessors(t *testing.T) {
	e := New(dctcp.DefaultGain, DefaultConfig())
	if e.Name() != "dctcp+" {
		t.Errorf("name = %q", e.Name())
	}
	if e.State() != StateNormal || e.SlowTime() != 0 {
		t.Error("fresh enhancer not in Normal/0")
	}
	if e.Inner().Name() != "dctcp" {
		t.Error("inner not dctcp")
	}
	if e.ConfigUsed().DivisorFactor != 2 {
		t.Error("config not retained")
	}
	r := Enhance(tcp.NewReno{}, DefaultConfig())
	if r.Name() != "reno+" {
		t.Errorf("reno+ name = %q", r.Name())
	}
}

func TestSenderConfigFloor(t *testing.T) {
	cfg := SenderConfig()
	if cfg.MinCwnd != 1 {
		t.Errorf("MinCwnd = %v, want 1 (footnote 3)", cfg.MinCwnd)
	}
	if cfg.ECN != tcp.ECNPrecise {
		t.Error("DCTCP+ must use precise echo")
	}
}

// driveEvolve drives the state machine directly through a sender pinned at
// its window floor.
func pinnedSender(t *testing.T) (*plusWire, *tcp.Sender) {
	t.Helper()
	w := newPlusWire(DefaultConfig(), nil)
	return w, w.conn.Sender
}

func TestStateMachineTransitions(t *testing.T) {
	w, s := pinnedSender(t)
	e := w.enh
	// Fresh sender: cwnd = 2 > MinCwnd = 1, so even ECE keeps Normal.
	e.evolve(s, true, false)
	if e.State() != StateNormal {
		t.Fatalf("state = %v; cwnd above floor must stay Normal", e.State())
	}

	// Pin the window at the floor by collapsing via a synthetic timeout
	// path: simulate cwnd at min using a config where MinCwnd = InitialCwnd.
	// The state machine is stepped at a fixed virtual instant here, so
	// disable the decay rate limit (tested separately).
	mcfg := DefaultConfig()
	mcfg.DecayInterval = 0
	w2 := newPlusWire(mcfg, func(c *tcp.Config) {
		c.InitialCwnd = 1
		c.MinCwnd = 1
	})
	e2, s2 := w2.enh, w2.conn.Sender

	// Normal --congested--> TimeInc with slow_time = random(unit) >= 0.
	e2.evolve(s2, true, false)
	if e2.State() != StateTimeInc {
		t.Fatalf("state = %v, want TimeInc", e2.State())
	}
	if e2.SlowTime() < 0 || e2.SlowTime() >= e2.cfg.BackoffUnit {
		t.Errorf("slow_time = %v, want in [0, unit)", e2.SlowTime())
	}

	// TimeInc --congested--> TimeInc, slow_time grows.
	before := e2.SlowTime()
	e2.evolve(s2, true, false)
	if e2.State() != StateTimeInc || e2.SlowTime() < before {
		t.Errorf("additive increase failed: %v -> %v", before, e2.SlowTime())
	}

	// TimeInc --clean ACK--> TimeDes, slow_time divided.
	st := e2.SlowTime()
	e2.evolve(s2, false, false)
	if e2.State() != StateTimeDes {
		t.Fatalf("state = %v, want TimeDes", e2.State())
	}
	if e2.SlowTime() != sim.Duration(float64(st)/2) {
		t.Errorf("slow_time = %v, want %v/2", e2.SlowTime(), st)
	}

	// TimeDes --congested--> TimeInc again.
	e2.evolve(s2, true, false)
	if e2.State() != StateTimeInc {
		t.Fatalf("state = %v, want TimeInc after congestion in TimeDes", e2.State())
	}

	// Decay to Normal: repeated clean ACKs divide until <= threshold, then
	// return to Normal with slow_time reset.
	for i := 0; i < 64 && e2.State() != StateNormal; i++ {
		e2.evolve(s2, false, false)
	}
	if e2.State() != StateNormal || e2.SlowTime() != 0 {
		t.Errorf("machine did not return to Normal: %v slow=%v", e2.State(), e2.SlowTime())
	}
	stats := e2.Stats()
	if stats.EnterTimeInc != 2 || stats.ReturnsNormal != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.MaxSlowTime <= 0 {
		t.Error("MaxSlowTime not recorded")
	}
}

func TestDecayRateLimited(t *testing.T) {
	// With a decay interval, a freshly built slow_time survives entry into
	// TimeDes for a full interval, and a burst of clean evaluations divides
	// it at most once per interval — clean ACKs cannot erase the regulation.
	cfg := DefaultConfig()
	cfg.DecayInterval = 5 * sim.Millisecond
	w := newPlusWire(cfg, func(c *tcp.Config) {
		c.InitialCwnd = 1
		c.MinCwnd = 1
	})
	e, s := w.enh, w.conn.Sender
	for i := 0; i < 8; i++ {
		e.evolve(s, true, false) // build up slow_time
	}
	peak := e.SlowTime()
	if peak <= 0 {
		t.Fatal("no slow_time accumulated")
	}
	// First clean ACK enters TimeDes but must not touch slow_time: the
	// cadence clock restarts at entry.
	w.sched.At(sim.Time(1*sim.Millisecond), func() {
		e.evolve(s, false, false)
		if e.State() != StateTimeDes {
			t.Fatalf("state = %v, want TimeDes", e.State())
		}
		if e.SlowTime() != peak {
			t.Errorf("slow_time = %v on TimeDes entry, want the full %v", e.SlowTime(), peak)
		}
	})
	// A clean burst one interval later divides exactly once.
	w.sched.At(sim.Time(7*sim.Millisecond), func() {
		for i := 0; i < 10; i++ {
			e.evolve(s, false, false)
		}
		want := sim.Duration(float64(peak) / cfg.DivisorFactor)
		if e.SlowTime() != want {
			t.Errorf("slow_time = %v, want a single division to %v", e.SlowTime(), want)
		}
		if e.Stats().DecSteps != 1 {
			t.Errorf("DecSteps = %d, want 1", e.Stats().DecSteps)
		}
	})
	w.sched.Run()
}

// TestDecayCadenceTable pins the decay gate end to end: entry into
// Time_Des restarts the cadence clock (so the first decrease waits a full
// DecayInterval — regression for the DecSteps>0 gate that let a single
// clean ACK halve a freshly built slow_time), later decreases come at
// least one interval apart, and a zero interval decays on every clean
// evaluation.
func TestDecayCadenceTable(t *testing.T) {
	type step struct {
		at        sim.Duration
		congested bool
		wantDecs  int64 // cumulative DecSteps after this evaluation
	}
	ms := sim.Millisecond
	cases := []struct {
		name     string
		interval sim.Duration
		steps    []step
	}{
		{
			name:     "first decay waits a full interval",
			interval: 5 * ms,
			steps: []step{
				{at: 0, congested: true, wantDecs: 0},        // engage TimeInc
				{at: 1 * ms, congested: false, wantDecs: 0},  // enter TimeDes: no decay
				{at: 2 * ms, congested: false, wantDecs: 0},  // inside the interval
				{at: 6 * ms, congested: false, wantDecs: 1},  // entry + 5ms: first decay
				{at: 7 * ms, congested: false, wantDecs: 1},  // gated
				{at: 11 * ms, congested: false, wantDecs: 2}, // steady cadence
			},
		},
		{
			name:     "zero interval decays every clean evaluation",
			interval: 0,
			steps: []step{
				{at: 0, congested: true, wantDecs: 0},
				{at: 1 * ms, congested: false, wantDecs: 1},
				{at: 1*ms + sim.Microsecond, congested: false, wantDecs: 2},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.DecayInterval = tc.interval
			// Deterministic large backoff so repeated halvings stay above
			// ThresholdT for the whole table.
			cfg.Randomize = false
			cfg.BackoffUnit = 100 * ms
			w := newPlusWire(cfg, func(c *tcp.Config) {
				c.InitialCwnd = 1
				c.MinCwnd = 1
			})
			e, s := w.enh, w.conn.Sender
			for _, st := range tc.steps {
				st := st
				w.sched.At(sim.Time(st.at), func() {
					e.evolve(s, st.congested, false)
					if got := e.Stats().DecSteps; got != st.wantDecs {
						t.Errorf("t=%v: DecSteps = %d, want %d", st.at, got, st.wantDecs)
					}
				})
			}
			w.sched.Run()
		})
	}
}

// TestInitAnchorsStateClockAtNonzeroStart is the regression for senders
// created mid-run (staggered incast arrivals, background flows): Init must
// anchor the occupancy clock at the sender's start time, not the epoch.
func TestInitAnchorsStateClockAtNonzeroStart(t *testing.T) {
	s := sim.NewScheduler()
	a := netsim.NewHost(s, 1, "a")
	b := netsim.NewHost(s, 2, "b")
	a.SetUplink(netsim.NewPort(s, netsim.NewLink(s, b, 1e9, 50*sim.Microsecond),
		netsim.PortConfig{BufferBytes: 4 << 20}))
	b.SetUplink(netsim.NewPort(s, netsim.NewLink(s, a, 1e9, 50*sim.Microsecond),
		netsim.PortConfig{BufferBytes: 4 << 20}))

	start := sim.Time(100 * sim.Millisecond)
	var e *Enhancer
	var snd *tcp.Sender
	s.At(start, func() {
		e = New(dctcp.DefaultGain, DefaultConfig())
		conn := tcp.NewConn(SenderConfig(), e, a, b, 3)
		snd = conn.Sender
	})
	s.At(start.Add(5*sim.Millisecond), func() {
		occ := e.Occupancy(snd.Now())
		if occ[StateNormal] != 5*sim.Millisecond {
			t.Errorf("Normal occupancy = %v for a flow alive 5ms (pre-start time leaked in)",
				occ[StateNormal])
		}
		if occ[StateTimeInc] != 0 || occ[StateTimeDes] != 0 {
			t.Errorf("engaged-state occupancy nonzero before engagement: %v", occ)
		}
	})
	s.Run()
}

func TestCwndCapWhileEngaged(t *testing.T) {
	w := newPlusWire(DefaultConfig(), func(c *tcp.Config) {
		c.InitialCwnd = 1
		c.MinCwnd = 1
	})
	e, s := w.enh, w.conn.Sender
	if _, active := e.CwndCap(s); active {
		t.Error("cap active in Normal state")
	}
	e.evolve(s, true, false)
	cap, active := e.CwndCap(s)
	if !active || cap != s.MinCwndMSS() {
		t.Errorf("engaged cap = %v/%v, want floor", cap, active)
	}
}

func TestOccupancyAccounting(t *testing.T) {
	w := newPlusWire(DefaultConfig(), func(c *tcp.Config) {
		c.InitialCwnd = 1
		c.MinCwnd = 1
	})
	e, s := w.enh, w.conn.Sender
	// Spend 10ms in Normal, then engage, then 5ms in TimeInc.
	w.sched.At(10*sim.Time(sim.Millisecond), func() { e.evolve(s, true, false) })
	w.sched.At(15*sim.Time(sim.Millisecond), func() {
		occ := e.Occupancy(s.Now())
		if occ[StateNormal] != 10*sim.Millisecond {
			t.Errorf("Normal occupancy = %v, want 10ms", occ[StateNormal])
		}
		if occ[StateTimeInc] != 5*sim.Millisecond {
			t.Errorf("TimeInc occupancy = %v, want 5ms", occ[StateTimeInc])
		}
		if occ[StateTimeDes] != 0 {
			t.Errorf("TimeDes occupancy = %v, want 0", occ[StateTimeDes])
		}
	})
	w.sched.Run()
}

func TestOccupancySumsToElapsed(t *testing.T) {
	// Property-ish: after an arbitrary transition sequence, occupancies sum
	// to elapsed virtual time.
	w := newPlusWire(DefaultConfig(), func(c *tcp.Config) {
		c.InitialCwnd = 1
		c.MinCwnd = 1
	})
	e, s := w.enh, w.conn.Sender
	rng := sim.NewRNG(12)
	var tEnd sim.Time
	for i := 0; i < 40; i++ {
		at := sim.Time(rng.Intn(1000)+1) * sim.Time(sim.Microsecond)
		tEnd = tEnd.Add(sim.Duration(at))
		congested := rng.Intn(2) == 0
		w.sched.At(tEnd, func() { e.evolve(s, congested, false) })
	}
	w.sched.Run()
	occ := e.Occupancy(tEnd)
	total := occ[StateNormal] + occ[StateTimeInc] + occ[StateTimeDes]
	if total != tEnd.Sub(0) {
		t.Errorf("occupancy sum %v != elapsed %v", total, tEnd.Sub(0))
	}
}

func TestRetransmissionTriggersTimeInc(t *testing.T) {
	w := newPlusWire(DefaultConfig(), func(c *tcp.Config) {
		c.InitialCwnd = 1
		c.MinCwnd = 1
	})
	// OnTimeout must evaluate the machine with the retrans condition: the
	// engine collapses cwnd to 1 <= MinCwnd before calling OnTimeout.
	w.enh.OnTimeout(w.conn.Sender)
	if w.enh.State() != StateTimeInc {
		t.Errorf("state after RTO = %v, want TimeInc", w.enh.State())
	}
}

func TestPacingDelayOnlyWhenEngaged(t *testing.T) {
	w := newPlusWire(DefaultConfig(), func(c *tcp.Config) {
		c.InitialCwnd = 1
		c.MinCwnd = 1
	})
	e, s := w.enh, w.conn.Sender
	if e.PacingDelay(s) != 0 {
		t.Error("Normal state must not pace")
	}
	e.evolve(s, true, false)
	e.evolve(s, true, false) // ensure some slow_time accumulated
	if e.State() == StateTimeInc && e.SlowTime() > 0 {
		// Randomized pacing: each draw lands in [slow/2, 3*slow/2).
		for i := 0; i < 50; i++ {
			d := e.PacingDelay(s)
			if d < e.SlowTime()/2 || d >= e.SlowTime()/2+e.SlowTime() {
				t.Fatalf("pacing draw %v outside [%v, %v)", d, e.SlowTime()/2, e.SlowTime()/2+e.SlowTime())
			}
		}
	}
}

func TestPacingDelayDeterministicInPartialMode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Randomize = false
	w := newPlusWire(cfg, func(c *tcp.Config) {
		c.InitialCwnd = 1
		c.MinCwnd = 1
	})
	e, s := w.enh, w.conn.Sender
	e.evolve(s, true, false)
	if e.SlowTime() == 0 {
		t.Fatal("no slow_time after congestion")
	}
	for i := 0; i < 10; i++ {
		if e.PacingDelay(s) != e.SlowTime() {
			t.Fatal("partial mode must pace by exactly slow_time")
		}
	}
}

func TestPartialModeDeterministicBackoff(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Randomize = false
	w := newPlusWire(cfg, func(c *tcp.Config) {
		c.InitialCwnd = 1
		c.MinCwnd = 1
	})
	e, s := w.enh, w.conn.Sender
	e.evolve(s, true, false)
	if e.SlowTime() != cfg.BackoffUnit {
		t.Errorf("partial-mode first step = %v, want exactly one unit", e.SlowTime())
	}
	e.evolve(s, true, false)
	if e.SlowTime() != 2*cfg.BackoffUnit {
		t.Errorf("partial-mode second step = %v, want exactly two units", e.SlowTime())
	}
}

func TestRandomizedBackoffDiffersAcrossSenders(t *testing.T) {
	// Two senders with different seeds must draw different slow_time
	// sequences — this is the desynchronization mechanism.
	mk := func(seed uint64) sim.Duration {
		w := newPlusWire(DefaultConfig(), func(c *tcp.Config) {
			c.InitialCwnd = 1
			c.MinCwnd = 1
			c.Seed = seed
		})
		for i := 0; i < 4; i++ {
			w.enh.evolve(w.conn.Sender, true, false)
		}
		return w.enh.SlowTime()
	}
	a, b := mk(1), mk(2)
	if a == b {
		t.Errorf("seeds 1 and 2 produced identical slow_time %v", a)
	}
}

// Property: slow_time is never negative, and in Normal state it is zero.
func TestSlowTimeInvariantProperty(t *testing.T) {
	f := func(events []bool, seed uint64) bool {
		w := newPlusWire(DefaultConfig(), func(c *tcp.Config) {
			c.InitialCwnd = 1
			c.MinCwnd = 1
			c.Seed = seed
		})
		e, s := w.enh, w.conn.Sender
		for _, congested := range events {
			e.evolve(s, congested, false)
			if e.SlowTime() < 0 {
				return false
			}
			if e.State() == StateNormal && e.SlowTime() != 0 {
				return false
			}
			if e.State() != StateNormal && e.SlowTime() > 0 {
				if d := e.PacingDelay(s); d < e.SlowTime()/2 || d >= e.SlowTime()/2+e.SlowTime() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEndToEndEngagesUnderHeavyMarking(t *testing.T) {
	// Integration: persistent CE marking drives the window to the floor
	// and must engage the pacing machine, slowing the send rate.
	w := newPlusWire(DefaultConfig(), nil)
	*w.mark = true
	engaged := false
	w.conn.Sender.OnAckProbe = func(s *tcp.Sender, _ bool) {
		if w.enh.State() != StateNormal {
			engaged = true
		}
	}
	done := false
	w.conn.Sender.OnComplete = func(int64) { done = true }
	w.conn.Sender.Send(200 * packet.MSS)
	w.sched.RunUntil(sim.Time(30 * sim.Second))
	if !done {
		t.Fatal("transfer incomplete")
	}
	if !engaged {
		t.Error("enhancement mechanism never engaged under full marking")
	}
	if w.enh.Stats().EnterTimeInc == 0 {
		t.Error("no TimeInc entries recorded")
	}
	if got := w.conn.Receiver.Stats().DeliveredByte; got != 200*packet.MSS {
		t.Errorf("delivered %d", got)
	}
}

func TestEndToEndCleanPathStaysNormal(t *testing.T) {
	w := newPlusWire(DefaultConfig(), nil)
	w.conn.Sender.Send(1 << 20)
	w.sched.Run()
	if !w.conn.Sender.Done() {
		t.Fatal("transfer incomplete")
	}
	if w.enh.State() != StateNormal || w.enh.Stats().EnterTimeInc != 0 {
		t.Errorf("clean path engaged the mechanism: %v %+v", w.enh.State(), w.enh.Stats())
	}
}

func TestEnhancedRenoWorks(t *testing.T) {
	// §VII extension: the mechanism composed with Reno-ECN must still
	// complete transfers.
	s := sim.NewScheduler()
	a := netsim.NewHost(s, 1, "a")
	b := netsim.NewHost(s, 2, "b")
	mark := new(bool)
	*mark = true
	shim := &ceShim{dst: b, mark: mark}
	a.SetUplink(netsim.NewPort(s, netsim.NewLink(s, shim, 1e9, 50*sim.Microsecond),
		netsim.PortConfig{BufferBytes: 4 << 20}))
	b.SetUplink(netsim.NewPort(s, netsim.NewLink(s, a, 1e9, 50*sim.Microsecond),
		netsim.PortConfig{BufferBytes: 4 << 20}))
	cfg := tcp.DefaultConfig()
	cfg.ECN = tcp.ECNClassic
	cfg.MinCwnd = 1
	enh := Enhance(tcp.NewReno{}, DefaultConfig())
	c := tcp.NewConn(cfg, enh, a, b, 3)
	done := false
	c.Sender.OnComplete = func(int64) { done = true }
	c.Sender.Send(100 * packet.MSS)
	s.RunUntil(sim.Time(30 * sim.Second))
	if !done {
		t.Fatal("reno+ transfer incomplete")
	}
}
