// Package workload implements the traffic patterns of the paper's
// evaluation: the barrier-synchronized incast benchmark (§III, §VI-B),
// persistent background flows (§VI-C), and the production-cluster-style
// benchmark mix of queries and heavy-tailed background transfers (§VI-D).
package workload

import (
	"fmt"

	"dctcpplus/internal/check"
	"dctcpplus/internal/netsim"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/tcp"
	"dctcpplus/internal/telemetry"
)

// FlowFactory produces the transport configuration and congestion-control
// module for the i-th flow of a workload. Factories must return a fresh
// CongestionControl per call (modules hold per-sender state) and should
// derive cfg.Seed from i so concurrent flows draw independent random
// streams.
type FlowFactory func(i int) (tcp.Config, tcp.CongestionControl)

// IncastConfig parameterizes the basic incast benchmark: the aggregator
// requests BytesPerFlow from each of Flows workers, waits for all
// responses, and immediately issues the next round, Rounds times.
type IncastConfig struct {
	// Flows is N, the number of concurrent senders.
	Flows int
	// BytesPerFlow is the response size per flow per round. The paper's
	// basic experiment uses 1MB/N; Figure 14 uses 4MB per flow.
	BytesPerFlow int64
	// Rounds is the number of request/response rounds (1000 in the paper).
	Rounds int
	// Factory builds each flow's transport.
	Factory FlowFactory
	// ServiceJitter models worker-side request processing delay: each
	// response starts after an independent uniform delay in
	// [0, ServiceJitter). Zero yields the fully synchronized worst case.
	ServiceJitter sim.Duration
	// ServiceTime models the per-response CPU cost on a worker,
	// exponentially distributed with this mean and *serialized per worker
	// host*: the paper's benchmark runs N/9 sender threads on each
	// dual-core server, so responses leave a machine staggered by
	// scheduling, with the stagger growing with the number of colocated
	// flows. Zero disables service-time modeling.
	ServiceTime sim.Duration
	// Seed drives the service-jitter/service-time streams.
	Seed uint64

	// FlowIDs, when non-nil, assigns flow i the i-th id instead of the
	// default FlowID(i+1). Relabeling changes nothing observable — flow
	// ids are opaque demux keys — which is exactly what the metamorphic
	// permutation harness in internal/exp verifies. Must have length
	// Flows; ids must be nonzero and unique.
	FlowIDs []packet.FlowID

	// RequestRetry re-issues a round's request to every worker that has
	// sent nothing back after this interval, repeating until the first
	// response byte arrives. Requests are raw control packets with no
	// transport-layer recovery, so a request destroyed mid-flight (a link
	// blackout or injected loss from internal/fault) would otherwise hang
	// the round barrier forever. Workers serve each round's request at
	// most once, so a duplicate request is a no-op. Zero disables retries
	// — the right setting on a fault-free network, where requests cannot
	// be destroyed.
	RequestRetry sim.Duration
}

func (c IncastConfig) validate() {
	switch {
	case c.Flows <= 0:
		panic("workload: incast needs at least one flow")
	case c.BytesPerFlow <= 0:
		panic("workload: BytesPerFlow must be positive")
	case c.Rounds <= 0:
		panic("workload: Rounds must be positive")
	case c.Factory == nil:
		panic("workload: nil FlowFactory")
	case len(c.FlowIDs) > 0 && len(c.FlowIDs) != c.Flows:
		panic("workload: FlowIDs length must equal Flows")
	}
}

// flowID returns the id of flow index i.
func (c IncastConfig) flowID(i int) packet.FlowID {
	if len(c.FlowIDs) > 0 {
		return c.FlowIDs[i]
	}
	return packet.FlowID(i + 1)
}

// FlowRound captures one flow's per-round event flags, the unit of the
// paper's Table I percentages ("among all transmissions" = among all
// request rounds).
type FlowRound struct {
	Timeout    bool // the flow hit at least one RTO this round
	MinCwndECE bool // the flow sent with cwnd at the floor while ECE was set
}

// RoundResult records one completed incast round.
type RoundResult struct {
	Start sim.Time
	FCT   sim.Duration // request issue to last response byte
	Bytes int64        // total payload delivered this round
	Flows []FlowRound
}

// GoodputMbps returns the round's application goodput in Mbps.
func (r RoundResult) GoodputMbps() float64 {
	if r.FCT <= 0 {
		return 0
	}
	return float64(r.Bytes) * 8 / 1e6 / r.FCT.Seconds()
}

// Incast drives the barrier-synchronized incast workload over a two-tier
// topology. Connections are persistent: the same N flows serve every
// round, as in the multithreaded benchmark the paper adapted.
type Incast struct {
	sched *sim.Scheduler
	tt    *netsim.TwoTier
	cfg   IncastConfig

	conns   []*tcp.Conn
	senders map[packet.FlowID]*tcp.Sender
	rng     *sim.RNG

	// cpuFree[h] is the virtual time at which worker host h's CPU becomes
	// available to start the next response (service-time serialization).
	cpuFree map[packet.NodeID]sim.Time
	// workerOf maps a flow to its worker host for service accounting.
	workerOf map[packet.FlowID]packet.NodeID
	// flowIdx maps a flow id back to its index (the inverse of
	// IncastConfig.flowID), for request demux under relabeled ids.
	flowIdx map[packet.FlowID]int

	round      int64
	roundStart sim.Time
	recvd      []int64
	doneFlows  int64
	statsMark  []tcp.SenderStats // per-flow snapshot at round start
	// servedRound[i] is the last round whose request flow i's worker has
	// served (-1 initially): the dedup that makes request retries
	// idempotent.
	servedRound []int

	results []RoundResult

	// Telemetry instruments; nil (no-op) unless AttachTelemetry was called.
	mRounds  *telemetry.Counter
	mGoodput *telemetry.Histogram
	mFCT     *telemetry.Histogram

	// OnFinished fires after the final round completes. Experiments
	// typically halt the scheduler here.
	OnFinished func()
}

// NewIncast wires the incast workload onto the topology: flow i's sender
// lives on worker i mod W (the paper round-robins threads over its nine
// servers) and its receiver on the aggregator.
func NewIncast(sched *sim.Scheduler, tt *netsim.TwoTier, cfg IncastConfig) *Incast {
	cfg.validate()
	in := &Incast{
		sched:       sched,
		tt:          tt,
		cfg:         cfg,
		senders:     make(map[packet.FlowID]*tcp.Sender, cfg.Flows),
		recvd:       make([]int64, cfg.Flows),
		statsMark:   make([]tcp.SenderStats, cfg.Flows),
		servedRound: make([]int, cfg.Flows),
		rng:         sim.NewRNG(cfg.Seed ^ 0x1ca5717e),
		cpuFree:     make(map[packet.NodeID]sim.Time),
		workerOf:    make(map[packet.FlowID]packet.NodeID),
		flowIdx:     make(map[packet.FlowID]int, cfg.Flows),
	}
	for i := range in.servedRound {
		in.servedRound[i] = -1
	}
	for i := 0; i < cfg.Flows; i++ {
		i := i
		w := tt.Workers[i%len(tt.Workers)]
		tcfg, cc := cfg.Factory(i)
		flow := cfg.flowID(i)
		conn := tcp.NewConn(tcfg, cc, w, tt.Aggregator, flow)
		conn.Receiver.OnData = func(n int64) { in.onData(i, n) }
		in.conns = append(in.conns, conn)
		in.senders[flow] = conn.Sender
		in.workerOf[flow] = w.ID()
		in.flowIdx[flow] = i
	}
	// All workers dispatch arriving requests to the matching flow sender.
	for _, w := range tt.Workers {
		w.OnControl = in.onRequest
	}
	return in
}

// AttachTelemetry registers the workload's instruments on reg under the
// given labels: a completed-round counter plus per-round goodput (Mbps) and
// FCT (ns) histograms, each observed as a round closes. With a nil
// registry the instruments stay nil and every update is a no-op.
func (in *Incast) AttachTelemetry(reg *telemetry.Registry, labels ...telemetry.Label) {
	in.mRounds = reg.Counter("workload_rounds_total", labels...)
	in.mGoodput = reg.Histogram("workload_round_goodput_mbps", labels...)
	in.mFCT = reg.Histogram("workload_round_fct_ns", labels...)
}

// Conns returns the workload's connections (flow i at index i), for
// attaching probes.
func (in *Incast) Conns() []*tcp.Conn { return in.conns }

// Results returns the completed rounds so far.
func (in *Incast) Results() []RoundResult { return in.results }

// Finished reports whether all rounds completed.
func (in *Incast) Finished() bool {
	return in.round >= int64(in.cfg.Rounds) && in.doneFlows == 0
}

// Start issues the first round's requests. The caller then runs the
// scheduler.
func (in *Incast) Start() { in.startRound() }

func (in *Incast) startRound() {
	in.roundStart = in.sched.Now()
	in.doneFlows = 0
	for i := range in.recvd {
		in.recvd[i] = 0
		in.statsMark[i] = in.conns[i].Sender.Stats()
	}
	// The aggregator's requests are real 40-byte packets sharing the
	// reverse path with ACKs; every worker receives its request at nearly
	// the same instant — the synchronization at the heart of incast.
	for i := range in.conns {
		in.sendRequest(i)
	}
	if in.cfg.RequestRetry > 0 {
		round := in.round
		in.sched.After(in.cfg.RequestRetry, func() { in.retryRequests(round) })
	}
}

// sendRequest issues the current round's request to flow i's worker. Seq
// carries the round number so workers can discard duplicates.
func (in *Incast) sendRequest(i int) {
	in.tt.Aggregator.Send(&packet.Packet{
		Dst:      in.conns[i].Receiver.Peer(),
		Flow:     in.cfg.flowID(i),
		Seq:      in.round,
		Flags:    packet.FlagREQ,
		ReqBytes: in.cfg.BytesPerFlow,
		SendTime: in.sched.Now(),
	})
}

// retryRequests re-issues the round's request to every flow that has
// delivered nothing yet, then re-arms itself while any such flow remains.
// Flows with partial data are left alone: their request arrived, and loss
// recovery is the transport's job.
func (in *Incast) retryRequests(round int64) {
	if in.round != round {
		return // the round closed while the timer was pending
	}
	pending := false
	for i := range in.conns {
		if in.recvd[i] == 0 {
			pending = true
			in.sendRequest(i)
		}
	}
	if pending {
		in.sched.After(in.cfg.RequestRetry, func() { in.retryRequests(round) })
	}
}

// onRequest runs on a worker when the aggregator's request arrives: the
// matching sender responds with the requested bytes after its service
// delay.
func (in *Incast) onRequest(pkt *packet.Packet) {
	snd, ok := in.senders[pkt.Flow]
	if !ok {
		panic(fmt.Sprintf("workload: request for unknown flow %d", pkt.Flow))
	}
	i := in.flowIdx[pkt.Flow]
	if int(pkt.Seq) <= in.servedRound[i] {
		return // duplicate of a request already being served
	}
	in.servedRound[i] = int(pkt.Seq)
	n := pkt.ReqBytes
	delay := sim.Duration(0)
	if in.cfg.ServiceJitter > 0 {
		delay = in.rng.Duration(in.cfg.ServiceJitter)
	}
	if in.cfg.ServiceTime > 0 {
		// Serialize response preparation on the worker's CPU: this
		// response starts when the CPU frees up, and holds it for an
		// exponential service time.
		w := in.workerOf[pkt.Flow]
		start := in.sched.Now().Add(delay)
		if free := in.cpuFree[w]; free > start {
			start = free
		}
		done := start.Add(in.rng.Exp(in.cfg.ServiceTime))
		in.cpuFree[w] = done
		in.sched.At(done, func() { snd.Send(n) })
		return
	}
	if delay > 0 {
		in.sched.After(delay, func() { snd.Send(n) })
		return
	}
	snd.Send(n)
}

// onData tracks per-flow response progress; when the last byte of the last
// flow arrives the round closes and the next begins.
func (in *Incast) onData(i int, n int64) {
	in.recvd[i] += n
	check.AtMost("workload.incast received bytes", in.recvd[i], in.cfg.BytesPerFlow)
	if in.recvd[i] == in.cfg.BytesPerFlow {
		in.doneFlows++
		if in.doneFlows == int64(in.cfg.Flows) {
			in.endRound()
		}
	}
}

func (in *Incast) endRound() {
	now := in.sched.Now()
	res := RoundResult{
		Start: in.roundStart,
		FCT:   now.Sub(in.roundStart),
		Bytes: in.cfg.BytesPerFlow * int64(in.cfg.Flows),
		Flows: make([]FlowRound, in.cfg.Flows),
	}
	for i, c := range in.conns {
		st := c.Sender.Stats()
		mark := in.statsMark[i]
		res.Flows[i] = FlowRound{
			Timeout:    st.Timeouts > mark.Timeouts,
			MinCwndECE: st.MinCwndECESends > mark.MinCwndECESends,
		}
	}
	in.results = append(in.results, res)
	in.mRounds.Add(1)
	in.mGoodput.Observe(int64(res.GoodputMbps() + 0.5))
	in.mFCT.Observe(int64(res.FCT))
	in.round++
	in.doneFlows = 0
	if in.round < int64(in.cfg.Rounds) {
		in.startRound()
		return
	}
	if in.OnFinished != nil {
		in.OnFinished()
	}
}
