package workload

import (
	"testing"

	"dctcpplus/internal/core"
	"dctcpplus/internal/dctcp"
	"dctcpplus/internal/netsim"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/tcp"
)

// factories for the three protocols under test.

func renoFactory(rtoMin sim.Duration) FlowFactory {
	return func(i int) (tcp.Config, tcp.CongestionControl) {
		cfg := tcp.DefaultConfig()
		cfg.RTOMin, cfg.RTOInit = rtoMin, rtoMin
		cfg.Seed = uint64(i) + 1
		return cfg, tcp.NewReno{}
	}
}

func dctcpFactory(rtoMin sim.Duration) FlowFactory {
	return func(i int) (tcp.Config, tcp.CongestionControl) {
		cfg := dctcp.Config()
		cfg.RTOMin, cfg.RTOInit = rtoMin, rtoMin
		cfg.Seed = uint64(i) + 1
		return cfg, dctcp.New(dctcp.DefaultGain)
	}
}

func plusFactory(rtoMin sim.Duration) FlowFactory {
	return func(i int) (tcp.Config, tcp.CongestionControl) {
		cfg := core.SenderConfig()
		cfg.RTOMin, cfg.RTOInit = rtoMin, rtoMin
		cfg.Seed = uint64(i) + 1
		return cfg, core.New(dctcp.DefaultGain, core.DefaultConfig())
	}
}

func runIncast(t *testing.T, cfg IncastConfig) *Incast {
	t.Helper()
	sched := sim.NewScheduler()
	tt := netsim.NewTwoTier(sched, 3, 3, netsim.DefaultTopologyConfig())
	in := NewIncast(sched, tt, cfg)
	in.OnFinished = sched.Halt
	in.Start()
	sched.RunUntil(sim.Time(10 * 60 * sim.Second))
	if !in.Finished() {
		t.Fatalf("incast did not finish: %d/%d rounds", len(in.Results()), cfg.Rounds)
	}
	return in
}

func TestIncastSmallNCompletes(t *testing.T) {
	in := runIncast(t, IncastConfig{
		Flows:        4,
		BytesPerFlow: (1 << 20) / 4,
		Rounds:       5,
		Factory:      dctcpFactory(200 * sim.Millisecond),
	})
	res := in.Results()
	if len(res) != 5 {
		t.Fatalf("rounds = %d", len(res))
	}
	for i, r := range res {
		if r.Bytes != 1<<20 {
			t.Errorf("round %d bytes = %d", i, r.Bytes)
		}
		if r.FCT <= 0 {
			t.Errorf("round %d FCT = %v", i, r.FCT)
		}
		// 1MB at 1Gbps is >= 8ms; with small N and DCTCP there should be no
		// timeouts, so FCT stays well under 100ms.
		if r.FCT > 100*sim.Millisecond {
			t.Errorf("round %d FCT = %v, suspiciously slow", i, r.FCT)
		}
		if g := r.GoodputMbps(); g < 100 || g > 1000 {
			t.Errorf("round %d goodput = %.0f Mbps", i, g)
		}
	}
}

func TestIncastRoundsAreSequential(t *testing.T) {
	in := runIncast(t, IncastConfig{
		Flows:        2,
		BytesPerFlow: 64 << 10,
		Rounds:       4,
		Factory:      renoFactory(200 * sim.Millisecond),
	})
	res := in.Results()
	for i := 1; i < len(res); i++ {
		if res[i].Start < res[i-1].Start.Add(res[i-1].FCT) {
			t.Errorf("round %d started before round %d finished", i, i-1)
		}
	}
}

func TestIncastPerFlowBytesConserved(t *testing.T) {
	const per = 100 << 10
	in := runIncast(t, IncastConfig{
		Flows:        6,
		BytesPerFlow: per,
		Rounds:       3,
		Factory:      dctcpFactory(200 * sim.Millisecond),
	})
	for i, c := range in.Conns() {
		want := int64(per * 3)
		if got := c.Receiver.Stats().DeliveredByte; got != want {
			t.Errorf("flow %d delivered %d, want %d", i, got, want)
		}
		if got := c.Sender.TotalBytes(); got != want {
			t.Errorf("flow %d sent total %d, want %d", i, got, want)
		}
	}
}

func TestIncastManyFlowsRenoSeesTimeouts(t *testing.T) {
	// 48 plain-TCP flows squeezing 1MB through a 128KB-buffer bottleneck:
	// the classic incast collapse must manifest as RTOs.
	in := runIncast(t, IncastConfig{
		Flows:        48,
		BytesPerFlow: (1 << 20) / 48,
		Rounds:       3,
		Factory:      renoFactory(10 * sim.Millisecond),
	})
	var timeouts int64
	for _, c := range in.Conns() {
		timeouts += c.Sender.Stats().Timeouts
	}
	if timeouts == 0 {
		t.Error("expected incast timeouts with 48 plain TCP flows")
	}
	// Round flags must reflect them.
	flagged := false
	for _, r := range in.Results() {
		for _, f := range r.Flows {
			if f.Timeout {
				flagged = true
			}
		}
	}
	if !flagged {
		t.Error("timeout round flags never set")
	}
}

func TestIncastDCTCPPlusAvoidsTimeouts(t *testing.T) {
	// The same pressure under DCTCP+ converges to timeout-free rounds —
	// the headline claim of the paper. The first rounds may overflow
	// (§VII, Fig. 14); steady state must be clean.
	in := runIncast(t, IncastConfig{
		Flows:         48,
		BytesPerFlow:  (1 << 20) / 48,
		Rounds:        12,
		Factory:       plusFactory(200 * sim.Millisecond),
		ServiceJitter: 2 * sim.Millisecond,
		Seed:          7,
	})
	res := in.Results()
	for i := 6; i < len(res); i++ {
		if res[i].FCT > 60*sim.Millisecond {
			t.Errorf("round %d FCT = %v, want << timeout scale after convergence", i, res[i].FCT)
		}
		for f, fr := range res[i].Flows {
			if fr.Timeout {
				t.Errorf("round %d flow %d timed out after convergence", i, f)
			}
		}
	}
}

func TestIncastValidation(t *testing.T) {
	sched := sim.NewScheduler()
	tt := netsim.NewTwoTier(sched, 1, 1, netsim.DefaultTopologyConfig())
	bad := []IncastConfig{
		{Flows: 0, BytesPerFlow: 1, Rounds: 1, Factory: renoFactory(time200())},
		{Flows: 1, BytesPerFlow: 0, Rounds: 1, Factory: renoFactory(time200())},
		{Flows: 1, BytesPerFlow: 1, Rounds: 0, Factory: renoFactory(time200())},
		{Flows: 1, BytesPerFlow: 1, Rounds: 1, Factory: nil},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad config %d did not panic", i)
				}
			}()
			NewIncast(sched, tt, cfg)
		}()
	}
}

func time200() sim.Duration { return 200 * sim.Millisecond }

func TestLongFlowChunks(t *testing.T) {
	sched := sim.NewScheduler()
	tt := netsim.NewTwoTier(sched, 3, 3, netsim.DefaultTopologyConfig())
	cfg, cc := dctcpFactory(200 * sim.Millisecond)(0)
	lf := NewLongFlow(sched, tt.Workers[0], tt.Aggregator, 500, cfg, cc, 1<<20)
	lf.Start()
	lf.Start() // idempotent
	sched.RunUntil(sim.Time(200 * sim.Millisecond))
	lf.Stop()
	sched.RunUntil(sim.Time(400 * sim.Millisecond))

	if len(lf.ChunkThroughputMbps()) < 3 {
		t.Fatalf("chunks completed = %d, want several in 200ms", len(lf.ChunkThroughputMbps()))
	}
	// A lone 1Gbps flow should push most of the line rate.
	if m := lf.MeanThroughputMbps(); m < 500 || m > 1000 {
		t.Errorf("mean throughput = %.0f Mbps", m)
	}
	if lf.TotalBytes() < int64(len(lf.ChunkThroughputMbps()))<<20 {
		t.Error("TotalBytes inconsistent with chunk count")
	}
	if lf.Conn() == nil {
		t.Error("nil conn")
	}
}

func TestLongFlowValidation(t *testing.T) {
	sched := sim.NewScheduler()
	tt := netsim.NewTwoTier(sched, 1, 1, netsim.DefaultTopologyConfig())
	cfg, cc := renoFactory(time200())(0)
	defer func() {
		if recover() == nil {
			t.Error("zero chunk did not panic")
		}
	}()
	NewLongFlow(sched, tt.Workers[0], tt.Aggregator, 1, cfg, cc, 0)
}

func TestLongFlowEmptyMean(t *testing.T) {
	sched := sim.NewScheduler()
	tt := netsim.NewTwoTier(sched, 1, 1, netsim.DefaultTopologyConfig())
	cfg, cc := renoFactory(time200())(0)
	lf := NewLongFlow(sched, tt.Workers[0], tt.Aggregator, 1, cfg, cc, 1<<20)
	if lf.MeanThroughputMbps() != 0 {
		t.Error("mean of no chunks should be 0")
	}
}

// requestRetryFixture runs a 2-flow incast whose round-0 requests are
// destroyed: the aggregator's uplink is blackholed at request-issue time
// and restored 2ms later. Requests are bare control packets with no
// transport recovery, so only the workload-level retry can save the round.
func requestRetryFixture(t *testing.T, retry sim.Duration) *Incast {
	t.Helper()
	sched := sim.NewScheduler()
	tt := netsim.NewTwoTier(sched, 3, 3, netsim.DefaultTopologyConfig())
	in := NewIncast(sched, tt, IncastConfig{
		Flows:        2,
		BytesPerFlow: 32 << 10,
		Rounds:       2,
		Factory:      dctcpFactory(10 * sim.Millisecond),
		RequestRetry: retry,
	})
	tt.Aggregator.Uplink().Link().SetDown(true)
	sched.After(2*sim.Millisecond, func() { tt.Aggregator.Uplink().Link().SetDown(false) })
	in.OnFinished = sched.Halt
	in.Start()
	sched.RunUntil(sim.Time(60 * sim.Second))
	return in
}

// TestRequestRetryRecoversDestroyedRequests pins the workload-level request
// recovery: with RequestRetry set, a round whose requests were all
// destroyed in flight is re-issued and the run completes; without it, the
// barrier hangs forever — the regression that froze fault-injected runs.
func TestRequestRetryRecoversDestroyedRequests(t *testing.T) {
	if in := requestRetryFixture(t, 0); in.Finished() {
		t.Fatal("run finished with requests destroyed and retries disabled; fixture no longer exercises the hang")
	}
	in := requestRetryFixture(t, 5*sim.Millisecond)
	if !in.Finished() {
		t.Fatal("run hung despite request retries")
	}
	if got := len(in.Results()); got != 2 {
		t.Fatalf("rounds completed = %d, want 2", got)
	}
	for i, r := range in.Results() {
		if r.Bytes != 64<<10 {
			t.Errorf("round %d bytes = %d, want %d", i, r.Bytes, 64<<10)
		}
	}
}

// TestDuplicateRequestServedOnce pins the retry's idempotence: a duplicate
// request for a round already being served must not re-trigger the
// response, or retries would double the round's bytes and trip the
// received-bytes invariant.
func TestDuplicateRequestServedOnce(t *testing.T) {
	sched := sim.NewScheduler()
	tt := netsim.NewTwoTier(sched, 3, 3, netsim.DefaultTopologyConfig())
	in := NewIncast(sched, tt, IncastConfig{
		Flows:        1,
		BytesPerFlow: 8 << 10,
		Rounds:       1,
		Factory:      dctcpFactory(10 * sim.Millisecond),
		// Retry far faster than the response completes, guaranteeing
		// duplicate requests land on a worker mid-service.
		RequestRetry: 10 * sim.Microsecond,
	})
	in.OnFinished = sched.Halt
	in.Start()
	sched.RunUntil(sim.Time(60 * sim.Second))
	if !in.Finished() {
		t.Fatal("incast did not finish")
	}
	// The received-bytes invariant (check.AtMost in onData) would have
	// panicked on a double-served request; finishing with the exact byte
	// count is the positive half.
	if got := in.Results()[0].Bytes; got != 8<<10 {
		t.Fatalf("round bytes = %d, want %d", got, 8<<10)
	}
}
