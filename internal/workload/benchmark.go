package workload

import (
	"dctcpplus/internal/netsim"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/tcp"
)

// BenchmarkConfig parameterizes the production-cluster benchmark traffic of
// §VI-D: query traffic (small fan-in responses from every worker) mixed
// with heavy-tailed background flows, both arriving as Poisson processes.
// The paper generates 7,000 queries and 7,000 background flows following
// the inter-arrival and size distributions measured in the DCTCP paper's
// production cluster; we reproduce the statistical shape with seeded
// exponential arrivals and a bounded-Pareto size distribution.
type BenchmarkConfig struct {
	// Queries is the number of query transactions.
	Queries int
	// QueryResponseBytes is each worker's response size (2KB in §VI-D).
	QueryResponseBytes int64
	// QueryMeanGap is the mean inter-arrival time of queries.
	QueryMeanGap sim.Duration

	// ShortFlows is the number of short-message transfers (§VI-D's "short
	// messages": the 50KB-1MB coordination traffic of the production
	// cluster).
	ShortFlows int
	// ShortMeanGap is the mean inter-arrival time of short messages.
	ShortMeanGap sim.Duration
	// ShortMinBytes/ShortMaxBytes bound the uniform short-message size.
	ShortMinBytes int64
	ShortMaxBytes int64

	// BackgroundFlows is the number of background transfers.
	BackgroundFlows int
	// BackgroundMeanGap is the mean inter-arrival time of background flows.
	BackgroundMeanGap sim.Duration
	// Background size distribution: bounded Pareto [Min, Max] with shape
	// Alpha. The defaults skew small ("short messages") with a heavy tail
	// of multi-megabyte transfers, matching the cluster measurements the
	// paper references.
	BackgroundMinBytes int64
	BackgroundMaxBytes int64
	BackgroundAlpha    float64
	// BackgroundAggFrac is the probability that a short/background
	// transfer targets the aggregator (the busy node whose link the query
	// fan-ins also cross); the remainder go to random other workers. The
	// paper's production traffic concentrates on hot nodes — without this
	// concentration the query and background classes never contend.
	BackgroundAggFrac float64

	// Factory builds every flow's transport (queries and background).
	Factory FlowFactory
	// Seed drives arrival times, sizes and placements.
	Seed uint64
}

// DefaultBenchmarkConfig returns a scaled-down benchmark preset calibrated
// so the three traffic classes actually contend at the aggregator's link
// (~70-90%% utilization with heavy-tailed episodes): that is the §VI-D
// regime in which DCTCP queries start missing their fan-ins while DCTCP+
// holds them. The paper-scale run (7,000 + 7,000) is selected by
// cmd/benchmark. All classes span comparable virtual time (counts are
// proportional to their rates).
func DefaultBenchmarkConfig() BenchmarkConfig {
	return BenchmarkConfig{
		Queries:            500,
		QueryResponseBytes: 2 << 10,
		QueryMeanGap:       1200 * sim.Microsecond,
		ShortFlows:         125,
		ShortMeanGap:       4800 * sim.Microsecond,
		ShortMinBytes:      50 << 10,
		ShortMaxBytes:      1 << 20,
		BackgroundFlows:    500,
		BackgroundMeanGap:  1200 * sim.Microsecond,
		BackgroundMinBytes: 10 << 10,
		BackgroundMaxBytes: 30 << 20,
		BackgroundAlpha:    1.05,
		BackgroundAggFrac:  0.8,
	}
}

func (c BenchmarkConfig) validate() {
	switch {
	case c.Queries < 0 || c.BackgroundFlows < 0 || c.ShortFlows < 0:
		panic("workload: negative benchmark counts")
	case c.Queries == 0 && c.BackgroundFlows == 0 && c.ShortFlows == 0:
		panic("workload: empty benchmark")
	case c.Queries > 0 && (c.QueryResponseBytes <= 0 || c.QueryMeanGap <= 0):
		panic("workload: invalid query parameters")
	case c.ShortFlows > 0 && (c.ShortMinBytes <= 0 ||
		c.ShortMaxBytes < c.ShortMinBytes || c.ShortMeanGap <= 0):
		panic("workload: invalid short-message parameters")
	case c.BackgroundFlows > 0 && (c.BackgroundMinBytes <= 0 ||
		c.BackgroundMaxBytes < c.BackgroundMinBytes || c.BackgroundAlpha <= 0 ||
		c.BackgroundMeanGap <= 0):
		panic("workload: invalid background parameters")
	case c.BackgroundAggFrac < 0 || c.BackgroundAggFrac > 1:
		panic("workload: BackgroundAggFrac out of [0,1]")
	case c.Factory == nil:
		panic("workload: nil FlowFactory")
	}
}

// QueryResult records one completed query transaction.
type QueryResult struct {
	Start sim.Time
	FCT   sim.Duration // request issue to last response byte across the fan-in
}

// FlowResult records one completed background flow.
type FlowResult struct {
	Start sim.Time
	Bytes int64
	FCT   sim.Duration
}

// Benchmark drives the §VI-D traffic mix over a two-tier topology.
type Benchmark struct {
	sched *sim.Scheduler
	tt    *netsim.TwoTier
	cfg   BenchmarkConfig
	rng   *sim.RNG

	nextFlow packet.FlowID
	senders  map[packet.FlowID]*tcp.Sender

	queriesDone int
	shortDone   int
	bgDone      int

	queryResults []QueryResult
	shortResults []FlowResult
	bgResults    []FlowResult

	// Aggregated sender stats, folded in as each flow retires.
	timeouts int64
	retrans  int64

	// OnFinished fires when every query and background flow completed.
	OnFinished func()
}

// NewBenchmark wires the benchmark onto the topology. Flow ids start at
// 10000 to stay clear of other workloads sharing the topology.
func NewBenchmark(sched *sim.Scheduler, tt *netsim.TwoTier, cfg BenchmarkConfig) *Benchmark {
	cfg.validate()
	b := &Benchmark{
		sched:    sched,
		tt:       tt,
		cfg:      cfg,
		rng:      sim.NewRNG(cfg.Seed),
		nextFlow: 10000,
		senders:  make(map[packet.FlowID]*tcp.Sender),
	}
	for _, w := range tt.Workers {
		w.OnControl = b.onRequest
	}
	return b
}

// QueryResults returns the completed query transactions.
func (b *Benchmark) QueryResults() []QueryResult { return b.queryResults }

// ShortResults returns the completed short-message flows.
func (b *Benchmark) ShortResults() []FlowResult { return b.shortResults }

// BackgroundResults returns the completed background flows.
func (b *Benchmark) BackgroundResults() []FlowResult { return b.bgResults }

// TotalTimeouts returns the RTO count accumulated across retired flows.
func (b *Benchmark) TotalTimeouts() int64 { return b.timeouts }

// TotalRetransmissions returns the retransmitted-packet count across
// retired flows.
func (b *Benchmark) TotalRetransmissions() int64 { return b.retrans }

// Finished reports whether all traffic completed.
func (b *Benchmark) Finished() bool {
	return b.queriesDone == b.cfg.Queries &&
		b.shortDone == b.cfg.ShortFlows &&
		b.bgDone == b.cfg.BackgroundFlows
}

// Start schedules every arrival. The caller then runs the scheduler.
func (b *Benchmark) Start() {
	var t sim.Time
	for i := 0; i < b.cfg.Queries; i++ {
		t = t.Add(b.rng.Exp(b.cfg.QueryMeanGap))
		b.sched.At(t, b.issueQuery)
	}
	t = 0
	for i := 0; i < b.cfg.ShortFlows; i++ {
		t = t.Add(b.rng.Exp(b.cfg.ShortMeanGap))
		b.sched.At(t, b.issueShort)
	}
	t = 0
	for i := 0; i < b.cfg.BackgroundFlows; i++ {
		t = t.Add(b.rng.Exp(b.cfg.BackgroundMeanGap))
		b.sched.At(t, b.issueBackground)
	}
}

// issueShort starts one short-message transfer: a uniform size in
// [ShortMinBytes, ShortMaxBytes] between a random worker pair.
func (b *Benchmark) issueShort() {
	size := b.cfg.ShortMinBytes
	if span := b.cfg.ShortMaxBytes - b.cfg.ShortMinBytes; span > 0 {
		size += b.rng.Int63n(span + 1)
	}
	b.issueTransfer(size, &b.shortResults, &b.shortDone)
}

func (b *Benchmark) allocFlow() packet.FlowID {
	id := b.nextFlow
	b.nextFlow++
	return id
}

// onRequest dispatches an arriving query request to its response sender.
func (b *Benchmark) onRequest(pkt *packet.Packet) {
	if snd, ok := b.senders[pkt.Flow]; ok {
		snd.Send(pkt.ReqBytes)
	}
}

// issueQuery starts one partition/aggregate transaction: a fresh connection
// from every worker, a 40-byte request to each, completion when the last
// response byte lands at the aggregator.
func (b *Benchmark) issueQuery() {
	start := b.sched.Now()
	remaining := len(b.tt.Workers)
	for _, w := range b.tt.Workers {
		flow := b.allocFlow()
		cfg, cc := b.cfg.Factory(int(flow))
		conn := tcp.NewConn(cfg, cc, w, b.tt.Aggregator, flow)
		b.senders[flow] = conn.Sender

		var got int64
		conn.Receiver.OnData = func(n int64) {
			got += n
			if got == b.cfg.QueryResponseBytes {
				remaining--
				if remaining == 0 {
					b.queryResults = append(b.queryResults, QueryResult{
						Start: start,
						FCT:   b.sched.Now().Sub(start),
					})
					b.queriesDone++
					b.maybeFinish()
				}
			}
		}
		conn.Sender.OnComplete = func(int64) {
			// Response fully acknowledged: retire the connection.
			st := conn.Sender.Stats()
			b.timeouts += st.Timeouts
			b.retrans += st.RetransPkts
			conn.Close()
			delete(b.senders, flow)
		}
		b.tt.Aggregator.Send(&packet.Packet{
			Dst:      w.ID(),
			Flow:     flow,
			Flags:    packet.FlagREQ,
			ReqBytes: b.cfg.QueryResponseBytes,
			SendTime: start,
		})
	}
}

// issueBackground starts one background transfer with a bounded-Pareto
// size.
func (b *Benchmark) issueBackground() {
	size := int64(b.rng.Pareto(float64(b.cfg.BackgroundMinBytes),
		float64(b.cfg.BackgroundMaxBytes), b.cfg.BackgroundAlpha))
	if size < b.cfg.BackgroundMinBytes {
		size = b.cfg.BackgroundMinBytes
	}
	b.issueTransfer(size, &b.bgResults, &b.bgDone)
}

// issueTransfer starts one point-to-point transfer between a random worker
// and a random other host (another worker or the aggregator), recording
// its completion into the given result set.
func (b *Benchmark) issueTransfer(size int64, results *[]FlowResult, done *int) {
	start := b.sched.Now()
	src := b.tt.Workers[b.rng.Intn(len(b.tt.Workers))]
	dst := b.pickDst(src)

	flow := b.allocFlow()
	cfg, cc := b.cfg.Factory(int(flow))
	conn := tcp.NewConn(cfg, cc, src, dst, flow)

	var got int64
	conn.Receiver.OnData = func(n int64) {
		got += n
		if got == size {
			*results = append(*results, FlowResult{
				Start: start,
				Bytes: size,
				FCT:   b.sched.Now().Sub(start),
			})
			*done++
			b.maybeFinish()
		}
	}
	conn.Sender.OnComplete = func(int64) {
		st := conn.Sender.Stats()
		b.timeouts += st.Timeouts
		b.retrans += st.RetransPkts
		conn.Close()
	}
	conn.Sender.Send(size)
}

// pickDst chooses a destination host distinct from src: the aggregator
// with probability BackgroundAggFrac, otherwise a uniform other worker.
func (b *Benchmark) pickDst(src *netsim.Host) *netsim.Host {
	if b.rng.Float64() < b.cfg.BackgroundAggFrac {
		return b.tt.Aggregator
	}
	hosts := make([]*netsim.Host, 0, len(b.tt.Workers))
	for _, w := range b.tt.Workers {
		if w != src {
			hosts = append(hosts, w)
		}
	}
	if len(hosts) == 0 {
		return b.tt.Aggregator
	}
	return hosts[b.rng.Intn(len(hosts))]
}

func (b *Benchmark) maybeFinish() {
	if b.Finished() && b.OnFinished != nil {
		b.OnFinished()
	}
}
