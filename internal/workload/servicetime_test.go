package workload

import (
	"testing"

	"dctcpplus/internal/netsim"
	"dctcpplus/internal/sim"
)

// TestServiceTimeSerializesPerWorker checks that the CPU-service model
// staggers colocated responses: with a large service time, the k-th flow
// on a worker cannot start before (k-1) services completed.
func TestServiceTimeSerializesPerWorker(t *testing.T) {
	sched := sim.NewScheduler()
	// Single worker carrying 4 flows.
	tt := netsim.NewTwoTier(sched, 1, 1, netsim.DefaultTopologyConfig())
	var starts []sim.Time
	in := NewIncast(sched, tt, IncastConfig{
		Flows:        4,
		BytesPerFlow: 1000,
		Rounds:       1,
		ServiceTime:  1 * sim.Millisecond,
		Seed:         5,
		Factory:      dctcpFactory(200 * sim.Millisecond),
	})
	// Observe response start times via the senders' first transmissions:
	// wrap OnData on receivers is post-network; instead, watch SndNxt...
	// Simplest: sample each conn's first nonzero TotalBytes time.
	seen := make([]bool, 4)
	var tick func()
	tick = func() {
		for i, c := range in.Conns() {
			if !seen[i] && c.Sender.TotalBytes() > 0 {
				seen[i] = true
				starts = append(starts, sched.Now())
			}
		}
		if len(starts) < 4 {
			sched.After(10*sim.Microsecond, tick)
		}
	}
	tick()
	in.OnFinished = sched.Halt
	in.Start()
	sched.RunUntil(sim.Time(10 * sim.Second))

	if len(starts) != 4 {
		t.Fatalf("observed %d response starts", len(starts))
	}
	// With mean 1ms exponential service serialized on one worker, the last
	// response should start well after the first (at least one service
	// time apart in expectation; use a loose bound).
	spread := starts[3].Sub(starts[0])
	if spread < 500*sim.Microsecond {
		t.Errorf("service spread = %v, want serialized starts", spread)
	}
}

// TestServiceJitterBoundsDelay verifies the uniform jitter keeps response
// starts within [0, jitter) of the request arrival.
func TestServiceJitterBoundsDelay(t *testing.T) {
	sched := sim.NewScheduler()
	tt := netsim.NewTwoTier(sched, 3, 3, netsim.DefaultTopologyConfig())
	const jitter = 2 * sim.Millisecond
	in := NewIncast(sched, tt, IncastConfig{
		Flows:         9,
		BytesPerFlow:  1000,
		Rounds:        1,
		ServiceJitter: jitter,
		Seed:          6,
		Factory:       dctcpFactory(200 * sim.Millisecond),
	})
	in.OnFinished = sched.Halt
	in.Start()
	sched.RunUntil(sim.Time(10 * sim.Second))
	res := in.Results()
	if len(res) != 1 {
		t.Fatal("round incomplete")
	}
	// Request propagation (~66us) + jitter (<2ms) + 1000B transfer (~70us)
	// bounds the FCT well under 3ms.
	if res[0].FCT > 3*sim.Millisecond {
		t.Errorf("FCT = %v, exceeds jitter bound", res[0].FCT)
	}
	if res[0].FCT < 100*sim.Microsecond {
		t.Errorf("FCT = %v, implausibly fast", res[0].FCT)
	}
}

// TestIncastDeterministicWithJitter: identical configs (same seed) yield
// identical round traces even with jitter and service time enabled.
func TestIncastDeterministicWithJitter(t *testing.T) {
	run := func() []RoundResult {
		sched := sim.NewScheduler()
		tt := netsim.NewTwoTier(sched, 3, 3, netsim.DefaultTopologyConfig())
		in := NewIncast(sched, tt, IncastConfig{
			Flows:         12,
			BytesPerFlow:  20 << 10,
			Rounds:        4,
			ServiceJitter: 2 * sim.Millisecond,
			ServiceTime:   100 * sim.Microsecond,
			Seed:          42,
			Factory:       plusFactory(200 * sim.Millisecond),
		})
		in.OnFinished = sched.Halt
		in.Start()
		sched.RunUntil(sim.Time(60 * sim.Second))
		return in.Results()
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 4 {
		t.Fatalf("rounds %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].FCT != b[i].FCT || a[i].Start != b[i].Start {
			t.Errorf("round %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
