package workload

import (
	"testing"

	"dctcpplus/internal/netsim"
	"dctcpplus/internal/sim"
)

func runBenchmark(t *testing.T, cfg BenchmarkConfig) *Benchmark {
	t.Helper()
	sched := sim.NewScheduler()
	tt := netsim.NewTwoTier(sched, 3, 3, netsim.DefaultTopologyConfig())
	b := NewBenchmark(sched, tt, cfg)
	b.OnFinished = sched.Halt
	b.Start()
	sched.RunUntil(sim.Time(30 * 60 * sim.Second))
	if !b.Finished() {
		t.Fatalf("benchmark incomplete: %d/%d queries, %d/%d background",
			len(b.QueryResults()), cfg.Queries, len(b.BackgroundResults()), cfg.BackgroundFlows)
	}
	return b
}

func smallBenchCfg() BenchmarkConfig {
	cfg := DefaultBenchmarkConfig()
	cfg.Queries = 40
	cfg.BackgroundFlows = 40
	cfg.BackgroundMaxBytes = 1 << 20
	cfg.Factory = dctcpFactory(10 * sim.Millisecond)
	cfg.Seed = 3
	return cfg
}

func TestBenchmarkCompletes(t *testing.T) {
	b := runBenchmark(t, smallBenchCfg())
	if len(b.QueryResults()) != 40 || len(b.BackgroundResults()) != 40 {
		t.Fatalf("results: %d queries, %d background",
			len(b.QueryResults()), len(b.BackgroundResults()))
	}
	for i, q := range b.QueryResults() {
		if q.FCT <= 0 {
			t.Errorf("query %d FCT = %v", i, q.FCT)
		}
		// A 9x2KB fan-in on an idle-ish network takes well under 10ms
		// unless a timeout struck; with DCTCP and RTOmin=10ms even a
		// timeout keeps it under ~50ms.
		if q.FCT > 100*sim.Millisecond {
			t.Errorf("query %d FCT = %v, suspiciously slow", i, q.FCT)
		}
	}
	for i, f := range b.BackgroundResults() {
		if f.Bytes < (10 << 10) {
			t.Errorf("background %d size = %d below min", i, f.Bytes)
		}
		if f.FCT <= 0 {
			t.Errorf("background %d FCT = %v", i, f.FCT)
		}
	}
}

func TestBenchmarkDeterministicGivenSeed(t *testing.T) {
	a := runBenchmark(t, smallBenchCfg())
	b := runBenchmark(t, smallBenchCfg())
	qa, qb := a.QueryResults(), b.QueryResults()
	if len(qa) != len(qb) {
		t.Fatal("different query counts")
	}
	for i := range qa {
		if qa[i] != qb[i] {
			t.Fatalf("query %d differs: %+v vs %+v", i, qa[i], qb[i])
		}
	}
}

func TestBenchmarkSeedChangesOutcome(t *testing.T) {
	cfg := smallBenchCfg()
	a := runBenchmark(t, cfg)
	cfg.Seed = 4
	b := runBenchmark(t, cfg)
	same := true
	for i := range a.QueryResults() {
		if a.QueryResults()[i] != b.QueryResults()[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical query traces")
	}
}

func TestBenchmarkHeavyTailSizes(t *testing.T) {
	cfg := smallBenchCfg()
	cfg.Queries = 0
	cfg.BackgroundFlows = 300
	cfg.BackgroundMeanGap = 2 * sim.Millisecond
	b := runBenchmark(t, cfg)
	small, large := 0, 0
	for _, f := range b.BackgroundResults() {
		if f.Bytes < 100<<10 {
			small++
		}
		if f.Bytes > 500<<10 {
			large++
		}
	}
	if small == 0 || large == 0 {
		t.Errorf("size distribution not heavy-tailed: %d small, %d large", small, large)
	}
	if small < large {
		t.Errorf("expected many more small flows than large: %d vs %d", small, large)
	}
}

func TestBenchmarkShortMessages(t *testing.T) {
	cfg := smallBenchCfg()
	cfg.Queries = 0
	cfg.BackgroundFlows = 0
	cfg.ShortFlows = 50
	b := runBenchmark(t, cfg)
	if len(b.ShortResults()) != 50 {
		t.Fatalf("short = %d", len(b.ShortResults()))
	}
	for i, f := range b.ShortResults() {
		if f.Bytes < cfg.ShortMinBytes || f.Bytes > cfg.ShortMaxBytes {
			t.Errorf("short %d size %d outside [%d, %d]", i, f.Bytes, cfg.ShortMinBytes, cfg.ShortMaxBytes)
		}
		if f.FCT <= 0 {
			t.Errorf("short %d FCT %v", i, f.FCT)
		}
	}
}

func TestBenchmarkAllThreeClasses(t *testing.T) {
	cfg := smallBenchCfg()
	cfg.Queries = 20
	cfg.ShortFlows = 20
	cfg.BackgroundFlows = 20
	b := runBenchmark(t, cfg)
	if len(b.QueryResults()) != 20 || len(b.ShortResults()) != 20 || len(b.BackgroundResults()) != 20 {
		t.Fatalf("classes: %d/%d/%d", len(b.QueryResults()), len(b.ShortResults()), len(b.BackgroundResults()))
	}
}

func TestBenchmarkShortValidation(t *testing.T) {
	sched := sim.NewScheduler()
	tt := netsim.NewTwoTier(sched, 1, 1, netsim.DefaultTopologyConfig())
	cfg := smallBenchCfg()
	cfg.ShortFlows = 5
	cfg.ShortMinBytes = 0
	defer func() {
		if recover() == nil {
			t.Error("bad short config did not panic")
		}
	}()
	NewBenchmark(sched, tt, cfg)
}

func TestBenchmarkQueriesOnly(t *testing.T) {
	cfg := smallBenchCfg()
	cfg.BackgroundFlows = 0
	b := runBenchmark(t, cfg)
	if len(b.QueryResults()) != cfg.Queries {
		t.Fatal("missing queries")
	}
}

func TestBenchmarkValidation(t *testing.T) {
	sched := sim.NewScheduler()
	tt := netsim.NewTwoTier(sched, 1, 1, netsim.DefaultTopologyConfig())
	bad := []func(*BenchmarkConfig){
		func(c *BenchmarkConfig) { c.Queries, c.ShortFlows, c.BackgroundFlows = 0, 0, 0 },
		func(c *BenchmarkConfig) { c.Queries = -1 },
		func(c *BenchmarkConfig) { c.QueryResponseBytes = 0 },
		func(c *BenchmarkConfig) { c.QueryMeanGap = 0 },
		func(c *BenchmarkConfig) { c.BackgroundMinBytes = 0 },
		func(c *BenchmarkConfig) { c.BackgroundMaxBytes = c.BackgroundMinBytes - 1 },
		func(c *BenchmarkConfig) { c.BackgroundAlpha = 0 },
		func(c *BenchmarkConfig) { c.Factory = nil },
	}
	for i, mut := range bad {
		cfg := smallBenchCfg()
		mut(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad config %d did not panic", i)
				}
			}()
			NewBenchmark(sched, tt, cfg)
		}()
	}
}
