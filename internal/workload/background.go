package workload

import (
	"dctcpplus/internal/netsim"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/stats"
	"dctcpplus/internal/tcp"
)

// LongFlow is a persistent bulk transfer (the paper's §VI-C background
// traffic). The sender keeps the stream continuously backlogged — as a real
// bulk application writing into the socket does — and throughput is
// accounted at the receiver: every ChunkBytes of delivered payload records
// one throughput sample, mirroring the paper's "collect the average
// throughput of two DCTCP+ long flows every time transmitting 1GB data".
// Chunk size is configurable so simulations stay tractable.
type LongFlow struct {
	sched *sim.Scheduler
	conn  *tcp.Conn
	chunk int64

	running    bool
	delivered  int64
	chunkStart sim.Time
	backlog    int64 // bytes handed to the sender but not yet delivered

	throughput []float64 // Mbps per completed chunk
}

// NewLongFlow wires a persistent flow from one host to another.
func NewLongFlow(sched *sim.Scheduler, from, to *netsim.Host, flow packet.FlowID,
	cfg tcp.Config, cc tcp.CongestionControl, chunkBytes int64) *LongFlow {
	if chunkBytes <= 0 {
		panic("workload: chunkBytes must be positive")
	}
	lf := &LongFlow{
		sched: sched,
		chunk: chunkBytes,
	}
	lf.conn = tcp.NewConn(cfg, cc, from, to, flow)
	lf.conn.Receiver.OnData = func(n int64) {
		lf.delivered += n
		lf.backlog -= n
		for lf.delivered >= lf.chunk {
			lf.delivered -= lf.chunk
			now := lf.sched.Now()
			lf.throughput = append(lf.throughput,
				stats.Mbps(lf.chunk, now.Sub(lf.chunkStart).Seconds()))
			lf.chunkStart = now
		}
		lf.refill()
	}
	return lf
}

// Conn returns the underlying connection.
func (lf *LongFlow) Conn() *tcp.Conn { return lf.conn }

// Start begins the transfer.
func (lf *LongFlow) Start() {
	if lf.running {
		return
	}
	lf.running = true
	lf.chunkStart = lf.sched.Now()
	lf.refill()
}

// Stop ceases refilling; in-flight data drains and no further samples are
// recorded beyond completed chunks.
func (lf *LongFlow) Stop() { lf.running = false }

// refill keeps at least two chunks of data queued at the sender so the
// stream never goes idle between accounting boundaries.
func (lf *LongFlow) refill() {
	if !lf.running {
		return
	}
	for lf.backlog < 2*lf.chunk {
		lf.conn.Sender.Send(lf.chunk)
		lf.backlog += lf.chunk
	}
}

// ChunkThroughputMbps returns the per-chunk throughput series.
func (lf *LongFlow) ChunkThroughputMbps() []float64 { return lf.throughput }

// TotalBytes returns the payload bytes delivered so far.
func (lf *LongFlow) TotalBytes() int64 {
	return int64(len(lf.throughput))*lf.chunk + lf.delivered
}

// MeanThroughputMbps returns the mean per-chunk throughput (0 if no chunk
// has completed).
func (lf *LongFlow) MeanThroughputMbps() float64 {
	if len(lf.throughput) == 0 {
		return 0
	}
	var sum float64
	for _, v := range lf.throughput {
		sum += v
	}
	return sum / float64(len(lf.throughput))
}
