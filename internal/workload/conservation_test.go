package workload

import (
	"testing"
	"testing/quick"

	"dctcpplus/internal/core"
	"dctcpplus/internal/dctcp"
	"dctcpplus/internal/netsim"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/tcp"
)

// TestIncastConservationProperty: for arbitrary small configurations and
// seeds, across every protocol family, the incast run conserves bytes
// exactly — every flow delivers rounds x perFlow bytes in order, the
// timeout taxonomy partitions the timeout count, and the bottleneck's
// packet accounting balances.
func TestIncastConservationProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	f := func(seed uint64, nRaw, protoRaw, roundsRaw uint8) bool {
		n := int(nRaw%24) + 1
		rounds := int(roundsRaw%4) + 1
		per := int64(4<<10) + int64(seed%1000)

		sched := sim.NewScheduler()
		tt := netsim.NewTwoTier(sched, 3, 3, netsim.DefaultTopologyConfig())
		var factory FlowFactory
		switch protoRaw % 3 {
		case 0:
			factory = func(i int) (tcp.Config, tcp.CongestionControl) {
				cfg := tcp.DefaultConfig()
				cfg.RTOMin, cfg.RTOInit = 10*sim.Millisecond, 10*sim.Millisecond
				cfg.Seed = seed + uint64(i)
				return cfg, tcp.NewReno{}
			}
		case 1:
			factory = func(i int) (tcp.Config, tcp.CongestionControl) {
				cfg := dctcp.Config()
				cfg.RTOMin, cfg.RTOInit = 10*sim.Millisecond, 10*sim.Millisecond
				cfg.Seed = seed + uint64(i)
				return cfg, dctcp.New(dctcp.DefaultGain)
			}
		default:
			factory = func(i int) (tcp.Config, tcp.CongestionControl) {
				cfg := core.SenderConfig()
				cfg.RTOMin, cfg.RTOInit = 10*sim.Millisecond, 10*sim.Millisecond
				cfg.Seed = seed + uint64(i)
				return cfg, core.New(dctcp.DefaultGain, core.DefaultConfig())
			}
		}
		in := NewIncast(sched, tt, IncastConfig{
			Flows:         n,
			BytesPerFlow:  per,
			Rounds:        rounds,
			Factory:       factory,
			ServiceJitter: sim.Duration(seed%4) * sim.Millisecond,
			Seed:          seed,
		})
		in.OnFinished = sched.Halt
		in.Start()
		sched.RunUntil(sim.Time(5 * 60 * sim.Second))
		if !in.Finished() {
			return false
		}
		want := per * int64(rounds)
		for _, c := range in.Conns() {
			if c.Receiver.Stats().DeliveredByte != want {
				return false
			}
			st := c.Sender.Stats()
			if st.FLossTimeouts+st.LAckTimeouts != st.Timeouts {
				return false
			}
			if st.RetransPkts > st.SentPkts {
				return false
			}
		}
		// Port accounting balances at the bottleneck.
		ps := tt.BottleneckPort.Stats()
		if ps.DequeuedPkts != ps.EnqueuedPkts {
			return false
		}
		return tt.BottleneckPort.QueueBytes() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
