package check

import (
	"math"
	"strings"
	"testing"

	"dctcpplus/internal/sim"
)

// mustPanic runs fn and asserts it panics with the invariant prefix.
func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s: expected panic, got none", name)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "invariant violated") {
			t.Fatalf("%s: panic %v lacks the invariant prefix", name, r)
		}
	}()
	fn()
}

func TestPassingAssertions(t *testing.T) {
	NonNegative("n", 0)
	NonNegative("n", 42)
	AtMost("n", 7, 7)
	Unit("f", 0)
	Unit("f", 1)
	Unit("f", 0.5)
	AtLeast("w", 1, 1)
	AtLeast("w", 2.5, 1)
	NonNegativeDur("d", 0)
	NonNegativeDur("d", sim.Millisecond)
	ZeroDur("d", 0)
	Monotone("t", sim.Time(5), sim.Time(5))
	Monotone("t", sim.Time(5), sim.Time(6))
}

func TestFailingAssertions(t *testing.T) {
	mustPanic(t, "NonNegative", func() { NonNegative("n", -1) })
	mustPanic(t, "AtMost", func() { AtMost("n", 8, 7) })
	mustPanic(t, "Unit/low", func() { Unit("f", -0.01) })
	mustPanic(t, "Unit/high", func() { Unit("f", 1.01) })
	mustPanic(t, "Unit/nan", func() { Unit("f", math.NaN()) })
	mustPanic(t, "AtLeast", func() { AtLeast("w", 0.99, 1) })
	mustPanic(t, "AtLeast/nan", func() { AtLeast("w", math.NaN(), 1) })
	mustPanic(t, "NonNegativeDur", func() { NonNegativeDur("d", -1) })
	mustPanic(t, "ZeroDur", func() { ZeroDur("d", sim.Microsecond) })
	mustPanic(t, "Monotone", func() { Monotone("t", sim.Time(6), sim.Time(5)) })
}
