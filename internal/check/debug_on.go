//go:build checkdebug

package check

// Debug reports whether the checkdebug build tag is active. Debug builds
// add runtime backstops that mirror simlint's static lifecycle rules —
// notably the packet-pool poison pattern (internal/packet): recycled
// packets get their sequence number scrambled to a sentinel, a second
// Pool.Put of the same packet panics with the offending flow, and Pool.Get
// un-poisons before reuse. The backstops cost branches on the hot path, so
// they are compiled out of normal builds; `make typestate-smoke` runs the
// packet tests with the tag on.
const Debug = true
