// Package check provides always-on runtime invariant assertions for the
// simulator's hot layers. Each assertion is a single comparison plus a
// panic on violation — cheap enough to leave enabled in experiments and
// benchmarks, where a silently corrupted queue depth or a negative
// slow_time would otherwise surface as a subtly wrong figure instead of a
// crash with a culprit.
//
// The static side of the same contract lives in internal/lint (and runs as
// cmd/simlint): the analyzers keep wall-clock time, raw durations and
// mixed units out of the code, while this package checks the quantities
// the type system cannot see — value ranges and monotonicity.
//
// All assertions funnel through Failf so every violation message carries
// the same greppable "invariant violated" prefix.
package check

import (
	"fmt"

	"dctcpplus/internal/sim"
)

// Failf panics with a uniform invariant-violation message.
func Failf(format string, args ...any) {
	panic("check: invariant violated: " + fmt.Sprintf(format, args...))
}

// NonNegative asserts an integer quantity (queue depth, inflight bytes)
// has not gone negative.
func NonNegative(what string, v int64) {
	if v < 0 {
		Failf("%s = %d, want >= 0", what, v)
	}
}

// AtMost asserts an integer quantity stays within its upper bound (buffer
// occupancy vs. capacity, received bytes vs. requested bytes).
func AtMost(what string, v, max int64) {
	if v > max {
		Failf("%s = %d, want <= %d", what, v, max)
	}
}

// Unit asserts a fraction stays in [0, 1] — DCTCP's congestion-extent
// estimate alpha, marking probabilities. The negated form catches NaN.
func Unit(what string, v float64) {
	if !(v >= 0 && v <= 1) {
		Failf("%s = %v, want [0, 1]", what, v)
	}
}

// AtLeast asserts a float quantity stays at or above its floor (the
// congestion window never drops below the 1-MSS loss window). The negated
// form catches NaN.
func AtLeast(what string, v, min float64) {
	if !(v >= min) {
		Failf("%s = %v, want >= %v", what, v, min)
	}
}

// NonNegativeDur asserts a duration (slow_time, pacing delay) has not
// gone negative.
func NonNegativeDur(what string, d sim.Duration) {
	if d < 0 {
		Failf("%s = %v, want >= 0", what, d)
	}
}

// ZeroDur asserts a duration is exactly zero — Algorithm 1 disengages
// slow_time entirely in DCTCP_NORMAL.
func ZeroDur(what string, d sim.Duration) {
	if d != 0 {
		Failf("%s = %v, want 0", what, d)
	}
}

// Monotone asserts virtual time never moves backwards.
func Monotone(what string, prev, next sim.Time) {
	if next < prev {
		Failf("%s went backwards: %v -> %v", what, prev, next)
	}
}
