//go:build !checkdebug

package check

// Debug reports whether the checkdebug build tag is active; see
// debug_on.go for what debug builds add. In normal builds every debug
// backstop compiles away.
const Debug = false
