// Package oracle is the trace-oracle conformance layer: it subscribes to
// the simulator's packet taps and per-ACK probe streams and replays every
// packet, ACK and timer event through a set of pluggable state-machine
// oracles — cumulative-ACK monotonicity, retransmission legality (RFC 5681
// fast retransmit / RFC 6582 NewReno deflation arithmetic), RFC 6298 RTO
// backoff/reset discipline (Karn), RFC 3168 / DCTCP precise ECE echo,
// DCTCP's once-per-window alpha cadence, the DCTCP+ Figure 4 state machine
// with Algorithm 1's slow_time bounds, per-event queue-occupancy bounds,
// and whole-network packet/byte conservation.
//
// The checker is a pure observer: it chains onto the existing hook fields
// (Port.OnTransmit, Host.OnDeliver, Receiver.OnAckSent, Sender.OnAckProbe,
// Sender.OnTimeoutEvent, Port.OnQueueChange) without replacing them, and
// every method on a nil *Checker is a no-op, so disabled runs pay zero
// allocations and zero branches beyond the hook nil-checks that already
// exist. Rules are envelopes: they admit every behavior the engine can
// legally produce (no false positives under fault-induced reordering) and
// flag what the RFCs and the paper forbid. Each violation carries a
// minimized event-window trace — the last few events of the offending flow
// — in the spirit of Misund's "Disentangling Flaws in Linux DCTCP", where
// protocol bugs "kept surfacing with no apparent pattern" until traces
// were checked systematically.
package oracle

import (
	"fmt"

	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

// Kind classifies one observed event.
type Kind int

const (
	// EvDataSent: a data segment begins serialization at the sending
	// host's uplink port.
	EvDataSent Kind = iota
	// EvAckSent: the receiver emits a cumulative ACK (before any queueing).
	EvAckSent
	// EvDataDeliver: a data segment reaches the receiving host, carrying
	// its final (post-marking) ECN codepoint.
	EvDataDeliver
	// EvAckDeliver: an ACK reaches the sending host.
	EvAckDeliver
	// EvAckProbe: the sender finished processing one ACK; the event
	// carries the post-update window/state snapshot.
	EvAckProbe
	// EvRTO: the sender's retransmission timer expired.
	EvRTO
)

func (k Kind) String() string {
	switch k {
	case EvDataSent:
		return "data-sent"
	case EvAckSent:
		return "ack-sent"
	case EvDataDeliver:
		return "data-deliver"
	case EvAckDeliver:
		return "ack-deliver"
	case EvAckProbe:
		return "ack-probe"
	case EvRTO:
		return "rto"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one replayed observation. Only the fields relevant to its Kind
// are populated; the struct is kept flat so the checker's ring buffer holds
// plain values.
type Event struct {
	At   sim.Time
	Kind Kind
	Flow packet.FlowID

	// Packet-carried fields (sent/deliver/ack events).
	Seq        int64
	End        int64
	AckNo      int64
	Payload    int
	CE         bool // data: final ECN == CE
	Ece        bool // ACKs: ECN-Echo flag; probes: the processed ACK's ECE
	Cwr        bool // data: FlagCWR
	Retransmit bool

	// Sender snapshot (probe/RTO events).
	Cwnd     float64
	Ssthresh float64
	SndUna   int64
	SndNxt   int64
	Backoff  int
	State    int // tcp.SenderState

	// Congestion-module observables (probe events; negative = absent).
	AlphaUpdates int64
	PlusState    int // core.State; -1 when the flow has no enhancer
	SlowTime     sim.Duration
}

// format renders one event for violation windows.
func (e Event) format() string {
	switch e.Kind {
	case EvDataSent:
		rtx := ""
		if e.Retransmit {
			rtx = " rtx"
		}
		return fmt.Sprintf("%v flow=%d data-sent [%d,%d)%s", e.At, e.Flow, e.Seq, e.End, rtx)
	case EvAckSent:
		return fmt.Sprintf("%v flow=%d ack-sent ack=%d ece=%v", e.At, e.Flow, e.AckNo, e.Ece)
	case EvDataDeliver:
		return fmt.Sprintf("%v flow=%d data-deliver [%d,%d) ce=%v cwr=%v", e.At, e.Flow, e.Seq, e.End, e.CE, e.Cwr)
	case EvAckDeliver:
		return fmt.Sprintf("%v flow=%d ack-deliver ack=%d ece=%v", e.At, e.Flow, e.AckNo, e.Ece)
	case EvAckProbe:
		return fmt.Sprintf("%v flow=%d ack-probe cwnd=%.2f ssthresh=%.2f una=%d nxt=%d state=%d backoff=%d ece=%v alphaUpd=%d plus=%d slow=%v",
			e.At, e.Flow, e.Cwnd, e.Ssthresh, e.SndUna, e.SndNxt, e.State, e.Backoff, e.Ece, e.AlphaUpdates, e.PlusState, e.SlowTime)
	case EvRTO:
		return fmt.Sprintf("%v flow=%d rto una=%d backoff=%d", e.At, e.Flow, e.SndUna, e.Backoff)
	}
	return fmt.Sprintf("%v flow=%d %v", e.At, e.Flow, e.Kind)
}

// Violation is one oracle failure: which rule, where, and a minimized
// event-window trace (the most recent events of the offending flow, oldest
// first) for diagnosis.
type Violation struct {
	At   sim.Time
	Rule string
	Flow packet.FlowID // 0 for network-wide rules (conservation, queues)
	Msg  string
	// Window is the minimized trace: the last <= windowEvents ring events
	// touching the flow (all flows for network-wide rules).
	Window []string
}

func (v Violation) String() string {
	return fmt.Sprintf("%v [%s] flow=%d: %s", v.At, v.Rule, v.Flow, v.Msg)
}
