package oracle

import (
	"fmt"
	"math"

	"dctcpplus/internal/core"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/tcp"
)

// eps absorbs float64 rounding in window arithmetic comparisons; windows
// are counted in MSS units, so 1e-6 is far below any legal step.
const eps = 1e-6

// ceRange is a half-open byte range with the CE state its bytes first
// arrived with — the checker's shadow of the receiver's first-arrival
// reassembly model.
type ceRange struct {
	lo, hi int64
	ce     bool
}

// flowState holds all per-flow oracle state. Every handler runs
// synchronously inside the simulator's single-threaded event loop, in the
// exact order the endpoints process the underlying events.
type flowState struct {
	c    *Checker
	flow packet.FlowID
	cfg  tcp.Config

	plus    *core.Enhancer // nil unless the flow runs the DCTCP+ enhancer
	plusCfg core.Config
	updater alphaUpdater // nil unless the flow runs a DCTCP-family estimator

	// --- packet-level models -------------------------------------------

	// maxSentEnd is the highest byte frontier ever serialized (snd_nxt
	// high-water mark as seen on the wire).
	maxSentEnd int64

	// Retransmission legality (RFC 5681/6582/6298 envelope): bytes below
	// permittedEnd have been granted retransmission permission by a
	// dupack-threshold crossing or an RTO. The grant is monotone — it is
	// never revoked — because with fault-induced reordering a legally
	// queued retransmission can serialize after the loss episode that
	// justified it has already been repaired by a late-arriving original.
	modelSndUna  int64
	dupacks      int64
	permittedEnd int64

	// Receiver echo model: first-arrival CE states of bytes at or above
	// the last emitted ACK, plus the RFC 3168 latch and the CE state of
	// the most recently delivered segment (the DCTCP flip machine's
	// ceState shadow).
	lastAckNo int64
	ackSeen   bool
	rcv       []ceRange
	eceLatch  bool
	lastCE    bool
	delivered bool

	// --- probe-level models --------------------------------------------

	prevProbe    Event
	haveProbe    bool
	rtoCount     int64 // EvRTO events so far
	prevRTOCount int64 // rtoCount at the previous probe
	freshEnd     int64 // lowest End of a never-retransmitted send after the last RTO; 0 = none

	// Alpha-cadence interval model: the estimator's windowEnd lies in
	// [aLoEnd, aHiEnd]; modelAcked mirrors its ackedBytes accumulator.
	aLoEnd     int64
	aHiEnd     int64
	modelAcked int64
}

func newFlowState(c *Checker, flow packet.FlowID, snd *tcp.Sender) *flowState {
	fs := &flowState{c: c, flow: flow, cfg: snd.Config()}
	cc := snd.CC()
	if e := enhancerOf(cc); e != nil {
		fs.plus = e
		fs.plusCfg = e.ConfigUsed()
	}
	fs.updater = updaterOf(cc)
	// The estimator anchors windowEnd = snd_nxt at Init; attach happens
	// before traffic, so the anchor interval starts at the current
	// frontier.
	fs.aLoEnd, fs.aHiEnd = snd.SndUna(), snd.SndNxt()
	return fs
}

func (fs *flowState) report(rule, msg string) {
	fs.c.report(rule, fs.flow, fs.c.sched.Now(), msg)
}

// --- packet events ------------------------------------------------------

// onDataSent checks retransmission legality: a segment marked Retransmit
// may only appear on the wire if its range was covered by a dupack-
// threshold crossing (RFC 5681 fast retransmit, including RFC 6582 partial
// ACK repairs, whose permission extends to the recovery point) or by an
// RTO (go-back-N repair). Never-granted retransmissions — the engine
// inventing repair traffic without a loss signal — are the violation.
func (fs *flowState) onDataSent(pkt *packet.Packet) {
	now := fs.c.sched.Now()
	end := pkt.End()
	fs.c.record(Event{At: now, Kind: EvDataSent, Flow: fs.flow,
		Seq: pkt.Seq, End: end, Payload: pkt.Payload,
		Cwr: pkt.Flags.Has(packet.FlagCWR), Retransmit: pkt.Retransmit})

	if pkt.Retransmit {
		if end > fs.permittedEnd {
			fs.report("retrans-legality", fmt.Sprintf(
				"retransmission [%d,%d) beyond granted permission %d (no dupack threshold or RTO covers it)",
				pkt.Seq, end, fs.permittedEnd))
		}
	} else {
		if end > fs.maxSentEnd {
			fs.maxSentEnd = end
		}
		// A fresh (transmitted-exactly-once) segment after the last RTO is
		// the only thing whose RTT sample may clear the backoff (Karn).
		if fs.rtoCount > 0 && (fs.freshEnd == 0 || end < fs.freshEnd) {
			fs.freshEnd = end
		}
	}
}

// onAckDeliver models the sender-side feedback stream feeding the
// retransmission-permission envelope: cumulative advances reset the dupack
// run; repeats of the current cumulative point count toward the fast-
// retransmit threshold, which grants permission up to the current send
// frontier (the NewReno recovery point is at most that).
func (fs *flowState) onAckDeliver(pkt *packet.Packet) {
	now := fs.c.sched.Now()
	fs.c.record(Event{At: now, Kind: EvAckDeliver, Flow: fs.flow,
		AckNo: pkt.AckNo, Ece: pkt.Flags.Has(packet.FlagECE)})
	switch {
	case pkt.AckNo > fs.modelSndUna:
		fs.modelSndUna = pkt.AckNo
		fs.dupacks = 0
	case pkt.AckNo == fs.modelSndUna:
		fs.dupacks++
		if fs.dupacks >= int64(fs.cfg.DupThresh) && fs.maxSentEnd > fs.permittedEnd {
			fs.permittedEnd = fs.maxSentEnd
		}
	}
}

// onDataDeliver feeds the receiver echo model with the segment's final
// (post-marking) ECN codepoint, in the exact order the receiver processes
// it: first-arrival CE per byte, the RFC 3168 latch (CWR processed before
// CE, as the receiver does), and the DCTCP flip machine's last-segment
// state.
func (fs *flowState) onDataDeliver(pkt *packet.Packet) {
	now := fs.c.sched.Now()
	ce := pkt.ECN == packet.CE
	fs.c.record(Event{At: now, Kind: EvDataDeliver, Flow: fs.flow,
		Seq: pkt.Seq, End: pkt.End(), Payload: pkt.Payload,
		CE: ce, Cwr: pkt.Flags.Has(packet.FlagCWR)})

	if pkt.Flags.Has(packet.FlagCWR) {
		fs.eceLatch = false
	}
	if ce {
		fs.eceLatch = true
	}
	fs.lastCE = ce
	fs.delivered = true
	fs.insertRange(pkt.Seq, pkt.End(), ce)
}

// insertRange records [lo, hi) in the first-arrival CE model, clipped to
// the unacknowledged region. Mirrors the receiver's reassembly semantics:
// bytes keep the CE state of the copy that arrived first.
func (fs *flowState) insertRange(lo, hi int64, ce bool) {
	if lo < fs.lastAckNo {
		lo = fs.lastAckNo
	}
	pos := lo
	i := 0
	for pos < hi {
		if i < len(fs.rcv) && fs.rcv[i].lo <= pos {
			if fs.rcv[i].hi > pos {
				pos = fs.rcv[i].hi
			}
			i++
			continue
		}
		gapHi := hi
		if i < len(fs.rcv) && fs.rcv[i].lo < gapHi {
			gapHi = fs.rcv[i].lo
		}
		fs.rcv = append(fs.rcv, ceRange{})
		copy(fs.rcv[i+1:], fs.rcv[i:])
		fs.rcv[i] = ceRange{pos, gapHi, ce}
		i++
		pos = gapHi
	}
}

// onAckSent is the cumulative-ACK and ECE-echo oracle. Monotonicity: the
// cumulative point never regresses and never passes the send frontier.
// Echo: an advancing ACK must cover a CE-uniform range of first-arrival
// bytes whose state matches its ECE bit (the DCTCP precise-echo
// aggregation rule — one ACK per CE-state flip); a duplicate ACK echoes
// the most recently delivered segment's state (precise) or the RFC 3168
// latch (classic, CWR terminates the echo epoch).
func (fs *flowState) onAckSent(pkt *packet.Packet) {
	now := fs.c.sched.Now()
	ece := pkt.Flags.Has(packet.FlagECE)
	fs.c.record(Event{At: now, Kind: EvAckSent, Flow: fs.flow, AckNo: pkt.AckNo, Ece: ece})

	ackNo := pkt.AckNo
	if fs.ackSeen && ackNo < fs.lastAckNo {
		fs.report("ack-monotonic", fmt.Sprintf("cumulative ACK regressed %d -> %d", fs.lastAckNo, ackNo))
		return
	}
	if ackNo > fs.maxSentEnd {
		fs.report("ack-monotonic", fmt.Sprintf("ACK %d beyond send frontier %d", ackNo, fs.maxSentEnd))
	}

	if ackNo > fs.lastAckNo {
		fs.checkEchoAdvance(ackNo, ece)
		fs.dropBelow(ackNo)
		fs.lastAckNo = ackNo
	} else {
		fs.checkEchoDup(ece)
	}
	fs.ackSeen = true
}

// checkEchoAdvance validates an ACK advancing the cumulative point over
// [lastAckNo, ackNo): in every ECN mode the advanced range must be fully
// covered by delivered bytes; the ECE bit is checked against the mode's
// echo model.
func (fs *flowState) checkEchoAdvance(ackNo int64, ece bool) {
	precise := false
	switch fs.cfg.ECN {
	case tcp.ECNOff:
		if ece {
			fs.report("ece-echo", "ECE set with ECN off")
		}
	case tcp.ECNClassic:
		if ece != fs.eceLatch {
			fs.report("ece-echo", fmt.Sprintf("classic echo %v != latch %v", ece, fs.eceLatch))
		}
	case tcp.ECNPrecise:
		precise = true
	default:
		panic("oracle: unknown ECN mode")
	}
	// Precise echo: the advanced range must carry one uniform first-arrival
	// CE state equal to the ECE bit. Mixed states inside one cumulative ACK
	// are exactly the delayed-ACK aggregation bug DCTCP's two-state machine
	// exists to prevent.
	pos := fs.lastAckNo
	for _, r := range fs.rcv {
		if r.hi <= pos {
			continue
		}
		if r.lo > pos {
			break // hole: bytes acked but never delivered (reported below)
		}
		if precise && r.ce != ece {
			fs.report("ece-echo", fmt.Sprintf(
				"ACK %d (ece=%v) covers bytes [%d,%d) first delivered with ce=%v — CE-state flip aggregated into one ACK",
				ackNo, ece, max64(r.lo, fs.lastAckNo), min64(r.hi, ackNo), r.ce))
			return
		}
		pos = r.hi
		if pos >= ackNo {
			return
		}
	}
	fs.report("ack-monotonic", fmt.Sprintf(
		"ACK %d advances over bytes [%d,%d) never delivered to the receiver", ackNo, pos, ackNo))
}

// checkEchoDup validates the ECE bit of a non-advancing (duplicate) ACK.
func (fs *flowState) checkEchoDup(ece bool) {
	switch fs.cfg.ECN {
	case tcp.ECNOff:
		if ece {
			fs.report("ece-echo", "ECE set with ECN off")
		}
	case tcp.ECNClassic:
		if ece != fs.eceLatch {
			fs.report("ece-echo", fmt.Sprintf("classic echo %v != latch %v", ece, fs.eceLatch))
		}
	case tcp.ECNPrecise:
		// Every ACK emission is triggered by (or follows, for the delack
		// timer, only with in-order segments pending) a segment delivery
		// that re-synced the flip machine, so a duplicate ACK echoes the
		// last delivered segment's CE state.
		if fs.delivered && ece != fs.lastCE {
			fs.report("ece-echo", fmt.Sprintf(
				"duplicate ACK ece=%v but last delivered segment ce=%v", ece, fs.lastCE))
		}
	default:
		panic("oracle: unknown ECN mode")
	}
}

// dropBelow discards model ranges fully below the new cumulative point.
func (fs *flowState) dropBelow(ackNo int64) {
	keep := 0
	for _, r := range fs.rcv {
		if r.hi <= ackNo {
			continue
		}
		if r.lo < ackNo {
			r.lo = ackNo
		}
		fs.rcv[keep] = r
		keep++
	}
	fs.rcv = fs.rcv[:keep]
}

// --- sender events ------------------------------------------------------

// onRTO observes a retransmission timeout: it grants go-back-N repair
// permission, re-anchors the alpha-cadence model at the (about to be)
// rewound frontier, and invalidates any pending fresh-send evidence.
// The hook fires before the engine rewinds snd_nxt, so snd still reports
// the pre-rewind frontier here.
func (fs *flowState) onRTO(snd *tcp.Sender) {
	now := fs.c.sched.Now()
	una := snd.SndUna() // unchanged by the rewind (only snd_nxt rewinds)
	fs.c.record(Event{At: now, Kind: EvRTO, Flow: fs.flow,
		SndUna: una, Backoff: int(snd.RTOBackoff())})
	fs.rtoCount++
	fs.freshEnd = 0
	// Go-back-N legally retransmits everything below the pre-rewind
	// snd_nxt. That frontier can run ahead of the wire-observed one: the
	// timer may fire while transmitted segments still sit unserialized in
	// the sender host's uplink queue (the kernel-TCP analogue is an RTO
	// firing with data in the qdisc), so the grant must extend to the
	// engine's frontier, not just maxSentEnd.
	if nxt := snd.SndNxt(); nxt > fs.permittedEnd {
		fs.permittedEnd = nxt
	}
	if fs.maxSentEnd > fs.permittedEnd {
		fs.permittedEnd = fs.maxSentEnd
	}
	// The estimator re-anchors windowEnd at the rewound snd_nxt == snd_una
	// and clears its accumulators (the PR 4 contract — the D2TCP module
	// originally swallowed this hook, which this model's overdue rule
	// catches).
	fs.aLoEnd, fs.aHiEnd = una, una
	fs.modelAcked = 0
}

// onProbe is the per-ACK sender oracle: NewReno recovery arithmetic
// (RFC 6582), RTO backoff discipline (RFC 6298 §5.5-5.7 with Karn's
// reset rule), DCTCP alpha cadence, and the DCTCP+ Figure 4 machine.
func (fs *flowState) onProbe(snd *tcp.Sender, ece bool) {
	now := fs.c.sched.Now()
	ev := Event{At: now, Kind: EvAckProbe, Flow: fs.flow, Ece: ece,
		Cwnd: snd.CwndMSS(), Ssthresh: snd.SsthreshMSS(),
		SndUna: snd.SndUna(), SndNxt: snd.SndNxt(),
		Backoff: int(snd.RTOBackoff()), State: int(snd.State()),
		AlphaUpdates: -1, PlusState: -1}
	if fs.updater != nil {
		ev.AlphaUpdates = fs.updater.Updates()
	}
	if fs.plus != nil {
		ev.PlusState = int(fs.plus.State())
		ev.SlowTime = fs.plus.SlowTime()
	}
	fs.c.record(ev)

	if !fs.haveProbe {
		fs.haveProbe = true
		fs.prevProbe = ev
		fs.prevRTOCount = fs.rtoCount
		return
	}
	prev := fs.prevProbe
	rtosBetween := fs.rtoCount - fs.prevRTOCount

	fs.checkBackoff(prev, ev, rtosBetween)
	if rtosBetween == 0 {
		fs.checkNewReno(prev, ev)
		fs.checkPlus(prev, ev)
	}
	fs.checkAlphaCadence(prev, ev)

	fs.prevProbe = ev
	fs.prevRTOCount = fs.rtoCount
}

// checkBackoff enforces the RFC 6298 backoff discipline: the exponent
// grows by exactly one per RTO (saturating at the engine's cap of 16) and
// resets to zero only on an RTT sample from a segment transmitted exactly
// once after the last timeout — Karn's rule. A reset without fresh-send
// evidence is the bug this PR fixes in the engine.
func (fs *flowState) checkBackoff(prev, cur Event, rtos int64) {
	expected := int64(prev.Backoff) + rtos
	if expected > 16 {
		expected = 16
	}
	switch {
	case int64(cur.Backoff) == expected:
		// Normal evolution (incl. no change).
	case cur.Backoff == 0 && expected > 0:
		if fs.freshEnd == 0 || fs.freshEnd > cur.SndUna {
			fs.report("rto-backoff", fmt.Sprintf(
				"backoff reset %d -> 0 without an acknowledged fresh segment (fresh end %d, snd_una %d): only a non-retransmitted RTT sample may clear it",
				prev.Backoff, fs.freshEnd, cur.SndUna))
		}
	default:
		fs.report("rto-backoff", fmt.Sprintf(
			"backoff %d -> %d with %d RTOs in between", prev.Backoff, cur.Backoff, rtos))
	}
}

// checkNewReno verifies the RFC 6582 recovery arithmetic between two
// adjacent probes with no intervening RTO.
func (fs *flowState) checkNewReno(prev, cur Event) {
	const rec = int(tcp.StateRecovery)
	const open = int(tcp.StateOpen)
	acked := cur.SndUna - prev.SndUna
	mss := float64(fs.cfg.MSS)
	switch {
	case prev.State != rec && cur.State == rec:
		// Entry: cwnd = ssthresh + DupThresh (window inflation).
		want := cur.Ssthresh + float64(fs.cfg.DupThresh)
		if math.Abs(cur.Cwnd-want) > eps {
			fs.report("newreno-arith", fmt.Sprintf(
				"recovery entry cwnd %.4f != ssthresh %.4f + dupthresh %d", cur.Cwnd, cur.Ssthresh, fs.cfg.DupThresh))
		}
	case prev.State == rec && cur.State == rec && acked > 0:
		// Partial ACK: deflate by the acked amount, re-inflate by one.
		want := prev.Cwnd - float64(acked)/mss + 1
		if want < fs.cfg.MinCwnd {
			want = fs.cfg.MinCwnd
		}
		if math.Abs(cur.Cwnd-want) > eps {
			fs.report("newreno-arith", fmt.Sprintf(
				"partial-ACK deflation: cwnd %.4f -> %.4f, want %.4f (acked %d)", prev.Cwnd, cur.Cwnd, want, acked))
		}
	case prev.State == rec && cur.State == rec:
		// Duplicate ACK inflates by one; other zero-progress ACKs leave
		// the window alone.
		if math.Abs(cur.Cwnd-prev.Cwnd-1) > eps && math.Abs(cur.Cwnd-prev.Cwnd) > eps {
			fs.report("newreno-arith", fmt.Sprintf(
				"in-recovery dup ACK: cwnd %.4f -> %.4f, want +1 or unchanged", prev.Cwnd, cur.Cwnd))
		}
	case prev.State == rec && cur.State == open:
		// Full ACK: deflate to ssthresh (clamped).
		want := clamp(cur.Ssthresh, fs.cfg.MinCwnd, fs.cfg.MaxCwnd)
		if math.Abs(cur.Cwnd-want) > eps {
			fs.report("newreno-arith", fmt.Sprintf(
				"recovery exit cwnd %.4f != clamped ssthresh %.4f", cur.Cwnd, want))
		}
	case cur.State == int(tcp.StateLoss) && prev.State != int(tcp.StateLoss):
		// StateLoss is only entered by the RTO handler.
		fs.report("newreno-arith", "entered loss state without an RTO")
	}
}

// checkAlphaCadence enforces DCTCP's once-per-window alpha fold (Eq. 1):
// at most one fold per ACK, never before the cumulative point reaches the
// window anchor, and never stalled once a full window of data has been
// acknowledged — the overdue direction is how the D2TCP swallowed-
// OnTimeout bug surfaces.
func (fs *flowState) checkAlphaCadence(prev, cur Event) {
	if fs.updater == nil || prev.AlphaUpdates < 0 {
		return
	}
	delta := cur.AlphaUpdates - prev.AlphaUpdates
	switch {
	case delta == 0:
		if acked := cur.SndUna - prev.SndUna; acked > 0 {
			fs.modelAcked += acked
		}
		if fs.modelAcked > 0 && cur.SndUna >= fs.aHiEnd {
			fs.report("alpha-cadence", fmt.Sprintf(
				"alpha fold overdue: snd_una %d passed window anchor <= %d with %d bytes accumulated",
				cur.SndUna, fs.aHiEnd, fs.modelAcked))
			// Re-anchor so one stall reports once, not per ACK.
			fs.aLoEnd, fs.aHiEnd = cur.SndUna, cur.SndNxt
			fs.modelAcked = 0
		}
	case delta == 1:
		if cur.SndUna < fs.aLoEnd {
			fs.report("alpha-cadence", fmt.Sprintf(
				"alpha folded early: snd_una %d below window anchor >= %d (more than once per window)",
				cur.SndUna, fs.aLoEnd))
		}
		fs.aLoEnd, fs.aHiEnd = cur.SndUna, cur.SndNxt
		fs.modelAcked = 0
	default:
		fs.report("alpha-cadence", fmt.Sprintf(
			"alpha updates jumped by %d in one ACK (max one fold per window)", delta))
		fs.aLoEnd, fs.aHiEnd = cur.SndUna, cur.SndNxt
		fs.modelAcked = 0
	}
}

// checkPlus verifies the DCTCP+ Figure 4 transition legality and
// Algorithm 1's slow_time bounds between adjacent probes with no
// intervening RTO (an RTO drives an extra evolve step, making the pair
// non-adjacent in machine steps).
func (fs *flowState) checkPlus(prev, cur Event) {
	if fs.plus == nil || prev.PlusState < 0 {
		return
	}
	cfg := fs.plusCfg
	if cur.SlowTime < 0 {
		fs.report("plus-machine", fmt.Sprintf("slow_time %v < 0", cur.SlowTime))
	}
	normal, ti, td := int(core.StateNormal), int(core.StateTimeInc), int(core.StateTimeDes)
	step := cur.SlowTime - prev.SlowTime
	divided := sim.Duration(float64(prev.SlowTime) / cfg.DivisorFactor)
	switch {
	case cur.PlusState == normal:
		if cur.SlowTime != 0 {
			fs.report("plus-machine", fmt.Sprintf("slow_time %v != 0 in DCTCP_NORMAL", cur.SlowTime))
		}
		if prev.PlusState == ti {
			fs.report("plus-machine", "illegal transition Time_Inc -> NORMAL (must pass through Time_Des)")
		}
		if prev.PlusState == td && prev.SlowTime > cfg.ThresholdT {
			fs.report("plus-machine", fmt.Sprintf(
				"returned to NORMAL with slow_time %v above threshold_T %v", prev.SlowTime, cfg.ThresholdT))
		}
	case cur.PlusState == ti && prev.PlusState == normal:
		// Entry requires congestion feedback with the window at its floor.
		if !cur.Ece && prev.State == int(tcp.StateOpen) {
			fs.report("plus-machine", "entered Time_Inc without congestion feedback (no ECE, sender Open)")
		}
		if prev.Cwnd > fs.cfg.MinCwnd+eps {
			fs.report("plus-machine", fmt.Sprintf(
				"entered Time_Inc with cwnd %.4f above the floor %.4f", prev.Cwnd, fs.cfg.MinCwnd))
		}
		if cur.SlowTime < 0 || cur.SlowTime > cfg.BackoffUnit {
			fs.report("plus-machine", fmt.Sprintf(
				"Time_Inc entry slow_time %v outside [0, backoff unit %v]", cur.SlowTime, cfg.BackoffUnit))
		}
	case cur.PlusState == ti && prev.PlusState == ti:
		if step < 0 || step > cfg.BackoffUnit {
			fs.report("plus-machine", fmt.Sprintf(
				"Time_Inc additive step %v outside [0, backoff unit %v]", step, cfg.BackoffUnit))
		}
	case cur.PlusState == ti && prev.PlusState == td:
		if step < 0 || step > cfg.BackoffUnit {
			fs.report("plus-machine", fmt.Sprintf(
				"Time_Des -> Time_Inc step %v outside [0, backoff unit %v]", step, cfg.BackoffUnit))
		}
	case cur.PlusState == td:
		if prev.PlusState == normal {
			fs.report("plus-machine", "illegal transition NORMAL -> Time_Des")
		}
		if prev.PlusState == td && prev.SlowTime <= cfg.ThresholdT {
			fs.report("plus-machine", fmt.Sprintf(
				"stayed in Time_Des with slow_time %v <= threshold_T %v (must return to NORMAL)",
				prev.SlowTime, cfg.ThresholdT))
		}
		if cur.SlowTime != prev.SlowTime && cur.SlowTime != divided {
			fs.report("plus-machine", fmt.Sprintf(
				"Time_Des slow_time %v -> %v: neither held (decay gate) nor divided by %v",
				prev.SlowTime, cur.SlowTime, cfg.DivisorFactor))
		}
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
