package oracle

import (
	"strings"
	"testing"

	"dctcpplus/internal/core"
	"dctcpplus/internal/dctcp"
	"dctcpplus/internal/netsim"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/tcp"
)

// runTransfer drives one sender-to-receiver transfer over a star with the
// full oracle suite attached and returns the checker for inspection.
// lossRate > 0 injects random loss on the sender's uplink (exercising fast
// retransmit, NewReno recovery, RTOs and the backoff discipline);
// bottleneck throttles the receiver-side downlink and arms DCTCP-style
// marking so the ECE echo and alpha oracles see real CE traffic.
func runTransfer(t *testing.T, cfg tcp.Config, cc tcp.CongestionControl, total int64, lossRate float64, bottleneck bool) *Checker {
	t.Helper()
	sched := sim.NewScheduler()
	star := netsim.NewStar(sched, 2, netsim.DefaultTopologyConfig())
	star.EnablePacketPool()
	ck := NewChecker(sched)
	conn := tcp.NewConn(cfg, cc, star.Hosts[0], star.Hosts[1], 7)
	ck.AttachConn(conn)
	ck.AttachHost(star.Hosts[0])
	ck.AttachHost(star.Hosts[1])
	ck.AttachSwitch(star.Switch)
	if lossRate > 0 {
		star.Hosts[0].Uplink().Link().SetLoss(lossRate, 42)
	}
	if bottleneck {
		down := star.Switch.RouteTo(star.Hosts[1].ID())
		down.Link().SetRate(100_000_000)
		down.SetMarkThreshold(10 * packet.MSS)
	}
	conn.Sender.OnComplete = func(int64) { sched.Halt() }
	conn.Sender.Send(total)
	sched.RunUntil(sim.Time(60 * sim.Second))
	if !conn.Sender.Done() {
		t.Fatal("transfer did not complete")
	}
	ck.Finish(false)
	return ck
}

func requireClean(t *testing.T, ck *Checker) {
	t.Helper()
	for _, v := range ck.Violations() {
		t.Errorf("unexpected violation: %v\n  %s", v, strings.Join(v.Window, "\n  "))
	}
}

// requireViolation asserts at least one violation of the given rule whose
// message contains want.
func requireViolation(t *testing.T, ck *Checker, rule, want string) {
	t.Helper()
	for _, v := range ck.Violations() {
		if v.Rule == rule && strings.Contains(v.Msg, want) {
			if len(v.Window) > windowEvents {
				t.Errorf("violation window has %d events, cap is %d", len(v.Window), windowEvents)
			}
			return
		}
	}
	t.Errorf("no %q violation containing %q; got %v", rule, want, ck.Violations())
}

func TestCleanTransferNewReno(t *testing.T) {
	ck := runTransfer(t, tcp.DefaultConfig(), tcp.NewReno{}, 256*packet.MSS, 0, false)
	requireClean(t, ck)
}

func TestCleanTransferNewRenoUnderLoss(t *testing.T) {
	ck := runTransfer(t, tcp.DefaultConfig(), tcp.NewReno{}, 512*packet.MSS, 0.05, false)
	requireClean(t, ck)
}

func TestCleanTransferDCTCPMarked(t *testing.T) {
	ck := runTransfer(t, dctcp.Config(), dctcp.New(dctcp.DefaultGain), 1024*packet.MSS, 0, true)
	requireClean(t, ck)
}

func TestCleanTransferDCTCPPlusMarkedAndLossy(t *testing.T) {
	ck := runTransfer(t, dctcp.Config(), core.New(dctcp.DefaultGain, core.DefaultConfig()),
		1024*packet.MSS, 0.02, true)
	requireClean(t, ck)
}

func TestCleanTransferClassicECN(t *testing.T) {
	cfg := tcp.DefaultConfig()
	cfg.ECN = tcp.ECNClassic
	ck := runTransfer(t, cfg, tcp.NewReno{}, 1024*packet.MSS, 0, true)
	requireClean(t, ck)
}

// idleFlow builds a checker with one attached-but-idle connection so tests
// can feed hand-crafted events straight into its flowState.
func idleFlow(t *testing.T, cfg tcp.Config, cc tcp.CongestionControl) (*Checker, *flowState) {
	t.Helper()
	sched := sim.NewScheduler()
	star := netsim.NewStar(sched, 2, netsim.DefaultTopologyConfig())
	ck := NewChecker(sched)
	conn := tcp.NewConn(cfg, cc, star.Hosts[0], star.Hosts[1], 7)
	ck.AttachConn(conn)
	return ck, ck.flows[7]
}

func dataPkt(seq int64, payload int, retransmit, ce bool) *packet.Packet {
	pkt := &packet.Packet{Flow: 7, Seq: seq, Payload: payload, Retransmit: retransmit, ECN: packet.ECT}
	if ce {
		pkt.ECN = packet.CE
	}
	return pkt
}

func ackPkt(ackNo int64, ece bool) *packet.Packet {
	pkt := &packet.Packet{Flow: 7, AckNo: ackNo, Flags: packet.FlagACK}
	if ece {
		pkt.Flags |= packet.FlagECE
	}
	return pkt
}

func TestRetransLegality(t *testing.T) {
	ck, fs := idleFlow(t, tcp.DefaultConfig(), tcp.NewReno{})
	fs.onDataSent(dataPkt(0, packet.MSS, false, false))
	// A retransmission with neither a dupack-threshold crossing nor an RTO
	// behind it is illegal.
	fs.onDataSent(dataPkt(0, packet.MSS, true, false))
	requireViolation(t, ck, "retrans-legality", "no dupack threshold or RTO")
	// The minimized window must contain the offending retransmission.
	if w := strings.Join(ck.Violations()[0].Window, "\n"); !strings.Contains(w, "rtx") {
		t.Errorf("minimized window missing the retransmission event:\n%s", w)
	}

	// Crossing the dupack threshold grants permission up to the frontier.
	ck2, fs2 := idleFlow(t, tcp.DefaultConfig(), tcp.NewReno{})
	for i := 0; i < 4; i++ {
		fs2.onDataSent(dataPkt(int64(i)*packet.MSS, packet.MSS, false, false))
	}
	fs2.onAckDeliver(ackPkt(packet.MSS, false))
	for i := 0; i < fs2.cfg.DupThresh; i++ {
		fs2.onAckDeliver(ackPkt(packet.MSS, false))
	}
	fs2.onDataSent(dataPkt(packet.MSS, packet.MSS, true, false))
	requireClean(t, ck2)
}

// TestRetransLegalityRTOCoversQueuedFrontier pins the envelope for an RTO
// that fires while transmitted segments still sit unserialized in the
// sender host's uplink queue (the kernel analogue: timer expiry with data
// in the qdisc — surfaced by the stall fault at report scale). The wire
// tap has not seen those bytes, but go-back-N retransmissions up to the
// engine's pre-rewind snd_nxt are legal and must not be flagged.
func TestRetransLegalityRTOCoversQueuedFrontier(t *testing.T) {
	sched := sim.NewScheduler()
	star := netsim.NewStar(sched, 2, netsim.DefaultTopologyConfig())
	ck := NewChecker(sched)
	conn := tcp.NewConn(tcp.DefaultConfig(), tcp.NewReno{}, star.Hosts[0], star.Hosts[1], 7)
	ck.AttachConn(conn)
	fs := ck.flows[7]

	// The engine pushes its initial window; with no host taps attached the
	// checker observes none of it (maxSentEnd stays 0), standing in for
	// segments queued at the uplink but not yet on the wire.
	conn.Sender.Send(64 * packet.MSS)
	nxt := conn.Sender.SndNxt()
	if nxt == 0 {
		t.Fatal("sender transmitted nothing")
	}

	// Timeout before anything serialized: the grant must cover the
	// pre-rewind frontier, so the queued window's go-back-N copy is clean.
	fs.onRTO(conn.Sender)
	fs.onDataSent(dataPkt(0, int(nxt), true, false))
	requireClean(t, ck)
}

func TestAckMonotonicity(t *testing.T) {
	ck, fs := idleFlow(t, tcp.DefaultConfig(), tcp.NewReno{})
	fs.onDataSent(dataPkt(0, 2*packet.MSS, false, false))
	fs.onDataDeliver(dataPkt(0, 2*packet.MSS, false, false))
	fs.onAckSent(ackPkt(2*packet.MSS, false))
	fs.onAckSent(ackPkt(packet.MSS, false))
	requireViolation(t, ck, "ack-monotonic", "regressed")
}

func TestAckBeyondFrontier(t *testing.T) {
	ck, fs := idleFlow(t, tcp.DefaultConfig(), tcp.NewReno{})
	fs.onDataSent(dataPkt(0, packet.MSS, false, false))
	fs.onAckSent(ackPkt(2*packet.MSS, false))
	requireViolation(t, ck, "ack-monotonic", "beyond send frontier")
}

func TestAckOverUndeliveredBytes(t *testing.T) {
	ck, fs := idleFlow(t, tcp.DefaultConfig(), tcp.NewReno{})
	fs.onDataSent(dataPkt(0, 2*packet.MSS, false, false))
	fs.onDataDeliver(dataPkt(0, packet.MSS, false, false))
	fs.onAckSent(ackPkt(2*packet.MSS, false))
	requireViolation(t, ck, "ack-monotonic", "never delivered")
}

// TestPreciseEchoMixedRun is the oracle-side twin of the receiver fix: a
// cumulative ACK that aggregates a CE-state flip into one ECE bit must be
// flagged.
func TestPreciseEchoMixedRun(t *testing.T) {
	ck, fs := idleFlow(t, dctcp.Config(), dctcp.New(dctcp.DefaultGain))
	fs.onDataSent(dataPkt(0, 2*packet.MSS, false, false))
	fs.onDataDeliver(dataPkt(0, packet.MSS, false, false))
	fs.onDataDeliver(dataPkt(packet.MSS, packet.MSS, false, true))
	fs.onAckSent(ackPkt(2*packet.MSS, true))
	requireViolation(t, ck, "ece-echo", "CE-state flip aggregated")

	// Split ACKs over the same delivery pattern are clean.
	ck2, fs2 := idleFlow(t, dctcp.Config(), dctcp.New(dctcp.DefaultGain))
	fs2.onDataSent(dataPkt(0, 2*packet.MSS, false, false))
	fs2.onDataDeliver(dataPkt(0, packet.MSS, false, false))
	fs2.onDataDeliver(dataPkt(packet.MSS, packet.MSS, false, true))
	fs2.onAckSent(ackPkt(packet.MSS, false))
	fs2.onAckSent(ackPkt(2*packet.MSS, true))
	requireClean(t, ck2)
}

func TestPreciseEchoDuplicateAck(t *testing.T) {
	ck, fs := idleFlow(t, dctcp.Config(), dctcp.New(dctcp.DefaultGain))
	fs.onDataSent(dataPkt(0, 2*packet.MSS, false, false))
	fs.onDataDeliver(dataPkt(0, packet.MSS, false, false))
	fs.onAckSent(ackPkt(packet.MSS, false))
	// An out-of-order CE segment triggers a duplicate ACK that must echo
	// the segment's CE state.
	fs.onDataDeliver(dataPkt(3*packet.MSS, packet.MSS, false, true))
	fs.onAckSent(ackPkt(packet.MSS, false))
	requireViolation(t, ck, "ece-echo", "last delivered segment")
}

func TestClassicEchoLatch(t *testing.T) {
	cfg := tcp.DefaultConfig()
	cfg.ECN = tcp.ECNClassic
	ck, fs := idleFlow(t, cfg, tcp.NewReno{})
	fs.onDataSent(dataPkt(0, 2*packet.MSS, false, false))
	fs.onDataDeliver(dataPkt(0, packet.MSS, false, true))
	fs.onAckSent(ackPkt(packet.MSS, false)) // latch set, echo missing
	requireViolation(t, ck, "ece-echo", "latch")

	// CWR clears the latch: a subsequent no-ECE ACK is legal.
	ck2, fs2 := idleFlow(t, cfg, tcp.NewReno{})
	fs2.onDataSent(dataPkt(0, 2*packet.MSS, false, false))
	fs2.onDataDeliver(dataPkt(0, packet.MSS, false, true))
	fs2.onAckSent(ackPkt(packet.MSS, true))
	cwr := dataPkt(packet.MSS, packet.MSS, false, false)
	cwr.Flags |= packet.FlagCWR
	fs2.onDataDeliver(cwr)
	fs2.onAckSent(ackPkt(2*packet.MSS, false))
	requireClean(t, ck2)
}

func TestEceWithECNOff(t *testing.T) {
	ck, fs := idleFlow(t, tcp.DefaultConfig(), tcp.NewReno{})
	fs.onDataSent(dataPkt(0, packet.MSS, false, false))
	fs.onDataDeliver(dataPkt(0, packet.MSS, false, false))
	fs.onAckSent(ackPkt(packet.MSS, true))
	requireViolation(t, ck, "ece-echo", "ECN off")
}

func TestBackoffDiscipline(t *testing.T) {
	ck, fs := idleFlow(t, tcp.DefaultConfig(), tcp.NewReno{})
	// Reset without fresh-send evidence: the Karn violation.
	fs.checkBackoff(Event{Backoff: 2}, Event{Backoff: 0, SndUna: 10 * packet.MSS}, 0)
	requireViolation(t, ck, "rto-backoff", "without an acknowledged fresh segment")

	// Reset with an acked fresh segment is legal.
	ck2, fs2 := idleFlow(t, tcp.DefaultConfig(), tcp.NewReno{})
	fs2.freshEnd = packet.MSS
	fs2.checkBackoff(Event{Backoff: 2}, Event{Backoff: 0, SndUna: packet.MSS}, 0)
	requireClean(t, ck2)

	// Growth must track the RTO count.
	ck3, fs3 := idleFlow(t, tcp.DefaultConfig(), tcp.NewReno{})
	fs3.checkBackoff(Event{Backoff: 1}, Event{Backoff: 3}, 1)
	requireViolation(t, ck3, "rto-backoff", "1 RTOs in between")
}

func TestNewRenoArithmetic(t *testing.T) {
	const open, rec = int(tcp.StateOpen), int(tcp.StateRecovery)
	ck, fs := idleFlow(t, tcp.DefaultConfig(), tcp.NewReno{})
	// Entry must inflate to ssthresh + DupThresh.
	fs.checkNewReno(
		Event{State: open, Cwnd: 10, Ssthresh: 10},
		Event{State: rec, Cwnd: 5, Ssthresh: 5})
	requireViolation(t, ck, "newreno-arith", "recovery entry")

	// Partial ACK must deflate by acked and re-inflate by one.
	ck2, fs2 := idleFlow(t, tcp.DefaultConfig(), tcp.NewReno{})
	fs2.checkNewReno(
		Event{State: rec, Cwnd: 8, SndUna: 0},
		Event{State: rec, Cwnd: 8, SndUna: 2 * packet.MSS})
	requireViolation(t, ck2, "newreno-arith", "partial-ACK")

	// Legal sequence: entry, dup inflation, partial, full-ACK exit.
	ck3, fs3 := idleFlow(t, tcp.DefaultConfig(), tcp.NewReno{})
	fs3.checkNewReno(Event{State: open, Cwnd: 10, Ssthresh: 10, SndUna: 0},
		Event{State: rec, Cwnd: 8, Ssthresh: 5, SndUna: 0})
	fs3.checkNewReno(Event{State: rec, Cwnd: 8, SndUna: 0},
		Event{State: rec, Cwnd: 9, SndUna: 0})
	fs3.checkNewReno(Event{State: rec, Cwnd: 9, SndUna: 0},
		Event{State: rec, Cwnd: 8, SndUna: 2 * packet.MSS})
	fs3.checkNewReno(Event{State: rec, Cwnd: 8, Ssthresh: 5, SndUna: 2 * packet.MSS},
		Event{State: open, Cwnd: 5, Ssthresh: 5, SndUna: 10 * packet.MSS})
	requireClean(t, ck3)

	// Loss state without an RTO is illegal.
	ck4, fs4 := idleFlow(t, tcp.DefaultConfig(), tcp.NewReno{})
	fs4.checkNewReno(Event{State: open, Cwnd: 10}, Event{State: int(tcp.StateLoss), Cwnd: 1})
	requireViolation(t, ck4, "newreno-arith", "loss state without an RTO")
}

func TestAlphaCadence(t *testing.T) {
	ck, fs := idleFlow(t, dctcp.Config(), dctcp.New(dctcp.DefaultGain))
	// A full window acknowledged with no fold: the swallowed-OnTimeout bug.
	fs.aLoEnd, fs.aHiEnd = 0, 4*packet.MSS
	fs.checkAlphaCadence(
		Event{AlphaUpdates: 3, SndUna: 0},
		Event{AlphaUpdates: 3, SndUna: 5 * packet.MSS, SndNxt: 8 * packet.MSS})
	requireViolation(t, ck, "alpha-cadence", "overdue")

	// Two folds in one ACK is impossible.
	ck2, fs2 := idleFlow(t, dctcp.Config(), dctcp.New(dctcp.DefaultGain))
	fs2.checkAlphaCadence(Event{AlphaUpdates: 3}, Event{AlphaUpdates: 5})
	requireViolation(t, ck2, "alpha-cadence", "jumped")

	// A fold before the window anchor is early.
	ck3, fs3 := idleFlow(t, dctcp.Config(), dctcp.New(dctcp.DefaultGain))
	fs3.aLoEnd, fs3.aHiEnd = 4*packet.MSS, 8*packet.MSS
	fs3.checkAlphaCadence(
		Event{AlphaUpdates: 3, SndUna: 2 * packet.MSS},
		Event{AlphaUpdates: 4, SndUna: 3 * packet.MSS, SndNxt: 8 * packet.MSS})
	requireViolation(t, ck3, "alpha-cadence", "early")
}

func TestPlusMachineTransitions(t *testing.T) {
	cc := func() *core.Enhancer { return core.New(dctcp.DefaultGain, core.DefaultConfig()) }
	normal, ti, td := int(core.StateNormal), int(core.StateTimeInc), int(core.StateTimeDes)
	unit := core.DefaultConfig().BackoffUnit

	ck, fs := idleFlow(t, dctcp.Config(), cc())
	fs.checkPlus(Event{PlusState: normal}, Event{PlusState: td, SlowTime: unit})
	requireViolation(t, ck, "plus-machine", "NORMAL -> Time_Des")

	ck2, fs2 := idleFlow(t, dctcp.Config(), cc())
	fs2.checkPlus(Event{PlusState: ti, SlowTime: unit}, Event{PlusState: normal})
	requireViolation(t, ck2, "plus-machine", "Time_Inc -> NORMAL")

	ck3, fs3 := idleFlow(t, dctcp.Config(), cc())
	fs3.checkPlus(Event{PlusState: normal}, Event{PlusState: normal, SlowTime: unit})
	requireViolation(t, ck3, "plus-machine", "slow_time")

	// Entering Time_Inc with the window above the floor violates Figure 4.
	ck4, fs4 := idleFlow(t, dctcp.Config(), cc())
	fs4.checkPlus(
		Event{PlusState: normal, Cwnd: 10, State: int(tcp.StateOpen)},
		Event{PlusState: ti, SlowTime: unit / 2, Ece: true})
	requireViolation(t, ck4, "plus-machine", "above the floor")

	// An additive step beyond one backoff unit violates Algorithm 1.
	ck5, fs5 := idleFlow(t, dctcp.Config(), cc())
	fs5.checkPlus(
		Event{PlusState: ti, SlowTime: unit},
		Event{PlusState: ti, SlowTime: 3 * unit})
	requireViolation(t, ck5, "plus-machine", "additive step")

	// Legal walk: Normal -> TimeInc (at floor, with ECE) -> TimeInc
	// (additive) -> TimeDes (held by the decay gate) -> divide -> Normal.
	ck6, fs6 := idleFlow(t, dctcp.Config(), cc())
	minCwnd := fs6.cfg.MinCwnd
	slow := unit / 2
	fs6.checkPlus(
		Event{PlusState: normal, Cwnd: minCwnd, State: int(tcp.StateOpen)},
		Event{PlusState: ti, SlowTime: slow, Ece: true, Cwnd: minCwnd})
	fs6.checkPlus(
		Event{PlusState: ti, SlowTime: slow, Cwnd: minCwnd},
		Event{PlusState: ti, SlowTime: slow + unit, Cwnd: minCwnd})
	fs6.checkPlus(
		Event{PlusState: ti, SlowTime: slow + unit, Cwnd: minCwnd},
		Event{PlusState: td, SlowTime: slow + unit, Cwnd: minCwnd})
	fs6.checkPlus(
		Event{PlusState: td, SlowTime: slow + unit, Cwnd: minCwnd},
		Event{PlusState: td, SlowTime: (slow + unit) / 2, Cwnd: minCwnd})
	fs6.checkPlus(
		Event{PlusState: td, SlowTime: core.DefaultConfig().ThresholdT, Cwnd: minCwnd},
		Event{PlusState: normal, SlowTime: 0, Cwnd: minCwnd})
	requireClean(t, ck6)
}

func TestQueueBoundsRule(t *testing.T) {
	sched := sim.NewScheduler()
	star := netsim.NewStar(sched, 2, netsim.DefaultTopologyConfig())
	ck := NewChecker(sched)
	ck.AttachSwitch(star.Switch)
	p := star.Switch.Ports()[0]
	p.OnQueueChange(sched.Now(), -1)
	requireViolation(t, ck, "queue-bounds", "< 0")
	p.OnQueueChange(sched.Now(), p.Config().BufferBytes+1)
	requireViolation(t, ck, "queue-bounds", "grew to")
}

func TestNilCheckerIsNoOp(t *testing.T) {
	var ck *Checker
	ck.AttachConn(nil)
	ck.AttachHost(nil)
	ck.AttachSwitch(nil)
	ck.AttachTwoTier(nil)
	if ck.Total() != 0 || ck.Violations() != nil || ck.Finish(true) != nil {
		t.Error("nil checker not a no-op")
	}
}

func TestViolationListBounded(t *testing.T) {
	ck, fs := idleFlow(t, tcp.DefaultConfig(), tcp.NewReno{})
	for i := 0; i < maxViolations+10; i++ {
		fs.onDataSent(dataPkt(int64(i)*packet.MSS, packet.MSS, true, false))
	}
	if got := len(ck.Violations()); got != maxViolations {
		t.Errorf("retained %d violations, want cap %d", got, maxViolations)
	}
	if ck.Total() != int64(maxViolations+10) {
		t.Errorf("total %d, want %d", ck.Total(), maxViolations+10)
	}
}

func TestDuplicateAttachPanics(t *testing.T) {
	sched := sim.NewScheduler()
	star := netsim.NewStar(sched, 2, netsim.DefaultTopologyConfig())
	ck := NewChecker(sched)
	conn := tcp.NewConn(tcp.DefaultConfig(), tcp.NewReno{}, star.Hosts[0], star.Hosts[1], 7)
	ck.AttachConn(conn)
	defer func() {
		if recover() == nil {
			t.Error("attaching the same flow twice did not panic")
		}
	}()
	ck.AttachConn(conn)
}
