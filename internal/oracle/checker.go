package oracle

import (
	"fmt"

	"dctcpplus/internal/core"
	"dctcpplus/internal/netsim"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/tcp"
)

const (
	// ringEvents is the global event-window depth kept for violation
	// minimization.
	ringEvents = 256
	// windowEvents caps the minimized per-violation trace.
	windowEvents = 16
	// maxViolations bounds the retained violation list; further failures
	// only increment the total counter.
	maxViolations = 64
)

// Checker replays simulator events through the conformance oracles. Create
// one per run with NewChecker, attach endpoints and topology before
// traffic starts, and call Finish after the run to collect violations.
// All methods are no-ops on a nil receiver, so callers can hold a nil
// *Checker when conformance checking is disabled.
type Checker struct {
	sched *sim.Scheduler

	flows map[packet.FlowID]*flowState
	order []packet.FlowID // attach order, for deterministic reporting

	hosts map[packet.NodeID]bool // hosts whose taps are installed
	tt    *netsim.TwoTier        // for the conservation ledger (optional)

	ring [ringEvents]Event
	// ringLen is the ring's fill level, capped by the guard on its only
	// increment once the ring has wrapped.
	//inv: 0 <= ringLen && ringLen <= 256
	ringLen int
	ringPos int

	violations []Violation
	total      int64
}

// NewChecker creates a conformance checker bound to the run's scheduler.
func NewChecker(sched *sim.Scheduler) *Checker {
	return &Checker{
		sched: sched,
		flows: make(map[packet.FlowID]*flowState),
		hosts: make(map[packet.NodeID]bool),
	}
}

// AttachConn subscribes one connection's endpoint streams: the sender's
// per-ACK probe and RTO taxonomy hooks and the receiver's ACK-emission
// hook. The flow's packet-level events come from the host taps — pair
// AttachConn with AttachTwoTier (or AttachHost on both endpoints' hosts),
// or the packet-driven oracles see no traffic and stay vacuous.
func (c *Checker) AttachConn(conn *tcp.Conn) {
	if c == nil {
		return
	}
	snd := conn.Sender
	flow := snd.Flow()
	if _, dup := c.flows[flow]; dup {
		panic(fmt.Sprintf("oracle: flow %d attached twice", flow))
	}
	fs := newFlowState(c, flow, snd)
	c.flows[flow] = fs
	c.order = append(c.order, flow)

	prevProbe := snd.OnAckProbe
	snd.OnAckProbe = func(s *tcp.Sender, ece bool) {
		fs.onProbe(s, ece)
		if prevProbe != nil {
			prevProbe(s, ece)
		}
	}
	prevTO := snd.OnTimeoutEvent
	snd.OnTimeoutEvent = func(kind tcp.TimeoutKind) {
		fs.onRTO(snd)
		if prevTO != nil {
			prevTO(kind)
		}
	}
	prevAck := conn.Receiver.OnAckSent
	conn.Receiver.OnAckSent = func(pkt *packet.Packet) {
		fs.onAckSent(pkt)
		if prevAck != nil {
			prevAck(pkt)
		}
	}
}

// AttachHost installs the packet taps on one host: its uplink transmit
// hook (data segments entering the network) and its delivery hook (data
// with final ECN marks at receivers, returning ACKs at senders). Safe to
// call for hosts already attached.
func (c *Checker) AttachHost(h *netsim.Host) {
	if c == nil || h == nil || c.hosts[h.ID()] {
		return
	}
	c.hosts[h.ID()] = true
	if up := h.Uplink(); up != nil {
		prevTx := up.OnTransmit
		up.OnTransmit = func(pkt *packet.Packet) {
			c.onTransmit(pkt)
			if prevTx != nil {
				prevTx(pkt)
			}
		}
		c.watchPort(up, fmt.Sprintf("host[%d].uplink", h.ID()))
	}
	prevDel := h.OnDeliver
	h.OnDeliver = func(pkt *packet.Packet) {
		c.onDeliver(pkt)
		if prevDel != nil {
			prevDel(pkt)
		}
	}
}

// AttachSwitch installs queue-occupancy watches on every port of a switch.
func (c *Checker) AttachSwitch(sw *netsim.Switch) {
	if c == nil || sw == nil {
		return
	}
	for i, p := range sw.Ports() {
		c.watchPort(p, fmt.Sprintf("%s.port[%d]", sw.Name(), i))
	}
}

// AttachTwoTier wires the whole two-tier testbed: packet taps on the
// aggregator and every worker, queue watches on every switch port, and the
// topology handle the conservation ledger audits at Finish.
func (c *Checker) AttachTwoTier(tt *netsim.TwoTier) {
	if c == nil || tt == nil {
		return
	}
	c.tt = tt
	c.AttachHost(tt.Aggregator)
	for _, w := range tt.Workers {
		c.AttachHost(w)
	}
	c.AttachSwitch(tt.Root)
	for _, leaf := range tt.Leaves {
		c.AttachSwitch(leaf)
	}
}

// watchPort chains the queue-change hook and enforces the occupancy bound
// 0 <= qBytes <= BufferBytes at every enqueue/dequeue. Fault plans may
// shrink BufferBytes below the live occupancy; the queue then legally
// exceeds the (new) capacity until it drains, so an over-capacity sample
// is only a violation when the occupancy *grew* into it.
func (c *Checker) watchPort(p *netsim.Port, label string) {
	prevQ := p.QueueBytes()
	prev := p.OnQueueChange
	p.OnQueueChange = func(now sim.Time, qBytes int) {
		if qBytes < 0 {
			c.report("queue-bounds", 0, now, fmt.Sprintf("%s occupancy %d < 0", label, qBytes))
		} else if limit := p.Config().BufferBytes; qBytes > limit && qBytes > prevQ {
			c.report("queue-bounds", 0, now,
				fmt.Sprintf("%s occupancy grew to %d > BufferBytes %d", label, qBytes, limit))
		}
		prevQ = qBytes
		if prev != nil {
			prev(now, qBytes)
		}
	}
}

// onTransmit observes a packet starting serialization at a host uplink.
// Only data segments of attached flows feed the oracles; the receiver-side
// ACK stream is observed at emission (OnAckSent) instead.
func (c *Checker) onTransmit(pkt *packet.Packet) {
	if !pkt.IsData() || pkt.Flags.Has(packet.FlagREQ) {
		return
	}
	fs, ok := c.flows[pkt.Flow]
	if !ok {
		return
	}
	fs.onDataSent(pkt)
}

// onDeliver observes a packet arriving at a host: data segments at the
// receiving endpoint (with their final CE marks), pure ACKs at the sender.
func (c *Checker) onDeliver(pkt *packet.Packet) {
	if pkt.Flags.Has(packet.FlagREQ) {
		return
	}
	fs, ok := c.flows[pkt.Flow]
	if !ok {
		return
	}
	if pkt.IsData() {
		fs.onDataDeliver(pkt)
	} else if pkt.IsAck() {
		fs.onAckDeliver(pkt)
	}
}

// record appends an event to the minimization ring.
func (c *Checker) record(ev Event) {
	c.ring[c.ringPos] = ev
	c.ringPos = (c.ringPos + 1) % ringEvents
	if c.ringLen < ringEvents {
		c.ringLen++
	}
}

// window extracts the minimized trace for a violation: the most recent
// ring events touching the flow (every event when flow is 0), oldest
// first, capped at windowEvents.
func (c *Checker) window(flow packet.FlowID) []string {
	out := make([]string, 0, windowEvents)
	// Walk the ring newest-first, collect matches, then reverse.
	for i := 0; i < c.ringLen && len(out) < windowEvents; i++ {
		idx := (c.ringPos - 1 - i + ringEvents*2) % ringEvents
		ev := c.ring[idx]
		if flow == 0 || ev.Flow == flow {
			out = append(out, ev.format())
		}
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// report files one violation with its minimized event window.
func (c *Checker) report(rule string, flow packet.FlowID, at sim.Time, msg string) {
	c.total++
	if len(c.violations) >= maxViolations {
		return
	}
	c.violations = append(c.violations, Violation{
		At: at, Rule: rule, Flow: flow, Msg: msg, Window: c.window(flow),
	})
}

// Violations returns the violations recorded so far (bounded; see Total).
func (c *Checker) Violations() []Violation {
	if c == nil {
		return nil
	}
	return c.violations
}

// Total returns the total violation count, including any beyond the
// retained list.
func (c *Checker) Total() int64 {
	if c == nil {
		return 0
	}
	return c.total
}

// Finish runs the end-of-run oracles and returns all violations. drained
// reports whether the run completed with the network empty (no packets in
// flight or queued); the conservation ledger only balances on a drained
// network, so it is skipped otherwise.
func (c *Checker) Finish(drained bool) []Violation {
	if c == nil {
		return nil
	}
	if drained && c.tt != nil {
		c.auditConservation(c.tt)
	}
	return c.violations
}

// enhancerOf unwraps a sender's congestion module to its DCTCP+ enhancer,
// if any.
func enhancerOf(cc tcp.CongestionControl) *core.Enhancer {
	if e, ok := cc.(*core.Enhancer); ok {
		return e
	}
	return nil
}

// alphaUpdater is the estimator-cadence observable: DCTCP and D2TCP both
// expose the number of completed once-per-window alpha folds.
type alphaUpdater interface {
	Updates() int64
}

// updaterOf unwraps a congestion module (through the DCTCP+ enhancer, if
// present) to its alpha-cadence counter, or nil.
func updaterOf(cc tcp.CongestionControl) alphaUpdater {
	if e := enhancerOf(cc); e != nil {
		cc = e.Inner()
	}
	if u, ok := cc.(alphaUpdater); ok {
		return u
	}
	return nil
}
