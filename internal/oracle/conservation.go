package oracle

import (
	"fmt"

	"dctcpplus/internal/netsim"
)

// auditConservation balances the whole-network packet and byte ledger over
// the attached two-tier testbed: every packet accepted into a host uplink
// must end up delivered at some host, tail-dropped at a switch port, or
// destroyed by a link fault (loss or blackhole). Packets rejected at
// enqueue never enter the ledger (they are counted as drops, not enqueues),
// and the books only balance on a drained network, so Finish gates this on
// the caller's drained flag. A residual packet sitting in some queue is
// itself reported: conservation on a drained network also means empty
// queues everywhere.
func (c *Checker) auditConservation(tt *netsim.TwoTier) {
	now := c.sched.Now()
	hosts := append([]*netsim.Host{tt.Aggregator}, tt.Workers...)
	var allPorts []*netsim.Port
	var injectedPkts, injectedBytes, deliveredPkts, deliveredBytes int64
	for _, h := range hosts {
		s := h.Uplink().Stats()
		injectedPkts += s.EnqueuedPkts
		injectedBytes += s.EnqueuedBytes
		deliveredPkts += h.DeliveredPkts()
		deliveredBytes += h.DeliveredBytes()
		allPorts = append(allPorts, h.Uplink())
	}
	var droppedPkts, droppedBytes int64
	for _, sw := range append([]*netsim.Switch{tt.Root}, tt.Leaves...) {
		for _, p := range sw.Ports() {
			s := p.Stats()
			droppedPkts += s.DroppedPkts
			droppedBytes += s.DroppedBytes
			allPorts = append(allPorts, p)
		}
	}
	var lostPkts, lostBytes int64
	for _, p := range allPorts {
		l := p.Link()
		lostPkts += l.Lost() + l.Blackholed()
		lostBytes += l.LostBytes() + l.BlackholedBytes()
		if p.QueueLen() != 0 {
			c.report("conservation", 0, now, fmt.Sprintf(
				"port still holds %d packets (%d bytes) on a drained network", p.QueueLen(), p.QueueBytes()))
		}
	}

	if injectedPkts != deliveredPkts+droppedPkts+lostPkts {
		c.report("conservation", 0, now, fmt.Sprintf(
			"packet ledger unbalanced: enqueued %d != delivered %d + dropped %d + destroyed %d",
			injectedPkts, deliveredPkts, droppedPkts, lostPkts))
	}
	if injectedBytes != deliveredBytes+droppedBytes+lostBytes {
		c.report("conservation", 0, now, fmt.Sprintf(
			"byte ledger unbalanced: enqueued %d != delivered %d + dropped %d + destroyed %d",
			injectedBytes, deliveredBytes, droppedBytes, lostBytes))
	}
}
