package stats

// JainIndex computes Jain's fairness index over per-entity allocations:
//
//	J = (sum x)^2 / (n * sum x^2)
//
// J = 1 means perfectly equal shares; J = 1/n means one entity holds
// everything. Used to quantify the long-flow fairness claims of §VI-C.
func JainIndex(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var sum, sumSq float64
	for _, v := range x {
		if v < 0 {
			v = 0
		}
		sum += v
		sumSq += v * v
	}
	if sumSq == 0 {
		return 1 // all-zero allocations are (vacuously) equal
	}
	return sum * sum / (float64(len(x)) * sumSq)
}

// TimeWeighted accumulates a piecewise-constant signal (such as queue
// occupancy) and reports its time-weighted mean and maximum. Feed it the
// signal's change points in nondecreasing time order.
type TimeWeighted struct {
	started  bool
	lastT    float64
	lastV    float64
	area     float64
	duration float64
	max      float64
}

// Observe records that the signal held value v starting at time t (the
// previous value is integrated up to t).
func (tw *TimeWeighted) Observe(t, v float64) {
	if tw.started {
		dt := t - tw.lastT
		if dt > 0 {
			tw.area += tw.lastV * dt
			tw.duration += dt
		}
	}
	tw.started = true
	tw.lastT = t
	tw.lastV = v
	if v > tw.max {
		tw.max = v
	}
}

// Finish integrates the final segment up to time t.
func (tw *TimeWeighted) Finish(t float64) {
	if !tw.started {
		return
	}
	tw.Observe(t, tw.lastV)
}

// Mean returns the time-weighted mean (0 before any interval completes).
func (tw *TimeWeighted) Mean() float64 {
	if tw.duration == 0 {
		return 0
	}
	return tw.area / tw.duration
}

// Max returns the maximum observed value.
func (tw *TimeWeighted) Max() float64 { return tw.max }

// Duration returns the total integrated time.
func (tw *TimeWeighted) Duration() float64 { return tw.duration }
