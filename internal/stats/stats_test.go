package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 || s.P99 != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("summary = %+v", s)
	}
	if !almost(s.Std, math.Sqrt(2), 1e-9) {
		t.Errorf("std = %v, want sqrt(2)", s.Std)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{5, 1, 3}
	Summarize(in)
	if in[0] != 5 || in[1] != 1 || in[2] != 3 {
		t.Error("input mutated")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	data := []float64{0, 10}
	if got := Quantile(data, 0.5); got != 5 {
		t.Errorf("median of {0,10} = %v", got)
	}
	if got := Quantile(data, 0); got != 0 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(data, 1); got != 10 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("single-sample quantile = %v", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
}

// Property: percentiles are monotone and bounded by min/max.
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var data []float64
		for _, v := range raw {
			// Restrict to measurement-scale magnitudes; at 1e308 even
			// stable accumulators overflow on differences.
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				data = append(data, v)
			}
		}
		if len(data) == 0 {
			return true
		}
		s := Summarize(data)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 &&
			s.P99 <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	cases := []struct {
		x    float64
		want float64
	}{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); !almost(got, tc.want, 1e-12) {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if NewCDF(nil).At(5) != 0 {
		t.Error("empty CDF At != 0")
	}
}

func TestCDFQuantileInverse(t *testing.T) {
	var data []float64
	for i := 1; i <= 100; i++ {
		data = append(data, float64(i))
	}
	c := NewCDF(data)
	if got := c.Quantile(0.95); !almost(got, 95.05, 0.1) {
		t.Errorf("q95 = %v", got)
	}
	if c.Len() != 100 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestCDFCurve(t *testing.T) {
	c := NewCDF([]float64{0, 10})
	pts := c.Curve(11)
	if len(pts) != 11 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].X != 0 || pts[10].X != 10 {
		t.Errorf("range wrong: %+v", pts)
	}
	if pts[10].P != 1 {
		t.Errorf("final P = %v", pts[10].P)
	}
	// Monotone non-decreasing P.
	for i := 1; i < len(pts); i++ {
		if pts[i].P < pts[i-1].P {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
	if NewCDF(nil).Curve(5) != nil {
		t.Error("empty curve should be nil")
	}
	one := NewCDF([]float64{3, 3}).Curve(4)
	if len(one) != 1 || one[0].P != 1 {
		t.Errorf("degenerate curve = %+v", one)
	}
}

func TestHistBasics(t *testing.T) {
	h := NewHist()
	h.Add(2)
	h.Add(2)
	h.Add(5)
	h.AddN(1, 2)
	h.AddN(9, 0) // no-op
	if h.Total() != 5 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Count(2) != 2 || h.Count(1) != 2 || h.Count(5) != 1 {
		t.Error("counts wrong")
	}
	if !almost(h.Frac(2), 0.4, 1e-12) {
		t.Errorf("frac(2) = %v", h.Frac(2))
	}
	if !almost(h.FracRange(1, 2), 0.8, 1e-12) {
		t.Errorf("fracRange(1,2) = %v", h.FracRange(1, 2))
	}
	bins := h.Bins()
	if !sort.IntsAreSorted(bins) || len(bins) != 3 {
		t.Errorf("bins = %v", bins)
	}
	if NewHist().Frac(1) != 0 || NewHist().FracRange(0, 10) != 0 {
		t.Error("empty hist fractions not 0")
	}
}

func TestHistMerge(t *testing.T) {
	a, b := NewHist(), NewHist()
	a.Add(1)
	b.Add(1)
	b.Add(2)
	a.Merge(b)
	if a.Total() != 3 || a.Count(1) != 2 || a.Count(2) != 1 {
		t.Errorf("merged = total %d", a.Total())
	}
}

func TestWelfordMatchesSummarize(t *testing.T) {
	data := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	var w Welford
	for _, v := range data {
		w.Add(v)
	}
	s := Summarize(data)
	if !almost(w.Mean(), s.Mean, 1e-9) {
		t.Errorf("mean %v vs %v", w.Mean(), s.Mean)
	}
	if !almost(w.Std(), s.Std, 1e-9) {
		t.Errorf("std %v vs %v", w.Std(), s.Std)
	}
	if w.N() != 10 {
		t.Errorf("n = %d", w.N())
	}
	var empty Welford
	if empty.Var() != 0 || empty.Mean() != 0 {
		t.Error("empty welford nonzero")
	}
}

// Property: Welford mean/std equal batch mean/std for any sample set.
func TestWelfordProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var data []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e9 {
				data = append(data, v)
			}
		}
		if len(data) == 0 {
			return true
		}
		var w Welford
		for _, v := range data {
			w.Add(v)
		}
		s := Summarize(data)
		scale := math.Max(1, math.Abs(s.Mean))
		return almost(w.Mean(), s.Mean, 1e-6*scale) && almost(w.Std(), s.Std, 1e-4*scale+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMbps(t *testing.T) {
	// 1MB in 8ms = 1e6*8 bits / 0.008 s = 1e9 bps = 1000 Mbps.
	if got := Mbps(1_000_000, 0.008); !almost(got, 1000, 1e-9) {
		t.Errorf("Mbps = %v", got)
	}
	if Mbps(100, 0) != 0 || Mbps(100, -1) != 0 {
		t.Error("degenerate Mbps not 0")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2})
	if s.String() == "" {
		t.Error("empty string rendering")
	}
}
