// Package stats provides the measurement toolkit for the experiments:
// summary statistics (mean/stddev/percentiles), empirical CDFs, integer
// histograms (cwnd frequency distributions), online accumulators, and
// goodput helpers. Everything operates on plain float64 samples so the
// experiment harness stays decoupled from simulator types.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the descriptive statistics the paper reports for FCT and
// throughput series (Fig. 13 uses mean / 95th / 99th percentiles).
type Summary struct {
	// Count is int64: streaming summaries fold one sample per ACK or
	// round, and a long sweep overflows a 32-bit tally.
	Count int64
	Mean  float64
	Std   float64
	Min   float64
	Max   float64
	P50   float64
	P95   float64
	P99   float64
}

// dropNaN returns a copy of samples with NaN values removed. NaN is not
// orderable — a single one corrupts sort order and every rank-based
// statistic downstream — so the constructors discard them at the boundary,
// guaranteeing NaN-free summaries, quantiles and CDFs.
func dropNaN(samples []float64) []float64 {
	out := make([]float64, 0, len(samples))
	for _, v := range samples {
		if !math.IsNaN(v) {
			out = append(out, v)
		}
	}
	return out
}

// Summarize computes a Summary of the samples. An empty input yields the
// zero Summary; NaN samples are discarded.
func Summarize(samples []float64) Summary {
	sorted := dropNaN(samples)
	n := len(sorted)
	if n == 0 {
		return Summary{}
	}
	sort.Float64s(sorted)
	// Welford's algorithm: stable against both catastrophic cancellation
	// and overflow of a naive sum-of-squares.
	var w Welford
	for _, v := range sorted {
		w.Add(v)
	}
	return Summary{
		Count: int64(n),
		Mean:  w.Mean(),
		Std:   w.Std(),
		Min:   sorted[0],
		Max:   sorted[n-1],
		P50:   quantileSorted(sorted, 0.50),
		P95:   quantileSorted(sorted, 0.95),
		P99:   quantileSorted(sorted, 0.99),
	}
}

// String renders the summary compactly for experiment logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f p50=%.3f p95=%.3f p99=%.3f min=%.3f max=%.3f",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Min, s.Max)
}

// quantileSorted returns the q-quantile (0..1) of a sorted sample using
// linear interpolation between closest ranks.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantile returns the q-quantile of unsorted samples. NaN samples are
// discarded.
func Quantile(samples []float64, q float64) float64 {
	sorted := dropNaN(samples)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// CDF is an empirical cumulative distribution function over a sample set.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied and sorted). NaN samples are
// discarded.
func NewCDF(samples []float64) *CDF {
	s := dropNaN(samples)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// Len returns the sample count.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-quantile (inverse CDF).
func (c *CDF) Quantile(q float64) float64 { return quantileSorted(c.sorted, q) }

// Point is one (x, P(X<=x)) pair of a rendered CDF curve.
type Point struct{ X, P float64 }

// Curve renders n evenly spaced points across the sample range, suitable
// for plotting the paper's queue-length CDFs (Fig. 9).
func (c *CDF) Curve(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	lo, hi := c.sorted[0], c.sorted[len(c.sorted)-1]
	//lint:allow floateq lo and hi are untouched copies of stored samples; a degenerate range compares exactly
	if n == 1 || hi == lo {
		return []Point{{hi, 1}}
	}
	pts := make([]Point, n)
	step := (hi - lo) / float64(n-1)
	for i := range pts {
		x := lo + float64(i)*step
		pts[i] = Point{X: x, P: c.At(x)}
	}
	return pts
}

// Hist is an integer-bin frequency histogram — used for the paper's cwnd
// size distributions (Fig. 2), where bins are whole MSS counts.
type Hist struct {
	counts map[int]int64
	total  int64
}

// NewHist returns an empty histogram.
func NewHist() *Hist { return &Hist{counts: make(map[int]int64)} }

// Add records one observation of bin v.
func (h *Hist) Add(v int) {
	h.counts[v]++
	h.total++
}

// AddN records n observations of bin v.
func (h *Hist) AddN(v int, n int64) {
	if n <= 0 {
		return
	}
	h.counts[v] += n
	h.total += n
}

// Total returns the number of observations.
func (h *Hist) Total() int64 { return h.total }

// Count returns the observations in bin v.
func (h *Hist) Count(v int) int64 { return h.counts[v] }

// Frac returns the fraction of observations in bin v.
func (h *Hist) Frac(v int) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[v]) / float64(h.total)
}

// FracRange returns the fraction of observations with lo <= bin <= hi.
func (h *Hist) FracRange(lo, hi int) float64 {
	if h.total == 0 {
		return 0
	}
	var n int64
	for v, c := range h.counts {
		if v >= lo && v <= hi {
			n += c
		}
	}
	return float64(n) / float64(h.total)
}

// Bins returns the occupied bins in ascending order.
func (h *Hist) Bins() []int {
	bins := make([]int, 0, len(h.counts))
	for v := range h.counts {
		bins = append(bins, v)
	}
	sort.Ints(bins)
	return bins
}

// Merge folds other into h.
func (h *Hist) Merge(other *Hist) {
	for v, c := range other.counts {
		h.counts[v] += c
	}
	h.total += other.total
}

// Welford is an online mean/variance accumulator (numerically stable).
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one sample into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 with no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the population variance.
func (w *Welford) Var() float64 {
	if w.n == 0 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std returns the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Mbps converts a byte count over a duration in seconds to megabits per
// second — the goodput unit of the paper's figures.
func Mbps(bytes int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) * 8 / 1e6 / seconds
}
