package stats

import (
	"math"
	"sort"
	"testing"
)

// splitmix64 is a tiny seeded generator for test inputs (the shipping code
// bans math/rand; tests keep the same discipline so inputs are pinned).
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// pareto draws from a Pareto(alpha) tail starting at 1 — the heavy-tailed
// shape of FCT distributions, the worst case for streaming quantiles.
func (s *splitmix64) pareto(alpha float64) float64 {
	u := s.float64()
	for u == 0 {
		u = s.float64()
	}
	return math.Pow(u, -1/alpha)
}

// TestP2AccuracyHeavyTail bounds the P² estimator's relative error against
// the exact sorted percentile on seeded heavy-tailed inputs. The bounds are
// loose enough to be stable across float rounding but tight enough that a
// broken marker update (the classic off-by-one in the desired-position
// drift) fails by orders of magnitude.
func TestP2AccuracyHeavyTail(t *testing.T) {
	cases := []struct {
		name  string
		alpha float64
		n     int
		q     float64
		tol   float64 // relative error bound
	}{
		{"p50-mild-tail", 3.0, 20000, 0.50, 0.05},
		{"p95-mild-tail", 3.0, 20000, 0.95, 0.10},
		{"p99-mild-tail", 3.0, 20000, 0.99, 0.15},
		{"p50-heavy-tail", 1.5, 20000, 0.50, 0.05},
		{"p95-heavy-tail", 1.5, 20000, 0.95, 0.15},
		{"p99-heavy-tail", 1.5, 20000, 0.99, 0.25},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rng := splitmix64(42)
			est := NewP2(c.q)
			samples := make([]float64, c.n)
			for i := range samples {
				v := rng.pareto(c.alpha)
				samples[i] = v
				est.Add(v)
			}
			sort.Float64s(samples)
			exact := quantileSorted(samples, c.q)
			got := est.Value()
			rel := math.Abs(got-exact) / exact
			if rel > c.tol {
				t.Errorf("P2(%v) = %.4f, exact = %.4f, rel err %.3f > %.3f",
					c.q, got, exact, rel, c.tol)
			}
		})
	}
}

// TestP2SmallSamplesExact verifies the estimator is the exact sorted
// quantile below five samples, and well-defined at exactly five.
func TestP2SmallSamplesExact(t *testing.T) {
	est := NewP2(0.5)
	if est.Value() != 0 {
		t.Error("empty estimator should report 0")
	}
	vals := []float64{9, 1, 5, 3}
	for _, v := range vals {
		est.Add(v)
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	want := quantileSorted(sorted, 0.5)
	if got := est.Value(); got != want {
		t.Errorf("4-sample median = %v, want exact %v", got, want)
	}
	est.Add(7)
	if got := est.Value(); got != 5 {
		t.Errorf("5-sample median = %v, want 5", got)
	}
	if est.N() != 5 {
		t.Errorf("N = %d, want 5", est.N())
	}
}

func TestP2DiscardsNaN(t *testing.T) {
	est := NewP2(0.5)
	for i := 0; i < 100; i++ {
		est.Add(float64(i))
		est.Add(math.NaN())
	}
	if est.N() != 100 {
		t.Errorf("N = %d, want 100 (NaN must not count)", est.N())
	}
	if v := est.Value(); math.IsNaN(v) || v < 30 || v > 70 {
		t.Errorf("median of 0..99 estimated as %v", v)
	}
}

func TestP2RejectsDegenerateQuantile(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewP2(%v) did not panic", q)
				}
			}()
			NewP2(q)
		}()
	}
}

// TestStreamMatchesSummarizeMoments checks the exact fields (count, mean,
// std, min, max) agree with the batch path bit-for-bit, and the estimated
// percentiles stay within bounds, on a seeded heavy-tailed stream.
func TestStreamMatchesSummarizeMoments(t *testing.T) {
	rng := splitmix64(7)
	s := NewStream()
	var samples []float64
	for i := 0; i < 10000; i++ {
		v := rng.pareto(2)
		samples = append(samples, v)
		s.Add(v)
	}
	batch := Summarize(samples)
	got := s.Summary()
	if got.Count != batch.Count || got.Min != batch.Min || got.Max != batch.Max {
		t.Errorf("exact fields differ: stream %+v batch %+v", got, batch)
	}
	// Welford folds in sorted order in Summarize and stream order here, so
	// compare within float tolerance rather than bit-for-bit.
	if math.Abs(got.Mean-batch.Mean) > 1e-9*math.Abs(batch.Mean) {
		t.Errorf("mean drifted: stream %v batch %v", got.Mean, batch.Mean)
	}
	if math.Abs(got.Std-batch.Std) > 1e-6*batch.Std {
		t.Errorf("std drifted: stream %v batch %v", got.Std, batch.Std)
	}
	for _, q := range []struct {
		name       string
		est, exact float64
		tol        float64
	}{
		{"p50", got.P50, batch.P50, 0.05},
		{"p95", got.P95, batch.P95, 0.15},
		{"p99", got.P99, batch.P99, 0.25},
	} {
		rel := math.Abs(q.est-q.exact) / q.exact
		if rel > q.tol {
			t.Errorf("%s: stream %v vs exact %v (rel %.3f)", q.name, q.est, q.exact, rel)
		}
	}
}

func TestStreamEmptyAndDeterministic(t *testing.T) {
	if got := NewStream().Summary(); got != (Summary{}) {
		t.Errorf("empty stream summary = %+v, want zero", got)
	}
	// Identical input order must produce bit-identical summaries — the
	// property the sweep's jobs=1 vs jobs=N equivalence rests on.
	a, b := NewStream(), NewStream()
	rng := splitmix64(3)
	for i := 0; i < 5000; i++ {
		v := rng.pareto(1.5)
		a.Add(v)
		b.Add(v)
	}
	if a.Summary() != b.Summary() {
		t.Error("same-order streams produced different summaries")
	}
}
