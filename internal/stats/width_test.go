package stats

import (
	"math"
	"reflect"
	"testing"
)

// TestSummaryCountWidth pins Summary.Count to int64. It used to be int,
// and Stream.Summary narrowed the Welford int64 tally through int(...) —
// correct on 64-bit hosts, silently truncating on 32-bit ones. A width
// regression reintroduces that portability bug even if every value-level
// test below still passes on a 64-bit CI host.
func TestSummaryCountWidth(t *testing.T) {
	f, ok := reflect.TypeOf(Summary{}).FieldByName("Count")
	if !ok {
		t.Fatal("Summary has no Count field")
	}
	if f.Type.Kind() != reflect.Int64 {
		t.Errorf("Summary.Count is %s, want int64 (32-bit hosts truncate larger tallies)", f.Type)
	}
}

// TestStreamSummaryCountBeyondInt32 drives the streaming path with a
// sample count past the 32-bit boundary. The P² and Welford state are
// seeded white-box: folding 2^31 real samples is not a unit test.
func TestStreamSummaryCountBeyondInt32(t *testing.T) {
	s := NewStream()
	for i := 0; i < 8; i++ {
		s.Add(float64(i))
	}
	const n = int64(math.MaxInt32) + 7
	s.w.n = n
	sum := s.Summary()
	if sum.Count != n {
		t.Errorf("Summary.Count = %d, want %d (narrowed through a 32-bit conversion?)", sum.Count, n)
	}
	if s.N() != n {
		t.Errorf("N() = %d, want %d", s.N(), n)
	}
}
