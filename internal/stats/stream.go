package stats

import "math"

// This file holds the streaming (bounded-memory) counterparts of Summarize:
// the sweep orchestrator aggregates thousands of experiment results without
// retaining samples, folding each value into a Welford accumulator for the
// moments and a P² marker set per tracked quantile. Estimates are exact up
// to five samples and converge with O(1) state afterwards, which is what
// lets a 10k-run sweep report p99s without ever holding 10k floats.

// P2 is the P² (piecewise-parabolic) streaming quantile estimator of Jain &
// Chlamtac (1985): five markers track the running q-quantile of a sample
// stream in constant space. For fewer than five samples the estimate is the
// exact sorted quantile. The zero value is not ready to use; construct with
// NewP2.
type P2 struct {
	q float64 // target quantile in (0, 1)

	// h are the marker heights (estimated sample values), pos the actual
	// marker positions (1-based ranks), want the desired positions.
	h    [5]float64
	pos  [5]float64
	want [5]float64
	inc  [5]float64 // per-sample desired-position increments

	n int64
}

// NewP2 returns a streaming estimator of the q-quantile, q in (0, 1).
func NewP2(q float64) *P2 {
	if !(q > 0 && q < 1) {
		panic("stats: P2 quantile must be in (0, 1)")
	}
	p := &P2{q: q}
	p.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	p.inc = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Quantile returns the target quantile this estimator tracks.
func (p *P2) Quantile() float64 { return p.q }

// N returns the number of samples folded in.
func (p *P2) N() int64 { return p.n }

// Add folds one sample into the estimator. NaN samples are discarded, the
// same boundary policy as the batch constructors.
func (p *P2) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	if p.n < 5 {
		// Insertion-sort the first five observations into the marker
		// heights; they are exact order statistics at this point.
		i := p.n
		for i > 0 && p.h[i-1] > x {
			p.h[i] = p.h[i-1]
			i--
		}
		p.h[i] = x
		p.n++
		if p.n == 5 {
			for j := range p.pos {
				p.pos[j] = float64(j + 1)
			}
		}
		return
	}
	p.n++

	// Locate the cell containing x and clamp the extremes.
	var k int
	switch {
	case x < p.h[0]:
		p.h[0] = x
		k = 0
	case x >= p.h[4]:
		p.h[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < p.h[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := range p.want {
		p.want[i] += p.inc[i]
	}

	// Nudge the three interior markers toward their desired positions,
	// preferring the piecewise-parabolic height update and falling back to
	// linear interpolation when the parabola would break monotonicity.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			s := math.Copysign(1, d)
			h := p.parabolic(i, s)
			if p.h[i-1] < h && h < p.h[i+1] {
				p.h[i] = h
			} else {
				p.h[i] = p.linear(i, s)
			}
			p.pos[i] += s
		}
	}
}

// parabolic is the P² quadratic height adjustment for marker i moved by
// s (±1).
func (p *P2) parabolic(i int, s float64) float64 {
	return p.h[i] + s/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+s)*(p.h[i+1]-p.h[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-s)*(p.h[i]-p.h[i-1])/(p.pos[i]-p.pos[i-1]))
}

// linear is the fallback height adjustment for marker i moved by s (±1).
func (p *P2) linear(i int, s float64) float64 {
	j := i + int(s)
	return p.h[i] + s*(p.h[j]-p.h[i])/(p.pos[j]-p.pos[i])
}

// Value returns the current quantile estimate (0 with no samples; the exact
// sorted quantile below five samples).
func (p *P2) Value() float64 {
	if p.n == 0 {
		return 0
	}
	if p.n < 5 {
		return quantileSorted(p.h[:p.n], p.q)
	}
	return p.h[2]
}

// Stream is the streaming counterpart of Summarize: it folds samples into
// constant-space accumulators (Welford moments, min/max, P² markers for
// p50/p95/p99) and renders the same Summary shape on demand. Feed samples
// in a deterministic order to get bit-identical summaries across runs: the
// P² marker updates, like any IEEE float recurrence, are order-sensitive.
type Stream struct {
	w        Welford
	min, max float64
	p50      *P2
	p95      *P2
	p99      *P2
}

// NewStream returns an empty streaming summarizer.
func NewStream() *Stream {
	return &Stream{
		min: math.Inf(1),
		max: math.Inf(-1),
		p50: NewP2(0.50),
		p95: NewP2(0.95),
		p99: NewP2(0.99),
	}
}

// Add folds one sample in. NaN samples are discarded at the boundary, like
// every other constructor in this package.
func (s *Stream) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	s.w.Add(x)
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
	s.p50.Add(x)
	s.p95.Add(x)
	s.p99.Add(x)
}

// N returns the number of samples folded in.
func (s *Stream) N() int64 { return s.w.N() }

// Summary renders the accumulated state in the batch Summary shape. The
// percentiles are P² estimates (exact below five samples); Count, Mean,
// Std, Min and Max are exact.
func (s *Stream) Summary() Summary {
	if s.w.N() == 0 {
		return Summary{}
	}
	return Summary{
		Count: s.w.N(),
		Mean:  s.w.Mean(),
		Std:   s.w.Std(),
		Min:   s.min,
		Max:   s.max,
		P50:   s.p50.Value(),
		P95:   s.p95.Value(),
		P99:   s.p99.Value(),
	}
}
