package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestJainIndexEqualShares(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5, 5}); !almost(got, 1, 1e-12) {
		t.Errorf("equal shares J = %v", got)
	}
}

func TestJainIndexMonopoly(t *testing.T) {
	if got := JainIndex([]float64{10, 0, 0, 0}); !almost(got, 0.25, 1e-12) {
		t.Errorf("monopoly J = %v, want 1/n", got)
	}
}

func TestJainIndexKnownValue(t *testing.T) {
	// x = {1, 3}: (4)^2 / (2 * 10) = 0.8
	if got := JainIndex([]float64{1, 3}); !almost(got, 0.8, 1e-12) {
		t.Errorf("J = %v, want 0.8", got)
	}
}

func TestJainIndexEdge(t *testing.T) {
	if JainIndex(nil) != 0 {
		t.Error("empty J != 0")
	}
	if JainIndex([]float64{0, 0}) != 1 {
		t.Error("all-zero J != 1")
	}
	// Negative allocations clamp to zero rather than poisoning the index.
	if got := JainIndex([]float64{-5, 10}); !almost(got, 0.5, 1e-12) {
		t.Errorf("negative-clamped J = %v", got)
	}
}

// Property: J is always in [1/n, 1] for non-degenerate inputs.
func TestJainIndexBoundsProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		x := make([]float64, len(raw))
		var sum float64
		for i, v := range raw {
			x[i] = float64(v)
			sum += x[i]
		}
		j := JainIndex(x)
		if sum == 0 {
			return j == 1
		}
		n := float64(len(x))
		return j >= 1/n-1e-12 && j <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: J is scale-invariant.
func TestJainIndexScaleInvariance(t *testing.T) {
	f := func(raw []uint8, scaleRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		scale := float64(scaleRaw%100) + 1
		a := make([]float64, len(raw))
		b := make([]float64, len(raw))
		for i, v := range raw {
			a[i] = float64(v)
			b[i] = float64(v) * scale
		}
		return math.Abs(JainIndex(a)-JainIndex(b)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTimeWeightedMean(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(0, 10) // 10 for [0, 2)
	tw.Observe(2, 0)  // 0 for [2, 4)
	tw.Finish(4)
	if got := tw.Mean(); !almost(got, 5, 1e-12) {
		t.Errorf("mean = %v, want 5", got)
	}
	if tw.Max() != 10 {
		t.Errorf("max = %v", tw.Max())
	}
	if tw.Duration() != 4 {
		t.Errorf("duration = %v", tw.Duration())
	}
}

func TestTimeWeightedIgnoresZeroWidthSegments(t *testing.T) {
	var tw TimeWeighted
	tw.Observe(1, 100)
	tw.Observe(1, 3) // instant change: no area from the 100
	tw.Finish(2)
	if got := tw.Mean(); !almost(got, 3, 1e-12) {
		t.Errorf("mean = %v, want 3", got)
	}
}

func TestTimeWeightedEmpty(t *testing.T) {
	var tw TimeWeighted
	tw.Finish(10)
	if tw.Mean() != 0 || tw.Max() != 0 || tw.Duration() != 0 {
		t.Error("empty accumulator not zero")
	}
}

// Property: the time-weighted mean lies within [min, max] of observations.
func TestTimeWeightedEnvelopeProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		var tw TimeWeighted
		lo, hi := math.Inf(1), math.Inf(-1)
		t := 0.0
		for _, v := range raw {
			val := float64(v)
			tw.Observe(t, val)
			if val < lo {
				lo = val
			}
			if val > hi {
				hi = val
			}
			t += 1
		}
		tw.Finish(t)
		m := tw.Mean()
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
