package stats

import (
	"math"
	"testing"
	"testing/quick"
)

// These tests pin the percentile edge cases the telemetry exporters and
// figure renderers rely on: empty sets, single samples, and the guarantee
// that no NaN input can leak into a summary, quantile or CDF.

func TestSummarizeSingleSample(t *testing.T) {
	s := Summarize([]float64{7.5})
	if s.Count != 1 {
		t.Fatalf("count = %d", s.Count)
	}
	for name, v := range map[string]float64{
		"mean": s.Mean, "min": s.Min, "max": s.Max,
		"p50": s.P50, "p95": s.P95, "p99": s.P99,
	} {
		if v != 7.5 {
			t.Errorf("%s = %v, want 7.5", name, v)
		}
	}
	if s.Std != 0 {
		t.Errorf("std = %v, want 0", s.Std)
	}
}

func TestSummarizeDropsNaN(t *testing.T) {
	nan := math.NaN()
	s := Summarize([]float64{1, nan, 3, nan, 5})
	if s.Count != 3 {
		t.Fatalf("count = %d, want 3 (NaNs discarded)", s.Count)
	}
	if s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("summary with NaNs dropped = %+v", s)
	}
	// All-NaN input degenerates to the empty summary, not a NaN-poisoned one.
	all := Summarize([]float64{nan, nan})
	if all != (Summary{}) {
		t.Errorf("all-NaN summary = %+v, want zero", all)
	}
}

func TestQuantileDropsNaN(t *testing.T) {
	nan := math.NaN()
	if got := Quantile([]float64{nan, 10, 0, nan}, 0.5); got != 5 {
		t.Errorf("median with NaNs = %v, want 5", got)
	}
	if got := Quantile([]float64{nan}, 0.5); got != 0 {
		t.Errorf("all-NaN quantile = %v, want 0", got)
	}
}

func TestCDFDropsNaN(t *testing.T) {
	nan := math.NaN()
	c := NewCDF([]float64{nan, 1, 2, nan, 3, 4})
	if c.Len() != 4 {
		t.Fatalf("len = %d, want 4", c.Len())
	}
	if got := c.At(2.5); !almost(got, 0.5, 1e-12) {
		t.Errorf("At(2.5) = %v, want 0.5", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Errorf("q1 = %v, want 4", got)
	}
	empty := NewCDF([]float64{nan})
	if empty.Len() != 0 || empty.Quantile(0.5) != 0 || empty.At(1) != 0 {
		t.Error("all-NaN CDF must behave as empty")
	}
	if empty.Curve(5) != nil {
		t.Error("all-NaN CDF curve must be nil")
	}
}

// Property: no finite-or-NaN input mix ever produces a NaN in the summary
// fields the reports print.
func TestSummaryNaNFreeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var data []float64
		for _, v := range raw {
			if math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue // magnitude-capped like the sim's measurements
			}
			data = append(data, v) // NaNs pass through on purpose
		}
		s := Summarize(data)
		for _, v := range []float64{s.Mean, s.Std, s.Min, s.Max, s.P50, s.P95, s.P99} {
			if math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuantileOutOfRangeClamps(t *testing.T) {
	data := []float64{1, 2, 3}
	if got := Quantile(data, -0.5); got != 1 {
		t.Errorf("q<0 = %v, want min", got)
	}
	if got := Quantile(data, 1.5); got != 3 {
		t.Errorf("q>1 = %v, want max", got)
	}
}

func TestSummarizeTwoSamplesInterpolation(t *testing.T) {
	s := Summarize([]float64{0, 100})
	if s.P50 != 50 {
		t.Errorf("p50 = %v, want 50", s.P50)
	}
	if !almost(s.P95, 95, 1e-9) || !almost(s.P99, 99, 1e-9) {
		t.Errorf("p95 = %v p99 = %v", s.P95, s.P99)
	}
}
