// Package d2tcp implements Deadline-Aware Data Center TCP (Vamanan et al.,
// SIGCOMM 2012) — the first of the DCTCP descendants the paper's §VII
// names as a composition target for the enhancement mechanism ("the idea
// of enhancement mechanism could be coalesced with other data center
// protocols, for example, D2TCP").
//
// D2TCP keeps DCTCP's alpha estimator but gamma-corrects the reduction
// with a per-flow deadline urgency d:
//
//	p = alpha^d
//	W <- W * (1 - p/2)
//
// A far-deadline flow (d < 1) raises p toward 1 and backs off aggressively,
// donating bandwidth; a near-deadline flow (d > 1) lowers p and holds its
// rate. d is clamped to the paper's [0.5, 2] range. With d = 1, D2TCP is
// exactly DCTCP.
package d2tcp

import (
	"math"

	"dctcpplus/internal/dctcp"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/tcp"
)

// Deadline-factor clamp range from the D2TCP paper.
const (
	MinDeadlineFactor = 0.5
	MaxDeadlineFactor = 2.0
)

// D2TCP is the congestion-control module. One instance serves one sender.
type D2TCP struct {
	inner *dctcp.DCTCP
	d     float64
}

// New returns a D2TCP module with EWMA gain g and deadline factor d
// (clamped to [0.5, 2]). d encodes urgency: the D2TCP paper computes it as
// Tc/D — the ratio of the flow's needed completion time to its remaining
// deadline; this library takes it as an explicit parameter so workloads
// can assign urgency directly.
func New(g, d float64) *D2TCP {
	if d < MinDeadlineFactor {
		d = MinDeadlineFactor
	}
	if d > MaxDeadlineFactor {
		d = MaxDeadlineFactor
	}
	return &D2TCP{inner: dctcp.New(g), d: d}
}

// Name returns "d2tcp".
func (t *D2TCP) Name() string { return "d2tcp" }

// Alpha returns the underlying congestion-extent estimate.
func (t *D2TCP) Alpha() float64 { return t.inner.Alpha() }

// Gain returns the underlying estimator's EWMA gain.
func (t *D2TCP) Gain() float64 { return t.inner.Gain() }

// Updates returns the underlying estimator's completed alpha folds.
func (t *D2TCP) Updates() int64 { return t.inner.Updates() }

// DeadlineFactor returns the clamped urgency d.
func (t *D2TCP) DeadlineFactor() float64 { return t.d }

// Penalty returns p = alpha^d, the gamma-corrected backoff fraction.
func (t *D2TCP) Penalty() float64 {
	return pow(t.inner.Alpha(), t.d)
}

// Init initializes the alpha estimator's observation window.
func (t *D2TCP) Init(s *tcp.Sender) { t.inner.Init(s) }

// OnAck delegates marked-byte accounting to the DCTCP estimator.
func (t *D2TCP) OnAck(s *tcp.Sender, acked int64, ece bool) {
	t.inner.OnAck(s, acked, ece)
}

// SsthreshAfterECN applies the gamma-corrected cut W*(1 - p/2).
func (t *D2TCP) SsthreshAfterECN(s *tcp.Sender) float64 {
	return s.CwndMSS() * (1 - t.Penalty()/2)
}

// SsthreshAfterLoss halves, as DCTCP does for real loss.
func (t *D2TCP) SsthreshAfterLoss(s *tcp.Sender) float64 {
	return s.CwndMSS() / 2
}

// OnTimeout keeps alpha across RTOs but must forward to the estimator so it
// re-anchors its observation window at the rewound snd_nxt and drops the
// partially-accumulated marked-byte counts. Swallowing the hook here (as
// this module originally did) left windowEnd beyond the post-rewind
// snd_nxt: alpha froze until the whole pre-timeout window was re-ACKed and
// every retransmitted byte was double-counted in F — the same bug fixed in
// the DCTCP module by PR 4, resurfaced by the oracle's alpha-cadence rule.
func (t *D2TCP) OnTimeout(s *tcp.Sender) { t.inner.OnTimeout(s) }

// PacingDelay is zero; compose with core.Enhance for the DCTCP+ mechanism.
func (t *D2TCP) PacingDelay(*tcp.Sender) sim.Duration { return 0 }

// Config returns the transport preset for D2TCP endpoints (same as DCTCP:
// precise echo, per-segment ACKs).
func Config() tcp.Config { return dctcp.Config() }

// pow computes alpha^d for alpha in [0, 1], clamping the degenerate edges
// so the penalty stays a valid backoff fraction.
func pow(alpha, d float64) float64 {
	if alpha <= 0 {
		return 0
	}
	if alpha >= 1 {
		return 1
	}
	return math.Pow(alpha, d)
}
