package d2tcp

import (
	"math"
	"testing"

	"dctcpplus/internal/core"
	"dctcpplus/internal/dctcp"
	"dctcpplus/internal/netsim"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/tcp"
)

func TestDeadlineFactorClamp(t *testing.T) {
	if New(dctcp.DefaultGain, 0.1).DeadlineFactor() != MinDeadlineFactor {
		t.Error("low d not clamped")
	}
	if New(dctcp.DefaultGain, 9).DeadlineFactor() != MaxDeadlineFactor {
		t.Error("high d not clamped")
	}
	if New(dctcp.DefaultGain, 1.3).DeadlineFactor() != 1.3 {
		t.Error("in-range d altered")
	}
	if New(dctcp.DefaultGain, 1).Name() != "d2tcp" {
		t.Error("name wrong")
	}
}

func TestPenaltyGammaCorrection(t *testing.T) {
	// With the same alpha, a far-deadline flow (d=0.5) must back off harder
	// than a near-deadline one (d=2): p = alpha^d is decreasing in d for
	// alpha < 1.
	far := New(dctcp.DefaultGain, 0.5)
	near := New(dctcp.DefaultGain, 2)
	// Fresh modules share alpha = 1 -> p = 1 for both.
	if far.Penalty() != 1 || near.Penalty() != 1 {
		t.Fatalf("alpha=1 penalties: %v %v", far.Penalty(), near.Penalty())
	}
	// Drive alpha down identically via direct arithmetic: use the d=1
	// equivalence instead — compare against DCTCP's cut at a known alpha.
	if got := pow(0.25, 0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("0.25^0.5 = %v", got)
	}
	if got := pow(0.25, 2); math.Abs(got-0.0625) > 1e-12 {
		t.Errorf("0.25^2 = %v", got)
	}
	if pow(0, 1) != 0 || pow(1, 2) != 1 || pow(-1, 2) != 0 || pow(2, 2) != 1 {
		t.Error("pow edges wrong")
	}
}

func TestD1EquivalentToDCTCPCut(t *testing.T) {
	s := sim.NewScheduler()
	star := netsim.NewStar(s, 2, netsim.DefaultTopologyConfig())
	d2 := New(dctcp.DefaultGain, 1)
	c := tcp.NewConn(Config(), d2, star.Hosts[0], star.Hosts[1], 1)
	base := dctcp.New(dctcp.DefaultGain)
	// Same alpha (both fresh = 1): identical ssthresh proposals.
	if math.Abs(d2.SsthreshAfterECN(c.Sender)-base.SsthreshAfterECN(c.Sender)) > 1e-12 {
		t.Error("d=1 cut differs from DCTCP")
	}
	if math.Abs(d2.SsthreshAfterLoss(c.Sender)-c.Sender.CwndMSS()/2) > 1e-12 {
		t.Error("loss cut not half")
	}
}

// TestDeadlineDifferentiation: two long D2TCP flows share a bottleneck;
// the near-deadline flow (d=2) should end up with more bandwidth than the
// far-deadline flow (d=0.5) — the D2TCP paper's core property.
func TestDeadlineDifferentiation(t *testing.T) {
	s := sim.NewScheduler()
	star := netsim.NewStar(s, 3, netsim.DefaultTopologyConfig())
	mk := func(host int, flow packet.FlowID, d float64, seed uint64) *tcp.Conn {
		cfg := Config()
		cfg.Seed = seed
		cfg.MaxCwnd = 64
		return tcp.NewConn(cfg, New(dctcp.DefaultGain, d), star.Hosts[host], star.Hosts[2], flow)
	}
	near := mk(0, 1, 2.0, 1)
	far := mk(1, 2, 0.5, 2)
	const size = 24 << 20
	near.Sender.Send(size)
	far.Sender.Send(size)
	s.RunUntil(sim.Time(200 * sim.Millisecond))

	nearBytes := near.Receiver.Stats().DeliveredByte
	farBytes := far.Receiver.Stats().DeliveredByte
	if nearBytes <= farBytes {
		t.Errorf("near-deadline flow got %d <= far-deadline %d", nearBytes, farBytes)
	}
	// Differentiation, not starvation: far flow still progresses.
	if farBytes == 0 {
		t.Error("far-deadline flow starved entirely")
	}
}

// rtoShim sits on the data path and drops data segments while *drop is set,
// forcing a genuine RTO in a live connection.
type rtoShim struct {
	dst  netsim.Node
	drop *bool
}

func (m *rtoShim) ID() packet.NodeID { return 51 }
func (m *rtoShim) Deliver(p *packet.Packet) {
	if *m.drop && p.IsData() {
		return
	}
	m.dst.Deliver(p)
}

// TestOnTimeoutForwardsToEstimator is the regression for the swallowed RTO
// hook: D2TCP's OnTimeout was a no-op instead of forwarding to the inner
// DCTCP estimator, so after a go-back-N rewind the observation window
// anchor stayed at the pre-timeout snd_nxt — alpha folds stalled until the
// entire lost window was re-acknowledged and the retransmitted bytes were
// double-counted in the marked fraction (the exact bug fixed for plain
// DCTCP in TestWindowReanchorsAfterRTO, resurfaced here by the oracle's
// alpha-cadence rule). Post-fix, the first window of ACKs after the rewind
// must complete a fold.
func TestOnTimeoutForwardsToEstimator(t *testing.T) {
	s := sim.NewScheduler()
	a := netsim.NewHost(s, 1, "a")
	b := netsim.NewHost(s, 2, "b")
	drop := new(bool)
	shim := &rtoShim{dst: b, drop: drop}
	a.SetUplink(netsim.NewPort(s, netsim.NewLink(s, shim, 1e9, 50*sim.Microsecond),
		netsim.PortConfig{BufferBytes: 4 << 20}))
	b.SetUplink(netsim.NewPort(s, netsim.NewLink(s, a, 1e9, 50*sim.Microsecond),
		netsim.PortConfig{BufferBytes: 4 << 20}))
	cfg := Config()
	cfg.Seed = 7
	d2 := New(dctcp.DefaultGain, 1.5)
	c := tcp.NewConn(cfg, d2, a, b, 3)
	snd := c.Sender

	// Cut the data path once 10 MSS are acknowledged — mid-window, with the
	// estimator's observation anchor strictly ahead of snd_una.
	checked := false
	snd.OnAckProbe = func(ps *tcp.Sender, _ bool) {
		if !*drop && !checked && ps.SndUna() >= 10*packet.MSS {
			*drop = true
		}
	}
	snd.OnTimeoutEvent = func(tcp.TimeoutKind) {
		if checked {
			return
		}
		checked = true
		*drop = false // let the retransmissions through
		// The RTO handler rewinds snd_nxt and then invokes cc.OnTimeout;
		// inspect right after it completes. With the hook forwarded, the
		// window anchor equals the rewound snd_una, so acknowledging one
		// more MSS must complete an alpha fold. With the no-op hook the
		// anchor is still the pre-timeout snd_nxt and no fold happens.
		s.After(0, func() {
			before := d2.Updates()
			d2.OnAck(snd, packet.MSS, false)
			if d2.Updates() != before+1 {
				t.Errorf("no alpha fold after RTO rewind: updates %d -> %d (window anchor not re-anchored)",
					before, d2.Updates())
			}
			s.Halt()
		})
	}

	snd.Send(64 * packet.MSS)
	s.RunUntil(sim.Time(5 * sim.Second))
	if !checked {
		t.Fatal("no RTO fired; the scenario never exercised the rewind")
	}
}

// TestEnhancedD2TCP: the §VII composition — D2TCP wrapped with the DCTCP+
// enhancement mechanism survives a 60-flow incast-style squeeze.
func TestEnhancedD2TCP(t *testing.T) {
	s := sim.NewScheduler()
	tt := netsim.NewTwoTier(s, 3, 3, netsim.DefaultTopologyConfig())
	const n = 30
	done := 0
	for i := 0; i < n; i++ {
		cfg := Config()
		cfg.MinCwnd = 1
		cfg.Seed = uint64(i + 1)
		cc := core.Enhance(New(dctcp.DefaultGain, 1.5), core.DefaultConfig())
		if cc.Name() != "d2tcp+" {
			t.Fatalf("composed name = %q", cc.Name())
		}
		conn := tcp.NewConn(cfg, cc, tt.Workers[i%9], tt.Aggregator, packet.FlowID(i+1))
		conn.Sender.OnComplete = func(int64) { done++ }
		conn.Sender.Send(64 << 10)
	}
	s.RunUntil(sim.Time(30 * sim.Second))
	if done != n {
		t.Errorf("completed %d/%d flows", done, n)
	}
}
