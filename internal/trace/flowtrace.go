package trace

import (
	"fmt"
	"io"

	"dctcpplus/internal/sim"
	"dctcpplus/internal/tcp"
)

// FlowSample is one tcp_probe-style record: the sender state at one ACK.
type FlowSample struct {
	At       sim.Time
	CwndMSS  float64
	Ssthresh float64
	State    tcp.SenderState
	ECE      bool
	SndUna   int64
	SRTT     sim.Duration
}

// FlowTrace records the full per-ACK time series of one sender — the
// moral equivalent of the paper's tcp_probe/Kprobes instrumentation
// ("we trace all the congestion window size evolution and the ECE flag
// bit in TCP's headers of all concurrent flows"). A MaxSamples bound keeps
// long experiments from accumulating unbounded traces (0 = unbounded).
type FlowTrace struct {
	samples    []FlowSample
	MaxSamples int
	dropped    int64
}

// NewFlowTrace returns an empty trace bounded to maxSamples (0 = no bound).
func NewFlowTrace(maxSamples int) *FlowTrace {
	return &FlowTrace{MaxSamples: maxSamples}
}

// Attach hooks the trace onto the sender's ACK probe, chaining any
// existing hook.
func (ft *FlowTrace) Attach(s *tcp.Sender) {
	prev := s.OnAckProbe
	s.OnAckProbe = func(snd *tcp.Sender, ece bool) {
		ft.Observe(snd, ece)
		if prev != nil {
			prev(snd, ece)
		}
	}
}

// Observe appends one sample.
func (ft *FlowTrace) Observe(s *tcp.Sender, ece bool) {
	if ft.MaxSamples > 0 && len(ft.samples) >= ft.MaxSamples {
		ft.dropped++
		return
	}
	ft.samples = append(ft.samples, FlowSample{
		At:       s.Now(),
		CwndMSS:  s.CwndMSS(),
		Ssthresh: s.SsthreshMSS(),
		State:    s.State(),
		ECE:      ece,
		SndUna:   s.SndUna(),
		SRTT:     s.SRTT(),
	})
}

// Samples returns the recorded series.
func (ft *FlowTrace) Samples() []FlowSample { return ft.samples }

// Dropped returns how many samples the bound discarded.
func (ft *FlowTrace) Dropped() int64 { return ft.dropped }

// WriteTo dumps the trace as aligned text rows (one per ACK).
func (ft *FlowTrace) WriteTo(w io.Writer) (int64, error) {
	var n int64
	c, err := fmt.Fprintf(w, "%-12s %8s %8s %-9s %-5s %10s %10s\n",
		"time", "cwnd", "ssthresh", "state", "ece", "snd_una", "srtt")
	n += int64(c)
	if err != nil {
		return n, err
	}
	for _, s := range ft.samples {
		c, err = fmt.Fprintf(w, "%-12v %8.2f %8.1f %-9v %-5v %10d %10v\n",
			s.At, s.CwndMSS, s.Ssthresh, s.State, s.ECE, s.SndUna, s.SRTT)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
