package trace

import (
	"fmt"
	"io"

	"dctcpplus/internal/netsim"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

// TapRecord is one captured packet transmission at a port.
type TapRecord struct {
	At      sim.Time
	Flow    packet.FlowID
	Src     packet.NodeID
	Dst     packet.NodeID
	Seq     int64
	AckNo   int64
	Payload int
	Flags   packet.Flags
	ECN     packet.ECN
}

// PacketTap captures packets leaving a switch/host port — the tcpdump of
// the simulator. An optional filter restricts capture; MaxRecords bounds
// memory (0 = unbounded).
type PacketTap struct {
	sched *sim.Scheduler

	// Filter, when non-nil, must return true for a packet to be captured.
	Filter func(*packet.Packet) bool
	// MaxRecords bounds the capture length (0 = unbounded).
	MaxRecords int

	records []TapRecord
	dropped int64
}

// NewPacketTap installs a tap on the port's transmit hook, chaining any
// existing hook.
func NewPacketTap(sched *sim.Scheduler, port *netsim.Port, maxRecords int) *PacketTap {
	t := &PacketTap{sched: sched, MaxRecords: maxRecords}
	prev := port.OnTransmit
	port.OnTransmit = func(p *packet.Packet) {
		t.observe(p)
		if prev != nil {
			prev(p)
		}
	}
	return t
}

func (t *PacketTap) observe(p *packet.Packet) {
	if t.Filter != nil && !t.Filter(p) {
		return
	}
	if t.MaxRecords > 0 && len(t.records) >= t.MaxRecords {
		t.dropped++
		return
	}
	t.records = append(t.records, TapRecord{
		At:      t.sched.Now(),
		Flow:    p.Flow,
		Src:     p.Src,
		Dst:     p.Dst,
		Seq:     p.Seq,
		AckNo:   p.AckNo,
		Payload: p.Payload,
		Flags:   p.Flags,
		ECN:     p.ECN,
	})
}

// Records returns the captured packets in transmission order.
func (t *PacketTap) Records() []TapRecord { return t.records }

// Dropped returns how many matching packets the bound discarded.
func (t *PacketTap) Dropped() int64 { return t.dropped }

// WriteTo dumps the capture as aligned text rows.
func (t *PacketTap) WriteTo(w io.Writer) (int64, error) {
	var n int64
	c, err := fmt.Fprintf(w, "%-12s %6s %5s %5s %10s %10s %6s %-12s %-6s\n",
		"time", "flow", "src", "dst", "seq", "ack", "len", "flags", "ecn")
	n += int64(c)
	if err != nil {
		return n, err
	}
	for _, r := range t.records {
		c, err = fmt.Fprintf(w, "%-12v %6d %5d %5d %10d %10d %6d %-12v %-6v\n",
			r.At, r.Flow, r.Src, r.Dst, r.Seq, r.AckNo, r.Payload, r.Flags, r.ECN)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
