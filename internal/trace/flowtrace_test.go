package trace

import (
	"strings"
	"testing"

	"dctcpplus/internal/netsim"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/tcp"
)

func TestFlowTraceRecordsSeries(t *testing.T) {
	s := sim.NewScheduler()
	star := netsim.NewStar(s, 2, netsim.DefaultTopologyConfig())
	c := tcp.NewConn(tcp.DefaultConfig(), tcp.NewReno{}, star.Hosts[0], star.Hosts[1], 1)
	ft := NewFlowTrace(0)
	ft.Attach(c.Sender)
	c.Sender.Send(32 * packet.MSS)
	s.Run()
	if !c.Sender.Done() {
		t.Fatal("incomplete")
	}
	samples := ft.Samples()
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	// Time must be nondecreasing and snd_una monotone.
	for i := 1; i < len(samples); i++ {
		if samples[i].At < samples[i-1].At {
			t.Fatal("time went backwards")
		}
		if samples[i].SndUna < samples[i-1].SndUna {
			t.Fatal("snd_una went backwards")
		}
	}
	last := samples[len(samples)-1]
	if last.SndUna != 32*packet.MSS {
		t.Errorf("final snd_una = %d", last.SndUna)
	}
	if ft.Dropped() != 0 {
		t.Error("unbounded trace dropped samples")
	}
}

func TestFlowTraceBound(t *testing.T) {
	s := sim.NewScheduler()
	star := netsim.NewStar(s, 2, netsim.DefaultTopologyConfig())
	c := tcp.NewConn(tcp.DefaultConfig(), tcp.NewReno{}, star.Hosts[0], star.Hosts[1], 1)
	ft := NewFlowTrace(5)
	ft.Attach(c.Sender)
	c.Sender.Send(64 * packet.MSS)
	s.Run()
	if len(ft.Samples()) != 5 {
		t.Errorf("samples = %d, want bounded to 5", len(ft.Samples()))
	}
	if ft.Dropped() == 0 {
		t.Error("bound did not drop anything")
	}
}

func TestFlowTraceWriteTo(t *testing.T) {
	s := sim.NewScheduler()
	star := netsim.NewStar(s, 2, netsim.DefaultTopologyConfig())
	c := tcp.NewConn(tcp.DefaultConfig(), tcp.NewReno{}, star.Hosts[0], star.Hosts[1], 1)
	ft := NewFlowTrace(0)
	ft.Attach(c.Sender)
	c.Sender.Send(4 * packet.MSS)
	s.Run()
	var sb strings.Builder
	n, err := ft.WriteTo(&sb)
	if err != nil || n == 0 {
		t.Fatalf("WriteTo: %d %v", n, err)
	}
	out := sb.String()
	for _, col := range []string{"time", "cwnd", "ssthresh", "snd_una"} {
		if !strings.Contains(out, col) {
			t.Errorf("missing column %q", col)
		}
	}
	if strings.Count(out, "\n") != len(ft.Samples())+1 {
		t.Errorf("row count mismatch")
	}
}
