package trace

import (
	"testing"

	"dctcpplus/internal/netsim"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/tcp"
)

func twoHosts(t *testing.T) (*sim.Scheduler, *netsim.Star) {
	t.Helper()
	s := sim.NewScheduler()
	return s, netsim.NewStar(s, 2, netsim.DefaultTopologyConfig())
}

func TestCwndProbeRecordsPerAck(t *testing.T) {
	s, star := twoHosts(t)
	c := tcp.NewConn(tcp.DefaultConfig(), tcp.NewReno{}, star.Hosts[0], star.Hosts[1], 1)
	p := NewCwndProbe()
	p.Attach(c.Sender)
	c.Sender.Send(64 * packet.MSS)
	s.Run()
	if !c.Sender.Done() {
		t.Fatal("transfer incomplete")
	}
	if p.Events() == 0 || p.Hist().Total() != p.Events() {
		t.Errorf("events=%d histTotal=%d", p.Events(), p.Hist().Total())
	}
	// Clean transfer: no ECE ever, so the coincidence fraction is zero.
	if p.ECEAtMinFrac() != 0 {
		t.Errorf("ECEAtMinFrac = %v on clean path", p.ECEAtMinFrac())
	}
	// cwnd grew past initial 2 during slow start: histogram has bins > 2.
	found := false
	for _, b := range p.Hist().Bins() {
		if b > 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("histogram bins = %v, expected growth beyond 2", p.Hist().Bins())
	}
}

func TestCwndProbeChainsExistingHook(t *testing.T) {
	s, star := twoHosts(t)
	c := tcp.NewConn(tcp.DefaultConfig(), tcp.NewReno{}, star.Hosts[0], star.Hosts[1], 1)
	var prevCalls int
	c.Sender.OnAckProbe = func(*tcp.Sender, bool) { prevCalls++ }
	p := NewCwndProbe()
	p.Attach(c.Sender)
	c.Sender.Send(4 * packet.MSS)
	s.Run()
	if prevCalls == 0 {
		t.Error("existing hook was not chained")
	}
	if p.Events() != int64(prevCalls) {
		t.Errorf("probe %d vs chained %d", p.Events(), prevCalls)
	}
}

func TestCwndProbeFloorBin(t *testing.T) {
	p := NewCwndProbe()
	s, star := twoHosts(t)
	c := tcp.NewConn(tcp.DefaultConfig(), tcp.NewReno{}, star.Hosts[0], star.Hosts[1], 2)
	_ = s
	// Observe directly with a synthetic ECE at the floor: fresh sender has
	// cwnd = 2 = MinCwnd.
	p.Observe(c.Sender, true)
	if p.ECEAtMinFrac() != 1 {
		t.Errorf("ECEAtMinFrac = %v, want 1", p.ECEAtMinFrac())
	}
	if p.Hist().Count(2) != 1 {
		t.Errorf("bin 2 count = %d", p.Hist().Count(2))
	}
}

func TestQueueSamplerInterval(t *testing.T) {
	s := sim.NewScheduler()
	star := netsim.NewStar(s, 2, netsim.DefaultTopologyConfig())
	port := star.Switch.RouteTo(star.Hosts[1].ID())
	q := NewQueueSampler(s, port, 100*sim.Microsecond)
	q.Start()
	q.Start() // idempotent
	s.After(1050*sim.Microsecond, func() { q.Stop() })
	s.Run()
	n := len(q.Samples())
	// Samples at t=0, 100us, ..., 1000us -> 11.
	if n != 11 {
		t.Errorf("samples = %d, want 11", n)
	}
	for i, smp := range q.Samples() {
		if want := sim.Time(i) * sim.Time(100*sim.Microsecond); smp.At != want {
			t.Errorf("sample %d at %v, want %v", i, smp.At, want)
		}
		if smp.Bytes != 0 {
			t.Errorf("idle queue sample = %d bytes", smp.Bytes)
		}
	}
}

func TestQueueSamplerObservesOccupancy(t *testing.T) {
	s := sim.NewScheduler()
	star := netsim.NewStar(s, 3, netsim.DefaultTopologyConfig())
	port := star.Switch.RouteTo(star.Hosts[2].ID())
	q := NewQueueSampler(s, port, 10*sim.Microsecond)
	q.Start()
	// Two hosts blast data at host2's switch port so a queue builds.
	for i, h := range star.Hosts[:2] {
		cfg := tcp.DefaultConfig()
		cfg.InitialCwnd = 30
		cfg.MaxCwnd = 64
		c := tcp.NewConn(cfg, tcp.NewReno{}, h, star.Hosts[2], packet.FlowID(i+1))
		c.Sender.Send(60 * packet.MSS)
	}
	s.RunUntil(sim.Time(5 * sim.Millisecond))
	q.Stop()
	max := 0
	for _, v := range q.Samples() {
		if v.Bytes > max {
			max = v.Bytes
		}
	}
	if max == 0 {
		t.Error("sampler never observed a non-empty queue")
	}
	cdf := q.CDF()
	if cdf.Len() != len(q.Samples()) {
		t.Error("CDF sample count mismatch")
	}
	if got := cdf.At(float64(max)); got != 1 {
		t.Errorf("CDF at max = %v", got)
	}
	vals := q.Values()
	if len(vals) != len(q.Samples()) {
		t.Error("Values length mismatch")
	}
}

func TestQueueSamplerValidation(t *testing.T) {
	s := sim.NewScheduler()
	star := netsim.NewStar(s, 2, netsim.DefaultTopologyConfig())
	port := star.Switch.RouteTo(star.Hosts[1].ID())
	defer func() {
		if recover() == nil {
			t.Error("zero interval did not panic")
		}
	}()
	NewQueueSampler(s, port, 0)
}

func TestQueueSamplerStopBeforeStart(t *testing.T) {
	s := sim.NewScheduler()
	star := netsim.NewStar(s, 2, netsim.DefaultTopologyConfig())
	port := star.Switch.RouteTo(star.Hosts[1].ID())
	q := NewQueueSampler(s, port, sim.Microsecond)
	q.Stop() // must not panic
	if len(q.Samples()) != 0 {
		t.Error("samples without start")
	}
}
