// Package trace provides the observation instruments the paper built from
// tcp_probe/Kprobes and switch counters: per-ACK congestion-window probes
// (for the Fig. 2 cwnd frequency distributions), and periodic queue-length
// samplers on switch ports (for the Fig. 9 CDFs and the Fig. 14 time
// series, both sampled every 100us in the paper).
package trace

import (
	"math"

	"dctcpplus/internal/netsim"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/stats"
	"dctcpplus/internal/tcp"
)

// CwndProbe records the congestion window (in whole MSS) observed at every
// ACK on one sender — the tcp_probe analog. Attach installs it on the
// sender's OnAckProbe hook, chaining any previously installed hook.
type CwndProbe struct {
	hist *stats.Hist

	// eceAtMin counts ACK events where the window sat at (or below) the
	// configured floor while ECE was set — the Fig. 2/Table I coincidence.
	eceAtMin int64
	events   int64
}

// NewCwndProbe returns an empty probe.
func NewCwndProbe() *CwndProbe {
	return &CwndProbe{hist: stats.NewHist()}
}

// Attach hooks the probe onto the sender.
func (p *CwndProbe) Attach(s *tcp.Sender) {
	prev := s.OnAckProbe
	s.OnAckProbe = func(snd *tcp.Sender, ece bool) {
		p.Observe(snd, ece)
		if prev != nil {
			prev(snd, ece)
		}
	}
}

// Observe records one ACK event.
func (p *CwndProbe) Observe(s *tcp.Sender, ece bool) {
	w := int(math.Round(s.CwndMSS()))
	if w < 1 {
		w = 1
	}
	p.hist.Add(w)
	p.events++
	if ece && s.CwndMSS() <= s.MinCwndMSS() {
		p.eceAtMin++
	}
}

// Hist returns the cwnd frequency histogram (bins in MSS).
func (p *CwndProbe) Hist() *stats.Hist { return p.hist }

// Events returns the number of ACKs observed.
func (p *CwndProbe) Events() int64 { return p.events }

// ECEAtMinFrac returns the fraction of ACK events with the window pinned
// at the floor while ECE was set.
func (p *CwndProbe) ECEAtMinFrac() float64 {
	if p.events == 0 {
		return 0
	}
	return float64(p.eceAtMin) / float64(p.events)
}

// QueueSample is one timestamped queue-occupancy observation.
type QueueSample struct {
	At    sim.Time
	Bytes int
}

// QueueSampler periodically samples a switch port's queue occupancy, like
// the paper's "collect the instant queue length every 100us on Switch 1".
type QueueSampler struct {
	sched    *sim.Scheduler
	port     *netsim.Port
	interval sim.Duration
	samples  []QueueSample
	ev       *sim.Event
	running  bool
}

// NewQueueSampler creates a sampler for port at the given interval
// (100us in the paper). Call Start to begin.
func NewQueueSampler(sched *sim.Scheduler, port *netsim.Port, interval sim.Duration) *QueueSampler {
	if interval <= 0 {
		panic("trace: sampler interval must be positive")
	}
	return &QueueSampler{sched: sched, port: port, interval: interval}
}

// Start begins periodic sampling from the current instant.
func (q *QueueSampler) Start() {
	if q.running {
		return
	}
	q.running = true
	q.tick()
}

func (q *QueueSampler) tick() {
	// The event that invoked us is dead and its handle may be recycled by
	// the re-arm below, so clear the field before anything else (the
	// sim.Event contract; enforced by simlint's handlestate analyzer).
	// Without this, a Stop between the sample and a later reuse of the
	// recycled handle would cancel somebody else's event.
	q.ev = nil
	if !q.running {
		return
	}
	q.samples = append(q.samples, QueueSample{At: q.sched.Now(), Bytes: q.port.QueueBytes()})
	q.ev = q.sched.After(q.interval, q.tick)
}

// Stop halts sampling; collected samples remain available.
func (q *QueueSampler) Stop() {
	q.running = false
	q.sched.Cancel(q.ev)
	q.ev = nil
}

// Samples returns the collected time series.
func (q *QueueSampler) Samples() []QueueSample { return q.samples }

// Values returns the occupancies as float64s (bytes), for CDF building.
func (q *QueueSampler) Values() []float64 {
	out := make([]float64, len(q.samples))
	for i, s := range q.samples {
		out[i] = float64(s.Bytes)
	}
	return out
}

// CDF builds the empirical CDF of the sampled occupancies.
func (q *QueueSampler) CDF() *stats.CDF { return stats.NewCDF(q.Values()) }
