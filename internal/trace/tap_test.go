package trace

import (
	"strings"
	"testing"

	"dctcpplus/internal/netsim"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/tcp"
)

func TestPacketTapCapturesTransmissions(t *testing.T) {
	s := sim.NewScheduler()
	star := netsim.NewStar(s, 2, netsim.DefaultTopologyConfig())
	port := star.Switch.RouteTo(star.Hosts[1].ID())
	tap := NewPacketTap(s, port, 0)

	c := tcp.NewConn(tcp.DefaultConfig(), tcp.NewReno{}, star.Hosts[0], star.Hosts[1], 1)
	c.Sender.Send(8 * packet.MSS)
	s.Run()

	recs := tap.Records()
	if len(recs) != 8 {
		t.Fatalf("captured %d data packets, want 8", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].At < recs[i-1].At {
			t.Fatal("capture times not monotone")
		}
		if recs[i].Seq <= recs[i-1].Seq {
			t.Fatal("clean transfer seqs not increasing")
		}
	}
	if tap.Dropped() != 0 {
		t.Error("unbounded tap dropped records")
	}
}

func TestPacketTapFilterAndBound(t *testing.T) {
	s := sim.NewScheduler()
	star := netsim.NewStar(s, 3, netsim.DefaultTopologyConfig())
	port := star.Switch.RouteTo(star.Hosts[2].ID())
	tap := NewPacketTap(s, port, 3)
	tap.Filter = func(p *packet.Packet) bool { return p.Flow == 2 }

	for _, fl := range []packet.FlowID{1, 2} {
		c := tcp.NewConn(tcp.DefaultConfig(), tcp.NewReno{},
			star.Hosts[int(fl)-1], star.Hosts[2], fl)
		c.Sender.Send(6 * packet.MSS)
	}
	s.Run()

	recs := tap.Records()
	if len(recs) != 3 {
		t.Fatalf("bounded capture = %d, want 3", len(recs))
	}
	for _, r := range recs {
		if r.Flow != 2 {
			t.Fatalf("filter leaked flow %d", r.Flow)
		}
	}
	if tap.Dropped() != 3 {
		t.Errorf("dropped = %d, want 3", tap.Dropped())
	}
}

func TestPacketTapWriteTo(t *testing.T) {
	s := sim.NewScheduler()
	star := netsim.NewStar(s, 2, netsim.DefaultTopologyConfig())
	port := star.Switch.RouteTo(star.Hosts[1].ID())
	tap := NewPacketTap(s, port, 0)
	c := tcp.NewConn(tcp.DefaultConfig(), tcp.NewReno{}, star.Hosts[0], star.Hosts[1], 1)
	c.Sender.Send(2 * packet.MSS)
	s.Run()
	var sb strings.Builder
	if _, err := tap.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "flow") || strings.Count(sb.String(), "\n") != 3 {
		t.Errorf("dump malformed:\n%s", sb.String())
	}
}

func TestSwitchAggregateStats(t *testing.T) {
	s := sim.NewScheduler()
	star := netsim.NewStar(s, 3, netsim.DefaultTopologyConfig())
	for i := 0; i < 2; i++ {
		c := tcp.NewConn(tcp.DefaultConfig(), tcp.NewReno{},
			star.Hosts[i], star.Hosts[2], packet.FlowID(i+1))
		c.Sender.Send(4 * packet.MSS)
	}
	s.Run()
	agg := star.Switch.AggregateStats()
	if agg.Ports != 3 {
		t.Errorf("ports = %d", agg.Ports)
	}
	if agg.EnqueuedPkts == 0 || agg.EnqueuedPkts != agg.DequeuedPkts {
		t.Errorf("aggregate accounting: %+v", agg)
	}
	if agg.DroppedPkts != 0 {
		t.Errorf("unexpected drops: %+v", agg)
	}
}
