package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"dctcpplus/internal/sim"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Add(3)
	c.Inc()
	c.Add(0)
	c.Add(-5)
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	var nilC *Counter
	nilC.Add(1)
	nilC.Inc()
	if got := nilC.Value(); got != 0 {
		t.Fatalf("nil counter = %d, want 0", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(0.0625)
	if got := g.Value(); got != 0.0625 {
		t.Fatalf("gauge = %v, want 0.0625", got)
	}
	g.Set(-1.5)
	if got := g.Value(); got != -1.5 {
		t.Fatalf("gauge = %v, want -1.5", got)
	}
	var nilG *Gauge
	nilG.Set(3)
	if got := nilG.Value(); got != 0 {
		t.Fatalf("nil gauge = %v, want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	h := newHistogram()
	for _, v := range []int64{0, 1, 2, 3, 100, 1 << 20, -7} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("count = %d, want 7", got)
	}
	// -7 clamps to 0.
	if got := h.Sum(); got != 0+1+2+3+100+(1<<20)+0 {
		t.Fatalf("sum = %d", got)
	}
	if got := h.Min(); got != 0 {
		t.Fatalf("min = %d, want 0", got)
	}
	if got := h.Max(); got != 1<<20 {
		t.Fatalf("max = %d, want %d", got, 1<<20)
	}
	wantMean := float64(106+1<<20) / 7
	if got := h.Mean(); math.Abs(got-wantMean) > 1e-9 {
		t.Fatalf("mean = %v, want %v", got, wantMean)
	}
	if q := h.Quantile(0); q != 0 {
		t.Fatalf("q0 = %v, want 0", q)
	}
	if q := h.Quantile(1); q < 100 {
		t.Fatalf("q1 = %v, want near max", q)
	}
	if q := h.Quantile(0.5); q < 1 || q > 100 {
		t.Fatalf("q0.5 = %v, want within sample range", q)
	}

	var nilH *Histogram
	nilH.Observe(1)
	if nilH.Count() != 0 || nilH.Sum() != 0 || nilH.Min() != 0 || nilH.Max() != 0 {
		t.Fatal("nil histogram must report zeros")
	}
	if nilH.Mean() != 0 || nilH.Quantile(0.5) != 0 {
		t.Fatal("nil histogram stats must be 0")
	}

	empty := newHistogram()
	if empty.Min() != 0 || empty.Max() != 0 || empty.Mean() != 0 || empty.Quantile(0.9) != 0 {
		t.Fatal("empty histogram stats must be 0")
	}
}

func TestBucketBounds(t *testing.T) {
	cases := []struct {
		i      int
		lo, hi int64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{2, 2, 3},
		{3, 4, 7},
		{10, 512, 1023},
		{63, 1 << 62, math.MaxInt64},
		{64, math.MinInt64, math.MaxInt64}, // lo overflows but hi caps; index 64 only holds MaxInt64 samples
	}
	for _, c := range cases[:6] {
		lo, hi := bucketBounds(c.i)
		if lo != c.lo || hi != c.hi {
			t.Errorf("bucketBounds(%d) = (%d, %d), want (%d, %d)", c.i, lo, hi, c.lo, c.hi)
		}
	}
	// Every non-negative int64 maps to a valid bucket index.
	h := newHistogram()
	h.Observe(math.MaxInt64)
	if h.Max() != math.MaxInt64 {
		t.Fatal("MaxInt64 sample lost")
	}
}

func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", L("proto", "dctcp+"), L("flows", "20"))
	b := r.Counter("x_total", L("flows", "20"), L("proto", "dctcp+")) // label order irrelevant
	if a != b {
		t.Fatal("same identity must return the same counter")
	}
	c := r.Counter("x_total", L("flows", "60"), L("proto", "dctcp+"))
	if a == c {
		t.Fatal("distinct labels must return distinct counters")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	if h1, h2 := r.Histogram("h"), r.Histogram("h"); h1 != h2 {
		t.Fatal("same identity must return the same histogram")
	}
	if g1, g2 := r.Gauge("g"), r.Gauge("g"); g1 != g2 {
		t.Fatal("same identity must return the same gauge")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("kind clash must panic")
		}
	}()
	r.Gauge("x_total", L("proto", "dctcp+"), L("flows", "20"))
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	if r.Counter("c") != nil || r.Gauge("g") != nil || r.Histogram("h") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	r.AdvanceSimTime(5)
	if r.SimTime() != 0 || r.Len() != 0 {
		t.Fatal("nil registry must report zeros")
	}
	snap := r.Snapshot()
	if snap.SimTimeNs != 0 || len(snap.Instruments) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestAdvanceSimTime(t *testing.T) {
	r := NewRegistry()
	r.AdvanceSimTime(100)
	r.AdvanceSimTime(50) // high-water mark: no regression
	if got := r.SimTime(); got != 100 {
		t.Fatalf("SimTime = %v, want 100", got)
	}
	r.AdvanceSimTime(200)
	if got := r.SimTime(); got != 200 {
		t.Fatalf("SimTime = %v, want 200", got)
	}
}

func buildSnapshot(t *testing.T) Snapshot {
	t.Helper()
	r := NewRegistry()
	r.Counter("netsim_port_ce_marked_pkts_total", L("port", "bottleneck")).Add(42)
	r.Gauge("dctcp_alpha", L("proto", "dctcp+")).Set(0.25)
	h := r.Histogram("tcp_cwnd_mss")
	for _, v := range []int64{1, 1, 2, 4, 8} {
		h.Observe(v)
	}
	r.AdvanceSimTime(sim.Time(1_500_000))
	return r.Snapshot()
}

func TestSnapshotFindAndTotal(t *testing.T) {
	snap := buildSnapshot(t)
	if len(snap.Instruments) != 3 {
		t.Fatalf("instruments = %d, want 3", len(snap.Instruments))
	}
	is, ok := snap.Find("netsim_port_ce_marked_pkts_total", L("port", "bottleneck"))
	if !ok || is.Value != 42 {
		t.Fatalf("Find counter: ok=%v value=%d", ok, is.Value)
	}
	if _, ok := snap.Find("netsim_port_ce_marked_pkts_total", L("port", "other")); ok {
		t.Fatal("Find must miss on wrong labels")
	}
	if got := snap.Total("tcp_cwnd_mss"); got != 5 {
		t.Fatalf("Total(histogram) = %d, want 5", got)
	}
	if got := snap.Total("netsim_port_ce_marked_pkts_total"); got != 42 {
		t.Fatalf("Total(counter) = %d, want 42", got)
	}
	// Deterministic sorted order.
	for i := 1; i < len(snap.Instruments); i++ {
		if snap.Instruments[i-1].key() > snap.Instruments[i].key() {
			t.Fatal("snapshot instruments not sorted")
		}
	}
}

func TestWriteJSONLines(t *testing.T) {
	snap := buildSnapshot(t)
	var buf bytes.Buffer
	if err := snap.WriteJSONLines(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+len(snap.Instruments) {
		t.Fatalf("lines = %d, want %d", len(lines), 1+len(snap.Instruments))
	}
	var header struct {
		SimTimeNs   int64 `json:"sim_time_ns"`
		Instruments int   `json:"instruments"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &header); err != nil {
		t.Fatalf("header: %v", err)
	}
	if header.SimTimeNs != 1_500_000 || header.Instruments != 3 {
		t.Fatalf("header = %+v", header)
	}
	for _, ln := range lines[1:] {
		var is InstrumentSnapshot
		if err := json.Unmarshal([]byte(ln), &is); err != nil {
			t.Fatalf("instrument line %q: %v", ln, err)
		}
		if is.Name == "" || is.Kind == "" {
			t.Fatalf("instrument line missing name/kind: %q", ln)
		}
	}
}

func TestWritePrometheus(t *testing.T) {
	snap := buildSnapshot(t)
	var buf bytes.Buffer
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE dctcpplus_sim_time_ns gauge",
		"dctcpplus_sim_time_ns 1500000",
		"# TYPE netsim_port_ce_marked_pkts_total counter",
		`netsim_port_ce_marked_pkts_total{port="bottleneck"} 42`,
		"# TYPE dctcp_alpha gauge",
		`dctcp_alpha{proto="dctcp+"} 0.25`,
		"# TYPE tcp_cwnd_mss histogram",
		`tcp_cwnd_mss_bucket{le="+Inf"} 5`,
		"tcp_cwnd_mss_sum 16",
		"tcp_cwnd_mss_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
	// Buckets must be cumulative: the series of _bucket values never
	// decreases and ends at the count.
	var last int64 = -1
	for _, ln := range strings.Split(out, "\n") {
		if !strings.HasPrefix(ln, "tcp_cwnd_mss_bucket") {
			continue
		}
		var v int64
		if _, err := fmtSscanLast(ln, &v); err != nil {
			t.Fatalf("parse %q: %v", ln, err)
		}
		if v < last {
			t.Fatalf("non-cumulative bucket series: %q after %d", ln, last)
		}
		last = v
	}
	if last != 5 {
		t.Fatalf("final cumulative bucket = %d, want 5", last)
	}
}

// fmtSscanLast parses the final whitespace-separated field of a line.
func fmtSscanLast(line string, v *int64) (int, error) {
	fields := strings.Fields(line)
	return 1, json.Unmarshal([]byte(fields[len(fields)-1]), v)
}

func TestWriteTable(t *testing.T) {
	snap := buildSnapshot(t)
	var buf bytes.Buffer
	if err := snap.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"instrument", "netsim_port_ce_marked_pkts_total", "port=bottleneck",
		"dctcp_alpha", "count=5", "mean=3.2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q\n%s", want, out)
		}
	}
}

func TestManifestRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("tcp_rto_total", L("proto", "dctcp")).Add(7)
	r.Histogram("workload_round_fct_ns").Observe(123456)
	r.AdvanceSimTime(999)

	m := NewManifest("report", 42)
	m.SetConfig("rounds", 50)
	m.SetConfig("warmup", 10)
	m.Finish(r, 3*time.Second)

	if m.SimTimeNs != 999 || m.WallNs != int64(3*time.Second) {
		t.Fatalf("manifest stamps: sim=%d wall=%d", m.SimTimeNs, m.WallNs)
	}
	if is, ok := m.Metric("tcp_rto_total", L("proto", "dctcp")); !ok || is.Value != 7 {
		t.Fatalf("Metric lookup: ok=%v %+v", ok, is)
	}

	var buf bytes.Buffer
	if err := m.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round-trip mismatch:\nenc: %+v\ndec: %+v", m, got)
	}
}

func TestManifestFile(t *testing.T) {
	m := NewManifest("incast", 1)
	m.SetConfig("flows", "200")
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := WriteManifestFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("file round-trip mismatch:\nwrote: %+v\nread: %+v", m, got)
	}
}

func TestDiffSummaries(t *testing.T) {
	mk := func(rto int64, cwndObs []int64) *Manifest {
		r := NewRegistry()
		r.Counter("tcp_rto_total").Add(rto)
		h := r.Histogram("tcp_cwnd_mss")
		for _, v := range cwndObs {
			h.Observe(v)
		}
		r.Gauge("dctcp_alpha").Set(0.5) // gauges are excluded from diffs
		m := NewManifest("x", 1)
		m.Finish(r, 0)
		return m
	}
	base := mk(10, []int64{1, 2})
	cur := mk(12, []int64{1, 2})
	diff := DiffSummaries(base, cur)
	if len(diff) != 1 || !strings.Contains(diff[0], "tcp_rto_total: 10 -> 12") {
		t.Fatalf("diff = %v", diff)
	}
	if d := DiffSummaries(base, mk(10, []int64{1, 2})); len(d) != 0 {
		t.Fatalf("identical manifests must not diff: %v", d)
	}
}

// The ISSUE's hard requirement: the hot path must not allocate, live or
// disabled.
func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram

	checks := []struct {
		name string
		fn   func()
	}{
		{"Counter.Add", func() { c.Add(1) }},
		{"Gauge.Set", func() { g.Set(1.5) }},
		{"Histogram.Observe", func() { h.Observe(12345) }},
		{"nil Counter.Add", func() { nilC.Add(1) }},
		{"nil Gauge.Set", func() { nilG.Set(1.5) }},
		{"nil Histogram.Observe", func() { nilH.Observe(12345) }},
	}
	for _, ck := range checks {
		if allocs := testing.AllocsPerRun(1000, ck.fn); allocs != 0 {
			t.Errorf("%s allocates %.1f per op, want 0", ck.name, allocs)
		}
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddNil(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramObserveNil(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
