// Package telemetry is the simulation-wide metrics substrate: a Registry
// of named, label-keyed instruments (Counter, Gauge, Histogram) that every
// hot layer of the stack — switch ports, the TCP engine, the DCTCP alpha
// estimator, the DCTCP+ state machine, and the workload drivers — reports
// into, plus pluggable sinks (JSON lines, Prometheus text format, a human
// table) and a per-run Manifest for reproducible, diffable experiments.
//
// Design constraints, in order:
//
//  1. Zero cost when off. Every instrument method is nil-safe: a nil
//     *Counter / *Gauge / *Histogram is a no-op, and a nil *Registry hands
//     out nil instruments. Layers therefore attach instruments
//     unconditionally and call them unconditionally; with telemetry
//     disabled the hot path pays one predictable nil check per event.
//
//  2. Allocation-free on the hot path. Counter.Add, Gauge.Set and
//     Histogram.Observe never allocate: histograms use fixed log2 buckets
//     (an array indexed by bit length), and all state is updated with
//     atomics — which also makes one Registry safely shareable across the
//     parallel experiment sweeps.
//
//  3. Stamped with simulation time. Runs record their virtual end time via
//     Registry.AdvanceSimTime; snapshots carry the high-water mark so a
//     dump is attributable to a point on the simulation clock, not the
//     wall clock.
//
// Instrument identity is (name, sorted label set). Asking the Registry for
// the same identity twice returns the same instrument, so concurrent flows
// of one experiment point naturally aggregate into shared counters while
// distinct points (labeled e.g. by protocol and flow count) stay separate.
package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"dctcpplus/internal/sim"
)

// Label is one key=value dimension of an instrument's identity.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind discriminates the instrument types.
type Kind int

const (
	// KindCounter is a monotonically increasing int64 count.
	KindCounter Kind = iota
	// KindGauge is a last-write-wins float64 level.
	KindGauge
	// KindHistogram is a fixed log2-bucket distribution of int64 samples.
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "?"
}

// Counter is a monotonically increasing event count. The zero value is
// ready to use; a nil Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Nil-safe; negative deltas are ignored
// (counters are monotone by contract).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a level that can move both ways (e.g. DCTCP's alpha estimate).
// The zero value is ready to use; a nil Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current level (0 for a nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of log2 buckets: bucket i holds samples whose
// bit length is i, i.e. bucket 0 holds v=0 and bucket i>=1 holds
// v in [2^(i-1), 2^i - 1]. 65 buckets cover the whole non-negative int64
// range, so Observe never needs a range check beyond clamping negatives.
const histBuckets = 65

// Histogram is a fixed log2-bucket distribution: allocation-free Observe,
// power-of-two resolution (sufficient for queue depths, cwnd sizes,
// slow_time magnitudes and FCTs, which all range over decades). The zero
// value is ready to use; a nil Histogram is a no-op.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only while count > 0
	max     atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// Observe records one sample. Negative samples clamp to zero. Nil-safe and
// allocation-free.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of observations (0 for a nil Histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Min returns the smallest observation (0 with no observations).
func (h *Histogram) Min() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest observation (0 with no observations).
func (h *Histogram) Max() int64 {
	if h == nil {
		return 0
	}
	return h.max.Load()
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Quantile returns an estimate of the q-quantile (0..1) from the log2
// buckets, interpolating linearly inside the selected bucket. The estimate
// is exact to within the bucket's power-of-two resolution.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.Count()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(n-1)
	var seen float64
	for i := 0; i < histBuckets; i++ {
		c := float64(h.buckets[i].Load())
		if c == 0 {
			continue
		}
		if seen+c > rank {
			lo, hi := bucketBounds(i)
			frac := (rank - seen + 1) / c
			if frac > 1 {
				frac = 1
			}
			return float64(lo) + frac*float64(hi-lo)
		}
		seen += c
	}
	return float64(h.Max())
}

// bucketBounds returns the [lo, hi] sample range of bucket i.
func bucketBounds(i int) (lo, hi int64) {
	if i == 0 {
		return 0, 0
	}
	lo = int64(1) << (i - 1)
	if i >= 63 {
		return lo, math.MaxInt64
	}
	return lo, int64(1)<<i - 1
}

// BucketCount is one occupied histogram bucket in a snapshot: Count
// samples at most UpperBound (bucket ranges are [lower, UpperBound] with
// power-of-two bounds).
type BucketCount struct {
	UpperBound int64 `json:"le"`
	Count      int64 `json:"count"`
}

// Registry is the instrument directory for one or more runs. A nil
// Registry is valid and hands out nil (no-op) instruments, so callers
// attach telemetry unconditionally. All methods are safe for concurrent
// use; instrument updates are atomic, so one Registry may be shared across
// parallel experiment sweeps.
type Registry struct {
	mu      sync.Mutex
	entries map[string]*entry

	simTimeNs atomic.Int64 // high-water mark of observed virtual time
}

type entry struct {
	name   string
	labels []Label
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: make(map[string]*entry)}
}

// instrumentKey builds the canonical identity: name plus sorted labels.
func instrumentKey(name string, labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return name, nil
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range sorted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String(), sorted
}

// lookup returns the entry for (name, labels), creating it with mk on
// first use, and panics on a kind clash — instrument names are a schema,
// and reusing one with a different type is always a bug.
func (r *Registry) lookup(name string, kind Kind, labels []Label) *entry {
	key, sorted := instrumentKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.entries[key]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: %s registered as %v, requested as %v", key, e.kind, kind))
		}
		return e
	}
	e := &entry{name: name, labels: sorted, kind: kind}
	switch kind {
	case KindCounter:
		e.counter = &Counter{}
	case KindGauge:
		e.gauge = &Gauge{}
	case KindHistogram:
		e.hist = newHistogram()
	}
	r.entries[key] = e
	return e
}

// Counter returns the counter registered under (name, labels), creating it
// on first use. A nil Registry returns a nil (no-op) Counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindCounter, labels).counter
}

// Gauge returns the gauge registered under (name, labels). A nil Registry
// returns a nil (no-op) Gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindGauge, labels).gauge
}

// Histogram returns the histogram registered under (name, labels). A nil
// Registry returns a nil (no-op) Histogram.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, KindHistogram, labels).hist
}

// AdvanceSimTime raises the registry's virtual-time high-water mark.
// Experiment runners call it with the scheduler's final time so snapshots
// are stamped with how much simulation the metrics cover. Nil-safe.
func (r *Registry) AdvanceSimTime(t sim.Time) {
	if r == nil {
		return
	}
	for {
		cur := r.simTimeNs.Load()
		if int64(t) <= cur || r.simTimeNs.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}

// SimTime returns the recorded virtual-time high-water mark.
func (r *Registry) SimTime() sim.Time {
	if r == nil {
		return 0
	}
	return sim.Time(r.simTimeNs.Load())
}

// Len returns the number of registered instruments.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// InstrumentSnapshot is the frozen state of one instrument. Counters use
// Value; gauges use GaugeValue; histograms use Count/Sum/Min/Max/Buckets.
type InstrumentSnapshot struct {
	Name   string  `json:"name"`
	Labels []Label `json:"labels,omitempty"`
	Kind   string  `json:"kind"`

	Value      int64   `json:"value,omitempty"`
	GaugeValue float64 `json:"gauge_value,omitempty"`

	Count   int64         `json:"count,omitempty"`
	Sum     int64         `json:"sum,omitempty"`
	Min     int64         `json:"min,omitempty"`
	Max     int64         `json:"max,omitempty"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// key reproduces the registry identity for ordering and diffing.
func (s InstrumentSnapshot) key() string {
	k, _ := instrumentKey(s.Name, s.Labels)
	return k
}

// Snapshot is the frozen state of a whole registry, stamped with the
// virtual-time high-water mark.
type Snapshot struct {
	//lint:allow simtime JSON schema field; the unit is pinned by the wire format
	SimTimeNs   int64                `json:"sim_time_ns"`
	Instruments []InstrumentSnapshot `json:"instruments"`
}

// Snapshot freezes the registry. Instruments appear in deterministic
// (sorted-key) order so two snapshots of equivalent runs diff cleanly.
// A nil Registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	entries := make([]*entry, 0, len(r.entries))
	keys := make([]string, 0, len(r.entries))
	for k, e := range r.entries {
		keys = append(keys, k)
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Sort(&byKey{keys: keys, entries: entries})

	snap := Snapshot{SimTimeNs: r.simTimeNs.Load()}
	for _, e := range entries {
		is := InstrumentSnapshot{
			Name:   e.name,
			Labels: e.labels,
			Kind:   e.kind.String(),
		}
		switch e.kind {
		case KindCounter:
			is.Value = e.counter.Value()
		case KindGauge:
			is.GaugeValue = e.gauge.Value()
		case KindHistogram:
			h := e.hist
			is.Count = h.Count()
			is.Sum = h.Sum()
			is.Min = h.Min()
			is.Max = h.Max()
			for i := 0; i < histBuckets; i++ {
				if c := h.buckets[i].Load(); c > 0 {
					_, hi := bucketBounds(i)
					is.Buckets = append(is.Buckets, BucketCount{UpperBound: hi, Count: c})
				}
			}
		}
		snap.Instruments = append(snap.Instruments, is)
	}
	return snap
}

// byKey sorts entries by their registry key, keeping the two slices in
// lockstep.
type byKey struct {
	keys    []string
	entries []*entry
}

func (s *byKey) Len() int           { return len(s.keys) }
func (s *byKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *byKey) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.entries[i], s.entries[j] = s.entries[j], s.entries[i]
}

// Find returns the snapshot of the instrument with the given name and
// labels, or false if absent. Convenience for tests and acceptance checks.
func (s Snapshot) Find(name string, labels ...Label) (InstrumentSnapshot, bool) {
	key, _ := instrumentKey(name, labels)
	for _, is := range s.Instruments {
		if is.key() == key {
			return is, true
		}
	}
	return InstrumentSnapshot{}, false
}

// Total sums Value (counters) and Count (histograms) across every
// instrument whose name matches, regardless of labels — the "how many CE
// marks happened in this run, anywhere" query.
func (s Snapshot) Total(name string) int64 {
	var t int64
	for _, is := range s.Instruments {
		if is.Name != name {
			continue
		}
		t += is.Value + is.Count
	}
	return t
}

// Attacher is implemented by components that can wire themselves onto a
// registry (congestion-control modules, workload drivers). Experiment
// runners discover it by type assertion so layers stay decoupled.
type Attacher interface {
	AttachTelemetry(reg *Registry, labels ...Label)
}

// Flusher is implemented by components holding open telemetry intervals
// (e.g. DCTCP+'s state-occupancy clock). Runners call it once at the end
// of a run with the final virtual time.
type Flusher interface {
	FlushTelemetry(now sim.Time)
}
