package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// This file implements the pluggable sinks: JSON lines (machine diffing,
// one instrument per line), Prometheus text exposition format (scraping /
// promtool), and an aligned human table (cmd/report).

// WriteJSONLines writes the snapshot as JSON lines: a header object
// carrying the virtual-time stamp, then one object per instrument. Every
// line is a self-contained JSON document, so the dump streams into jq,
// grep, or a line-oriented diff without parsing state.
func (s Snapshot) WriteJSONLines(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(struct {
		SimTimeNs   int64 `json:"sim_time_ns"`
		Instruments int   `json:"instruments"`
	}{s.SimTimeNs, len(s.Instruments)}); err != nil {
		return err
	}
	for _, is := range s.Instruments {
		if err := enc.Encode(is); err != nil {
			return err
		}
	}
	return nil
}

// promName sanitizes an instrument name into the Prometheus metric-name
// alphabet [a-zA-Z0-9_:].
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promLabels renders a label set (plus optional extra pairs) in exposition
// syntax, escaping values.
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		v := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(l.Value)
		fmt.Fprintf(&b, `%s="%s"`, promName(l.Key), v)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format (version 0.0.4): TYPE headers per metric family, cumulative
// le-labeled buckets for histograms, and a dctcpplus_sim_time_ns gauge
// carrying the virtual-time stamp.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# TYPE dctcpplus_sim_time_ns gauge\ndctcpplus_sim_time_ns %d\n", s.SimTimeNs)
	typed := make(map[string]bool)
	for _, is := range s.Instruments {
		name := promName(is.Name)
		if !typed[name] {
			typed[name] = true
			p("# TYPE %s %s\n", name, is.Kind)
		}
		switch is.Kind {
		case KindGauge.String():
			p("%s%s %g\n", name, promLabels(is.Labels), is.GaugeValue)
		case KindHistogram.String():
			var cum int64
			for _, b := range is.Buckets {
				cum += b.Count
				p("%s_bucket%s %d\n", name, promLabels(is.Labels, L("le", fmt.Sprintf("%d", b.UpperBound))), cum)
			}
			p("%s_bucket%s %d\n", name, promLabels(is.Labels, L("le", "+Inf")), is.Count)
			p("%s_sum%s %d\n", name, promLabels(is.Labels), is.Sum)
			p("%s_count%s %d\n", name, promLabels(is.Labels), is.Count)
		default: // counter
			p("%s%s %d\n", name, promLabels(is.Labels), is.Value)
		}
	}
	return err
}

// WriteTable writes the snapshot as an aligned human-readable table:
// counters and gauges as single values, histograms as
// count/mean/min/max. cmd/report prints this next to the figures.
func (s Snapshot) WriteTable(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("%-44s %-36s %-9s %s\n", "instrument", "labels", "kind", "value")
	for _, is := range s.Instruments {
		var labels string
		for i, l := range is.Labels {
			if i > 0 {
				labels += ","
			}
			labels += l.Key + "=" + l.Value
		}
		var val string
		switch is.Kind {
		case KindGauge.String():
			val = fmt.Sprintf("%g", is.GaugeValue)
		case KindHistogram.String():
			mean := 0.0
			if is.Count > 0 {
				mean = float64(is.Sum) / float64(is.Count)
			}
			val = fmt.Sprintf("count=%d mean=%.1f min=%d max=%d", is.Count, mean, is.Min, is.Max)
		default:
			val = fmt.Sprintf("%d", is.Value)
		}
		p("%-44s %-36s %-9s %s\n", is.Name, labels, is.Kind, val)
	}
	return err
}
