package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"time"
)

// Manifest is the machine-readable record of one experiment run: what was
// run (name, configuration, seed, code version), what it cost (wall time,
// simulated virtual time), and what it measured (the full instrument
// dump). Manifests are written next to experiment output so any result is
// reproducible from its own metadata and diffable against the manifests of
// earlier PRs (see BENCH_baseline.json at the repo root).
type Manifest struct {
	// Name identifies the run (e.g. "report", "incast").
	Name string `json:"name"`
	// CreatedAt is the wall-clock creation time, RFC 3339.
	CreatedAt string `json:"created_at"`
	// GitDescribe is `git describe --always --dirty` of the working tree,
	// or "unknown" outside a git checkout.
	GitDescribe string `json:"git_describe"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Seed is the experiment seed.
	Seed uint64 `json:"seed"`
	// Config holds the run's flat configuration (flag values, scale
	// settings) as deterministic string pairs.
	Config map[string]string `json:"config,omitempty"`

	// WallNs is the real time the run took, in nanoseconds.
	//lint:allow simtime wall-clock cost of the run, not a sim quantity
	WallNs int64 `json:"wall_ns"`
	// SimTimeNs is the virtual time covered, from the registry stamp.
	//lint:allow simtime JSON schema field; the unit is pinned by the wire format
	SimTimeNs int64 `json:"sim_time_ns"`

	// Metrics is the full instrument dump.
	Metrics []InstrumentSnapshot `json:"metrics,omitempty"`
}

// NewManifest starts a manifest for a named run, capturing the wall clock,
// git state and toolchain version.
func NewManifest(name string, seed uint64) *Manifest {
	return &Manifest{
		Name:        name,
		CreatedAt:   time.Now().UTC().Format(time.RFC3339),
		GitDescribe: GitDescribe(),
		GoVersion:   runtime.Version(),
		Seed:        seed,
		Config:      make(map[string]string),
	}
}

// SetConfig records one configuration pair.
func (m *Manifest) SetConfig(key string, value any) {
	if m.Config == nil {
		m.Config = make(map[string]string)
	}
	m.Config[key] = fmt.Sprint(value)
}

// Finish stamps the manifest with the run's wall time and the registry's
// snapshot (instrument dump plus virtual-time high-water mark). A nil
// registry leaves the metrics empty.
func (m *Manifest) Finish(reg *Registry, wall time.Duration) {
	m.WallNs = int64(wall)
	snap := reg.Snapshot()
	m.SimTimeNs = snap.SimTimeNs
	m.Metrics = snap.Instruments
}

// Metric returns the recorded instrument with the given name and labels,
// or false if the manifest does not contain it.
func (m *Manifest) Metric(name string, labels ...Label) (InstrumentSnapshot, bool) {
	return Snapshot{Instruments: m.Metrics}.Find(name, labels...)
}

// EncodeJSON writes the manifest as indented JSON. Map keys are emitted in
// sorted order by encoding/json, so equivalent manifests are byte-stable.
func (m *Manifest) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// DecodeManifest reads a manifest previously written by EncodeJSON.
func DecodeManifest(r io.Reader) (*Manifest, error) {
	var m Manifest
	dec := json.NewDecoder(r)
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("telemetry: decoding manifest: %w", err)
	}
	return &m, nil
}

// WriteManifestFile writes the manifest to path (atomically via a sibling
// temp file, so a crash never leaves a truncated baseline).
func WriteManifestFile(path string, m *Manifest) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := m.EncodeJSON(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// ReadManifestFile reads a manifest from path.
func ReadManifestFile(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeManifest(f)
}

// GitDescribe returns `git describe --always --dirty` for the current
// working tree, or "unknown" when git or the repository is unavailable.
func GitDescribe() string {
	out, err := exec.Command("git", "describe", "--always", "--dirty").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// DiffSummaries compares two manifests' metrics by instrument identity and
// returns one line per changed instrument — the perf-trajectory diff
// future PRs run against BENCH_baseline.json. Only counters and histogram
// counts are compared (gauges are last-write noise).
func DiffSummaries(base, cur *Manifest) []string {
	type point struct{ base, cur int64 }
	acc := make(map[string]*point)
	keys := make([]string, 0)
	note := func(list []InstrumentSnapshot, set func(*point, int64)) {
		for _, is := range list {
			if is.Kind == KindGauge.String() {
				continue
			}
			k := is.key()
			p, ok := acc[k]
			if !ok {
				p = &point{}
				acc[k] = p
				keys = append(keys, k)
			}
			set(p, is.Value+is.Count)
		}
	}
	note(base.Metrics, func(p *point, v int64) { p.base = v })
	note(cur.Metrics, func(p *point, v int64) { p.cur = v })
	sort.Strings(keys)
	var out []string
	for _, k := range keys {
		p := acc[k]
		if p.base != p.cur {
			out = append(out, fmt.Sprintf("%s: %d -> %d", k, p.base, p.cur))
		}
	}
	return out
}
