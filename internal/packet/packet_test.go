package packet

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFlagsHasAndString(t *testing.T) {
	f := FlagACK | FlagECE
	if !f.Has(FlagACK) || !f.Has(FlagECE) || f.Has(FlagSYN) {
		t.Error("Has wrong")
	}
	if !f.Has(FlagACK | FlagECE) {
		t.Error("Has with multi-bit mask wrong")
	}
	s := f.String()
	if !strings.Contains(s, "ACK") || !strings.Contains(s, "ECE") {
		t.Errorf("String = %q", s)
	}
	if Flags(0).String() != "-" {
		t.Errorf("empty flags = %q", Flags(0).String())
	}
	all := FlagSYN | FlagACK | FlagFIN | FlagECE | FlagCWR | FlagREQ
	s = all.String()
	for _, name := range []string{"SYN", "ACK", "FIN", "ECE", "CWR", "REQ"} {
		if !strings.Contains(s, name) {
			t.Errorf("all-flags string %q missing %s", s, name)
		}
	}
}

func TestECNString(t *testing.T) {
	if NotECT.String() != "NotECT" || ECT.String() != "ECT" || CE.String() != "CE" {
		t.Error("ECN strings wrong")
	}
	if ECN(9).String() != "ECN(9)" {
		t.Error("unknown ECN string wrong")
	}
}

func TestSizeConstants(t *testing.T) {
	if MSS != 1460 || MTU != 1500 || HeaderBytes != 40 {
		t.Errorf("size constants: MSS=%d MTU=%d HDR=%d", MSS, MTU, HeaderBytes)
	}
	p := &Packet{Payload: MSS}
	if p.Size() != MTU {
		t.Errorf("full segment Size = %d, want %d", p.Size(), MTU)
	}
	ack := &Packet{Flags: FlagACK}
	if ack.Size() != HeaderBytes {
		t.Errorf("ACK Size = %d, want %d", ack.Size(), HeaderBytes)
	}
}

func TestPacketClassification(t *testing.T) {
	data := &Packet{Seq: 1000, Payload: MSS}
	if !data.IsData() || data.IsAck() {
		t.Error("data packet misclassified")
	}
	if data.End() != 1000+MSS {
		t.Errorf("End = %d", data.End())
	}
	ack := &Packet{Flags: FlagACK, AckNo: 5000}
	if ack.IsData() || !ack.IsAck() {
		t.Error("ACK misclassified")
	}
	// A piggybacked data+ACK is data, not a pure ack.
	both := &Packet{Flags: FlagACK, Payload: 10}
	if both.IsAck() || !both.IsData() {
		t.Error("data+ACK misclassified")
	}
}

func TestHopCounting(t *testing.T) {
	p := &Packet{}
	if p.Hops() != 0 {
		t.Error("fresh packet has hops")
	}
	for i := int64(1); i <= 5; i++ {
		if got := p.Hop(); got != i {
			t.Errorf("Hop() = %d, want %d", got, i)
		}
	}
	if p.Hops() != 5 {
		t.Error("Hops() mismatch")
	}
}

func TestEndProperty(t *testing.T) {
	f := func(seq int32, payload uint16) bool {
		p := &Packet{Seq: int64(seq), Payload: int(payload)}
		return p.End() == int64(seq)+int64(payload) && p.Size() == int(payload)+HeaderBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPacketString(t *testing.T) {
	p := &Packet{Src: 1, Dst: 2, Flow: 3, Seq: 100, Payload: MSS, Flags: FlagACK, ECN: CE}
	s := p.String()
	for _, want := range []string{"1->2", "flow=3", "seq=100", "ACK", "CE"} {
		if !strings.Contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
}
