package packet

// Pool is an optional freelist of Packet objects for steady-state
// simulations. The network layer frees a packet back to the pool at the
// points where it leaves the simulation — delivered to a host's transport
// handler, tail-dropped at a port, or lost on a link — and transports mint
// new segments from the pool, so a long run recirculates a small working
// set instead of feeding the garbage collector per packet.
//
// Pooling is opt-in (Topology.EnablePacketPool) because it sharpens the
// ownership contract: once a packet is handed to the network, the sender
// must not touch it again, and a delivery handler must copy out any fields
// it needs before returning. All shipped transports and taps obey this;
// tests that deliberately retain packets simply leave the pool disabled.
//
// A nil *Pool is valid: Get mints fresh packets and Put discards, so call
// sites need no branches.
type Pool struct {
	free     *Packet
	minted   int64
	recycled int64
}

// Get returns a zeroed packet, reusing a freed one when available. The
// caller owns the result and must release it exactly once (Put, or an
// ownership-transferring hand-off such as Host.Send).
//
// state: mint
//
//hot:path
func (p *Pool) Get() *Packet {
	if p == nil || p.free == nil {
		if p != nil {
			p.minted++
		}
		//lint:allow hotalloc pool miss mints a fresh packet; steady state reuses the freed working set (and a nil pool means pooling is off by choice)
		return &Packet{}
	}
	pkt := p.free
	p.free = pkt.nextFree
	pkt.nextFree = nil
	poolPoisonClear(pkt)
	p.recycled++
	return pkt
}

// Put recycles a packet the caller no longer owns. The packet is zeroed so
// stale header fields, flags, and hop counts cannot leak into its next use.
//
// state: kill pkt
func (p *Pool) Put(pkt *Packet) {
	if p == nil || pkt == nil {
		return
	}
	poolPoisonCheck(pkt)
	flow := pkt.Flow
	*pkt = Packet{nextFree: p.free}
	poolPoisonArm(pkt, flow)
	p.free = pkt
}

// Minted returns how many packets were freshly allocated on pool miss.
func (p *Pool) Minted() int64 {
	if p == nil {
		return 0
	}
	return p.minted
}

// Recycled returns how many Gets were served from the freelist.
func (p *Pool) Recycled() int64 {
	if p == nil {
		return 0
	}
	return p.recycled
}
