//go:build !checkdebug

package packet

// Normal builds compile the pool-poison backstop away; see poison_debug.go
// (checkdebug tag) for the debug-build behaviour.

func poolPoisonCheck(*Packet) {}

func poolPoisonArm(*Packet, FlowID) {}

func poolPoisonClear(*Packet) {}
