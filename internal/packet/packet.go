// Package packet defines the wire-level unit exchanged by simulated hosts:
// a TCP/IP segment model with the fields the DCTCP+ experiments need —
// sequence/acknowledgement numbers, the ECN codepoints manipulated by
// switches (ECT/CE), and the ECN-Echo / CWR TCP flags used by the
// congestion-control feedback loop.
package packet

import (
	"fmt"

	"dctcpplus/internal/sim"
)

// NodeID identifies a host or switch in the simulated network.
type NodeID int32

// FlowID identifies one transport connection (one direction of data).
type FlowID int32

// Flags is a bit set of TCP header flags.
type Flags uint16

// TCP flag bits. REQ is not a real TCP flag: it marks application-level
// request packets carried outside a data connection (the aggregator's
// "send me 1MB/N bytes" message), which lets the incast workload model the
// request leg as real network traffic sharing links with ACKs.
const (
	FlagSYN Flags = 1 << iota
	FlagACK
	FlagFIN
	FlagECE // ECN-Echo: receiver -> sender congestion signal
	FlagCWR // Congestion Window Reduced: sender -> receiver
	FlagREQ // application request marker (simulation-level)
)

// Has reports whether all bits in mask are set.
func (f Flags) Has(mask Flags) bool { return f&mask == mask }

// String renders the flags as a compact mnemonic list.
func (f Flags) String() string {
	s := ""
	add := func(cond bool, name string) {
		if cond {
			if s != "" {
				s += "|"
			}
			s += name
		}
	}
	add(f.Has(FlagSYN), "SYN")
	add(f.Has(FlagACK), "ACK")
	add(f.Has(FlagFIN), "FIN")
	add(f.Has(FlagECE), "ECE")
	add(f.Has(FlagCWR), "CWR")
	add(f.Has(FlagREQ), "REQ")
	if s == "" {
		return "-"
	}
	return s
}

// ECN is the two-bit IP ECN codepoint.
type ECN uint8

// ECN codepoints (RFC 3168). The simulator only distinguishes NotECT,
// ECT (capable) and CE (congestion experienced).
const (
	NotECT ECN = iota // transport not ECN-capable; switch drops instead of marking
	ECT               // ECN-capable transport
	CE                // congestion experienced (set by switches above threshold K)
)

func (e ECN) String() string {
	switch e {
	case NotECT:
		return "NotECT"
	case ECT:
		return "ECT"
	case CE:
		return "CE"
	}
	return fmt.Sprintf("ECN(%d)", uint8(e))
}

// Header/payload size constants. We model standard Ethernet framing:
// 1500-byte MTU, 40 bytes of TCP/IP headers, hence a 1460-byte MSS.
// The paper's arithmetic (§IV-C) treats "1 MSS" as 1.5KB on the wire,
// which is exactly header+MSS here.
const (
	HeaderBytes = 40   // TCP/IP header overhead per segment
	MTU         = 1500 // max on-wire IP packet size
	MSS         = MTU - HeaderBytes
)

// Packet is one simulated segment. Packets are passed by pointer and owned
// by exactly one network element at a time; they are never shared, so no
// locking is required in the single-threaded event loop.
//
// The ownership contract is machine-checked: simlint's poollife analyzer
// tracks every pooled packet from its mint (Pool.Get, Host.AllocPacket)
// to exactly one release (Pool.Put, or a //state: xfer hand-off into the
// network) per path.
//
// state: pooled owned -> freed
type Packet struct {
	Src, Dst NodeID
	Flow     FlowID

	Seq   int64 // first payload byte carried (senders), or 0
	AckNo int64 // cumulative ACK (when FlagACK set)
	// Payload is the payload bytes carried (0 for pure ACKs/requests).
	//inv: Payload >= 0
	Payload int
	Flags   Flags
	ECN     ECN

	// SendTime is stamped by the transport when the segment is first handed
	// to the network, for RTT sampling and tracing.
	SendTime sim.Time

	// Retransmit marks segments re-sent after loss; RTT samples from these
	// are discarded (Karn's algorithm).
	Retransmit bool

	// ReqBytes carries the requested response size on REQ packets.
	ReqBytes int64

	// hops counts forwarding steps, to catch routing loops in tests.
	// int64 so a (hypothetical) unbounded forwarding loop cannot wrap the
	// counter before the netsim maxHops guard catches it.
	hops int64

	// nextFree links recycled packets inside a Pool.
	nextFree *Packet
}

// Size returns the on-wire size in bytes: payload plus header overhead.
func (p *Packet) Size() int { return p.Payload + HeaderBytes }

// End returns the sequence number one past the last payload byte.
func (p *Packet) End() int64 { return p.Seq + int64(p.Payload) }

// IsData reports whether the packet carries payload bytes.
func (p *Packet) IsData() bool { return p.Payload > 0 }

// IsAck reports whether the packet is a pure acknowledgement.
func (p *Packet) IsAck() bool { return p.Flags.Has(FlagACK) && p.Payload == 0 }

// Hop increments and returns the forwarding hop count. Network elements
// call this on every forward; anything beyond a sane diameter indicates a
// routing loop and is treated as a model bug by the switch.
func (p *Packet) Hop() int64 {
	p.hops++
	return p.hops
}

// Hops returns the number of forwarding steps so far.
func (p *Packet) Hops() int64 { return p.hops }

// String formats the packet for traces and test failures.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt{%d->%d flow=%d seq=%d ack=%d len=%d %v %v}",
		p.Src, p.Dst, p.Flow, p.Seq, p.AckNo, p.Payload, p.Flags, p.ECN)
}
