//go:build checkdebug

package packet

import (
	"strings"
	"testing"

	"dctcpplus/internal/check"
)

// TestPoisonArmAndClear pins the debug freelist poison: a recycled packet
// carries the sentinel sequence number and the freeing flow while parked,
// and Get restores the documented zeroed state before reuse.
func TestPoisonArmAndClear(t *testing.T) {
	if !check.Debug {
		t.Fatal("checkdebug build must set check.Debug")
	}
	p := &Pool{}
	pkt := p.Get()
	pkt.Flow = 42
	pkt.Seq = 1000
	p.Put(pkt)
	if pkt.Seq != poisonSeq {
		t.Errorf("parked packet Seq = %d, want poison sentinel %d", pkt.Seq, poisonSeq)
	}
	if pkt.Flow != 42 {
		t.Errorf("parked packet Flow = %d, want the freeing flow 42 preserved for diagnostics", pkt.Flow)
	}
	got := p.Get()
	if got != pkt {
		t.Fatal("pool did not recycle the freed packet")
	}
	if got.Seq != 0 || got.Flow != 0 {
		t.Errorf("recycled packet not un-poisoned: Seq=%d Flow=%d, want zeroed", got.Seq, got.Flow)
	}
}

// TestPoisonDoubleFreePanics pins the runtime backstop that mirrors the
// static poollife double-free rule: a second Put of the same packet must
// panic naming the offending flow.
func TestPoisonDoubleFreePanics(t *testing.T) {
	p := &Pool{}
	pkt := p.Get()
	pkt.Flow = 7
	p.Put(pkt)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("double Put did not panic under checkdebug")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", r)
		}
		if !strings.Contains(msg, "double free") || !strings.Contains(msg, "flow 7") {
			t.Errorf("double-free panic %q does not name the offense and the flow", msg)
		}
	}()
	p.Put(pkt)
}
