package packet

import "testing"

func TestSeqCompareNoWrap(t *testing.T) {
	if !SeqLT(1, 2) || SeqLT(2, 1) || SeqLT(7, 7) {
		t.Error("SeqLT wrong on plain values")
	}
	if !SeqLEQ(7, 7) || !SeqLEQ(1, 2) || SeqLEQ(2, 1) {
		t.Error("SeqLEQ wrong on plain values")
	}
	if !SeqGT(2, 1) || SeqGT(1, 2) || SeqGT(7, 7) {
		t.Error("SeqGT wrong on plain values")
	}
	if !SeqGEQ(7, 7) || !SeqGEQ(2, 1) || SeqGEQ(1, 2) {
		t.Error("SeqGEQ wrong on plain values")
	}
}

func TestSeqCompareAcrossWrap(t *testing.T) {
	// A naive uint32 compare inverts near the wrap point: 0xFFFFFFF0 < 0x10
	// is false arithmetically but true in sequence space.
	var a, b Seq32 = 0xFFFFFFF0, 0x10
	if !SeqLT(a, b) {
		t.Errorf("SeqLT(%#x, %#x) = false, want true across the wrap", a, b)
	}
	if SeqLT(b, a) {
		t.Errorf("SeqLT(%#x, %#x) = true, want false across the wrap", b, a)
	}
	if !SeqGEQ(b, a) || SeqGEQ(a, b) {
		t.Error("SeqGEQ disagrees with SeqLT across the wrap")
	}
}

func TestSeqDelta(t *testing.T) {
	cases := []struct {
		a, b Seq32
		want int32
	}{
		{10, 3, 7},
		{3, 10, -7},
		{0x10, 0xFFFFFFF0, 0x20}, // forward across the wrap
		{0xFFFFFFF0, 0x10, -0x20},
		{5, 5, 0},
	}
	for _, c := range cases {
		if got := SeqDelta(c.a, c.b); got != c.want {
			t.Errorf("SeqDelta(%#x, %#x) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSeqAddRoundTrips(t *testing.T) {
	starts := []Seq32{0, 1, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF}
	deltas := []int32{0, 1, -1, 1000, -1000, 0x7FFFFFF0}
	for _, s := range starts {
		for _, d := range deltas {
			if got := SeqDelta(SeqAdd(s, d), s); got != d {
				t.Errorf("SeqDelta(SeqAdd(%#x, %d), %#x) = %d, want %d", s, d, s, got, d)
			}
		}
	}
}
