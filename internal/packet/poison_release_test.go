//go:build !checkdebug

package packet

import (
	"testing"

	"dctcpplus/internal/check"
)

// TestPoisonCompiledOut pins the release-build contract: no debug flag,
// and a recycled packet comes back exactly as zeroed as a fresh one — the
// poison pattern must leave no trace when the tag is off.
func TestPoisonCompiledOut(t *testing.T) {
	if check.Debug {
		t.Fatal("check.Debug must be false without the checkdebug tag")
	}
	p := &Pool{}
	pkt := p.Get()
	pkt.Flow = 42
	pkt.Seq = 1000
	p.Put(pkt)
	got := p.Get()
	if got != pkt {
		t.Fatal("pool did not recycle the freed packet")
	}
	if *got != (Packet{}) {
		t.Errorf("recycled packet not zeroed: %+v", *got)
	}
}
