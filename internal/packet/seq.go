package packet

// This file provides modular ("serial number") arithmetic for 32-bit
// wrapping sequence spaces, in the style of RFC 1982 and TCP's SEQ_LT
// macros. The simulator's own transport runs in a flat int64 byte space
// that never wraps, but trace parsers and wire-format tools deal in the
// 32-bit numbers real TCP carries — and plain <, >, - on those silently
// give the wrong answer near the wrap point. The overflow analyzer in
// internal/lint steers all narrow sequence arithmetic here.

// Seq32 is a wrapping 32-bit sequence number.
type Seq32 uint32

// SeqLT reports a < b in modular arithmetic: true when a precedes b and
// the distance forward from a to b is less than half the space.
func SeqLT(a, b Seq32) bool { return int32(a-b) < 0 }

// SeqLEQ reports a <= b in modular arithmetic.
func SeqLEQ(a, b Seq32) bool { return a == b || SeqLT(a, b) }

// SeqGT reports a > b in modular arithmetic.
func SeqGT(a, b Seq32) bool { return SeqLT(b, a) }

// SeqGEQ reports a >= b in modular arithmetic.
func SeqGEQ(a, b Seq32) bool { return !SeqLT(a, b) }

// SeqDelta returns the signed modular distance a - b: positive when a is
// ahead of b, negative when behind, correct across the wrap point for
// distances under half the space.
func SeqDelta(a, b Seq32) int32 { return int32(a - b) }

// SeqAdd advances a by n (which may be negative), wrapping modulo 2^32.
func SeqAdd(a Seq32, n int32) Seq32 { return a + Seq32(n) }
