//go:build checkdebug

package packet

import "dctcpplus/internal/check"

// Debug-build poison for the pool freelist, mirroring the static poollife
// rules at runtime (see internal/check.Debug): Put scrambles the recycled
// packet's sequence number to a sentinel and preserves its flow ID, so a
// use-after-free read is unmistakable in traces and a double free panics
// naming the offending flow. Get clears the poison so callers still see
// the documented zeroed packet.

// poisonSeq is the freelist sentinel. It is negative and far outside any
// real sequence space (senders count up from 0), so no live packet can
// collide with it.
const poisonSeq int64 = -0x6B6B6B6B6B6B

// poolPoisonCheck panics if pkt is already on the freelist: its Seq still
// carries the poison sentinel, and its Flow the flow that freed it first.
func poolPoisonCheck(pkt *Packet) {
	if pkt.Seq == poisonSeq {
		check.Failf("packet double free: flow %d freed the same packet twice (seq carries freelist poison %d)",
			int32(pkt.Flow), poisonSeq)
	}
}

// poolPoisonArm marks a just-zeroed freelist packet: sentinel sequence,
// original flow preserved for the double-free diagnostic.
func poolPoisonArm(pkt *Packet, flow FlowID) {
	pkt.Seq = poisonSeq
	pkt.Flow = flow
}

// poolPoisonClear restores the zeroed state Get promises.
func poolPoisonClear(pkt *Packet) {
	pkt.Seq = 0
	pkt.Flow = 0
}
