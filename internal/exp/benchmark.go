package exp

import (
	"fmt"
	"io"

	"dctcpplus/internal/sim"
	"dctcpplus/internal/stats"
	"dctcpplus/internal/workload"
)

// BenchmarkOptions parameterizes the §VI-D production-benchmark experiment
// (Fig. 13): query traffic plus heavy-tailed background flows, both at
// RTOmin = 10ms in the paper.
type BenchmarkOptions struct {
	Testbed  Testbed
	Protocol Protocol
	RTOMin   sim.Duration
	Traffic  workload.BenchmarkConfig // Factory/Seed filled in by the runner

	MaxSimTime sim.Duration
}

// DefaultBenchmarkOptions returns a scaled-down §VI-D run; cmd/benchmark
// exposes the full 7,000+7,000 configuration.
func DefaultBenchmarkOptions(p Protocol) BenchmarkOptions {
	return BenchmarkOptions{
		Testbed:    DefaultTestbed(),
		Protocol:   p,
		RTOMin:     10 * sim.Millisecond,
		Traffic:    workload.DefaultBenchmarkConfig(),
		MaxSimTime: 60 * 60 * sim.Second,
	}
}

// BenchmarkResult holds the Fig. 13 rows: query and background FCT
// statistics (mean / 95th / 99th percentile).
type BenchmarkResult struct {
	Protocol Protocol

	Queries         int
	QueryFCTms      stats.Summary
	Short           int
	ShortFCTms      stats.Summary
	Background      int
	BackgroundFCTms stats.Summary

	Timeouts int64 // total RTOs across all flows
}

// RunBenchmark executes the benchmark-traffic experiment.
func RunBenchmark(o BenchmarkOptions) BenchmarkResult {
	if o.MaxSimTime <= 0 {
		o.MaxSimTime = 60 * 60 * sim.Second
	}
	sched, tt := o.Testbed.build()
	cfg := o.Traffic
	cfg.Seed = o.Testbed.Seed
	cfg.Factory = o.Protocol.Factory(o.RTOMin, o.Testbed.Seed)

	b := workload.NewBenchmark(sched, tt, cfg)
	b.OnFinished = sched.Halt
	b.Start()
	sched.RunUntil(sim.Time(o.MaxSimTime))

	res := BenchmarkResult{Protocol: o.Protocol}
	var qf []float64
	for _, q := range b.QueryResults() {
		qf = append(qf, q.FCT.Millis())
	}
	res.Queries = len(qf)
	res.QueryFCTms = stats.Summarize(qf)
	var sf []float64
	for _, f := range b.ShortResults() {
		sf = append(sf, f.FCT.Millis())
	}
	res.Short = len(sf)
	res.ShortFCTms = stats.Summarize(sf)
	var bf []float64
	for _, f := range b.BackgroundResults() {
		bf = append(bf, f.FCT.Millis())
	}
	res.Background = len(bf)
	res.BackgroundFCTms = stats.Summarize(bf)
	res.Timeouts = b.TotalTimeouts()
	return res
}

// PrintBenchmarkRows writes Fig. 13's two panels as rows, plus the
// short-message class when it was generated.
func PrintBenchmarkRows(w io.Writer, results []BenchmarkResult) {
	withShorts := false
	for _, r := range results {
		if r.Short > 0 {
			withShorts = true
		}
	}
	fmt.Fprintf(w, "%-14s %8s %10s %10s %10s %8s %10s %10s %10s",
		"protocol", "queries", "q.mean", "q.p95", "q.p99",
		"bg", "bg.mean", "bg.p95", "bg.p99")
	if withShorts {
		fmt.Fprintf(w, " %7s %10s %10s", "short", "s.mean", "s.p99")
	}
	fmt.Fprintln(w)
	for _, r := range results {
		fmt.Fprintf(w, "%-14s %8d %8.2fms %8.2fms %8.2fms %8d %8.2fms %8.2fms %8.2fms",
			r.Protocol, r.Queries,
			r.QueryFCTms.Mean, r.QueryFCTms.P95, r.QueryFCTms.P99,
			r.Background,
			r.BackgroundFCTms.Mean, r.BackgroundFCTms.P95, r.BackgroundFCTms.P99)
		if withShorts {
			fmt.Fprintf(w, " %7d %8.2fms %8.2fms", r.Short, r.ShortFCTms.Mean, r.ShortFCTms.P99)
		}
		fmt.Fprintln(w)
	}
}
