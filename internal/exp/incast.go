package exp

import (
	"fmt"
	"io"

	"dctcpplus/internal/fault"
	"dctcpplus/internal/netsim"
	"dctcpplus/internal/oracle"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/stats"
	"dctcpplus/internal/telemetry"
	"dctcpplus/internal/trace"
	"dctcpplus/internal/workload"
)

// Testbed describes the simulated cluster shared by every experiment: the
// paper's 2-tier tree of 9 workers + 1 aggregator over 1Gbps GbE switches
// with 128KB per-port buffers and K=32KB.
type Testbed struct {
	Leaves       int
	HostsPerLeaf int
	Topo         netsim.TopologyConfig

	// ServiceJitter staggers worker responses (see workload.IncastConfig);
	// the default models the multithreaded benchmark's scheduling spread
	// on dual-core servers.
	ServiceJitter sim.Duration

	// Seed drives all workload-level randomness.
	Seed uint64
}

// DefaultTestbed returns the paper's cluster parameters. ServiceJitter
// models the response stagger of the multithreaded benchmark: with N up to
// 200 flows over nine dual-core servers, each machine time-slices ~22
// sender threads, spreading response starts over several milliseconds.
func DefaultTestbed() Testbed {
	return Testbed{
		Leaves:        3,
		HostsPerLeaf:  3,
		Topo:          netsim.DefaultTopologyConfig(),
		ServiceJitter: 4 * sim.Millisecond,
		Seed:          1,
	}
}

// HULLTestbed returns the cluster with HULL phantom-queue marking at every
// switch port instead of the DCTCP threshold — the §VII composition with
// the HULL architecture. Pair it with the DCTCP or DCTCP+ protocols: the
// phantom queue marks before any real queue builds, trading ~5% of
// bandwidth for near-empty buffers.
func HULLTestbed() Testbed {
	tb := DefaultTestbed()
	tb.Topo.SwitchPort = netsim.HULLPortConfig()
	return tb
}

// build constructs a fresh scheduler and topology. Experiment runs always
// recycle packets: every consumer in the driver stack (workload handlers,
// taps, probes) copies fields out synchronously, and long sweeps would
// otherwise allocate per packet.
func (tb Testbed) build() (*sim.Scheduler, *netsim.TwoTier) {
	sched := sim.NewScheduler()
	tt := netsim.NewTwoTier(sched, tb.Leaves, tb.HostsPerLeaf, tb.Topo)
	tt.EnablePacketPool()
	return sched, tt
}

// IncastOptions parameterizes one incast run (one point of Figs. 1/6/7/8,
// or the instrumented runs behind Fig. 2, Table I, Fig. 9 and Fig. 14).
type IncastOptions struct {
	Testbed  Testbed
	Protocol Protocol

	// Flows is N. TotalBytes is split evenly across flows per round (the
	// paper requests 1MB/N from each of N workers); if BytesPerFlow is
	// nonzero it overrides the split (Fig. 14 uses 4MB per flow).
	Flows        int
	TotalBytes   int64
	BytesPerFlow int64

	Rounds int
	// WarmupRounds are excluded from the reported statistics: the paper
	// averages 1000 rounds, where the initial convergence rounds (§VII,
	// Fig. 14) are statistically invisible; our shorter runs exclude them
	// explicitly.
	WarmupRounds int

	RTOMin sim.Duration

	// CollectCwnd attaches per-ACK cwnd probes (Fig. 2 / Table I).
	CollectCwnd bool
	// QueueSampleEvery samples the bottleneck queue at this period
	// (100us in the paper); zero disables sampling.
	QueueSampleEvery sim.Duration

	// MaxSimTime bounds the run (safety against pathological stalls).
	MaxSimTime sim.Duration

	// Factory, when non-nil, overrides Protocol's default endpoint
	// construction (used by the ablation benches to inject custom DCTCP+
	// parameters; see DCTCPPlusFactory).
	Factory workload.FlowFactory

	// KeepRounds retains the per-round series (including warmup) in the
	// result, for convergence analysis (§VII / Fig. 14).
	KeepRounds bool

	// Telemetry, when non-nil, receives instrument updates from every hot
	// layer of the run (ports, senders, congestion control, workload) under
	// the {proto, flows} label set. The registry is safe to share across a
	// sweep — including SweepIncastParallel — because instruments are
	// atomic.
	Telemetry *telemetry.Registry

	// Faults, when non-nil, generates a deterministic fault plan from this
	// seeded configuration and injects it into the run (see internal/fault).
	// The run stays a pure function of its options: the same GenConfig
	// yields the same plan, applied at the same virtual times. FaultStats
	// on the result reports what fired.
	Faults *fault.GenConfig

	// Oracle attaches the internal/oracle conformance checker to every
	// connection and the whole topology: protocol violations (ACK
	// monotonicity, retransmission legality, RTO backoff, ECE echo, alpha
	// cadence, the DCTCP+ machine) and network violations (queue bounds,
	// conservation) land on the result's OracleViolations. The checker is
	// a pure observer chained onto existing hooks; a run's traffic is
	// byte-identical with it on or off, but the run drains an extra 100ms
	// of virtual time before the conservation audit.
	Oracle bool

	// FlowIDs relabels the workload's flow ids (see
	// workload.IncastConfig.FlowIDs) — the knob behind the metamorphic
	// permutation harness.
	FlowIDs []packet.FlowID

	// MirrorWorkers reverses the flow-to-worker placement order. The
	// two-tier tree is leaf-symmetric, so on a clean run mirroring is a
	// pure relabeling of identical subtrees and every result must be
	// byte-identical — the topology-mirror metamorphic check.
	MirrorWorkers bool
}

// RoundPoint is one round of an incast run, retained when KeepRounds is
// set.
type RoundPoint struct {
	Start sim.Time
	// FCTms is a reporting-boundary value: milliseconds as float64, the
	// same unit-less shape internal/stats summarizes and figures plot.
	//lint:allow simtime plot-axis milliseconds; the unit is spelled in the name
	FCTms        float64
	GoodputMbps  float64
	FlowTimeouts int64 // flows that hit at least one RTO this round
}

// DefaultIncastOptions returns the basic-incast settings (§VI-B): 1MB
// split over N flows, 200ms RTOmin.
func DefaultIncastOptions(p Protocol, flows int) IncastOptions {
	return IncastOptions{
		Testbed:      DefaultTestbed(),
		Protocol:     p,
		Flows:        flows,
		TotalBytes:   1 << 20,
		Rounds:       50,
		WarmupRounds: 10,
		RTOMin:       200 * sim.Millisecond,
		MaxSimTime:   30 * 60 * sim.Second,
	}
}

func (o IncastOptions) perFlowBytes() int64 {
	if o.BytesPerFlow > 0 {
		return o.BytesPerFlow
	}
	per := o.TotalBytes / int64(o.Flows)
	if per < 1 {
		per = 1
	}
	return per
}

// IncastResult is one completed incast experiment point.
type IncastResult struct {
	Protocol Protocol
	Flows    int
	Rounds   int // measured rounds (after warmup)

	// GoodputMbps and FCTms summarize the measured rounds — the y-axes of
	// Figs. 1/6/7/8/11/12.
	GoodputMbps stats.Summary
	FCTms       stats.Summary

	// Table I columns (fractions over flowxround "transmissions"):
	MinCwndECEFrac   float64 // P[flow sent with cwnd at floor while ECE set]
	TimeoutRoundFrac float64 // P[flow hit >=1 RTO in a round]
	Timeouts         int64   // total RTO count (measured rounds included only via flags; this is whole-run)
	FLossTO          int64
	LAckTO           int64

	// CwndHist is the merged per-ACK cwnd histogram in MSS (Fig. 2);
	// nil unless CollectCwnd.
	CwndHist *stats.Hist
	// ECEAtMinFrac is the fraction of ACK events at the window floor with
	// ECE set; only meaningful with CollectCwnd.
	ECEAtMinFrac float64

	// Queue observations (Figs. 9/14); nil unless QueueSampleEvery > 0.
	QueueSamples []trace.QueueSample

	// BottleneckDrops counts tail drops at the root->aggregator port.
	BottleneckDrops int64

	// Series holds every round (warmup included) when KeepRounds was set.
	Series []RoundPoint

	// SimTime is the virtual time the whole run consumed (all rounds,
	// warmup included) — the span fault plans must overlap to matter.
	SimTime sim.Duration

	// FaultStats totals the injected faults; nil unless Faults was set.
	FaultStats *fault.Stats

	// OracleViolations holds the conformance failures (bounded; see
	// OracleTotal for the unbounded count). Nil unless Oracle was set;
	// empty on a conforming run.
	OracleViolations []oracle.Violation
	// OracleTotal is the total violation count, including any beyond the
	// retained list.
	OracleTotal int64
}

// ConvergedAtRound returns the index of the first round after which no
// round saw a flow timeout, or -1 if the run never converged (or the
// series was not kept). This quantifies the paper's §VII observation that
// DCTCP+ "needs several cycles of RTTs to enter the enhancement
// mechanism" — the first rounds may overflow, then the system stabilizes.
func (r IncastResult) ConvergedAtRound() int {
	if len(r.Series) == 0 {
		return -1
	}
	last := -1
	for i, p := range r.Series {
		if p.FlowTimeouts > 0 {
			last = i
		}
	}
	if last == len(r.Series)-1 {
		return -1 // still timing out at the end
	}
	return last + 1
}

// QueueCDF builds the queue-length CDF (Fig. 9) from the samples.
func (r IncastResult) QueueCDF() *stats.CDF {
	vals := make([]float64, len(r.QueueSamples))
	for i, s := range r.QueueSamples {
		vals[i] = float64(s.Bytes)
	}
	return stats.NewCDF(vals)
}

// RunIncast executes one incast experiment point.
func RunIncast(o IncastOptions) IncastResult {
	if o.Rounds <= o.WarmupRounds {
		panic("exp: Rounds must exceed WarmupRounds")
	}
	if o.MaxSimTime <= 0 {
		o.MaxSimTime = 30 * 60 * sim.Second
	}
	sched, tt := o.Testbed.build()
	if o.MirrorWorkers {
		for i, j := 0, len(tt.Workers)-1; i < j; i, j = i+1, j-1 {
			tt.Workers[i], tt.Workers[j] = tt.Workers[j], tt.Workers[i]
		}
	}
	factory := o.Factory
	if factory == nil {
		factory = o.Protocol.Factory(o.RTOMin, o.Testbed.Seed)
	}
	// Under fault injection a round's request packet can be destroyed
	// outright (blackout, injected loss); the workload's request retry is
	// the application-level recovery that keeps the barrier from hanging.
	// Clean runs leave it off — nothing can destroy a request — so their
	// event streams are unchanged.
	var reqRetry sim.Duration
	if o.Faults != nil {
		reqRetry = 10 * sim.Millisecond
	}
	in := workload.NewIncast(sched, tt, workload.IncastConfig{
		Flows:         o.Flows,
		BytesPerFlow:  o.perFlowBytes(),
		Rounds:        o.Rounds,
		Factory:       factory,
		ServiceJitter: o.Testbed.ServiceJitter,
		Seed:          o.Testbed.Seed,
		RequestRetry:  reqRetry,
		FlowIDs:       o.FlowIDs,
	})

	// The conformance checker chains onto the endpoint and topology hooks
	// before any traffic (and before the fault injector, though chained
	// observers compose in either order).
	var ck *oracle.Checker
	if o.Oracle {
		ck = oracle.NewChecker(sched)
		for _, c := range in.Conns() {
			ck.AttachConn(c)
		}
		ck.AttachTwoTier(tt)
	}

	labels := attachRunTelemetry(o.Telemetry, tt, in.Conns(), o.Protocol, o.Flows)
	in.AttachTelemetry(o.Telemetry, labels...)

	var inj *fault.Injector
	if o.Faults != nil {
		el := fault.TwoTierElements(tt)
		inj = fault.NewInjector(sched, el)
		inj.AttachTelemetry(o.Telemetry, withLabel(labels, "faults", fault.ClassesLabel(o.Faults.Classes))...)
		inj.Install(fault.Generate(*o.Faults, len(el.Links), len(el.Ports), len(el.Hosts)))
	}

	var probes []*trace.CwndProbe
	if o.CollectCwnd {
		for _, c := range in.Conns() {
			p := trace.NewCwndProbe()
			p.Attach(c.Sender)
			probes = append(probes, p)
		}
	}
	var sampler *trace.QueueSampler
	if o.QueueSampleEvery > 0 {
		sampler = trace.NewQueueSampler(sched, tt.BottleneckPort, o.QueueSampleEvery)
		sampler.Start()
	}

	in.OnFinished = sched.Halt
	in.Start()
	sched.RunUntil(sim.Time(o.MaxSimTime))
	drained := false
	if o.Oracle && in.Finished() {
		// Completion halts on the final ACK; duplicate retransmissions
		// raced by the originals can still be in flight. Drain them so the
		// conservation ledger balances.
		sched.RunFor(100 * sim.Millisecond)
		drained = true
	}
	finishRunTelemetry(o.Telemetry, sched.Now(), in.Conns())

	res := IncastResult{
		Protocol: o.Protocol,
		Flows:    o.Flows,
		SimTime:  sched.Now().Sub(sim.Time(0)),
	}
	if inj != nil {
		st := inj.Finish()
		res.FaultStats = &st
	}
	if ck != nil {
		res.OracleViolations = ck.Finish(drained)
		res.OracleTotal = ck.Total()
	}
	if o.KeepRounds {
		for _, r := range in.Results() {
			pt := RoundPoint{
				Start:       r.Start,
				FCTms:       r.FCT.Millis(),
				GoodputMbps: r.GoodputMbps(),
			}
			for _, f := range r.Flows {
				if f.Timeout {
					pt.FlowTimeouts++
				}
			}
			res.Series = append(res.Series, pt)
		}
	}
	measured := in.Results()
	if len(measured) > o.WarmupRounds {
		measured = measured[o.WarmupRounds:]
	}
	res.Rounds = len(measured)

	var goodputs, fcts []float64
	var timeoutFlags, eceFlags, totalFlags int64
	for _, r := range measured {
		goodputs = append(goodputs, r.GoodputMbps())
		fcts = append(fcts, r.FCT.Millis())
		for _, f := range r.Flows {
			totalFlags++
			if f.Timeout {
				timeoutFlags++
			}
			if f.MinCwndECE {
				eceFlags++
			}
		}
	}
	res.GoodputMbps = stats.Summarize(goodputs)
	res.FCTms = stats.Summarize(fcts)
	if totalFlags > 0 {
		res.TimeoutRoundFrac = float64(timeoutFlags) / float64(totalFlags)
		res.MinCwndECEFrac = float64(eceFlags) / float64(totalFlags)
	}

	for _, c := range in.Conns() {
		st := c.Sender.Stats()
		res.Timeouts += st.Timeouts
		res.FLossTO += st.FLossTimeouts
		res.LAckTO += st.LAckTimeouts
	}
	if o.CollectCwnd {
		res.CwndHist = stats.NewHist()
		var eceAtMin, events int64
		for _, p := range probes {
			res.CwndHist.Merge(p.Hist())
			events += p.Events()
			eceAtMin += int64(p.ECEAtMinFrac() * float64(p.Events()))
		}
		if events > 0 {
			res.ECEAtMinFrac = float64(eceAtMin) / float64(events)
		}
	}
	if sampler != nil {
		sampler.Stop()
		res.QueueSamples = sampler.Samples()
	}
	res.BottleneckDrops = tt.BottleneckPort.Stats().DroppedPkts
	return res
}

// SweepIncast runs the same options across multiple flow counts — one
// figure curve.
func SweepIncast(base IncastOptions, flowCounts []int) []IncastResult {
	out := make([]IncastResult, 0, len(flowCounts))
	for _, n := range flowCounts {
		o := base
		o.Flows = n
		out = append(out, RunIncast(o))
	}
	return out
}

// PrintIncastRows writes a figure curve as aligned text rows.
func PrintIncastRows(w io.Writer, results []IncastResult) {
	fmt.Fprintf(w, "%-14s %5s %10s %10s %10s %10s %9s\n",
		"protocol", "N", "goodput", "fct.mean", "fct.p95", "fct.p99", "timeouts")
	for _, r := range results {
		fmt.Fprintf(w, "%-14s %5d %7.0f Mb %8.2fms %8.2fms %8.2fms %9d\n",
			r.Protocol, r.Flows, r.GoodputMbps.Mean,
			r.FCTms.Mean, r.FCTms.P95, r.FCTms.P99, r.Timeouts)
	}
}
