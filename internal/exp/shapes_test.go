package exp

import (
	"testing"

	"dctcpplus/internal/sim"
)

// TestPaperShapes pins the qualitative results of the paper's evaluation
// as regressions: who wins, roughly by how much, and where the crossovers
// fall. Absolute numbers are simulator-specific; these bounds are the
// "shape" contract EXPERIMENTS.md documents. Skipped under -short.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second experiment battery")
	}
	o := func(p Protocol, n int) IncastOptions {
		op := DefaultIncastOptions(p, n)
		op.Rounds = 30
		op.WarmupRounds = 8
		return op
	}

	t.Run("Fig1_TCPCollapsesEarly", func(t *testing.T) {
		t.Parallel()
		small := RunIncast(o(ProtoTCP, 1))
		big := RunIncast(o(ProtoTCP, 40))
		if small.GoodputMbps.Mean < 600 {
			t.Errorf("TCP N=1 goodput = %.0f, want healthy", small.GoodputMbps.Mean)
		}
		if big.GoodputMbps.Mean > 300 {
			t.Errorf("TCP N=40 goodput = %.0f, want collapsed", big.GoodputMbps.Mean)
		}
		if big.Timeouts == 0 {
			t.Error("TCP N=40 saw no timeouts")
		}
	})

	t.Run("Fig1_DCTCPGoodTo40CollapsedAt80", func(t *testing.T) {
		t.Parallel()
		mid := RunIncast(o(ProtoDCTCP, 40))
		big := RunIncast(o(ProtoDCTCP, 80))
		if mid.GoodputMbps.Mean < 850 {
			t.Errorf("DCTCP N=40 goodput = %.0f, want near line rate", mid.GoodputMbps.Mean)
		}
		if big.GoodputMbps.Mean > 200 {
			t.Errorf("DCTCP N=80 goodput = %.0f, want collapsed", big.GoodputMbps.Mean)
		}
	})

	t.Run("Fig7_DCTCPPlusSustains200Flows", func(t *testing.T) {
		t.Parallel()
		r := RunIncast(o(ProtoDCTCPPlus, 200))
		if r.GoodputMbps.Mean < 450 {
			t.Errorf("DCTCP+ N=200 goodput = %.0f, want in the paper's 600-900 band", r.GoodputMbps.Mean)
		}
		if r.FCTms.Mean > 30 {
			t.Errorf("DCTCP+ N=200 FCT = %.1fms, want paper's 8-17ms band", r.FCTms.Mean)
		}
		if r.TimeoutRoundFrac > 0.01 {
			t.Errorf("DCTCP+ steady-state timeout fraction = %v", r.TimeoutRoundFrac)
		}
	})

	t.Run("Fig7_DCTCPPlusMatchesDCTCPAtLowN", func(t *testing.T) {
		t.Parallel()
		plus := RunIncast(o(ProtoDCTCPPlus, 10))
		base := RunIncast(o(ProtoDCTCP, 10))
		if plus.GoodputMbps.Mean < base.GoodputMbps.Mean*0.9 {
			t.Errorf("DCTCP+ N=10 = %.0f vs DCTCP %.0f: should be comparable",
				plus.GoodputMbps.Mean, base.GoodputMbps.Mean)
		}
	})

	t.Run("Fig8_ShortRTOHelpsButPlusStillWins", func(t *testing.T) {
		t.Parallel()
		short := o(ProtoDCTCP, 120)
		short.RTOMin = 10 * sim.Millisecond
		dctcp10 := RunIncast(short)
		plus := RunIncast(o(ProtoDCTCPPlus, 120))
		dctcp200 := RunIncast(o(ProtoDCTCP, 120))
		if dctcp10.GoodputMbps.Mean < 3*dctcp200.GoodputMbps.Mean {
			t.Errorf("RTOmin 10ms should lift DCTCP well above its 200ms self: %.0f vs %.0f",
				dctcp10.GoodputMbps.Mean, dctcp200.GoodputMbps.Mean)
		}
		if plus.GoodputMbps.Mean <= dctcp10.GoodputMbps.Mean {
			t.Errorf("DCTCP+ (%.0f) should still beat 10ms-RTO DCTCP (%.0f)",
				plus.GoodputMbps.Mean, dctcp10.GoodputMbps.Mean)
		}
	})

	t.Run("Fig9_PlusKeepsShorterQueueTail", func(t *testing.T) {
		t.Parallel()
		op := o(ProtoDCTCPPlus, 50)
		op.QueueSampleEvery = 100 * sim.Microsecond
		plus := RunIncast(op)
		ob := o(ProtoDCTCP, 50)
		ob.QueueSampleEvery = 100 * sim.Microsecond
		base := RunIncast(ob)
		if plus.QueueCDF().Quantile(0.99) >= base.QueueCDF().Quantile(0.99) {
			t.Errorf("DCTCP+ p99 queue %.0f >= DCTCP %.0f",
				plus.QueueCDF().Quantile(0.99), base.QueueCDF().Quantile(0.99))
		}
	})

	t.Run("Table1_FLossDominatesDeepCollapse", func(t *testing.T) {
		t.Parallel()
		// Paper Table I at N=60: 76% FLoss-TO / 24% LAck-TO. Our substrate
		// reproduces the dominance of full-window losses once collapse
		// sets in (and both classes occur), though the exact share varies
		// with N (see EXPERIMENTS.md).
		r := RunIncast(o(ProtoDCTCP, 80))
		if r.Timeouts == 0 {
			t.Skip("no timeouts to classify")
		}
		share := float64(r.FLossTO) / float64(r.FLossTO+r.LAckTO)
		if share < 0.5 {
			t.Errorf("FLoss share = %.2f, want dominant (paper: 0.76 at its N=60)", share)
		}
		if r.LAckTO == 0 {
			t.Error("LAck-TOs absent entirely; both classes should occur")
		}
	})

	t.Run("Table1_FloorECECoincidenceCommon", func(t *testing.T) {
		t.Parallel()
		// Paper Table I: the (cwnd at floor, ECE=1) condition occurs in
		// 50-58% of transmissions at N=20-40.
		r := RunIncast(o(ProtoDCTCP, 20))
		if r.MinCwndECEFrac < 0.3 {
			t.Errorf("floor/ECE coincidence = %.2f at N=20, want the paper's 'common' regime", r.MinCwndECEFrac)
		}
	})

	t.Run("FootnoteMinCwnd1DoesNotRescueDCTCP", func(t *testing.T) {
		t.Parallel()
		// The 1-MSS floor moves DCTCP's structural limit from
		// N ~ pipeline/(2 MSS) ~ 47 to N ~ pipeline/(1 MSS) ~ 93 — a
		// direct validation of the paper's §IV-C arithmetic — but cannot
		// help beyond it: high fan-in still collapses, which is footnote
		// 3's point.
		ext := RunIncast(o(ProtoDCTCPMin1, 80))
		if ext.GoodputMbps.Mean < 800 {
			t.Errorf("DCTCP-min1 N=80 = %.0f Mbps; 80x1 MSS fits the pipeline and should work",
				ext.GoodputMbps.Mean)
		}
		min1 := RunIncast(o(ProtoDCTCPMin1, 120))
		if min1.GoodputMbps.Mean > 300 {
			t.Errorf("DCTCP-min1 N=120 = %.0f Mbps: the floor change alone should not fix high fan-in",
				min1.GoodputMbps.Mean)
		}
	})

	t.Run("Extension_RenoPlusBeatsReno", func(t *testing.T) {
		t.Parallel()
		rp := RunIncast(o(ProtoRenoPlus, 80))
		rn := RunIncast(o(ProtoTCP, 80))
		if rp.GoodputMbps.Mean <= rn.GoodputMbps.Mean {
			t.Errorf("reno+ (%.0f) should beat plain TCP (%.0f) under fan-in",
				rp.GoodputMbps.Mean, rn.GoodputMbps.Mean)
		}
	})
}
