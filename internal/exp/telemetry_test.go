package exp

import (
	"testing"

	"dctcpplus/internal/sim"
	"dctcpplus/internal/stats"
	"dctcpplus/internal/telemetry"
)

// TestRunIncastTelemetryDCTCPPlus drives a Figure-7-style DCTCP+ point with
// a registry attached and checks that every layer reported: CE marks at the
// bottleneck, the Fig. 4 state machine's occupancy and slow_time, DCTCP's
// alpha updates, and the workload's round accounting.
func TestRunIncastTelemetryDCTCPPlus(t *testing.T) {
	reg := telemetry.NewRegistry()
	o := fastIncastOpts(ProtoDCTCPPlus, 48)
	o.Telemetry = reg
	r := RunIncast(o)

	snap := reg.Snapshot()
	if snap.SimTimeNs <= 0 {
		t.Fatal("snapshot not stamped with virtual time")
	}

	if n := snap.Total("netsim_port_ce_marked_pkts_total"); n == 0 {
		t.Error("no CE marks recorded despite DCTCP+ under incast pressure")
	}
	bneck, ok := snap.Find("netsim_port_ce_marked_pkts_total",
		telemetry.L("proto", "dctcp+"), telemetry.L("flows", "48"),
		telemetry.L("port", "bottleneck"))
	if !ok || bneck.Value == 0 {
		t.Errorf("bottleneck CE marks: ok=%v value=%d", ok, bneck.Value)
	}
	if n := snap.Total("netsim_port_enqueued_pkts_total"); n == 0 {
		t.Error("no enqueues recorded")
	}
	if qd, ok := snap.Find("netsim_port_queue_depth_bytes",
		telemetry.L("proto", "dctcp+"), telemetry.L("flows", "48"),
		telemetry.L("port", "bottleneck")); !ok || qd.Count == 0 || qd.Max == 0 {
		t.Errorf("bottleneck queue-depth histogram: ok=%v %+v", ok, qd)
	}

	// 48 flows at the floor engage the mechanism: slow_time adjustments and
	// non-Normal state occupancy must appear.
	if n := snap.Total("core_enter_timeinc_total"); n == 0 {
		t.Error("state machine never entered DCTCP_Time_Inc")
	}
	if st, ok := snap.Find("core_slow_time_ns",
		telemetry.L("proto", "dctcp+"), telemetry.L("flows", "48")); !ok || st.Count == 0 {
		t.Errorf("slow_time histogram: ok=%v %+v", ok, st)
	}
	var occ int64
	for _, state := range []string{"DCTCP_NORMAL", "DCTCP_Time_Inc", "DCTCP_Time_Des"} {
		is, ok := snap.Find("core_state_occupancy_ns",
			telemetry.L("proto", "dctcp+"), telemetry.L("flows", "48"),
			telemetry.L("state", state))
		if !ok {
			t.Errorf("state occupancy for %s missing", state)
			continue
		}
		occ += is.Value
	}
	if occ == 0 {
		t.Error("zero total state occupancy")
	}
	// Occupancy aggregates all 48 flows; with FlushTelemetry closing the
	// open intervals it cannot exceed flows x run length.
	if max := int64(48) * snap.SimTimeNs; occ > max {
		t.Errorf("occupancy %d exceeds flows x simtime %d", occ, max)
	}

	if n := snap.Total("dctcp_alpha_updates_total"); n == 0 {
		t.Error("no alpha updates recorded")
	}

	if rounds, ok := snap.Find("workload_rounds_total",
		telemetry.L("proto", "dctcp+"), telemetry.L("flows", "48")); !ok || rounds.Value != int64(o.Rounds) {
		t.Errorf("workload rounds = %d, want %d", rounds.Value, o.Rounds)
	}
	if fct, ok := snap.Find("workload_round_fct_ns",
		telemetry.L("proto", "dctcp+"), telemetry.L("flows", "48")); !ok || fct.Count != int64(o.Rounds) || fct.Min <= 0 {
		t.Errorf("FCT histogram: ok=%v %+v", ok, fct)
	}
	if n := snap.Total("tcp_cwnd_mss"); n == 0 {
		t.Error("no cwnd samples recorded")
	}
	_ = r
}

// TestRunIncastTelemetryRTOTaxonomy checks the transport counters against
// the run's own result struct on a timeout-heavy TCP point.
func TestRunIncastTelemetryRTOTaxonomy(t *testing.T) {
	reg := telemetry.NewRegistry()
	o := fastIncastOpts(ProtoTCP, 32)
	o.RTOMin = 10 * sim.Millisecond
	o.Telemetry = reg
	r := RunIncast(o)
	if r.Timeouts == 0 {
		t.Fatal("32-flow TCP incast should time out")
	}

	snap := reg.Snapshot()
	lbls := []telemetry.Label{telemetry.L("proto", "tcp"), telemetry.L("flows", "32")}
	total, _ := snap.Find("tcp_rto_total", lbls...)
	floss, _ := snap.Find("tcp_rto_floss_total", lbls...)
	lack, _ := snap.Find("tcp_rto_lack_total", lbls...)
	if total.Value != r.Timeouts {
		t.Errorf("tcp_rto_total = %d, result says %d", total.Value, r.Timeouts)
	}
	if floss.Value+lack.Value != total.Value {
		t.Errorf("taxonomy %d+%d != %d", floss.Value, lack.Value, total.Value)
	}
	if floss.Value != r.FLossTO || lack.Value != r.LAckTO {
		t.Errorf("taxonomy split (%d, %d) != result (%d, %d)",
			floss.Value, lack.Value, r.FLossTO, r.LAckTO)
	}
	if rtx, ok := snap.Find("tcp_retransmit_pkts_total", lbls...); !ok || rtx.Value == 0 {
		t.Error("no retransmissions recorded despite timeouts")
	}
}

// TestTelemetryDoesNotPerturbRun pins the zero-observer-effect property:
// attaching a registry must not change a single simulation outcome, because
// instruments only read state the run already computes.
func TestTelemetryDoesNotPerturbRun(t *testing.T) {
	plain := RunIncast(fastIncastOpts(ProtoDCTCPPlus, 24))
	o := fastIncastOpts(ProtoDCTCPPlus, 24)
	o.Telemetry = telemetry.NewRegistry()
	instrumented := RunIncast(o)
	if plain.GoodputMbps != instrumented.GoodputMbps ||
		plain.FCTms != instrumented.FCTms ||
		plain.Timeouts != instrumented.Timeouts {
		t.Error("telemetry changed simulation results")
	}
}

// TestBackgroundIncastTelemetryRoles checks that the §VI-C run separates
// long-flow transport counters from the incast flows' via the role label.
func TestBackgroundIncastTelemetryRoles(t *testing.T) {
	reg := telemetry.NewRegistry()
	o := DefaultBackgroundIncastOptions(ProtoDCTCPPlus, 8)
	o.Incast.Rounds = 6
	o.Incast.WarmupRounds = 2
	o.ChunkBytes = 1 << 20
	o.Incast.Telemetry = reg
	RunBackgroundIncast(o)

	snap := reg.Snapshot()
	if _, ok := snap.Find("tcp_cwnd_mss",
		telemetry.L("proto", "dctcp+"), telemetry.L("flows", "8")); !ok {
		t.Error("incast flows' cwnd histogram missing")
	}
	bg, ok := snap.Find("tcp_cwnd_mss",
		telemetry.L("proto", "dctcp+"), telemetry.L("flows", "8"),
		telemetry.L("role", "background"))
	if !ok || bg.Count == 0 {
		t.Errorf("background flows' cwnd histogram: ok=%v %+v", ok, bg)
	}
}

// TestBackgroundFairnessJainIndex is the regression guard for DESIGN.md's
// residual deviation (ii): under §VI-C one long flow can escape the
// regulation and starve the other. The DecayInterval=1ms cadence keeps the
// long flows near-equal (measured Jain ~0.9999); this test fails if that
// mitigation silently regresses.
func TestBackgroundFairnessJainIndex(t *testing.T) {
	o := DefaultBackgroundIncastOptions(ProtoDCTCPPlus, 20)
	o.Incast.Rounds = 30
	o.Incast.WarmupRounds = 5
	r := RunBackgroundIncast(o)
	if len(r.PerFlowMeanMbps) != o.BackgroundFlows {
		t.Fatalf("long flows = %d, want %d", len(r.PerFlowMeanMbps), o.BackgroundFlows)
	}
	for i, m := range r.PerFlowMeanMbps {
		if m <= 0 {
			t.Fatalf("long flow %d starved completely: %.1f Mbps", i, m)
		}
	}
	if jain := stats.JainIndex(r.PerFlowMeanMbps); jain < 0.95 {
		t.Errorf("Jain index = %.4f, want >= 0.95 (DecayInterval mitigation regressed; per-flow %v)",
			jain, r.PerFlowMeanMbps)
	}
}

// TestScaleAppliesTelemetry pins that figure specs propagate the registry.
func TestScaleAppliesTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	sc := Scale{Rounds: 6, Warmup: 2, Seed: 1, Telemetry: reg}
	var o IncastOptions
	sc.apply(&o)
	if o.Telemetry != reg {
		t.Error("Scale.apply dropped the registry")
	}
}
