package exp

import (
	"bytes"
	"encoding/json"
	"testing"

	"dctcpplus/internal/fault"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/telemetry"
)

// instrumentedFaultedIncast is instrumentedIncast with a full-mix fault
// plan injected: one fully instrumented faulted run, returning the registry
// snapshot's JSON serialization plus a finished manifest.
func instrumentedFaultedIncast(t *testing.T, p Protocol, flows int) ([]byte, *telemetry.Manifest) {
	t.Helper()
	reg := telemetry.NewRegistry()
	o := fastIncastOpts(p, flows)
	o.Telemetry = reg
	o.Faults = &fault.GenConfig{Seed: 11}
	res := RunIncast(o)
	if res.FaultStats == nil || res.FaultStats.EventsFired == 0 {
		t.Fatal("faulted run fired no fault events")
	}

	data, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	m := telemetry.NewManifest("fault-determinism-regression", o.Testbed.Seed)
	m.Finish(reg, 0)
	return data, m
}

// TestFaultedSeededRunsAreByteIdentical extends the determinism harness to
// fault-injected runs: the same seed plus the same fault.GenConfig must
// produce byte-identical metric snapshots — faults included — for both the
// baseline and the enhanced protocol.
func TestFaultedSeededRunsAreByteIdentical(t *testing.T) {
	for _, p := range []Protocol{ProtoDCTCP, ProtoDCTCPPlus} {
		t.Run(p.String(), func(t *testing.T) {
			snapA, manA := instrumentedFaultedIncast(t, p, 24)
			snapB, manB := instrumentedFaultedIncast(t, p, 24)

			if !bytes.Equal(snapA, snapB) {
				t.Errorf("faulted registry snapshots differ between identically seeded runs\nA: %s\nB: %s", snapA, snapB)
			}
			if diffs := telemetry.DiffSummaries(manA, manB); len(diffs) != 0 {
				t.Errorf("DiffSummaries reported %d drifting instruments:\n%s",
					len(diffs), diffs)
			}
		})
	}
}

// faultedSweepSnapshots runs a small per-class faulted sweep under the
// given exp.Parallelism, each cell with its own registry, and returns the
// per-cell snapshot serializations in cell order.
func faultedSweepSnapshots(t *testing.T, par int) [][]byte {
	t.Helper()
	old := Parallelism
	Parallelism = par
	defer func() { Parallelism = old }()

	classes := []fault.Class{fault.ClassBlackout, fault.ClassLoss, fault.ClassStall}
	var opts []IncastOptions
	var regs []*telemetry.Registry
	for _, p := range []Protocol{ProtoDCTCP, ProtoDCTCPPlus} {
		for _, cls := range classes {
			o := fastIncastOpts(p, 16)
			o.Faults = &fault.GenConfig{Seed: 11, Classes: []fault.Class{cls}}
			o.Telemetry = telemetry.NewRegistry()
			regs = append(regs, o.Telemetry)
			opts = append(opts, o)
		}
	}
	RunMany(opts)

	snaps := make([][]byte, len(regs))
	for i, reg := range regs {
		data, err := json.Marshal(reg.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		snaps[i] = data
	}
	return snaps
}

// TestFaultedSweepParallelismInvariant pins the other half of the contract:
// running the same faulted cells sequentially and concurrently must yield
// byte-identical per-cell snapshots — parallelism changes wall-clock time
// only, never results, faults included.
func TestFaultedSweepParallelismInvariant(t *testing.T) {
	seq := faultedSweepSnapshots(t, 1)
	par := faultedSweepSnapshots(t, 4)
	for i := range seq {
		if !bytes.Equal(seq[i], par[i]) {
			t.Errorf("cell %d: snapshot differs between Parallelism=1 and Parallelism=4\nseq: %s\npar: %s",
				i, seq[i], par[i])
		}
	}
}

// resilienceBase is the operating point of the committed resilience gate
// and the EXPERIMENTS.md table: the paper's massive-flow regime (N=150,
// where plain DCTCP's window floor binds) with the datacenter-tuned 10ms
// RTOmin, long enough past warmup that the calibrated fault windows land
// in measured rounds.
func resilienceBase(flows int) IncastOptions {
	o := DefaultIncastOptions(ProtoDCTCP, flows)
	o.Rounds, o.WarmupRounds = 10, 2
	o.RTOMin = 10 * sim.Millisecond
	return o
}

// TestResilienceDCTCPPlusNoWorse is the acceptance gate behind the
// EXPERIMENTS.md resilience table: in the massive-flow regime, under every
// fault class, (a) DCTCP+ still outperforms DCTCP outright — the paper's
// advantage survives the pathology — and (b) DCTCP+'s degradation relative
// to its own clean baseline is no worse than DCTCP's, within a noise
// tolerance. The enhancement layer must not amplify pathologies it was not
// designed for.
func TestResilienceDCTCPPlusNoWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("resilience sweep")
	}
	rows := RunResilience(ResilienceOptions{
		Base: resilienceBase(150),
		Gen:  fault.GenConfig{Seed: 5},
	})
	cleanDCTCP := rows[0].Results[0].GoodputMbps.Mean
	cleanPlus := rows[0].Results[1].GoodputMbps.Mean
	for _, r := range rows[1:] {
		dctcp, plus := r.Results[0], r.Results[1]
		if plus.GoodputMbps.Mean < dctcp.GoodputMbps.Mean {
			t.Errorf("%s: DCTCP+ goodput %.1f Mbps below DCTCP %.1f Mbps",
				r.Label, plus.GoodputMbps.Mean, dctcp.GoodputMbps.Mean)
		}
		ratioDCTCP := dctcp.GoodputMbps.Mean / cleanDCTCP
		ratioPlus := plus.GoodputMbps.Mean / cleanPlus
		if ratioPlus < ratioDCTCP-0.10 {
			t.Errorf("%s: DCTCP+ degraded to %.3f of clean vs DCTCP's %.3f",
				r.Label, ratioPlus, ratioDCTCP)
		}
	}
}
