package exp

import (
	"dctcpplus/internal/sweep/pool"
)

// Parallelism controls how many experiment points run concurrently in the
// *Parallel sweep variants. Each point is an independent, fully
// deterministic simulation, so running them on separate goroutines changes
// wall-clock time only — never results. The fan-out itself is the shared
// worker pool in internal/sweep/pool; this variable only sets its width for
// the exp-level sweeps (internal/sweep's Runner has its own Workers knob).
var Parallelism = pool.DefaultWorkers()

// SweepIncastParallel is SweepIncast with the points executed concurrently.
// Results are positionally identical to the sequential sweep.
func SweepIncastParallel(base IncastOptions, flowCounts []int) []IncastResult {
	out := make([]IncastResult, len(flowCounts))
	pool.ForEach(Parallelism, len(flowCounts), func(i int) {
		o := base
		o.Flows = flowCounts[i]
		out[i] = RunIncast(o)
	})
	return out
}

// SweepBackgroundIncastParallel is SweepBackgroundIncast with the points
// executed concurrently.
func SweepBackgroundIncastParallel(base BackgroundIncastOptions, flowCounts []int) []BackgroundIncastResult {
	out := make([]BackgroundIncastResult, len(flowCounts))
	pool.ForEach(Parallelism, len(flowCounts), func(i int) {
		o := base
		o.Incast.Flows = flowCounts[i]
		out[i] = RunBackgroundIncast(o)
	})
	return out
}

// RunMany executes a batch of heterogeneous incast points concurrently.
func RunMany(optList []IncastOptions) []IncastResult {
	out := make([]IncastResult, len(optList))
	pool.ForEach(Parallelism, len(optList), func(i int) {
		out[i] = RunIncast(optList[i])
	})
	return out
}
