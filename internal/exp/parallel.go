package exp

import (
	"runtime"
	"sync"
)

// Parallelism controls how many experiment points run concurrently in the
// *Parallel sweep variants. Each point is an independent, fully
// deterministic simulation, so running them on separate goroutines changes
// wall-clock time only — never results.
var Parallelism = runtime.GOMAXPROCS(0)

// parallelFor runs fn(i) for i in [0, n) across min(Parallelism, n)
// workers.
func parallelFor(n int, fn func(i int)) {
	workers := Parallelism
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// SweepIncastParallel is SweepIncast with the points executed concurrently.
// Results are positionally identical to the sequential sweep.
func SweepIncastParallel(base IncastOptions, flowCounts []int) []IncastResult {
	out := make([]IncastResult, len(flowCounts))
	parallelFor(len(flowCounts), func(i int) {
		o := base
		o.Flows = flowCounts[i]
		out[i] = RunIncast(o)
	})
	return out
}

// SweepBackgroundIncastParallel is SweepBackgroundIncast with the points
// executed concurrently.
func SweepBackgroundIncastParallel(base BackgroundIncastOptions, flowCounts []int) []BackgroundIncastResult {
	out := make([]BackgroundIncastResult, len(flowCounts))
	parallelFor(len(flowCounts), func(i int) {
		o := base
		o.Incast.Flows = flowCounts[i]
		out[i] = RunBackgroundIncast(o)
	})
	return out
}

// RunMany executes a batch of heterogeneous incast points concurrently.
func RunMany(optList []IncastOptions) []IncastResult {
	out := make([]IncastResult, len(optList))
	parallelFor(len(optList), func(i int) {
		out[i] = RunIncast(optList[i])
	})
	return out
}
