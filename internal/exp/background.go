package exp

import (
	"fmt"
	"io"

	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/stats"
	"dctcpplus/internal/tcp"
	"dctcpplus/internal/trace"
	"dctcpplus/internal/workload"
)

// BackgroundIncastOptions parameterizes the §VI-C experiment: the basic
// incast with persistent long flows consuming the shared bottleneck buffer
// (Fig. 10's topology; results in Figs. 11 and 12).
type BackgroundIncastOptions struct {
	Incast IncastOptions

	// BackgroundFlows is the number of persistent long flows (2 in the
	// paper), sourced from distinct workers toward the aggregator.
	BackgroundFlows int
	// ChunkBytes is the throughput-accounting granularity for long flows
	// (the paper samples every 1GB; simulations use smaller chunks).
	ChunkBytes int64
}

// DefaultBackgroundIncastOptions returns the paper's §VI-C settings with a
// simulation-sized accounting chunk.
func DefaultBackgroundIncastOptions(p Protocol, flows int) BackgroundIncastOptions {
	return BackgroundIncastOptions{
		Incast:          DefaultIncastOptions(p, flows),
		BackgroundFlows: 2,
		ChunkBytes:      4 << 20,
	}
}

// BackgroundIncastResult extends the incast point with long-flow
// throughput.
type BackgroundIncastResult struct {
	IncastResult
	// LongFlowMbps summarizes per-chunk throughput across the long flows.
	LongFlowMbps stats.Summary
	// PerFlowMeanMbps is each long flow's mean throughput, in flow order.
	PerFlowMeanMbps []float64
}

// RunBackgroundIncast executes the incast workload concurrently with
// persistent background flows.
func RunBackgroundIncast(o BackgroundIncastOptions) BackgroundIncastResult {
	oi := o.Incast
	if oi.Rounds <= oi.WarmupRounds {
		panic("exp: Rounds must exceed WarmupRounds")
	}
	if oi.MaxSimTime <= 0 {
		oi.MaxSimTime = 30 * 60 * sim.Second
	}
	if o.BackgroundFlows < 0 || o.BackgroundFlows >= oi.Testbed.Leaves*oi.Testbed.HostsPerLeaf {
		panic("exp: BackgroundFlows must be fewer than the workers")
	}
	sched, tt := oi.Testbed.build()
	incastFactory := oi.Factory
	if incastFactory == nil {
		incastFactory = oi.Protocol.Factory(oi.RTOMin, oi.Testbed.Seed)
	}
	in := workload.NewIncast(sched, tt, workload.IncastConfig{
		Flows:         oi.Flows,
		BytesPerFlow:  oi.perFlowBytes(),
		Rounds:        oi.Rounds,
		Factory:       incastFactory,
		ServiceJitter: oi.Testbed.ServiceJitter,
		Seed:          oi.Testbed.Seed,
	})

	// Long flows: one per distinct worker, flow ids above the incast range.
	factory := oi.Factory
	if factory == nil {
		factory = oi.Protocol.Factory(oi.RTOMin, oi.Testbed.Seed^0xbac)
	}
	var longs []*workload.LongFlow
	var longConns []*tcp.Conn
	for i := 0; i < o.BackgroundFlows; i++ {
		cfg, cc := factory(1_000_000 + i)
		lf := workload.NewLongFlow(sched, tt.Workers[i], tt.Aggregator,
			packet.FlowID(900_000+i), cfg, cc, o.ChunkBytes)
		longs = append(longs, lf)
		longConns = append(longConns, lf.Conn())
	}

	labels := attachRunTelemetry(oi.Telemetry, tt, in.Conns(), oi.Protocol, oi.Flows)
	in.AttachTelemetry(oi.Telemetry, labels...)
	// Long flows report under their own role label so their transport events
	// do not blend into the incast flows' counters. Attachment precedes
	// Start, which pumps the first chunk synchronously.
	attachConnTelemetry(oi.Telemetry, longConns, withLabel(labels, "role", "background"))
	for _, lf := range longs {
		lf.Start()
	}

	var sampler *trace.QueueSampler
	if oi.QueueSampleEvery > 0 {
		sampler = trace.NewQueueSampler(sched, tt.BottleneckPort, oi.QueueSampleEvery)
		sampler.Start()
	}

	in.OnFinished = sched.Halt
	in.Start()
	sched.RunUntil(sim.Time(oi.MaxSimTime))
	for _, lf := range longs {
		lf.Stop()
	}
	finishRunTelemetry(oi.Telemetry, sched.Now(), append(in.Conns(), longConns...))

	res := BackgroundIncastResult{}
	res.Protocol = oi.Protocol
	res.Flows = oi.Flows

	measured := in.Results()
	if len(measured) > oi.WarmupRounds {
		measured = measured[oi.WarmupRounds:]
	}
	res.Rounds = len(measured)
	var goodputs, fcts []float64
	for _, r := range measured {
		goodputs = append(goodputs, r.GoodputMbps())
		fcts = append(fcts, r.FCT.Millis())
	}
	res.GoodputMbps = stats.Summarize(goodputs)
	res.FCTms = stats.Summarize(fcts)
	for _, c := range in.Conns() {
		st := c.Sender.Stats()
		res.Timeouts += st.Timeouts
		res.FLossTO += st.FLossTimeouts
		res.LAckTO += st.LAckTimeouts
	}
	if sampler != nil {
		sampler.Stop()
		res.QueueSamples = sampler.Samples()
	}
	res.BottleneckDrops = tt.BottleneckPort.Stats().DroppedPkts

	var chunks []float64
	for _, lf := range longs {
		chunks = append(chunks, lf.ChunkThroughputMbps()...)
		res.PerFlowMeanMbps = append(res.PerFlowMeanMbps, lf.MeanThroughputMbps())
	}
	res.LongFlowMbps = stats.Summarize(chunks)
	return res
}

// SweepBackgroundIncast runs the background-incast point across flow
// counts (the Figs. 11/12 curves).
func SweepBackgroundIncast(base BackgroundIncastOptions, flowCounts []int) []BackgroundIncastResult {
	out := make([]BackgroundIncastResult, 0, len(flowCounts))
	for _, n := range flowCounts {
		o := base
		o.Incast.Flows = n
		out = append(out, RunBackgroundIncast(o))
	}
	return out
}

// PrintBackgroundIncastRows writes the Figs. 11/12 rows: incast goodput and
// FCT alongside the long flows' throughput.
func PrintBackgroundIncastRows(w io.Writer, results []BackgroundIncastResult) {
	fmt.Fprintf(w, "%-14s %5s %10s %10s %10s %12s %9s\n",
		"protocol", "N", "goodput", "fct.mean", "fct.p99", "longflow", "timeouts")
	for _, r := range results {
		fmt.Fprintf(w, "%-14s %5d %7.0f Mb %8.2fms %8.2fms %9.0f Mb %9d\n",
			r.Protocol, r.Flows, r.GoodputMbps.Mean,
			r.FCTms.Mean, r.FCTms.P99, r.LongFlowMbps.Mean, r.Timeouts)
	}
}
