package exp

import (
	"fmt"
	"io"

	"dctcpplus/internal/fault"
	"dctcpplus/internal/sim"
)

// ResilienceOptions parameterizes a resilience sweep: the same incast
// point run clean and then under each fault class in isolation, for each
// protocol — the experiment behind the EXPERIMENTS.md resilience table.
// Every (class, protocol) cell is an independent deterministic run, so the
// sweep reuses the parallel point machinery.
type ResilienceOptions struct {
	// Base is the incast point every cell shares; Protocol and Faults are
	// overridden per cell.
	Base IncastOptions

	// Protocols are the table columns; nil means {DCTCP, DCTCP+} — the
	// paper's head-to-head pair.
	Protocols []Protocol

	// Classes are the table rows (after the clean baseline); nil means
	// every fault class.
	Classes []fault.Class

	// Gen is the plan-distribution template. Its Classes field is
	// overridden per row so each row isolates one fault family; everything
	// else (seed, episode count, severities) is shared, so rows differ
	// only in the pathology injected.
	//
	// Timing is auto-calibrated when Gen.Window is zero: protocols under
	// massive incast differ in run length by an order of magnitude (a
	// collapsed DCTCP run crawls through RTO after RTO), so a fixed fault
	// window would perturb one protocol's whole run and miss another's
	// entirely. Instead each cell's episodes are spread over the middle
	// 80% of that protocol's clean run, with episode length scaled to 10%
	// of it — every protocol loses the same fraction of its run to the
	// pathology, making the degradation ratios comparable.
	Gen fault.GenConfig
}

// ResilienceRow is one fault class evaluated across the protocols.
type ResilienceRow struct {
	// Label is the fault class name, or "none" for the clean baseline.
	Label string
	// Results is column-aligned with the sweep's Protocols.
	Results []IncastResult
}

// RunResilience executes the full sweep — (1 + len(Classes)) rows x
// len(Protocols) columns — with the cells running concurrently under
// exp.Parallelism. Row 0 is always the clean baseline.
func RunResilience(o ResilienceOptions) []ResilienceRow {
	if len(o.Protocols) == 0 {
		o.Protocols = []Protocol{ProtoDCTCP, ProtoDCTCPPlus}
	}
	if len(o.Classes) == 0 {
		o.Classes = fault.AllClasses()
	}
	rows := make([]ResilienceRow, 1+len(o.Classes))
	rows[0].Label = "none"
	for i, c := range o.Classes {
		rows[i+1].Label = c.String()
	}

	// Clean baselines first: they anchor the table and, when Gen.Window
	// is unset, calibrate each protocol's fault window to its actual run
	// span (see ResilienceOptions.Gen).
	cleanOpts := make([]IncastOptions, len(o.Protocols))
	for c, p := range o.Protocols {
		op := o.Base
		op.Protocol = p
		cleanOpts[c] = op
	}
	rows[0].Results = RunMany(cleanOpts)

	var opts []IncastOptions
	for r := 1; r < len(rows); r++ {
		rows[r].Results = make([]IncastResult, len(o.Protocols))
		for c, p := range o.Protocols {
			op := o.Base
			op.Protocol = p
			gen := o.Gen
			gen.Classes = []fault.Class{o.Classes[r-1]}
			if gen.Window <= 0 {
				span := rows[0].Results[c].SimTime
				gen.Start = sim.Time(span / 10)
				gen.Window = span * 8 / 10
				gen.Dur = span / 10
			}
			op.Faults = &gen
			opts = append(opts, op)
		}
	}
	faulted := RunMany(opts)
	for i, res := range faulted {
		rows[1+i/len(o.Protocols)].Results[i%len(o.Protocols)] = res
	}
	return rows
}

// PrintResilienceRows writes the sweep as an aligned table: one row per
// fault class, one goodput/FCT/timeouts column group per protocol.
func PrintResilienceRows(w io.Writer, protocols []Protocol, rows []ResilienceRow) {
	fmt.Fprintf(w, "%-10s", "fault")
	for _, p := range protocols {
		name := p.String()
		fmt.Fprintf(w, "  %16s %12s %12s", name+".goodput", name+".fct", name+".timeouts")
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s", r.Label)
		for _, res := range r.Results {
			fmt.Fprintf(w, "  %13.0f Mb %10.2fms %12d",
				res.GoodputMbps.Mean, res.FCTms.Mean, res.Timeouts)
		}
		fmt.Fprintln(w)
	}
}
