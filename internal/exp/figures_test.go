package exp

import (
	"strings"
	"testing"
)

// tinyScale keeps figure tests quick.
func tinyScale() Scale { return Scale{Rounds: 6, Warmup: 2, Seed: 1} }

func TestFigure1RunAndRender(t *testing.T) {
	f := NewFigure1()
	f.Scale = tinyScale()
	f.FlowCounts = []int{4, 8}
	f.Run()
	if len(f.Results) != 4 { // 2 protocols x 2 points
		t.Fatalf("results = %d", len(f.Results))
	}
	var sb strings.Builder
	f.Render(&sb)
	if !strings.Contains(sb.String(), "dctcp") || !strings.Contains(sb.String(), "tcp") {
		t.Error("render missing protocols")
	}
}

func TestFigure2Table1RunAndRender(t *testing.T) {
	f := NewFigure2Table1()
	f.Scale = tinyScale()
	f.FlowCounts = []int{8}
	f.Run()
	if len(f.Results) != 2 {
		t.Fatalf("results = %d", len(f.Results))
	}
	for _, r := range f.Results {
		if r.CwndHist == nil {
			t.Fatal("missing cwnd histogram")
		}
	}
	var sb strings.Builder
	f.Render(&sb)
	for _, col := range []string{"w=1", "cwndMin&ECE", "FLoss-TO"} {
		if !strings.Contains(sb.String(), col) {
			t.Errorf("render missing %q", col)
		}
	}
}

func TestFigure7VariantsConfigs(t *testing.T) {
	if p := NewFigure6().Protocols; p[0] != ProtoDCTCPPlusPartial {
		t.Error("Figure 6 spec wrong")
	}
	if NewFigure8().BaselineRTOMin == 0 {
		t.Error("Figure 8 spec missing RTO override")
	}
	f := NewFigure7()
	f.Scale = tinyScale()
	f.Protocols = []Protocol{ProtoDCTCPPlus}
	f.FlowCounts = []int{6}
	f.Run()
	if len(f.Results) != 1 || f.Results[0].Flows != 6 {
		t.Fatal("run shape wrong")
	}
}

func TestFigure8AppliesBaselineRTOOnlyToBaselines(t *testing.T) {
	f := NewFigure8()
	f.Scale = tinyScale()
	f.FlowCounts = []int{4}
	f.Protocols = []Protocol{ProtoDCTCPPlus, ProtoDCTCP}
	f.Run()
	// Indirect check: both complete; the semantics are covered by
	// inspecting options in Run (the DCTCP+ run keeps the 200ms default,
	// which manifests only under loss — here we simply require both rows).
	if len(f.Results) != 2 {
		t.Fatal("rows missing")
	}
}

func TestFigure9RunAndRender(t *testing.T) {
	f := NewFigure9()
	f.Scale = tinyScale()
	f.Protocols = []Protocol{ProtoDCTCP}
	f.FlowCounts = []int{8}
	f.Run()
	if len(f.Results) != 1 || len(f.Results[0].QueueSamples) == 0 {
		t.Fatal("no queue samples")
	}
	var sb strings.Builder
	f.Render(&sb)
	if !strings.Contains(sb.String(), "p99") {
		t.Error("render missing quantile columns")
	}
}

func TestFigure11_12RunAndRender(t *testing.T) {
	f := NewFigure11_12()
	f.Scale = tinyScale()
	f.Protocols = []Protocol{ProtoDCTCPPlus}
	f.FlowCounts = []int{4}
	f.Run()
	if len(f.Results) != 1 || f.Results[0].LongFlowMbps.Count == 0 {
		t.Fatal("no long-flow chunks")
	}
	var sb strings.Builder
	f.Render(&sb)
	if !strings.Contains(sb.String(), "longflow") {
		t.Error("render missing longflow column")
	}
}

func TestFigure13RunAndRender(t *testing.T) {
	f := NewFigure13()
	f.Queries = 15
	f.Background = 15
	f.Protocols = []Protocol{ProtoDCTCP}
	f.Run()
	if len(f.Results) != 1 || f.Results[0].Queries != 15 {
		t.Fatal("benchmark results wrong")
	}
	var sb strings.Builder
	f.Render(&sb)
	if !strings.Contains(sb.String(), "q.p99") {
		t.Error("render missing columns")
	}
}

func TestFigure14RunAndRender(t *testing.T) {
	f := NewFigure14()
	f.Flows = 12
	f.BytesPerFlow = 256 << 10
	f.Rounds = 3
	f.Run()
	if len(f.Result.Series) != 3 {
		t.Fatalf("series = %d", len(f.Result.Series))
	}
	var sb strings.Builder
	f.Render(&sb)
	if !strings.Contains(sb.String(), "converged at round") {
		t.Error("render missing verdict")
	}
}
