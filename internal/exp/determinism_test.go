package exp

import (
	"bytes"
	"encoding/json"
	"testing"

	"dctcpplus/internal/telemetry"
)

// instrumentedIncast performs one fully instrumented incast run and returns
// the registry snapshot's JSON serialization plus a finished manifest.
func instrumentedIncast(t *testing.T, p Protocol, flows int) ([]byte, *telemetry.Manifest) {
	t.Helper()
	reg := telemetry.NewRegistry()
	o := fastIncastOpts(p, flows)
	o.Telemetry = reg
	RunIncast(o)

	data, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	m := telemetry.NewManifest("determinism-regression", o.Testbed.Seed)
	m.Finish(reg, 0)
	return data, m
}

// TestSeededRunsAreByteIdentical is the determinism regression harness: the
// same seeded experiment run twice must produce byte-identical metric
// snapshots — every counter, gauge and histogram across every hot layer —
// for both the baseline and the enhanced protocol. Wall-clock manifest
// fields (CreatedAt, WallNs) are excluded by construction; everything else
// must match to the byte.
func TestSeededRunsAreByteIdentical(t *testing.T) {
	for _, p := range []Protocol{ProtoDCTCP, ProtoDCTCPPlus} {
		t.Run(p.String(), func(t *testing.T) {
			snapA, manA := instrumentedIncast(t, p, 24)
			snapB, manB := instrumentedIncast(t, p, 24)

			if !bytes.Equal(snapA, snapB) {
				t.Errorf("registry snapshots differ between identically seeded runs\nA: %s\nB: %s", snapA, snapB)
			}

			// The manifest adds run metadata on top of the snapshot; after
			// normalizing the wall-clock stamp the two must serialize
			// identically as well.
			manA.CreatedAt, manB.CreatedAt = "", ""
			jsonA, err := json.Marshal(manA)
			if err != nil {
				t.Fatal(err)
			}
			jsonB, err := json.Marshal(manB)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(jsonA, jsonB) {
				t.Error("manifests differ between identically seeded runs")
			}

			if diffs := telemetry.DiffSummaries(manA, manB); len(diffs) != 0 {
				t.Errorf("DiffSummaries reported %d drifting instruments:\n%s",
					len(diffs), diffs)
			}
		})
	}
}

// TestDiffSummariesSeesProtocolChange guards the harness itself: the same
// diff that must be empty across reruns must be non-empty across a real
// behavioural change, or an always-empty diff would pass the test above
// vacuously.
func TestDiffSummariesSeesProtocolChange(t *testing.T) {
	_, dctcp := instrumentedIncast(t, ProtoDCTCP, 24)
	_, plus := instrumentedIncast(t, ProtoDCTCPPlus, 24)
	if diffs := telemetry.DiffSummaries(dctcp, plus); len(diffs) == 0 {
		t.Error("DiffSummaries found no difference between DCTCP and DCTCP+ runs")
	}
}
