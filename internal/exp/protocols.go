// Package exp is the experiment harness: it maps every table and figure of
// the paper's evaluation (§VI) to a typed, runnable experiment over the
// simulated testbed, emitting the same rows/series the paper reports. See
// DESIGN.md for the experiment index.
package exp

import (
	"fmt"

	"dctcpplus/internal/core"
	"dctcpplus/internal/d2tcp"
	"dctcpplus/internal/dctcp"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/tcp"
	"dctcpplus/internal/workload"
)

// Protocol selects a transport variant under evaluation.
type Protocol int

const (
	// ProtoTCP is plain TCP NewReno without ECN — the paper's "TCP".
	ProtoTCP Protocol = iota
	// ProtoDCTCP is DCTCP with the standard 2-MSS window floor.
	ProtoDCTCP
	// ProtoDCTCPMin1 is DCTCP with the floor lowered to 1 MSS — the
	// footnote-3 control showing the floor change alone does not help.
	ProtoDCTCPMin1
	// ProtoDCTCPPlus is the full DCTCP+ (randomized slow_time, floor 1).
	ProtoDCTCPPlus
	// ProtoDCTCPPlusPartial is DCTCP+ with desynchronization disabled
	// (deterministic backoff) — the Fig. 6 ablation.
	ProtoDCTCPPlusPartial
	// ProtoRenoPlus is Reno with RFC 3168 ECN plus the enhancement
	// mechanism — the §VII extension showing the mechanism composes with
	// other protocols.
	ProtoRenoPlus
	// ProtoD2TCP is Deadline-Aware DCTCP (Vamanan et al.), with per-flow
	// deadline factors cycling {0.5, 1, 2} across the workload.
	ProtoD2TCP
	// ProtoD2TCPPlus is D2TCP wrapped with the enhancement mechanism —
	// the other §VII composition.
	ProtoD2TCPPlus
)

// Protocols lists every variant, in display order.
var Protocols = []Protocol{
	ProtoTCP, ProtoDCTCP, ProtoDCTCPMin1,
	ProtoDCTCPPlus, ProtoDCTCPPlusPartial, ProtoRenoPlus,
	ProtoD2TCP, ProtoD2TCPPlus,
}

func (p Protocol) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoDCTCP:
		return "dctcp"
	case ProtoDCTCPMin1:
		return "dctcp-min1"
	case ProtoDCTCPPlus:
		return "dctcp+"
	case ProtoDCTCPPlusPartial:
		return "dctcp+partial"
	case ProtoRenoPlus:
		return "reno+"
	case ProtoD2TCP:
		return "d2tcp"
	case ProtoD2TCPPlus:
		return "d2tcp+"
	}
	return fmt.Sprintf("Protocol(%d)", int(p))
}

// ParseProtocol maps a name (as produced by String) back to a Protocol.
func ParseProtocol(s string) (Protocol, error) {
	for _, p := range Protocols {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("exp: unknown protocol %q", s)
}

// seedStride decorrelates per-flow seeds.
const seedStride = 0x9e3779b97f4a7c15

// deadlineCycle assigns urgency factors to D2TCP flows round-robin,
// modeling a mix of near-, on-, and far-deadline responders.
var deadlineCycle = []float64{0.5, 1, 2}

// DCTCPPlusFactory builds DCTCP+ endpoints with a custom enhancement
// configuration — the hook the ablation benches use to sweep
// backoff_time_unit, divisor_factor and the desynchronization switch
// (§V-D parameter guidance).
func DCTCPPlusFactory(rtoMin sim.Duration, seedBase uint64, ecfg core.Config) workload.FlowFactory {
	return func(i int) (tcp.Config, tcp.CongestionControl) {
		cfg := core.SenderConfig()
		cfg.RTOMin = rtoMin
		cfg.RTOInit = rtoMin
		cfg.Seed = seedBase + uint64(i+1)*seedStride
		return cfg, core.New(dctcp.DefaultGain, ecfg)
	}
}

// Factory returns a workload.FlowFactory building this protocol's
// endpoints. rtoMin sets both the minimum and initial RTO (the connections
// are persistent, so the estimator takes over after the first sample).
// seedBase parameterizes the per-flow random streams.
func (p Protocol) Factory(rtoMin sim.Duration, seedBase uint64) workload.FlowFactory {
	return func(i int) (tcp.Config, tcp.CongestionControl) {
		var cfg tcp.Config
		var cc tcp.CongestionControl
		switch p {
		case ProtoTCP:
			cfg = tcp.DefaultConfig()
			cc = tcp.NewReno{}
		case ProtoDCTCP:
			cfg = dctcp.Config()
			cc = dctcp.New(dctcp.DefaultGain)
		case ProtoDCTCPMin1:
			cfg = dctcp.Config()
			cfg.MinCwnd = 1
			cc = dctcp.New(dctcp.DefaultGain)
		case ProtoDCTCPPlus:
			cfg = core.SenderConfig()
			cc = core.New(dctcp.DefaultGain, core.DefaultConfig())
		case ProtoDCTCPPlusPartial:
			cfg = core.SenderConfig()
			ecfg := core.DefaultConfig()
			ecfg.Randomize = false
			cc = core.New(dctcp.DefaultGain, ecfg)
		case ProtoRenoPlus:
			cfg = tcp.DefaultConfig()
			cfg.ECN = tcp.ECNClassic
			cfg.MinCwnd = 1
			cfg.DelAckCount = 1
			cc = core.Enhance(tcp.NewReno{}, core.DefaultConfig())
		case ProtoD2TCP:
			cfg = d2tcp.Config()
			cc = d2tcp.New(dctcp.DefaultGain, deadlineCycle[i%len(deadlineCycle)])
		case ProtoD2TCPPlus:
			cfg = d2tcp.Config()
			cfg.MinCwnd = 1
			cc = core.Enhance(d2tcp.New(dctcp.DefaultGain,
				deadlineCycle[i%len(deadlineCycle)]), core.DefaultConfig())
		default:
			panic(fmt.Sprintf("exp: unknown protocol %d", int(p)))
		}
		cfg.RTOMin = rtoMin
		cfg.RTOInit = rtoMin
		cfg.Seed = seedBase + uint64(i+1)*seedStride
		return cfg, cc
	}
}
