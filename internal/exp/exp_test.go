package exp

import (
	"strings"
	"testing"

	"dctcpplus/internal/sim"
)

func TestProtocolStringsRoundTrip(t *testing.T) {
	for _, p := range Protocols {
		got, err := ParseProtocol(p.String())
		if err != nil || got != p {
			t.Errorf("round trip failed for %v: %v %v", p, got, err)
		}
	}
	if _, err := ParseProtocol("bogus"); err == nil {
		t.Error("bogus protocol parsed")
	}
	if !strings.Contains(Protocol(99).String(), "99") {
		t.Error("unknown protocol string")
	}
}

func TestProtocolFactoriesBuildDistinctSeeds(t *testing.T) {
	for _, p := range Protocols {
		f := p.Factory(10*sim.Millisecond, 7)
		c0, cc0 := f(0)
		c1, cc1 := f(1)
		if c0.Seed == c1.Seed {
			t.Errorf("%v: flows share a seed", p)
		}
		if cc0 == nil || cc1 == nil {
			t.Errorf("%v: nil congestion control", p)
		}
		if c0.RTOMin != 10*sim.Millisecond || c0.RTOInit != 10*sim.Millisecond {
			t.Errorf("%v: RTO not applied", p)
		}
	}
}

func TestProtocolFactoryConfigShapes(t *testing.T) {
	cases := []struct {
		p        Protocol
		minCwnd  float64
		ccName   string
		wantsECN bool
	}{
		{ProtoTCP, 2, "reno", false},
		{ProtoDCTCP, 2, "dctcp", true},
		{ProtoDCTCPMin1, 1, "dctcp", true},
		{ProtoDCTCPPlus, 1, "dctcp+", true},
		{ProtoDCTCPPlusPartial, 1, "dctcp+", true},
		{ProtoRenoPlus, 1, "reno+", true},
		{ProtoD2TCP, 2, "d2tcp", true},
		{ProtoD2TCPPlus, 1, "d2tcp+", true},
	}
	for _, tc := range cases {
		cfg, cc := tc.p.Factory(200*sim.Millisecond, 1)(0)
		if cfg.MinCwnd != tc.minCwnd {
			t.Errorf("%v: MinCwnd = %v, want %v", tc.p, cfg.MinCwnd, tc.minCwnd)
		}
		if cc.Name() != tc.ccName {
			t.Errorf("%v: cc = %q, want %q", tc.p, cc.Name(), tc.ccName)
		}
		hasECN := cfg.ECN != 0
		if hasECN != tc.wantsECN {
			t.Errorf("%v: ECN mode = %v", tc.p, cfg.ECN)
		}
	}
}

// fastIncastOpts returns small, quick options for harness tests.
func fastIncastOpts(p Protocol, flows int) IncastOptions {
	o := DefaultIncastOptions(p, flows)
	o.Rounds = 6
	o.WarmupRounds = 2
	return o
}

func TestRunIncastBasics(t *testing.T) {
	r := RunIncast(fastIncastOpts(ProtoDCTCP, 8))
	if r.Rounds != 4 {
		t.Fatalf("measured rounds = %d, want 4", r.Rounds)
	}
	if r.GoodputMbps.Mean < 700 || r.GoodputMbps.Mean > 1000 {
		t.Errorf("DCTCP N=8 goodput = %.0f, want near line rate", r.GoodputMbps.Mean)
	}
	if r.Timeouts != 0 {
		t.Errorf("unexpected timeouts: %d", r.Timeouts)
	}
	if r.Protocol != ProtoDCTCP || r.Flows != 8 {
		t.Error("identity fields wrong")
	}
	if r.CwndHist != nil || r.QueueSamples != nil {
		t.Error("probes attached without being requested")
	}
}

func TestRunIncastDeterministic(t *testing.T) {
	a := RunIncast(fastIncastOpts(ProtoDCTCPPlus, 12))
	b := RunIncast(fastIncastOpts(ProtoDCTCPPlus, 12))
	if a.GoodputMbps != b.GoodputMbps || a.FCTms != b.FCTms || a.Timeouts != b.Timeouts {
		t.Error("same options produced different results")
	}
}

func TestRunIncastProbes(t *testing.T) {
	o := fastIncastOpts(ProtoDCTCP, 16)
	o.CollectCwnd = true
	o.QueueSampleEvery = 100 * sim.Microsecond
	r := RunIncast(o)
	if r.CwndHist == nil || r.CwndHist.Total() == 0 {
		t.Fatal("no cwnd histogram")
	}
	if len(r.QueueSamples) == 0 {
		t.Fatal("no queue samples")
	}
	cdf := r.QueueCDF()
	if cdf.Len() != len(r.QueueSamples) {
		t.Error("CDF size mismatch")
	}
	// With 16 DCTCP flows, queue builds: max sample must exceed K/2.
	if cdf.Quantile(1) < 16<<10 {
		t.Errorf("max queue sample = %.0f, expected pressure near K", cdf.Quantile(1))
	}
}

func TestRunIncastTimeoutTaxonomyPartitions(t *testing.T) {
	o := fastIncastOpts(ProtoTCP, 32)
	o.RTOMin = 10 * sim.Millisecond
	r := RunIncast(o)
	if r.Timeouts == 0 {
		t.Fatal("32-flow TCP incast should time out")
	}
	if r.FLossTO+r.LAckTO != r.Timeouts {
		t.Errorf("taxonomy %d+%d != %d", r.FLossTO, r.LAckTO, r.Timeouts)
	}
	if r.TimeoutRoundFrac <= 0 {
		t.Error("TimeoutRoundFrac zero despite timeouts")
	}
}

func TestRunIncastValidation(t *testing.T) {
	o := fastIncastOpts(ProtoTCP, 4)
	o.WarmupRounds = o.Rounds
	defer func() {
		if recover() == nil {
			t.Error("rounds <= warmup did not panic")
		}
	}()
	RunIncast(o)
}

func TestSweepIncast(t *testing.T) {
	rs := SweepIncast(fastIncastOpts(ProtoDCTCP, 0), []int{2, 4})
	if len(rs) != 2 || rs[0].Flows != 2 || rs[1].Flows != 4 {
		t.Fatalf("sweep shape wrong: %+v", rs)
	}
	var sb strings.Builder
	PrintIncastRows(&sb, rs)
	out := sb.String()
	if !strings.Contains(out, "dctcp") || !strings.Contains(out, "goodput") {
		t.Errorf("row output missing fields:\n%s", out)
	}
}

func TestRunBackgroundIncast(t *testing.T) {
	o := DefaultBackgroundIncastOptions(ProtoDCTCPPlus, 8)
	o.Incast.Rounds = 6
	o.Incast.WarmupRounds = 2
	o.ChunkBytes = 1 << 20
	r := RunBackgroundIncast(o)
	if r.Rounds != 4 {
		t.Fatalf("rounds = %d", r.Rounds)
	}
	if len(r.PerFlowMeanMbps) != 2 {
		t.Fatalf("long flows = %d", len(r.PerFlowMeanMbps))
	}
	if r.LongFlowMbps.Count == 0 {
		t.Fatal("no long-flow chunks completed")
	}
	// Two long flows + incast share 1Gbps: each long flow gets a share but
	// not the whole link.
	for i, m := range r.PerFlowMeanMbps {
		if m <= 0 || m > 1000 {
			t.Errorf("long flow %d mean = %.0f Mbps", i, m)
		}
	}
	var sb strings.Builder
	PrintBackgroundIncastRows(&sb, []BackgroundIncastResult{r})
	if !strings.Contains(sb.String(), "longflow") {
		t.Error("row output missing longflow column")
	}
}

func TestRunBackgroundIncastValidation(t *testing.T) {
	o := DefaultBackgroundIncastOptions(ProtoDCTCP, 4)
	o.BackgroundFlows = 100
	defer func() {
		if recover() == nil {
			t.Error("too many background flows did not panic")
		}
	}()
	RunBackgroundIncast(o)
}

func TestRunBenchmark(t *testing.T) {
	o := DefaultBenchmarkOptions(ProtoDCTCP)
	o.Traffic.Queries = 30
	o.Traffic.BackgroundFlows = 30
	o.Traffic.BackgroundMaxBytes = 1 << 20
	r := RunBenchmark(o)
	if r.Queries != 30 || r.Background != 30 {
		t.Fatalf("completed %d queries, %d background", r.Queries, r.Background)
	}
	if r.QueryFCTms.Mean <= 0 || r.BackgroundFCTms.Mean <= 0 {
		t.Error("non-positive FCT summaries")
	}
	var sb strings.Builder
	PrintBenchmarkRows(&sb, []BenchmarkResult{r})
	if !strings.Contains(sb.String(), "q.p99") {
		t.Error("row output missing columns")
	}
}

func TestKeepRoundsAndConvergence(t *testing.T) {
	o := fastIncastOpts(ProtoDCTCPPlus, 48)
	o.Rounds = 10
	o.WarmupRounds = 2
	o.KeepRounds = true
	r := RunIncast(o)
	if len(r.Series) != 10 {
		t.Fatalf("series = %d rounds, want all 10", len(r.Series))
	}
	for i, p := range r.Series {
		if p.FCTms <= 0 || p.GoodputMbps <= 0 {
			t.Errorf("round %d degenerate: %+v", i, p)
		}
		if i > 0 && p.Start <= r.Series[i-1].Start {
			t.Errorf("round %d start not increasing", i)
		}
	}
	// 48 DCTCP+ flows converge within a handful of rounds.
	if c := r.ConvergedAtRound(); c < 0 || c > 6 {
		t.Errorf("ConvergedAtRound = %d, want early convergence", c)
	}
}

func TestConvergedAtRoundEdgeCases(t *testing.T) {
	if (IncastResult{}).ConvergedAtRound() != -1 {
		t.Error("no series should report -1")
	}
	r := IncastResult{Series: []RoundPoint{{FlowTimeouts: 1}, {FlowTimeouts: 0}}}
	if r.ConvergedAtRound() != 1 {
		t.Error("want convergence at round 1")
	}
	r = IncastResult{Series: []RoundPoint{{FlowTimeouts: 0}, {FlowTimeouts: 2}}}
	if r.ConvergedAtRound() != -1 {
		t.Error("timeout in last round should report -1")
	}
	r = IncastResult{Series: []RoundPoint{{}, {}}}
	if r.ConvergedAtRound() != 0 {
		t.Error("never-timed-out run converges at round 0")
	}
}

func TestTestbedBuild(t *testing.T) {
	tb := DefaultTestbed()
	sched, tt := tb.build()
	if sched == nil || len(tt.Workers) != 9 {
		t.Fatal("testbed shape wrong")
	}
}

func TestHULLTestbedKeepsQueueNearEmpty(t *testing.T) {
	// DCTCP over HULL phantom queues: marks arrive before real queueing,
	// so the bottleneck queue's p99 sits far below the standard testbed's
	// K=32KB oscillation.
	std := fastIncastOpts(ProtoDCTCP, 16)
	std.QueueSampleEvery = 100 * sim.Microsecond
	base := RunIncast(std)

	hull := fastIncastOpts(ProtoDCTCP, 16)
	hull.Testbed = HULLTestbed()
	hull.QueueSampleEvery = 100 * sim.Microsecond
	h := RunIncast(hull)

	bp99 := base.QueueCDF().Quantile(0.99)
	hp99 := h.QueueCDF().Quantile(0.99)
	if hp99 >= bp99/2 {
		t.Errorf("HULL p99 queue %.0f vs standard %.0f: want far smaller", hp99, bp99)
	}
	// The bandwidth tax: HULL goodput sits below standard but remains
	// functional.
	if h.GoodputMbps.Mean < 300 {
		t.Errorf("HULL goodput %.0f collapsed", h.GoodputMbps.Mean)
	}
	if h.GoodputMbps.Mean > base.GoodputMbps.Mean {
		t.Errorf("HULL goodput %.0f above standard %.0f: the phantom tax vanished",
			h.GoodputMbps.Mean, base.GoodputMbps.Mean)
	}
}

func TestPerFlowBytesOverride(t *testing.T) {
	o := DefaultIncastOptions(ProtoDCTCP, 10)
	if o.perFlowBytes() != (1<<20)/10 {
		t.Errorf("split = %d", o.perFlowBytes())
	}
	o.BytesPerFlow = 4 << 20
	if o.perFlowBytes() != 4<<20 {
		t.Errorf("override = %d", o.perFlowBytes())
	}
	o.BytesPerFlow = 0
	o.TotalBytes = 5
	o.Flows = 10
	if o.perFlowBytes() != 1 {
		t.Error("sub-byte split should clamp to 1")
	}
}
