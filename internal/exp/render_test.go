package exp

import (
	"strings"
	"testing"

	"dctcpplus/internal/stats"
)

func TestPrintBenchmarkRowsWithShorts(t *testing.T) {
	rows := []BenchmarkResult{
		{
			Protocol:        ProtoDCTCPPlus,
			Queries:         10,
			QueryFCTms:      stats.Summarize([]float64{1, 2}),
			Short:           5,
			ShortFCTms:      stats.Summarize([]float64{3, 4}),
			Background:      10,
			BackgroundFCTms: stats.Summarize([]float64{5, 6}),
		},
	}
	var sb strings.Builder
	PrintBenchmarkRows(&sb, rows)
	out := sb.String()
	for _, col := range []string{"short", "s.mean", "s.p99"} {
		if !strings.Contains(out, col) {
			t.Errorf("missing column %q in:\n%s", col, out)
		}
	}
}

func TestPrintBenchmarkRowsWithoutShorts(t *testing.T) {
	rows := []BenchmarkResult{{Protocol: ProtoDCTCP, Queries: 1}}
	var sb strings.Builder
	PrintBenchmarkRows(&sb, rows)
	if strings.Contains(sb.String(), "s.mean") {
		t.Error("shorts columns rendered without short flows")
	}
}

func TestHULLTestbedConfig(t *testing.T) {
	tb := HULLTestbed()
	if tb.Topo.SwitchPort.Policy == 0 {
		t.Error("HULL testbed did not select phantom marking")
	}
	if tb.Topo.SwitchPort.PhantomDrainFactor != 0.95 {
		t.Error("HULL drain factor wrong")
	}
}
