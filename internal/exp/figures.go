package exp

import (
	"fmt"
	"io"

	"dctcpplus/internal/sim"
	"dctcpplus/internal/telemetry"
)

// This file packages each of the paper's evaluation artifacts as a typed,
// self-describing experiment: construct the default spec (or adjust its
// fields), Run it, and Render the same rows/series the paper reports.
// cmd/report chains them; tests pin their shapes.

// Scale applies common run-length settings to every figure spec.
type Scale struct {
	Rounds int
	Warmup int
	Seed   uint64

	// Telemetry, when non-nil, is threaded into every run of the figure;
	// atomic instruments make one registry safe across the parallel sweeps.
	Telemetry *telemetry.Registry
}

// DefaultScale balances statistical stability against runtime; the paper's
// own 1000-round scale is Scale{1000, 10, 1}.
func DefaultScale() Scale { return Scale{Rounds: 50, Warmup: 10, Seed: 1} }

func (sc Scale) apply(o *IncastOptions) {
	o.Rounds = sc.Rounds
	o.WarmupRounds = sc.Warmup
	o.Testbed.Seed = sc.Seed
	o.Telemetry = sc.Telemetry
}

// Figure1 is the basic incast goodput comparison (DCTCP vs TCP).
type Figure1 struct {
	Scale      Scale
	Protocols  []Protocol
	FlowCounts []int

	Results []IncastResult
}

// NewFigure1 returns the paper's Figure 1 specification.
func NewFigure1() *Figure1 {
	return &Figure1{
		Scale:      DefaultScale(),
		Protocols:  []Protocol{ProtoTCP, ProtoDCTCP},
		FlowCounts: []int{1, 5, 10, 20, 30, 40, 60, 80, 100},
	}
}

// Run executes the sweep (points in parallel).
func (f *Figure1) Run() {
	f.Results = f.Results[:0]
	for _, p := range f.Protocols {
		o := DefaultIncastOptions(p, 0)
		f.Scale.apply(&o)
		f.Results = append(f.Results, SweepIncastParallel(o, f.FlowCounts)...)
	}
}

// Render writes the figure's rows.
func (f *Figure1) Render(w io.Writer) { PrintIncastRows(w, f.Results) }

// Figure2Table1 is the cwnd-distribution and timeout-taxonomy analysis.
type Figure2Table1 struct {
	Scale      Scale
	Protocols  []Protocol
	FlowCounts []int

	Results []IncastResult
}

// NewFigure2Table1 returns the paper's Figure 2 / Table I specification.
func NewFigure2Table1() *Figure2Table1 {
	return &Figure2Table1{
		Scale:      DefaultScale(),
		Protocols:  []Protocol{ProtoDCTCP, ProtoTCP},
		FlowCounts: []int{10, 20, 40, 60},
	}
}

// Run executes every (protocol, N) point with cwnd probes attached.
func (f *Figure2Table1) Run() {
	var optList []IncastOptions
	for _, p := range f.Protocols {
		for _, n := range f.FlowCounts {
			o := DefaultIncastOptions(p, n)
			f.Scale.apply(&o)
			o.CollectCwnd = true
			optList = append(optList, o)
		}
	}
	f.Results = RunMany(optList)
}

// Render writes both the Figure 2 histogram rows and the Table I
// percentages.
func (f *Figure2Table1) Render(w io.Writer) {
	fmt.Fprintf(w, "%-12s %4s |", "protocol", "N")
	for i := 1; i <= 8; i++ {
		fmt.Fprintf(w, " w=%-4d", i)
	}
	fmt.Fprintf(w, " %s\n", "w>8")
	for _, r := range f.Results {
		h := r.CwndHist
		var gt float64
		for _, b := range h.Bins() {
			if b > 8 {
				gt += h.Frac(b)
			}
		}
		fmt.Fprintf(w, "%-12s %4d |", r.Protocol, r.Flows)
		for i := 1; i <= 8; i++ {
			fmt.Fprintf(w, " %5.3f", h.Frac(i))
		}
		fmt.Fprintf(w, " %5.3f\n", gt)
	}
	fmt.Fprintf(w, "\n%-12s %4s %14s %10s %10s %10s\n",
		"protocol", "N", "cwndMin&ECE", "timeout", "FLoss-TO", "LAck-TO")
	for _, r := range f.Results {
		tot := r.FLossTO + r.LAckTO
		fl, la := 0.0, 0.0
		if tot > 0 {
			fl = 100 * float64(r.FLossTO) / float64(tot)
			la = 100 * float64(r.LAckTO) / float64(tot)
		}
		fmt.Fprintf(w, "%-12s %4d %13.2f%% %9.2f%% %9.2f%% %9.2f%%\n",
			r.Protocol, r.Flows, 100*r.MinCwndECEFrac, 100*r.TimeoutRoundFrac, fl, la)
	}
}

// Figure7 is the headline comparison (also covers Figure 6 via the partial
// protocol and Figure 8 via BaselineRTOMin).
type Figure7 struct {
	Scale      Scale
	Protocols  []Protocol
	FlowCounts []int
	// BaselineRTOMin, when nonzero, applies to every protocol except
	// DCTCP+ variants — the Figure 8 configuration.
	BaselineRTOMin sim.Duration

	Results []IncastResult
}

// NewFigure7 returns the paper's Figure 7 specification.
func NewFigure7() *Figure7 {
	return &Figure7{
		Scale:      DefaultScale(),
		Protocols:  []Protocol{ProtoDCTCPPlus, ProtoDCTCP, ProtoTCP},
		FlowCounts: []int{20, 60, 120, 200},
	}
}

// NewFigure6 returns the partial-implementation ablation of Figure 6.
func NewFigure6() *Figure7 {
	f := NewFigure7()
	f.Protocols = []Protocol{ProtoDCTCPPlusPartial, ProtoDCTCPPlus}
	return f
}

// NewFigure8 returns Figure 8: baselines at RTOmin = 10ms.
func NewFigure8() *Figure7 {
	f := NewFigure7()
	f.BaselineRTOMin = 10 * sim.Millisecond
	return f
}

// Run executes the sweeps.
func (f *Figure7) Run() {
	f.Results = f.Results[:0]
	for _, p := range f.Protocols {
		o := DefaultIncastOptions(p, 0)
		f.Scale.apply(&o)
		if f.BaselineRTOMin > 0 && p != ProtoDCTCPPlus && p != ProtoDCTCPPlusPartial {
			o.RTOMin = f.BaselineRTOMin
		}
		f.Results = append(f.Results, SweepIncastParallel(o, f.FlowCounts)...)
	}
}

// Render writes the figure's rows.
func (f *Figure7) Render(w io.Writer) { PrintIncastRows(w, f.Results) }

// Figure9 is the bottleneck queue-length CDF comparison.
type Figure9 struct {
	Scale       Scale
	Protocols   []Protocol
	FlowCounts  []int
	SampleEvery sim.Duration

	Results []IncastResult
}

// NewFigure9 returns the paper's Figure 9 specification.
func NewFigure9() *Figure9 {
	return &Figure9{
		Scale:       DefaultScale(),
		Protocols:   []Protocol{ProtoDCTCPPlus, ProtoDCTCP, ProtoTCP},
		FlowCounts:  []int{30, 50, 80},
		SampleEvery: 100 * sim.Microsecond,
	}
}

// Run executes every point with the queue sampler attached.
func (f *Figure9) Run() {
	var optList []IncastOptions
	for _, n := range f.FlowCounts {
		for _, p := range f.Protocols {
			o := DefaultIncastOptions(p, n)
			f.Scale.apply(&o)
			o.QueueSampleEvery = f.SampleEvery
			optList = append(optList, o)
		}
	}
	f.Results = RunMany(optList)
}

// Render writes queue-CDF quantile rows.
func (f *Figure9) Render(w io.Writer) {
	fmt.Fprintf(w, "%-14s %4s | %9s %9s %9s %9s %9s\n",
		"protocol", "N", "p25", "p50", "p90", "p99", "max")
	for _, r := range f.Results {
		cdf := r.QueueCDF()
		fmt.Fprintf(w, "%-14s %4d | %9.0f %9.0f %9.0f %9.0f %9.0f\n",
			r.Protocol, r.Flows, cdf.Quantile(0.25), cdf.Quantile(0.5),
			cdf.Quantile(0.9), cdf.Quantile(0.99), cdf.Quantile(1))
	}
}

// Figure11_12 is the incast-with-background-flows experiment.
type Figure11_12 struct {
	Scale           Scale
	Protocols       []Protocol
	FlowCounts      []int
	BackgroundFlows int
	ChunkBytes      int64

	Results []BackgroundIncastResult
}

// NewFigure11_12 returns the paper's §VI-C specification.
func NewFigure11_12() *Figure11_12 {
	return &Figure11_12{
		Scale:           DefaultScale(),
		Protocols:       []Protocol{ProtoDCTCPPlus, ProtoDCTCP, ProtoTCP},
		FlowCounts:      []int{20, 60, 120},
		BackgroundFlows: 2,
		ChunkBytes:      1 << 20,
	}
}

// Run executes the sweeps.
func (f *Figure11_12) Run() {
	f.Results = f.Results[:0]
	for _, p := range f.Protocols {
		o := DefaultBackgroundIncastOptions(p, 0)
		f.Scale.apply(&o.Incast)
		o.BackgroundFlows = f.BackgroundFlows
		o.ChunkBytes = f.ChunkBytes
		f.Results = append(f.Results, SweepBackgroundIncastParallel(o, f.FlowCounts)...)
	}
}

// Render writes the figure's rows.
func (f *Figure11_12) Render(w io.Writer) { PrintBackgroundIncastRows(w, f.Results) }

// Figure13 is the production benchmark-traffic experiment.
type Figure13 struct {
	Protocols  []Protocol
	Queries    int
	Background int
	RTOMin     sim.Duration
	Seed       uint64

	Results []BenchmarkResult
}

// NewFigure13 returns the paper's §VI-D specification at reduced scale
// (the paper runs 7,000 + 7,000).
func NewFigure13() *Figure13 {
	return &Figure13{
		Protocols:  []Protocol{ProtoDCTCPPlus, ProtoDCTCP},
		Queries:    1000,
		Background: 1000,
		RTOMin:     10 * sim.Millisecond,
		Seed:       1,
	}
}

// Run executes the benchmark for each protocol. Short messages scale with
// the query count so every class spans comparable virtual time.
func (f *Figure13) Run() {
	f.Results = f.Results[:0]
	for _, p := range f.Protocols {
		o := DefaultBenchmarkOptions(p)
		o.RTOMin = f.RTOMin
		o.Testbed.Seed = f.Seed
		o.Traffic.Queries = f.Queries
		o.Traffic.ShortFlows = f.Queries / 4
		o.Traffic.BackgroundFlows = f.Background
		f.Results = append(f.Results, RunBenchmark(o))
	}
}

// Render writes the figure's rows.
func (f *Figure13) Render(w io.Writer) { PrintBenchmarkRows(w, f.Results) }

// Figure14 is the convergence trace: 50 DCTCP+ flows at 4MB each.
type Figure14 struct {
	Scale        Scale
	Flows        int
	BytesPerFlow int64
	Rounds       int

	Result IncastResult
}

// NewFigure14 returns the paper's Figure 14 specification.
func NewFigure14() *Figure14 {
	return &Figure14{
		Scale:        DefaultScale(),
		Flows:        50,
		BytesPerFlow: 4 << 20,
		Rounds:       8,
	}
}

// Run executes the trace.
func (f *Figure14) Run() {
	o := DefaultIncastOptions(ProtoDCTCPPlus, f.Flows)
	o.BytesPerFlow = f.BytesPerFlow
	o.Rounds = f.Rounds
	o.WarmupRounds = 1
	o.Testbed.Seed = f.Scale.Seed
	o.Telemetry = f.Scale.Telemetry
	o.KeepRounds = true
	o.QueueSampleEvery = 100 * sim.Microsecond
	f.Result = RunIncast(o)
}

// Render writes the per-round series and the convergence verdict.
func (f *Figure14) Render(w io.Writer) {
	for i, p := range f.Result.Series {
		fmt.Fprintf(w, "round %d: fct=%8.1fms goodput=%5.0f Mbps flowTimeouts=%d\n",
			i, p.FCTms, p.GoodputMbps, p.FlowTimeouts)
	}
	fmt.Fprintf(w, "converged at round %d; bottleneck drops %d\n",
		f.Result.ConvergedAtRound(), f.Result.BottleneckDrops)
}
