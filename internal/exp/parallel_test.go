package exp

import (
	"testing"
)

func TestParallelSweepMatchesSequential(t *testing.T) {
	base := fastIncastOpts(ProtoDCTCPPlus, 0)
	counts := []int{4, 8, 12}
	seq := SweepIncast(base, counts)
	par := SweepIncastParallel(base, counts)
	if len(seq) != len(par) {
		t.Fatal("length mismatch")
	}
	for i := range seq {
		if seq[i].GoodputMbps != par[i].GoodputMbps ||
			seq[i].FCTms != par[i].FCTms ||
			seq[i].Timeouts != par[i].Timeouts {
			t.Errorf("point %d differs: seq %+v vs par %+v", i, seq[i].GoodputMbps, par[i].GoodputMbps)
		}
	}
}

// TestParallelismOneMatchesDefault pins the consolidation contract: the
// exp-level sweeps ride the shared pool (internal/sweep/pool), and results
// must be independent of its width.
func TestParallelismOneMatchesDefault(t *testing.T) {
	base := fastIncastOpts(ProtoDCTCP, 0)
	counts := []int{4, 8}
	wide := SweepIncastParallel(base, counts)
	old := Parallelism
	Parallelism = 1
	defer func() { Parallelism = old }()
	narrow := SweepIncastParallel(base, counts)
	for i := range wide {
		if wide[i].GoodputMbps != narrow[i].GoodputMbps || wide[i].Timeouts != narrow[i].Timeouts {
			t.Errorf("point %d differs across pool widths", i)
		}
	}
}

func TestRunMany(t *testing.T) {
	optList := []IncastOptions{
		fastIncastOpts(ProtoDCTCP, 4),
		fastIncastOpts(ProtoDCTCPPlus, 6),
	}
	out := RunMany(optList)
	if len(out) != 2 {
		t.Fatal("length")
	}
	if out[0].Protocol != ProtoDCTCP || out[0].Flows != 4 {
		t.Error("point 0 identity wrong")
	}
	if out[1].Protocol != ProtoDCTCPPlus || out[1].Flows != 6 {
		t.Error("point 1 identity wrong")
	}
}

func TestParallelBackgroundSweep(t *testing.T) {
	o := DefaultBackgroundIncastOptions(ProtoDCTCPPlus, 0)
	o.Incast.Rounds = 5
	o.Incast.WarmupRounds = 1
	o.ChunkBytes = 1 << 20
	rs := SweepBackgroundIncastParallel(o, []int{4, 6})
	if len(rs) != 2 || rs[0].Flows != 4 || rs[1].Flows != 6 {
		t.Fatal("shape wrong")
	}
}
