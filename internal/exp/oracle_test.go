package exp

import (
	"reflect"
	"strings"
	"testing"

	"dctcpplus/internal/fault"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

// failViolations reports a run's oracle violations with their minimized
// event windows.
func failViolations(t *testing.T, label string, res IncastResult) {
	t.Helper()
	if res.OracleTotal == 0 {
		return
	}
	t.Errorf("%s: %d oracle violations", label, res.OracleTotal)
	for i, v := range res.OracleViolations {
		if i >= 3 {
			t.Logf("  ... (%d more)", len(res.OracleViolations)-i)
			break
		}
		t.Logf("  %v\n    %s", v, strings.Join(v.Window, "\n    "))
	}
}

// TestOracleMatrix runs every protocol under the clean baseline and each
// fault class in isolation — the full resilience sweep, N=64 (deep in the
// massive-incast regime, so TCP and DCTCP hit real RTOs and NewReno
// recovery) — and requires the whole matrix oracle-clean. The fault rows
// auto-calibrate their episode windows to each protocol's run span (see
// ResilienceOptions.Gen), so every cell's pathology actually overlaps
// traffic.
func TestOracleMatrix(t *testing.T) {
	base := DefaultIncastOptions(ProtoDCTCP, 64)
	base.Rounds = 5
	base.WarmupRounds = 1
	base.Oracle = true
	rows := RunResilience(ResilienceOptions{
		Base:      base,
		Protocols: Protocols,
		Gen:       fault.GenConfig{Seed: 11, LossRate: 0.2},
	})
	var stressed bool
	for _, row := range rows {
		for c, res := range row.Results {
			failViolations(t, row.Label+"/"+Protocols[c].String(), res)
			if row.Label != "none" && (res.FaultStats == nil || res.FaultStats.EventsFired == 0) {
				t.Errorf("%s/%s: no fault events fired; the cell is vacuous", row.Label, Protocols[c])
			}
			if res.Timeouts > 0 {
				stressed = true
			}
		}
	}
	if !stressed {
		t.Error("no cell saw an RTO; the matrix never exercised loss recovery")
	}
}

// TestOracleResilienceReportScale pins the cmd/report resilience operating
// point (N=150, RTOmin 10ms): at this fan-in the stall fault makes RTOs
// fire while the timed-out window still sits queued at worker uplinks, and
// the go-back-N copy serializes after the delayed original — legal, and
// formerly a retrans-legality false positive (the RTO grant stopped at the
// wire-observed frontier instead of the pre-rewind snd_nxt).
func TestOracleResilienceReportScale(t *testing.T) {
	base := DefaultIncastOptions(ProtoDCTCP, 150)
	base.Rounds = 10
	base.WarmupRounds = 2
	base.RTOMin = 10 * sim.Millisecond
	base.Oracle = true
	rows := RunResilience(ResilienceOptions{
		Base:      base,
		Protocols: []Protocol{ProtoDCTCP, ProtoDCTCPPlus},
		Gen:       fault.GenConfig{Seed: 1},
	})
	protos := []Protocol{ProtoDCTCP, ProtoDCTCPPlus}
	for _, row := range rows {
		for c, res := range row.Results {
			failViolations(t, row.Label+"/"+protos[c].String(), res)
		}
	}
}

// TestOracleMetamorphicFlowPermutation: flow ids are opaque demux keys, so
// relabeling them must leave every result — clean or faulted — identical.
func TestOracleMetamorphicFlowPermutation(t *testing.T) {
	const n = 12
	perm := make([]packet.FlowID, n)
	for i := range perm {
		// An arbitrary fixed derangement-ish relabeling with a gap in the
		// id space.
		perm[i] = packet.FlowID((i*5)%n + 100)
	}
	for _, tc := range []struct {
		name   string
		faults bool
	}{{"clean", false}, {"faults", true}} {
		t.Run(tc.name, func(t *testing.T) {
			mk := func(ids []packet.FlowID) IncastResult {
				o := DefaultIncastOptions(ProtoDCTCPPlus, n)
				o.Rounds = 4
				o.WarmupRounds = 1
				o.Oracle = true
				o.KeepRounds = true
				o.FlowIDs = ids
				if tc.faults {
					g := fault.DefaultGenConfig(5)
					o.Faults = &g
				}
				return RunIncast(o)
			}
			base := mk(nil)
			relabeled := mk(perm)
			failViolations(t, "base", base)
			failViolations(t, "relabeled", relabeled)
			if !reflect.DeepEqual(base, relabeled) {
				t.Errorf("flow-id relabeling changed the run:\nbase:      %+v\nrelabeled: %+v", base, relabeled)
			}
		})
	}
}

// TestOracleMetamorphicMirror: the two-tier tree is leaf-symmetric, so on
// a clean run reversing the flow-to-worker placement is a relabeling of
// identical subtrees and the result must be byte-identical.
func TestOracleMetamorphicMirror(t *testing.T) {
	mk := func(mirror bool) IncastResult {
		o := DefaultIncastOptions(ProtoDCTCP, 18)
		o.Rounds = 4
		o.WarmupRounds = 1
		o.Oracle = true
		o.KeepRounds = true
		o.MirrorWorkers = mirror
		return RunIncast(o)
	}
	straight := mk(false)
	mirrored := mk(true)
	failViolations(t, "straight", straight)
	failViolations(t, "mirrored", mirrored)
	if !reflect.DeepEqual(straight, mirrored) {
		t.Errorf("worker mirroring changed the run:\nstraight: %+v\nmirrored: %+v", straight, mirrored)
	}
}

// TestOracleMetamorphicTimeScaling: doubling every latency parameter
// (propagation delay, RTOmin) while halving every rate scales the
// simulation's whole timeline by exactly 2 — int64-nanosecond event times
// double, so per-round FCTs must double bit-exactly. The equivariance only
// holds when no unscaled randomness enters the timeline: service jitter is
// off, and the scenario is sized so no RTO fires (RTO arithmetic involves
// integer shifts that do not commute with doubling) and the DCTCP+
// machine stays out of its randomized backoff. Zero timeouts in both runs
// is asserted, not assumed.
func TestOracleMetamorphicTimeScaling(t *testing.T) {
	for _, p := range []Protocol{ProtoDCTCP, ProtoDCTCPPlus} {
		t.Run(p.String(), func(t *testing.T) {
			mk := func(scale int64) IncastResult {
				o := DefaultIncastOptions(p, 4)
				o.Rounds = 4
				o.WarmupRounds = 1
				o.Oracle = true
				o.KeepRounds = true
				o.Testbed.ServiceJitter = 0
				o.Testbed.Topo.LinkDelay *= sim.Duration(scale)
				o.Testbed.Topo.LinkRateBps /= scale
				o.RTOMin *= sim.Duration(scale)
				return RunIncast(o)
			}
			unit := mk(1)
			doubled := mk(2)
			failViolations(t, "unit", unit)
			failViolations(t, "doubled", doubled)
			if unit.Timeouts != 0 || doubled.Timeouts != 0 {
				t.Fatalf("scenario not timeout-free (unit %d, doubled %d); scaling exactness does not apply",
					unit.Timeouts, doubled.Timeouts)
			}
			if len(unit.Series) == 0 || len(unit.Series) != len(doubled.Series) {
				t.Fatalf("round series mismatch: %d vs %d", len(unit.Series), len(doubled.Series))
			}
			for i := range unit.Series {
				if doubled.Series[i].FCTms != 2*unit.Series[i].FCTms {
					t.Errorf("round %d: FCT %vms scaled to %vms, want exactly 2x",
						i, unit.Series[i].FCTms, doubled.Series[i].FCTms)
				}
			}
		})
	}
}

// TestOracleOffLeavesResultUnchanged: the checker is a pure observer — a
// run with it attached must report the same experiment numbers as one
// without (modulo the oracle fields themselves and the post-run drain).
func TestOracleOffLeavesResultUnchanged(t *testing.T) {
	mk := func(on bool) IncastResult {
		o := DefaultIncastOptions(ProtoDCTCPPlus, 8)
		o.Rounds = 3
		o.WarmupRounds = 1
		o.KeepRounds = true
		o.Oracle = on
		return RunIncast(o)
	}
	off := mk(false)
	on := mk(true)
	failViolations(t, "on", on)
	on.OracleViolations = nil
	on.OracleTotal = 0
	on.SimTime = off.SimTime // the oracle run drains 100ms extra
	if !reflect.DeepEqual(off, on) {
		t.Errorf("attaching the oracle changed the experiment:\noff: %+v\non:  %+v", off, on)
	}
}
