package exp

import (
	"strconv"

	"dctcpplus/internal/netsim"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/tcp"
	"dctcpplus/internal/telemetry"
)

// This file wires a telemetry.Registry through every hot layer of an
// experiment run: switch ports, senders, congestion-control modules and the
// workload. All attachments share the {proto, flows} base label set, so one
// registry accumulates an aggregated view per experiment point; a sweep
// reusing the registry keeps the points apart through the flows label.

// pointLabels returns the base label set identifying one experiment point.
func pointLabels(proto Protocol, flows int) []telemetry.Label {
	return []telemetry.Label{
		telemetry.L("proto", proto.String()),
		telemetry.L("flows", strconv.Itoa(flows)),
	}
}

// withLabel copies base and appends one extra pair (Registry lookups sort
// labels, so order is cosmetic).
func withLabel(base []telemetry.Label, key, value string) []telemetry.Label {
	return append(append([]telemetry.Label(nil), base...), telemetry.L(key, value))
}

// attachRunTelemetry attaches every port of the topology (the bottleneck
// port separated out by the port label) and every connection's sender and
// congestion-control module. It returns the base label set for further
// attachments (workloads). A nil registry attaches nothing: the layers'
// instruments stay nil no-ops.
func attachRunTelemetry(reg *telemetry.Registry, tt *netsim.TwoTier, conns []*tcp.Conn, proto Protocol, flows int) []telemetry.Label {
	base := pointLabels(proto, flows)
	if reg == nil {
		return base
	}
	switches := append([]*netsim.Switch{tt.Root}, tt.Leaves...)
	for _, sw := range switches {
		for _, p := range sw.Ports() {
			role := "other"
			if p == tt.BottleneckPort {
				role = "bottleneck"
			}
			p.AttachTelemetry(reg, withLabel(base, "port", role)...)
		}
	}
	attachConnTelemetry(reg, conns, base)
	return base
}

// attachConnTelemetry attaches the senders (and their congestion-control
// modules, when they support telemetry) of the given connections.
func attachConnTelemetry(reg *telemetry.Registry, conns []*tcp.Conn, base []telemetry.Label) {
	if reg == nil {
		return
	}
	for _, c := range conns {
		c.Sender.AttachTelemetry(reg, base...)
		if a, ok := c.Sender.CC().(telemetry.Attacher); ok {
			a.AttachTelemetry(reg, base...)
		}
	}
}

// finishRunTelemetry closes a run: it advances the registry's virtual-time
// high-water mark to the scheduler's final instant and flushes any
// congestion-control state that accumulates over open intervals (the DCTCP+
// state-occupancy accounting).
func finishRunTelemetry(reg *telemetry.Registry, now sim.Time, conns []*tcp.Conn) {
	if reg == nil {
		return
	}
	reg.AdvanceSimTime(now)
	for _, c := range conns {
		if f, ok := c.Sender.CC().(telemetry.Flusher); ok {
			f.FlushTelemetry(now)
		}
	}
}
