package fault

import (
	"dctcpplus/internal/sim"
)

// GenConfig parameterizes Generate: a seeded distribution over fault
// episodes. Every random choice — target element, start time, duration,
// loss-stream seed — is drawn from one splitmix64 stream seeded with Seed,
// in a fixed order, so the resulting Plan is a pure function of the config
// and the element counts.
type GenConfig struct {
	// Seed drives all generation randomness (and the per-link loss
	// streams, which are seeded from it).
	Seed uint64

	// Classes selects which fault families to generate, applied in the
	// given order. Nil/empty means every class.
	Classes []Class

	// Episodes is the number of fault episodes generated per class.
	Episodes int

	// Start is the earliest episode start; episodes begin uniformly in
	// [Start, Start+Window). Leave Start past the warmup rounds so the
	// perturbation hits a converged system.
	Start  sim.Time
	Window sim.Duration

	// Dur is the nominal episode length; each episode lasts
	// Dur/2 + uniform[0, Dur) — bounded jitter around Dur.
	Dur sim.Duration

	// LossRate is the drop probability during ClassLoss episodes.
	LossRate float64
	// RateScale is the degraded rate multiplier during ClassRate episodes
	// (e.g. 0.1 = link falls to 10% of nominal).
	RateScale float64
	// DelayScale is the propagation-delay multiplier during ClassDelay
	// episodes (e.g. 8 = 8x nominal).
	DelayScale float64
	// BufferScale is the buffer/threshold multiplier during ClassBuffer
	// episodes (e.g. 0.25 = buffer and K fall to a quarter).
	BufferScale float64
}

// DefaultGenConfig returns a moderate fault mix: two 10ms-scale episodes
// per class spread over [20ms, 220ms) — deep enough into a standard run to
// hit a converged system, severe enough (5% loss, 10x rate drop, 8x delay,
// quarter buffers) that an unprotected transport visibly degrades.
func DefaultGenConfig(seed uint64) GenConfig {
	return GenConfig{
		Seed:        seed,
		Episodes:    2,
		Start:       sim.Time(20 * sim.Millisecond),
		Window:      200 * sim.Millisecond,
		Dur:         10 * sim.Millisecond,
		LossRate:    0.05,
		RateScale:   0.1,
		DelayScale:  8,
		BufferScale: 0.25,
	}
}

// withDefaults fills zero-valued knobs from DefaultGenConfig (Seed and
// Classes are taken as given).
func (c GenConfig) withDefaults() GenConfig {
	d := DefaultGenConfig(c.Seed)
	if c.Episodes <= 0 {
		c.Episodes = d.Episodes
	}
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.Dur <= 0 {
		c.Dur = d.Dur
	}
	if c.LossRate <= 0 {
		c.LossRate = d.LossRate
	}
	if c.RateScale <= 0 {
		c.RateScale = d.RateScale
	}
	if c.DelayScale <= 0 {
		c.DelayScale = d.DelayScale
	}
	if c.BufferScale <= 0 {
		c.BufferScale = d.BufferScale
	}
	return c
}

// Generate builds a Plan from the seeded distribution for a topology with
// the given element counts (see Elements). Classes whose target family is
// empty (e.g. ClassStall with no hosts) generate nothing. The plan is
// deterministic: same config + same counts => identical events.
func Generate(cfg GenConfig, nLinks, nPorts, nHosts int) Plan {
	cfg = cfg.withDefaults()
	classes := cfg.Classes
	if len(classes) == 0 {
		classes = AllClasses()
	}
	rng := sim.NewRNG(cfg.Seed ^ 0xfa17)
	var plan Plan
	for _, class := range classes {
		for ep := 0; ep < cfg.Episodes; ep++ {
			from := cfg.Start.Add(rng.Duration(cfg.Window))
			dur := cfg.Dur/2 + rng.Duration(cfg.Dur)
			switch class {
			case ClassBlackout:
				if nLinks > 0 {
					plan.AddBlackout(rng.Intn(nLinks), from, dur)
				}
			case ClassLoss:
				if nLinks > 0 {
					link := rng.Intn(nLinks)
					seed := rng.Uint64()
					plan.AddLoss(link, from, cfg.LossRate, seed)
					plan.AddLoss(link, from.Add(dur), 0, seed)
				}
			case ClassRate:
				if nLinks > 0 {
					plan.AddRateWindow(rng.Intn(nLinks), from, dur, cfg.RateScale)
				}
			case ClassDelay:
				if nLinks > 0 {
					plan.AddDelayWindow(rng.Intn(nLinks), from, dur, cfg.DelayScale)
				}
			case ClassBuffer:
				if nPorts > 0 {
					plan.AddBufferWindow(rng.Intn(nPorts), from, dur, cfg.BufferScale)
				}
			case ClassStall:
				if nHosts > 0 {
					plan.AddStall(rng.Intn(nHosts), from, dur)
				}
			default:
				panic("fault: unknown class")
			}
		}
	}
	return plan
}
