// Package fault is the deterministic fault-injection layer of the testbed:
// a schedulable Plan of timed events that perturb the netsim substrate
// mid-run — link blackouts and flaps, rate and propagation-delay changes,
// switch buffer and ECN-threshold resizing, seeded random loss, and host
// stall windows (GC-pause-style sender freezes).
//
// The paper's claim is robustness under pathology, but the clean testbed
// only exercises perfect links and static buffers. "Disentangling Flaws in
// Linux DCTCP" (PAPERS.md) shows real deployments break in exactly the
// messy conditions a clean testbed never models: loss not caused by
// marking, asymmetric paths, parameter drift. This package opens that
// scenario space without giving up the determinism contract from the
// simulation core: every fault is applied from a sim.Scheduler callback on
// the single simulation thread, and every random choice (in Generate and
// in the injected loss streams) is drawn from seeded sim.RNG streams — so
// a run remains a pure function of its configuration, seed and Plan.
package fault

import (
	"fmt"
	"sort"
	"strings"

	"dctcpplus/internal/netsim"
	"dctcpplus/internal/sim"
)

// Class names a family of faults, the unit of the resilience sweeps: each
// class answers "how does the protocol degrade under this pathology?".
type Class int

const (
	// ClassBlackout takes links fully down for a window (down/up flaps).
	ClassBlackout Class = iota
	// ClassLoss adds independent seeded random packet loss on links —
	// loss the marking loop did not cause and cannot explain.
	ClassLoss
	// ClassRate degrades link rates mid-run (auto-negotiation fallback,
	// oversubscribed trunks).
	ClassRate
	// ClassDelay inflates propagation delays mid-run (reroutes, path
	// asymmetry).
	ClassDelay
	// ClassBuffer resizes switch buffers and ECN thresholds mid-run
	// (shared-buffer carving, AQM parameter drift).
	ClassBuffer
	// ClassStall freezes sender hosts for a window (GC pauses, hypervisor
	// preemption).
	ClassStall

	numClasses // sentinel for iteration; keep last
)

// String returns the flag-friendly name of the class.
func (c Class) String() string {
	switch c {
	case ClassBlackout:
		return "blackout"
	case ClassLoss:
		return "loss"
	case ClassRate:
		return "rate"
	case ClassDelay:
		return "delay"
	case ClassBuffer:
		return "buffer"
	case ClassStall:
		return "stall"
	default:
		panic(fmt.Sprintf("fault: unknown class %d", int(c)))
	}
}

// AllClasses returns every fault class in declaration order.
func AllClasses() []Class {
	all := make([]Class, 0, int(numClasses))
	for c := Class(0); c < numClasses; c++ {
		all = append(all, c)
	}
	return all
}

// ParseClass resolves a flag-friendly class name.
func ParseClass(s string) (Class, error) {
	for c := Class(0); c < numClasses; c++ {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown class %q (want one of %s, or \"all\")", s, classNames())
}

// ParseClasses resolves a comma-separated class list; "all" (or "") selects
// every class.
func ParseClasses(s string) ([]Class, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return AllClasses(), nil
	}
	var out []Class
	for _, part := range strings.Split(s, ",") {
		c, err := ParseClass(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// ClassesLabel names a class selection for telemetry labels and table
// rows: the class names joined by "+", or "all" when the selection is
// nil/empty (which Generate treats as every class).
func ClassesLabel(cs []Class) string {
	if len(cs) == 0 {
		return "all"
	}
	names := make([]string, len(cs))
	for i, c := range cs {
		names[i] = c.String()
	}
	return strings.Join(names, "+")
}

func classNames() string {
	names := make([]string, 0, int(numClasses))
	for c := Class(0); c < numClasses; c++ {
		names = append(names, c.String())
	}
	return strings.Join(names, "/")
}

// Op is a primitive mutation of one topology element.
type Op int

const (
	// OpLinkDown blackholes Links[Index] until OpLinkUp.
	OpLinkDown Op = iota
	// OpLinkUp restores Links[Index].
	OpLinkUp
	// OpLinkRate sets Links[Index] to Scale x its nominal rate.
	OpLinkRate
	// OpLinkDelay sets Links[Index] to Scale x its nominal delay.
	OpLinkDelay
	// OpLinkLoss enables seeded random loss on Links[Index] at rate Loss.
	OpLinkLoss
	// OpPortBuffer sets Ports[Index] to Scale x its nominal buffer.
	OpPortBuffer
	// OpPortThreshold sets Ports[Index] to Scale x its nominal ECN mark
	// threshold K.
	OpPortThreshold
	// OpHostStall freezes the uplink of Hosts[Index] until OpHostResume.
	OpHostStall
	// OpHostResume unfreezes the uplink of Hosts[Index].
	OpHostResume
)

// String names the op for plan dumps and error messages.
func (o Op) String() string {
	switch o {
	case OpLinkDown:
		return "link-down"
	case OpLinkUp:
		return "link-up"
	case OpLinkRate:
		return "link-rate"
	case OpLinkDelay:
		return "link-delay"
	case OpLinkLoss:
		return "link-loss"
	case OpPortBuffer:
		return "port-buffer"
	case OpPortThreshold:
		return "port-threshold"
	case OpHostStall:
		return "host-stall"
	case OpHostResume:
		return "host-resume"
	default:
		panic(fmt.Sprintf("fault: unknown op %d", int(o)))
	}
}

// Event is one timed mutation. Scales are relative to the element's
// nominal value recorded by the Injector at Install time, which keeps
// plans topology-agnostic: Scale 1 always means "restore to nominal".
type Event struct {
	At    sim.Time
	Op    Op
	Index int // element index in the Injector's Elements, per op family

	Scale float64 // OpLinkRate/OpLinkDelay/OpPortBuffer/OpPortThreshold
	Loss  float64 // OpLinkLoss: drop probability in [0,1]
	Seed  uint64  // OpLinkLoss: seed of the per-link loss stream
}

// Plan is a list of timed fault events. Events may be appended in any
// order; the Injector applies them in time order (ties in append order).
type Plan struct {
	Events []Event
}

// Empty reports whether the plan has no events.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// sorted returns the events in application order: by At, ties broken by
// append order (stable), so plans are deterministic regardless of how
// their constructors interleaved.
func (p *Plan) sorted() []Event {
	evs := append([]Event(nil), p.Events...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	return evs
}

// AddBlackout takes link down at from and back up after dur.
func (p *Plan) AddBlackout(link int, from sim.Time, dur sim.Duration) {
	p.Events = append(p.Events,
		Event{At: from, Op: OpLinkDown, Index: link},
		Event{At: from.Add(dur), Op: OpLinkUp, Index: link})
}

// AddLoss enables random loss on link at the given time; rate 0 disables.
func (p *Plan) AddLoss(link int, at sim.Time, rate float64, seed uint64) {
	p.Events = append(p.Events, Event{At: at, Op: OpLinkLoss, Index: link, Loss: rate, Seed: seed})
}

// AddRateWindow degrades link to scale x nominal at from, restoring the
// nominal rate after dur.
func (p *Plan) AddRateWindow(link int, from sim.Time, dur sim.Duration, scale float64) {
	p.Events = append(p.Events,
		Event{At: from, Op: OpLinkRate, Index: link, Scale: scale},
		Event{At: from.Add(dur), Op: OpLinkRate, Index: link, Scale: 1})
}

// AddDelayWindow inflates link's propagation delay to scale x nominal at
// from, restoring the nominal delay after dur.
func (p *Plan) AddDelayWindow(link int, from sim.Time, dur sim.Duration, scale float64) {
	p.Events = append(p.Events,
		Event{At: from, Op: OpLinkDelay, Index: link, Scale: scale},
		Event{At: from.Add(dur), Op: OpLinkDelay, Index: link, Scale: 1})
}

// AddBufferWindow resizes port's buffer to scale x nominal at from,
// restoring it after dur. The ECN threshold K is scaled alongside, as a
// shared-buffer carve-out moves both.
func (p *Plan) AddBufferWindow(port int, from sim.Time, dur sim.Duration, scale float64) {
	p.Events = append(p.Events,
		Event{At: from, Op: OpPortBuffer, Index: port, Scale: scale},
		Event{At: from, Op: OpPortThreshold, Index: port, Scale: scale},
		Event{At: from.Add(dur), Op: OpPortBuffer, Index: port, Scale: 1},
		Event{At: from.Add(dur), Op: OpPortThreshold, Index: port, Scale: 1})
}

// AddStall freezes host's uplink at from, resuming after dur.
func (p *Plan) AddStall(host int, from sim.Time, dur sim.Duration) {
	p.Events = append(p.Events,
		Event{At: from, Op: OpHostStall, Index: host},
		Event{At: from.Add(dur), Op: OpHostResume, Index: host})
}

// Elements enumerates the mutable topology elements a plan's indices refer
// to. The enumeration must be deterministic: plans address elements by
// position, so two builds of the same topology must list elements in the
// same order.
type Elements struct {
	Links []*netsim.Link
	Ports []*netsim.Port
	Hosts []*netsim.Host
}

// TwoTierElements enumerates the fault targets of a TwoTier topology in a
// fixed, documented order:
//
//   - Links: each worker's uplink link (worker order), then the root
//     switch's port links (attachment order: aggregator first, then the
//     trunks), then each leaf's port links.
//   - Ports: the switch ports in the same order (root then leaves) — the
//     ports with the paper's 128KB/K=32KB configuration.
//   - Hosts: the workers (stall targets are senders; stalling the
//     aggregator would freeze the request loop itself).
func TwoTierElements(tt *netsim.TwoTier) Elements {
	var el Elements
	for _, w := range tt.Workers {
		el.Links = append(el.Links, w.Uplink().Link())
		el.Hosts = append(el.Hosts, w)
	}
	for _, p := range tt.Root.Ports() {
		el.Links = append(el.Links, p.Link())
		el.Ports = append(el.Ports, p)
	}
	for _, leaf := range tt.Leaves {
		for _, p := range leaf.Ports() {
			el.Links = append(el.Links, p.Link())
			el.Ports = append(el.Ports, p)
		}
	}
	return el
}
