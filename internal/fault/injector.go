package fault

import (
	"fmt"

	"dctcpplus/internal/sim"
	"dctcpplus/internal/telemetry"
)

// Stats totals what a plan actually did to a run. Window totals are closed
// out by Finish; until then, open blackout/stall windows are not counted.
type Stats struct {
	EventsFired int64 // events applied (each Op counts once)

	Blackouts    int64        // down/up windows completed
	BlackoutTime sim.Duration // summed per-link down time
	Stalls       int64        // stall/resume windows completed
	StallTime    sim.Duration // summed per-host frozen time

	// InducedDropPkts/Bytes total the packets destroyed by the fault layer
	// itself (link blackholes + injected random loss) — drops the
	// congestion-control loop did not cause. Switch tail drops under a
	// shrunken buffer still show up in PortStats, as they would on a real
	// switch.
	InducedDropPkts  int64
	InducedDropBytes int64
}

// Injector binds a Plan to the elements of a built topology and applies
// each event from a scheduler callback at its time. All application
// happens on the simulation thread; the injector holds no locks and spawns
// no goroutines, preserving the byte-identical determinism contract.
type Injector struct {
	sched *sim.Scheduler
	el    Elements

	// Nominal values recorded at Install time; Scale in events is relative
	// to these, so Scale 1 restores exactly.
	nomRate   []int64
	nomDelay  []sim.Duration
	nomBuf    []int
	nomThresh []int

	// Open-window bookkeeping, index-aligned with el.Links / el.Hosts.
	downSince  []sim.Time
	downOpen   []bool
	stallSince []sim.Time
	stallOpen  []bool

	stats    Stats
	finished bool

	// Telemetry instruments; nil (no-op) unless AttachTelemetry was called.
	mFired        *telemetry.Counter
	mBlackoutNs   *telemetry.Counter
	mStallNs      *telemetry.Counter
	mInducedPkts  *telemetry.Counter
	mInducedBytes *telemetry.Counter
}

// NewInjector creates an injector over the given topology elements.
func NewInjector(sched *sim.Scheduler, el Elements) *Injector {
	in := &Injector{
		sched:      sched,
		el:         el,
		nomRate:    make([]int64, len(el.Links)),
		nomDelay:   make([]sim.Duration, len(el.Links)),
		nomBuf:     make([]int, len(el.Ports)),
		nomThresh:  make([]int, len(el.Ports)),
		downSince:  make([]sim.Time, len(el.Links)),
		downOpen:   make([]bool, len(el.Links)),
		stallSince: make([]sim.Time, len(el.Hosts)),
		stallOpen:  make([]bool, len(el.Hosts)),
	}
	for i, l := range el.Links {
		in.nomRate[i] = l.RateBps
		in.nomDelay[i] = l.Delay
	}
	for i, p := range el.Ports {
		cfg := p.Config()
		in.nomBuf[i] = cfg.BufferBytes
		in.nomThresh[i] = cfg.MarkThresholdBytes
	}
	return in
}

// AttachTelemetry registers the fault counters on reg: events fired,
// blackout and stall nanoseconds, and fault-induced drops. With a nil
// registry the instruments stay nil and every update is a no-op.
func (in *Injector) AttachTelemetry(reg *telemetry.Registry, labels ...telemetry.Label) {
	in.mFired = reg.Counter("fault_events_fired_total", labels...)
	in.mBlackoutNs = reg.Counter("fault_blackout_ns_total", labels...)
	in.mStallNs = reg.Counter("fault_stall_ns_total", labels...)
	in.mInducedPkts = reg.Counter("fault_induced_drop_pkts_total", labels...)
	in.mInducedBytes = reg.Counter("fault_induced_drop_bytes_total", labels...)
}

// Install validates the plan against the bound elements and schedules one
// callback per event. Events at or before the current simulation time are
// rejected — a plan must be installed before it starts. Install allocates
// (one closure per event); it runs once at setup, never on the per-packet
// hot path.
func (in *Injector) Install(plan Plan) {
	for _, ev := range plan.sorted() {
		in.validate(ev)
		if ev.At < in.sched.Now() {
			panic(fmt.Sprintf("fault: event %s at %v is in the past (now %v)", ev.Op, ev.At, in.sched.Now()))
		}
		ev := ev
		in.sched.At(ev.At, func() { in.apply(ev) })
	}
}

// validate panics on events that reference missing elements or carry
// out-of-range parameters — configuration errors, caught at install time.
func (in *Injector) validate(ev Event) {
	switch ev.Op {
	case OpLinkDown, OpLinkUp:
		in.checkIndex(ev, len(in.el.Links), "link")
	case OpLinkRate, OpLinkDelay:
		in.checkIndex(ev, len(in.el.Links), "link")
		if ev.Scale <= 0 {
			panic(fmt.Sprintf("fault: %s scale must be positive, got %v", ev.Op, ev.Scale))
		}
	case OpLinkLoss:
		in.checkIndex(ev, len(in.el.Links), "link")
		if ev.Loss < 0 || ev.Loss > 1 {
			panic(fmt.Sprintf("fault: loss rate %v out of [0,1]", ev.Loss))
		}
	case OpPortBuffer, OpPortThreshold:
		in.checkIndex(ev, len(in.el.Ports), "port")
		if ev.Scale <= 0 {
			panic(fmt.Sprintf("fault: %s scale must be positive, got %v", ev.Op, ev.Scale))
		}
	case OpHostStall, OpHostResume:
		in.checkIndex(ev, len(in.el.Hosts), "host")
	default:
		panic(fmt.Sprintf("fault: unknown op %d", int(ev.Op)))
	}
}

func (in *Injector) checkIndex(ev Event, n int, kind string) {
	if ev.Index < 0 || ev.Index >= n {
		panic(fmt.Sprintf("fault: %s index %d out of range (have %d %ss)", ev.Op, ev.Index, n, kind))
	}
}

// apply executes one event at its scheduled time.
func (in *Injector) apply(ev Event) {
	now := in.sched.Now()
	switch ev.Op {
	case OpLinkDown:
		if !in.downOpen[ev.Index] {
			in.downOpen[ev.Index] = true
			in.downSince[ev.Index] = now
		}
		in.el.Links[ev.Index].SetDown(true)
	case OpLinkUp:
		if in.downOpen[ev.Index] {
			in.downOpen[ev.Index] = false
			in.stats.Blackouts++
			in.stats.BlackoutTime += now.Sub(in.downSince[ev.Index])
		}
		in.el.Links[ev.Index].SetDown(false)
	case OpLinkRate:
		rate := int64(float64(in.nomRate[ev.Index]) * ev.Scale)
		if rate < 1 {
			rate = 1
		}
		in.el.Links[ev.Index].SetRate(rate)
	case OpLinkDelay:
		in.el.Links[ev.Index].SetDelay(in.nomDelay[ev.Index].Scale(ev.Scale))
	case OpLinkLoss:
		in.el.Links[ev.Index].SetLoss(ev.Loss, ev.Seed)
	case OpPortBuffer:
		buf := int(float64(in.nomBuf[ev.Index]) * ev.Scale)
		if buf < 1 {
			buf = 1
		}
		in.el.Ports[ev.Index].SetBufferBytes(buf)
	case OpPortThreshold:
		in.el.Ports[ev.Index].SetMarkThreshold(int(float64(in.nomThresh[ev.Index]) * ev.Scale))
	case OpHostStall:
		if !in.stallOpen[ev.Index] {
			in.stallOpen[ev.Index] = true
			in.stallSince[ev.Index] = now
		}
		in.el.Hosts[ev.Index].Uplink().Pause()
	case OpHostResume:
		if in.stallOpen[ev.Index] {
			in.stallOpen[ev.Index] = false
			in.stats.Stalls++
			in.stats.StallTime += now.Sub(in.stallSince[ev.Index])
		}
		in.el.Hosts[ev.Index].Uplink().Resume()
	default:
		panic(fmt.Sprintf("fault: unknown op %d", int(ev.Op)))
	}
	in.stats.EventsFired++
	in.mFired.Add(1)
}

// Finish closes any still-open blackout/stall windows at the current
// simulation time, totals the fault-induced drops from the links, and
// publishes the telemetry counters. Call once after the run drains;
// further calls return the same stats.
func (in *Injector) Finish() Stats {
	if in.finished {
		return in.stats
	}
	in.finished = true
	now := in.sched.Now()
	for i := range in.downOpen {
		if in.downOpen[i] {
			in.downOpen[i] = false
			in.stats.Blackouts++
			in.stats.BlackoutTime += now.Sub(in.downSince[i])
		}
	}
	for i := range in.stallOpen {
		if in.stallOpen[i] {
			in.stallOpen[i] = false
			in.stats.Stalls++
			in.stats.StallTime += now.Sub(in.stallSince[i])
		}
	}
	for _, l := range in.el.Links {
		in.stats.InducedDropPkts += l.Lost() + l.Blackholed()
		in.stats.InducedDropBytes += l.LostBytes() + l.BlackholedBytes()
	}
	in.mBlackoutNs.Add(int64(in.stats.BlackoutTime))
	in.mStallNs.Add(int64(in.stats.StallTime))
	in.mInducedPkts.Add(in.stats.InducedDropPkts)
	in.mInducedBytes.Add(in.stats.InducedDropBytes)
	return in.stats
}

// Stats returns the counters accumulated so far (open windows and induced
// drops are only totalled by Finish).
func (in *Injector) Stats() Stats { return in.stats }
