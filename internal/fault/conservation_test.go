package fault

import (
	"testing"

	"dctcpplus/internal/dctcp"
	"dctcpplus/internal/netsim"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/tcp"
	"dctcpplus/internal/workload"
)

// TestConservationUnderFaults runs a full incast workload with every fault
// class active and balances the packet and byte ledgers across the whole
// network: everything the hosts inject is eventually delivered to a host,
// tail-dropped at a switch port, or destroyed by the fault layer (seeded
// loss + blackholes). Nothing leaks, nothing is double-counted — even with
// links flapping, buffers shrinking and hosts stalling mid-run.
func TestConservationUnderFaults(t *testing.T) {
	sched := sim.NewScheduler()
	tt := netsim.NewTwoTier(sched, 3, 3, netsim.DefaultTopologyConfig())
	tt.EnablePacketPool()
	factory := func(i int) (tcp.Config, tcp.CongestionControl) {
		cfg := dctcp.Config()
		cfg.RTOMin, cfg.RTOInit = 10*sim.Millisecond, 10*sim.Millisecond
		cfg.Seed = 7 + uint64(i)
		return cfg, dctcp.New(dctcp.DefaultGain)
	}
	in := workload.NewIncast(sched, tt, workload.IncastConfig{
		Flows:        12,
		BytesPerFlow: 64 << 10,
		Rounds:       3,
		Factory:      factory,
		Seed:         7,
		RequestRetry: 10 * sim.Millisecond,
	})

	el := TwoTierElements(tt)
	inj := NewInjector(sched, el)
	gen := GenConfig{
		Seed:   3,
		Start:  sim.Time(2 * sim.Millisecond),
		Window: 60 * sim.Millisecond,
		Dur:    8 * sim.Millisecond,
	}
	inj.Install(Generate(gen, len(el.Links), len(el.Ports), len(el.Hosts)))

	in.OnFinished = sched.Halt
	in.Start()
	sched.RunUntil(sim.Time(5 * 60 * sim.Second))
	if !in.Finished() {
		t.Fatal("incast did not finish under faults")
	}
	// Completion halts on the final ACK; duplicate retransmissions raced by
	// the originals can still be in flight. Drain them before balancing.
	sched.RunFor(100 * sim.Millisecond)
	st := inj.Finish()
	if st.EventsFired == 0 {
		t.Fatal("no fault events fired; the plan missed the run window")
	}
	if st.InducedDropPkts == 0 {
		t.Error("faults induced no drops; blackout/loss classes did not engage")
	}

	hosts := append([]*netsim.Host{tt.Aggregator}, tt.Workers...)
	var allPorts []*netsim.Port
	var injectedPkts, injectedBytes, deliveredPkts, deliveredBytes int64
	for _, h := range hosts {
		s := h.Uplink().Stats()
		injectedPkts += s.EnqueuedPkts
		injectedBytes += s.EnqueuedBytes
		deliveredPkts += h.DeliveredPkts()
		deliveredBytes += h.DeliveredBytes()
		allPorts = append(allPorts, h.Uplink())
	}
	var droppedPkts, droppedBytes int64
	for _, sw := range append([]*netsim.Switch{tt.Root}, tt.Leaves...) {
		for _, p := range sw.Ports() {
			s := p.Stats()
			droppedPkts += s.DroppedPkts
			droppedBytes += s.DroppedBytes
			allPorts = append(allPorts, p)
		}
	}
	var lostPkts, lostBytes int64
	for _, p := range allPorts {
		l := p.Link()
		lostPkts += l.Lost() + l.Blackholed()
		lostBytes += l.LostBytes() + l.BlackholedBytes()
		if p.QueueLen() != 0 {
			t.Errorf("port still holds %d packets after drain", p.QueueLen())
		}
	}

	if injectedPkts != deliveredPkts+droppedPkts+lostPkts {
		t.Errorf("packet ledger unbalanced: injected %d != delivered %d + dropped %d + destroyed %d",
			injectedPkts, deliveredPkts, droppedPkts, lostPkts)
	}
	if injectedBytes != deliveredBytes+droppedBytes+lostBytes {
		t.Errorf("byte ledger unbalanced: injected %d != delivered %d + dropped %d + destroyed %d",
			injectedBytes, deliveredBytes, droppedBytes, lostBytes)
	}
	if lostPkts != st.InducedDropPkts || lostBytes != st.InducedDropBytes {
		t.Errorf("injector stats disagree with link counters: %d/%d pkts, %d/%d bytes",
			st.InducedDropPkts, lostPkts, st.InducedDropBytes, lostBytes)
	}
}
