package fault

import (
	"reflect"
	"strings"
	"testing"

	"dctcpplus/internal/netsim"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/telemetry"
)

func TestClassStringParseRoundTrip(t *testing.T) {
	for _, c := range AllClasses() {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClass(%q) = %v, %v; want %v", c.String(), got, err, c)
		}
	}
	if _, err := ParseClass("bogus"); err == nil {
		t.Error("ParseClass(bogus) succeeded")
	}
}

func TestParseClasses(t *testing.T) {
	for _, s := range []string{"", "all"} {
		got, err := ParseClasses(s)
		if err != nil || len(got) != int(numClasses) {
			t.Errorf("ParseClasses(%q) = %v, %v; want all classes", s, got, err)
		}
	}
	got, err := ParseClasses("loss, stall")
	if err != nil || !reflect.DeepEqual(got, []Class{ClassLoss, ClassStall}) {
		t.Errorf("ParseClasses(loss, stall) = %v, %v", got, err)
	}
	if _, err := ParseClasses("loss,nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("ParseClasses(loss,nope) err = %v, want mention of the bad name", err)
	}
}

// TestPlanSortStable pins the application order: by time, ties in append
// order.
func TestPlanSortStable(t *testing.T) {
	var p Plan
	p.Events = append(p.Events,
		Event{At: 30, Op: OpLinkUp},
		Event{At: 10, Op: OpLinkDown},
		Event{At: 30, Op: OpHostStall},
		Event{At: 20, Op: OpLinkRate, Scale: 1},
	)
	got := p.sorted()
	wantOps := []Op{OpLinkDown, OpLinkRate, OpLinkUp, OpHostStall}
	for i, ev := range got {
		if ev.Op != wantOps[i] {
			t.Fatalf("sorted()[%d].Op = %v, want %v", i, ev.Op, wantOps[i])
		}
	}
}

// TestGenerateDeterministic pins that Generate is a pure function of its
// inputs, and that the seed actually matters.
func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultGenConfig(7)
	a := Generate(cfg, 12, 8, 9)
	b := Generate(cfg, 12, 8, 9)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config generated different plans")
	}
	cfg2 := cfg
	cfg2.Seed = 8
	c := Generate(cfg2, 12, 8, 9)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds generated identical plans")
	}
}

// TestGenerateRespectsWindowAndTargets: all events land inside
// [Start, Start+Window+1.5*Dur] and reference valid element indices.
func TestGenerateRespectsWindowAndTargets(t *testing.T) {
	cfg := DefaultGenConfig(3)
	cfg.Episodes = 5
	const nLinks, nPorts, nHosts = 4, 3, 2
	plan := Generate(cfg, nLinks, nPorts, nHosts)
	if plan.Empty() {
		t.Fatal("generated empty plan")
	}
	latest := cfg.Start.Add(cfg.Window).Add(cfg.Dur / 2).Add(cfg.Dur)
	for _, ev := range plan.Events {
		if ev.At < cfg.Start || ev.At > latest {
			t.Errorf("event %v at %v outside [%v, %v]", ev.Op, ev.At, cfg.Start, latest)
		}
		var n int
		switch ev.Op {
		case OpLinkDown, OpLinkUp, OpLinkRate, OpLinkDelay, OpLinkLoss:
			n = nLinks
		case OpPortBuffer, OpPortThreshold:
			n = nPorts
		case OpHostStall, OpHostResume:
			n = nHosts
		default:
			t.Fatalf("unknown op %v", ev.Op)
		}
		if ev.Index < 0 || ev.Index >= n {
			t.Errorf("event %v index %d out of range %d", ev.Op, ev.Index, n)
		}
	}
}

// TestGenerateSkipsEmptyFamilies: no hosts => no stall events, rather than
// a panic or an out-of-range index.
func TestGenerateSkipsEmptyFamilies(t *testing.T) {
	cfg := DefaultGenConfig(1)
	cfg.Classes = []Class{ClassStall}
	if plan := Generate(cfg, 4, 4, 0); !plan.Empty() {
		t.Fatalf("generated %d stall events with no hosts", len(plan.Events))
	}
}

// buildStar wires a pooled 2-host star and returns hand-rolled Elements
// over it: host0's uplink link, the switch's two port links, the switch
// ports, and both hosts.
func buildStar(t *testing.T) (*sim.Scheduler, *netsim.Star, Elements) {
	t.Helper()
	sched := sim.NewScheduler()
	st := netsim.NewStar(sched, 2, netsim.DefaultTopologyConfig())
	st.EnablePacketPool()
	el := Elements{Hosts: st.Hosts}
	for _, h := range st.Hosts {
		el.Links = append(el.Links, h.Uplink().Link())
	}
	for _, p := range st.Switch.Ports() {
		el.Links = append(el.Links, p.Link())
		el.Ports = append(el.Ports, p)
	}
	return sched, st, el
}

// sendBurst injects n data packets from src to dst through src's uplink.
func sendBurst(st *netsim.Star, src, dst int, n int, flow packet.FlowID) {
	h := st.Hosts[src]
	for i := 0; i < n; i++ {
		pkt := h.AllocPacket()
		pkt.Dst = st.Hosts[dst].ID()
		pkt.Flow = flow
		pkt.Seq = int64(i) * packet.MSS
		pkt.Payload = packet.MSS
		pkt.ECN = packet.ECT
		h.Send(pkt)
	}
}

// TestInjectorBlackoutWindow runs a blackout over live traffic and checks
// the window accounting, the induced-drop totals and the telemetry
// counters.
func TestInjectorBlackoutWindow(t *testing.T) {
	sched, st, el := buildStar(t)
	reg := telemetry.NewRegistry()
	inj := NewInjector(sched, el)
	inj.AttachTelemetry(reg)

	var plan Plan
	plan.AddBlackout(0, sim.Time(1*sim.Millisecond), 2*sim.Millisecond)
	inj.Install(plan)

	// Traffic before, during and after the window.
	sched.After(0, func() { sendBurst(st, 0, 1, 3, 1) })
	sched.After(2*sim.Millisecond, func() { sendBurst(st, 0, 1, 4, 1) })
	sched.After(5*sim.Millisecond, func() { sendBurst(st, 0, 1, 2, 1) })
	sched.Run()

	stats := inj.Finish()
	if stats.EventsFired != 2 {
		t.Fatalf("EventsFired = %d, want 2", stats.EventsFired)
	}
	if stats.Blackouts != 1 || stats.BlackoutTime != 2*sim.Millisecond {
		t.Fatalf("blackout window = %d x %v, want 1 x 2ms", stats.Blackouts, stats.BlackoutTime)
	}
	if stats.InducedDropPkts != 4 {
		t.Fatalf("InducedDropPkts = %d, want the 4 mid-window packets", stats.InducedDropPkts)
	}
	if got := st.Hosts[1].DeliveredPkts(); got != 5 {
		t.Fatalf("delivered = %d, want 5 (3 before + 2 after)", got)
	}

	snap := reg.Snapshot()
	assertCounter(t, snap, "fault_events_fired_total", 2)
	assertCounter(t, snap, "fault_blackout_ns_total", int64(2*sim.Millisecond))
	assertCounter(t, snap, "fault_induced_drop_pkts_total", 4)

	// Finish is idempotent.
	if again := inj.Finish(); again != stats {
		t.Fatal("second Finish changed the stats")
	}
}

func assertCounter(t *testing.T, snap telemetry.Snapshot, name string, want int64) {
	t.Helper()
	for _, is := range snap.Instruments {
		if is.Name == name {
			if is.Value != want {
				t.Errorf("%s = %d, want %d", name, is.Value, want)
			}
			return
		}
	}
	t.Errorf("counter %s not in snapshot", name)
}

// TestInjectorStallWindow freezes host0's uplink for a window and checks
// delivery timing plus the stall accounting.
func TestInjectorStallWindow(t *testing.T) {
	sched, st, el := buildStar(t)
	inj := NewInjector(sched, el)

	var plan Plan
	plan.AddStall(0, sim.Time(100*sim.Microsecond), 3*sim.Millisecond)
	inj.Install(plan)

	sched.After(200*sim.Microsecond, func() { sendBurst(st, 0, 1, 2, 1) })
	sched.After(1*sim.Millisecond, func() {
		if got := st.Hosts[1].DeliveredPkts(); got != 0 {
			t.Errorf("delivered %d packets during the stall", got)
		}
	})
	sched.Run()

	stats := inj.Finish()
	if stats.Stalls != 1 || stats.StallTime != 3*sim.Millisecond {
		t.Fatalf("stall window = %d x %v, want 1 x 3ms", stats.Stalls, stats.StallTime)
	}
	if got := st.Hosts[1].DeliveredPkts(); got != 2 {
		t.Fatalf("delivered = %d after resume, want 2", got)
	}
}

// TestInjectorScaleRestore checks Scale-1 events restore the exact nominal
// rate/delay/buffer recorded at Install time.
func TestInjectorScaleRestore(t *testing.T) {
	sched, _, el := buildStar(t)
	inj := NewInjector(sched, el)

	link := el.Links[0]
	port := el.Ports[0]
	nomRate, nomDelay := link.RateBps, link.Delay
	nomBuf, nomK := port.Config().BufferBytes, port.Config().MarkThresholdBytes

	var plan Plan
	plan.AddRateWindow(0, sim.Time(1*sim.Millisecond), sim.Millisecond, 0.1)
	plan.AddDelayWindow(0, sim.Time(1*sim.Millisecond), sim.Millisecond, 8)
	plan.AddBufferWindow(0, sim.Time(1*sim.Millisecond), sim.Millisecond, 0.25)
	inj.Install(plan)

	sched.After(1500*sim.Microsecond, func() {
		if link.RateBps != nomRate/10 {
			t.Errorf("mid-window rate = %d, want %d", link.RateBps, nomRate/10)
		}
		if link.Delay != nomDelay*8 {
			t.Errorf("mid-window delay = %v, want %v", link.Delay, nomDelay*8)
		}
		if got := port.Config().BufferBytes; got != nomBuf/4 {
			t.Errorf("mid-window buffer = %d, want %d", got, nomBuf/4)
		}
		if got := port.Config().MarkThresholdBytes; got != nomK/4 {
			t.Errorf("mid-window K = %d, want %d", got, nomK/4)
		}
	})
	sched.Run()

	if link.RateBps != nomRate || link.Delay != nomDelay {
		t.Fatalf("restore: rate=%d delay=%v, want %d/%v", link.RateBps, link.Delay, nomRate, nomDelay)
	}
	if port.Config().BufferBytes != nomBuf || port.Config().MarkThresholdBytes != nomK {
		t.Fatalf("restore: buffer=%d K=%d, want %d/%d",
			port.Config().BufferBytes, port.Config().MarkThresholdBytes, nomBuf, nomK)
	}
}

// TestInjectorFinishClosesOpenWindows: a blackout with no matching up
// event is closed out at Finish time.
func TestInjectorFinishClosesOpenWindows(t *testing.T) {
	sched, _, el := buildStar(t)
	inj := NewInjector(sched, el)
	inj.Install(Plan{Events: []Event{{At: sim.Time(sim.Millisecond), Op: OpLinkDown, Index: 0}}})
	sched.At(sim.Time(5*sim.Millisecond), func() {}) // pin the end-of-run clock
	sched.Run()

	stats := inj.Finish()
	if stats.Blackouts != 1 || stats.BlackoutTime != 4*sim.Millisecond {
		t.Fatalf("open window closed as %d x %v, want 1 x 4ms", stats.Blackouts, stats.BlackoutTime)
	}
}

func TestInjectorValidation(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
	}{
		{"link index", Event{Op: OpLinkDown, Index: 99}},
		{"negative index", Event{Op: OpHostStall, Index: -1}},
		{"zero scale", Event{Op: OpLinkRate, Index: 0}},
		{"loss range", Event{Op: OpLinkLoss, Index: 0, Loss: 1.5}},
		{"port index", Event{Op: OpPortBuffer, Index: 99, Scale: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sched, _, el := buildStar(t)
			inj := NewInjector(sched, el)
			defer func() {
				if recover() == nil {
					t.Errorf("Install accepted invalid event %+v", tc.ev)
				}
			}()
			inj.Install(Plan{Events: []Event{tc.ev}})
		})
	}
}

// TestTwoTierElements pins the documented enumeration order and sizes for
// the paper topology (3 leaves x 3 workers + aggregator).
func TestTwoTierElements(t *testing.T) {
	sched := sim.NewScheduler()
	tt := netsim.NewTwoTier(sched, 3, 3, netsim.DefaultTopologyConfig())
	el := TwoTierElements(tt)

	// Links: 9 worker uplinks + root ports (agg + 3 trunks) + leaf ports
	// (3 x (trunk + 3 workers)).
	if got, want := len(el.Links), 9+4+3*4; got != want {
		t.Errorf("links = %d, want %d", got, want)
	}
	if got, want := len(el.Ports), 4+3*4; got != want {
		t.Errorf("ports = %d, want %d", got, want)
	}
	if got, want := len(el.Hosts), 9; got != want {
		t.Errorf("hosts = %d, want %d", got, want)
	}
	for i, w := range tt.Workers {
		if el.Links[i] != w.Uplink().Link() {
			t.Errorf("Links[%d] is not worker %d's uplink", i, i)
		}
		if el.Hosts[i] != w {
			t.Errorf("Hosts[%d] is not worker %d", i, i)
		}
	}
	// Two builds enumerate identically (by position).
	el2 := TwoTierElements(tt)
	if len(el2.Links) != len(el.Links) || el2.Links[0] != el.Links[0] {
		t.Error("enumeration not stable across calls")
	}
}
