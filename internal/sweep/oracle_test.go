package sweep

import (
	"strings"
	"testing"

	"dctcpplus/internal/sim"
)

// TestOracleSweepEndToEnd: an Oracle-flagged spec runs every job under the
// conformance checker, reports zero violations on a healthy tree, and keys
// its cache entries distinctly from the plain run's.
func TestOracleSweepEndToEnd(t *testing.T) {
	spec := fastSpec("oracle")
	spec.Flows = []int{4}
	spec.Seeds = []uint64{1}
	spec.Oracle = true
	out, _ := runOutcome(t, spec, 2, "", false)
	total, lines := OracleReport(out.Results)
	if total != 0 || lines != nil {
		t.Fatalf("healthy sweep reported %d violations:\n%s", total, strings.Join(lines, "\n"))
	}
	for _, r := range out.Results {
		if !r.Point.Oracle {
			t.Errorf("point %+v lost the Oracle flag", r.Point)
		}
	}
	// Oracle participation is part of the point identity: the checked run
	// drains extra virtual time, so caching it under the plain key would
	// alias two different results.
	pt := out.Results[0].Point
	plain := pt
	plain.Oracle = false
	if pt.Key("v") == plain.Key("v") {
		t.Fatal("oracle flag is not part of the cache key")
	}
	opts, err := pt.Options()
	if err != nil {
		t.Fatal(err)
	}
	if !opts.Oracle {
		t.Fatal("Point.Options drops the oracle flag")
	}
}

// TestOracleReportRenders: the report names every violating point with its
// identity and sample lines, and clean points stay out of it.
func TestOracleReportRenders(t *testing.T) {
	results := []Result{
		{Point: Point{Topo: "default", Proto: "dctcp", Flows: 8,
			RTOMin: 10 * sim.Millisecond, Seed: 1}},
		{
			Point: Point{Topo: "default", Proto: "dctcp+", Flows: 64,
				RTOMin: 10 * sim.Millisecond, Seed: 2, Faults: "loss", FaultSeed: 7},
			OracleViolations: 3,
			OracleSample:     []string{"v1", "v2"},
		},
	}
	total, lines := OracleReport(results)
	if total != 3 {
		t.Fatalf("total = %d, want 3", total)
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{
		"proto=dctcp+", "flows=64", "faults=loss", "faultseed=7",
		"3 oracle violations", "v1", "v2",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("report missing %q:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "proto=dctcp ") {
		t.Errorf("clean point leaked into the report:\n%s", joined)
	}
}
