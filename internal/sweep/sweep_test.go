package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dctcpplus/internal/sim"
)

// fastSpec is a small but multi-dimensional grid: 2 protocols × 2 flow
// counts × 2 seeds = 8 jobs, each a few milliseconds of wall time.
func fastSpec(name string) Spec {
	return Spec{
		Name:      name,
		Protocols: []string{"dctcp", "dctcp+"},
		Flows:     []int{4, 8},
		Seeds:     []uint64{1, 2},
		Rounds:    5,

		WarmupRounds: 1,
		RTOMins:      []sim.Duration{10 * sim.Millisecond},
	}
}

func TestSpecDefaultsAndValidate(t *testing.T) {
	jobs, err := Spec{Name: "zero"}.Expand()
	if err != nil {
		t.Fatalf("zero spec: %v", err)
	}
	if len(jobs) != 1 {
		t.Fatalf("zero spec expands to %d jobs, want 1", len(jobs))
	}
	pt := jobs[0].Point
	if pt.Proto != "dctcp+" || pt.Flows != 40 || pt.RTOMin != 200*sim.Millisecond ||
		pt.Seed != 1 || pt.Rounds != 50 || pt.WarmupRounds != 10 {
		t.Errorf("zero-spec defaults wrong: %+v", pt)
	}

	bad := []Spec{
		{Name: "p", Protocols: []string{"nope"}},
		{Name: "f", Flows: []int{0}},
		{Name: "r", RTOMins: []sim.Duration{0}},
		{Name: "t", Topos: []string{"fat-tree"}},
		{Name: "x", Faults: []string{"quux"}},
		{Name: "w", Rounds: 5, WarmupRounds: 5},
		{Name: "b", TotalBytes: -1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %q: Validate accepted invalid spec", s.Name)
		}
	}
}

func TestExpandDeterministicAndSeedInnermost(t *testing.T) {
	a, err := fastSpec("a").Expand()
	if err != nil {
		t.Fatal(err)
	}
	b, _ := fastSpec("a").Expand()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Expand is not deterministic")
	}
	if len(a) != 8 {
		t.Fatalf("expanded %d jobs, want 8", len(a))
	}
	// Seeds are the innermost dimension: replicates of one point must be
	// adjacent so they stream into the aggregator back to back.
	for i := 0; i < len(a); i += 2 {
		p0, p1 := a[i].Point, a[i+1].Point
		if p0.Seed != 1 || p1.Seed != 2 {
			t.Fatalf("jobs %d,%d seeds = %d,%d; want 1,2", i, i+1, p0.Seed, p1.Seed)
		}
		p0.Seed, p1.Seed = 0, 0
		if p0 != p1 {
			t.Fatalf("jobs %d,%d differ beyond seed", i, i+1)
		}
	}
	for i, j := range a {
		if j.Index != i {
			t.Fatalf("job %d has Index %d", i, j.Index)
		}
	}
}

func TestFaultSpecCanonicalization(t *testing.T) {
	s := fastSpec("faults")
	s.Protocols = []string{"dctcp+"}
	s.Flows = []int{4}
	s.Seeds = []uint64{1}
	s.Faults = []string{"delay, loss"}
	jobs, err := s.Expand()
	if err != nil {
		t.Fatal(err)
	}
	s2 := s
	s2.Faults = []string{"loss,delay"}
	jobs2, _ := s2.Expand()
	if jobs[0].Point.Faults != jobs2[0].Point.Faults {
		t.Fatalf("equivalent fault specs canonicalize differently: %q vs %q",
			jobs[0].Point.Faults, jobs2[0].Point.Faults)
	}
	if jobs[0].Point.Key("v") != jobs2[0].Point.Key("v") {
		t.Fatal("equivalent fault specs produce different cache keys")
	}
}

func TestPointKeyScopesCodeVersion(t *testing.T) {
	pt := Point{Proto: "dctcp", Flows: 4, Seed: 1}
	if pt.Key("v1") == pt.Key("v2") {
		t.Fatal("cache key ignores code version")
	}
	other := pt
	other.Seed = 2
	if pt.Key("v1") == other.Key("v1") {
		t.Fatal("cache key ignores seed")
	}
	if pt.GroupKey() != other.GroupKey() {
		t.Fatal("group key should be seed-invariant")
	}
}

func TestCacheRoundTrip(t *testing.T) {
	c, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := Result{
		Point:    Point{Proto: "dctcp+", Flows: 8, Seed: 3, Rounds: 5, WarmupRounds: 1},
		Timeouts: 7, BottleneckDrops: 11, SimTime: 42 * sim.Millisecond,
	}
	want.GoodputMbps.Mean = 123.456
	want.FCTms.P99 = 9.5
	key := want.Point.Key("test-version")

	if _, ok, err := c.Get(key); err != nil || ok {
		t.Fatalf("Get before Put: ok=%v err=%v", ok, err)
	}
	if err := c.Put(key, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get(key)
	if err != nil || !ok {
		t.Fatalf("Get after Put: ok=%v err=%v", ok, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}

	// Corrupt objects are misses-with-error, not crashes.
	if err := os.WriteFile(c.Path(key), []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get(key); ok || err == nil {
		t.Fatalf("corrupt object: ok=%v err=%v, want miss with error", ok, err)
	}
}

// runOutcome runs a spec with the given worker count and cache dir,
// returning the outcome and the rendered aggregate table.
func runOutcome(t *testing.T, spec Spec, workers int, cacheDir string, resume bool) (*Outcome, string) {
	t.Helper()
	r := Runner{Workers: workers, CodeVersion: "test-version", Resume: resume}
	if cacheDir != "" {
		c, err := OpenCache(cacheDir)
		if err != nil {
			t.Fatal(err)
		}
		r.Cache = c
	}
	out, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGroups(&buf, out.Groups); err != nil {
		t.Fatal(err)
	}
	return out, buf.String()
}

func TestWorkerCountInvariance(t *testing.T) {
	spec := fastSpec("invariance")
	o1, t1 := runOutcome(t, spec, 1, "", false)
	o4, t4 := runOutcome(t, spec, 4, "", false)
	if !reflect.DeepEqual(o1.Results, o4.Results) {
		t.Fatal("results differ between 1 and 4 workers")
	}
	if t1 != t4 {
		t.Fatalf("aggregate tables differ between 1 and 4 workers:\n%s\n---\n%s", t1, t4)
	}
	if o1.Misses != o1.Jobs || o4.Misses != o4.Jobs {
		t.Fatal("cacheless run should report all jobs as misses")
	}
}

func TestCacheHitSecondPassIdentical(t *testing.T) {
	spec := fastSpec("rerun")
	dir := t.TempDir()
	first, table1 := runOutcome(t, spec, 4, dir, false)
	if first.Hits != 0 || first.Misses != first.Jobs {
		t.Fatalf("first pass: hits=%d misses=%d", first.Hits, first.Misses)
	}
	second, table2 := runOutcome(t, spec, 4, dir, true)
	if second.Hits != second.Jobs || second.Misses != 0 {
		t.Fatalf("second pass: hits=%d misses=%d, want all hits", second.Hits, second.Misses)
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Fatal("cached results differ from computed results")
	}
	if table1 != table2 {
		t.Fatalf("aggregate tables differ across cache states:\n%s\n---\n%s", table1, table2)
	}
}

func TestRunRefusesStaleManifestWithoutResume(t *testing.T) {
	spec := fastSpec("guard")
	dir := t.TempDir()
	runOutcome(t, spec, 2, dir, false)

	r := Runner{Workers: 2, CodeVersion: "test-version"}
	c, _ := OpenCache(dir)
	r.Cache = c
	if _, err := r.Run(context.Background(), spec); err == nil ||
		!strings.Contains(err.Error(), "resume") {
		t.Fatalf("re-run without Resume: err = %v, want resume guard", err)
	}

	// Resuming under a different grid is an error even with Resume set.
	changed := spec
	changed.Flows = []int{4, 8, 12}
	r.Resume = true
	if _, err := r.Run(context.Background(), changed); err == nil ||
		!strings.Contains(err.Error(), "spec hash") {
		t.Fatalf("resume with changed grid: err = %v, want spec-hash mismatch", err)
	}
}

func TestResumeAfterInterrupt(t *testing.T) {
	spec := fastSpec("resume")
	spec.Seeds = []uint64{1, 2, 3, 4} // widen to 16 jobs so the interrupt lands mid-grid
	dir := t.TempDir()

	// First pass: stop the sweep from inside after 3 results land. With a
	// single worker and the unbuffered handoff, the pool can be at most
	// ~2 jobs past the delivery that canceled, so most of the grid skips.
	c, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	r := Runner{
		Workers:     1,
		Cache:       c,
		CodeVersion: "test-version",
		OnResult: func(Job, Result, string) bool {
			delivered++
			return delivered < 3
		},
	}
	partial, err := r.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Skipped == 0 || partial.Completed() == partial.Jobs {
		t.Fatalf("interrupt did not skip work: %d completed, %d skipped",
			partial.Completed(), partial.Skipped)
	}

	// Second pass resumes: exactly the uncompleted jobs re-run.
	full, table := runOutcome(t, spec, 2, dir, true)
	if full.Completed() != full.Jobs {
		t.Fatalf("resume left %d jobs incomplete", full.Jobs-full.Completed())
	}
	if full.Hits != partial.Completed() {
		t.Errorf("resume hits = %d, want %d (the interrupted pass's completions)",
			full.Hits, partial.Completed())
	}
	if full.Misses != full.Jobs-partial.Completed() {
		t.Errorf("resume misses = %d, want %d", full.Misses, full.Jobs-partial.Completed())
	}

	// And the result equals an uninterrupted run's.
	_, cleanTable := runOutcome(t, spec, 2, "", false)
	if table != cleanTable {
		t.Fatalf("resumed aggregate differs from clean run:\n%s\n---\n%s", table, cleanTable)
	}
}

func TestContextCancelSkipsAndReportsError(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := Runner{Workers: 2, CodeVersion: "test-version"}
	out, err := r.Run(ctx, fastSpec("canceled"))
	if err == nil {
		t.Fatal("canceled run returned nil error")
	}
	if out.Skipped != out.Jobs {
		t.Fatalf("canceled run: %d skipped of %d", out.Skipped, out.Jobs)
	}
}

func TestManifestJournal(t *testing.T) {
	spec := fastSpec("journal")
	dir := t.TempDir()
	out, _ := runOutcome(t, spec, 2, dir, false)

	data, err := os.ReadFile(manifestPath(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 1+out.Jobs {
		t.Fatalf("journal has %d lines, want %d", len(lines), 1+out.Jobs)
	}
	var h manifestHeader
	if err := json.Unmarshal([]byte(lines[0]), &h); err != nil {
		t.Fatal(err)
	}
	if h.Sweep != "journal" || h.SpecHash != spec.Hash() || h.Jobs != out.Jobs {
		t.Fatalf("bad header: %+v", h)
	}
	for i, line := range lines[1:] {
		var e manifestEntry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		if e.Index != i {
			t.Fatalf("journal out of order: line %d has index %d", i+1, e.Index)
		}
		if e.Status != StatusMiss || e.Key == "" {
			t.Fatalf("entry %d: %+v", i, e)
		}
	}
}

func TestGroupAggregation(t *testing.T) {
	out, table := runOutcome(t, fastSpec("groups"), 2, "", false)
	// 2 protocols × 2 flow counts, seeds folded.
	if len(out.Groups) != 4 {
		t.Fatalf("got %d groups, want 4", len(out.Groups))
	}
	for _, g := range out.Groups {
		if g.Jobs != 2 {
			t.Errorf("group %s folded %d jobs, want 2 (one per seed)", g.Label(), g.Jobs)
		}
		if g.Point.Seed != 0 || g.Point.FaultSeed != 0 {
			t.Errorf("group %s retains a seed", g.Label())
		}
		if g.Goodput.N() != 2 || g.Goodput.Summary().Mean <= 0 {
			t.Errorf("group %s goodput stream wrong: n=%d", g.Label(), g.Goodput.N())
		}
	}
	if !strings.Contains(table, "dctcp+ N=8") {
		t.Errorf("table missing expected group label:\n%s", table)
	}
}

func TestOutcomeJobWallTimings(t *testing.T) {
	out, _ := runOutcome(t, fastSpec("walltime"), 2, "", false)
	for i, ns := range out.JobWallNs {
		if ns <= 0 {
			t.Fatalf("job %d wall time = %d, want > 0 for executed jobs", i, ns)
		}
	}
}

func TestCachePathSharding(t *testing.T) {
	c, err := OpenCache(filepath.Join(t.TempDir(), "nested", "cache"))
	if err != nil {
		t.Fatal(err)
	}
	p := c.Path("abcdef")
	if !strings.HasSuffix(p, filepath.Join("objects", "ab", "abcdef.json")) {
		t.Fatalf("unexpected object path %q", p)
	}
}
