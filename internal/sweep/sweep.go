// Package sweep is the experiment-orchestration layer: it expands a
// declarative parameter grid (protocol × concurrent flows × RTOmin × seed ×
// fault plan × topology) into deterministic, individually seeded jobs, runs
// them on a bounded worker pool with per-worker isolated simulations, folds
// the results into streaming aggregators (internal/stats), and memoizes
// every completed job in a content-addressed on-disk cache so re-runs and
// crash-resumes skip finished work.
//
// The determinism contract mirrors the rest of the repository: a job is a
// pure function of its Point, so the sweep's results — and the rendered
// aggregate tables — are byte-identical across runs, across worker counts,
// and across cache hits vs. fresh executions. Aggregation consumes results
// in job-index order through a reorder buffer, never in completion order,
// which is what keeps the IEEE-float accumulators stable under concurrency.
//
// Layout:
//
//	sweep.go     Spec (the grid), Point (one job's identity), expansion
//	cache.go     content-addressed result store, hash(point ‖ code-version)
//	manifest.go  per-sweep journal for audit and resume accounting
//	runner.go    worker pool, streaming aggregation, telemetry
//	aggregate.go cross-seed group aggregation and rendering
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"dctcpplus/internal/exp"
	"dctcpplus/internal/fault"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/stats"
	"dctcpplus/internal/telemetry"
)

// Spec declares a sweep as a cross-product over the grid dimensions plus
// the scalar run settings every point shares. Empty dimensions default to a
// single canonical value (see normalized), so the zero Spec with a Name is
// already runnable.
type Spec struct {
	// Name identifies the sweep in manifests and telemetry labels.
	Name string

	// Grid dimensions. The expansion order is fixed: topology, protocol,
	// flows, RTOmin, fault plan, seed — seeds innermost, so the replicates
	// of one experiment point occupy consecutive job indices and stream
	// into the aggregator back to back.
	Topos     []string       // "default" or "hull"; nil = {"default"}
	Protocols []string       // exp protocol names; nil = {"dctcp+"}
	Flows     []int          // concurrent flow counts; nil = {40}
	RTOMins   []sim.Duration // nil = {200ms}
	Faults    []string       // fault-class lists ("" = clean, "all", "loss,delay"); nil = {""}
	Seeds     []uint64       // nil = {1}

	// Scalar settings shared by every point.
	Rounds       int          // rounds per point; 0 = 50
	WarmupRounds int          // excluded from statistics; defaults to Rounds/5
	TotalBytes   int64        // split across flows; 0 = 1MB
	BytesPerFlow int64        // overrides the TotalBytes split when > 0
	Jitter       sim.Duration // worker service jitter; 0 = 4ms
	FaultSeed    uint64       // fault-plan generator seed; 0 = 1
	MaxSimTime   sim.Duration // per-job virtual-time bound; 0 = 30 sim-minutes
	Oracle       bool         // attach the conformance checker to every job
}

// normalized returns the spec with every empty dimension and zero scalar
// replaced by its default, so expansion and hashing always see the explicit
// form.
func (s Spec) normalized() Spec {
	if s.Name == "" {
		s.Name = "sweep"
	}
	if len(s.Topos) == 0 {
		s.Topos = []string{TopoDefault}
	}
	if len(s.Protocols) == 0 {
		s.Protocols = []string{exp.ProtoDCTCPPlus.String()}
	}
	if len(s.Flows) == 0 {
		s.Flows = []int{40}
	}
	if len(s.RTOMins) == 0 {
		s.RTOMins = []sim.Duration{200 * sim.Millisecond}
	}
	if len(s.Faults) == 0 {
		s.Faults = []string{""}
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []uint64{1}
	}
	if s.Rounds == 0 {
		s.Rounds = 50
	}
	if s.WarmupRounds == 0 {
		s.WarmupRounds = s.Rounds / 5
	}
	if s.TotalBytes == 0 {
		s.TotalBytes = 1 << 20
	}
	if s.Jitter == 0 {
		s.Jitter = 4 * sim.Millisecond
	}
	if s.FaultSeed == 0 {
		s.FaultSeed = 1
	}
	if s.MaxSimTime == 0 {
		s.MaxSimTime = 30 * 60 * sim.Second
	}
	return s
}

// Topology names accepted by Spec.Topos and Point.Topo.
const (
	TopoDefault = "default"
	TopoHULL    = "hull"
)

// LargeNSpec is the massive-concurrency scenario behind EXPERIMENTS.md's
// large-N table: DCTCP+ against DCTCP from N=100 to N=2000 concurrent
// flows — an order of magnitude past the paper's 200-flow testbed ceiling,
// which only a simulator (and a sweep that caches its 24 points) reaches
// comfortably. Per-flow bytes are fixed rather than a shared budget so the
// offered load grows with N, and two seeds feed the cross-seed aggregates.
func LargeNSpec() Spec {
	return Spec{
		Name:         "large-n",
		Protocols:    []string{"dctcp+", "dctcp"},
		Flows:        []int{100, 200, 500, 1000, 1500, 2000},
		Seeds:        []uint64{1, 2},
		Rounds:       8,
		WarmupRounds: 2,
		BytesPerFlow: 16 << 10,
	}
}

// Validate rejects specs that cannot expand into runnable jobs, naming the
// first offending dimension.
func (s Spec) Validate() error {
	n := s.normalized()
	if n.Rounds <= n.WarmupRounds {
		return fmt.Errorf("sweep: rounds %d must exceed warmup %d", n.Rounds, n.WarmupRounds)
	}
	if n.WarmupRounds < 0 {
		return fmt.Errorf("sweep: warmup %d cannot be negative", n.WarmupRounds)
	}
	if n.BytesPerFlow < 0 {
		return fmt.Errorf("sweep: bytes per flow %d cannot be negative", n.BytesPerFlow)
	}
	if n.BytesPerFlow == 0 && n.TotalBytes <= 0 {
		return fmt.Errorf("sweep: need a positive byte budget")
	}
	if n.Jitter < 0 {
		return fmt.Errorf("sweep: jitter %v cannot be negative", n.Jitter)
	}
	for _, f := range n.Flows {
		if f < 1 {
			return fmt.Errorf("sweep: flow count %d must be at least 1", f)
		}
	}
	for _, d := range n.RTOMins {
		if d <= 0 {
			return fmt.Errorf("sweep: RTOmin %v must be positive", d)
		}
	}
	for _, topo := range n.Topos {
		if topo != TopoDefault && topo != TopoHULL {
			return fmt.Errorf("sweep: unknown topology %q (want %q or %q)", topo, TopoDefault, TopoHULL)
		}
	}
	for _, p := range n.Protocols {
		if _, err := exp.ParseProtocol(p); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	for _, fs := range n.Faults {
		if fs == "" {
			continue
		}
		if _, err := fault.ParseClasses(fs); err != nil {
			return fmt.Errorf("sweep: %w", err)
		}
	}
	return nil
}

// Expand validates the spec and returns its deterministic job list: the
// full cross-product in the fixed dimension order, indices dense from 0.
func (s Spec) Expand() ([]Job, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	n := s.normalized()
	jobs := make([]Job, 0,
		len(n.Topos)*len(n.Protocols)*len(n.Flows)*len(n.RTOMins)*len(n.Faults)*len(n.Seeds))
	for _, topo := range n.Topos {
		for _, proto := range n.Protocols {
			for _, flows := range n.Flows {
				for _, rto := range n.RTOMins {
					for _, faults := range n.Faults {
						for _, seed := range n.Seeds {
							pt := Point{
								Topo:         topo,
								Proto:        proto,
								Flows:        flows,
								RTOMin:       rto,
								Faults:       canonicalFaults(faults),
								Seed:         seed,
								FaultSeed:    n.FaultSeed,
								Rounds:       n.Rounds,
								WarmupRounds: n.WarmupRounds,
								TotalBytes:   n.TotalBytes,
								BytesPerFlow: n.BytesPerFlow,
								Jitter:       n.Jitter,
								MaxSimTime:   n.MaxSimTime,
								Oracle:       n.Oracle,
							}
							jobs = append(jobs, Job{Index: len(jobs), Point: pt})
						}
					}
				}
			}
		}
	}
	return jobs, nil
}

// Hash is the spec-level identity: the hash of the normalized spec's
// canonical JSON. Two specs that expand to the same job list share it.
func (s Spec) Hash() string {
	data, err := json.Marshal(s.normalized())
	if err != nil {
		// Spec is a plain struct of scalars and slices; Marshal cannot fail.
		panic(fmt.Sprintf("sweep: marshal spec: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// hashPoints is the spec-hash analogue for explicit point lists
// (Runner.RunPoints).
func hashPoints(pts []Point) string {
	data, err := json.Marshal(pts)
	if err != nil {
		panic(fmt.Sprintf("sweep: marshal points: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// canonicalFaults normalizes a fault-class spec so equivalent spellings
// ("all", "loss, delay", "delay,loss") key the same cached results.
func canonicalFaults(spec string) string {
	if spec == "" {
		return ""
	}
	classes, err := fault.ParseClasses(spec)
	if err != nil {
		// Validate has already vetted every spec string that reaches here.
		panic(fmt.Sprintf("sweep: %v", err))
	}
	names := make([]string, len(classes))
	for i, c := range classes {
		names[i] = c.String()
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

// Point is the complete, self-describing identity of one job: everything
// the run depends on, and nothing else. Its canonical JSON (combined with
// the code version) is the cache key, so field set and order are part of
// the on-disk format — extend with care and bump Runner.CodeVersion
// semantics when a change alters results.
//
// The directive below makes the completeness half machine-checked: simlint's
// cachekey analyzer proves every field of Point flows into Key, so a new
// field that silently misses the digest (unexported, or tagged json:"-")
// fails the lint instead of aliasing distinct experiments onto one cache
// entry.
//
//cache:key Key
type Point struct {
	Topo         string       `json:"topo"`
	Proto        string       `json:"proto"`
	Flows        int          `json:"flows"`
	RTOMin       sim.Duration `json:"rtomin_ns"`
	Faults       string       `json:"faults,omitempty"`
	FaultSeed    uint64       `json:"fault_seed,omitempty"`
	Seed         uint64       `json:"seed"`
	Rounds       int          `json:"rounds"`
	WarmupRounds int          `json:"warmup"`
	TotalBytes   int64        `json:"total_bytes"`
	BytesPerFlow int64        `json:"bytes_per_flow,omitempty"`
	Jitter       sim.Duration `json:"jitter_ns"`
	MaxSimTime   sim.Duration `json:"max_sim_ns"`
	// Oracle runs the job under the conformance checker. It is part of the
	// cache key: an oracle run drains extra virtual time, so its SimTime
	// differs from the plain run's.
	Oracle bool `json:"oracle,omitempty"`
}

// Job is one expanded grid point, positioned in the sweep's deterministic
// order.
type Job struct {
	Index int
	Point Point
}

// Key returns the job's content address: hash(point ‖ code-version). Two
// jobs share a key exactly when they would produce identical results under
// the same build.
func (pt Point) Key(codeVersion string) string {
	data, err := json.Marshal(pt)
	if err != nil {
		panic(fmt.Sprintf("sweep: marshal point: %v", err))
	}
	h := sha256.New()
	h.Write(data)
	h.Write([]byte{0})
	h.Write([]byte(codeVersion))
	return hex.EncodeToString(h.Sum(nil))
}

// GroupKey returns the point's seed-normalized identity: the canonical JSON
// with Seed and FaultSeed zeroed. Jobs sharing a GroupKey are replicates of
// one experiment point and aggregate together.
func (pt Point) GroupKey() string {
	pt.Seed = 0
	pt.FaultSeed = 0
	data, err := json.Marshal(pt)
	if err != nil {
		panic(fmt.Sprintf("sweep: marshal point: %v", err))
	}
	return string(data)
}

// Options maps the point onto the experiment harness. The error cases are
// exactly the ones Spec.Validate rejects, so points produced by Expand
// always convert.
func (pt Point) Options() (exp.IncastOptions, error) {
	proto, err := exp.ParseProtocol(pt.Proto)
	if err != nil {
		return exp.IncastOptions{}, err
	}
	var tb exp.Testbed
	switch pt.Topo {
	case TopoDefault, "":
		tb = exp.DefaultTestbed()
	case TopoHULL:
		tb = exp.HULLTestbed()
	default:
		return exp.IncastOptions{}, fmt.Errorf("sweep: unknown topology %q", pt.Topo)
	}
	tb.Seed = pt.Seed
	tb.ServiceJitter = pt.Jitter
	o := exp.IncastOptions{
		Testbed:      tb,
		Protocol:     proto,
		Flows:        pt.Flows,
		TotalBytes:   pt.TotalBytes,
		BytesPerFlow: pt.BytesPerFlow,
		Rounds:       pt.Rounds,
		WarmupRounds: pt.WarmupRounds,
		RTOMin:       pt.RTOMin,
		MaxSimTime:   pt.MaxSimTime,
	}
	if pt.Faults != "" {
		classes, err := fault.ParseClasses(pt.Faults)
		if err != nil {
			return exp.IncastOptions{}, err
		}
		gen := fault.DefaultGenConfig(pt.FaultSeed)
		gen.Classes = classes
		o.Faults = &gen
	}
	o.Oracle = pt.Oracle
	return o, nil
}

// Result is the cached, serializable outcome of one job: the point echoed
// back plus the summary metrics the aggregate layer consumes. The JSON
// encoding is canonical (fixed field order, no maps), so identical runs
// serialize byte-identically — the property the cache round-trip and the
// jobs=1-vs-jobs=N equivalence tests pin.
type Result struct {
	Point Point `json:"point"`

	GoodputMbps stats.Summary `json:"goodput_mbps"`
	FCTms       stats.Summary `json:"fct_ms"`

	Timeouts         int64   `json:"timeouts"`
	FLossTO          int64   `json:"floss_to"`
	LAckTO           int64   `json:"lack_to"`
	TimeoutRoundFrac float64 `json:"timeout_round_frac"`
	MinCwndECEFrac   float64 `json:"min_cwnd_ece_frac"`
	BottleneckDrops  int64   `json:"bottleneck_drops"`
	MeasuredRounds   int     `json:"measured_rounds"`

	// SimTime is the virtual time the run consumed.
	SimTime sim.Duration `json:"sim_time_ns"`

	// FaultsInjected counts fault events that fired (0 for clean points).
	FaultsInjected int64 `json:"faults_injected,omitempty"`

	// OracleViolations is the run's total conformance-violation count (0
	// for clean runs and for points run without the oracle); OracleSample
	// holds the first few rendered violations for diagnosis.
	OracleViolations int64    `json:"oracle_violations,omitempty"`
	OracleSample     []string `json:"oracle_sample,omitempty"`
}

// Incast re-expresses the result in the experiment package's row shape, so
// sweep-backed commands feed the same printers (exp.PrintIncastRows) as
// direct runs. Only the cached summary fields are populated; per-round
// series, histograms and queue samples are not part of a sweep Result.
func (r Result) Incast() (exp.IncastResult, error) {
	proto, err := exp.ParseProtocol(r.Point.Proto)
	if err != nil {
		return exp.IncastResult{}, err
	}
	return exp.IncastResult{
		Protocol:         proto,
		Flows:            r.Point.Flows,
		Rounds:           r.MeasuredRounds,
		GoodputMbps:      r.GoodputMbps,
		FCTms:            r.FCTms,
		MinCwndECEFrac:   r.MinCwndECEFrac,
		TimeoutRoundFrac: r.TimeoutRoundFrac,
		Timeouts:         r.Timeouts,
		FLossTO:          r.FLossTO,
		LAckTO:           r.LAckTO,
		BottleneckDrops:  r.BottleneckDrops,
		SimTime:          r.SimTime,
		OracleTotal:      r.OracleViolations,
	}, nil
}

// resultOf projects an experiment result onto the cacheable subset.
func resultOf(pt Point, r exp.IncastResult) Result {
	res := Result{
		Point:            pt,
		GoodputMbps:      r.GoodputMbps,
		FCTms:            r.FCTms,
		Timeouts:         r.Timeouts,
		FLossTO:          r.FLossTO,
		LAckTO:           r.LAckTO,
		TimeoutRoundFrac: r.TimeoutRoundFrac,
		MinCwndECEFrac:   r.MinCwndECEFrac,
		BottleneckDrops:  r.BottleneckDrops,
		MeasuredRounds:   r.Rounds,
		SimTime:          r.SimTime,
	}
	if r.FaultStats != nil {
		res.FaultsInjected = r.FaultStats.EventsFired
	}
	res.OracleViolations = r.OracleTotal
	for i, v := range r.OracleViolations {
		if i >= 4 {
			res.OracleSample = append(res.OracleSample,
				fmt.Sprintf("... (%d more violations)", len(r.OracleViolations)-i))
			break
		}
		s := v.String()
		for _, w := range v.Window {
			s += "\n\t" + w
		}
		res.OracleSample = append(res.OracleSample, s)
	}
	return res
}

// run executes the job's simulation. The body is worker-executed: it must
// build all state — scheduler, topology, connections — privately and touch
// nothing shared (the sweepsafety lint check enforces this). The telemetry
// registry is the one sanctioned shared sink; its instruments are atomic.
//
//sweep:job
func (j Job) run(reg *telemetry.Registry) (Result, error) {
	o, err := j.Point.Options()
	if err != nil {
		return Result{}, err
	}
	o.Telemetry = reg
	return resultOf(j.Point, exp.RunIncast(o)), nil
}
