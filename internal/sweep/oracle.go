package sweep

import "fmt"

// OracleReport folds the conformance-oracle outcome of a completed sweep:
// the total violation count across every result, plus one rendered block
// per violating point — the point's identity, then its sampled violations
// with their minimized event windows. Points run without the oracle (and
// clean points) contribute nothing, so a (0, nil) return means the sweep
// is oracle-clean.
func OracleReport(results []Result) (total int64, lines []string) {
	for _, r := range results {
		if r.OracleViolations == 0 {
			continue
		}
		total += r.OracleViolations
		pt := r.Point
		id := fmt.Sprintf("topo=%s proto=%s flows=%d rtomin=%v seed=%d",
			pt.Topo, pt.Proto, pt.Flows, pt.RTOMin, pt.Seed)
		if pt.Faults != "" {
			id += fmt.Sprintf(" faults=%s faultseed=%d", pt.Faults, pt.FaultSeed)
		}
		lines = append(lines, fmt.Sprintf("%s: %d oracle violations", id, r.OracleViolations))
		lines = append(lines, r.OracleSample...)
	}
	return total, lines
}
