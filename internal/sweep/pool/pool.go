// Package pool is the one worker pool behind every parallel experiment
// fan-out in this repository: the sweep runner, internal/exp's *Parallel
// sweep variants, and the resilience grid all draw from it. Each unit of
// work is an independent, fully deterministic simulation (a private
// scheduler, private RNG streams), so concurrency changes wall-clock time
// only — never results. Centralizing the fan-out here keeps that argument
// in one place instead of re-proving it per call site.
package pool

import (
	"runtime"
	"sync"
)

// DefaultWorkers is the pool width used when a caller passes workers <= 0:
// one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// ForEach runs fn(i) for every i in [0, n) across min(workers, n)
// goroutines and returns when all calls have completed. workers <= 0
// selects DefaultWorkers(). With one effective worker the calls run inline
// on the caller's goroutine, in index order — the sequential baseline the
// parallel paths are tested against.
//
// fn must treat shared state as read-only (or guard it itself): indices are
// handed out through a channel, so the assignment of index to worker — and
// therefore any interleaving — is scheduler-dependent by design.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
