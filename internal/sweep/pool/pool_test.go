package pool

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 100} {
		const n = 100
		var hits [n]int32
		ForEach(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	ForEach(4, 0, func(int) { t.Fatal("fn called for n=0") })
	ForEach(4, -3, func(int) { t.Fatal("fn called for n<0") })
}

func TestForEachSingleWorkerRunsInOrder(t *testing.T) {
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, got := range order {
		if got != i {
			t.Fatalf("single-worker order = %v", order)
		}
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}
