package sweep

import "dctcpplus/internal/telemetry"

// CodeVersion returns the code-version string cache keys are scoped to when
// Runner.CodeVersion is left empty: the repository's git describe output
// ("unknown" outside a git checkout). It is exported so tooling — simlint
// -version in particular — can print exactly the string the sweep cache
// folds into Point.Key, making "which build produced this cache entry"
// answerable from the command line.
func CodeVersion() string {
	return telemetry.GitDescribe()
}
