package sweep

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Cache is the content-addressed result store. Each completed job is one
// JSON object file under dir/objects/<k0k1>/<key>.json, where key =
// Point.Key(codeVersion) — so a cache entry is valid exactly as long as
// both the experiment point and the code that produced it are unchanged.
// Writes are atomic (tmp + rename), so a crash mid-write never leaves a
// partial object; reads treat malformed objects as misses.
//
// The store is safe for concurrent use by the worker pool: distinct jobs
// have distinct keys, and identical keys write identical bytes.
type Cache struct {
	dir string
}

// OpenCache opens (creating if needed) a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("sweep: cache dir must not be empty")
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("sweep: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// Path returns the object path for a key. Objects shard on the first hex
// byte to keep directory fan-out bounded on 10k-job sweeps.
func (c *Cache) Path(key string) string {
	shard := "xx"
	if len(key) >= 2 {
		shard = key[:2]
	}
	return filepath.Join(c.dir, "objects", shard, key+".json")
}

// Get loads the cached result for key. A missing or unreadable object is a
// miss, not an error — the job simply re-runs; an error is reported only
// for I/O failures other than non-existence so genuine cache corruption
// surfaces in the sweep report while still not aborting the run.
func (c *Cache) Get(key string) (Result, bool, error) {
	data, err := os.ReadFile(c.Path(key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return Result{}, false, nil
		}
		return Result{}, false, fmt.Errorf("sweep: cache read %s: %w", key, err)
	}
	var r Result
	if err := json.Unmarshal(data, &r); err != nil {
		return Result{}, false, fmt.Errorf("sweep: cache object %s corrupt: %w", key, err)
	}
	return r, true, nil
}

// Put stores a result under key atomically.
func (c *Cache) Put(key string, r Result) error {
	path := c.Path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	data, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache put %s: write %v, close %v", key, werr, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache put: %w", err)
	}
	return nil
}
