package sweep

import (
	"fmt"
	"io"

	"dctcpplus/internal/stats"
)

// Group aggregates the replicates (seed × fault-seed variations) of one
// experiment point. Metrics accumulate through streaming estimators
// (internal/stats.Stream: Welford moments + P² quantiles), so a sweep with
// thousands of replicates per point holds a handful of floats, never the
// sample sets. Streams fold in job-index order — the runner guarantees
// delivery order — so group summaries are byte-stable across worker
// counts and cache states.
type Group struct {
	// Key is the seed-normalized point identity (Point.GroupKey).
	Key string
	// Point is the first member's point, seeds zeroed — the group's
	// human-facing coordinates.
	Point Point

	// Jobs counts members folded in; Hits counts those served from cache.
	Jobs int
	Hits int

	// Goodput streams the per-replicate mean goodput (Mbps); FCT the
	// per-replicate mean flow-completion time and FCTp99 the
	// per-replicate P99 (ms).
	Goodput *stats.Stream
	FCT     *stats.Stream
	FCTp99  *stats.Stream

	// Timeouts totals RTO events across replicates; Drops totals
	// bottleneck tail drops; FaultsInjected totals fired fault events.
	Timeouts       int64
	Drops          int64
	FaultsInjected int64

	// TimeoutRoundFrac streams the per-replicate timeout-round fraction
	// (Table I's headline column).
	TimeoutRoundFrac *stats.Stream
}

// aggregator folds results into groups keyed by seed-normalized point,
// preserving first-seen order. Single-goroutine: only the runner's
// aggregation loop touches it.
type aggregator struct {
	byKey map[string]*Group
	order []*Group
}

func newAggregator() *aggregator {
	return &aggregator{byKey: make(map[string]*Group)}
}

func (a *aggregator) add(r Result, status string) {
	key := r.Point.GroupKey()
	g, ok := a.byKey[key]
	if !ok {
		pt := r.Point
		pt.Seed = 0
		pt.FaultSeed = 0
		g = &Group{
			Key:              key,
			Point:            pt,
			Goodput:          stats.NewStream(),
			FCT:              stats.NewStream(),
			FCTp99:           stats.NewStream(),
			TimeoutRoundFrac: stats.NewStream(),
		}
		a.byKey[key] = g
		a.order = append(a.order, g)
	}
	g.Jobs++
	if status == StatusHit {
		g.Hits++
	}
	g.Goodput.Add(r.GoodputMbps.Mean)
	g.FCT.Add(r.FCTms.Mean)
	g.FCTp99.Add(r.FCTms.P99)
	g.TimeoutRoundFrac.Add(r.TimeoutRoundFrac)
	g.Timeouts += r.Timeouts
	g.Drops += r.BottleneckDrops
	g.FaultsInjected += r.FaultsInjected
}

func (a *aggregator) groups() []*Group { return a.order }

// Label renders the group's coordinates compactly: the fields that vary
// across typical grids, suppressing defaults.
func (g *Group) Label() string {
	s := fmt.Sprintf("%s N=%d", g.Point.Proto, g.Point.Flows)
	if g.Point.Topo != TopoDefault && g.Point.Topo != "" {
		s += " topo=" + g.Point.Topo
	}
	s += fmt.Sprintf(" rtomin=%v", g.Point.RTOMin)
	if g.Point.Faults != "" {
		s += " faults=" + g.Point.Faults
	}
	return s
}

// WriteGroups renders the cross-seed aggregate table. The format is fixed
// and excludes every nondeterministic quantity (wall time, hit counts), so
// two runs of the same spec against the same build produce byte-identical
// tables — the property `make sweep-smoke` asserts.
func WriteGroups(w io.Writer, groups []*Group) error {
	if _, err := fmt.Fprintf(w, "%-44s %5s %12s %10s %10s %8s %9s\n",
		"point", "runs", "goodput", "fct_ms", "fct_p99", "to_frac", "timeouts"); err != nil {
		return err
	}
	for _, g := range groups {
		gp := g.Goodput.Summary()
		fct := g.FCT.Summary()
		p99 := g.FCTp99.Summary()
		tof := g.TimeoutRoundFrac.Summary()
		if _, err := fmt.Fprintf(w, "%-44s %5d %12.2f %10.3f %10.3f %8.4f %9d\n",
			g.Label(), g.Jobs, gp.Mean, fct.Mean, p99.Mean, tof.Mean, g.Timeouts); err != nil {
			return err
		}
	}
	return nil
}
