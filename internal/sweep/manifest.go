package sweep

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// The manifest is the sweep's journal: one JSONL file per sweep name under
// the cache root, opened fresh at the start of a run and appended in job
// order as results land. Line 1 is a header binding the journal to a spec
// hash and code version; each subsequent line records one job's outcome.
// A later run resuming the same sweep reads the journal only to sanity
// check identity (spec-hash mismatch under -resume is an error — the grid
// changed, so "resume" would silently run a different experiment); the
// actual resume mechanism is the content-addressed cache itself, which is
// why resume survives even a kill -9 that truncates the journal mid-line.

// manifestHeader is the first line of a sweep journal.
type manifestHeader struct {
	Sweep       string `json:"sweep"`
	SpecHash    string `json:"spec_hash"`
	CodeVersion string `json:"code_version"`
	Jobs        int    `json:"jobs"`
}

// manifestEntry records one completed job.
type manifestEntry struct {
	Index  int    `json:"i"`
	Key    string `json:"key"`
	Status string `json:"status"` // "hit" or "miss"
	// WallNs is host wall-clock spent executing the job (0 for cache
	// hits); it times the run, it never feeds back into simulation state.
	WallNs int64 `json:"wall_ns"`
}

// manifest writes a sweep journal. Methods are not safe for concurrent
// use; the runner's aggregator goroutine is the sole writer.
type manifest struct {
	f *os.File
	w *bufio.Writer
}

// manifestPath returns the journal location for a sweep name inside a
// cache root.
func manifestPath(cacheDir, sweepName string) string {
	return filepath.Join(cacheDir, sweepName+".manifest.jsonl")
}

// createManifest starts a fresh journal, truncating any previous run's.
func createManifest(path string, h manifestHeader) (*manifest, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("sweep: manifest: %w", err)
	}
	m := &manifest{f: f, w: bufio.NewWriter(f)}
	if err := m.writeLine(h); err != nil {
		f.Close()
		return nil, err
	}
	return m, nil
}

func (m *manifest) writeLine(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sweep: manifest: %w", err)
	}
	if _, err := m.w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("sweep: manifest: %w", err)
	}
	return nil
}

// record appends one job outcome.
func (m *manifest) record(e manifestEntry) error { return m.writeLine(e) }

// close flushes and closes the journal.
func (m *manifest) close() error {
	ferr := m.w.Flush()
	cerr := m.f.Close()
	if ferr != nil {
		return fmt.Errorf("sweep: manifest: %w", ferr)
	}
	if cerr != nil {
		return fmt.Errorf("sweep: manifest: %w", cerr)
	}
	return nil
}

// readManifestHeader loads the header of a prior run's journal. Returns
// ok=false when no journal exists; errors only on unreadable or malformed
// journals.
func readManifestHeader(path string) (manifestHeader, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return manifestHeader{}, false, nil
		}
		return manifestHeader{}, false, fmt.Errorf("sweep: manifest: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return manifestHeader{}, false, fmt.Errorf("sweep: manifest: %w", err)
		}
		return manifestHeader{}, false, nil // empty journal: treat as absent
	}
	var h manifestHeader
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return manifestHeader{}, false, fmt.Errorf("sweep: manifest header corrupt: %w", err)
	}
	return h, true, nil
}
