package sweep

import (
	"context"
	"fmt"
	"io"
	"time"

	"dctcpplus/internal/sweep/pool"
	"dctcpplus/internal/telemetry"
)

// Job statuses as recorded in the manifest and Outcome.Status.
const (
	StatusHit     = "hit"     // result served from the cache
	StatusMiss    = "miss"    // result computed (and stored if a cache is open)
	StatusSkipped = "skipped" // not executed: context canceled first
)

// Runner executes a sweep: jobs fan out over a bounded worker pool, each
// checked against the content-addressed cache first, and the completed
// results stream — in job-index order, regardless of completion order —
// through the manifest journal, the per-group aggregators, and the
// OnResult hook. Index-order delivery is what makes every output of a
// sweep byte-identical across worker counts.
type Runner struct {
	// Workers bounds concurrent jobs; <= 0 selects pool.DefaultWorkers().
	Workers int

	// Cache, when non-nil, memoizes completed jobs across runs. Nil runs
	// everything and remembers nothing.
	Cache *Cache

	// CodeVersion scopes cache keys to the build that produced them;
	// empty selects the package-level CodeVersion(). Cached results are
	// reused only under an identical version string.
	CodeVersion string

	// Resume permits continuing a sweep whose manifest already exists in
	// the cache. It is a guard, not a mechanism: resuming is just the
	// cache serving completed jobs, but requiring the flag (and matching
	// spec hashes) keeps a stale sweep name from silently mixing grids.
	Resume bool

	// Telemetry, when non-nil, receives per-job counters and wall-time
	// histograms, and is threaded into every simulation.
	Telemetry *telemetry.Registry

	// Progress, when non-nil, receives coarse progress lines (at most ~20
	// per sweep). Not part of the deterministic output surface: lines
	// include wall-clock timings.
	Progress io.Writer

	// OnResult, when non-nil, is invoked for each completed job in
	// strict index order from the aggregation goroutine. Returning
	// false cancels the remainder of the sweep (in-flight jobs finish;
	// unstarted ones are skipped).
	OnResult func(Job, Result, string) bool
}

// Outcome is the full accounting of one sweep run.
type Outcome struct {
	Name        string
	SpecHash    string
	CodeVersion string

	// Jobs is the expanded grid size; Results and Status are indexed by
	// job index. Skipped jobs leave a zero Result.
	Jobs    int
	Results []Result
	Status  []string

	Hits    int
	Misses  int
	Skipped int

	// CacheErrs counts cache read/write failures that were downgraded to
	// recomputation or forgone memoization.
	CacheErrs int

	// JobWallNs is per-job execution wall time (0 for hits and skips).
	JobWallNs []int64

	// Groups aggregates the completed results across seeds, in first-job
	// order.
	Groups []*Group
}

// Completed returns the number of jobs with a result (hit or miss).
func (o *Outcome) Completed() int { return o.Hits + o.Misses }

// jobDone crosses from the worker pool to the aggregator.
type jobDone struct {
	idx       int
	res       Result
	status    string
	wallNs    int64
	cacheErrs int // read/write failures downgraded to recompute/no-memoize
}

// Run expands the spec and executes it. The returned Outcome is valid
// (partial) even when err is non-nil: cancellation reports ctx.Err() with
// every completed job accounted and cached, which is what makes an
// interrupted sweep resumable.
func (r *Runner) Run(ctx context.Context, spec Spec) (*Outcome, error) {
	jobs, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	return r.runJobs(ctx, spec.normalized().Name, spec.Hash(), jobs)
}

// RunPoints executes an explicit point list under the same machinery as
// Run. It exists for the irregular batches no cross-product expands to —
// cmd/report's ablation grid pairs each protocol with its own flow count —
// so those callers get caching, resume, and ordered aggregation too. The
// manifest's spec hash is the hash of the point list.
func (r *Runner) RunPoints(ctx context.Context, name string, pts []Point) (*Outcome, error) {
	jobs := make([]Job, len(pts))
	for i, pt := range pts {
		if pt.Rounds <= pt.WarmupRounds {
			return nil, fmt.Errorf("sweep: point %d: rounds %d must exceed warmup %d", i, pt.Rounds, pt.WarmupRounds)
		}
		if _, err := pt.Options(); err != nil {
			return nil, fmt.Errorf("sweep: point %d: %w", i, err)
		}
		jobs[i] = Job{Index: i, Point: pt}
	}
	return r.runJobs(ctx, name, hashPoints(pts), jobs)
}

func (r *Runner) runJobs(ctx context.Context, name, specHash string, jobs []Job) (*Outcome, error) {
	codeVersion := r.CodeVersion
	if codeVersion == "" {
		codeVersion = CodeVersion()
	}
	out := &Outcome{
		Name:        name,
		SpecHash:    specHash,
		CodeVersion: codeVersion,
		Jobs:        len(jobs),
		Results:     make([]Result, len(jobs)),
		Status:      make([]string, len(jobs)),
		JobWallNs:   make([]int64, len(jobs)),
	}

	var man *manifest
	if r.Cache != nil {
		path := manifestPath(r.Cache.Dir(), name)
		prev, found, err := readManifestHeader(path)
		if err != nil {
			return nil, err
		}
		if found {
			if !r.Resume {
				return nil, fmt.Errorf("sweep: %q already has a manifest at %s; pass resume to continue it", name, path)
			}
			if prev.SpecHash != specHash {
				return nil, fmt.Errorf("sweep: cannot resume %q: spec hash %.12s does not match prior run %.12s (the grid changed)",
					name, specHash, prev.SpecHash)
			}
		}
		man, err = createManifest(path, manifestHeader{
			Sweep: name, SpecHash: specHash, CodeVersion: codeVersion, Jobs: len(jobs),
		})
		if err != nil {
			return nil, err
		}
	}

	// Cancellation: ctx aborts from outside, OnResult from inside. Both
	// flip stop; workers consult it before starting each job.
	stop := make(chan struct{})
	var stopped bool
	stopOnce := func() {
		if !stopped {
			stopped = true
			close(stop)
		}
	}
	canceled := func() bool {
		select {
		case <-stop:
			return true
		default:
		}
		select {
		case <-ctx.Done():
			return true
		default:
			return false
		}
	}

	// Instruments are nil-safe: with no registry these are no-op handles.
	label := telemetry.L("sweep", name)
	hitCtr := r.Telemetry.Counter("sweep_jobs_total", label, telemetry.L("status", StatusHit))
	missCtr := r.Telemetry.Counter("sweep_jobs_total", label, telemetry.L("status", StatusMiss))
	skipCtr := r.Telemetry.Counter("sweep_jobs_total", label, telemetry.L("status", StatusSkipped))
	cacheErrCtr := r.Telemetry.Counter("sweep_cache_errors_total", label)
	wallHist := r.Telemetry.Histogram("sweep_job_wall_ns", label)

	// Workers run the grid and push outcomes; the reorder buffer below is
	// the only consumer. The handoff is unbuffered on purpose: aggregation
	// is cheap relative to a simulation, and keeping workers at most one
	// handoff ahead is what lets an OnResult cancellation actually stop
	// the pool instead of racing a drained queue.
	done := make(chan jobDone)
	go func() {
		defer close(done)
		pool.ForEach(r.Workers, len(jobs), func(i int) {
			j := jobs[i]
			if canceled() {
				done <- jobDone{idx: i, status: StatusSkipped}
				return
			}
			key := j.Point.Key(codeVersion)
			cacheErrs := 0
			if r.Cache != nil {
				res, ok, err := r.Cache.Get(key)
				if err != nil {
					cacheErrs++
				} else if ok {
					done <- jobDone{idx: i, res: res, status: StatusHit}
					return
				}
			}
			start := time.Now()
			res, err := j.run(r.Telemetry)
			if err != nil {
				// Unreachable for expanded jobs: Expand validates every
				// dimension Options can reject. Degrade to a skip rather
				// than losing the sweep.
				done <- jobDone{idx: i, status: StatusSkipped, cacheErrs: cacheErrs}
				return
			}
			wall := time.Since(start).Nanoseconds()
			if r.Cache != nil {
				if err := r.Cache.Put(key, res); err != nil {
					cacheErrs++
				}
			}
			done <- jobDone{idx: i, res: res, status: StatusMiss, wallNs: wall, cacheErrs: cacheErrs}
		})
	}()

	// Reorder buffer: consume completions in any order, release them in
	// index order. Aggregation, the manifest, progress, and OnResult all
	// sit downstream of this point, so none of them ever observe a
	// scheduler-dependent ordering.
	var (
		agg      = newAggregator()
		pending  = make(map[int]jobDone, 8)
		next     = 0
		every    = progressStride(len(jobs))
		firstErr error
	)
	deliver := func(d jobDone) {
		out.Status[d.idx] = d.status
		out.CacheErrs += d.cacheErrs
		cacheErrCtr.Add(int64(d.cacheErrs))
		switch d.status {
		case StatusHit:
			out.Hits++
			hitCtr.Inc()
		case StatusMiss:
			out.Misses++
			missCtr.Inc()
			wallHist.Observe(d.wallNs)
		case StatusSkipped:
			out.Skipped++
			skipCtr.Inc()
		}
		if d.status != StatusSkipped {
			out.Results[d.idx] = d.res
			out.JobWallNs[d.idx] = d.wallNs
			agg.add(d.res, d.status)
			if man != nil {
				e := manifestEntry{
					Index:  d.idx,
					Key:    jobs[d.idx].Point.Key(codeVersion),
					Status: d.status,
					WallNs: d.wallNs,
				}
				if err := man.record(e); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			if r.OnResult != nil && !stopped {
				if !r.OnResult(jobs[d.idx], d.res, d.status) {
					stopOnce()
				}
			}
		}
		doneCount := d.idx + 1
		if r.Progress != nil && (doneCount%every == 0 || doneCount == len(jobs)) {
			fmt.Fprintf(r.Progress, "[sweep %s] %d/%d jobs (%d hit, %d run, %d skipped)\n",
				name, doneCount, len(jobs), out.Hits, out.Misses, out.Skipped)
		}
	}
	for d := range done {
		pending[d.idx] = d
		for {
			nd, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			deliver(nd)
			next++
		}
	}
	out.Groups = agg.groups()

	if man != nil {
		if err := man.close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		return out, firstErr
	}
	if err := ctx.Err(); err != nil && out.Skipped > 0 {
		return out, err
	}
	return out, nil
}

// progressStride spaces progress lines so a sweep prints at most ~20.
func progressStride(n int) int {
	s := n / 20
	if s < 1 {
		s = 1
	}
	return s
}
