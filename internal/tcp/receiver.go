package tcp

import (
	"dctcpplus/internal/netsim"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

// ReceiverStats counts events at the receiving endpoint.
type ReceiverStats struct {
	SegsIn        int64
	BytesIn       int64 // payload bytes arriving (including duplicates)
	DeliveredByte int64 // in-order bytes handed to the application
	DupSegs       int64 // fully duplicate segments
	OutOfOrder    int64 // segments buffered ahead of a hole
	AcksOut       int64
	DelayedAcks   int64 // ACKs sent by the delayed-ACK counter/timer path
	ImmediateAcks int64 // ACKs forced by dup/out-of-order/CE-transition
	CEMarskSeen   int64 // data segments arriving with CE set
}

// interval is a half-open byte range [lo, hi) in the reassembly buffer.
type interval struct{ lo, hi int64 }

// Receiver is the receiving half of a connection: it reassembles the byte
// stream, generates (delayed) cumulative ACKs, and implements the ECN echo
// semantics — either the RFC 3168 latch or DCTCP's precise two-state
// delayed-ACK machine, which is what lets the DCTCP sender estimate the
// fraction of marked packets.
type Receiver struct {
	cfg   Config
	host  *netsim.Host
	sched *sim.Scheduler
	flow  packet.FlowID
	peer  packet.NodeID

	rcvNxt int64
	ooo    []interval // sorted, disjoint, all above rcvNxt

	pendingSegs int // in-order segments not yet acknowledged
	delackTimer *sim.Timer

	// ECN echo state.
	eceLatch bool // RFC 3168: set by CE, cleared by CWR
	ceState  bool // DCTCP: CE state of the most recent data segment

	stats ReceiverStats

	// OnData observes each in-order delivery (n bytes).
	OnData func(n int64)
}

// NewReceiver creates a receiver for flow on host, acknowledging toward
// peer, and registers it for the flow's data segments.
func NewReceiver(cfg Config, host *netsim.Host, peer packet.NodeID, flow packet.FlowID) *Receiver {
	cfg.validate()
	r := &Receiver{
		cfg:   cfg,
		host:  host,
		sched: host.Scheduler(),
		flow:  flow,
		peer:  peer,
	}
	r.delackTimer = sim.NewTimer(r.sched, func() {
		if r.pendingSegs > 0 {
			r.stats.DelayedAcks++
			r.sendAck()
		}
	})
	host.Register(flow, netsim.FlowHandlerFunc(r.Deliver))
	return r
}

// RcvNxt returns the next expected in-order byte.
func (r *Receiver) RcvNxt() int64 { return r.rcvNxt }

// Peer returns the node id of the sending endpoint.
func (r *Receiver) Peer() packet.NodeID { return r.peer }

// Stats returns a snapshot of the receiver counters.
func (r *Receiver) Stats() ReceiverStats { return r.stats }

// Close unregisters the receiver from its host.
func (r *Receiver) Close() {
	r.delackTimer.Stop()
	r.host.Unregister(r.flow)
}

// Deliver processes one arriving data segment.
func (r *Receiver) Deliver(pkt *packet.Packet) {
	if !pkt.IsData() {
		return
	}
	r.stats.SegsIn++
	r.stats.BytesIn += int64(pkt.Payload)

	ce := pkt.ECN == packet.CE
	if ce {
		r.stats.CEMarskSeen++
	}
	switch r.cfg.ECN {
	case ECNClassic:
		// RFC 3168: CWR from the sender clears the latch; a CE mark sets
		// it. Process CWR first so a marked CWR segment re-latches.
		if pkt.Flags.Has(packet.FlagCWR) {
			r.eceLatch = false
		}
		if ce {
			r.eceLatch = true
		}
	case ECNPrecise:
		// DCTCP's two-state ACK machine: when the CE state changes, flush
		// an immediate ACK that still reflects the old state for the
		// segments it covers, then adopt the new state. This preserves the
		// exact marked-byte accounting at the sender.
		if ce != r.ceState {
			if r.pendingSegs > 0 {
				r.stats.ImmediateAcks++
				r.sendAck()
			}
			r.ceState = ce
		}
	}

	seq, end := pkt.Seq, pkt.End()
	switch {
	case end <= r.rcvNxt:
		// Entirely duplicate data: re-ACK immediately so the sender sees
		// the duplicate and can exit its hole-filling path.
		r.stats.DupSegs++
		r.stats.ImmediateAcks++
		r.sendAck()
	case seq > r.rcvNxt:
		// Out of order: buffer and send an immediate duplicate ACK — this
		// is the dupACK stream that drives fast retransmit.
		r.stats.OutOfOrder++
		r.insertOOO(seq, end)
		r.stats.ImmediateAcks++
		r.sendAck()
	default:
		// In-order (possibly overlapping the front): advance, merge any
		// buffered ranges this unblocks, deliver to the application.
		hadHole := len(r.ooo) > 0
		if end > r.rcvNxt {
			advanced := r.advanceTo(end)
			r.stats.DeliveredByte += advanced
			if r.OnData != nil {
				r.OnData(advanced)
			}
		}
		if hadHole {
			// Filled (part of) a hole: ACK immediately (RFC 5681).
			r.stats.ImmediateAcks++
			r.sendAck()
			return
		}
		r.pendingSegs++
		if r.pendingSegs >= r.cfg.DelAckCount {
			r.stats.DelayedAcks++
			r.sendAck()
		} else if !r.delackTimer.Armed() {
			r.delackTimer.Reset(r.cfg.DelAckTimeout)
		}
	}
}

// advanceTo moves rcvNxt to at least end, absorbing any buffered intervals
// that become contiguous, and returns the number of newly delivered bytes.
func (r *Receiver) advanceTo(end int64) int64 {
	old := r.rcvNxt
	r.rcvNxt = end
	for len(r.ooo) > 0 && r.ooo[0].lo <= r.rcvNxt {
		if r.ooo[0].hi > r.rcvNxt {
			r.rcvNxt = r.ooo[0].hi
		}
		r.ooo = r.ooo[1:]
	}
	return r.rcvNxt - old
}

// insertOOO merges [lo, hi) into the sorted disjoint interval set.
func (r *Receiver) insertOOO(lo, hi int64) {
	out := r.ooo[:0:0]
	placed := false
	for _, iv := range r.ooo {
		switch {
		case iv.hi < lo:
			out = append(out, iv)
		case hi < iv.lo:
			if !placed {
				out = append(out, interval{lo, hi})
				placed = true
			}
			out = append(out, iv)
		default:
			// Overlapping or touching: absorb into the candidate.
			if iv.lo < lo {
				lo = iv.lo
			}
			if iv.hi > hi {
				hi = iv.hi
			}
		}
	}
	if !placed {
		out = append(out, interval{lo, hi})
	}
	r.ooo = out
}

// sendAck emits a cumulative ACK reflecting the current ECN echo state and
// clears any pending delayed-ACK obligation.
func (r *Receiver) sendAck() {
	flags := packet.FlagACK
	switch r.cfg.ECN {
	case ECNClassic:
		if r.eceLatch {
			flags |= packet.FlagECE
		}
	case ECNPrecise:
		if r.ceState {
			flags |= packet.FlagECE
		}
	}
	r.pendingSegs = 0
	r.delackTimer.Stop()
	r.stats.AcksOut++
	r.host.Send(&packet.Packet{
		Dst:      r.peer,
		Flow:     r.flow,
		AckNo:    r.rcvNxt,
		Flags:    flags,
		SendTime: r.sched.Now(),
	})
}
