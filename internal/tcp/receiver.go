package tcp

import (
	"dctcpplus/internal/check"
	"dctcpplus/internal/netsim"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

// ReceiverStats counts events at the receiving endpoint.
type ReceiverStats struct {
	SegsIn        int64
	BytesIn       int64 // payload bytes arriving (including duplicates)
	DeliveredByte int64 // in-order bytes handed to the application
	DupSegs       int64 // fully duplicate segments
	OutOfOrder    int64 // segments buffered ahead of a hole
	AcksOut       int64
	DelayedAcks   int64 // ACKs sent by the delayed-ACK counter/timer path
	ImmediateAcks int64 // ACKs forced by dup/out-of-order/CE-transition
	CEMarskSeen   int64 // data segments arriving with CE set
}

// interval is a half-open byte range [lo, hi) in the reassembly buffer.
type interval struct{ lo, hi int64 }

// Receiver is the receiving half of a connection: it reassembles the byte
// stream, generates (delayed) cumulative ACKs, and implements the ECN echo
// semantics — either the RFC 3168 latch or DCTCP's precise two-state
// delayed-ACK machine, which is what lets the DCTCP sender estimate the
// fraction of marked packets.
type Receiver struct {
	cfg   Config
	host  *netsim.Host
	sched *sim.Scheduler
	flow  packet.FlowID
	peer  packet.NodeID

	rcvNxt int64
	ooo    []interval // sorted, disjoint, all above rcvNxt

	// pendingSegs counts in-order segments not yet acknowledged; reaching
	// DelAckCount triggers an ACK that resets it.
	//inv: 0 <= pendingSegs && pendingSegs <= cfg.DelAckCount
	pendingSegs int
	delackTimer *sim.Timer

	// ECN echo state.
	eceLatch bool // RFC 3168: set by CE, cleared by CWR
	ceState  bool // DCTCP: CE state of the most recent data segment

	stats ReceiverStats

	// OnData observes each in-order delivery (n bytes).
	OnData func(n int64)
}

// NewReceiver creates a receiver for flow on host, acknowledging toward
// peer, and registers it for the flow's data segments.
func NewReceiver(cfg Config, host *netsim.Host, peer packet.NodeID, flow packet.FlowID) *Receiver {
	cfg.validate()
	r := &Receiver{
		cfg:   cfg,
		host:  host,
		sched: host.Scheduler(),
		flow:  flow,
		peer:  peer,
	}
	r.delackTimer = sim.NewTimer(r.sched, func() {
		if r.pendingSegs > 0 {
			r.stats.DelayedAcks++
			r.sendAck()
		}
	})
	host.Register(flow, netsim.FlowHandlerFunc(r.Deliver))
	return r
}

// RcvNxt returns the next expected in-order byte.
func (r *Receiver) RcvNxt() int64 { return r.rcvNxt }

// Peer returns the node id of the sending endpoint.
func (r *Receiver) Peer() packet.NodeID { return r.peer }

// Stats returns a snapshot of the receiver counters.
func (r *Receiver) Stats() ReceiverStats { return r.stats }

// Close unregisters the receiver from its host.
func (r *Receiver) Close() {
	r.delackTimer.Stop()
	r.host.Unregister(r.flow)
}

// Deliver processes one arriving data segment.
func (r *Receiver) Deliver(pkt *packet.Packet) {
	if !pkt.IsData() {
		return
	}
	r.stats.SegsIn++
	r.stats.BytesIn += int64(pkt.Payload)

	ce := pkt.ECN == packet.CE
	if ce {
		r.stats.CEMarskSeen++
	}
	switch r.cfg.ECN {
	case ECNOff:
		// No ECN negotiation: marks (which should not occur) are ignored.
	case ECNClassic:
		// RFC 3168: CWR from the sender clears the latch; a CE mark sets
		// it. Process CWR first so a marked CWR segment re-latches.
		if pkt.Flags.Has(packet.FlagCWR) {
			r.eceLatch = false
		}
		if ce {
			r.eceLatch = true
		}
	case ECNPrecise:
		// DCTCP's two-state ACK machine: when the CE state changes, flush
		// an immediate ACK that still reflects the old state for the
		// segments it covers, then adopt the new state. This preserves the
		// exact marked-byte accounting at the sender.
		if ce != r.ceState {
			if r.pendingSegs > 0 {
				r.stats.ImmediateAcks++
				r.sendAck()
			}
			r.ceState = ce
		}
	default:
		panic("tcp: unknown ECN mode")
	}

	seq, end := pkt.Seq, pkt.End()
	switch {
	case end <= r.rcvNxt:
		// Entirely duplicate data: re-ACK immediately so the sender sees
		// the duplicate and can exit its hole-filling path.
		r.stats.DupSegs++
		r.stats.ImmediateAcks++
		r.sendAck()
	case seq > r.rcvNxt:
		// Out of order: buffer and send an immediate duplicate ACK — this
		// is the dupACK stream that drives fast retransmit.
		r.stats.OutOfOrder++
		r.insertOOO(seq, end)
		r.stats.ImmediateAcks++
		r.sendAck()
	default:
		// In-order (possibly overlapping the front): advance, merge any
		// buffered ranges this unblocks, deliver to the application.
		hadHole := len(r.ooo) > 0
		if end > r.rcvNxt {
			advanced := r.advanceTo(end)
			r.stats.DeliveredByte += advanced
			if r.OnData != nil {
				r.OnData(advanced)
			}
		}
		if hadHole {
			// Filled (part of) a hole: ACK immediately (RFC 5681).
			r.stats.ImmediateAcks++
			r.sendAck()
			return
		}
		r.pendingSegs++
		if r.pendingSegs >= r.cfg.DelAckCount {
			r.stats.DelayedAcks++
			r.sendAck()
		} else if !r.delackTimer.Armed() {
			r.delackTimer.Reset(r.cfg.DelAckTimeout)
		}
		check.AtMost("tcp.receiver pending segments", int64(r.pendingSegs), int64(r.cfg.DelAckCount))
	}
}

// advanceTo moves rcvNxt to at least end, absorbing any buffered intervals
// that become contiguous, and returns the number of newly delivered bytes.
func (r *Receiver) advanceTo(end int64) int64 {
	old := r.rcvNxt
	r.rcvNxt = end
	drop := 0
	for drop < len(r.ooo) && r.ooo[drop].lo <= r.rcvNxt {
		if r.ooo[drop].hi > r.rcvNxt {
			r.rcvNxt = r.ooo[drop].hi
		}
		drop++
	}
	if drop > 0 {
		// Copy down instead of re-slicing the front off: the backing array
		// keeps its high-water capacity, so reassembly churn never allocates
		// in steady state.
		n := copy(r.ooo, r.ooo[drop:])
		r.ooo = r.ooo[:n]
	}
	return r.rcvNxt - old
}

// insertOOO merges [lo, hi) into the sorted disjoint interval set, in
// place: intervals overlapping or touching the new range collapse into one,
// and the slice only grows (amortized) when a genuinely new hole appears.
func (r *Receiver) insertOOO(lo, hi int64) {
	n := len(r.ooo)
	// [i, j) is the window of existing intervals that overlap or touch
	// [lo, hi); everything before i lies strictly below, everything from j
	// on strictly above.
	i := 0
	for i < n && r.ooo[i].hi < lo {
		i++
	}
	j := i
	for j < n && r.ooo[j].lo <= hi {
		if r.ooo[j].lo < lo {
			lo = r.ooo[j].lo
		}
		if r.ooo[j].hi > hi {
			hi = r.ooo[j].hi
		}
		j++
	}
	if i == j {
		// Disjoint from everything: open a slot at i.
		//lint:allow hotalloc reassembly-buffer growth is amortized: capacity tracks the high-water hole count and is then reused
		r.ooo = append(r.ooo, interval{})
		copy(r.ooo[i+1:], r.ooo[i:])
		r.ooo[i] = interval{lo, hi}
		return
	}
	// Replace the window with the single merged interval and close the gap.
	r.ooo[i] = interval{lo, hi}
	copy(r.ooo[i+1:], r.ooo[j:])
	r.ooo = r.ooo[:n-(j-i)+1]
}

// sendAck emits a cumulative ACK reflecting the current ECN echo state and
// clears any pending delayed-ACK obligation.
func (r *Receiver) sendAck() {
	flags := packet.FlagACK
	switch r.cfg.ECN {
	case ECNOff:
		// Plain cumulative ACK; there is no echo state to reflect.
	case ECNClassic:
		if r.eceLatch {
			flags |= packet.FlagECE
		}
	case ECNPrecise:
		if r.ceState {
			flags |= packet.FlagECE
		}
	default:
		panic("tcp: unknown ECN mode")
	}
	r.pendingSegs = 0
	r.delackTimer.Stop()
	r.stats.AcksOut++
	// Minted from the host's pool (a plain allocation when pooling is off);
	// AllocPacket returns a zeroed packet, so only the live fields are set.
	pkt := r.host.AllocPacket()
	pkt.Dst = r.peer
	pkt.Flow = r.flow
	pkt.AckNo = r.rcvNxt
	pkt.Flags = flags
	pkt.SendTime = r.sched.Now()
	r.host.Send(pkt)
}
