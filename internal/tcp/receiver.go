package tcp

import (
	"dctcpplus/internal/check"
	"dctcpplus/internal/netsim"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

// ReceiverStats counts events at the receiving endpoint.
type ReceiverStats struct {
	SegsIn        int64
	BytesIn       int64 // payload bytes arriving (including duplicates)
	DeliveredByte int64 // in-order bytes handed to the application
	DupSegs       int64 // fully duplicate segments
	OutOfOrder    int64 // segments buffered ahead of a hole
	AcksOut       int64
	DelayedAcks   int64 // ACKs sent by the delayed-ACK counter/timer path
	ImmediateAcks int64 // ACKs forced by dup/out-of-order/CE-transition
	CEMarskSeen   int64 // data segments arriving with CE set
}

// interval is a half-open byte range [lo, hi) in the reassembly buffer. ce
// records the ECN state the bytes *first* arrived with: under DCTCP precise
// echo the sender's marked-byte accounting is driven by which copy of the
// data the receiver kept, so a retransmitted overlap never rewrites the
// state of bytes already buffered.
type interval struct {
	lo, hi int64
	ce     bool
}

// ackRun is one CE-uniform stretch of newly in-order bytes: when a hole
// fill absorbs buffered intervals with mixed CE states, each run gets its
// own cumulative ACK so the precise-echo accounting stays exact.
type ackRun struct {
	upTo int64
	ce   bool
}

// Receiver is the receiving half of a connection: it reassembles the byte
// stream, generates (delayed) cumulative ACKs, and implements the ECN echo
// semantics — either the RFC 3168 latch or DCTCP's precise two-state
// delayed-ACK machine, which is what lets the DCTCP sender estimate the
// fraction of marked packets.
type Receiver struct {
	cfg   Config
	host  *netsim.Host
	sched *sim.Scheduler
	flow  packet.FlowID
	peer  packet.NodeID

	rcvNxt int64
	ooo    []interval // sorted, disjoint, all above rcvNxt
	// ackRuns is the reused scratch for advanceTo's CE-uniform run
	// decomposition (capacity tracks the high-water run count).
	ackRuns []ackRun

	// pendingSegs counts in-order segments not yet acknowledged; reaching
	// DelAckCount triggers an ACK that resets it.
	//inv: 0 <= pendingSegs && pendingSegs <= cfg.DelAckCount
	pendingSegs int
	delackTimer *sim.Timer

	// ECN echo state.
	eceLatch bool // RFC 3168: set by CE, cleared by CWR
	ceState  bool // DCTCP: CE state of the most recent data segment

	stats ReceiverStats

	// OnData observes each in-order delivery (n bytes).
	OnData func(n int64)
	// OnAckSent observes every ACK at the exact emission instant, before any
	// host-queue or serialization delay — the receiver-side tap the oracle
	// conformance layer replays ACK streams from. The packet is recycled
	// after Send; observers must copy fields out synchronously.
	OnAckSent func(pkt *packet.Packet)
}

// NewReceiver creates a receiver for flow on host, acknowledging toward
// peer, and registers it for the flow's data segments.
func NewReceiver(cfg Config, host *netsim.Host, peer packet.NodeID, flow packet.FlowID) *Receiver {
	cfg.validate()
	r := &Receiver{
		cfg:   cfg,
		host:  host,
		sched: host.Scheduler(),
		flow:  flow,
		peer:  peer,
	}
	r.delackTimer = sim.NewTimer(r.sched, func() {
		if r.pendingSegs > 0 {
			r.stats.DelayedAcks++
			r.sendAck()
		}
	})
	host.Register(flow, netsim.FlowHandlerFunc(r.Deliver))
	return r
}

// RcvNxt returns the next expected in-order byte.
func (r *Receiver) RcvNxt() int64 { return r.rcvNxt }

// Peer returns the node id of the sending endpoint.
func (r *Receiver) Peer() packet.NodeID { return r.peer }

// Stats returns a snapshot of the receiver counters.
func (r *Receiver) Stats() ReceiverStats { return r.stats }

// Close unregisters the receiver from its host.
func (r *Receiver) Close() {
	r.delackTimer.Stop()
	r.host.Unregister(r.flow)
}

// Deliver processes one arriving data segment.
func (r *Receiver) Deliver(pkt *packet.Packet) {
	if !pkt.IsData() {
		return
	}
	r.stats.SegsIn++
	r.stats.BytesIn += int64(pkt.Payload)

	ce := pkt.ECN == packet.CE
	if ce {
		r.stats.CEMarskSeen++
	}
	switch r.cfg.ECN {
	case ECNOff:
		// No ECN negotiation: marks (which should not occur) are ignored.
	case ECNClassic:
		// RFC 3168: CWR from the sender clears the latch; a CE mark sets
		// it. Process CWR first so a marked CWR segment re-latches.
		if pkt.Flags.Has(packet.FlagCWR) {
			r.eceLatch = false
		}
		if ce {
			r.eceLatch = true
		}
	case ECNPrecise:
		// DCTCP's two-state ACK machine: when the CE state changes, flush
		// an immediate ACK that still reflects the old state for the
		// segments it covers, then adopt the new state. This preserves the
		// exact marked-byte accounting at the sender.
		if ce != r.ceState {
			if r.pendingSegs > 0 {
				r.stats.ImmediateAcks++
				r.sendAck()
			}
			r.ceState = ce
		}
	default:
		panic("tcp: unknown ECN mode")
	}

	seq, end := pkt.Seq, pkt.End()
	switch {
	case end <= r.rcvNxt:
		// Entirely duplicate data: re-ACK immediately so the sender sees
		// the duplicate and can exit its hole-filling path.
		r.stats.DupSegs++
		r.stats.ImmediateAcks++
		r.sendAck()
	case seq > r.rcvNxt:
		// Out of order: buffer and send an immediate duplicate ACK — this
		// is the dupACK stream that drives fast retransmit.
		r.stats.OutOfOrder++
		r.insertOOO(seq, end, ce)
		r.stats.ImmediateAcks++
		r.sendAck()
	default:
		// In-order (possibly overlapping the front): advance, merge any
		// buffered ranges this unblocks, deliver to the application.
		hadHole := len(r.ooo) > 0
		if end > r.rcvNxt {
			advanced := r.advanceTo(end, ce)
			r.stats.DeliveredByte += advanced
			if r.OnData != nil {
				r.OnData(advanced)
			}
		}
		if hadHole {
			// Filled (part of) a hole: ACK immediately (RFC 5681). Under
			// precise echo the newly in-order range may interleave CE and
			// non-CE bytes (the filling retransmission is typically unmarked
			// while the buffered segments behind the hole were marked): a
			// single cumulative ACK would attribute the whole range to one
			// ECE bit and corrupt the sender's marked-byte fraction. Emit
			// one cumulative ACK per CE-uniform run instead — the delayed-ACK
			// aggregation rule of the DCTCP precise-echo state machine, one
			// ACK per CE-state flip.
			if r.cfg.ECN == ECNPrecise && len(r.ackRuns) > 1 {
				for _, run := range r.ackRuns {
					r.ceState = run.ce
					r.stats.ImmediateAcks++
					r.sendAckAt(run.upTo)
				}
				return
			}
			r.stats.ImmediateAcks++
			r.sendAck()
			return
		}
		r.pendingSegs++
		if r.pendingSegs >= r.cfg.DelAckCount {
			r.stats.DelayedAcks++
			r.sendAck()
		} else if !r.delackTimer.Armed() {
			r.delackTimer.Reset(r.cfg.DelAckTimeout)
		}
		check.AtMost("tcp.receiver pending segments", int64(r.pendingSegs), int64(r.cfg.DelAckCount))
	}
}

// advanceTo moves rcvNxt to at least end, absorbing any buffered intervals
// that become contiguous, and returns the number of newly delivered bytes.
// ce is the ECN state of the segment driving the advance; the bytes it
// contributes directly (the gaps between absorbed intervals) carry it, while
// absorbed intervals keep the state their bytes first arrived with. The
// CE-uniform run decomposition of the advance is left in r.ackRuns for the
// caller (adjacent same-state runs are merged, so len(ackRuns) > 1 iff the
// advance genuinely mixes CE states).
func (r *Receiver) advanceTo(end int64, ce bool) int64 {
	old := r.rcvNxt
	r.ackRuns = r.ackRuns[:0]
	pos := old
	drop := 0
	for {
		if drop < len(r.ooo) && r.ooo[drop].lo <= pos {
			// Contiguous buffered interval: absorb it with its own CE state.
			if iv := r.ooo[drop]; iv.hi > pos {
				r.pushRun(iv.hi, iv.ce)
				pos = iv.hi
			}
			drop++
			continue
		}
		if pos < end {
			// Bytes supplied by the arriving segment itself, up to the next
			// buffered interval (or end).
			nxt := end
			if drop < len(r.ooo) && r.ooo[drop].lo < nxt {
				nxt = r.ooo[drop].lo
			}
			r.pushRun(nxt, ce)
			pos = nxt
			continue
		}
		break
	}
	r.rcvNxt = pos
	if drop > 0 {
		// Copy down instead of re-slicing the front off: the backing array
		// keeps its high-water capacity, so reassembly churn never allocates
		// in steady state.
		n := copy(r.ooo, r.ooo[drop:])
		r.ooo = r.ooo[:n]
	}
	return r.rcvNxt - old
}

// pushRun extends the run decomposition to upTo, merging into the previous
// run when the CE state is unchanged.
func (r *Receiver) pushRun(upTo int64, ce bool) {
	if n := len(r.ackRuns); n > 0 && r.ackRuns[n-1].ce == ce {
		r.ackRuns[n-1].upTo = upTo
		return
	}
	//lint:allow hotalloc run-scratch growth is amortized: capacity tracks the high-water run count and is then reused
	r.ackRuns = append(r.ackRuns, ackRun{upTo, ce})
}

// insertOOO records [lo, hi) in the sorted disjoint interval set, in place.
// First arrival wins: sub-ranges already buffered keep the CE state of the
// copy the receiver kept, and only genuinely new bytes take the arriving
// segment's state. Touching neighbors coalesce only when their CE states
// match, so the set stays sorted, disjoint, and CE-uniform per interval.
func (r *Receiver) insertOOO(lo, hi int64, ce bool) {
	// Walk pos across [lo, hi), filling each uncovered gap with a new
	// ce-state interval slotted in sorted position.
	pos := lo
	i := 0
	for pos < hi {
		if i < len(r.ooo) && r.ooo[i].lo <= pos {
			// Existing interval covers (a prefix of) the remainder.
			if r.ooo[i].hi > pos {
				pos = r.ooo[i].hi
			}
			i++
			continue
		}
		gapHi := hi
		if i < len(r.ooo) && r.ooo[i].lo < gapHi {
			gapHi = r.ooo[i].lo
		}
		// Open a slot at i for the uncovered sub-range.
		//lint:allow hotalloc reassembly-buffer growth is amortized: capacity tracks the high-water hole count and is then reused
		r.ooo = append(r.ooo, interval{})
		copy(r.ooo[i+1:], r.ooo[i:])
		r.ooo[i] = interval{pos, gapHi, ce}
		i++
		pos = gapHi
	}
	// One compaction pass: merge touching neighbors with equal CE state.
	w := 0
	for k := 1; k < len(r.ooo); k++ {
		if r.ooo[k].lo <= r.ooo[w].hi && r.ooo[k].ce == r.ooo[w].ce {
			if r.ooo[k].hi > r.ooo[w].hi {
				r.ooo[w].hi = r.ooo[k].hi
			}
			continue
		}
		w++
		r.ooo[w] = r.ooo[k]
	}
	r.ooo = r.ooo[:w+1]
}

// sendAck emits a cumulative ACK for rcvNxt reflecting the current ECN echo
// state and clears any pending delayed-ACK obligation.
func (r *Receiver) sendAck() { r.sendAckAt(r.rcvNxt) }

// sendAckAt emits a cumulative ACK acknowledging through ackNo (normally
// rcvNxt; the run-splitting hole-fill path passes intermediate run
// boundaries) reflecting the current ECN echo state.
func (r *Receiver) sendAckAt(ackNo int64) {
	flags := packet.FlagACK
	switch r.cfg.ECN {
	case ECNOff:
		// Plain cumulative ACK; there is no echo state to reflect.
	case ECNClassic:
		if r.eceLatch {
			flags |= packet.FlagECE
		}
	case ECNPrecise:
		if r.ceState {
			flags |= packet.FlagECE
		}
	default:
		panic("tcp: unknown ECN mode")
	}
	r.pendingSegs = 0
	r.delackTimer.Stop()
	r.stats.AcksOut++
	// Minted from the host's pool (a plain allocation when pooling is off);
	// AllocPacket returns a zeroed packet, so only the live fields are set.
	pkt := r.host.AllocPacket()
	pkt.Dst = r.peer
	pkt.Flow = r.flow
	pkt.AckNo = ackNo
	pkt.Flags = flags
	pkt.SendTime = r.sched.Now()
	if r.OnAckSent != nil {
		r.OnAckSent(pkt)
	}
	r.host.Send(pkt)
}
