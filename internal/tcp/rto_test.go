package tcp

import (
	"testing"
	"testing/quick"

	"dctcpplus/internal/sim"
)

func estCfg(min, max, init sim.Duration) Config {
	cfg := DefaultConfig()
	cfg.RTOMin, cfg.RTOMax, cfg.RTOInit = min, max, init
	return cfg
}

func TestRTTEstimatorFirstSample(t *testing.T) {
	e := newRTTEstimator(estCfg(1*sim.Millisecond, 10*sim.Second, 3*sim.Second))
	if e.HasSample() {
		t.Error("fresh estimator claims a sample")
	}
	if e.RTO() != 3*sim.Second {
		t.Errorf("initial RTO = %v, want RTOInit", e.RTO())
	}
	e.Sample(100 * sim.Microsecond)
	if !e.HasSample() {
		t.Error("sample not recorded")
	}
	if e.SRTT() != 100*sim.Microsecond {
		t.Errorf("SRTT = %v", e.SRTT())
	}
	// RFC 6298: after first sample RTO = srtt + 4*rttvar = 100 + 4*50 = 300us,
	// clamped up to RTOMin = 1ms.
	if e.RTO() != 1*sim.Millisecond {
		t.Errorf("RTO = %v, want clamped to 1ms", e.RTO())
	}
}

func TestRTTEstimatorConvergesToSteadyRTT(t *testing.T) {
	e := newRTTEstimator(estCfg(1, 10*sim.Second, sim.Second))
	for i := 0; i < 100; i++ {
		e.Sample(200 * sim.Microsecond)
	}
	if got := e.SRTT(); got < 190*sim.Microsecond || got > 210*sim.Microsecond {
		t.Errorf("SRTT = %v, want ~200us", got)
	}
	// Variance decays toward zero, so RTO approaches SRTT (plus clamp floor).
	if got := e.RTO(); got > 300*sim.Microsecond {
		t.Errorf("RTO = %v, want near SRTT after steady samples", got)
	}
}

func TestRTTEstimatorTracksIncrease(t *testing.T) {
	e := newRTTEstimator(estCfg(1, 10*sim.Second, sim.Second))
	e.Sample(100 * sim.Microsecond)
	for i := 0; i < 50; i++ {
		e.Sample(1 * sim.Millisecond)
	}
	if got := e.SRTT(); got < 900*sim.Microsecond {
		t.Errorf("SRTT = %v did not track increase", got)
	}
}

func TestRTOClampMax(t *testing.T) {
	e := newRTTEstimator(estCfg(1*sim.Millisecond, 2*sim.Millisecond, sim.Second))
	e.Sample(100 * sim.Millisecond)
	if got := e.RTO(); got != 2*sim.Millisecond {
		t.Errorf("RTO = %v, want clamped to max", got)
	}
}

func TestRTOInitBelowMinClamped(t *testing.T) {
	e := newRTTEstimator(estCfg(200*sim.Millisecond, sim.Second, 10*sim.Millisecond))
	if got := e.RTO(); got != 200*sim.Millisecond {
		t.Errorf("pre-sample RTO = %v, want RTOMin", got)
	}
}

func TestSampleNonPositiveClamped(t *testing.T) {
	e := newRTTEstimator(estCfg(1, sim.Second, sim.Second))
	e.Sample(0)
	e.Sample(-5)
	if e.SRTT() <= 0 {
		t.Errorf("SRTT = %v after degenerate samples", e.SRTT())
	}
}

// Property: RTO is always within [RTOMin, RTOMax] no matter the samples.
func TestRTOBoundsProperty(t *testing.T) {
	f := func(samples []uint32) bool {
		min, max := 10*sim.Millisecond, 3*sim.Second
		e := newRTTEstimator(estCfg(min, max, 200*sim.Millisecond))
		for _, s := range samples {
			e.Sample(sim.Duration(s))
			rto := e.RTO()
			if rto < min || rto > max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: SRTT always lies within the envelope of observed samples.
func TestSRTTEnvelopeProperty(t *testing.T) {
	f := func(samples []uint32) bool {
		if len(samples) == 0 {
			return true
		}
		e := newRTTEstimator(estCfg(1, sim.Second, sim.Second))
		lo, hi := sim.Duration(1<<62), sim.Duration(0)
		for _, s := range samples {
			d := sim.Duration(s%1_000_000) + 1
			if d < lo {
				lo = d
			}
			if d > hi {
				hi = d
			}
			e.Sample(d)
		}
		return e.SRTT() >= lo && e.SRTT() <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
