package tcp

import (
	"testing"

	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

// pacedCC is a test congestion module with a fixed pacing gap and an
// optional growth cap.
type pacedCC struct {
	NewReno
	gap sim.Duration
	cap float64 // 0 = no cap
}

func (p *pacedCC) PacingDelay(*Sender) sim.Duration { return p.gap }
func (p *pacedCC) CwndCap(*Sender) (float64, bool)  { return p.cap, p.cap > 0 }

func TestPacingSpacesTransmissions(t *testing.T) {
	w := newWire(t)
	var arrivals []sim.Time
	prev := w.filter.mangle
	w.filter.mangle = func(p *packet.Packet) {
		if prev != nil {
			prev(p)
		}
		if p.IsData() {
			arrivals = append(arrivals, w.sched.Now())
		}
	}
	cfg := DefaultConfig()
	cfg.InitialCwnd = 8
	const gap = 500 * sim.Microsecond
	c := w.conn(cfg, &pacedCC{gap: gap})
	c.Sender.Send(6 * packet.MSS)
	w.sched.Run()
	if len(arrivals) != 6 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	for i := 1; i < len(arrivals); i++ {
		if d := arrivals[i].Sub(arrivals[i-1]); d < gap {
			t.Errorf("inter-arrival %d = %v, want >= %v", i, d, gap)
		}
	}
}

func TestPacingDelaysFirstPacketAfterIdle(t *testing.T) {
	// The kernel-hrtimer semantics: even the first packet of a fresh burst
	// waits the pacing delay — this is the desynchronization lever.
	w := newWire(t)
	var firstSend sim.Time = -1
	w.filter.mangle = func(p *packet.Packet) {
		if p.IsData() && firstSend < 0 {
			firstSend = w.sched.Now()
		}
	}
	const gap = 2 * sim.Millisecond
	c := w.conn(DefaultConfig(), &pacedCC{gap: gap})
	w.sched.After(sim.Duration(0), func() { c.Sender.Send(packet.MSS) })
	w.sched.Run()
	if firstSend < sim.Time(gap) {
		t.Errorf("first packet left at %v, want >= %v (paced from eligibility)", firstSend, gap)
	}
}

func TestUnpacedSendsImmediately(t *testing.T) {
	w := newWire(t)
	var firstSend sim.Time = -1
	w.filter.mangle = func(p *packet.Packet) {
		if p.IsData() && firstSend < 0 {
			firstSend = w.sched.Now()
		}
	}
	c := w.conn(DefaultConfig(), NewReno{})
	c.Sender.Send(packet.MSS)
	w.sched.Run()
	// Only serialization (12us) + filter hop: well under 100us.
	if firstSend > sim.Time(100*sim.Microsecond) {
		t.Errorf("unpaced first packet at %v", firstSend)
	}
}

func TestCwndCapFreezesGrowth(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.InitialCwnd = 2
	c := w.conn(cfg, &pacedCC{cap: 2})
	c.Sender.Send(100 * packet.MSS)
	w.sched.Run()
	if !c.Sender.Done() {
		t.Fatal("transfer incomplete")
	}
	if got := c.Sender.CwndMSS(); got != 2 {
		t.Errorf("cwnd = %v, want frozen at cap 2", got)
	}
}

func TestCwndCapDoesNotForceReduction(t *testing.T) {
	// A cap below the current window freezes growth but must not shrink
	// the window by itself.
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.InitialCwnd = 6
	c := w.conn(cfg, &pacedCC{cap: 2})
	c.Sender.Send(50 * packet.MSS)
	w.sched.Run()
	if got := c.Sender.CwndMSS(); got != 6 {
		t.Errorf("cwnd = %v, want unchanged 6", got)
	}
}

func TestSlowStartAfterIdleRestartsWindow(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.MaxCwnd = 40
	c := w.conn(cfg, NewReno{})
	c.Sender.Send(200 * packet.MSS)
	w.sched.Run()
	grown := c.Sender.CwndMSS()
	if grown <= cfg.InitialCwnd {
		t.Fatalf("cwnd did not grow: %v", grown)
	}
	// Idle well past the RTO, then send again: the window must restart.
	w.sched.After(2*sim.Second, func() { c.Sender.Send(packet.MSS) })
	w.sched.Run()
	if got := c.Sender.CwndMSS(); got > cfg.InitialCwnd+1 {
		t.Errorf("cwnd after idle = %v, want restarted near %v", got, cfg.InitialCwnd)
	}
}

func TestNoRestartWithoutIdle(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.MaxCwnd = 40
	c := w.conn(cfg, NewReno{})
	var cwndAtSecondSend float64
	count := 0
	c.Sender.OnComplete = func(int64) {
		count++
		if count == 1 {
			cwndAtSecondSend = c.Sender.CwndMSS()
			c.Sender.Send(10 * packet.MSS) // immediately: no idle
		}
	}
	c.Sender.Send(200 * packet.MSS)
	w.sched.Run()
	if c.Sender.CwndMSS() < cwndAtSecondSend {
		t.Errorf("window restarted without idle: %v -> %v",
			cwndAtSecondSend, c.Sender.CwndMSS())
	}
}

func TestSlowStartAfterIdleDisabled(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.MaxCwnd = 40
	cfg.SlowStartAfterIdle = false
	c := w.conn(cfg, NewReno{})
	c.Sender.Send(200 * packet.MSS)
	w.sched.Run()
	grown := c.Sender.CwndMSS()
	w.sched.After(2*sim.Second, func() { c.Sender.Send(packet.MSS) })
	w.sched.Run()
	if got := c.Sender.CwndMSS(); got < grown {
		t.Errorf("disabled restart still shrank window: %v -> %v", grown, got)
	}
}

func TestGoBackNMarksRetransmissions(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.RTOMin = 10 * sim.Millisecond
	cfg.RTOInit = 10 * sim.Millisecond
	cfg.InitialCwnd = 4
	cfg.DelAckCount = 1
	c := w.conn(cfg, NewReno{})
	// Lose the entire first window once.
	dropped := 0
	w.filter.drop = func(p *packet.Packet) bool {
		if p.IsData() && dropped < 4 && !p.Retransmit {
			dropped++
			return true
		}
		return false
	}
	var rtxSeqs []int64
	w.filter.mangle = func(p *packet.Packet) {
		if p.IsData() && p.Retransmit {
			rtxSeqs = append(rtxSeqs, p.Seq)
		}
	}
	c.Sender.Send(4 * packet.MSS)
	w.sched.Run()
	if !c.Sender.Done() {
		t.Fatal("incomplete")
	}
	if len(rtxSeqs) != 4 {
		t.Errorf("retransmitted %d segments (%v), want all 4 marked Retransmit", len(rtxSeqs), rtxSeqs)
	}
	if got := c.Sender.Stats().RetransPkts; got != 4 {
		t.Errorf("stats.RetransPkts = %d", got)
	}
}

func TestLimitedTransmitEnablesFastRetransmit(t *testing.T) {
	// cwnd=2, lose the 2nd segment: the ACK of the 1st grows the window to
	// 3 and releases two new segments, whose dupacks stall at 2 — below
	// DupThresh — so without limited transmit only the RTO recovers. With
	// it, the two probe segments produce the 3rd and 4th dupacks and fast
	// retransmit repairs the loss.
	run := func(lt bool) SenderStats {
		w := newWire(t)
		cfg := DefaultConfig()
		cfg.InitialCwnd = 2
		cfg.DelAckCount = 1
		cfg.LimitedTransmit = lt
		cfg.RTOMin = 10 * sim.Millisecond
		cfg.RTOInit = 10 * sim.Millisecond
		c := w.conn(cfg, NewReno{})
		w.filter.drop = dropSeqOnce(1 * packet.MSS)
		c.Sender.Send(20 * packet.MSS)
		w.sched.Run()
		if !c.Sender.Done() {
			t.Fatal("incomplete")
		}
		return c.Sender.Stats()
	}
	with := run(true)
	without := run(false)
	if with.Timeouts != 0 || with.FastRecoveries != 1 {
		t.Errorf("with LT: timeouts=%d recoveries=%d, want 0/1", with.Timeouts, with.FastRecoveries)
	}
	if without.Timeouts != 1 {
		t.Errorf("without LT: timeouts=%d, want 1 (LAck-TO)", without.Timeouts)
	}
	if without.LAckTimeouts != 1 {
		t.Errorf("without LT: LAck=%d", without.LAckTimeouts)
	}
}

func TestLimitedTransmitCannotSaveMinimumWindow(t *testing.T) {
	// The paper's point: at a 2-MSS window with nothing left to send,
	// limited transmit has no new data to probe with — the loss still
	// costs an RTO. Send exactly 2 segments and drop the first.
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.InitialCwnd = 2
	cfg.DelAckCount = 1
	cfg.LimitedTransmit = true
	cfg.RTOMin = 10 * sim.Millisecond
	cfg.RTOInit = 10 * sim.Millisecond
	c := w.conn(cfg, NewReno{})
	w.filter.drop = dropSeqOnce(0)
	c.Sender.Send(2 * packet.MSS)
	w.sched.Run()
	if !c.Sender.Done() {
		t.Fatal("incomplete")
	}
	st := c.Sender.Stats()
	if st.Timeouts != 1 {
		t.Errorf("timeouts = %d, want 1 despite limited transmit", st.Timeouts)
	}
}

func TestECELatchVisibleToSender(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.ECN = ECNClassic
	c := w.conn(cfg, NewReno{})
	if c.Sender.LastAckECE() {
		t.Error("fresh sender reports ECE")
	}
	w.filter.mangle = func(p *packet.Packet) {
		if p.IsData() && p.ECN == packet.ECT {
			p.ECN = packet.CE
		}
	}
	c.Sender.Send(4 * packet.MSS)
	w.sched.Run()
	if !c.Sender.LastAckECE() {
		t.Error("ECE never surfaced at sender")
	}
}
