package tcp

import (
	"testing"

	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

// rtoScenario drives a live connection into a genuine RTO: the wire drops
// every data segment once sndUna passes 4 MSS, and re-opens when the first
// timeout fires, leaving the sender to repair via go-back-N. onRTO runs
// inside the first OnTimeoutEvent (before the rewind, so SndNxt() is still
// the pre-RTO frontier); onProbe sees every ACK after it.
func rtoScenario(t *testing.T, onRTO func(s *Sender), onProbe func(s *Sender)) (*wire, *Sender) {
	t.Helper()
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.DelAckCount = 1
	c := w.conn(cfg, NewReno{})
	snd := c.Sender

	dropping := false
	w.filter.drop = func(p *packet.Packet) bool { return dropping && p.IsData() }

	rtoFired := false
	snd.OnAckProbe = func(ps *Sender, _ bool) {
		if !rtoFired {
			if !dropping && ps.SndUna() >= 4*packet.MSS {
				dropping = true
			}
			return
		}
		onProbe(ps)
	}
	snd.OnTimeoutEvent = func(TimeoutKind) {
		if rtoFired {
			return
		}
		rtoFired = true
		dropping = false // let the go-back-N repair traffic through
		onRTO(snd)
	}
	snd.Send(64 * packet.MSS)
	w.sched.RunUntil(sim.Time(10 * sim.Second))
	if !rtoFired {
		t.Fatal("no RTO fired; the scenario never exercised the backoff")
	}
	return w, snd
}

// Regression (ISSUE 9 satellite 2, failing-before): RFC 6298 §5.5-5.7 with
// Karn's algorithm — the exponential backoff may be cleared only by an RTT
// sample taken from a segment transmitted exactly once. Before the fix the
// sender zeroed rtoBackoff on *every* ACK that advanced sndUna, including
// the cumulative ACKs covering nothing but go-back-N repair traffic, so one
// surviving repair ACK collapsed the backoff while the path was still in
// the exact state that caused the timeout.
func TestBackoffPersistsAcrossRetransmittedAcks(t *testing.T) {
	var high int64 // pre-RTO send frontier: ACKs below it cover only retransmitted data
	repairProbes := 0
	minBackoff := ^uint(0)
	_, snd := rtoScenario(t,
		func(s *Sender) { high = s.SndNxt() },
		func(s *Sender) {
			if s.SndUna() < high {
				repairProbes++
				if s.RTOBackoff() < minBackoff {
					minBackoff = s.RTOBackoff()
				}
			}
		})
	if repairProbes == 0 {
		t.Fatal("no ACKs covering only retransmitted data observed")
	}
	if minBackoff < 1 {
		t.Errorf("backoff dropped to %d during go-back-N repair; ACKs of retransmitted data must not clear it", minBackoff)
	}
	// Once a fresh (never-retransmitted) segment past the old frontier is
	// timed and acknowledged, the backoff must clear.
	if !snd.Done() {
		t.Fatal("transfer did not complete")
	}
	if got := snd.RTOBackoff(); got != 0 {
		t.Errorf("backoff = %d after fresh RTT sample, want 0", got)
	}
}

// Companion regression, the other RFC 6298 direction: SRTT/RTTVAR must not
// take samples from retransmitted segments (their ACK time is ambiguous
// between the original and the retransmission — Karn). During the repair
// phase every in-flight timed sample has been invalidated, so the smoothed
// RTT must stay frozen until a fresh segment past the old frontier is timed
// and acknowledged.
func TestSRTTFrozenDuringRetransmitRepair(t *testing.T) {
	var high int64
	var srttAtRTO sim.Duration
	resampled := false
	_, snd := rtoScenario(t,
		func(s *Sender) { high, srttAtRTO = s.SndNxt(), s.SRTT() },
		func(s *Sender) {
			if s.SndUna() < high {
				if s.SRTT() != srttAtRTO {
					t.Errorf("SRTT moved %v -> %v on an ACK of retransmitted data (snd_una %d < frontier %d)",
						srttAtRTO, s.SRTT(), s.SndUna(), high)
				}
			} else if s.SRTT() != srttAtRTO {
				resampled = true
			}
		})
	if srttAtRTO == 0 {
		t.Fatal("no RTT samples before the RTO; scenario broken")
	}
	if !snd.Done() {
		t.Fatal("transfer did not complete")
	}
	if !resampled {
		t.Error("RTT sampling never resumed from fresh segments after the repair")
	}
}
