package tcp

import "dctcpplus/internal/sim"

// rttEstimator implements RFC 6298 smoothed RTT estimation:
//
//	SRTT    <- (1-1/8) SRTT + 1/8 R'
//	RTTVAR  <- (1-1/4) RTTVAR + 1/4 |SRTT - R'|
//	RTO     <- SRTT + max(G, 4*RTTVAR), clamped to [RTOMin, RTOMax]
//
// Only segments transmitted exactly once are sampled (Karn's algorithm);
// the sender enforces that by invalidating the pending sample whenever the
// timed sequence range is retransmitted.
type rttEstimator struct {
	srtt    sim.Duration
	rttvar  sim.Duration
	hasInit bool

	rtoMin, rtoMax, rtoInit sim.Duration
}

func newRTTEstimator(cfg Config) *rttEstimator {
	return &rttEstimator{rtoMin: cfg.RTOMin, rtoMax: cfg.RTOMax, rtoInit: cfg.RTOInit}
}

// Sample folds a fresh RTT measurement into the estimator.
func (e *rttEstimator) Sample(rtt sim.Duration) {
	if rtt <= 0 {
		rtt = 1
	}
	if !e.hasInit {
		e.srtt = rtt
		e.rttvar = rtt / 2
		e.hasInit = true
		return
	}
	diff := e.srtt - rtt
	if diff < 0 {
		diff = -diff
	}
	e.rttvar = (3*e.rttvar + diff) / 4
	e.srtt = (7*e.srtt + rtt) / 8
}

// RTO returns the current retransmission timeout (without backoff).
func (e *rttEstimator) RTO() sim.Duration {
	if !e.hasInit {
		rto := e.rtoInit
		if rto < e.rtoMin {
			rto = e.rtoMin
		}
		return rto
	}
	rto := e.srtt + 4*e.rttvar
	if rto < e.rtoMin {
		rto = e.rtoMin
	}
	if rto > e.rtoMax {
		rto = e.rtoMax
	}
	return rto
}

// SRTT returns the smoothed RTT (0 before the first sample).
func (e *rttEstimator) SRTT() sim.Duration { return e.srtt }

// HasSample reports whether at least one RTT measurement was folded in.
func (e *rttEstimator) HasSample() bool { return e.hasInit }
