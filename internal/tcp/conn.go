package tcp

import (
	"dctcpplus/internal/netsim"
	"dctcpplus/internal/packet"
)

// Conn pairs a sender and receiver over a shared flow id, modeling one
// pre-established, persistent connection (the incast benchmark reuses its
// connections across rounds, so the experiments never pay a handshake; see
// DESIGN.md for this simplification).
type Conn struct {
	Sender   *Sender
	Receiver *Receiver
}

// NewConn wires a persistent connection carrying data from the sender host
// to the receiver host under the given flow id. cc provides the sender's
// congestion-control module.
func NewConn(cfg Config, cc CongestionControl, from, to *netsim.Host, flow packet.FlowID) *Conn {
	return &Conn{
		Sender:   NewSender(cfg, cc, from, to.ID(), flow),
		Receiver: NewReceiver(cfg, to, from.ID(), flow),
	}
}

// Close unregisters both endpoints.
func (c *Conn) Close() {
	c.Sender.Close()
	c.Receiver.Close()
}
