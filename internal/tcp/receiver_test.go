package tcp

import (
	"sort"
	"testing"
	"testing/quick"

	"dctcpplus/internal/netsim"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

func TestDelayedAckCoalescing(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig() // DelAckCount = 2
	cfg.InitialCwnd = 8
	c := w.conn(cfg, NewReno{})
	c.Sender.Send(8 * packet.MSS)
	w.sched.Run()
	rst := c.Receiver.Stats()
	// 8 in-order segments, acked in pairs -> ~4 ACKs, certainly fewer than 8.
	if rst.AcksOut >= rst.SegsIn {
		t.Errorf("acks=%d segs=%d: delayed ACKs not coalescing", rst.AcksOut, rst.SegsIn)
	}
	if rst.DeliveredByte != 8*packet.MSS {
		t.Errorf("delivered %d", rst.DeliveredByte)
	}
}

func TestDelAckTimerFlushesOddSegment(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.InitialCwnd = 3
	c := w.conn(cfg, NewReno{})
	done := false
	var when sim.Time
	c.Sender.OnComplete = func(int64) { done, when = true, w.sched.Now() }
	// 3 segments: the 3rd waits on the 40ms delack timer.
	c.Sender.Send(3 * packet.MSS)
	w.sched.Run()
	if !done {
		t.Fatal("did not complete")
	}
	if when < sim.Time(cfg.DelAckTimeout) {
		t.Errorf("completed at %v, expected to wait for delack timer (~%v)", when, cfg.DelAckTimeout)
	}
	if c.Receiver.Stats().DelayedAcks == 0 {
		t.Error("no delayed ACKs counted")
	}
}

func TestDelAckCount1AcksEverySegment(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.DelAckCount = 1
	cfg.InitialCwnd = 4
	c := w.conn(cfg, NewReno{})
	c.Sender.Send(4 * packet.MSS)
	w.sched.Run()
	rst := c.Receiver.Stats()
	if rst.AcksOut != rst.SegsIn {
		t.Errorf("acks=%d segs=%d with DelAckCount=1", rst.AcksOut, rst.SegsIn)
	}
}

func TestOutOfOrderGeneratesImmediateDupAcks(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.InitialCwnd = 8
	cfg.DelAckCount = 1
	c := w.conn(cfg, NewReno{})
	w.filter.drop = dropSeqOnce(0) // first segment lost: everything after is OOO
	c.Sender.Send(8 * packet.MSS)
	w.sched.Run()
	rst := c.Receiver.Stats()
	if rst.OutOfOrder == 0 {
		t.Fatal("no out-of-order segments observed")
	}
	if rst.ImmediateAcks < rst.OutOfOrder {
		t.Errorf("immediate acks %d < ooo %d", rst.ImmediateAcks, rst.OutOfOrder)
	}
	if rst.DeliveredByte != 8*packet.MSS {
		t.Errorf("delivered %d", rst.DeliveredByte)
	}
}

func TestReceiverIgnoresNonData(t *testing.T) {
	w := newWire(t)
	c := w.conn(DefaultConfig(), NewReno{})
	// A stray pure ACK routed to the receiver must be ignored.
	c.Receiver.Deliver(&packet.Packet{Flags: packet.FlagACK, AckNo: 99})
	if c.Receiver.RcvNxt() != 0 || c.Receiver.Stats().SegsIn != 0 {
		t.Error("receiver consumed a non-data packet")
	}
}

// deliverRaw injects a data segment directly into the receiver (bypassing
// the network) and captures ACKs emitted to the wire via the sender host's
// unclaimed hook... Instead we capture ACKs at host a by a probe flow.
func TestPreciseEchoStateMachine(t *testing.T) {
	// Build a receiver whose ACKs we can capture directly.
	s := sim.NewScheduler()
	type ackRec struct {
		ackNo int64
		ece   bool
	}
	var acks []ackRec
	hostA := newCaptureHost(s, 1, func(p *packet.Packet) {
		if p.Flags.Has(packet.FlagACK) {
			acks = append(acks, ackRec{p.AckNo, p.Flags.Has(packet.FlagECE)})
		}
	})
	hostB := newLoopHost(s, 2, hostA)

	cfg := DefaultConfig()
	cfg.ECN = ECNPrecise
	cfg.DelAckCount = 2
	r := NewReceiver(cfg, hostB.Host, 1, 5)

	seg := func(i int, ce bool) *packet.Packet {
		e := packet.ECT
		if ce {
			e = packet.CE
		}
		return &packet.Packet{Dst: 2, Flow: 5, Seq: int64(i * packet.MSS), Payload: packet.MSS, ECN: e}
	}
	// Sequence of CE marks: 0:off 1:off 2:ON 3:ON 4:off ...
	// seg0: pending=1. seg1: delack fires -> ACK(2 MSS, ECE=0).
	// seg2 (CE): state change with pending=0 -> no flush; pending=1.
	// seg3 (CE): delack -> ACK(4 MSS, ECE=1).
	// seg4 (off): state change, pending=0 -> no flush. pending=1.
	// seg5 (CE): state change with pending=1 -> immediate ACK(5 MSS, ECE=0)
	//            carrying the OLD state; then seg5 pends under CE and the
	//            delayed-ACK timer finally flushes ACK(6 MSS, ECE=1).
	for i, ce := range []bool{false, false, true, true, false, true} {
		r.Deliver(seg(i, ce))
	}
	s.Run()
	if len(acks) != 4 {
		t.Fatalf("acks = %+v, want 4", acks)
	}
	want := []ackRec{
		{2 * packet.MSS, false},
		{4 * packet.MSS, true},
		{5 * packet.MSS, false}, // flush carries the OLD state
		{6 * packet.MSS, true},  // delack timer, new state
	}
	for i := range want {
		if acks[i] != want[i] {
			t.Errorf("ack[%d] = %+v, want %+v", i, acks[i], want[i])
		}
	}
	if r.Stats().CEMarskSeen != 3 {
		t.Errorf("CE seen = %d, want 3", r.Stats().CEMarskSeen)
	}
}

func TestClassicEchoLatchUntilCWR(t *testing.T) {
	s := sim.NewScheduler()
	var eces []bool
	hostA := newCaptureHost(s, 1, func(p *packet.Packet) {
		if p.Flags.Has(packet.FlagACK) {
			eces = append(eces, p.Flags.Has(packet.FlagECE))
		}
	})
	hostB := newLoopHost(s, 2, hostA)

	cfg := DefaultConfig()
	cfg.ECN = ECNClassic
	cfg.DelAckCount = 1 // one ACK per segment for a crisp trace
	r := NewReceiver(cfg, hostB.Host, 1, 5)

	mk := func(i int, e packet.ECN, fl packet.Flags) *packet.Packet {
		return &packet.Packet{Dst: 2, Flow: 5, Seq: int64(i * packet.MSS),
			Payload: packet.MSS, ECN: e, Flags: fl}
	}
	r.Deliver(mk(0, packet.ECT, 0))              // ECE=0
	r.Deliver(mk(1, packet.CE, 0))               // latch -> ECE=1
	r.Deliver(mk(2, packet.ECT, 0))              // still latched -> ECE=1
	r.Deliver(mk(3, packet.ECT, packet.FlagCWR)) // CWR clears -> ECE=0
	r.Deliver(mk(4, packet.CE, packet.FlagCWR))  // CWR processed first, CE re-latches -> ECE=1
	s.Run()
	want := []bool{false, true, true, false, true}
	if len(eces) != len(want) {
		t.Fatalf("ece trace = %v", eces)
	}
	for i := range want {
		if eces[i] != want[i] {
			t.Errorf("ece[%d] = %v, want %v (trace %v)", i, eces[i], want[i], eces)
		}
	}
}

// Property: insertOOO always yields sorted, disjoint intervals covering
// exactly the union of inserted ranges, and every byte carries the CE state
// of its *first* arrival (first-arrival-wins; adjacent intervals only merge
// when their CE states match).
func TestInsertOOOProperty(t *testing.T) {
	f := func(pairs []uint8) bool {
		r := &Receiver{}
		covered := map[int64]bool{} // byte -> first-arrival CE state
		for i := 0; i+1 < len(pairs); i += 2 {
			lo := int64(pairs[i] % 64)
			ln := int64(pairs[i+1]%16) + 1
			ce := pairs[i]&0x80 != 0
			r.insertOOO(lo, lo+ln, ce)
			for b := lo; b < lo+ln; b++ {
				if _, ok := covered[b]; !ok {
					covered[b] = ce
				}
			}
		}
		// Disjoint and sorted.
		for i := 0; i < len(r.ooo); i++ {
			if r.ooo[i].lo >= r.ooo[i].hi {
				return false
			}
			if i > 0 && r.ooo[i].lo < r.ooo[i-1].hi {
				return false
			}
		}
		// Union and per-byte CE states match.
		var got []int64
		for _, iv := range r.ooo {
			for b := iv.lo; b < iv.hi; b++ {
				got = append(got, b)
				if want, ok := covered[b]; !ok || iv.ce != want {
					return false
				}
			}
		}
		if len(got) != len(covered) {
			return false
		}
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		for _, b := range got {
			if _, ok := covered[b]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAdvanceToAbsorbsBufferedIntervals(t *testing.T) {
	r := &Receiver{}
	r.insertOOO(10, 20, false)
	r.insertOOO(20, 30, false) // merges with previous
	r.insertOOO(50, 60, false)
	if len(r.ooo) != 2 {
		t.Fatalf("ooo = %+v, want 2 merged intervals", r.ooo)
	}
	n := r.advanceTo(10, false) // contiguous with [10,30): should jump to 30
	if r.rcvNxt != 30 || n != 30 {
		t.Errorf("rcvNxt = %d (advanced %d), want 30", r.rcvNxt, n)
	}
	if len(r.ooo) != 1 || r.ooo[0].lo != 50 {
		t.Errorf("remaining ooo = %+v", r.ooo)
	}
}

func TestAdvanceToBuildsCEUniformRuns(t *testing.T) {
	r := &Receiver{}
	r.insertOOO(10, 20, true)  // CE-marked bytes buffered behind the hole
	r.insertOOO(20, 30, false) // distinct CE state: must NOT merge
	if len(r.ooo) != 2 {
		t.Fatalf("ooo = %+v, want 2 CE-distinct intervals", r.ooo)
	}
	// Unmarked retransmission [0,10) fills the hole: runs must be
	// [0,10) ce=0, [10,20) ce=1, [20,30) ce=0.
	n := r.advanceTo(10, false)
	if r.rcvNxt != 30 || n != 30 {
		t.Fatalf("rcvNxt = %d (advanced %d), want 30", r.rcvNxt, n)
	}
	want := []ackRun{{10, false}, {20, true}, {30, false}}
	if len(r.ackRuns) != len(want) {
		t.Fatalf("ackRuns = %+v, want %+v", r.ackRuns, want)
	}
	for i := range want {
		if r.ackRuns[i] != want[i] {
			t.Errorf("ackRuns[%d] = %+v, want %+v", i, r.ackRuns[i], want[i])
		}
	}
}

// Regression (ISSUE 9 satellite 1): before the fix, a hole fill that made a
// mixed CE/non-CE range in-order sent ONE cumulative ACK whose ECE bit came
// from the flip machine's last-segment state, silently attributing every
// byte of the range to that one state. Under DCTCP precise echo this
// corrupts the sender's marked-byte fraction (α). The precise-echo machine
// requires one ACK per CE-state flip, so the fill must emit one cumulative
// ACK per CE-uniform run.
func TestPreciseEchoHoleFillSplitsMixedCERuns(t *testing.T) {
	s := sim.NewScheduler()
	type ackRec struct {
		ackNo int64
		ece   bool
	}
	var acks []ackRec
	hostA := newCaptureHost(s, 1, func(p *packet.Packet) {
		if p.Flags.Has(packet.FlagACK) {
			acks = append(acks, ackRec{p.AckNo, p.Flags.Has(packet.FlagECE)})
		}
	})
	hostB := newLoopHost(s, 2, hostA)

	cfg := DefaultConfig()
	cfg.ECN = ECNPrecise
	cfg.DelAckCount = 1
	r := NewReceiver(cfg, hostB.Host, 1, 5)

	seg := func(i int, ce bool) *packet.Packet {
		e := packet.ECT
		if ce {
			e = packet.CE
		}
		return &packet.Packet{Dst: 2, Flow: 5, Seq: int64(i * packet.MSS), Payload: packet.MSS, ECN: e}
	}
	r.Deliver(seg(0, false)) // in-order, unmarked -> ACK(1 MSS, ECE=0)
	r.Deliver(seg(2, true))  // OOO, CE-marked   -> dup ACK(1 MSS, ECE=1)
	r.Deliver(seg(3, true))  // OOO, CE-marked   -> dup ACK(1 MSS, ECE=1)
	r.Deliver(seg(1, false)) // unmarked retransmission fills the hole
	s.Run()
	// The fill makes [MSS, 4 MSS) in-order: [MSS, 2 MSS) unmarked plus
	// [2 MSS, 4 MSS) CE-marked. One ACK per CE-uniform run:
	//   ACK(2 MSS, ECE=0) then ACK(4 MSS, ECE=1).
	// The buggy receiver emitted a single ACK(4 MSS) instead, so 2 MSS of
	// marked bytes inherited whatever the flip machine last latched.
	want := []ackRec{
		{1 * packet.MSS, false},
		{1 * packet.MSS, true},
		{1 * packet.MSS, true},
		{2 * packet.MSS, false},
		{4 * packet.MSS, true},
	}
	if len(acks) != len(want) {
		t.Fatalf("acks = %+v, want %+v", acks, want)
	}
	for i := range want {
		if acks[i] != want[i] {
			t.Errorf("ack[%d] = %+v, want %+v", i, acks[i], want[i])
		}
	}
	if !r.ceState {
		t.Error("ceState must end true (last run was CE-marked)")
	}
	if r.RcvNxt() != 4*packet.MSS {
		t.Errorf("rcvNxt = %d", r.RcvNxt())
	}
}

// captureHost is a bare netsim.Node that inspects everything delivered to
// it; loopHost is a real netsim host whose uplink points at the capture
// node, so a Receiver's ACKs can be observed directly.
type captureHost struct {
	id packet.NodeID
	fn func(*packet.Packet)
}

func (h *captureHost) ID() packet.NodeID        { return h.id }
func (h *captureHost) Deliver(p *packet.Packet) { h.fn(p) }

func newCaptureHost(_ *sim.Scheduler, id packet.NodeID, fn func(*packet.Packet)) *captureHost {
	return &captureHost{id: id, fn: fn}
}

type loopHost struct{ Host *netsim.Host }

func newLoopHost(s *sim.Scheduler, id packet.NodeID, to *captureHost) *loopHost {
	h := netsim.NewHost(s, id, "loop")
	h.SetUplink(netsim.NewPort(s, netsim.NewLink(s, to, 1_000_000_000, 0),
		netsim.PortConfig{BufferBytes: 1 << 20}))
	return &loopHost{Host: h}
}
