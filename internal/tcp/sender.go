package tcp

import (
	"fmt"

	"dctcpplus/internal/check"
	"dctcpplus/internal/netsim"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/telemetry"
)

// SenderState is the loss-recovery state of the sender, mirroring the
// Linux tcp_ca_state trio that matters for this model.
type SenderState int

const (
	// StateOpen: normal operation (includes the CWR epoch after an ECN
	// reduction).
	StateOpen SenderState = iota
	// StateRecovery: NewReno fast recovery after DupThresh duplicate ACKs.
	StateRecovery
	// StateLoss: retransmission-timeout recovery (go-back-N slow start).
	StateLoss
)

func (s SenderState) String() string {
	switch s {
	case StateOpen:
		return "open"
	case StateRecovery:
		return "recovery"
	case StateLoss:
		return "loss"
	}
	return "?"
}

// SenderStats counts transport events on one connection.
type SenderStats struct {
	SentPkts     int64
	SentBytes    int64
	RetransPkts  int64
	RetransBytes int64

	AcksIn  int64
	DupAcks int64
	ECEAcks int64 // ACKs carrying ECN-Echo

	FastRecoveries int64
	Timeouts       int64
	FLossTimeouts  int64
	LAckTimeouts   int64

	// MinCwndECESends counts data transmissions performed while cwnd sat
	// at the configured floor and the most recent ACK carried ECE — the
	// paper's Table I "cwnd=2, ECE=1" condition, i.e. the sender is asked
	// to slow down but the window cannot shrink further.
	MinCwndECESends int64

	Completions int64
}

// Sender is the sending half of a connection: it owns the congestion
// window, the retransmission machinery and the pacing gate, and it
// transmits application bytes toward the peer host.
type Sender struct {
	cfg   Config
	cc    CongestionControl
	host  *netsim.Host
	sched *sim.Scheduler
	rng   *sim.RNG
	flow  packet.FlowID
	peer  packet.NodeID

	// Byte-stream bookkeeping. The application appends bytes with Send;
	// completion fires each time sndUna catches up with the total.
	totalBytes   int64
	sndUna       int64
	sndNxt       int64
	maxSent      int64 // highest byte ever transmitted (for go-back-N rtx marking)
	completeMark int64

	// cwnd is the congestion window in MSS units. Every reduction clamps
	// to at least the 1-MSS loss-window floor; recovery inflation only
	// grows it.
	//inv: cwnd >= 1
	cwnd float64
	// ssthresh is the slow-start threshold in MSS units, clamped to the
	// configured window floor after every reduction.
	//inv: ssthresh >= 1
	ssthresh float64
	state    SenderState
	// dupacks counts consecutive duplicate ACKs; int64 because nothing
	// bounds a mass-incast ACK storm short of the 64-bit ceiling.
	dupacks int64
	recover int64 // recovery point: snd_nxt when loss was detected
	// ltCredit is the limited-transmit segments usable beyond cwnd
	// (RFC 3042): at most two per disorder episode, by the guard on the
	// only increment.
	//inv: 0 <= ltCredit && ltCredit <= 2
	ltCredit int

	// ECN reaction bookkeeping (at most one reduction per window of data).
	cwrEnd     int64
	needCWR    bool
	lastAckECE bool

	// RTT sampling: one timed segment at a time, Karn-invalidated.
	timedSeq   int64
	timedAt    sim.Time
	timedValid bool
	rtt        *rttEstimator
	// rtoBackoff is the RTO exponent (rto << rtoBackoff), capped by the
	// guard on its only increment so the shift stays well-defined.
	//inv: rtoBackoff <= 16
	rtoBackoff uint

	rtoTimer     *sim.Timer
	acksSinceArm int64 // feedback since the RTO was (re)armed, for taxonomy

	// Pacing: cc.PacingDelay gates data transmissions. Every packet is
	// delayed by the pacing gap from the moment it becomes eligible (the
	// kernel hrtimer semantics of DCTCP+), so even the first packet of an
	// idle-start burst waits its flow's slow_time — that per-flow random
	// delay is what desynchronizes concurrent round-start bursts.
	lastSendAt     sim.Time
	headWaitedFrom sim.Time     // when the head packet became eligible; -1 when none
	headGap        sim.Duration // pacing draw cached for the waiting head packet
	sendEv         *sim.Event
	pumpFn         func() // pacing-gate callback, bound once at construction
	rtxPending     bool

	stats SenderStats

	// Telemetry instruments; nil (no-op) unless AttachTelemetry was called.
	// Concurrent flows of one experiment point typically share these (same
	// registry identity), aggregating transport events across the workload.
	mRetrans  *telemetry.Counter
	mTimeouts *telemetry.Counter
	mFLossTO  *telemetry.Counter
	mLAckTO   *telemetry.Counter
	mCwnd     *telemetry.Histogram

	// OnComplete fires when all bytes handed to Send so far are
	// acknowledged; total is the acknowledged byte count.
	OnComplete func(total int64)
	// OnAckProbe observes every processed ACK after state updates — the
	// tcp_probe analog used by the cwnd-distribution experiments.
	OnAckProbe func(s *Sender, ece bool)
	// OnTimeoutEvent observes every RTO with its taxonomy classification.
	OnTimeoutEvent func(kind TimeoutKind)
}

// NewSender creates a sender for flow on host, targeting the peer node, and
// registers it to receive that flow's ACKs.
func NewSender(cfg Config, cc CongestionControl, host *netsim.Host, peer packet.NodeID, flow packet.FlowID) *Sender {
	cfg.validate()
	if cc == nil {
		panic("tcp: nil congestion control")
	}
	s := &Sender{
		cfg:            cfg,
		cc:             cc,
		host:           host,
		sched:          host.Scheduler(),
		rng:            sim.NewRNG(cfg.Seed),
		flow:           flow,
		peer:           peer,
		cwnd:           cfg.InitialCwnd,
		ssthresh:       cfg.MaxCwnd,
		lastSendAt:     -1 << 62,
		headWaitedFrom: -1,
	}
	s.rtt = newRTTEstimator(cfg)
	s.rtoTimer = sim.NewTimer(s.sched, s.onRTO)
	s.pumpFn = func() {
		s.sendEv = nil
		s.pump()
	}
	host.Register(flow, netsim.FlowHandlerFunc(s.Deliver))
	cc.Init(s)
	return s
}

// Accessors used by congestion-control modules and experiments.

// CC returns the congestion-control module driving this sender.
func (s *Sender) CC() CongestionControl { return s.cc }

// CwndMSS returns the congestion window in MSS units.
func (s *Sender) CwndMSS() float64 { return s.cwnd }

// SsthreshMSS returns the slow-start threshold in MSS units.
func (s *Sender) SsthreshMSS() float64 { return s.ssthresh }

// MinCwndMSS returns the configured window floor in MSS units.
func (s *Sender) MinCwndMSS() float64 { return s.cfg.MinCwnd }

// State returns the loss-recovery state.
func (s *Sender) State() SenderState { return s.state }

// SndUna returns the first unacknowledged byte.
func (s *Sender) SndUna() int64 { return s.sndUna }

// SndNxt returns the next byte to be sent.
func (s *Sender) SndNxt() int64 { return s.sndNxt }

// TotalBytes returns the bytes handed to Send so far.
func (s *Sender) TotalBytes() int64 { return s.totalBytes }

// InflightBytes returns the unacknowledged bytes in the network.
func (s *Sender) InflightBytes() int64 { return s.sndNxt - s.sndUna }

// Now returns the current virtual time.
func (s *Sender) Now() sim.Time { return s.sched.Now() }

// RNG returns the sender's private random stream (for randomized CC).
func (s *Sender) RNG() *sim.RNG { return s.rng }

// Config returns the connection configuration.
func (s *Sender) Config() Config { return s.cfg }

// Stats returns a snapshot of the sender counters.
func (s *Sender) Stats() SenderStats { return s.stats }

// AttachTelemetry registers the sender's instruments on reg under the given
// labels: retransmission and RTO-taxonomy counters (total, FLoss-TO,
// LAck-TO) and a per-ACK congestion-window histogram in MSS units. With a
// nil registry the instruments stay nil and every update is a no-op.
func (s *Sender) AttachTelemetry(reg *telemetry.Registry, labels ...telemetry.Label) {
	s.mRetrans = reg.Counter("tcp_retransmit_pkts_total", labels...)
	s.mTimeouts = reg.Counter("tcp_rto_total", labels...)
	s.mFLossTO = reg.Counter("tcp_rto_floss_total", labels...)
	s.mLAckTO = reg.Counter("tcp_rto_lack_total", labels...)
	s.mCwnd = reg.Histogram("tcp_cwnd_mss", labels...)
}

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (s *Sender) SRTT() sim.Duration { return s.rtt.SRTT() }

// RTO returns the current retransmission timeout including backoff.
func (s *Sender) RTO() sim.Duration {
	rto := s.rtt.RTO() << s.rtoBackoff
	if rto > s.cfg.RTOMax {
		rto = s.cfg.RTOMax
	}
	return rto
}

// RTOBackoff returns the current RTO backoff exponent (rto << backoff):
// zero in normal operation, incremented by each RTO, cleared only by an RTT
// sample from a non-retransmitted segment (Karn).
func (s *Sender) RTOBackoff() uint { return s.rtoBackoff }

// Flow returns the flow id.
func (s *Sender) Flow() packet.FlowID { return s.flow }

// LastAckECE reports whether the most recent ACK carried ECN-Echo.
func (s *Sender) LastAckECE() bool { return s.lastAckECE }

// Done reports whether every byte handed to Send has been acknowledged.
func (s *Sender) Done() bool { return s.totalBytes > 0 && s.sndUna >= s.totalBytes }

// Close unregisters the sender from its host.
func (s *Sender) Close() {
	s.rtoTimer.Stop()
	s.sched.Cancel(s.sendEv)
	s.sendEv = nil
	s.host.Unregister(s.flow)
}

// Send appends n application bytes to the stream and starts transmitting.
// It may be called repeatedly (the incast workload issues one call per
// round on a persistent connection).
func (s *Sender) Send(n int64) {
	if n <= 0 {
		panic(fmt.Sprintf("tcp: Send(%d)", n))
	}
	// Window restart after idle (tcp_slow_start_after_idle): a window
	// grown before an idle period reflects stale network state and must
	// not be burst out at once.
	if s.cfg.SlowStartAfterIdle && s.InflightBytes() == 0 && s.lastSendAt >= 0 {
		if idle := s.sched.Now().Sub(s.lastSendAt); idle > s.RTO() && s.cwnd > s.cfg.InitialCwnd {
			s.cwnd = s.cfg.InitialCwnd
		}
	}
	s.totalBytes += n
	s.pump()
}

// cwndBytes converts the fractional window to a byte budget.
func (s *Sender) cwndBytes() int64 {
	return int64(s.cwnd * float64(s.cfg.MSS))
}

// pump transmits whatever is currently allowed: a pending retransmission
// first, then new data while the window permits, with the congestion
// module's pacing delay enforced between consecutive transmissions. This is
// the tcp_transmit_skb choke point where DCTCP+ inserts slow_time.
func (s *Sender) pump() {
	for {
		var seq int64
		var payload int
		hole := false
		switch {
		case s.rtxPending:
			seq = s.sndUna
			payload = s.segSize(seq)
			hole = true
			if payload == 0 {
				// Everything is acknowledged; stale flag.
				s.rtxPending = false
				continue
			}
		case s.sndNxt < s.totalBytes:
			seq = s.sndNxt
			payload = s.segSize(seq)
			// Limited transmit extends the budget by one segment per early
			// duplicate ACK (RFC 3042).
			budget := s.cwndBytes() + int64(s.ltCredit)*int64(s.cfg.MSS)
			if s.InflightBytes()+int64(payload) > budget {
				return // window-limited
			}
		default:
			return // nothing to send
		}
		// Anything at or below maxSent has been on the wire before: after a
		// timeout's go-back-N rewind, "new" transmissions from sndNxt are
		// really retransmissions.
		isRtx := seq < s.maxSent

		// Pacing gate: DCTCP+ regulates the sending time interval here.
		// Each packet waits its pacing delay from when it became eligible,
		// and consecutive packets are at least that delay apart. The draw
		// is made once per packet (cached in headGap) so a randomized
		// module yields one scatter per transmission, not per evaluation.
		now := s.sched.Now()
		if s.headWaitedFrom < 0 {
			if gap := s.cc.PacingDelay(s); gap > 0 {
				s.headWaitedFrom = now
				s.headGap = gap
			}
		}
		if s.headWaitedFrom >= 0 {
			allowed := s.headWaitedFrom.Add(s.headGap)
			if a2 := s.lastSendAt.Add(s.headGap); a2 > allowed {
				allowed = a2
			}
			if allowed.After(now) {
				if s.sendEv == nil {
					// Once-bound pumpFn: arming the pacing gate on the
					// per-packet path costs no closure.
					s.sendEv = s.sched.At(allowed, s.pumpFn)
				}
				return
			}
		}
		s.headWaitedFrom = -1

		s.transmit(seq, payload, isRtx)
		if hole {
			s.rtxPending = false
		} else {
			s.sndNxt += int64(payload)
			if s.sndNxt > s.maxSent {
				s.maxSent = s.sndNxt
			}
		}
	}
}

// segSize returns the payload length of the segment starting at seq.
func (s *Sender) segSize(seq int64) int {
	rem := s.totalBytes - seq
	if rem <= 0 {
		return 0
	}
	//lint:allow unitflow cfg.MSS is the segment size in bytes (rem and MSS share a unit); the mss suffix convention marks window counts, which this is not
	if rem > int64(s.cfg.MSS) {
		return s.cfg.MSS
	}
	return int(rem)
}

// transmit builds and sends one data segment.
func (s *Sender) transmit(seq int64, payload int, rtx bool) {
	now := s.sched.Now()
	// Minted from the host's pool (a plain allocation when pooling is off);
	// AllocPacket returns a zeroed packet, so only the live fields are set.
	pkt := s.host.AllocPacket()
	pkt.Dst = s.peer
	pkt.Flow = s.flow
	pkt.Seq = seq
	pkt.Payload = payload
	pkt.SendTime = now
	pkt.Retransmit = rtx
	if s.cfg.ECN != ECNOff {
		pkt.ECN = packet.ECT
	}
	if s.needCWR {
		pkt.Flags |= packet.FlagCWR
		s.needCWR = false
	}

	// RTT timing (Karn): time one untransmitted segment at a time, and
	// invalidate the pending sample if its range is retransmitted.
	if rtx {
		if s.timedValid && seq < s.timedSeq {
			s.timedValid = false
		}
	} else if !s.timedValid {
		s.timedSeq = seq + int64(payload)
		s.timedAt = now
		s.timedValid = true
	}

	s.stats.SentPkts++
	s.stats.SentBytes += int64(payload)
	if rtx {
		s.stats.RetransPkts++
		s.stats.RetransBytes += int64(payload)
		s.mRetrans.Add(1)
	}
	// Table I instrumentation: a transmission attempted while the window
	// is pinned at its floor and congestion feedback is still arriving.
	if s.cwnd <= s.cfg.MinCwnd && s.lastAckECE {
		s.stats.MinCwndECESends++
	}

	s.lastSendAt = now
	s.host.Send(pkt)

	if !s.rtoTimer.Armed() {
		s.armRTO()
	}
}

// armRTO (re)arms the retransmission timer and resets the feedback counter
// used to classify an eventual expiry.
func (s *Sender) armRTO() {
	s.rtoTimer.Reset(s.RTO() + s.rng.Duration(s.cfg.RTOSlack))
	s.acksSinceArm = 0
}

// Deliver processes an arriving packet (ACKs; data is ignored — the flow is
// one-directional).
func (s *Sender) Deliver(pkt *packet.Packet) {
	if !pkt.Flags.Has(packet.FlagACK) {
		return
	}
	now := s.sched.Now()
	ece := pkt.Flags.Has(packet.FlagECE)
	s.lastAckECE = ece
	s.stats.AcksIn++
	s.acksSinceArm++
	if ece {
		s.stats.ECEAcks++
	}

	ackNo := pkt.AckNo
	var acked int64
	switch {
	case ackNo > s.sndUna:
		acked = ackNo - s.sndUna
		s.sndUna = ackNo
		// A late cumulative ACK for pre-rewind data can overtake a
		// go-back-N rewind; snd_nxt never trails snd_una, or the sender
		// would "retransmit" bytes the receiver already acknowledged.
		if s.sndNxt < s.sndUna {
			s.sndNxt = s.sndUna
		}
		// RFC 6298 §5.5-5.7 / Karn: the exponential backoff is cleared only
		// by an RTT sample from a segment transmitted exactly once. A
		// cumulative ACK covering nothing but retransmitted data (the
		// go-back-N repair traffic after an RTO) says nothing about the
		// current path RTT, so it must leave the backoff in place. The timed
		// segment is Karn-invalidated on retransmission, which makes
		// "timedValid && ackNo >= timedSeq" exactly the legal-reset condition.
		if s.timedValid && ackNo >= s.timedSeq {
			s.rtt.Sample(now.Sub(s.timedAt))
			s.timedValid = false
			s.rtoBackoff = 0
		}
	case ackNo == s.sndUna && s.InflightBytes() > 0 && pkt.IsAck():
		s.dupacks++
		s.stats.DupAcks++
		// RFC 3042: the first two duplicate ACKs each release one new
		// segment beyond cwnd, probing for the third that triggers fast
		// retransmit.
		if s.cfg.LimitedTransmit && s.state == StateOpen &&
			s.dupacks <= 2 && s.ltCredit < 2 {
			s.ltCredit++
		}
	}

	// Let the congestion module observe the raw feedback (DCTCP's alpha
	// estimator, DCTCP+'s state machine) before the window changes.
	s.cc.OnAck(s, acked, ece)

	switch s.state {
	case StateOpen:
		if ece && s.sndUna > s.cwrEnd {
			s.ecnReduce()
		}
		if acked > 0 {
			s.dupacks = 0
			s.ltCredit = 0
			if !ece {
				s.grow(acked)
			}
		}
		if s.dupacks >= int64(s.cfg.DupThresh) {
			s.enterRecovery()
		}
	case StateRecovery:
		switch {
		case ackNo >= s.recover:
			// Full ACK: recovery complete, deflate to ssthresh.
			s.state = StateOpen
			s.cwnd = s.clampCwnd(s.ssthresh)
			s.dupacks = 0
		case acked > 0:
			// Partial ACK: retransmit the next hole, deflate partially
			// (RFC 6582).
			s.cwnd -= float64(acked) / float64(s.cfg.MSS)
			s.cwnd += 1
			if s.cwnd < s.cfg.MinCwnd {
				s.cwnd = s.cfg.MinCwnd
			}
			s.rtxPending = true
			s.armRTO()
		default:
			// Duplicate ACK during recovery inflates the window so new
			// data keeps flowing.
			s.cwnd++
		}
	case StateLoss:
		if acked > 0 {
			s.dupacks = 0
			if s.sndUna >= s.recover {
				s.state = StateOpen
			}
			if !ece {
				s.grow(acked)
			}
		}
	}

	// Timer management: progress re-arms, full acknowledgement disarms.
	if acked > 0 {
		if s.InflightBytes() > 0 {
			s.armRTO()
		} else {
			s.rtoTimer.Stop()
		}
	}

	if s.Done() && s.totalBytes > s.completeMark {
		s.completeMark = s.totalBytes
		s.stats.Completions++
		if s.OnComplete != nil {
			s.OnComplete(s.totalBytes)
		}
	}

	s.assertInvariants()
	s.pump()

	// Sample the window on every processed ACK — the same cadence as the
	// paper's tcp_probe captures behind Fig. 2/Fig. 9.
	s.mCwnd.Observe(int64(s.cwnd + 0.5))

	if s.OnAckProbe != nil {
		s.OnAckProbe(s, ece)
	}
}

// assertInvariants checks the sender's window and sequence invariants on
// the ACK path, the only place this state changes. The window may inflate
// past MaxCwnd during recovery (one MSS per duplicate ACK), so only the
// 1-MSS loss-window floor bounds it from below.
func (s *Sender) assertInvariants() {
	check.AtLeast("tcp.cwnd (MSS)", s.cwnd, 1)
	check.NonNegative("tcp.inflight bytes", s.InflightBytes())
	check.NonNegative("tcp.snd_una", s.sndUna)
	check.AtMost("tcp.snd_nxt", s.sndNxt, s.totalBytes)
}

// grow applies slow start or congestion avoidance to the window, honoring
// any growth cap imposed by the congestion module (see CwndCapper). Both
// callers guard on forward progress.
//
// inv: acked >= 1
func (s *Sender) grow(acked int64) {
	if capper, ok := s.cc.(CwndCapper); ok {
		if cap, active := capper.CwndCap(s); active && s.cwnd >= cap {
			return
		}
	}
	mss := float64(s.cfg.MSS)
	if s.cwnd < s.ssthresh {
		s.cwnd += float64(acked) / mss
	} else {
		s.cwnd += float64(acked) / (mss * s.cwnd)
	}
	s.cwnd = s.clampCwnd(s.cwnd)
}

// clampCwnd bounds a window value to [MinCwnd, MaxCwnd].
//
// inv: return >= 1
func (s *Sender) clampCwnd(w float64) float64 {
	if w < s.cfg.MinCwnd {
		return s.cfg.MinCwnd
	}
	if w > s.cfg.MaxCwnd {
		return s.cfg.MaxCwnd
	}
	return w
}

// ecnReduce performs the once-per-window ECN reaction: the congestion
// module chooses the new threshold (Reno halves, DCTCP scales by alpha/2),
// and the window cannot go below the configured floor — the exact
// limitation (§IV-B) that motivates DCTCP+.
func (s *Sender) ecnReduce() {
	s.ssthresh = s.cc.SsthreshAfterECN(s)
	if s.ssthresh < s.cfg.MinCwnd {
		s.ssthresh = s.cfg.MinCwnd
	}
	s.cwnd = s.clampCwnd(s.ssthresh)
	s.cwrEnd = s.sndNxt
	s.needCWR = true
}

// enterRecovery begins NewReno fast recovery and retransmits the first
// unacknowledged segment.
func (s *Sender) enterRecovery() {
	s.stats.FastRecoveries++
	s.state = StateRecovery
	s.recover = s.sndNxt
	s.ssthresh = s.cc.SsthreshAfterLoss(s)
	if s.ssthresh < s.cfg.MinCwnd {
		s.ssthresh = s.cfg.MinCwnd
	}
	s.cwnd = s.ssthresh + float64(s.cfg.DupThresh) // window inflation
	s.ltCredit = 0
	s.rtxPending = true
	s.armRTO()
}

// onRTO handles a retransmission timeout: classify it (FLoss vs LAck),
// collapse the window to 1 MSS, and go-back-N from sndUna in slow start.
// Timer callbacks are dynamic calls the call graph cannot follow, so the
// handler is annotated as a hot root directly: with tens of thousands of
// concurrent flows, RTO processing is itself a mass event (the paper's
// LAck-timeout storms), and may not allocate per firing.
//
//hot:path
func (s *Sender) onRTO() {
	if s.InflightBytes() <= 0 {
		return // spurious: everything acknowledged while timer fired
	}
	kind := LAckTO
	if s.acksSinceArm == 0 {
		kind = FLossTO
	}
	s.stats.Timeouts++
	s.mTimeouts.Add(1)
	if kind == FLossTO {
		s.stats.FLossTimeouts++
		s.mFLossTO.Add(1)
	} else {
		s.stats.LAckTimeouts++
		s.mLAckTO.Add(1)
	}
	if s.OnTimeoutEvent != nil {
		s.OnTimeoutEvent(kind)
	}

	s.ssthresh = s.cc.SsthreshAfterLoss(s)
	if s.ssthresh < s.cfg.MinCwnd {
		s.ssthresh = s.cfg.MinCwnd
	}
	// Loss window: cwnd collapses to 1 MSS regardless of the floor; the
	// paper reads cwnd=1 samples as the timeout signature (Fig. 2).
	s.cwnd = 1
	s.state = StateLoss
	s.recover = s.sndNxt
	s.dupacks = 0
	s.ltCredit = 0
	s.timedValid = false

	// Go-back-N: rewind and retransmit from the first hole. Cumulative
	// ACKs from the receiver's reassembly buffer jump sndUna forward past
	// data that survived, so little is actually resent twice.
	s.sndNxt = s.sndUna
	s.rtxPending = false

	s.cc.OnTimeout(s)

	if s.rtoBackoff < 16 {
		s.rtoBackoff++
	}
	s.armRTO()
	s.pump()
}
