// Package tcp implements the transport engine the DCTCP+ experiments run
// on: a packet-level TCP with slow start, congestion avoidance, NewReno
// fast retransmit/recovery, RFC 6298 retransmission timeouts with a
// configurable minimum (the paper evaluates RTOmin of 200ms and 10ms),
// delayed ACKs, and ECN in both classic (RFC 3168) and DCTCP precise-echo
// modes. Congestion control is pluggable in the style of Linux's CC
// modules; package dctcp and package core provide the DCTCP and DCTCP+
// algorithms, and this package provides NewReno itself.
//
// The engine also classifies every retransmission timeout into the two
// categories the paper's Table I reports — FLoss-TO (the whole window was
// lost, so no feedback at all returned) and LAck-TO (feedback returned but
// fewer than DupThresh duplicate ACKs, so fast retransmit could not
// trigger) — following Zhang et al. [12].
package tcp

import (
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

// ECNMode selects how the connection uses ECN.
type ECNMode int

const (
	// ECNOff sends NotECT traffic; switches tail-drop instead of marking.
	ECNOff ECNMode = iota
	// ECNClassic implements RFC 3168: the receiver latches ECN-Echo from
	// the first CE mark until the sender's CWR arrives; the sender reacts
	// at most once per window.
	ECNClassic
	// ECNPrecise implements DCTCP's ACK semantics: the receiver echoes the
	// exact sequence of CE marks using the two-state delayed-ACK machine
	// from the DCTCP paper, so the sender can estimate the marked fraction.
	ECNPrecise
)

func (m ECNMode) String() string {
	switch m {
	case ECNOff:
		return "off"
	case ECNClassic:
		return "rfc3168"
	case ECNPrecise:
		return "dctcp"
	}
	return "?"
}

// Config carries per-connection transport parameters. The zero value is not
// usable; start from DefaultConfig.
type Config struct {
	// MSS is the maximum payload bytes per segment.
	//inv: MSS >= 1
	MSS int

	// InitialCwnd is the initial congestion window in MSS units.
	//inv: InitialCwnd >= 1
	InitialCwnd float64

	// MinCwnd is the congestion window floor in MSS units for ECN/loss
	// reductions (Eq. 2's W >= 2MSS). Retransmission timeouts still
	// collapse cwnd to 1 MSS, as in Linux; the paper uses cwnd=1 samples
	// as its timeout indicator. DCTCP+ lowers this floor to 1 MSS
	// (footnote 3) for smoother rate changes.
	//inv: MinCwnd >= 1
	MinCwnd float64

	// MaxCwnd caps the window in MSS units (the receiver window stand-in).
	//inv: MaxCwnd >= 1
	MaxCwnd float64

	// DupThresh is the duplicate-ACK threshold for fast retransmit.
	//inv: DupThresh >= 1
	DupThresh int

	// RTOMin clamps the retransmission timeout from below. Default 200ms
	// (the Linux default the paper highlights); the comparison experiments
	// set 10ms.
	RTOMin sim.Duration
	// RTOMax clamps the exponential backoff from above.
	RTOMax sim.Duration
	// RTOInit is the timeout used before the first RTT sample.
	RTOInit sim.Duration
	// RTOSlack adds a uniform random delay in [0, RTOSlack) to every
	// retransmission-timer arming, modeling OS timer-tick quantization and
	// timer slack (jiffies on the paper's 2.6-era kernels). Without it, a
	// deterministic simulation can phase-lock cohorts of timed-out flows:
	// they all retransmit at exactly the same instant, collide at the
	// bottleneck, and back off in lockstep forever — a livelock no real
	// testbed exhibits because independent hosts' timer ticks are not
	// aligned.
	RTOSlack sim.Duration

	// DelAckCount acknowledges every n-th in-order segment (Linux default
	// behaviour is 2). 1 disables delayed ACKs.
	//inv: DelAckCount >= 1
	DelAckCount int
	// DelAckTimeout flushes a pending delayed ACK.
	DelAckTimeout sim.Duration

	// ECN selects the ECN feedback mode (see ECNMode).
	ECN ECNMode

	// LimitedTransmit enables RFC 3042: on the first and second duplicate
	// ACKs the sender may transmit one new segment each beyond the
	// congestion window. For small windows this generates the extra
	// duplicate ACKs fast retransmit needs — kernels of the paper's era
	// had it on, and the paper's Table I shows it still cannot prevent
	// LAck-TOs at 1-2 MSS windows (there is simply no new data left to
	// probe with).
	LimitedTransmit bool

	// SlowStartAfterIdle mirrors Linux's tcp_slow_start_after_idle (on by
	// default): when new data is submitted after the connection sat idle
	// for longer than the RTO, the congestion window restarts from
	// InitialCwnd — stale windows must not be burst into a network whose
	// state they no longer reflect. In the incast workload this is what
	// keeps flows that finished a round early (and grew their window in
	// the uncongested tail) from opening the next round with a line-rate
	// burst.
	SlowStartAfterIdle bool

	// Seed parameterizes the connection's private random stream (used by
	// randomized congestion control such as DCTCP+'s slow_time backoff).
	Seed uint64
}

// DefaultConfig returns parameters matching the paper's testbed senders:
// standard Linux-era TCP with MSS 1460, IW=2, min cwnd 2 MSS, delayed ACKs
// of 2, RTOmin 200ms.
func DefaultConfig() Config {
	return Config{
		MSS:                packet.MSS,
		InitialCwnd:        2,
		MinCwnd:            2,
		MaxCwnd:            64,
		DupThresh:          3,
		RTOMin:             200 * sim.Millisecond,
		RTOMax:             4 * sim.Second,
		RTOInit:            200 * sim.Millisecond,
		RTOSlack:           1 * sim.Millisecond,
		DelAckCount:        2,
		DelAckTimeout:      40 * sim.Millisecond,
		ECN:                ECNOff,
		LimitedTransmit:    true,
		SlowStartAfterIdle: true,
	}
}

// validate panics on nonsensical configurations; these are always
// programming errors in experiment setup.
func (c Config) validate() {
	switch {
	case c.MSS <= 0:
		panic("tcp: MSS must be positive")
	case c.InitialCwnd < 1:
		panic("tcp: InitialCwnd must be >= 1 MSS")
	case c.MinCwnd < 1:
		panic("tcp: MinCwnd must be >= 1 MSS")
	case c.MaxCwnd < c.InitialCwnd:
		panic("tcp: MaxCwnd must be >= InitialCwnd")
	case c.DupThresh < 1:
		panic("tcp: DupThresh must be >= 1")
	case c.RTOMin <= 0 || c.RTOMax < c.RTOMin:
		panic("tcp: invalid RTO bounds")
	case c.RTOSlack < 0:
		panic("tcp: negative RTOSlack")
	case c.DelAckCount < 1:
		panic("tcp: DelAckCount must be >= 1")
	}
}

// TimeoutKind is the taxonomy of retransmission timeouts from Zhang et al.
// [12], as used in the paper's Table I.
type TimeoutKind int

const (
	// FLossTO: full-window loss — the sender received no feedback at all
	// for the outstanding window, so only the RTO could recover.
	FLossTO TimeoutKind = iota
	// LAckTO: lack of ACKs — some feedback arrived but fewer than
	// DupThresh duplicate ACKs, so data-driven recovery never triggered.
	LAckTO
)

func (k TimeoutKind) String() string {
	if k == FLossTO {
		return "FLoss-TO"
	}
	return "LAck-TO"
}
