package tcp

import "dctcpplus/internal/sim"

// CongestionControl is the pluggable congestion-control module interface,
// modeled on Linux's tcp_congestion_ops. The engine owns the mechanical
// parts shared by every algorithm — slow start / congestion avoidance
// growth, the NewReno recovery state machine, RTO management, and the
// once-per-window ECN reaction — while the module decides how hard to back
// off and (for DCTCP+) whether to pace transmissions.
//
// Call sequence per ACK: the engine first invokes OnAck (letting DCTCP
// update its alpha estimator before any window change), then applies its
// recovery/CWR/growth logic, consulting SsthreshAfterECN or
// SsthreshAfterLoss if a reduction is due.
type CongestionControl interface {
	// Name identifies the algorithm ("reno", "dctcp", "dctcp+"...).
	Name() string

	// Init is called once when the sender is created.
	Init(s *Sender)

	// OnAck observes every arriving ACK. acked is the number of newly
	// acknowledged bytes (0 for duplicate ACKs); ece reports the ECN-Echo
	// flag.
	OnAck(s *Sender, acked int64, ece bool)

	// SsthreshAfterECN returns the slow-start threshold (in MSS) to adopt
	// when the engine reacts to an ECN-Echo (at most once per window).
	// Reno halves; DCTCP scales by (1 - alpha/2).
	SsthreshAfterECN(s *Sender) float64

	// SsthreshAfterLoss returns the slow-start threshold (in MSS) adopted
	// on entering fast recovery or after an RTO.
	SsthreshAfterLoss(s *Sender) float64

	// OnTimeout observes a retransmission timeout (after the engine has
	// collapsed cwnd); DCTCP+ uses it to drive its state machine.
	OnTimeout(s *Sender)

	// PacingDelay returns the minimum gap between consecutive data
	// transmissions. Zero means unpaced. DCTCP+ returns slow_time while
	// its state machine is engaged.
	PacingDelay(s *Sender) sim.Duration
}

// CwndCapper is an optional extension of CongestionControl: modules that
// implement it can cap window growth. The engine consults the cap inside
// its growth step; reductions are unaffected. DCTCP+ uses this to pin the
// window at its floor while the sending-time-interval regulation is
// engaged — rate recovery then happens through slow_time decay, and window
// growth resumes only after the machine returns to DCTCP_NORMAL.
type CwndCapper interface {
	// CwndCap returns the current growth ceiling in MSS and whether it is
	// active.
	CwndCap(s *Sender) (float64, bool)
}

// NewReno is classic TCP NewReno congestion control with optional RFC 3168
// ECN response. It is both the paper's "TCP" baseline (ECNOff) and, with
// ECNClassic, a standards-compliant ECN TCP.
type NewReno struct{}

// Name returns "reno".
func (NewReno) Name() string { return "reno" }

// Init is a no-op for NewReno.
func (NewReno) Init(*Sender) {}

// OnAck is a no-op: the engine's shared growth logic is exactly Reno.
func (NewReno) OnAck(*Sender, int64, bool) {}

// SsthreshAfterECN halves the window (RFC 3168 treats a mark like a loss).
func (NewReno) SsthreshAfterECN(s *Sender) float64 { return s.CwndMSS() / 2 }

// SsthreshAfterLoss halves the window.
func (NewReno) SsthreshAfterLoss(s *Sender) float64 { return s.CwndMSS() / 2 }

// OnTimeout is a no-op for NewReno.
func (NewReno) OnTimeout(*Sender) {}

// PacingDelay is zero: NewReno does not pace.
func (NewReno) PacingDelay(*Sender) sim.Duration { return 0 }
