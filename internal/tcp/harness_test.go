package tcp

import (
	"testing"

	"dctcpplus/internal/netsim"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

// filterNode sits between the data sender's link and the receiving host,
// optionally mangling (e.g. CE-marking) or dropping packets. ACKs flow back
// over a clean direct link.
type filterNode struct {
	id     packet.NodeID
	dst    netsim.Node
	mangle func(*packet.Packet)
	drop   func(*packet.Packet) bool
}

func (f *filterNode) ID() packet.NodeID { return f.id }
func (f *filterNode) Deliver(p *packet.Packet) {
	if f.mangle != nil {
		f.mangle(p)
	}
	if f.drop != nil && f.drop(p) {
		return
	}
	f.dst.Deliver(p)
}

// wire is a two-host test fixture: host a sends data to host b through a
// filter; ACKs return directly. 1Gbps links, 50us one-way delay.
type wire struct {
	sched  *sim.Scheduler
	a, b   *netsim.Host
	filter *filterNode
}

func newWire(t *testing.T) *wire {
	if t != nil {
		t.Helper()
	}
	s := sim.NewScheduler()
	a := netsim.NewHost(s, 1, "a")
	b := netsim.NewHost(s, 2, "b")
	f := &filterNode{id: 100, dst: b}
	const rate = 1_000_000_000
	const delay = 50 * sim.Microsecond
	a.SetUplink(netsim.NewPort(s, netsim.NewLink(s, f, rate, delay),
		netsim.PortConfig{BufferBytes: 4 << 20}))
	b.SetUplink(netsim.NewPort(s, netsim.NewLink(s, a, rate, delay),
		netsim.PortConfig{BufferBytes: 4 << 20}))
	return &wire{sched: s, a: a, b: b, filter: f}
}

// conn builds a persistent connection a->b with the given config and CC.
func (w *wire) conn(cfg Config, cc CongestionControl) *Conn {
	return NewConn(cfg, cc, w.a, w.b, 7)
}

// dropSeqOnce returns a drop function that discards the first data packet
// whose Seq equals each of the given sequence numbers (subsequent
// retransmissions pass).
func dropSeqOnce(seqs ...int64) func(*packet.Packet) bool {
	pending := make(map[int64]bool, len(seqs))
	for _, q := range seqs {
		pending[q] = true
	}
	return func(p *packet.Packet) bool {
		if p.IsData() && pending[p.Seq] {
			delete(pending, p.Seq)
			return true
		}
		return false
	}
}
