package tcp

import (
	"testing"
	"testing/quick"

	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

func TestBasicTransferCompletes(t *testing.T) {
	w := newWire(t)
	c := w.conn(DefaultConfig(), NewReno{})
	var completedAt sim.Time = -1
	var total int64
	c.Sender.OnComplete = func(n int64) { completedAt, total = w.sched.Now(), n }

	const size = 100 << 10
	c.Sender.Send(size)
	w.sched.Run()

	if completedAt < 0 {
		t.Fatal("transfer never completed")
	}
	if total != size {
		t.Errorf("completed total = %d, want %d", total, size)
	}
	if got := c.Receiver.Stats().DeliveredByte; got != size {
		t.Errorf("delivered = %d, want %d", got, size)
	}
	if !c.Sender.Done() {
		t.Error("Done() false after completion")
	}
	st := c.Sender.Stats()
	if st.RetransPkts != 0 || st.Timeouts != 0 {
		t.Errorf("clean path saw retrans=%d timeouts=%d", st.RetransPkts, st.Timeouts)
	}
	// 100KB at 1Gbps minimum takes ~0.8ms + slow-start round trips.
	if completedAt > sim.Time(100*sim.Millisecond) {
		t.Errorf("transfer too slow: %v", completedAt)
	}
}

func TestTransferExactlyOneMSS(t *testing.T) {
	w := newWire(t)
	c := w.conn(DefaultConfig(), NewReno{})
	done := false
	c.Sender.OnComplete = func(int64) { done = true }
	c.Sender.Send(packet.MSS)
	w.sched.Run()
	if !done {
		t.Fatal("single-segment transfer did not complete")
	}
	if c.Sender.Stats().SentPkts != 1 {
		t.Errorf("sent %d packets for one MSS", c.Sender.Stats().SentPkts)
	}
}

func TestTransferSubMSSAndOddSizes(t *testing.T) {
	for _, size := range []int64{1, 100, packet.MSS - 1, packet.MSS + 1, 3*packet.MSS + 17} {
		w := newWire(t)
		c := w.conn(DefaultConfig(), NewReno{})
		done := false
		c.Sender.OnComplete = func(int64) { done = true }
		c.Sender.Send(size)
		w.sched.Run()
		if !done {
			t.Fatalf("size %d did not complete", size)
		}
		if got := c.Receiver.Stats().DeliveredByte; got != size {
			t.Errorf("size %d: delivered %d", size, got)
		}
	}
}

func TestMultipleRoundsOnPersistentConnection(t *testing.T) {
	w := newWire(t)
	c := w.conn(DefaultConfig(), NewReno{})
	var completions []int64
	c.Sender.OnComplete = func(n int64) {
		completions = append(completions, n)
		if len(completions) < 3 {
			c.Sender.Send(50 << 10)
		}
	}
	c.Sender.Send(50 << 10)
	w.sched.Run()
	if len(completions) != 3 {
		t.Fatalf("completions = %d, want 3", len(completions))
	}
	for i, n := range completions {
		if want := int64(50<<10) * int64(i+1); n != want {
			t.Errorf("completion %d total = %d, want %d", i, n, want)
		}
	}
	if got := c.Sender.Stats().Completions; got != 3 {
		t.Errorf("stats.Completions = %d", got)
	}
}

func TestSendValidation(t *testing.T) {
	w := newWire(t)
	c := w.conn(DefaultConfig(), NewReno{})
	defer func() {
		if recover() == nil {
			t.Error("Send(0) did not panic")
		}
	}()
	c.Sender.Send(0)
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.MSS = 0 },
		func(c *Config) { c.InitialCwnd = 0.5 },
		func(c *Config) { c.MinCwnd = 0 },
		func(c *Config) { c.MaxCwnd = 1 },
		func(c *Config) { c.DupThresh = 0 },
		func(c *Config) { c.RTOMin = 0 },
		func(c *Config) { c.RTOMax = c.RTOMin - 1 },
		func(c *Config) { c.DelAckCount = 0 },
	}
	for i, mut := range bad {
		cfg := DefaultConfig()
		mut(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad config %d did not panic", i)
				}
			}()
			cfg.validate()
		}()
	}
}

func TestNilCCPanics(t *testing.T) {
	w := newWire(t)
	defer func() {
		if recover() == nil {
			t.Error("nil cc did not panic")
		}
	}()
	NewSender(DefaultConfig(), nil, w.a, w.b.ID(), 9)
}

func TestSlowStartGrowth(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.MaxCwnd = 100
	c := w.conn(cfg, NewReno{})
	c.Sender.Send(1 << 20)
	w.sched.Run()
	// With no loss the window should have grown well past the initial 2.
	if got := c.Sender.CwndMSS(); got < 10 {
		t.Errorf("cwnd after clean 1MB = %.1f MSS, want >= 10", got)
	}
	if c.Sender.Stats().Timeouts != 0 {
		t.Error("unexpected timeouts")
	}
}

func TestCwndCappedAtMax(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.MaxCwnd = 8
	c := w.conn(cfg, NewReno{})
	c.Sender.Send(4 << 20)
	w.sched.Run()
	if got := c.Sender.CwndMSS(); got > 8 {
		t.Errorf("cwnd %.1f exceeds MaxCwnd 8", got)
	}
	if !c.Sender.Done() {
		t.Fatal("transfer incomplete")
	}
}

func TestFastRetransmitSingleLoss(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.InitialCwnd = 10 // enough outstanding data for 3 dupacks
	cfg.DelAckCount = 1  // every segment acked: crisp dupack stream
	c := w.conn(cfg, NewReno{})
	// Drop the 3rd segment (seq = 2*MSS) once.
	w.filter.drop = dropSeqOnce(2 * packet.MSS)
	done := false
	c.Sender.OnComplete = func(int64) { done = true }
	c.Sender.Send(20 * packet.MSS)
	w.sched.Run()

	if !done {
		t.Fatal("did not complete")
	}
	st := c.Sender.Stats()
	if st.FastRecoveries != 1 {
		t.Errorf("fast recoveries = %d, want 1", st.FastRecoveries)
	}
	if st.Timeouts != 0 {
		t.Errorf("timeouts = %d, want 0 (loss should be repaired by fast rtx)", st.Timeouts)
	}
	if st.RetransPkts != 1 {
		t.Errorf("retransmissions = %d, want 1", st.RetransPkts)
	}
	if got := c.Receiver.Stats().DeliveredByte; got != 20*packet.MSS {
		t.Errorf("delivered %d", got)
	}
}

func TestNewRenoMultipleLossesOneWindow(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.InitialCwnd = 12
	cfg.DelAckCount = 1
	c := w.conn(cfg, NewReno{})
	// Two holes in the same window: NewReno repairs them with partial ACKs
	// within a single recovery episode.
	w.filter.drop = dropSeqOnce(2*packet.MSS, 5*packet.MSS)
	done := false
	c.Sender.OnComplete = func(int64) { done = true }
	c.Sender.Send(30 * packet.MSS)
	w.sched.Run()

	if !done {
		t.Fatal("did not complete")
	}
	st := c.Sender.Stats()
	if st.FastRecoveries != 1 {
		t.Errorf("fast recoveries = %d, want 1 (NewReno stays in one episode)", st.FastRecoveries)
	}
	if st.Timeouts != 0 {
		t.Errorf("timeouts = %d, want 0", st.Timeouts)
	}
	if st.RetransPkts != 2 {
		t.Errorf("retransmissions = %d, want 2", st.RetransPkts)
	}
}

func TestFullWindowLossIsFLossTimeout(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.RTOMin = 10 * sim.Millisecond
	cfg.RTOInit = 10 * sim.Millisecond
	c := w.conn(cfg, NewReno{})
	// Drop every data packet for the first 5ms: the whole initial window
	// vanishes, no feedback returns -> FLoss-TO.
	w.filter.drop = func(p *packet.Packet) bool {
		return p.IsData() && w.sched.Now() < sim.Time(5*sim.Millisecond)
	}
	var kinds []TimeoutKind
	c.Sender.OnTimeoutEvent = func(k TimeoutKind) { kinds = append(kinds, k) }
	done := false
	c.Sender.OnComplete = func(int64) { done = true }
	c.Sender.Send(10 * packet.MSS)
	w.sched.Run()

	if !done {
		t.Fatal("did not complete")
	}
	st := c.Sender.Stats()
	if st.Timeouts == 0 || st.FLossTimeouts == 0 {
		t.Fatalf("expected FLoss timeouts, got %+v", st)
	}
	if kinds[0] != FLossTO {
		t.Errorf("first timeout kind = %v, want FLoss-TO", kinds[0])
	}
	if st.Timeouts != st.FLossTimeouts+st.LAckTimeouts {
		t.Error("taxonomy does not partition timeouts")
	}
}

func TestInsufficientDupAcksIsLAckTimeout(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.InitialCwnd = 4
	cfg.DelAckCount = 1
	cfg.RTOMin = 10 * sim.Millisecond
	cfg.RTOInit = 10 * sim.Millisecond
	c := w.conn(cfg, NewReno{})
	// Send exactly 4 segments; drop the 2nd. Segments 3 and 4 produce only
	// two dupacks — below DupThresh — so only the RTO recovers: LAck-TO.
	w.filter.drop = dropSeqOnce(1 * packet.MSS)
	var kinds []TimeoutKind
	c.Sender.OnTimeoutEvent = func(k TimeoutKind) { kinds = append(kinds, k) }
	done := false
	c.Sender.OnComplete = func(int64) { done = true }
	c.Sender.Send(4 * packet.MSS)
	w.sched.Run()

	if !done {
		t.Fatal("did not complete")
	}
	st := c.Sender.Stats()
	if st.Timeouts != 1 || st.LAckTimeouts != 1 {
		t.Fatalf("want exactly one LAck-TO, got %+v", st)
	}
	if kinds[0] != LAckTO {
		t.Errorf("kind = %v, want LAck-TO", kinds[0])
	}
	if st.FastRecoveries != 0 {
		t.Error("fast recovery should not have triggered")
	}
}

func TestTimeoutCollapsesCwndToOne(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.RTOMin = 10 * sim.Millisecond
	cfg.RTOInit = 10 * sim.Millisecond
	c := w.conn(cfg, NewReno{})
	w.filter.drop = func(p *packet.Packet) bool {
		return p.IsData() && w.sched.Now() < sim.Time(5*sim.Millisecond)
	}
	var cwndAtTO float64 = -1
	c.Sender.OnTimeoutEvent = func(TimeoutKind) {
		// Callback fires before the collapse; sample just after via state.
	}
	c.Sender.Send(10 * packet.MSS)
	// Step until the first timeout has been processed.
	for w.sched.Step() {
		if c.Sender.Stats().Timeouts > 0 {
			cwndAtTO = c.Sender.CwndMSS()
			break
		}
	}
	if cwndAtTO != 1 {
		t.Errorf("cwnd after RTO = %v, want 1 (the paper's timeout signature)", cwndAtTO)
	}
	if c.Sender.State() != StateLoss {
		t.Errorf("state = %v, want loss", c.Sender.State())
	}
	w.sched.Run()
	if !c.Sender.Done() {
		t.Error("did not complete after timeout recovery")
	}
}

func TestRTOExponentialBackoff(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.RTOMin = 10 * sim.Millisecond
	cfg.RTOInit = 10 * sim.Millisecond
	cfg.RTOMax = 1 * sim.Second
	c := w.conn(cfg, NewReno{})
	// Black-hole everything for 100ms: repeated RTOs must back off.
	w.filter.drop = func(p *packet.Packet) bool {
		return w.sched.Now() < sim.Time(100*sim.Millisecond)
	}
	var timeoutTimes []sim.Time
	c.Sender.OnTimeoutEvent = func(TimeoutKind) {
		timeoutTimes = append(timeoutTimes, w.sched.Now())
	}
	done := false
	c.Sender.OnComplete = func(int64) { done = true }
	c.Sender.Send(5 * packet.MSS)
	w.sched.Run()

	if !done {
		t.Fatal("did not complete")
	}
	if len(timeoutTimes) < 3 {
		t.Fatalf("expected repeated timeouts, got %d", len(timeoutTimes))
	}
	gap1 := timeoutTimes[1].Sub(timeoutTimes[0])
	gap2 := timeoutTimes[2].Sub(timeoutTimes[1])
	if gap2 < gap1*3/2 {
		t.Errorf("backoff not growing: gaps %v then %v", gap1, gap2)
	}
}

func TestKarnNoRTTSampleFromRetransmit(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.InitialCwnd = 10
	cfg.DelAckCount = 1
	c := w.conn(cfg, NewReno{})
	w.filter.drop = dropSeqOnce(0) // lose the very first (timed) segment
	c.Sender.Send(20 * packet.MSS)
	w.sched.Run()
	// SRTT must reflect the ~100us path, not a retransmission-skewed value.
	srtt := c.Sender.SRTT()
	if srtt <= 0 {
		t.Fatal("no RTT samples at all")
	}
	if srtt > 5*sim.Millisecond {
		t.Errorf("SRTT = %v: retransmitted segment appears to have been sampled", srtt)
	}
}

func TestMinCwndFloorHolds(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.ECN = ECNClassic
	c := w.conn(cfg, NewReno{})
	// Mark every data packet CE: the sender is asked to halve every window
	// but must never go below MinCwnd except via RTO.
	w.filter.mangle = func(p *packet.Packet) {
		if p.IsData() && p.ECN == packet.ECT {
			p.ECN = packet.CE
		}
	}
	minSeen := 1e9
	c.Sender.OnAckProbe = func(s *Sender, _ bool) {
		if s.State() != StateLoss && s.CwndMSS() < minSeen {
			minSeen = s.CwndMSS()
		}
	}
	c.Sender.Send(200 * packet.MSS)
	w.sched.Run()
	if !c.Sender.Done() {
		t.Fatal("did not complete")
	}
	if minSeen < cfg.MinCwnd {
		t.Errorf("cwnd dropped to %.2f below floor %v", minSeen, cfg.MinCwnd)
	}
	if st := c.Sender.Stats(); st.ECEAcks == 0 {
		t.Error("no ECE feedback observed — marking path broken")
	}
}

func TestECNReductionOncePerWindow(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.ECN = ECNClassic
	cfg.InitialCwnd = 16
	cfg.MaxCwnd = 16
	cfg.DelAckCount = 1
	c := w.conn(cfg, NewReno{})
	marked := false
	w.filter.mangle = func(p *packet.Packet) {
		// Mark exactly one packet in the first window.
		if p.IsData() && !marked && p.Seq == 0 {
			p.ECN = packet.CE
			marked = true
		}
	}
	c.Sender.Send(64 * packet.MSS)
	w.sched.Run()
	// One mark -> one halving: 16 -> 8, then growth resumes. If the sender
	// reacted to the ECE latch repeatedly it would be pinned at MinCwnd.
	if got := c.Sender.CwndMSS(); got < 8 {
		t.Errorf("cwnd = %.1f, want >= 8 (single reduction)", got)
	}
	if !c.Sender.Done() {
		t.Fatal("did not complete")
	}
}

func TestMinCwndECESendInstrumentation(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.ECN = ECNClassic
	c := w.conn(cfg, NewReno{})
	w.filter.mangle = func(p *packet.Packet) {
		if p.IsData() && p.ECN == packet.ECT {
			p.ECN = packet.CE
		}
	}
	c.Sender.Send(100 * packet.MSS)
	w.sched.Run()
	st := c.Sender.Stats()
	if st.MinCwndECESends == 0 {
		t.Error("expected Table-I condition (cwnd at floor, ECE set) to be observed")
	}
}

func TestCloseUnregisters(t *testing.T) {
	w := newWire(t)
	c := w.conn(DefaultConfig(), NewReno{})
	c.Sender.Send(packet.MSS)
	w.sched.Run()
	c.Close()
	var unclaimedA int
	w.a.OnUnclaimed = func(*packet.Packet) { unclaimedA++ }
	// An ACK arriving after close must be unclaimed, not crash.
	w.b.Send(&packet.Packet{Dst: w.a.ID(), Flow: 7, Flags: packet.FlagACK, AckNo: 1})
	w.sched.Run()
	if unclaimedA != 1 {
		t.Errorf("unclaimed = %d", unclaimedA)
	}
}

// Property: under any random loss pattern up to 30%, the transfer always
// completes and delivers exactly the bytes sent — the retransmission
// machinery never deadlocks or corrupts the stream.
func TestLossyTransferAlwaysCompletes(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	f := func(seed uint64, lossPctRaw uint8) bool {
		lossPct := int(lossPctRaw % 31)
		w := newWire(nil)
		cfg := DefaultConfig()
		cfg.RTOMin = 10 * sim.Millisecond
		cfg.RTOInit = 10 * sim.Millisecond
		cfg.DelAckCount = 1
		c := w.conn(cfg, NewReno{})
		rng := sim.NewRNG(seed)
		w.filter.drop = func(p *packet.Packet) bool {
			return p.IsData() && rng.Intn(100) < lossPct
		}
		const size = 64 * packet.MSS
		c.Sender.Send(size)
		w.sched.RunUntil(sim.Time(200 * sim.Second))
		return c.Sender.Done() && c.Receiver.Stats().DeliveredByte == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSenderStateString(t *testing.T) {
	if StateOpen.String() != "open" || StateRecovery.String() != "recovery" ||
		StateLoss.String() != "loss" || SenderState(9).String() != "?" {
		t.Error("state strings wrong")
	}
	if FLossTO.String() != "FLoss-TO" || LAckTO.String() != "LAck-TO" {
		t.Error("timeout kind strings wrong")
	}
	if ECNOff.String() != "off" || ECNClassic.String() != "rfc3168" ||
		ECNPrecise.String() != "dctcp" || ECNMode(9).String() != "?" {
		t.Error("ECN mode strings wrong")
	}
}

func TestSenderAccessors(t *testing.T) {
	w := newWire(t)
	cfg := DefaultConfig()
	cfg.Seed = 42
	c := w.conn(cfg, NewReno{})
	s := c.Sender
	if s.Flow() != 7 || s.MinCwndMSS() != 2 || s.Config().Seed != 42 {
		t.Error("accessors wrong")
	}
	if s.RNG() == nil {
		t.Error("nil RNG")
	}
	if s.TotalBytes() != 0 || s.SndUna() != 0 || s.SndNxt() != 0 || s.InflightBytes() != 0 {
		t.Error("fresh sender bookkeeping not zero")
	}
	if s.Done() {
		t.Error("fresh sender reports done")
	}
	if s.SsthreshMSS() != cfg.MaxCwnd {
		t.Error("initial ssthresh should be MaxCwnd")
	}
}
