package tcp

import (
	"testing"

	"dctcpplus/internal/netsim"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

// BenchmarkBulkTransfer measures end-to-end simulator throughput: one
// NewReno flow moving 1MB across a star topology. Reported metric:
// simulated megabytes per wall second.
func BenchmarkBulkTransfer(b *testing.B) {
	const size = 1 << 20
	for i := 0; i < b.N; i++ {
		s := sim.NewScheduler()
		star := netsim.NewStar(s, 2, netsim.DefaultTopologyConfig())
		cfg := DefaultConfig()
		cfg.MaxCwnd = 64
		c := NewConn(cfg, NewReno{}, star.Hosts[0], star.Hosts[1], 1)
		c.Sender.Send(size)
		s.Run()
		if !c.Sender.Done() {
			b.Fatal("transfer incomplete")
		}
	}
	b.SetBytes(size)
}

// BenchmarkManyFlows measures the cost of a 64-flow fan-in round.
func BenchmarkManyFlows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.NewScheduler()
		tt := netsim.NewTwoTier(s, 3, 3, netsim.DefaultTopologyConfig())
		done := 0
		for f := 0; f < 64; f++ {
			cfg := DefaultConfig()
			cfg.RTOMin = 10 * sim.Millisecond
			cfg.RTOInit = 10 * sim.Millisecond
			cfg.Seed = uint64(f + 1)
			c := NewConn(cfg, NewReno{}, tt.Workers[f%9], tt.Aggregator, packet.FlowID(f+1))
			c.Sender.OnComplete = func(int64) { done++ }
			c.Sender.Send(16 << 10)
		}
		s.RunUntil(sim.Time(10 * sim.Second))
		if done != 64 {
			b.Fatalf("completed %d/64", done)
		}
	}
}
