package tcp

import (
	"testing"

	"dctcpplus/internal/netsim"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

// BenchmarkBulkTransfer measures end-to-end simulator throughput: one
// NewReno flow moving 1MB across a star topology. Reported metric:
// simulated megabytes per wall second.
func BenchmarkBulkTransfer(b *testing.B) {
	const size = 1 << 20
	for i := 0; i < b.N; i++ {
		s := sim.NewScheduler()
		star := netsim.NewStar(s, 2, netsim.DefaultTopologyConfig())
		star.EnablePacketPool()
		cfg := DefaultConfig()
		cfg.MaxCwnd = 64
		c := NewConn(cfg, NewReno{}, star.Hosts[0], star.Hosts[1], 1)
		c.Sender.Send(size)
		s.Run()
		if !c.Sender.Done() {
			b.Fatal("transfer incomplete")
		}
	}
	b.SetBytes(size)
}

// BenchmarkManyFlows measures the cost of a 64-flow fan-in round.
func BenchmarkManyFlows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.NewScheduler()
		tt := netsim.NewTwoTier(s, 3, 3, netsim.DefaultTopologyConfig())
		tt.EnablePacketPool()
		done := 0
		for f := 0; f < 64; f++ {
			cfg := DefaultConfig()
			cfg.RTOMin = 10 * sim.Millisecond
			cfg.RTOInit = 10 * sim.Millisecond
			cfg.Seed = uint64(f + 1)
			c := NewConn(cfg, NewReno{}, tt.Workers[f%9], tt.Aggregator, packet.FlowID(f+1))
			c.Sender.OnComplete = func(int64) { done++ }
			c.Sender.Send(16 << 10)
		}
		s.RunUntil(sim.Time(10 * sim.Second))
		if done != 64 {
			b.Fatalf("completed %d/64", done)
		}
	}
}

// TestTransferAllocBudget pins the transport's steady-state alloc budget at
// zero: after one warm-up transfer has minted the pool packets, grown the
// scheduler's event freelist and the receiver's reassembly buffer, every
// further transfer — data transmission, ACK processing, cwnd updates, RTO
// arming, pacing — runs without a single heap allocation.
func TestTransferAllocBudget(t *testing.T) {
	s := sim.NewScheduler()
	star := netsim.NewStar(s, 2, netsim.DefaultTopologyConfig())
	pool := star.EnablePacketPool()
	cfg := DefaultConfig()
	cfg.MaxCwnd = 64
	c := NewConn(cfg, NewReno{}, star.Hosts[0], star.Hosts[1], 1)

	transfer := func() {
		c.Sender.Send(64 << 10)
		s.Run()
	}
	for i := 0; i < 4; i++ {
		transfer()
	}
	if !c.Sender.Done() {
		t.Fatal("warm-up transfers incomplete")
	}
	if got := testing.AllocsPerRun(20, transfer); got != 0 {
		t.Fatalf("steady-state transfer allocates %.1f times per 64KB, want 0", got)
	}
	if pool.Minted() > 256 {
		t.Fatalf("pool minted %d packets for a 64-segment window", pool.Minted())
	}
}

// TestAckPathAllocBudget isolates the pure-ACK receive path: delivering an
// acknowledgement that does not open the window (everything already acked)
// still walks Sender.Deliver, the congestion module's OnAck and the pacing
// pump, and must not allocate.
func TestAckPathAllocBudget(t *testing.T) {
	s := sim.NewScheduler()
	star := netsim.NewStar(s, 2, netsim.DefaultTopologyConfig())
	star.EnablePacketPool()
	c := NewConn(DefaultConfig(), NewReno{}, star.Hosts[0], star.Hosts[1], 1)
	c.Sender.Send(64 << 10)
	s.Run()
	if !c.Sender.Done() {
		t.Fatal("warm-up transfer incomplete")
	}

	var ack packet.Packet
	ack.Src, ack.Dst = star.Hosts[1].ID(), star.Hosts[0].ID()
	ack.Flow = 1
	ack.Flags = packet.FlagACK
	deliver := func() {
		ack.AckNo = c.Sender.stats.SentBytes // == sndUna: a pure duplicate
		c.Sender.Deliver(&ack)
	}
	deliver()
	if got := testing.AllocsPerRun(100, deliver); got != 0 {
		t.Fatalf("ACK path allocates %.1f times per ACK, want 0", got)
	}
}
