package lint

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the fixtures' expect.txt golden files")

// TestFixtures runs the full analyzer suite over each fixture package under
// testdata/src and compares the rendered diagnostics against the package's
// expect.txt. Each violation fixture triggers exactly one diagnostic from
// one analyzer; the clean fixture expects none.
func TestFixtures(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			// A fresh loader per fixture keeps each fixture's call graph
			// isolated: a //hot:path root in one fixture must not mark
			// functions of another fixture hot-reachable through the shared
			// Program.
			loader, err := NewLoader(".")
			if err != nil {
				t.Fatal(err)
			}
			pkgs, err := loader.Load("internal/lint/testdata/src/" + name)
			if err != nil {
				t.Fatal(err)
			}
			if len(pkgs) != 1 {
				t.Fatalf("loaded %d packages, want 1", len(pkgs))
			}
			diags := Run(pkgs, All())
			var b strings.Builder
			for _, d := range diags {
				// Base names keep the golden files machine-independent.
				d.File = filepath.Base(d.File)
				b.WriteString(d.String())
				b.WriteByte('\n')
			}
			golden := filepath.Join("testdata", "src", name, "expect.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(b.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got := b.String(); got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestFixtureAnalyzerCoverage asserts the violation fixtures collectively
// exercise every analyzer plus the directive policy, so a new analyzer
// cannot ship without a fixture.
func TestFixtureAnalyzerCoverage(t *testing.T) {
	want := map[string]bool{"directive": true}
	for _, a := range All() {
		want[a.Name] = true
	}
	got := make(map[string]bool)
	paths, err := filepath.Glob(filepath.Join("testdata", "src", "*", "expect.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
			parts := strings.SplitN(line, ": ", 3)
			if len(parts) == 3 {
				got[parts[1]] = true
			}
		}
	}
	var missing []string
	for name := range want {
		if !got[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Errorf("no fixture triggers analyzer(s): %s", strings.Join(missing, ", "))
	}
}

// TestModuleIsClean is the acceptance criterion in test form: the shipped
// tree carries zero diagnostics.
func TestModuleIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is not short")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	for _, d := range Run(pkgs, All()) {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
