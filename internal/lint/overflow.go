package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Overflow reports two wraparound bug classes in code reachable from
// //hot:path or //sweep:job roots — the code that runs once per packet or
// once per sweep job, where "only overflows at N=2000×seed scale" is
// exactly the class no test tier catches:
//
//  1. Unbounded accumulation (x++, x += e, and their downward twins) on
//     narrow integer struct fields. Per-function intervals cannot bound
//     cross-call growth, so the only static discharge is an //inv:
//     contract bounding the growing side; everything else must widen to
//     int64. Plain int/uint count as narrow: a tally that is only safe on
//     64-bit hosts is a latent port bug. Locals are exempt (loop
//     counters don't accumulate across calls).
//
//  2. Sequence-number arithmetic on sub-64-bit values: ordering
//     comparisons or subtraction on seq/ack-named narrow values wrap at
//     the type boundary and must go through the modular-compare helpers
//     (packet.SeqLT/SeqGEQ/SeqDelta). Functions named Seq* are the
//     helpers themselves and are exempt; the module's own int64 sequence
//     space never wraps and is exempt by width.
func Overflow() *Analyzer {
	return &Analyzer{
		Name: "overflow",
		Doc:  "flag unbounded narrow-integer accumulation and wraparound-unsafe sequence arithmetic in hot/sweep-reachable code",
		Run:  runOverflow,
	}
}

func runOverflow(p *Package) []Diagnostic {
	prog := p.Prog
	if prog == nil {
		return nil
	}
	var out []Diagnostic
	res := prog.intervalAnalysisOf(p)
	for _, fr := range res.funcs {
		label, reachable := reachLabel(prog, fr.node.fn)
		if !reachable {
			continue
		}
		for _, ac := range fr.accums {
			dir := "grows without an upper bound"
			if !ac.up {
				dir = "shrinks without a lower bound"
			}
			out = append(out, p.diag("overflow", ac.pos,
				"%s-typed accumulation %s %s and can wrap %s; widen to int64 or bound it with an //inv: contract",
				ac.typ.Name(), ac.expr, dir, label))
		}
		out = append(out, seqArith(p, fr.node, label)...)
	}
	return out
}

// reachLabel reports hot/sweep reachability with the witness provenance
// suffix used by the other call-graph analyzers.
func reachLabel(prog *Program, fn *types.Func) (string, bool) {
	if roots := prog.hotRootsOf(fn); len(roots) > 0 {
		return rootLabel(fn, roots), true
	}
	if roots := prog.sweepRootsOf(fn); len(roots) > 0 {
		return sweepRootLabel(fn, roots), true
	}
	return "", false
}

// seqArith flags wraparound-unsafe arithmetic on narrow sequence-like
// values in one reachable function.
func seqArith(p *Package, n *funcNode, label string) []Diagnostic {
	if strings.HasPrefix(n.fn.Name(), "Seq") {
		return nil // the modular helpers themselves
	}
	var out []Diagnostic
	seen := map[string]bool{}
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		be, ok := node.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.SUB:
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			bits, name, isSeq := seqNarrow(p, side)
			if !isSeq {
				continue
			}
			key := p.Fset.Position(be.OpPos).String()
			if seen[key] {
				break
			}
			seen[key] = true
			out = append(out, p.diag("overflow", be.OpPos,
				"%s %s on %d-bit sequence value %s wraps at the type boundary; use the modular-compare helpers (packet.SeqLT/SeqGEQ/SeqDelta) %s",
				opWord(be.Op), be.Op, bits, name, label))
			break
		}
		return true
	})
	return out
}

func opWord(op token.Token) string {
	if op == token.SUB {
		return "subtraction"
	}
	return "ordering comparison"
}

// seqNarrow reports whether e is a sub-64-bit integer whose name (its own
// identifier, selected field, or named type) reads as a sequence/ack
// number.
func seqNarrow(p *Package, e ast.Expr) (bits int, name string, ok bool) {
	t := p.Info.TypeOf(e)
	if t == nil {
		return 0, "", false
	}
	b, okB := t.Underlying().(*types.Basic)
	if !okB || b.Info()&types.IsInteger == 0 {
		return 0, "", false
	}
	switch b.Kind() {
	case types.Int32, types.Uint32:
		bits = 32
	case types.Int16, types.Uint16:
		bits = 16
	case types.Int8, types.Uint8:
		bits = 8
	default:
		return 0, "", false
	}
	looksSeq := func(s string) bool {
		s = strings.ToLower(s)
		return strings.Contains(s, "seq") || strings.Contains(s, "ack")
	}
	if named, okN := t.(*types.Named); okN && looksSeq(named.Obj().Name()) {
		return bits, types.ExprString(e), true
	}
	switch e := unparen(e).(type) {
	case *ast.Ident:
		if looksSeq(e.Name) {
			return bits, e.Name, true
		}
	case *ast.SelectorExpr:
		if looksSeq(e.Sel.Name) {
			return bits, types.ExprString(e), true
		}
	case *ast.CallExpr: // conversion: inspect the operand's spelling
		if len(e.Args) == 1 {
			if _, n, okS := seqNarrow(p, e.Args[0]); okS {
				return bits, n, true
			}
		}
	}
	return 0, "", false
}
