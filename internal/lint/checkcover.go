package lint

import (
	"go/types"
	"sort"
)

// CheckCover audits the static↔runtime unification of //inv: contracts
// from the runtime side (rangeproof audits the static side):
//
//   - An internal/check assertion covering an annotated field must carry a
//     non-empty literal name string, so a runtime violation names the
//     contract it enforces.
//   - An assertion on an annotated field must discharge at least one atom
//     of that field's contract; an assertion weaker than or unrelated to
//     the declared range is a drifted check (AtLeast(x, 0) guarding
//     //inv: x >= 1 enforces the wrong invariant).
//   - Every contract atom left statically unproven by some writer must be
//     discharged by an assertion somewhere in the declaring package;
//     otherwise the contract is documentation, not an invariant — reported
//     once, at the field declaration.
func CheckCover() *Analyzer {
	return &Analyzer{
		Name: "checkcover",
		Doc:  "require a named internal/check assertion for every //inv: contract atom the prover cannot discharge statically",
		Run:  runCheckCover,
	}
}

func runCheckCover(p *Package) []Diagnostic {
	prog := p.Prog
	if prog == nil {
		return nil
	}
	ct := prog.contracts()
	res := prog.intervalAnalysisOf(p)
	var out []Diagnostic

	type fieldState struct {
		unproven map[int][]string // atom index -> writer function names
		covered  map[int]bool     // atom index discharged by some package check
	}
	states := map[*types.Var]*fieldState{}
	stateOf := func(fv *types.Var) *fieldState {
		s, ok := states[fv]
		if !ok {
			s = &fieldState{unproven: map[int][]string{}, covered: map[int]bool{}}
			states[fv] = s
		}
		return s
	}

	for _, fr := range res.funcs {
		for _, c := range fr.checks {
			if c.target == nil {
				continue
			}
			fc, annotated := ct.fields[c.target]
			if !annotated {
				continue
			}
			if !c.named {
				out = append(out, p.diag("checkcover", c.pos,
					"check.%s covering //inv: field %s.%s must pass a non-empty literal name string",
					c.fnName, ownerName(fc), c.target.Name()))
			}
			any := false
			for i, a := range fc.atoms {
				if dischargesAtom(c, a, ct) {
					any = true
					if c.target.Pkg() == p.Types {
						stateOf(c.target).covered[i] = true
					}
				}
			}
			if !any {
				out = append(out, p.diag("checkcover", c.pos,
					"check.%s on %s.%s asserts nothing its //inv: contract declares; align the assertion with the contract",
					c.fnName, ownerName(fc), c.target.Name()))
			}
		}
		for _, ua := range fr.unproven {
			if ua.field.Pkg() != p.Types {
				continue
			}
			s := stateOf(ua.field)
			s.unproven[ua.atomIdx] = append(s.unproven[ua.atomIdx], ua.fnName)
		}
	}

	// Third leg: unproven atoms with no covering assertion anywhere in the
	// declaring package, reported at the field declaration.
	var fields []*types.Var
	for fv := range states {
		fields = append(fields, fv)
	}
	sort.Slice(fields, func(i, j int) bool {
		return ct.fields[fields[i]].pos < ct.fields[fields[j]].pos
	})
	for _, fv := range fields {
		s := states[fv]
		fc := ct.fields[fv]
		var idxs []int
		for i := range s.unproven {
			if !s.covered[i] {
				idxs = append(idxs, i)
			}
		}
		sort.Ints(idxs)
		for _, i := range idxs {
			writers := s.unproven[i]
			sort.Strings(writers)
			out = append(out, p.diag("checkcover", fc.pos,
				"//inv: %s on %s.%s is neither statically proven (writer %s) nor covered by an internal/check assertion in this package",
				fc.atoms[i].describe(), ownerName(fc), fv.Name(), joinNames(writers)))
		}
	}
	return out
}

func joinNames(names []string) string {
	switch len(names) {
	case 0:
		return "?"
	case 1:
		return names[0]
	}
	s := names[0]
	for _, n := range names[1:] {
		s += ", " + n
	}
	return s
}
