// Package floatcmpfix is the floateq autofix fixture: exact float
// comparisons rewrite to epsilon comparisons, and the math import the
// rewrite needs is inserted into a file that lacks one.
package floatcmpfix

// Same compares two rates exactly.
func Same(a, b float64) bool {
	return a == b
}

// Differs compares against a scaled value.
func Differs(x, y float64) bool {
	return x != y*2
}
