// Package rawdurfix is the simtime autofix fixture: raw int64 durations on
// exported boundaries rewrite to sim.Duration.
package rawdurfix

import "dctcpplus/internal/sim"

// tick keeps the sim import live for the fix qualifier.
var tick sim.Duration

// Config crosses an exported boundary with raw int64 durations.
type Config struct {
	DelayNs int64
	WaitNs  int64
	Flows   int
}

// Hold takes a raw duration parameter.
func Hold(delayNs int64) {
	_ = delayNs
	_ = tick
}
