// Package callgraph is the harness for the Program unit tests: a small web
// of static calls, an interface with two implementations, a dynamic call
// the graph must NOT follow, and a terminal panic helper.
package callgraph

// Codec is implemented twice; Encode calls through it, so both
// implementations must become hot when Encode is.
type Codec interface {
	Encode(v int) int
}

// Doubler is the first Codec.
type Doubler struct{}

// Encode doubles.
func (Doubler) Encode(v int) int { return v * 2 }

// Halver is the second Codec.
type Halver struct{}

// Encode halves, via a static helper that must inherit hotness through the
// interface edge.
func (Halver) Encode(v int) int { return half(v) }

// half is reachable only through Halver.Encode.
func half(v int) int { return v / 2 }

// Encode is the hot root: one static call, one interface call.
//
//hot:path
func Encode(c Codec, v int) int {
	return c.Encode(normalize(v))
}

// normalize is one static hop from the root.
func normalize(v int) int {
	if v < 0 {
		die("negative")
	}
	return v
}

// die is terminal: its body ends in panic.
func die(msg string) {
	panic("callgraph: " + msg)
}

// Detached is never called from a root and stays cold.
func Detached(v int) int { return v + 1 }

// Indirect calls through a function value — the documented hole: the graph
// must not claim cold() is reachable from here.
func Indirect(f func() int) int { return f() }

// cold exists to be passed as a value, never called statically.
func cold() int { return 0 }

// Use keeps cold referenced so the package compiles without dead code.
func Use() int { return Indirect(cold) }
