// Package sweepjob exercises the sweepsafety analyzer: a //sweep:job root
// whose call chain writes package-level state (flagged at each write), next
// to a clean job that keeps every mutation job-local.
package sweepjob

// results is shared mutable state: every write below is a cross-worker
// data race waiting for a second job.
var results []float64

// counters is shared map state.
var counters = map[string]int{}

// total is a shared scalar.
var total int

// RunJob is a worker-executed job body.
//
//sweep:job
func RunJob(x float64) float64 {
	results = append(results, x) // direct package-level write
	total++                      // inc/dec of a package-level scalar
	return tally(x)
}

// tally writes shared state one static hop from the root: the taint
// carries through the call graph, not just the annotated body.
func tally(x float64) float64 {
	counters["jobs"] = len(results) // indexed write through a package-level map
	delete(counters, "stale")       // mutating builtin on package-level state
	return x
}

// CleanJob builds and mutates only job-local state; reads of the
// package-level table are permitted.
//
//sweep:job
func CleanJob(xs []float64) float64 {
	local := make([]float64, 0, len(xs))
	sum := 0.0
	for _, x := range xs {
		local = append(local, x)
		sum += x
	}
	_ = len(results) // read-only access to shared state is fine
	return sum
}
