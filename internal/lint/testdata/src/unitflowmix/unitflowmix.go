// Package unitflowmix exercises the unitflow analyzer: byte, packet and
// segment taint tracked through name-neutral locals, function summaries,
// parameters, struct literals and range statements — flows unitsafety's
// purely syntactic check cannot see.
package unitflowmix

// Port is a switch port with unit-committed counters.
type Port struct {
	pkts       int
	queueBytes int
}

// Link models a link with a byte-valued backlog.
type Link struct {
	backlogBytes int
}

// Bytes returns the link's backlog; its name is its unit contract.
func (l *Link) Bytes() int { return l.backlogBytes }

// queued returns a byte quantity through a name-neutral function: the
// callee summary is derived from the body's return taint.
func queued(l *Link) int {
	q := l.backlogBytes
	return q
}

// windowSegs returns the congestion window in MSS segments.
func windowSegs() int { return 10 }

// Mixup routes byte-tainted values into packet- and segment-committed
// destinations through neutral intermediaries.
func Mixup(l *Link, p *Port) {
	q := l.Bytes() // q carries bytes (name-based callee summary)
	p.pkts = q     // flagged: bytes into a packets field
	n := queued(l) // n carries bytes (body-derived callee summary)
	nSegs := n     // flagged: bytes into a segments variable
	_ = nSegs
	sendPkts(q)           // flagged: bytes into a packets parameter
	if q > windowSegs() { // flagged: byte taint compared against segments
		p.queueBytes = q // clean: bytes into bytes
	}
}

// Build pre-fills a port from a byte count via a keyed struct literal.
func Build(l *Link) Port {
	return Port{pkts: l.Bytes()} // flagged: bytes into a packets field
}

// Drain folds a byte-valued series into a packet counter through the
// range value variable.
func Drain(sizesBytes []int, p *Port) {
	for _, v := range sizesBytes {
		p.pkts += v // flagged: v inherits bytes from the ranged container
	}
}

// sendPkts consumes a packet count.
func sendPkts(nPkts int) { _ = nPkts }
