// Package floatcmp compares floating-point values exactly.
package floatcmp

// Same reports exact equality of two measurements.
func Same(a, b float64) bool { return a == b }
