// Package rawdur leaks a raw nanosecond count across an exported boundary
// of a package where the sim time types are available.
package rawdur

import "dctcpplus/internal/sim"

// Config crosses the API boundary with a raw duration.
type Config struct {
	Clock   sim.Time
	DelayNs int64
}
