// Package unitmix adds a byte count to a packet count.
package unitmix

// Overflow mixes units in the addition.
func Overflow(qBytes, droppedPkts int) bool {
	return qBytes+droppedPkts > 0
}
