// Package cachekeymiss exercises the cachekey analyzer: //cache:key
// structs whose digest method misses fields — the unexported-scratch-field
// and json:"-" failure modes — next to a fully covered type and a
// directive pointing at a method that does not exist.
package cachekeymiss

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
)

// Point is a sweep-point stand-in with two coverage failures: a tag-excluded
// field and an unexported scratch field, both invisible to json.Marshal.
//
//cache:key Key
type Point struct {
	Flows   int    `json:"flows"`
	Seed    uint64 `json:"seed"`
	Note    string `json:"-"` // flagged: excluded by its json tag
	scratch int    // flagged: unexported, never serialized
}

// Key digests the point's canonical JSON.
func (pt Point) Key() string {
	data, err := json.Marshal(pt)
	if err != nil {
		panic(err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Complete is fully covered: json.Marshal handles the exported field and a
// direct selector read folds the unexported salt in.
//
//cache:key Key
type Complete struct {
	Flows int `json:"flows"`
	salt  int
}

// Key digests the JSON plus the salt read directly.
func (c Complete) Key() string {
	data, err := json.Marshal(c)
	if err != nil {
		panic(err)
	}
	sum := sha256.Sum256(append(data, byte(c.salt)))
	return hex.EncodeToString(sum[:])
}

// Orphan promises a digest method that was never written.
//
//cache:key Digest
type Orphan struct {
	A int
}
