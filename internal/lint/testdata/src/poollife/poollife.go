// Package poollife exercises the poollife analyzer: use-after-free,
// double-free, leak-on-path, discarded and overwritten mint results,
// unsanctioned escapes, and the clean shapes (release on every path,
// sanctioned sink escape, ownership transfer).
package poollife

// Buf is a pooled object with an exactly-once release obligation.
//
// state: pooled owned -> freed
type Buf struct {
	n    int
	next *Buf
}

// BufPool mints and frees Bufs.
type BufPool struct{ free *Buf }

// Get mints a caller-owned Buf.
//
// state: mint
func (p *BufPool) Get() *Buf {
	if p.free != nil {
		b := p.free
		p.free = b.next
		return b
	}
	return &Buf{}
}

// Put frees a Buf.
//
// state: kill b
func (p *BufPool) Put(b *Buf) {
	b.next = p.free
	p.free = b
}

// Store is a long-lived holder of parked Bufs.
type Store struct{ slot *Buf }

// Park is the sanctioned escape point: the slot takes ownership.
//
// state: xfer b
// state: sink
func (s *Store) Park(b *Buf) { s.slot = b }

// Borrow reads a Buf without taking ownership.
func (s *Store) Borrow(b *Buf) int { return b.n }

// UseAfterFree reads a Buf on a path where it was already freed.
func UseAfterFree(p *BufPool) int {
	b := p.Get()
	p.Put(b)
	return b.n
}

// DoubleFree releases the same Buf twice.
func DoubleFree(p *BufPool) {
	b := p.Get()
	p.Put(b)
	p.Put(b)
}

// LeakOnBranch releases on only one of two paths.
func LeakOnBranch(p *BufPool, cond bool) {
	b := p.Get()
	if cond {
		p.Put(b)
	}
}

// Discard drops a minted Buf on the floor.
func Discard(p *BufPool) {
	p.Get()
}

// EscapeUnsanctioned parks into a field outside a //state: sink function.
func (s *Store) EscapeUnsanctioned(p *BufPool) {
	s.slot = p.Get()
}

// LoopOverwrite re-mints every iteration; from the second pass of the
// loop fixpoint the assignment overwrites a still-owned Buf.
func LoopOverwrite(p *BufPool, n int) {
	var b *Buf
	for i := 0; i < n; i++ {
		b = p.Get()
	}
	p.Put(b)
}

// MergeFreedUse joins a freed path into a live one and then reads: the
// use is a may-finding from the branch join.
func MergeFreedUse(p *BufPool, cond bool) {
	b := p.Get()
	if cond {
		p.Put(b)
	}
	n := b.n
	_ = n
	p.Put(b)
}

// TempToBorrow passes an owned temporary to a borrowing callee: nothing
// can ever free it.
func TempToBorrow(s *Store, p *BufPool) {
	s.Borrow(p.Get())
}

// BothFree is clean: every path releases exactly once (free on one arm,
// sanctioned ownership transfer on the other).
func BothFree(p *BufPool, s *Store, cond bool) {
	b := p.Get()
	if cond {
		p.Put(b)
	} else {
		s.Park(b)
	}
}
