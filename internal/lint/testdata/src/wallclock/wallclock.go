// Package wallclock reads the wall clock outside the built-in allowlist.
package wallclock

import "time"

// Stamp returns the current wall-clock time in nanoseconds.
func Stamp() int64 { return time.Now().UnixNano() }
