// Package overflow exercises the overflow analyzer: unbounded narrow
// accumulation on a hot path, a contract-bounded accumulation that is
// exempt, and wraparound-unsafe arithmetic on 32-bit sequence values.
package overflow

// Tally accumulates per-packet counters.
type Tally struct {
	// hits is narrow and unbounded: flagged.
	hits int32
	// credits is bounded by its contract, so its accumulation is exempt.
	//inv: 0 <= credits && credits <= 4
	credits int32
}

// bump is the per-packet path.
//
//hot:path
func (t *Tally) bump(seqNo, limit uint32) bool {
	t.hits++
	if t.credits < 4 {
		t.credits++
	}
	return seqNo < limit
}
