// Package sharedcapture exercises the sharedstate analyzer: locals
// captured by reference and written inside concurrently executed closures
// — pool.ForEach bodies and goroutines spawned from sweep-reachable code.
package sharedcapture

import (
	"sync"

	"dctcpplus/internal/sweep/pool"
)

// Tally fans out over the worker pool and races on its accumulators; the
// worker-indexed slot write is the sanctioned idiom and stays clean.
func Tally(xs []float64) float64 {
	sum := 0.0
	seen := map[int]bool{}
	out := make([]float64, len(xs))
	pool.ForEach(2, len(xs), func(i int) {
		sum += xs[i]   // flagged: captured scalar, workers race
		seen[i] = true // flagged: captured map — racy regardless of key
		out[i] = xs[i] // clean: worker-private slot indexed by the param
	})
	total := 0.0
	for _, v := range out {
		total += v
	}
	return total
}

// Guarded serializes every captured write behind a mutex: clean.
func Guarded(xs []float64) float64 {
	var mu sync.Mutex
	sum := 0.0
	pool.ForEach(2, len(xs), func(i int) {
		v := xs[i]
		mu.Lock()
		sum += v
		mu.Unlock()
	})
	return sum
}

// counters is package-level state; its write below belongs to sweepsafety.
var counters = map[string]int{}

// Job spawns a goroutine from a sweep job body: the captured-local write is
// sharedstate's, the package-level write sweepsafety's.
//
//sweep:job
func Job(n int) int {
	local := 0
	go func() {
		local += n           // flagged by sharedstate: captured local
		counters["done"] = 1 // flagged by sweepsafety: package-level
	}()
	return local
}
