// Package rangeproof exercises the rangeproof analyzer: writes the
// interval interpreter proves (constants, branch-narrowed arguments),
// writes it cannot prove without a covering check assertion, violated
// function contracts on arguments and results, and a malformed //inv:
// annotation.
package rangeproof

import "dctcpplus/internal/check"

// Gauge carries a unit-interval level.
type Gauge struct {
	// level is a fraction of capacity.
	//inv: 0 <= level && level <= 1
	level float64
}

// SetHalf is provable: the constant lies inside the contract.
func (g *Gauge) SetHalf() { g.level = 0.5 }

// Fill is provable by branch narrowing: every exit clamps into range.
func (g *Gauge) Fill(x float64) {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	g.level = x
}

// Leak is not provable — nothing bounds x and no assertion in this
// function covers the write.
func (g *Gauge) Leak(x float64) {
	g.level = x
}

// Audit satisfies checkcover for the leaky writer above: the declaring
// package does enforce the contract at runtime, just not inside Leak.
func (g *Gauge) Audit() {
	check.Unit("gauge.level", g.level)
}

// floor declares a result contract its body violates.
//
// inv: return >= 1
func floor() int {
	return 0
}

// scaled declares a parameter contract one caller violates.
//
// inv: n >= 1
func scaled(n int) int {
	return n * 2
}

func callers() int {
	return scaled(0) + floor()
}

// Broken carries an unparsable contract.
type Broken struct {
	//inv: v <
	v int
}
