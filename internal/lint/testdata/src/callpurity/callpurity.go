// Package callpurity reaches nondeterminism sources from a hot root: each
// site is flagged by the base per-function analyzers and again — with root
// provenance — by the whole-call-graph taint pass.
package callpurity

import (
	"math/rand"
	"time"
)

// Tick is the per-event root.
//
//hot:path
func Tick(seen map[int]int) int64 {
	jittered := backoff()
	spill(seen)
	return jittered
}

// backoff reads the wall clock and the global RNG one static hop from the
// root.
func backoff() int64 {
	base := time.Now().UnixNano()
	return base + rand.Int63n(1000)
}

// spill iterates a map into a slice (order-sensitive) and spawns a
// goroutine, both under hot taint.
func spill(seen map[int]int) {
	var order []int
	for k := range seen {
		order = append(order, k)
	}
	go func() { _ = order }()
}
