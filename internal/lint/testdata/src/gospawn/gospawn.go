// Package gospawn spawns a goroutine inside sim-scheduled code, making
// event interleaving depend on the Go scheduler.
package gospawn

import "dctcpplus/internal/sim"

// Fire runs fn concurrently with the event loop.
func Fire(s *sim.Scheduler, fn func()) {
	go fn()
	_ = s
}
