// Package directive carries a reason-less allow directive: the allowlist
// policy requires every exception to document why it exists.
package directive

//lint:allow floateq
func helper() int { return 0 }
