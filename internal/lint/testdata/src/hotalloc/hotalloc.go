// Package hotalloc allocates on an annotated hot path, both in the root
// itself and in functions it reaches statically and through an interface.
package hotalloc

import "fmt"

// Event is a reused record; filling it must not allocate.
type Event struct {
	seq  int
	note string
}

// Sink consumes events; Process is reached from the hot root through the
// interface, so every implementation inherits the budget.
type Sink interface {
	Process(e *Event)
}

// Logger is the only Sink implementation in the fixture.
type Logger struct {
	lines []string
}

// Process concatenates into a fresh string — two findings deep inside an
// interface-expanded callee.
func (l *Logger) Process(e *Event) {
	l.lines = append(l.lines, "seq "+e.note)
}

// Handle is the per-event root: every construct below is charged against
// the zero-allocation budget.
//
//hot:path
func Handle(s Sink, e *Event) {
	buf := make([]byte, 64)
	_ = buf
	fresh := new(Event)
	_ = fresh
	esc := &Event{seq: e.seq}
	_ = esc
	pair := []int{e.seq, e.seq + 1}
	_ = pair
	cb := func() int { return e.seq }
	_ = cb
	defer release(e)
	e.note = fmt.Sprintf("event %d", e.seq)
	box(e.seq)
	s.Process(e)
	stage(e)
}

// stage is hot only by reachability from Handle.
func stage(e *Event) {
	//lint:allow hotalloc scratch table is rebuilt once per drain, amortized across the burst
	scratch := make([]int, 0, 4)
	_ = scratch
	grow(e)
}

// grow is two static hops from the root; the append is still charged.
func grow(e *Event) {
	seen := []int{}
	seen = append(seen, e.seq)
	_ = seen
}

// box takes any, so a non-pointer argument is boxed at the call site above.
func box(v any) { _ = v }

// release pairs with the defer in Handle; its own body is clean.
func release(e *Event) { e.seq = 0 }

// Cold is not reachable from any root: the same constructs pass unflagged.
func Cold() []int {
	out := make([]int, 0, 8)
	return append(out, 1)
}
