// Package staleallow carries a well-formed, justified //lint:allow that
// no longer suppresses anything — the shape -stale-allow exists to catch.
// The default run ignores it (empty golden); cmd/simlint's tests assert
// the -stale-allow mode reports it and flips the exit status.
package staleallow

// Answer is benign; the directive beside it has outlived whatever finding
// once justified it.
//
//lint:allow floateq the comparison this excused was rewritten long ago
func Answer() int { return 42 }
