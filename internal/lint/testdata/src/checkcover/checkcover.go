// Package checkcover exercises the checkcover analyzer: an anonymous
// assertion on a contracted field, an assertion drifted away from the
// contract it should enforce, and a contract left with neither proof nor
// runtime coverage.
package checkcover

import "dctcpplus/internal/check"

// Meter has contracted floors its writers cannot prove statically.
type Meter struct {
	//inv: depth >= 1
	depth int
	//inv: ratio >= 1
	ratio float64
}

// Deepen's assertion discharges the contract but is anonymous: a runtime
// violation would not name the invariant it guards.
func (m *Meter) Deepen(d int) {
	m.depth = d
	check.AtLeast("", float64(m.depth), 1)
}

// Rescale's assertion drifted: it asserts a floor of 0 while the contract
// declares a floor of 1, so the contract is not what runs. The atom is
// then covered nowhere in the package, and the unproven write surfaces
// through rangeproof too.
func (m *Meter) Rescale(r float64) {
	m.ratio = r
	check.AtLeast("meter.ratio", m.ratio, 0)
}
