// Package telemetry mimics the instrument layer with a method that touches
// its receiver without the nil-guard idiom.
package telemetry

// Counter is a nominally nil-safe cumulative metric.
type Counter struct{ v int64 }

// Add increments the counter but forgets the nil guard.
func (c *Counter) Add(d int64) {
	c.v += d
}

// Value reads the counter with the idiom intact.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}
