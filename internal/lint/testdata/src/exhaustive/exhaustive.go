// Package exhaustive switches over a declared state type with gaps: one
// switch misses a state outright, another hides the miss behind a silent
// default.
package exhaustive

// Phase is the fixture's three-state machine.
type Phase int

// The declared phases.
const (
	PhaseIdle Phase = iota
	PhaseActive
	PhaseDraining
)

// Flags is a bitmask set: exempt from exhaustiveness, flags are masked,
// not enumerated.
type Flags uint8

// The declared flag bits.
const (
	FlagUrgent Flags = 1 << iota
	FlagRetransmit
)

// Missing omits PhaseDraining with no default at all.
func Missing(p Phase) int {
	switch p {
	case PhaseIdle:
		return 0
	case PhaseActive:
		return 1
	}
	return -1
}

// Silent covers the miss with a default that falls through quietly — the
// exact drift failure the analyzer exists for.
func Silent(p Phase) int {
	switch p {
	case PhaseIdle:
		return 0
	default:
		return -1
	}
}

// Guarded misses states but dies loudly on them: accepted.
func Guarded(p Phase) int {
	switch p {
	case PhaseIdle, PhaseActive:
		return 0
	default:
		panic("exhaustive: unhandled phase")
	}
}

// Covered lists every constant: accepted without a default.
func Covered(p Phase) int {
	switch p {
	case PhaseIdle:
		return 0
	case PhaseActive:
		return 1
	case PhaseDraining:
		return 2
	}
	return -1
}

// Masked switches over a bitmask type: out of scope by the power-of-two
// exemption.
func Masked(f Flags) bool {
	switch f {
	case FlagUrgent:
		return true
	}
	return false
}
