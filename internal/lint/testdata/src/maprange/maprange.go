// Package maprange iterates a map with an order-sensitive body: the keys
// are collected but never sorted.
package maprange

// Keys copies the keys in whatever order the runtime hands them out.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
