// Package ownclean exercises the legal ownership hand-off chain through
// the real annotated types: packets minted from the pool and released on
// every path via Port/Link/Host transfers, and the scheduler handle and
// timer transitions used as documented. The typestate analyzers must stay
// silent here.
package ownclean

import (
	"dctcpplus/internal/netsim"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

// RoundTrip mints a packet and either hands it to the network (ownership
// leaves with Send) or returns it to the pool.
func RoundTrip(h *netsim.Host, pool *packet.Pool, cond bool) {
	pkt := h.AllocPacket()
	pkt.Flow = 7
	if cond {
		h.Send(pkt)
	} else {
		pool.Put(pkt)
	}
}

// Forward walks a packet through each stage of the Port -> Link -> Host
// chain; every stage takes ownership.
func Forward(port *netsim.Port, link *netsim.Link, host *netsim.Host, pool *packet.Pool) {
	a := pool.Get()
	port.Enqueue(a)
	b := pool.Get()
	link.Propagate(b)
	c := pool.Get()
	host.Deliver(c)
}

// Handles uses the scheduler handle and timer exactly as the contracts
// document: cancel once, reset/stop in declared states.
func Handles(s *sim.Scheduler) {
	e := s.After(3, func() {})
	s.Cancel(e)
	t := sim.NewTimer(s, func() {})
	t.Reset(5)
	t.Stop()
}
