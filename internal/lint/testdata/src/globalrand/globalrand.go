// Package globalrand draws from the process-global math/rand stream, whose
// sequence is pinned by the Go release rather than by this repository.
package globalrand

import "math/rand"

// Roll returns a pseudo-random int.
func Roll() int { return rand.Int() }
