// Package multiroot exercises call-graph provenance deduplication: an
// allocating callee reachable from two //hot:path roots yields one
// diagnostic naming both roots as witnesses, not one diagnostic per root.
package multiroot

// RootA is the first per-packet entry point.
//
//hot:path
func RootA() []int { return shared(1) }

// RootB is the second per-packet entry point.
//
//hot:path
func RootB() []int { return shared(2) }

// shared allocates; the single diagnostic below carries both witnesses.
func shared(n int) []int {
	return make([]int, n)
}
