// Package handlestate exercises the handlestate analyzer: Cancel on a
// possibly-dead handle, reads of dead handles, //state: move transition
// misuse, overwriting an armed handle, and the clear-field-first rule for
// re-arming callbacks.
package handlestate

// H is an Event-shaped handle: armed at mint, dead after fire/cancel,
// recycled afterwards.
//
// state: handle armed -> dead
type H struct{ id int }

// Sched arms and cancels H handles.
type Sched struct{ free *H }

// Arm mints an armed handle for fn.
//
// state: mint
func (s *Sched) Arm(fn func()) *H {
	_ = fn
	return &H{}
}

// Cancel kills a handle.
//
// state: kill h
func (s *Sched) Cancel(h *H) { _ = h }

// CancelDead cancels a handle that already died.
func CancelDead(s *Sched) {
	h := s.Arm(func() {})
	s.Cancel(h)
	s.Cancel(h)
}

// UseDead reads a handle after it was cancelled.
func UseDead(s *Sched) int {
	h := s.Arm(func() {})
	s.Cancel(h)
	return h.id
}

// T is a Timer-shaped handle: disarmed at mint, re-armable.
//
// state: handle disarmed -> armed
type T struct{ on bool }

// NewT mints a disarmed timer.
//
// state: mint
func NewT() *T { return &T{} }

// Start arms: legal only from disarmed.
//
// state: move t disarmed -> armed
func (t *T) Start() {}

// Halt disarms: legal from either state.
//
// state: move t disarmed,armed -> disarmed
func (t *T) Halt() {}

// DoubleStart arms twice without an intervening Halt.
func DoubleStart() {
	t := NewT()
	t.Start()
	t.Start()
}

// HaltFresh is clean: Halt accepts both source states.
func HaltFresh() {
	t := NewT()
	t.Halt()
	t.Start()
}

// OverwriteArmed loses an armed timer by overwriting its variable.
func OverwriteArmed() {
	t := NewT()
	t.Start()
	t = NewT()
	t.Halt()
}

// Owner re-arms a handle field from its callback.
type Owner struct {
	s  *Sched
	ev *H
}

func (o *Owner) tick() {}

// BadRearm arms the field with a callback that does not clear it first.
func (o *Owner) BadRearm() {
	o.ev = o.s.Arm(func() {
		o.tick()
	})
}

// GoodRearm is clean: the callback clears the field as its first
// statement, per the handle contract.
func (o *Owner) GoodRearm() {
	o.ev = o.s.Arm(func() {
		o.ev = nil
		o.tick()
	})
}
