// Package ownxfer exercises the ownxfer analyzer: consuming a borrowed
// parameter, returning a pooled object without a //state: mint contract,
// malformed //state: directives, and interface-contract disagreement.
package ownxfer

// Buf is a pooled object.
//
// state: pooled owned -> freed
type Buf struct{ n int }

// Pool mints and frees Bufs.
type Pool struct{}

// Get mints a caller-owned Buf.
//
// state: mint
func (p *Pool) Get() *Buf { return &Buf{} }

// Put frees a Buf.
//
// state: kill b
func (p *Pool) Put(b *Buf) { _ = b }

// FreeBorrowed consumes a parameter it only borrows: the signature needs
// a //state: xfer (or kill) so callers know ownership moves.
func FreeBorrowed(p *Pool, b *Buf) {
	p.Put(b)
}

// ReturnOwned returns a caller-owned pooled Buf without declaring a mint
// contract.
func ReturnOwned(p *Pool) *Buf {
	b := p.Get()
	return b
}

// BadVerb carries an unknown //state: verb.
//
// state: summon b
func BadVerb(b *Buf) { _ = b }

// BadParam kills a parameter that does not exist.
//
// state: kill zz
func BadParam(b *Buf) { _ = b }

// BadMove names a state the protocol does not declare.
//
// state: move b nowhere -> freed
func BadMove(b *Buf) { _ = b }

// Taker declares an ownership-transferring method.
type Taker interface {
	// Take consumes the buffer.
	//
	//state: xfer b
	Take(b *Buf)
}

// BadTaker implements Taker but its Take declares no disposition, so
// callers through the interface and callers of the concrete type would
// see different ownership contracts.
type BadTaker struct{}

// Take ignores the interface's xfer contract.
func (BadTaker) Take(b *Buf) { _ = b }

// GoodTaker matches the interface contract.
type GoodTaker struct{ slot *Buf }

// Take stores the buffer it now owns.
//
// state: xfer b
// state: sink
func (g *GoodTaker) Take(b *Buf) { g.slot = b }
