// Package clean exercises the deterministic idioms and documented
// exceptions simlint accepts without a diagnostic.
package clean

import (
	"sort"

	"dctcpplus/internal/sim"
)

// Total sums a map's integer values; integer addition commutes exactly.
func Total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// SortedKeys collects then sorts — the canonical deterministic order.
func SortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Double writes each entry under its own range key: every target entry is
// written exactly once, so iteration order cannot matter.
func Double(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v * 2
	}
	return out
}

// Wait keeps durations behind the sim types on the exported boundary.
func Wait(at sim.Time, d sim.Duration) sim.Time { return at.Add(d) }

// Fresh reports whether the accumulator was ever touched; comparison
// against exact zero is exempt.
func Fresh(acc float64) bool { return acc == 0 }

// Exact documents why exact equality is sound here.
func Exact(a, b float64) bool {
	//lint:allow floateq both operands are copies of the same stored sample
	return a == b
}

// Slot is a reusable record in the style of the simulator's pooled packets.
type Slot struct {
	seq  int
	used bool
}

// Ring is a fixed-capacity structure whose hot operations recycle storage.
type Ring struct {
	slots []Slot
	head  int
}

// Take hands out the next slot without allocating: field writes on pooled
// memory, integer arithmetic, and a static call — the whole hot budget.
//
//hot:path
func (r *Ring) Take(seq int) *Slot {
	s := &r.slots[r.head]
	r.head = (r.head + 1) % len(r.slots)
	reset(s)
	s.seq = seq
	return s
}

// reset is hot by reachability and stays allocation-free.
func reset(s *Slot) {
	s.used = false
}
