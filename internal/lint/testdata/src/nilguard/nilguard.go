// Package nilguard nil-tests an instrument instead of trusting the no-op
// contract the telemetry layer provides.
package nilguard

import "dctcpplus/internal/telemetry"

// Bump guards a counter the telemetry contract already guards.
func Bump(c *telemetry.Counter) {
	if c != nil {
		c.Add(1)
	}
}
