// Package broken does not type-check: the loader must surface the checker's
// diagnostic as an error, not panic, and must not hand a half-checked
// package to the analyzers.
package broken

func Mismatch() int {
	var s string = 42
	return s + undefinedIdentifier
}
