package lint

import (
	"go/types"
	"testing"
)

// loadCallgraphFixture loads the dedicated call-graph harness package with
// a fresh loader and returns it.
func loadCallgraphFixture(t *testing.T) *Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("internal/lint/testdata/callgraph")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	return pkgs[0]
}

// lookupFunc resolves a package-level function or a method named
// "Type.Method" from the fixture's scope.
func lookupFunc(t *testing.T, p *Package, name string) *types.Func {
	t.Helper()
	scope := p.Types.Scope()
	if recv, method, ok := splitMethod(name); ok {
		tn, _ := scope.Lookup(recv).(*types.TypeName)
		if tn == nil {
			t.Fatalf("no type %q in fixture", recv)
		}
		named, _ := tn.Type().(*types.Named)
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == method {
				return m
			}
		}
		t.Fatalf("no method %q on %q", method, recv)
	}
	fn, _ := scope.Lookup(name).(*types.Func)
	if fn == nil {
		t.Fatalf("no function %q in fixture", name)
	}
	return fn
}

func splitMethod(name string) (recv, method string, ok bool) {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[:i], name[i+1:], true
		}
	}
	return "", "", false
}

// TestHotReachability pins the closure: static calls and interface calls
// propagate hotness, dynamic function values and detached functions do not.
func TestHotReachability(t *testing.T) {
	p := loadCallgraphFixture(t)
	cases := []struct {
		fn  string
		hot bool
	}{
		{"Encode", true},         // the annotated root itself
		{"normalize", true},      // static hop
		{"die", true},            // called from normalize (terminal, still reachable)
		{"Doubler.Encode", true}, // interface expansion
		{"Halver.Encode", true},  // interface expansion
		{"half", true},           // static hop behind an interface edge
		{"Detached", false},      // never called from a root
		{"Indirect", false},      // only receives cold as a value
		{"cold", false},          // passed as a function value, never called statically
		{"Use", false},           // calls Indirect, but is itself not a root
	}
	for _, c := range cases {
		root, hot := p.Prog.hotReachable(lookupFunc(t, p, c.fn))
		if hot != c.hot {
			t.Errorf("hotReachable(%s) = %v, want %v", c.fn, hot, c.hot)
			continue
		}
		if hot && root.Name() != "Encode" {
			t.Errorf("witness root of %s = %s, want Encode", c.fn, root.FullName())
		}
	}
}

// TestTerminalDetection pins the panic-helper classification.
func TestTerminalDetection(t *testing.T) {
	p := loadCallgraphFixture(t)
	if !p.Prog.isTerminal(lookupFunc(t, p, "die")) {
		t.Error("die ends in panic but is not terminal")
	}
	if p.Prog.isTerminal(lookupFunc(t, p, "normalize")) {
		t.Error("normalize is terminal but returns normally")
	}
}

// TestHotNodesInOrder checks the per-package node listing is filtered to
// hot-reachable functions and sorted by declaration position.
func TestHotNodesInOrder(t *testing.T) {
	p := loadCallgraphFixture(t)
	var names []string
	for _, n := range p.Prog.hotNodesIn(p) {
		names = append(names, n.fn.Name())
	}
	// Declaration order: Doubler.Encode, Halver.Encode, half, the Encode
	// root, normalize, die.
	want := []string{"Encode", "Encode", "half", "Encode", "normalize", "die"}
	if len(names) != len(want) {
		t.Fatalf("hotNodesIn = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("hotNodesIn = %v, want %v", names, want)
		}
	}
}

// TestRootLabel checks the provenance rendering for a root, for a function
// reached by one root, and for a function shared by several roots.
func TestRootLabel(t *testing.T) {
	p := loadCallgraphFixture(t)
	root := lookupFunc(t, p, "Encode")
	if got := rootLabel(root, []*types.Func{root}); got != "(a //hot:path root)" {
		t.Errorf("rootLabel(root, [root]) = %q", got)
	}
	reached := lookupFunc(t, p, "half")
	got := rootLabel(reached, []*types.Func{root})
	if got != "(reachable from //hot:path root dctcpplus/internal/lint/testdata/callgraph.Encode)" {
		t.Errorf("rootLabel(reached, [root]) = %q", got)
	}
	other := lookupFunc(t, p, "Detached")
	got = rootLabel(reached, []*types.Func{root, other})
	want := "(reachable from //hot:path roots dctcpplus/internal/lint/testdata/callgraph.Encode, " +
		"dctcpplus/internal/lint/testdata/callgraph.Detached)"
	if got != want {
		t.Errorf("rootLabel(reached, [root, other]) = %q, want %q", got, want)
	}
}
