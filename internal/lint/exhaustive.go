package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive returns the analyzer that pins state-machine discipline: every
// switch over a module-declared enum type (the core three-state machine,
// the sender's loss-recovery states, ECN modes, marking policies) must
// either list every declared constant of that type or carry a default
// clause that panics. A silent fall-through on a missed state is exactly
// the implementation-drift failure mode the DCTCP literature warns about —
// the protocol keeps running with "no apparent pattern" in its behavior.
//
// A type qualifies as an enum when it is a named, basic-integer type
// declared in this module with at least two package-level constants.
// Bitmask flag sets — every constant a distinct nonzero power of two, like
// packet.Flags — are exempt: flags are tested by masking, not switched over
// state by state. Type switches and tagless switches are out of scope.
func Exhaustive() *Analyzer {
	return &Analyzer{
		Name: "exhaustive",
		Doc:  "require switches over module enum types to cover every constant or panic in default",
		Run:  runExhaustive,
	}
}

func runExhaustive(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			sw, ok := node.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			out = append(out, p.checkSwitch(sw)...)
			return true
		})
	}
	return out
}

// checkSwitch validates one tagged switch if its tag is an enum type.
func (p *Package) checkSwitch(sw *ast.SwitchStmt) []Diagnostic {
	t := p.Info.TypeOf(sw.Tag)
	if t == nil {
		return nil
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	consts := p.enumConstants(named)
	if consts == nil {
		return nil
	}

	covered := make(map[string]bool)
	var defaultClause *ast.CaseClause
	for _, stmt := range sw.Body.List {
		cc := stmt.(*ast.CaseClause)
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
				covered[tv.Value.ExactString()] = true
			}
		}
	}

	var missing []string
	for _, c := range consts {
		if !covered[c.Val().ExactString()] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if defaultClause != nil && p.clausePanics(defaultClause) {
		return nil
	}
	sort.Strings(missing)
	verb := "add the missing cases or a panicking default"
	if defaultClause != nil {
		verb = "the default falls through silently; cover the cases or make it panic"
	}
	return []Diagnostic{p.diag("exhaustive", sw.Pos(),
		"switch over %s misses %s: %s",
		named.Obj().Name(), strings.Join(missing, ", "), verb)}
}

// enumConstants returns the package-level constants of the named type when
// it qualifies as a module enum, or nil.
func (p *Package) enumConstants(named *types.Named) []*types.Const {
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return nil
	}
	if pkgPath := obj.Pkg().Path(); pkgPath != p.ModPath && !strings.HasPrefix(pkgPath, p.ModPath+"/") {
		return nil // stdlib and foreign enums (token.Token, ...) are out of scope
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil
	}
	var consts []*types.Const
	scope := obj.Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if ok && types.Identical(c.Type(), named) {
			consts = append(consts, c)
		}
	}
	if len(consts) < 2 {
		return nil
	}
	if isBitmask(consts) {
		return nil
	}
	return consts
}

// isBitmask reports whether every constant is a distinct nonzero power of
// two — a flag set, combined by OR and tested by masking rather than
// switched over.
func isBitmask(consts []*types.Const) bool {
	seen := make(map[uint64]bool)
	for _, c := range consts {
		v, ok := constant.Uint64Val(c.Val())
		if !ok || v == 0 || v&(v-1) != 0 || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// clausePanics reports whether a case clause's body unconditionally dies:
// one of its statements is a panic(...) or a call to a terminal function
// (check.Failf style).
func (p *Package) clausePanics(cc *ast.CaseClause) bool {
	for _, stmt := range cc.Body {
		expr, ok := stmt.(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := expr.X.(*ast.CallExpr)
		if !ok {
			continue
		}
		if id, ok := unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "panic" {
				return true
			}
		}
		if callee, _ := p.calleeOf(call); callee != nil && p.Prog != nil && p.Prog.isTerminal(callee) {
			return true
		}
	}
	return false
}
