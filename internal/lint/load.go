package lint

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked package under analysis: its parsed files
// (non-test sources only — simlint analyzes shipping code), the shared
// FileSet, and full go/types information.
type Package struct {
	ImportPath string
	ModPath    string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	// Prog is the whole-module call graph shared by every package loaded by
	// the same Loader; the reachability-based analyzers query it.
	Prog *Program
}

// Loader resolves and type-checks packages using only the standard
// library: imports inside the module map onto directories under the module
// root, everything else resolves from GOROOT source (including the GOROOT
// vendor tree). Both kinds are parsed with go/parser and checked with
// go/types, so the whole pass needs neither export data nor the go tool.
type Loader struct {
	fset    *token.FileSet
	ctx     build.Context
	modPath string
	modRoot string
	prog    *Program

	pkgs     map[string]*Package       // fully analyzed module packages
	imported map[string]*types.Package // every type-checked package, by path
	loading  map[string]bool           // import-cycle guard
}

var moduleLineRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// NewLoader locates the enclosing module starting from dir (walking up to
// the go.mod) and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	m := moduleLineRE.FindSubmatch(data)
	if m == nil {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	ctx := build.Default
	// The simulator is pure Go; disabling cgo selects the pure-Go variants
	// of any stdlib package that has them, keeping source type-checking
	// self-contained.
	ctx.CgoEnabled = false
	return &Loader{
		fset:     token.NewFileSet(),
		ctx:      ctx,
		modPath:  string(m[1]),
		modRoot:  root,
		prog:     newProgram(string(m[1])),
		pkgs:     make(map[string]*Package),
		imported: make(map[string]*types.Package),
		loading:  make(map[string]bool),
	}, nil
}

// ModuleRoot returns the directory containing the module's go.mod.
func (l *Loader) ModuleRoot() string { return l.modRoot }

// Load resolves the given patterns ("./...", "./internal/tcp", a plain
// directory) relative to the module root and returns the matched packages,
// type-checked and sorted by import path. Directories named testdata are
// never matched by "./..." — they hold lint fixtures with intentional
// violations.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, dir := range dirs {
		p, err := l.loadDir(dir)
		if err != nil {
			if isNoGo(err) {
				continue
			}
			return nil, err
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out, nil
}

func isNoGo(err error) bool {
	var noGo *build.NoGoError
	return errors.As(err, &noGo)
}

// expand turns patterns into a sorted list of candidate directories.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			err := filepath.WalkDir(l.modRoot, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != l.modRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(l.modRoot, strings.TrimSuffix(pat, "/..."))
			err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
					return filepath.SkipDir
				}
				add(path)
				return nil
			})
			if err != nil {
				return nil, err
			}
		default:
			if filepath.IsAbs(pat) {
				add(filepath.Clean(pat))
			} else {
				add(filepath.Join(l.modRoot, pat))
			}
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// importPathFor maps a directory under the module root to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.modRoot)
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// loadDir type-checks the package in dir with full syntax and info.
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	p := &Package{
		ImportPath: path,
		ModPath:    l.modPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Prog:       l.prog,
	}
	l.pkgs[path] = p
	l.imported[path] = tpkg
	l.prog.add(p)
	return p, nil
}

// importPkg resolves one import for the type checker: module-internal
// packages get the full loadDir treatment (so they are analyzable too),
// everything else type-checks from GOROOT source without retaining syntax.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if tp, ok := l.imported[path]; ok {
		return tp, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		sub := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		p, err := l.loadDir(filepath.Join(l.modRoot, filepath.FromSlash(sub)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	dir, err := l.gorootDir(path)
	if err != nil {
		return nil, err
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("lint: import %q: %w", path, err)
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: importerFunc(l.importPkg), FakeImportC: true}
	// GOROOT sources are trusted: tolerate individual type errors (some
	// runtime-internal constructs do not re-check cleanly from source) as
	// long as a usable package object comes back.
	conf.Error = func(error) {}
	tp, err := conf.Check(path, l.fset, files, nil)
	if tp == nil {
		return nil, fmt.Errorf("lint: typecheck %q: %w", path, err)
	}
	tp.MarkComplete()
	l.imported[path] = tp
	return tp, nil
}

// gorootDir resolves a non-module import path under GOROOT/src, falling
// back to the GOROOT vendor tree (net/http style vendored deps).
func (l *Loader) gorootDir(path string) (string, error) {
	goroot := runtime.GOROOT()
	for _, dir := range []string{
		filepath.Join(goroot, "src", filepath.FromSlash(path)),
		filepath.Join(goroot, "src", "vendor", filepath.FromSlash(path)),
	} {
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("lint: cannot resolve import %q (not in module %s or GOROOT)", path, l.modPath)
}

// importerFunc adapts a function to the types.Importer interface.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
