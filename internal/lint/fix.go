package lint

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strconv"
)

// TextEdit is one byte-range replacement in a source file. Start and End
// are byte offsets into the file's current contents; Start == End inserts.
type TextEdit struct {
	File    string `json:"file"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	NewText string `json:"newText"`
}

// SuggestedFix is a machine-applicable rewrite attached to a diagnostic.
// All edits of one fix apply together; simlint -fix applies every fix of
// every surviving diagnostic in one pass.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// ApplyFixes collects the fixes attached to diags and applies them,
// returning the rewritten contents per file (files without fixes are
// absent). Identical edits — e.g. two diagnostics on sibling fields that
// both rewrite the shared type expression, or two fixes inserting the same
// import — collapse to one; genuinely conflicting edits are an error, and
// nothing is written to disk by this function.
//
// Conflicts between fixes of *different* analyzers get their own refusal:
// each analyzer's rewrite is correct only against the source it inspected,
// so composing two overlapping rewrites could produce code neither analyzer
// would bless. The error names both analyzers so the operator can re-run
// -fix with one of them (or apply one fix by hand) and lint again.
func ApplyFixes(diags []Diagnostic) (map[string][]byte, error) {
	perFile := make(map[string][]ownedEdit)
	for _, d := range diags {
		if d.Fix == nil {
			continue
		}
		for _, e := range d.Fix.Edits {
			perFile[e.File] = append(perFile[e.File], ownedEdit{edit: e, analyzer: d.Analyzer})
		}
	}
	files := make([]string, 0, len(perFile))
	for file := range perFile {
		files = append(files, file)
	}
	sort.Strings(files) // deterministic application (and error) order
	out := make(map[string][]byte)
	for _, file := range files {
		owned := perFile[file]
		if err := checkCrossAnalyzer(owned); err != nil {
			return nil, fmt.Errorf("%s: %w", file, err)
		}
		edits := make([]TextEdit, len(owned))
		for i, oe := range owned {
			edits[i] = oe.edit
		}
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		fixed, err := applyEdits(src, edits)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", file, err)
		}
		out[file] = fixed
	}
	return out, nil
}

// ownedEdit is a TextEdit tagged with the analyzer whose fix proposed it,
// so cross-analyzer conflicts can name both parties.
type ownedEdit struct {
	edit     TextEdit
	analyzer string
}

// checkCrossAnalyzer refuses edit sets in which fixes from two different
// analyzers touch overlapping byte ranges of one file. Identical edits
// (same range, same replacement) are fine whoever proposed them — they
// collapse to one application — but distinct overlapping rewrites from
// different analyzers are never composed: each was computed against the
// original source, and stacking them yields text neither analyzer checked.
// Same-analyzer conflicts fall through to applyEdits' generic refusal.
func checkCrossAnalyzer(owned []ownedEdit) error {
	sorted := make([]ownedEdit, len(owned))
	copy(sorted, owned)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i].edit, sorted[j].edit
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.End != b.End {
			return a.End < b.End
		}
		return a.NewText < b.NewText
	})
	for i := 1; i < len(sorted); i++ {
		prev, cur := sorted[i-1], sorted[i]
		if prev.analyzer == cur.analyzer {
			continue
		}
		if prev.edit == cur.edit {
			continue // identical edit: collapses to one, no conflict
		}
		samePoint := prev.edit.Start == cur.edit.Start && prev.edit.End == cur.edit.End
		if prev.edit.End > cur.edit.Start || samePoint {
			return fmt.Errorf(
				"fixes from analyzers %q and %q overlap (offsets [%d,%d) and [%d,%d)); refusing to apply either — run simlint -fix restricted to one analyzer, or apply one fix by hand and lint again",
				prev.analyzer, cur.analyzer,
				prev.edit.Start, prev.edit.End, cur.edit.Start, cur.edit.End)
		}
	}
	return nil
}

// applyEdits sorts, dedupes, overlap-checks and applies edits to src.
func applyEdits(src []byte, edits []TextEdit) ([]byte, error) {
	sort.Slice(edits, func(i, j int) bool {
		if edits[i].Start != edits[j].Start {
			return edits[i].Start < edits[j].Start
		}
		if edits[i].End != edits[j].End {
			return edits[i].End < edits[j].End
		}
		return edits[i].NewText < edits[j].NewText
	})
	deduped := edits[:0]
	for i, e := range edits {
		if i > 0 && e == edits[i-1] {
			continue
		}
		deduped = append(deduped, e)
	}
	edits = deduped
	for i, e := range edits {
		if e.Start < 0 || e.End < e.Start || e.End > len(src) {
			return nil, fmt.Errorf("edit [%d,%d) out of range (file is %d bytes)", e.Start, e.End, len(src))
		}
		if i > 0 && edits[i-1].End > e.Start {
			return nil, fmt.Errorf("conflicting edits at offsets %d and %d", edits[i-1].Start, e.Start)
		}
		if i > 0 && edits[i-1].Start == e.Start && edits[i-1].End == e.End {
			return nil, fmt.Errorf("conflicting rewrites of offsets [%d,%d)", e.Start, e.End)
		}
	}
	for i := len(edits) - 1; i >= 0; i-- {
		e := edits[i]
		src = append(src[:e.Start], append([]byte(e.NewText), src[e.End:]...)...)
	}
	return src, nil
}

// fileAt returns the AST file containing pos.
func (p *Package) fileAt(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.Pos() <= pos && pos < f.End() {
			return f
		}
	}
	return nil
}

// simQualifier returns the local name under which the file containing pos
// imports the sim package ("sim" unless renamed), or ok=false when that
// file does not import it — no fix is offered then, because inventing an
// import for a package the file never touches is beyond a lint's warrant.
func (p *Package) simQualifier(pos token.Pos) (string, bool) {
	f := p.fileAt(pos)
	if f == nil {
		return "", false
	}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != simPkgPath {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "_" || imp.Name.Name == "." {
				return "", false
			}
			return imp.Name.Name, true
		}
		return "sim", true
	}
	return "", false
}

// durationFix rewrites a literal int64 type expression to sim.Duration.
// float64 carriers are left alone — scaling a float nanosecond count into
// an integer Duration changes semantics, which is a human's call.
func (p *Package) durationFix(typeExpr ast.Expr, t types.Type) *SuggestedFix {
	b, ok := t.(*types.Basic)
	if !ok || b.Kind() != types.Int64 {
		return nil
	}
	id, ok := typeExpr.(*ast.Ident)
	if !ok || id.Name != "int64" {
		return nil
	}
	qual, ok := p.simQualifier(typeExpr.Pos())
	if !ok {
		return nil
	}
	start := p.Fset.Position(typeExpr.Pos())
	end := p.Fset.Position(typeExpr.End())
	return &SuggestedFix{
		Message: "declare the value as " + qual + ".Duration",
		Edits: []TextEdit{{
			File:    start.Filename,
			Start:   start.Offset,
			End:     end.Offset,
			NewText: qual + ".Duration",
		}},
	}
}

// floatEqEpsilon is the tolerance the floateq autofix rewrites to. The
// simulator's float quantities are O(1) rates and fractions, for which an
// absolute 1e-9 is far below any meaningful difference.
const floatEqEpsilon = "1e-9"

// floatEqFix rewrites x == y to math.Abs(x-y) <= 1e-9 (and != to >),
// inserting a "math" import when the file lacks one.
func (p *Package) floatEqFix(be *ast.BinaryExpr) *SuggestedFix {
	f := p.fileAt(be.Pos())
	if f == nil {
		return nil
	}
	x := p.renderOperand(be.X)
	y := p.renderOperand(be.Y)
	if x == "" || y == "" {
		return nil
	}
	cmp := "<="
	if be.Op == token.NEQ {
		cmp = ">"
	}
	start := p.Fset.Position(be.Pos())
	end := p.Fset.Position(be.End())
	fix := &SuggestedFix{
		Message: "compare with an absolute tolerance of " + floatEqEpsilon,
		Edits: []TextEdit{{
			File:    start.Filename,
			Start:   start.Offset,
			End:     end.Offset,
			NewText: "math.Abs(" + x + "-" + y + ") " + cmp + " " + floatEqEpsilon,
		}},
	}
	if imp := p.importEdit(f, "math"); imp != nil {
		fix.Edits = append(fix.Edits, *imp)
	}
	return fix
}

// renderOperand prints one comparison operand back to source, wrapping
// binary expressions in parentheses so the subtraction binds correctly.
func (p *Package) renderOperand(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, p.Fset, e); err != nil {
		return ""
	}
	if _, ok := e.(*ast.BinaryExpr); ok {
		return "(" + buf.String() + ")"
	}
	return buf.String()
}

// importEdit builds the insertion that adds an import of path to f, or nil
// when the file already imports it. Grouped imports get a sorted entry;
// a single ungrouped import gets a sibling line; a file with no imports
// gets a new import statement after the package clause.
func (p *Package) importEdit(f *ast.File, path string) *TextEdit {
	for _, imp := range f.Imports {
		if got, err := strconv.Unquote(imp.Path.Value); err == nil && got == path {
			return nil
		}
	}
	quoted := strconv.Quote(path)
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() {
			for _, spec := range gd.Specs {
				is := spec.(*ast.ImportSpec)
				if is.Path.Value > quoted {
					pos := p.Fset.Position(spec.Pos())
					return &TextEdit{File: pos.Filename, Start: pos.Offset, End: pos.Offset,
						NewText: quoted + "\n\t"}
				}
			}
			pos := p.Fset.Position(gd.Rparen)
			return &TextEdit{File: pos.Filename, Start: pos.Offset, End: pos.Offset,
				NewText: "\t" + quoted + "\n"}
		}
		pos := p.Fset.Position(gd.End())
		return &TextEdit{File: pos.Filename, Start: pos.Offset, End: pos.Offset,
			NewText: "\nimport " + quoted}
	}
	pos := p.Fset.Position(f.Name.End())
	return &TextEdit{File: pos.Filename, Start: pos.Offset, End: pos.Offset,
		NewText: "\n\nimport " + quoted}
}
