package lint

import (
	"go/token"
	"strings"
	"testing"
)

func TestParseInvValid(t *testing.T) {
	cases := []struct {
		src     string
		clauses int
	}{
		{"x >= 0", 1},
		{"0 <= x", 1},
		{"0 <= alpha && alpha <= 1", 2},
		{"0 <= alpha <= 1", 2}, // chained form, same meaning
		{"g > 0 && g <= 1", 2},
		{"qBytes <= cfg.BufferBytes", 1},
		{"1 <= a <= b <= 100", 3},
		{"x >= -2.5e3", 1},
		{"return >= 1", 1},
	}
	for _, c := range cases {
		got, err := parseInv(c.src)
		if err != nil {
			t.Errorf("parseInv(%q): %v", c.src, err)
			continue
		}
		if len(got) != c.clauses {
			t.Errorf("parseInv(%q) = %d clauses, want %d", c.src, len(got), c.clauses)
		}
	}
}

func TestParseInvClauseShape(t *testing.T) {
	cl, err := parseInv("0 <= qBytes <= cfg.BufferBytes")
	if err != nil {
		t.Fatal(err)
	}
	if len(cl) != 2 {
		t.Fatalf("got %d clauses, want 2", len(cl))
	}
	if !cl[0].lhs.isNum || cl[0].lhs.num != 0 || cl[0].op != token.LEQ {
		t.Errorf("first clause = %+v, want 0 <= qBytes", cl[0])
	}
	if strings.Join(cl[1].rhs.path, ".") != "cfg.BufferBytes" {
		t.Errorf("second clause rhs path = %v, want cfg.BufferBytes", cl[1].rhs.path)
	}
	if cl[1].src != "qBytes <= cfg.BufferBytes" {
		t.Errorf("second clause src = %q", cl[1].src)
	}
}

func TestParseInvErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string // substring of the error
	}{
		{"", "empty contract"},
		{"   ", "empty contract"},
		{"x", "operand without a comparison"},
		{"x <", "expected a number or identifier"},
		{"<= 1", "expected a number or identifier"},
		{"x == 1", "'==' and '=' are not contract operators"},
		{"x = 1", "'==' and '=' are not contract operators"},
		{"x >= 1 & y >= 2", "single '&'"},
		{"0 <= x >= 1", "mixed comparison directions"},
		{"x >= 1 y >= 2", `want "&&" or end of contract`},
		{"x ? 1", "unexpected character"},
		{"x. <= 1", "expected identifier after '.'"},
		{"x >= 1e999e", "bad numeric literal"},
	}
	for _, c := range cases {
		_, err := parseInv(c.src)
		if err == nil {
			t.Errorf("parseInv(%q) succeeded, want error containing %q", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("parseInv(%q) = %q, want substring %q", c.src, err, c.want)
		}
		ie, ok := err.(*invError)
		if !ok {
			t.Errorf("parseInv(%q) error type %T, want *invError", c.src, err)
			continue
		}
		if ie.off < 0 || ie.off > len(c.src) {
			t.Errorf("parseInv(%q) error offset %d outside [0, %d]", c.src, ie.off, len(c.src))
		}
	}
}

// FuzzParseInv asserts the grammar's two safety properties over arbitrary
// payloads: the parser never panics, and every rejection carries a byte
// offset inside the input (so the collector can point at the offending
// column of the annotation).
func FuzzParseInv(f *testing.F) {
	for _, seed := range []string{
		"0 <= alpha && alpha <= 1",
		"qBytes <= cfg.BufferBytes",
		"g > 0 && g <= 1",
		"x >= -1.5e-3",
		"1 <= a <= b <= 100",
		"x == 1",
		"x < ",
		"&&",
		"..",
		"x\x00y",
		"\xff\xfe",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		clauses, err := parseInv(s)
		if err == nil {
			if len(clauses) == 0 {
				t.Errorf("parseInv(%q) accepted with zero clauses", s)
			}
			return
		}
		ie, ok := err.(*invError)
		if !ok {
			t.Errorf("parseInv(%q) error type %T, want *invError", s, err)
			return
		}
		if ie.off < 0 || ie.off > len(s) {
			t.Errorf("parseInv(%q) error offset %d outside [0, %d]", s, ie.off, len(s))
		}
	})
}
