package lint

// OwnXfer enforces ownership-transfer hygiene on //state: signatures —
// the contracts themselves rather than any single flow. On top of the
// shared typestate interpreter (typestate.go) it reports:
//
//   - a function that consumes (kills or transfers) a parameter it only
//     borrows: the parameter must carry an explicit //state: kill or
//     //state: xfer so every caller knows ownership moves,
//   - a function that returns a caller-owned pooled object without a
//     //state: mint contract on its declaration,
//   - malformed //state: directives (unknown verbs, unknown states,
//     names that match no parameter, protocols over the state-count cap),
//   - interface-contract consistency: an implementation of an annotated
//     interface method must declare the same parameter dispositions as
//     the interface, so callers through the interface and callers of the
//     concrete type see one contract.
func OwnXfer() *Analyzer {
	return &Analyzer{
		Name: "ownxfer",
		Doc:  "ownership-transfer contracts: consuming borrowed parameters, unannotated pooled returns, malformed //state: directives",
		Run: func(p *Package) []Diagnostic {
			return typestateFindings(p, "ownxfer")
		},
	}
}
