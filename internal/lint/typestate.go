package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file implements the typestate engine behind the poollife,
// handlestate and ownxfer analyzers: a //state: annotation grammar that
// declares object protocols (named states plus function/method
// transitions), and a path-sensitive abstract interpreter that tracks the
// per-variable state set through assignments, branches, loops and calls.
//
// Grammar. A type's doc comment declares a protocol:
//
//	//state: pooled <state> [-> <state>]...
//	//state: handle <state> [-> <state>]...
//
// The first state is the one mint functions produce by default; a state
// literally named "freed" or "dead" is terminal. "pooled" protocols carry
// an exactly-once release obligation (every path from a mint must free or
// transfer exactly once); "handle" protocols only constrain transitions
// and dead-handle use — a discarded handle is not a leak.
//
// A function or interface-method doc comment declares transitions:
//
//	//state: mint [<state>]     result is a caller-owned protocol value
//	//state: kill <param>       the call consumes (frees) the argument
//	//state: xfer <param>       ownership transfers to the callee
//	//state: move <param> <from>[,<from>]... -> <to>
//	//state: sink               field stores in this function release
//	                            ownership (the Port ring slots)
//
// kill and xfer may target any-typed parameters (the scheduler's arg
// carriers); move needs a protocol-typed parameter so its state names can
// resolve. Malformed directives are reported by ownxfer.
//
// Abstraction and soundness caveats (see DESIGN.md):
//
//   - Tracking is per local variable, seeded by mint-call results, &T{}
//     composites of pooled protocol types, and protocol-typed parameters
//     (xfer parameters are owned, unannotated ones borrowed). Struct
//     fields are not tracked: a field store forgets a handle and is an
//     ownership transfer for pooled values only inside //state: sink
//     functions — anywhere else it is reported as an unsanctioned escape.
//   - Aliasing uses strong updates only: 'y := x' moves the tracking to y
//     and forgets x.
//   - Branches join by state-set union, so "freed on some path" findings
//     are path-sensitive may-analysis. Loops iterate to a fixed point
//     over the finite state lattice (bounded widening).
//   - A variable captured by a function literal is forgotten; literal
//     bodies are analyzed separately with borrowed parameters.
//   - Defers apply their effects at the defer statement, not at exit.
//   - goto abandons the function (no findings past the first goto).

// protocol is one //state:-declared object protocol on a named type.
type protocol struct {
	name   string // the type name, e.g. "Packet"
	kind   string // "pooled" or "handle"
	named  *types.Named
	states []string
	pos    token.Pos
}

// xferBit marks a value whose ownership left through a //state: xfer call;
// protocols are capped well below it.
const xferBit uint32 = 1 << 30

// maxProtoStates caps declared states so bit arithmetic stays clear of
// xferBit.
const maxProtoStates = 16

func (pr *protocol) bit(i int) uint32 { return 1 << uint(i) }

func (pr *protocol) allMask() uint32 { return 1<<uint(len(pr.states)) - 1 }

// deadMask returns the bits of terminal states (named "freed" or "dead").
func (pr *protocol) deadMask() uint32 {
	var m uint32
	for i, s := range pr.states {
		if s == "freed" || s == "dead" {
			m |= pr.bit(i)
		}
	}
	return m
}

func (pr *protocol) liveMask() uint32 { return pr.allMask() &^ pr.deadMask() }

// goneMask is the set of bits after which a value must not be used: the
// terminal states plus transferred-away.
func (pr *protocol) goneMask() uint32 { return pr.deadMask() | xferBit }

func (pr *protocol) stateIndex(name string) int {
	for i, s := range pr.states {
		if s == name {
			return i
		}
	}
	return -1
}

// setString renders a state mask for diagnostics ("freed", "armed|dead").
func (pr *protocol) setString(mask uint32) string {
	var parts []string
	for i, s := range pr.states {
		if mask&pr.bit(i) != 0 {
			parts = append(parts, s)
		}
	}
	if mask&xferBit != 0 {
		parts = append(parts, "transferred")
	}
	if len(parts) == 0 {
		return "(none)"
	}
	return strings.Join(parts, "|")
}

// dispKind classifies what a call does to one argument.
type dispKind int

const (
	dispNone dispKind = iota
	dispKill
	dispXfer
	dispMove
)

// paramDisp is the declared disposition of one parameter (or receiver).
type paramDisp struct {
	kind dispKind
	from uint32 // move: accepted source states
	to   uint32 // move: resulting state
}

// funcStateAnn is the parsed //state: contract of one function or
// interface method.
type funcStateAnn struct {
	mint      bool
	mintState uint32
	mintProto *protocol
	recv      paramDisp
	params    map[int]paramDisp
	sink      bool
}

// annotated reports whether the contract carries any transition at all.
func (a *funcStateAnn) annotated() bool {
	if a == nil {
		return false
	}
	return a.mint || a.sink || a.recv.kind != dispNone || len(a.params) > 0
}

// stateTable holds every parsed protocol and function contract in the
// module, plus the malformed-directive findings (attributed to the
// declaring package and reported by ownxfer).
type stateTable struct {
	protos map[*types.Named]*protocol
	funcs  map[*types.Func]*funcStateAnn
	errs   map[*Package][]Diagnostic
}

// typestates returns the module's //state: table, building it on first
// use (cached on the Program, invalidated with the call graph).
func (prog *Program) typestates() *stateTable {
	prog.build()
	if prog.stateTable != nil {
		return prog.stateTable
	}
	t := &stateTable{
		protos: make(map[*types.Named]*protocol),
		funcs:  make(map[*types.Func]*funcStateAnn),
		errs:   make(map[*Package][]Diagnostic),
	}
	// Pass 1: protocols, so function contracts can resolve state names.
	for _, p := range prog.pkgs {
		t.collectProtocols(p)
	}
	// Pass 2: function and interface-method contracts.
	for _, p := range prog.pkgs {
		t.collectFuncs(p)
	}
	prog.stateTable = t
	return t
}

// stateLines extracts the //state: directive lines from a doc comment.
// Both "//state:" and "// state:" match: gofmt's doc-comment printer
// inserts the space (the colon is followed by a space, so the line does
// not parse as a compiler directive), and an annotation must not stop
// binding because the file was formatted.
func stateLines(doc *ast.CommentGroup) []*ast.Comment {
	if doc == nil {
		return nil
	}
	var out []*ast.Comment
	for _, c := range doc.List {
		if _, ok := statePayload(c); ok {
			out = append(out, c)
		}
	}
	return out
}

// statePayload returns the text after the //state: marker, in either its
// raw or gofmt-normalized spelling.
func statePayload(c *ast.Comment) (string, bool) {
	if rest, ok := strings.CutPrefix(c.Text, "//state:"); ok {
		return rest, true
	}
	if rest, ok := strings.CutPrefix(c.Text, "// state:"); ok {
		return rest, true
	}
	return "", false
}

func (t *stateTable) errf(p *Package, pos token.Pos, format string, args ...any) {
	t.errs[p] = append(t.errs[p], p.diag("ownxfer", pos, format, args...))
}

// collectProtocols parses type-level //state: declarations in p.
func (t *stateTable) collectProtocols(p *Package) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				for _, c := range stateLines(doc) {
					t.addProtocol(p, ts, c)
				}
			}
		}
	}
}

func (t *stateTable) addProtocol(p *Package, ts *ast.TypeSpec, c *ast.Comment) {
	payload, _ := statePayload(c)
	fields := strings.Fields(payload)
	if len(fields) == 0 {
		t.errf(p, c.Pos(), "malformed //state: directive: empty")
		return
	}
	kind := fields[0]
	if kind != "pooled" && kind != "handle" {
		t.errf(p, c.Pos(), "malformed //state: directive on type %s: want 'pooled' or 'handle', got %q", ts.Name.Name, kind)
		return
	}
	states, ok := parseStateChain(strings.Join(fields[1:], " "))
	if !ok || len(states) == 0 {
		t.errf(p, c.Pos(), "malformed //state: directive on type %s: want '//state: %s <state> [-> <state>]...'", ts.Name.Name, kind)
		return
	}
	if len(states) > maxProtoStates {
		t.errf(p, c.Pos(), "//state: protocol on type %s declares %d states (max %d)", ts.Name.Name, len(states), maxProtoStates)
		return
	}
	tn, ok := p.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		t.errf(p, c.Pos(), "//state: protocol on %s: not a named type", ts.Name.Name)
		return
	}
	t.protos[named] = &protocol{
		name:   ts.Name.Name,
		kind:   kind,
		named:  named,
		states: states,
		pos:    c.Pos(),
	}
}

// parseStateChain parses "a -> b -> c" (also accepting "a->b") into state
// names.
func parseStateChain(s string) ([]string, bool) {
	var out []string
	for _, part := range strings.Split(s, "->") {
		name := strings.TrimSpace(part)
		if name == "" || strings.ContainsAny(name, " \t") {
			return nil, false
		}
		out = append(out, name)
	}
	return out, true
}

// protoOf returns the protocol of a *T value type, or nil.
func (t *stateTable) protoOf(typ types.Type) *protocol {
	ptr, ok := typ.(*types.Pointer)
	if !ok {
		return nil
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return nil
	}
	return t.protos[named]
}

// collectFuncs parses function-level //state: contracts in p: declared
// functions and methods, plus interface methods (so a contract like
// Node.Deliver's ownership transfer binds every dynamic dispatch site).
func (t *stateTable) collectFuncs(p *Package) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			lines := stateLines(fd.Doc)
			if len(lines) == 0 {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			t.addFuncAnn(p, fn, fd.Recv, fd.Type, lines)
		}
		// Interface methods: the contract lives on the method's doc inside
		// the interface declaration.
		ast.Inspect(f, func(n ast.Node) bool {
			it, ok := n.(*ast.InterfaceType)
			if !ok {
				return true
			}
			for _, m := range it.Methods.List {
				lines := stateLines(m.Doc)
				if len(lines) == 0 || len(m.Names) == 0 {
					continue
				}
				fn, ok := p.Info.Defs[m.Names[0]].(*types.Func)
				if !ok {
					continue
				}
				ft, ok := m.Type.(*ast.FuncType)
				if !ok {
					continue
				}
				t.addFuncAnn(p, fn, nil, ft, lines)
			}
			return true
		})
	}
}

func (t *stateTable) addFuncAnn(p *Package, fn *types.Func, recv *ast.FieldList, ftype *ast.FuncType, lines []*ast.Comment) {
	ann := t.funcs[fn]
	if ann == nil {
		ann = &funcStateAnn{params: make(map[int]paramDisp)}
		t.funcs[fn] = ann
	}
	params := flattenParams(p, ftype.Params)
	recvName := ""
	var recvType types.Type
	if recv != nil && len(recv.List) == 1 {
		if len(recv.List[0].Names) == 1 {
			recvName = recv.List[0].Names[0].Name
		}
		if v, ok := p.Info.Defs[recv.List[0].Names[0]].(*types.Var); recvName != "" && ok {
			recvType = v.Type()
		}
	}
	// setDisp installs a disposition for the named parameter or receiver,
	// reporting the error cases inline.
	setDisp := func(c *ast.Comment, name string, d paramDisp, needProto bool) (proto *protocol) {
		if name == recvName && recvName != "" {
			proto = t.protoOf(recvType)
			if needProto && proto == nil {
				t.errf(p, c.Pos(), "//state: directive on %s: receiver %q has no protocol type", fn.Name(), name)
				return nil
			}
			ann.recv = d
			return proto
		}
		for i, prm := range params {
			if prm.name != name {
				continue
			}
			proto = t.protoOf(prm.typ)
			if proto == nil && needProto {
				t.errf(p, c.Pos(), "//state: directive on %s: parameter %q has no protocol type", fn.Name(), name)
				return nil
			}
			if proto == nil && !isAnyType(prm.typ) {
				t.errf(p, c.Pos(), "//state: directive on %s: parameter %q is neither protocol-typed nor any", fn.Name(), name)
				return nil
			}
			ann.params[i] = d
			return proto
		}
		t.errf(p, c.Pos(), "//state: directive on %s names unknown parameter %q", fn.Name(), name)
		return nil
	}
	for _, c := range lines {
		payload, _ := statePayload(c)
		fields := strings.Fields(payload)
		if len(fields) == 0 {
			t.errf(p, c.Pos(), "malformed //state: directive: empty")
			continue
		}
		switch fields[0] {
		case "mint":
			sig := fn.Type().(*types.Signature)
			if sig.Results().Len() == 0 {
				t.errf(p, c.Pos(), "//state: mint on %s: function has no results", fn.Name())
				continue
			}
			proto := t.protoOf(sig.Results().At(0).Type())
			if proto == nil {
				t.errf(p, c.Pos(), "//state: mint on %s: first result is not a protocol-typed pointer", fn.Name())
				continue
			}
			state := 0
			if len(fields) > 1 {
				state = proto.stateIndex(fields[1])
				if state < 0 {
					t.errf(p, c.Pos(), "//state: mint on %s: %s has no state %q", fn.Name(), proto.name, fields[1])
					continue
				}
			}
			ann.mint = true
			ann.mintProto = proto
			ann.mintState = proto.bit(state)
		case "kill", "xfer":
			if len(fields) != 2 {
				t.errf(p, c.Pos(), "malformed //state: %s on %s: want '//state: %s <param>'", fields[0], fn.Name(), fields[0])
				continue
			}
			d := paramDisp{kind: dispKill}
			if fields[0] == "xfer" {
				d.kind = dispXfer
			}
			setDisp(c, fields[1], d, false)
		case "move":
			rest := strings.Join(fields[2:], " ")
			halves := strings.Split(rest, "->")
			if len(fields) < 3 || len(halves) != 2 {
				t.errf(p, c.Pos(), "malformed //state: move on %s: want '//state: move <param> <from>[,<from>] -> <to>'", fn.Name())
				continue
			}
			proto := setDisp(c, fields[1], paramDisp{kind: dispMove}, true)
			if proto == nil {
				continue
			}
			var from uint32
			bad := false
			for _, s := range strings.Split(halves[0], ",") {
				i := proto.stateIndex(strings.TrimSpace(s))
				if i < 0 {
					t.errf(p, c.Pos(), "//state: move on %s: %s has no state %q", fn.Name(), proto.name, strings.TrimSpace(s))
					bad = true
					break
				}
				from |= proto.bit(i)
			}
			toIdx := proto.stateIndex(strings.TrimSpace(halves[1]))
			if toIdx < 0 && !bad {
				t.errf(p, c.Pos(), "//state: move on %s: %s has no state %q", fn.Name(), proto.name, strings.TrimSpace(halves[1]))
				bad = true
			}
			if bad {
				continue
			}
			setDisp(c, fields[1], paramDisp{kind: dispMove, from: from, to: proto.bit(toIdx)}, true)
		case "sink":
			ann.sink = true
		default:
			t.errf(p, c.Pos(), "malformed //state: directive on %s: unknown verb %q (want mint, kill, xfer, move or sink)", fn.Name(), fields[0])
		}
	}
}

func isAnyType(t types.Type) bool {
	if t == nil {
		return false
	}
	iface, ok := t.Underlying().(*types.Interface)
	return ok && iface.Empty()
}

// ---------------------------------------------------------------------------
// Abstract interpreter

// tsVal is the abstract state of one tracked variable: the protocol it
// obeys, the set of states it may occupy, and whether this function owns
// its release obligation.
type tsVal struct {
	proto   *protocol
	states  uint32
	owned   bool
	tainted bool      // a use-after-gone was already reported; damp cascades
	mintPos token.Pos // where the obligation originated
}

// tsEnv maps tracked variables to their abstract state. Values are stored
// by value so cloning a branch environment is a plain map copy.
type tsEnv map[*types.Var]tsVal

func (e tsEnv) clone() tsEnv {
	out := make(tsEnv, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// join unions two branch environments: a variable present in both unions
// its state sets; a variable present on one path keeps its obligation (a
// leak on that path is still a leak).
func joinEnv(a, b tsEnv) tsEnv {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	out := a.clone()
	for _, v := range sortedEnvVars(b) {
		bv := b[v]
		if av, ok := out[v]; ok {
			av.states |= bv.states
			av.owned = av.owned || bv.owned
			av.tainted = av.tainted || bv.tainted
			out[v] = av
		} else {
			out[v] = bv
		}
	}
	return out
}

// sortedEnvVars returns env's keys in deterministic (position, name)
// order, so joins, exit checks and diagnostics never depend on map order.
func sortedEnvVars(env tsEnv) []*types.Var {
	vars := make([]*types.Var, 0, len(env))
	for v := range env {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool {
		if vars[i].Pos() != vars[j].Pos() {
			return vars[i].Pos() < vars[j].Pos()
		}
		return vars[i].Name() < vars[j].Name()
	})
	return vars
}

func equalEnv(a, b tsEnv) bool {
	if len(a) != len(b) {
		return false
	}
	for _, v := range sortedEnvVars(a) {
		av := a[v]
		bv, ok := b[v]
		if !ok || av.states != bv.states || av.owned != bv.owned || av.tainted != bv.tainted {
			return false
		}
	}
	return true
}

// tsLoopPassCap bounds the loop fixpoint. State sets only grow under union,
// so the lattice height (states per variable) already guarantees
// termination; the cap is a safety net mirroring summaryPassCap.
const tsLoopPassCap = 8

// tsFinding is one engine finding, tagged with the analyzer that owns it.
type tsFinding struct {
	analyzer string
	d        Diagnostic
}

// typestateAnalysis is the cached per-package engine result shared by
// poollife, handlestate and ownxfer.
type typestateAnalysis struct {
	findings []tsFinding
}

// typestateOf runs the typestate engine once over every function of p
// (cached per package): the per-function abstract interpretation, the
// module-wide callback clear-first rule, and the interface-contract
// consistency check.
func (prog *Program) typestateOf(p *Package) *typestateAnalysis {
	prog.build()
	if a, ok := prog.typestateResults[p]; ok {
		return a
	}
	tab := prog.typestates()
	a := &typestateAnalysis{}
	for _, d := range tab.errs[p] {
		a.findings = append(a.findings, tsFinding{analyzer: "ownxfer", d: d})
	}
	for _, n := range prog.order {
		if n.pkg != p {
			continue
		}
		f := &tsFlow{pkg: p, prog: prog, tab: tab, out: a, seen: make(map[string]bool)}
		f.analyzeDecl(n.decl, tab.funcs[n.fn])
	}
	clearFirstPass(p, prog, tab, a)
	ifaceContracts(p, prog, tab, a)
	if prog.typestateResults == nil {
		prog.typestateResults = make(map[*Package]*typestateAnalysis)
	}
	prog.typestateResults[p] = a
	return a
}

// tsFlow interprets one declared function (and, recursively, the function
// literals it contains, each with a fresh environment).
type tsFlow struct {
	pkg  *Package
	prog *Program
	tab  *stateTable
	out  *typestateAnalysis
	seen map[string]bool

	ann      *funcStateAnn // contract of the function under analysis
	declName string        // for messages: "Enqueue" or "function literal"

	// loop context for break/continue env collection (innermost last).
	breakEnvs    []*[]tsEnv
	continueEnvs []*[]tsEnv

	aborted bool // goto encountered: stop reporting in this function
	lits    []*ast.FuncLit
}

func (f *tsFlow) report(analyzer string, pos token.Pos, format string, args ...any) {
	if f.aborted {
		return
	}
	d := f.pkg.diag(analyzer, pos, format, args...)
	key := fmt.Sprintf("%s|%s|%d|%d|%s", analyzer, d.File, d.Line, d.Col, d.Message)
	if f.seen[key] {
		return
	}
	f.seen[key] = true
	f.out.findings = append(f.out.findings, tsFinding{analyzer: analyzer, d: d})
}

// analyzeDecl interprets one function declaration, then every function
// literal discovered inside it.
func (f *tsFlow) analyzeDecl(decl *ast.FuncDecl, ann *funcStateAnn) {
	f.ann = ann
	f.declName = decl.Name.Name
	env := make(tsEnv)
	if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
		recvDisp := paramDisp{}
		if ann != nil {
			recvDisp = ann.recv
		}
		f.seedParam(env, decl.Recv.List[0].Names[0], recvDisp)
	}
	f.seedParams(env, decl.Type.Params, ann)
	f.runBody(env, decl.Body)
	f.drainLits()
}

// drainLits analyzes the function literals collected so far (literals may
// nest, so the worklist can grow while draining).
func (f *tsFlow) drainLits() {
	for len(f.lits) > 0 {
		lit := f.lits[0]
		f.lits = f.lits[1:]
		f.ann = nil
		f.declName = "function literal"
		f.aborted = false
		env := make(tsEnv)
		f.seedParams(env, lit.Type.Params, nil)
		f.runBody(env, lit.Body)
	}
}

// seedParams seeds the environment from a parameter list: xfer parameters
// arrive owned, kill/move parameters are the primitive's own subject (not
// tracked in its body), and unannotated protocol-typed parameters are
// borrowed.
func (f *tsFlow) seedParams(env tsEnv, params *ast.FieldList, ann *funcStateAnn) {
	if params == nil {
		return
	}
	idx := 0
	for _, field := range params.List {
		names := field.Names
		if len(names) == 0 {
			idx++
			continue
		}
		for _, name := range names {
			disp := paramDisp{}
			if ann != nil {
				disp = ann.params[idx]
			}
			f.seedParam(env, name, disp)
			idx++
		}
	}
}

func (f *tsFlow) seedParam(env tsEnv, name *ast.Ident, disp paramDisp) {
	v, ok := f.pkg.Info.Defs[name].(*types.Var)
	if !ok {
		return
	}
	proto := f.tab.protoOf(v.Type())
	if proto == nil {
		return
	}
	switch disp.kind {
	case dispKill, dispMove:
		// This function is the transition primitive; its body implements
		// the protocol rather than obeying it.
		return
	case dispXfer:
		env[v] = tsVal{proto: proto, states: proto.liveMask(), owned: true, mintPos: name.Pos()}
	case dispNone:
		env[v] = tsVal{proto: proto, states: proto.liveMask(), owned: false, mintPos: name.Pos()}
	}
}

// runBody interprets a body and applies the exit obligations when the
// body can fall off its end.
func (f *tsFlow) runBody(env tsEnv, body *ast.BlockStmt) {
	if body == nil {
		return
	}
	out, terminated := f.stmtList(env, body.List)
	if !terminated {
		f.checkExit(out, body.End())
	}
}

// checkExit reports the pooled leak obligation at a function exit: every
// owned pooled value must have been released or transferred on this path.
func (f *tsFlow) checkExit(env tsEnv, pos token.Pos) {
	for _, v := range sortedEnvVars(env) {
		val := env[v]
		if !val.owned || val.tainted || val.proto.kind != "pooled" {
			continue
		}
		if val.states&val.proto.liveMask() != 0 {
			f.report("poollife", val.mintPos,
				"pooled %s '%s' is not released on every path: a function exit is reachable while it is still owned (want exactly one free or ownership transfer per path)",
				val.proto.name, v.Name())
		}
	}
	_ = pos
}

// stmtList interprets statements in order, stopping at the first
// terminated path (the rest is unreachable).
func (f *tsFlow) stmtList(env tsEnv, list []ast.Stmt) (tsEnv, bool) {
	for _, s := range list {
		var term bool
		env, term = f.stmt(env, s)
		if term || f.aborted {
			return env, true
		}
	}
	return env, false
}

// stmt interprets one statement, returning the outgoing environment and
// whether the path terminated (return, panic, terminal call).
func (f *tsFlow) stmt(env tsEnv, s ast.Stmt) (tsEnv, bool) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if f.isTerminalCall(st.X) {
			f.expr(env, st.X)
			return env, true
		}
		// A discarded mint result is a leak for pooled protocols: the
		// caller owns it and nothing can ever free it.
		if call, ok := unparen(st.X).(*ast.CallExpr); ok {
			val, _ := f.valueOf(env, call, false)
			if val != nil && val.owned && val.proto.kind == "pooled" {
				f.report("poollife", call.Pos(),
					"result of this call is a caller-owned pooled %s: discarding it leaks (bind it and release exactly once)",
					val.proto.name)
			}
			return env, false
		}
		f.expr(env, st.X)
		return env, false
	case *ast.AssignStmt:
		return f.assign(env, st), false
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if ok && gd.Tok == token.VAR {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						f.bind(env, name, vs.Values[i])
					}
				}
			}
		}
		return env, false
	case *ast.ReturnStmt:
		for _, res := range st.Results {
			val, handled := f.valueOf(env, res, true)
			if val != nil && val.owned && val.proto.kind == "pooled" {
				if f.ann == nil || !f.ann.mint {
					f.report("ownxfer", st.Pos(),
						"%s returns a caller-owned pooled %s without a '//state: mint' contract on its declaration",
						f.declName, val.proto.name)
				}
			} else if !handled {
				f.expr(env, res)
			}
		}
		f.checkExit(env, st.Pos())
		return env, true
	case *ast.IfStmt:
		if st.Init != nil {
			env, _ = f.stmt(env, st.Init)
		}
		f.expr(env, st.Cond)
		thenEnv, thenTerm := f.stmtList(env.clone(), st.Body.List)
		var elseEnv tsEnv
		elseTerm := false
		if st.Else != nil {
			elseEnv, elseTerm = f.stmt(env.clone(), st.Else)
		} else {
			elseEnv = env
		}
		switch {
		case thenTerm && elseTerm:
			return env, true
		case thenTerm:
			return elseEnv, false
		case elseTerm:
			return thenEnv, false
		default:
			return joinEnv(thenEnv, elseEnv), false
		}
	case *ast.BlockStmt:
		return f.stmtList(env, st.List)
	case *ast.SwitchStmt:
		if st.Init != nil {
			env, _ = f.stmt(env, st.Init)
		}
		if st.Tag != nil {
			f.expr(env, st.Tag)
		}
		return f.caseClauses(env, st.Body.List, false)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			env, _ = f.stmt(env, st.Init)
		}
		f.stmtUses(env, st.Assign)
		return f.caseClauses(env, st.Body.List, false)
	case *ast.SelectStmt:
		return f.caseClauses(env, st.Body.List, true)
	case *ast.ForStmt:
		if st.Init != nil {
			env, _ = f.stmt(env, st.Init)
		}
		exit, broke := f.loop(env, func(in tsEnv) (tsEnv, bool) {
			if st.Cond != nil {
				f.expr(in, st.Cond)
			}
			out, term := f.stmtList(in, st.Body.List)
			if !term && st.Post != nil {
				out, _ = f.stmt(out, st.Post)
			}
			return out, term
		})
		if st.Cond == nil && !broke {
			return exit, true // for {} with no break never exits
		}
		return exit, false
	case *ast.RangeStmt:
		f.expr(env, st.X)
		f.untrackAssigned(env, st.Key)
		f.untrackAssigned(env, st.Value)
		exit, _ := f.loop(env, func(in tsEnv) (tsEnv, bool) {
			return f.stmtList(in, st.Body.List)
		})
		return exit, false
	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			if n := len(f.breakEnvs); n > 0 {
				*f.breakEnvs[n-1] = append(*f.breakEnvs[n-1], env)
			}
			return env, true
		case token.CONTINUE:
			if n := len(f.continueEnvs); n > 0 {
				*f.continueEnvs[n-1] = append(*f.continueEnvs[n-1], env)
			}
			return env, true
		case token.GOTO:
			// Unstructured flow: abandon the function rather than guess.
			f.aborted = true
			return env, true
		}
		return env, false // fallthrough: handled as ordinary flow
	case *ast.DeferStmt:
		// Approximation: a deferred release applies at the defer site.
		f.expr(env, st.Call)
		return env, false
	case *ast.GoStmt:
		f.expr(env, st.Call)
		return env, false
	case *ast.LabeledStmt:
		return f.stmt(env, st.Stmt)
	case *ast.IncDecStmt:
		f.expr(env, st.X)
		return env, false
	case *ast.SendStmt:
		f.expr(env, st.Chan)
		f.expr(env, st.Value)
		return env, false
	case *ast.EmptyStmt:
		return env, false
	default:
		f.stmtUses(env, s)
		return env, false
	}
}

// stmtUses conservatively scans an unmodeled statement for uses of
// tracked variables.
func (f *tsFlow) stmtUses(env tsEnv, s ast.Stmt) {
	ast.Inspect(s, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			f.captureLit(env, e)
			return false
		case *ast.Ident:
			f.useIdent(env, e)
		}
		return true
	})
}

// caseClauses joins the bodies of switch/select clauses. hasDefault is
// discovered from the clauses themselves; without a default the entry
// environment also flows past the statement.
func (f *tsFlow) caseClauses(env tsEnv, clauses []ast.Stmt, isSelect bool) (tsEnv, bool) {
	var out tsEnv
	sawDefault := false
	anyLive := false
	for _, c := range clauses {
		var body []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			for _, e := range cc.List {
				f.expr(env, e)
			}
			if cc.List == nil {
				sawDefault = true
			}
			body = cc.Body
		case *ast.CommClause:
			if cc.Comm != nil {
				f.stmtUses(env, cc.Comm)
			} else {
				sawDefault = true
			}
			body = cc.Body
		default:
			continue
		}
		cEnv, term := f.stmtList(env.clone(), body)
		if !term {
			out = joinEnv(out, cEnv)
			anyLive = true
		}
	}
	if !sawDefault || isSelect {
		out = joinEnv(out, env)
		anyLive = true
	}
	if !anyLive {
		return env, true
	}
	return out, false
}

// loop iterates body to a fixed point (widening by state-set union over
// the finite lattice), collecting break/continue environments. It returns
// the post-loop environment and whether any break can exit the loop.
func (f *tsFlow) loop(env tsEnv, body func(tsEnv) (tsEnv, bool)) (tsEnv, bool) {
	pre := env
	var breaks []tsEnv
	for pass := 0; pass < tsLoopPassCap; pass++ {
		breaks = breaks[:0]
		var continues []tsEnv
		f.breakEnvs = append(f.breakEnvs, &breaks)
		f.continueEnvs = append(f.continueEnvs, &continues)
		out, term := body(pre.clone())
		f.breakEnvs = f.breakEnvs[:len(f.breakEnvs)-1]
		f.continueEnvs = f.continueEnvs[:len(f.continueEnvs)-1]
		backEdge := tsEnv(nil)
		if !term {
			backEdge = out
		}
		for _, c := range continues {
			backEdge = joinEnv(backEdge, c)
		}
		next := pre
		if backEdge != nil {
			next = joinEnv(pre, backEdge)
		}
		if equalEnv(next, pre) {
			break
		}
		pre = next
	}
	exit := pre
	for _, b := range breaks {
		exit = joinEnv(exit, b)
	}
	return exit, len(breaks) > 0
}

// ---------------------------------------------------------------------------
// Assignments and expressions

// assign interprets an assignment statement.
func (f *tsFlow) assign(env tsEnv, st *ast.AssignStmt) tsEnv {
	if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
		// Compound ops (+=, -=...) read and write non-protocol values.
		for _, e := range st.Lhs {
			f.expr(env, e)
		}
		for _, e := range st.Rhs {
			f.expr(env, e)
		}
		return env
	}
	if len(st.Lhs) == len(st.Rhs) {
		for i := range st.Lhs {
			f.assignOne(env, st.Lhs[i], st.Rhs[i])
		}
		return env
	}
	// Multi-value form (x, y := f()): no protocol function returns
	// multiple values in this module; scan and untrack conservatively.
	for _, e := range st.Rhs {
		f.expr(env, e)
	}
	for _, e := range st.Lhs {
		f.untrackAssigned(env, e)
	}
	return env
}

// assignOne interprets 'lhs = rhs' for one pair.
func (f *tsFlow) assignOne(env tsEnv, lhs, rhs ast.Expr) {
	val, handled := f.valueOf(env, rhs, true)
	if !handled {
		f.expr(env, rhs)
	}
	switch l := unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			if val != nil && val.owned && val.proto.kind == "pooled" {
				f.report("poollife", rhs.Pos(),
					"caller-owned pooled %s assigned to the blank identifier: nothing can ever free it", val.proto.name)
			}
			return
		}
		v, _ := f.pkg.Info.Defs[l].(*types.Var)
		if v == nil {
			v, _ = f.pkg.Info.Uses[l].(*types.Var)
		}
		if v == nil {
			return
		}
		f.checkOverwrite(env, v, l.Pos())
		if val != nil {
			env[v] = *val
		} else {
			delete(env, v)
		}
	case *ast.SelectorExpr:
		f.expr(env, l.X)
		f.storeEscape(val, rhs.Pos(), "a struct field")
	case *ast.IndexExpr:
		f.expr(env, l.X)
		f.expr(env, l.Index)
		f.storeEscape(val, rhs.Pos(), "a container slot")
	case *ast.StarExpr:
		f.expr(env, l.X)
		f.storeEscape(val, rhs.Pos(), "a pointed-to location")
	default:
		f.expr(env, lhs)
	}
}

// storeEscape applies the field/slot-store rule: a handle is simply
// forgotten, while a pooled value may only escape into long-lived storage
// inside a //state: sink function.
func (f *tsFlow) storeEscape(val *tsVal, pos token.Pos, where string) {
	if val == nil || !val.owned || val.proto.kind != "pooled" {
		return
	}
	if f.ann != nil && f.ann.sink {
		return
	}
	f.report("poollife", pos,
		"pooled %s stored into %s outside a //state: sink function: ownership hand-off into long-lived structure must happen at an annotated sink",
		val.proto.name, where)
}

// checkOverwrite reports an assignment clobbering a variable that still
// carries an obligation: a still-owned pooled value leaks, and a handle
// off its quiescent first state is orphaned mid-protocol.
func (f *tsFlow) checkOverwrite(env tsEnv, v *types.Var, pos token.Pos) {
	val, ok := env[v]
	if !ok {
		return
	}
	if val.proto.kind == "pooled" {
		if val.owned && val.states&val.proto.liveMask() != 0 {
			f.report("poollife", pos,
				"assignment overwrites '%s' while it still owns a pooled %s (minted at line %d): the previous object leaks",
				v.Name(), val.proto.name, f.pkg.Fset.Position(val.mintPos).Line)
		}
		return
	}
	quiescent := val.proto.bit(0) | val.proto.deadMask() | xferBit
	if val.states&^quiescent != 0 {
		f.report("handlestate", pos,
			"assignment overwrites handle '%s' while it may still be %s: the in-flight handle is orphaned mid-protocol",
			v.Name(), val.proto.setString(val.states&^quiescent))
	}
}

// bind handles 'var x = rhs' declarations.
func (f *tsFlow) bind(env tsEnv, name *ast.Ident, rhs ast.Expr) {
	val, handled := f.valueOf(env, rhs, true)
	if !handled {
		f.expr(env, rhs)
	}
	v, ok := f.pkg.Info.Defs[name].(*types.Var)
	if !ok {
		return
	}
	if val != nil {
		env[v] = *val
	}
}

// valueOf classifies rhs as a protocol-tracked value. consume controls
// whether a tracked source variable is moved out of the environment
// (assignment/return contexts) or merely classified (discard checks).
// The second result reports whether rhs was fully processed here
// (side effects applied); when false the caller must scan rhs itself.
func (f *tsFlow) valueOf(env tsEnv, rhs ast.Expr, consume bool) (*tsVal, bool) {
	switch e := unparen(rhs).(type) {
	case *ast.CallExpr:
		callee, _ := f.pkg.calleeOf(e)
		ann := f.tab.funcs[callee]
		f.call(env, e, callee, ann)
		if ann != nil && ann.mint {
			return &tsVal{proto: ann.mintProto, states: ann.mintState, owned: true, mintPos: e.Pos()}, true
		}
		return nil, true
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return nil, false
		}
		cl, ok := e.X.(*ast.CompositeLit)
		if !ok {
			return nil, false
		}
		proto := f.tab.protoOf(f.pkg.Info.TypeOf(rhs))
		if proto == nil || proto.kind != "pooled" {
			return nil, false
		}
		for _, el := range cl.Elts {
			f.expr(env, el)
		}
		return &tsVal{proto: proto, states: proto.bit(0), owned: true, mintPos: rhs.Pos()}, true
	case *ast.Ident:
		v, _ := f.pkg.Info.Uses[e].(*types.Var)
		if v == nil {
			return nil, false
		}
		val, ok := env[v]
		if !ok {
			return nil, false
		}
		f.useIdent(env, e)
		val = env[v] // useIdent may have healed the state set
		if consume {
			// Strong update: 'y := x' moves the tracking to y.
			delete(env, v)
		}
		return &val, true
	}
	return nil, false
}

// isTerminalCall reports whether the expression statement unconditionally
// dies: panic(...) or a call to a terminal helper (check.Failf).
func (f *tsFlow) isTerminalCall(e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" && f.pkg.Info.Uses[id] == nil {
		return true
	}
	callee, _ := f.pkg.calleeOf(call)
	return callee != nil && f.prog.isTerminal(callee)
}

// expr scans an expression, applying call contracts and use checks.
func (f *tsFlow) expr(env tsEnv, e ast.Expr) {
	if e == nil {
		return
	}
	switch ex := unparen(e).(type) {
	case *ast.CallExpr:
		callee, _ := f.pkg.calleeOf(ex)
		ann := f.tab.funcs[callee]
		f.call(env, ex, callee, ann)
		if ann != nil && ann.mint && ann.mintProto.kind == "pooled" {
			// A mint result consumed in a larger expression (not bound,
			// not returned, not an argument) cannot be released.
			f.report("poollife", ex.Pos(),
				"result of this call is a caller-owned pooled %s: discarding it leaks (bind it and release exactly once)",
				ann.mintProto.name)
		}
	case *ast.Ident:
		f.useIdent(env, ex)
	case *ast.FuncLit:
		f.captureLit(env, ex)
	case *ast.SelectorExpr:
		f.expr(env, ex.X)
	case *ast.StarExpr:
		f.expr(env, ex.X)
	case *ast.UnaryExpr:
		f.expr(env, ex.X)
	case *ast.BinaryExpr:
		f.expr(env, ex.X)
		f.expr(env, ex.Y)
	case *ast.IndexExpr:
		f.expr(env, ex.X)
		f.expr(env, ex.Index)
	case *ast.SliceExpr:
		f.expr(env, ex.X)
		f.expr(env, ex.Low)
		f.expr(env, ex.High)
		f.expr(env, ex.Max)
	case *ast.TypeAssertExpr:
		f.expr(env, ex.X)
	case *ast.CompositeLit:
		for _, el := range ex.Elts {
			f.expr(env, el)
		}
	case *ast.KeyValueExpr:
		f.expr(env, ex.Value)
	}
}

// useIdent checks one variable read against its abstract state: touching
// a possibly-freed pooled value or a possibly-dead handle is the core
// use-after-free rule. After reporting, the gone bits are healed so one
// mistake does not cascade down the function.
func (f *tsFlow) useIdent(env tsEnv, id *ast.Ident) {
	v, _ := f.pkg.Info.Uses[id].(*types.Var)
	if v == nil {
		return
	}
	val, ok := env[v]
	if !ok {
		return
	}
	gone := val.states & val.proto.goneMask()
	if gone == 0 {
		return
	}
	if val.proto.kind == "pooled" {
		f.report("poollife", id.Pos(),
			"use of '%s' after it was %s: pooled %s reaches this point %s on some path",
			id.Name, goneVerb(gone, val.proto), val.proto.name, val.proto.setString(gone))
	} else {
		f.report("handlestate", id.Pos(),
			"use of possibly-dead handle '%s': %s reaches this point %s on some path (a recycled handle must not be touched)",
			id.Name, val.proto.name, val.proto.setString(gone))
	}
	val.states = (val.states &^ val.proto.goneMask()) | (val.proto.liveMask() & val.proto.allMask())
	if val.states == 0 {
		val.states = val.proto.bit(0)
	}
	val.tainted = true
	env[v] = val
}

func goneVerb(gone uint32, pr *protocol) string {
	switch {
	case gone&xferBit != 0 && gone&pr.deadMask() != 0:
		return "freed or handed off"
	case gone&xferBit != 0:
		return "handed off"
	default:
		return "freed"
	}
}

// captureLit forgets variables captured by a function literal (they
// escape the tracked flow) and queues the literal body for its own pass.
func (f *tsFlow) captureLit(env tsEnv, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if v, ok := f.pkg.Info.Uses[id].(*types.Var); ok {
			delete(env, v)
		}
		return true
	})
	f.lits = append(f.lits, lit)
}

// untrackAssigned forgets a variable written by an unmodeled binding
// (range vars, multi-value assignment).
func (f *tsFlow) untrackAssigned(env tsEnv, e ast.Expr) {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return
	}
	v, _ := f.pkg.Info.Defs[id].(*types.Var)
	if v == nil {
		v, _ = f.pkg.Info.Uses[id].(*types.Var)
	}
	if v != nil {
		f.checkOverwrite(env, v, e.Pos())
		delete(env, v)
	}
}

// call applies one call's //state: contract to its receiver and
// arguments.
func (f *tsFlow) call(env tsEnv, call *ast.CallExpr, callee *types.Func, ann *funcStateAnn) {
	calleeName := "this call"
	if callee != nil {
		calleeName = callee.Name()
	}
	// Receiver disposition for method calls.
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
		recvDisp := paramDisp{}
		if ann != nil {
			recvDisp = ann.recv
		}
		if id, ok := unparen(sel.X).(*ast.Ident); ok {
			f.applyDisp(env, id, recvDisp, calleeName, callee)
		} else {
			f.expr(env, sel.X)
		}
	} else {
		f.expr(env, call.Fun)
	}
	for i, arg := range call.Args {
		disp := paramDisp{}
		if ann != nil {
			disp = ann.params[i]
		}
		if id, ok := unparen(arg).(*ast.Ident); ok {
			if _, tracked := f.trackedVar(env, id); tracked {
				f.applyDisp(env, id, disp, calleeName, callee)
				continue
			}
		}
		// Owned temporaries (mint calls, &T{} composites) passed inline:
		// legal when the parameter consumes them, a guaranteed leak when
		// it only borrows.
		val, handled := f.valueOf(env, arg, true)
		if val != nil {
			if val.owned && val.proto.kind == "pooled" && disp.kind != dispKill && disp.kind != dispXfer {
				f.report("poollife", arg.Pos(),
					"caller-owned pooled %s passed to %s, which does not take ownership (no //state: kill or xfer on that parameter): nothing will ever free it",
					val.proto.name, calleeName)
			}
			continue
		}
		if !handled {
			f.expr(env, arg)
		}
	}
}

func (f *tsFlow) trackedVar(env tsEnv, id *ast.Ident) (*types.Var, bool) {
	v, _ := f.pkg.Info.Uses[id].(*types.Var)
	if v == nil {
		return nil, false
	}
	_, ok := env[v]
	return v, ok
}

// applyDisp applies one parameter disposition to a tracked argument.
func (f *tsFlow) applyDisp(env tsEnv, id *ast.Ident, disp paramDisp, calleeName string, callee *types.Func) {
	v, tracked := f.trackedVar(env, id)
	if !tracked {
		f.useIdent(env, id)
		return
	}
	val := env[v]
	label := "poollife"
	if val.proto.kind != "pooled" {
		label = "handlestate"
	}
	switch disp.kind {
	case dispKill, dispXfer:
		if gone := val.states & val.proto.goneMask(); gone != 0 {
			if val.proto.kind == "pooled" {
				f.report("poollife", id.Pos(),
					"double free of '%s': pooled %s is already %s when passed to %s",
					id.Name, val.proto.name, val.proto.setString(gone), calleeName)
			} else {
				f.report("handlestate", id.Pos(),
					"'%s' passed to %s while possibly dead: handle %s already reached %s on a path to here (a fired or cancelled handle must not be released again)",
					id.Name, calleeName, val.proto.name, val.proto.setString(gone))
			}
		}
		if !val.owned {
			f.report("ownxfer", id.Pos(),
				"parameter '%s' is borrowed, but %s consumes it: declare '//state: xfer %s' (or kill) on %s's signature",
				id.Name, calleeName, id.Name, f.declName)
		}
		if disp.kind == dispKill {
			dead := val.proto.deadMask()
			if dead == 0 {
				dead = xferBit
			}
			val.states = dead
		} else {
			val.states = xferBit
		}
		env[v] = val
	case dispMove:
		if bad := val.states &^ (disp.from | val.proto.goneMask()); bad != 0 {
			f.report(label, id.Pos(),
				"%s requires %s '%s' in state %s, but it may be %s here",
				calleeName, val.proto.name, id.Name, val.proto.setString(disp.from), val.proto.setString(bad))
		}
		if gone := val.states & val.proto.goneMask(); gone != 0 {
			f.report(label, id.Pos(),
				"%s called on '%s' after it was already %s", calleeName, id.Name, val.proto.setString(gone))
		}
		val.states = disp.to
		env[v] = val
	case dispNone:
		f.useIdent(env, id)
	}
	_ = callee
}

// ---------------------------------------------------------------------------
// Callback clear-first rule

// clearFirstPass enforces the scheduler-handle contract module-wide: when
// a mint call arms a struct field of a handle protocol that has a dead
// state (the Event shape), and the callback argument can be resolved, the
// callback's first statement must clear that same field — the idiom the
// Event handle-lifetime contract is built on. Unresolvable callbacks
// (plain function values assigned elsewhere than this package) are
// skipped.
func clearFirstPass(p *Package, prog *Program, tab *stateTable, out *typestateAnalysis) {
	lits := litFieldMap(p)
	report := func(pos token.Pos, fieldName string) {
		d := p.diag("handlestate", pos,
			"callback arming field '%s' does not clear it first: the handle is dead once the callback runs, so the callback's first statement must set '%s = nil' before any re-arm or cancel",
			fieldName, fieldName)
		out.findings = append(out.findings, tsFinding{analyzer: "handlestate", d: d})
	}
	inspect := func(body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			st, ok := n.(*ast.AssignStmt)
			if !ok || st.Tok != token.ASSIGN || len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return true
			}
			sel, ok := unparen(st.Lhs[0]).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := fieldVarOf(p, sel)
			if field == nil {
				return true
			}
			proto := tab.protoOf(field.Type())
			if proto == nil || proto.kind != "handle" || proto.deadMask() == 0 {
				return true
			}
			call, ok := unparen(st.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, _ := p.calleeOf(call)
			ann := tab.funcs[callee]
			if ann == nil || !ann.mint || ann.mintProto != proto {
				return true
			}
			for _, arg := range call.Args {
				t := p.Info.TypeOf(arg)
				if t == nil {
					continue
				}
				if _, ok := t.Underlying().(*types.Signature); !ok {
					continue
				}
				body := resolveCallback(p, prog, lits, arg)
				if body == nil {
					continue // documented hole: unresolvable function value
				}
				if !clearsFieldFirst(p, body, field) {
					report(st.Pos(), field.Name())
				}
			}
			return true
		})
	}
	for _, n := range prog.order {
		if n.pkg == p {
			inspect(n.decl.Body)
		}
	}
}

// litFieldMap collects 'x.field = func(){...}' assignments in the
// package, so once-bound callback fields (Timer.wrap, Sender.pumpFn)
// resolve to their literal bodies.
func litFieldMap(p *Package) map[*types.Var]*ast.FuncLit {
	out := make(map[*types.Var]*ast.FuncLit)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.AssignStmt)
			if !ok || st.Tok != token.ASSIGN || len(st.Lhs) != 1 || len(st.Rhs) != 1 {
				return true
			}
			sel, ok := unparen(st.Lhs[0]).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			lit, ok := unparen(st.Rhs[0]).(*ast.FuncLit)
			if !ok {
				return true
			}
			if v := fieldVarOf(p, sel); v != nil {
				out[v] = lit
			}
			return true
		})
	}
	return out
}

// fieldVarOf resolves a selector to the struct field it denotes, or nil.
func fieldVarOf(p *Package, sel *ast.SelectorExpr) *types.Var {
	if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

// resolveCallback maps a callback argument to the function body that will
// run: an inline literal, a method value, or a field holding a literal
// bound in this package.
func resolveCallback(p *Package, prog *Program, lits map[*types.Var]*ast.FuncLit, arg ast.Expr) *ast.BlockStmt {
	switch a := unparen(arg).(type) {
	case *ast.FuncLit:
		return a.Body
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[a]; ok {
			switch s.Kind() {
			case types.MethodVal:
				if fn, ok := s.Obj().(*types.Func); ok {
					if n := prog.nodes[fn]; n != nil {
						return n.decl.Body
					}
				}
			case types.FieldVal:
				if v, ok := s.Obj().(*types.Var); ok {
					if lit := lits[v]; lit != nil {
						return lit.Body
					}
				}
			}
		}
	}
	return nil
}

// clearsFieldFirst reports whether body's first statement assigns nil to
// the given field.
func clearsFieldFirst(p *Package, body *ast.BlockStmt, field *types.Var) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	st, ok := body.List[0].(*ast.AssignStmt)
	if !ok || st.Tok != token.ASSIGN || len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return false
	}
	sel, ok := unparen(st.Lhs[0]).(*ast.SelectorExpr)
	if !ok || fieldVarOf(p, sel) != field {
		return false
	}
	id, ok := unparen(st.Rhs[0]).(*ast.Ident)
	return ok && id.Name == "nil"
}

// ---------------------------------------------------------------------------
// Interface-contract consistency

// ifaceContracts checks that methods implementing a //state:-annotated
// interface method declare the same parameter dispositions: a Node
// implementation that silently borrows what the interface transfers
// would break every caller's ownership accounting.
func ifaceContracts(p *Package, prog *Program, tab *stateTable, out *typestateAnalysis) {
	fns := make([]*types.Func, 0, len(tab.funcs))
	for fn := range tab.funcs {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].FullName() < fns[j].FullName() })
	for _, fn := range fns {
		ann := tab.funcs[fn]
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		if _, isIface := sig.Recv().Type().Underlying().(*types.Interface); !isIface {
			continue
		}
		idxs := make([]int, 0, len(ann.params))
		for i := range ann.params {
			idxs = append(idxs, i)
		}
		sort.Ints(idxs)
		for _, impl := range prog.implementations(fn) {
			if impl.pkg != p {
				continue
			}
			implAnn := tab.funcs[impl.fn]
			for _, i := range idxs {
				want := ann.params[i]
				got := paramDisp{}
				if implAnn != nil {
					got = implAnn.params[i]
				}
				if got.kind != want.kind {
					d := p.diag("ownxfer", impl.decl.Pos(),
						"%s implements %s, whose //state: contract declares %s for parameter %d; the implementation must declare the same disposition",
						impl.fn.Name(), fn.FullName(), dispName(want.kind), i+1)
					out.findings = append(out.findings, tsFinding{analyzer: "ownxfer", d: d})
				}
			}
		}
	}
}

func dispName(k dispKind) string {
	switch k {
	case dispKill:
		return "kill"
	case dispXfer:
		return "xfer"
	case dispMove:
		return "move"
	case dispNone:
		return "none"
	}
	return "none"
}

// typestateFindings filters the cached engine result for one analyzer.
func typestateFindings(p *Package, analyzer string) []Diagnostic {
	prog := p.Prog
	if prog == nil {
		return nil
	}
	res := prog.typestateOf(p)
	var out []Diagnostic
	for _, f := range res.findings {
		if f.analyzer == analyzer {
			out = append(out, f.d)
		}
	}
	return out
}
