package lint

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// CacheKey returns the analyzer that proves cache-key completeness for
// sweep result caching. internal/sweep caches a job's result under a
// digest of its Point; a field added to Point but left out of the digest
// silently aliases distinct experiments onto one cache entry — stale
// results with no error anywhere. The analyzer turns that into a lint
// failure: a struct type annotated
//
//	//cache:key Key
//
// (method name optional; "Key" is the default) promises that *every* field
// of the struct flows into the named method. Coverage is established per
// field:
//
//   - a json.Marshal call on the receiver (or an alias of it) covers the
//     exported fields whose json tag is not "-" — and, crucially, does NOT
//     cover unexported fields or tag-excluded ones, which is exactly the
//     failure mode the analyzer exists to catch;
//   - a direct selector read (pt.Field) covers that field;
//   - passing the receiver to any other function is treated, leniently, as
//     covering all fields — the analyzer cannot see into arbitrary callees,
//     and a false positive on a helper-based key would teach people to
//     delete the annotation (leniency documented in DESIGN.md).
//
// Uncovered fields are reported at their declaration with the precise
// reason they miss the digest. A missing method is reported at the type.
func CacheKey() *Analyzer {
	return &Analyzer{
		Name: "cachekey",
		Doc:  "prove every field of a //cache:key-annotated struct flows into its cache-key method",
		Run:  runCacheKey,
	}
}

func runCacheKey(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil && len(gd.Specs) == 1 {
					doc = gd.Doc
				}
				method, ok := cacheKeyDirective(doc)
				if !ok {
					continue
				}
				out = append(out, p.checkCacheKey(ts, method)...)
			}
		}
	}
	return out
}

// cacheKeyDirective extracts the method name from a //cache:key line in a
// doc comment. Returns "Key" when the directive carries no name.
func cacheKeyDirective(doc *ast.CommentGroup) (string, bool) {
	if doc == nil {
		return "", false
	}
	for _, c := range doc.List {
		rest, ok := strings.CutPrefix(c.Text, "//cache:key")
		if !ok {
			continue
		}
		rest = strings.TrimSpace(rest)
		if rest == "" {
			return "Key", true
		}
		return rest, true
	}
	return "", false
}

// checkCacheKey verifies field coverage of one annotated struct type.
func (p *Package) checkCacheKey(ts *ast.TypeSpec, method string) []Diagnostic {
	tn, ok := p.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return nil
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return []Diagnostic{p.diag("cachekey", ts.Pos(),
			"//cache:key on %s, which is not a struct type", ts.Name.Name)}
	}
	mdecl := p.findMethod(ts.Name.Name, method)
	if mdecl == nil {
		return []Diagnostic{p.diag("cachekey", ts.Pos(),
			"type %s declares //cache:key %s but no method %s with a body exists in this package",
			ts.Name.Name, method, method)}
	}

	cov := p.keyCoverage(mdecl)
	var out []Diagnostic
	for i := 0; i < st.NumFields(); i++ {
		fv := st.Field(i)
		if cov.all || cov.fields[fv.Name()] {
			continue
		}
		tagName, _, _ := strings.Cut(reflect.StructTag(st.Tag(i)).Get("json"), ",")
		switch {
		case cov.marshaled && !fv.Exported():
			out = append(out, p.diag("cachekey", fv.Pos(),
				"field %s of %s does not flow into cache key %s: unexported fields are invisible to json.Marshal",
				fv.Name(), ts.Name.Name, method))
		case cov.marshaled && tagName == "-":
			out = append(out, p.diag("cachekey", fv.Pos(),
				"field %s of %s does not flow into cache key %s: its json:\"-\" tag excludes it from json.Marshal",
				fv.Name(), ts.Name.Name, method))
		case cov.marshaled:
			continue // exported, tag-included: json.Marshal serializes it
		default:
			out = append(out, p.diag("cachekey", fv.Pos(),
				"field %s of %s does not flow into cache key %s: the method never reads it",
				fv.Name(), ts.Name.Name, method))
		}
	}
	return out
}

// findMethod locates the declared method with a body on the named type
// (value or pointer receiver) in this package.
func (p *Package) findMethod(typeName, method string) *ast.FuncDecl {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil || fd.Name.Name != method {
				continue
			}
			if recvTypeName(fd.Recv) == typeName {
				return fd
			}
		}
	}
	return nil
}

// recvTypeName extracts the base type name of a receiver field list.
func recvTypeName(recv *ast.FieldList) string {
	if len(recv.List) != 1 {
		return ""
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// coverage is the evidence a key method accumulates per struct field.
type coverage struct {
	fields    map[string]bool // directly read fields
	marshaled bool            // receiver passed to json.Marshal
	all       bool            // receiver escapes into an opaque call
}

// keyCoverage walks the method body collecting which receiver fields flow
// into the key. Receiver aliases (k := pt, q := &pt) are tracked so reads
// through a copy still count.
func (p *Package) keyCoverage(fd *ast.FuncDecl) coverage {
	cov := coverage{fields: make(map[string]bool)}
	aliases := p.receiverAliases(fd)
	isAlias := func(e ast.Expr) bool {
		e = unparen(e)
		if ue, ok := e.(*ast.UnaryExpr); ok {
			e = unparen(ue.X)
		}
		if star, ok := e.(*ast.StarExpr); ok {
			e = unparen(star.X)
		}
		id, ok := e.(*ast.Ident)
		if !ok {
			return false
		}
		obj := p.Info.Uses[id]
		return obj != nil && aliases[obj]
	}

	ast.Inspect(fd.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.SelectorExpr:
			if isAlias(node.X) {
				cov.fields[node.Sel.Name] = true
			}
		case *ast.CallExpr:
			callee, _ := p.calleeOf(node)
			isMarshal := callee != nil && callee.FullName() == "encoding/json.Marshal"
			for _, arg := range node.Args {
				if !isAlias(arg) {
					continue
				}
				if isMarshal {
					cov.marshaled = true
				} else {
					cov.all = true
				}
			}
		}
		return true
	})
	return cov
}

// receiverAliases collects the receiver object plus every local bound to a
// copy or pointer of it (x := pt, ptr := &pt), iterated to a fixed point so
// chains of aliases resolve.
func (p *Package) receiverAliases(fd *ast.FuncDecl) map[types.Object]bool {
	aliases := make(map[types.Object]bool)
	if len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		if obj := p.Info.Defs[fd.Recv.List[0].Names[0]]; obj != nil {
			aliases[obj] = true
		}
	}
	for pass := 0; pass < 4; pass++ {
		changed := false
		ast.Inspect(fd.Body, func(node ast.Node) bool {
			as, ok := node.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				e := unparen(rhs)
				if ue, ok := e.(*ast.UnaryExpr); ok {
					e = unparen(ue.X)
				}
				id, ok := e.(*ast.Ident)
				if !ok || !aliases[p.Info.Uses[id]] {
					continue
				}
				lhs, ok := unparen(as.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := p.Info.Defs[lhs]
				if obj == nil {
					obj = p.Info.Uses[lhs]
				}
				if obj != nil && !aliases[obj] {
					aliases[obj] = true
					changed = true
				}
			}
			return true
		})
		if !changed {
			break
		}
	}
	return aliases
}
