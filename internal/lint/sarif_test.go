package lint

import (
	"encoding/json"
	"testing"
)

// TestSARIF checks the emitted log against the subset of SARIF 2.1.0 that
// CI code-scanning ingestion requires: version, tool name, one rule per
// analyzer (plus the directive pseudo-rule), and per-result locations with
// forward-slash URIs.
func TestSARIF(t *testing.T) {
	diags := []Diagnostic{{
		File:     "internal/tcp/sender.go",
		Line:     42,
		Col:      7,
		Analyzer: "unitflow",
		Message:  "bytes value flows into packets destination q",
	}}
	out, err := SARIF(diags, All())
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatal(err)
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "simlint" {
		t.Errorf("driver name = %q, want simlint", run.Tool.Driver.Name)
	}
	if want := len(All()) + 2; len(run.Tool.Driver.Rules) != want {
		t.Errorf("rules = %d, want %d (analyzers + directive + staleallow)", len(run.Tool.Driver.Rules), want)
	}
	if len(run.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(run.Results))
	}
	res := run.Results[0]
	if res.RuleID != "unitflow" {
		t.Errorf("ruleId = %q, want unitflow", res.RuleID)
	}
	loc := res.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "internal/tcp/sender.go" {
		t.Errorf("uri = %q", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 42 || loc.Region.StartColumn != 7 {
		t.Errorf("region = %d:%d, want 42:7", loc.Region.StartLine, loc.Region.StartColumn)
	}
}

// TestSARIFClean pins the clean-run shape: results serializes as an empty
// array, never null, so ingestion does not need a special case.
func TestSARIFClean(t *testing.T) {
	out, err := SARIF(nil, All())
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Runs []map[string]json.RawMessage `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatal(err)
	}
	raw, ok := log.Runs[0]["results"]
	if !ok {
		t.Fatal("results key absent from clean run")
	}
	if string(raw) != "[]" {
		t.Errorf("clean results = %s, want []", raw)
	}
}
