package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadFixDir type-checks one package directory with a fresh loader.
func loadFixDir(t *testing.T, rel string) []*Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("internal/lint/" + rel)
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// TestFixGoldens runs every autofix fixture under testdata/fix: apply the
// suggested fixes to a scratch copy of input.go, compare the result
// byte-for-byte against input.go.golden, and prove idempotence by
// re-linting the fixed source and requiring zero remaining fixable
// diagnostics.
func TestFixGoldens(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "fix"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "fix", name)
			input, err := os.ReadFile(filepath.Join(dir, "input.go"))
			if err != nil {
				t.Fatal(err)
			}
			// Work on a scratch copy: the fixture input must survive the
			// test unchanged, and the loader needs an on-disk package.
			tmp := filepath.Join(dir, "tmp")
			if err := os.RemoveAll(tmp); err != nil {
				t.Fatal(err)
			}
			if err := os.MkdirAll(tmp, 0o755); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { os.RemoveAll(tmp) })
			target := filepath.Join(tmp, "input.go")
			if err := os.WriteFile(target, input, 0o644); err != nil {
				t.Fatal(err)
			}

			pkgs := loadFixDir(t, filepath.ToSlash(filepath.Join("testdata", "fix", name, "tmp")))
			diags := Run(pkgs, All())
			nFixable := 0
			for _, d := range diags {
				if d.Fix != nil {
					nFixable++
				}
			}
			if nFixable == 0 {
				t.Fatal("fixture produced no fixable diagnostics")
			}
			fixed, err := ApplyFixes(diags)
			if err != nil {
				t.Fatal(err)
			}
			if len(fixed) != 1 {
				t.Fatalf("fixes touched %d files, want 1", len(fixed))
			}
			var got []byte
			for _, content := range fixed {
				got = content
			}

			golden := filepath.Join(dir, "input.go.golden")
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
			} else {
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("missing golden (run with -update): %v", err)
				}
				if string(got) != string(want) {
					t.Errorf("fixed source mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
				}
			}

			// Idempotence: the fixed source must carry no further fixable
			// diagnostics, so a second -fix pass is a no-op.
			if err := os.WriteFile(target, got, 0o644); err != nil {
				t.Fatal(err)
			}
			pkgs = loadFixDir(t, filepath.ToSlash(filepath.Join("testdata", "fix", name, "tmp")))
			for _, d := range Run(pkgs, All()) {
				if d.Fix != nil {
					t.Errorf("fixable diagnostic survives the fix: %s", d)
				}
			}
		})
	}
}

// TestApplyFixesCrossAnalyzerConflict pins the refusal contract for fixes
// that overlap across analyzers: the error names both analyzers, identical
// edits from different analyzers still collapse, disjoint cross-analyzer
// fixes compose, and same-analyzer overlaps keep the generic refusal.
func TestApplyFixesCrossAnalyzerConflict(t *testing.T) {
	target := filepath.Join(t.TempDir(), "input.go")
	if err := os.WriteFile(target, []byte("abcdefghij"), 0o644); err != nil {
		t.Fatal(err)
	}
	mk := func(analyzer string, edits ...TextEdit) Diagnostic {
		for i := range edits {
			edits[i].File = target
		}
		return Diagnostic{
			File: target, Line: 1, Col: 1, Analyzer: analyzer,
			Message: "fixture finding",
			Fix:     &SuggestedFix{Message: "fixture fix", Edits: edits},
		}
	}
	tests := []struct {
		name      string
		diags     []Diagnostic
		want      string // fixed file contents; "" when an error is expected
		errHas    []string
		errNotHas []string
	}{
		{
			name: "overlap across analyzers names both",
			diags: []Diagnostic{
				mk("durationfix", TextEdit{Start: 1, End: 4, NewText: "X"}),
				mk("floateq", TextEdit{Start: 2, End: 5, NewText: "Y"}),
			},
			errHas: []string{`"durationfix"`, `"floateq"`, "refusing to apply either"},
		},
		{
			name: "same range different rewrites across analyzers",
			diags: []Diagnostic{
				mk("durationfix", TextEdit{Start: 1, End: 4, NewText: "X"}),
				mk("floateq", TextEdit{Start: 1, End: 4, NewText: "Y"}),
			},
			errHas: []string{`"durationfix"`, `"floateq"`},
		},
		{
			name: "identical edits across analyzers collapse",
			diags: []Diagnostic{
				mk("durationfix", TextEdit{Start: 1, End: 4, NewText: "X"}),
				mk("floateq", TextEdit{Start: 1, End: 4, NewText: "X"}),
			},
			want: "aXefghij",
		},
		{
			name: "disjoint edits across analyzers compose",
			diags: []Diagnostic{
				mk("durationfix", TextEdit{Start: 1, End: 3, NewText: "X"}),
				mk("floateq", TextEdit{Start: 5, End: 7, NewText: "Y"}),
			},
			want: "aXdeYhij",
		},
		{
			name: "same-analyzer overlap keeps the generic refusal",
			diags: []Diagnostic{
				mk("floateq", TextEdit{Start: 1, End: 4, NewText: "X"}),
				mk("floateq", TextEdit{Start: 2, End: 5, NewText: "Y"}),
			},
			errHas:    []string{"conflicting edits"},
			errNotHas: []string{"analyzers"},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			fixed, err := ApplyFixes(tc.diags)
			if len(tc.errHas) > 0 {
				if err == nil {
					t.Fatal("conflict not rejected")
				}
				for _, want := range tc.errHas {
					if !strings.Contains(err.Error(), want) {
						t.Errorf("error %q missing %q", err, want)
					}
				}
				for _, ban := range tc.errNotHas {
					if strings.Contains(err.Error(), ban) {
						t.Errorf("error %q should not mention %q", err, ban)
					}
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if got := string(fixed[target]); got != tc.want {
				t.Errorf("fixed = %q, want %q", got, tc.want)
			}
		})
	}
}

// TestApplyEditsConflicts pins the edit-application error paths: duplicate
// edits collapse, overlapping and contradictory edits are refused.
func TestApplyEditsConflicts(t *testing.T) {
	src := []byte("abcdef")
	got, err := applyEdits(src, []TextEdit{
		{Start: 1, End: 3, NewText: "X"},
		{Start: 1, End: 3, NewText: "X"}, // identical duplicate: collapses
		{Start: 4, End: 5, NewText: "Y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "aXdYf" {
		t.Errorf("applyEdits = %q, want %q", got, "aXdYf")
	}
	if _, err := applyEdits(src, []TextEdit{
		{Start: 1, End: 4, NewText: "X"},
		{Start: 2, End: 5, NewText: "Y"},
	}); err == nil {
		t.Error("overlapping edits not rejected")
	}
	if _, err := applyEdits(src, []TextEdit{
		{Start: 1, End: 3, NewText: "X"},
		{Start: 1, End: 3, NewText: "Y"},
	}); err == nil {
		t.Error("contradictory rewrites of one range not rejected")
	}
	if _, err := applyEdits(src, []TextEdit{{Start: 3, End: 99, NewText: "X"}}); err == nil {
		t.Error("out-of-range edit not rejected")
	}
}
