package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// loadFixDir type-checks one package directory with a fresh loader.
func loadFixDir(t *testing.T, rel string) []*Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("internal/lint/" + rel)
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// TestFixGoldens runs every autofix fixture under testdata/fix: apply the
// suggested fixes to a scratch copy of input.go, compare the result
// byte-for-byte against input.go.golden, and prove idempotence by
// re-linting the fixed source and requiring zero remaining fixable
// diagnostics.
func TestFixGoldens(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("testdata", "fix"))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			dir := filepath.Join("testdata", "fix", name)
			input, err := os.ReadFile(filepath.Join(dir, "input.go"))
			if err != nil {
				t.Fatal(err)
			}
			// Work on a scratch copy: the fixture input must survive the
			// test unchanged, and the loader needs an on-disk package.
			tmp := filepath.Join(dir, "tmp")
			if err := os.RemoveAll(tmp); err != nil {
				t.Fatal(err)
			}
			if err := os.MkdirAll(tmp, 0o755); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { os.RemoveAll(tmp) })
			target := filepath.Join(tmp, "input.go")
			if err := os.WriteFile(target, input, 0o644); err != nil {
				t.Fatal(err)
			}

			pkgs := loadFixDir(t, filepath.ToSlash(filepath.Join("testdata", "fix", name, "tmp")))
			diags := Run(pkgs, All())
			nFixable := 0
			for _, d := range diags {
				if d.Fix != nil {
					nFixable++
				}
			}
			if nFixable == 0 {
				t.Fatal("fixture produced no fixable diagnostics")
			}
			fixed, err := ApplyFixes(diags)
			if err != nil {
				t.Fatal(err)
			}
			if len(fixed) != 1 {
				t.Fatalf("fixes touched %d files, want 1", len(fixed))
			}
			var got []byte
			for _, content := range fixed {
				got = content
			}

			golden := filepath.Join(dir, "input.go.golden")
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
			} else {
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("missing golden (run with -update): %v", err)
				}
				if string(got) != string(want) {
					t.Errorf("fixed source mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
				}
			}

			// Idempotence: the fixed source must carry no further fixable
			// diagnostics, so a second -fix pass is a no-op.
			if err := os.WriteFile(target, got, 0o644); err != nil {
				t.Fatal(err)
			}
			pkgs = loadFixDir(t, filepath.ToSlash(filepath.Join("testdata", "fix", name, "tmp")))
			for _, d := range Run(pkgs, All()) {
				if d.Fix != nil {
					t.Errorf("fixable diagnostic survives the fix: %s", d)
				}
			}
		})
	}
}

// TestApplyEditsConflicts pins the edit-application error paths: duplicate
// edits collapse, overlapping and contradictory edits are refused.
func TestApplyEditsConflicts(t *testing.T) {
	src := []byte("abcdef")
	got, err := applyEdits(src, []TextEdit{
		{Start: 1, End: 3, NewText: "X"},
		{Start: 1, End: 3, NewText: "X"}, // identical duplicate: collapses
		{Start: 4, End: 5, NewText: "Y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "aXdYf" {
		t.Errorf("applyEdits = %q, want %q", got, "aXdYf")
	}
	if _, err := applyEdits(src, []TextEdit{
		{Start: 1, End: 4, NewText: "X"},
		{Start: 2, End: 5, NewText: "Y"},
	}); err == nil {
		t.Error("overlapping edits not rejected")
	}
	if _, err := applyEdits(src, []TextEdit{
		{Start: 1, End: 3, NewText: "X"},
		{Start: 1, End: 3, NewText: "Y"},
	}); err == nil {
		t.Error("contradictory rewrites of one range not rejected")
	}
	if _, err := applyEdits(src, []TextEdit{{Start: 3, End: 99, NewText: "X"}}); err == nil {
		t.Error("out-of-range edit not rejected")
	}
}
