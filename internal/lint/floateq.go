package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
)

// FloatEq returns the analyzer that flags == and != between floating-point
// operands. After any arithmetic, exact float equality is a rounding
// accident — and a nondeterminism hazard the moment evaluation order or
// compiler fusion changes. Two forms stay legal:
//
//   - comparison against an exact zero literal (0 is precisely
//     representable, and "has this accumulator ever been touched" is a
//     legitimate discrete question);
//   - intentional exact comparisons annotated with an inline
//     //lint:allow floateq directive explaining why exactness is sound
//     (e.g. both operands are copies of the same stored value).
//
// Test files are not analyzed by simlint at all, so table-driven test
// expectations remain unaffected.
func FloatEq() *Analyzer {
	return &Analyzer{
		Name: "floateq",
		Doc:  "flag ==/!= on floating-point operands (exact-zero compares exempt)",
		Run:  runFloatEq,
	}
}

func runFloatEq(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !p.isFloat(be.X) && !p.isFloat(be.Y) {
				return true
			}
			if p.isZeroConst(be.X) || p.isZeroConst(be.Y) {
				return true
			}
			dg := p.diag("floateq", be.OpPos,
				"floating-point %s comparison: compare with a tolerance, or annotate why exact equality is sound", be.Op)
			dg.Fix = p.floatEqFix(be)
			out = append(out, dg)
			return true
		})
	}
	return out
}

// isZeroConst reports whether e is a compile-time constant equal to zero.
func (p *Package) isZeroConst(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		v, _ := constant.Float64Val(tv.Value)
		return v == 0
	}
	return false
}
