package lint

import (
	"go/types"
	"math"
)

// RangeProof reports writes to //inv:-annotated fields that the interval
// interpreter cannot prove to respect the declared range at function exit
// and that no internal/check assertion in the same function discharges —
// plus call arguments, return values and composite literals that violate
// function contracts, and malformed //inv: annotations themselves.
//
// The static and runtime sides are two halves of one contract: a write the
// prover discharges needs no assertion, a write it cannot discharge must
// carry one (check.Unit, check.AtLeast, ...) so the invariant is enforced
// somewhere. checkcover audits the opposite direction.
func RangeProof() *Analyzer {
	return &Analyzer{
		Name: "rangeproof",
		Doc:  "prove //inv: range contracts at writer exits via interval abstract interpretation, or demand an internal/check assertion",
		Run:  runRangeProof,
	}
}

func runRangeProof(p *Package) []Diagnostic {
	prog := p.Prog
	if prog == nil {
		return nil
	}
	ct := prog.contracts()
	var out []Diagnostic

	// Malformed or unresolvable contracts declared in this package.
	inPkg := map[string]bool{}
	for _, f := range p.Files {
		inPkg[p.Fset.Position(f.Pos()).Filename] = true
	}
	for _, d := range ct.errs {
		if inPkg[d.File] {
			out = append(out, d)
		}
	}

	res := prog.intervalAnalysisOf(p)
	for _, fr := range res.funcs {
		for _, ua := range fr.unproven {
			if dischargedBy(fr.checks, ua, ct) {
				continue
			}
			fc := ua.contract
			out = append(out, p.diag("rangeproof", ua.pos,
				"cannot prove //inv: %s for %s.%s at exit of %s (computed %s); clamp the write or add a named internal/check assertion",
				fc.atoms[ua.atomIdx].describe(), ownerName(fc), ua.field.Name(), ua.fnName, ua.got))
		}
		for _, ob := range fr.obls {
			out = append(out, p.diag("rangeproof", ob.pos, "%s", ob.msg))
		}
	}
	return out
}

// dischargedBy reports whether some check.* assertion in the same function
// covers the unproven atom: the asserted field matches and the assertion
// implies the atom's bound.
func dischargedBy(checks []checkAssert, ua unprovenAtom, ct *contractTable) bool {
	a := ua.contract.atoms[ua.atomIdx]
	for _, c := range checks {
		if c.target != ua.field {
			continue
		}
		if dischargesAtom(c, a, ct) {
			return true
		}
	}
	return false
}

// dischargesAtom is the static↔runtime mapping: which check helper proves
// which kind of contract atom.
func dischargesAtom(c checkAssert, a atom, ct *contractTable) bool {
	// Symbolic bound of the atom, rendered against the check's own
	// instance expression so check.AtMost(.., int64(p.qBytes),
	// int64(p.cfg.BufferBytes)) matches //inv: qBytes <= cfg.BufferBytes.
	symCanon, hasSym := atomBoundCanon(c.baseCanon, a)
	boundLo, boundHi := symBoundNumeric(a, ct)
	switch c.fnName {
	case "Unit": // asserts 0 <= v <= 1 (and rejects NaN)
		if a.upper {
			if a.path != nil {
				return 1 <= boundLo
			}
			if a.strict {
				return 1 < a.num
			}
			return 1 <= a.num
		}
		if a.path != nil {
			return boundHi <= 0
		}
		if a.strict {
			return a.num < 0
		}
		return a.num <= 0
	case "NonNegative", "NonNegativeDur": // asserts v >= 0
		if a.upper {
			return false
		}
		if a.path != nil {
			return boundHi <= 0
		}
		if a.strict {
			return a.num < 0
		}
		return a.num <= 0
	case "ZeroDur": // asserts v == 0
		if a.upper {
			if a.path != nil {
				return 0 <= boundLo
			}
			if a.strict {
				return 0 < a.num
			}
			return 0 <= a.num
		}
		if a.path != nil {
			return boundHi <= 0
		}
		if a.strict {
			return a.num < 0
		}
		return a.num <= 0
	case "AtLeast": // asserts v >= bound
		if a.upper {
			return false
		}
		if hasSym && c.boundCanon == symCanon {
			return true
		}
		if a.path != nil {
			return boundHi <= c.boundV.lo
		}
		if a.strict {
			return c.boundV.lo > a.num
		}
		return c.boundV.lo >= a.num
	case "AtMost": // asserts v <= bound
		if !a.upper {
			return false
		}
		if hasSym && c.boundCanon == symCanon {
			return true
		}
		if a.path != nil {
			return c.boundV.hi <= boundLo
		}
		if a.strict {
			return c.boundV.hi < a.num
		}
		return c.boundV.hi <= a.num
	}
	return false
}

// symBoundNumeric is the one-level numeric contract range of a symbolic
// atom's bound field ([1, +inf] for cfg.BufferBytes with BufferBytes >= 1);
// [-inf, +inf] when the bound has no contract of its own.
func symBoundNumeric(a atom, ct *contractTable) (lo, hi float64) {
	lo, hi = math.Inf(-1), math.Inf(1)
	if a.path == nil {
		return lo, hi
	}
	if v, ok := a.path[len(a.path)-1].(*types.Var); ok {
		if fc, okc := ct.fields[v]; okc {
			iv := numericIval(fc.atoms)
			return iv.lo, iv.hi
		}
	}
	return lo, hi
}
