package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// poolForEachPath is the fully qualified name of the sweep worker-pool
// entry point; function literals passed to it run concurrently.
const poolForEachPath = "dctcpplus/internal/sweep/pool.ForEach"

// SharedState returns the analyzer that extends sweepsafety from
// package-level globals to *captured locals*. sweepsafety proves a sweep
// job never writes a global; the remaining race class — the one
// internal/sweep/pool actively invites — is a local captured by reference
// in a concurrently executed closure:
//
//	sum := 0
//	pool.ForEach(workers, n, func(w, i int) {
//		sum += weigh(i)     // flagged: workers race on sum
//	})
//
// Two closure contexts are checked:
//
//   - function literals passed to pool.ForEach, anywhere in the module
//     (the pool contract says the body runs on several goroutines);
//   - function literals launched with `go` inside //sweep:job-reachable
//     code (the goroutine outlives the expression and races with its
//     siblings and its spawner).
//
// Inside such a literal, a write (assignment, ++/--, delete/clear/copy)
// whose destination resolves to a variable declared *outside* the literal
// is flagged. The sanctioned idiom stays silent: writing through a slice
// index that mentions one of the literal's own parameters (out[i] = ...,
// with i the worker-provided index) touches a worker-private slot. Map
// writes are flagged regardless of index — concurrent map writes fault at
// run time no matter how the keys partition. A write lexically preceded by
// a sync.Locker Lock() call in the same literal is exempt.
//
// Package-level destinations inside go-statement literals are left to
// sweepsafety, which already reports them; literals passed to pool.ForEach
// are checked for globals here too, because outside sweep-reachable code
// sweepsafety never looks at them.
func SharedState() *Analyzer {
	return &Analyzer{
		Name: "sharedstate",
		Doc:  "flag unsynchronized writes to captured variables inside concurrently executed closures",
		Run:  runSharedState,
	}
}

func runSharedState(p *Package) []Diagnostic {
	if p.Prog == nil {
		return nil
	}
	var out []Diagnostic

	// Context A: literals handed to pool.ForEach, in any function.
	for _, f := range p.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, _ := p.calleeOf(call)
			if callee == nil || callee.FullName() != poolForEachPath {
				return true
			}
			for _, arg := range call.Args {
				if lit, ok := unparen(arg).(*ast.FuncLit); ok {
					out = append(out, p.closureWrites(lit, false,
						"closure passed to pool.ForEach")...)
				}
			}
			return true
		})
	}

	// Context B: goroutines launched inside sweep-reachable functions.
	for _, n := range p.Prog.sweepNodesIn(p) {
		where := sweepRootLabel(n.fn, p.Prog.sweepRootsOf(n.fn))
		ast.Inspect(n.decl.Body, func(node ast.Node) bool {
			gs, ok := node.(*ast.GoStmt)
			if !ok {
				return true
			}
			if lit, ok := unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				out = append(out, p.closureWrites(lit, true,
					"goroutine launched in sweep code "+where)...)
			}
			return true
		})
	}
	return out
}

// closureWrites flags the unsynchronized captured-variable writes in one
// concurrently executed function literal. skipPkgLevel hands package-level
// destinations to sweepsafety instead of reporting them twice.
func (p *Package) closureWrites(lit *ast.FuncLit, skipPkgLevel bool, context string) []Diagnostic {
	params := p.litParams(lit)
	locks := p.lockPositions(lit)
	var out []Diagnostic

	flag := func(pos token.Pos, v *types.Var, how string) {
		if precededByLock(locks, pos) {
			return
		}
		if skipPkgLevel && isPkgLevel(v) {
			return
		}
		out = append(out, p.diag("sharedstate", pos,
			"%s %s captured %s by reference: concurrent workers race on it; write to a worker-indexed slot or hold a mutex",
			context, how, v.Name()))
	}

	ast.Inspect(lit.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			return node == lit // nested literals are their own capture scope
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if v := p.capturedTarget(lit, params, lhs); v != nil {
					flag(lhs.Pos(), v, "writes")
				}
			}
		case *ast.IncDecStmt:
			if v := p.capturedTarget(lit, params, node.X); v != nil {
				flag(node.X.Pos(), v, "writes")
			}
		case *ast.CallExpr:
			if name, arg := mutatingBuiltin(p, node); arg != nil {
				if v := p.capturedTarget(lit, params, arg); v != nil {
					flag(arg.Pos(), v, name+"-mutates")
				}
			}
		}
		return true
	})
	return out
}

// litParams collects the objects declared by the literal's own parameter
// list (the worker/index arguments the pool passes in).
func (p *Package) litParams(lit *ast.FuncLit) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if lit.Type.Params == nil {
		return out
	}
	for _, f := range lit.Type.Params.List {
		for _, name := range f.Names {
			if obj := p.Info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// lockPositions records the positions of sync.Locker Lock() calls in the
// literal body; a write after a Lock is treated as guarded.
func (p *Package) lockPositions(lit *ast.FuncLit) []token.Pos {
	var out []token.Pos
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Lock" {
			return true
		}
		if isSyncType(p.Info.TypeOf(sel.X)) {
			out = append(out, call.Pos())
		}
		return true
	})
	return out
}

func precededByLock(locks []token.Pos, pos token.Pos) bool {
	for _, l := range locks {
		if l < pos {
			return true
		}
	}
	return false
}

// isSyncType reports whether t (possibly behind a pointer) is a named type
// declared in package sync.
func isSyncType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync"
}

// capturedTarget resolves a write destination to the captured variable it
// mutates, or nil when the write is literal-local or lands in a
// worker-private slot. The access path is unwrapped like sweepsafety's
// pkgLevelTarget, with two concurrency-specific twists: a map index is a
// race no matter the key, and a slice index that mentions one of the
// literal's parameters addresses a disjoint element and passes.
func (p *Package) capturedTarget(lit *ast.FuncLit, params map[types.Object]bool, expr ast.Expr) *types.Var {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.IndexExpr:
			t := p.Info.TypeOf(e.X)
			if t != nil {
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					// Slice/array element: the worker-indexed idiom
					// out[i] = ... writes a private slot.
					if p.refsParam(e.Index, params) {
						return nil
					}
				}
			}
			expr = e.X
		case *ast.SelectorExpr:
			if id, ok := e.X.(*ast.Ident); ok {
				if _, isPkg := p.Info.Uses[id].(*types.PkgName); isPkg {
					expr = e.Sel
					continue
				}
			}
			expr = e.X
		case *ast.Ident:
			v, ok := p.Info.Uses[e].(*types.Var)
			if !ok {
				v, ok = p.Info.Defs[e].(*types.Var)
			}
			if !ok {
				return nil
			}
			if declaredInside(lit, v) || params[v] {
				return nil
			}
			return v
		default:
			return nil
		}
	}
}

// refsParam reports whether the expression mentions any of the literal's
// own parameters.
func (p *Package) refsParam(e ast.Expr, params map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(node ast.Node) bool {
		if id, ok := node.(*ast.Ident); ok && params[p.Info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

// declaredInside reports whether v's declaration lies within the literal.
func declaredInside(lit *ast.FuncLit, v *types.Var) bool {
	return lit.Pos() <= v.Pos() && v.Pos() < lit.End()
}

// isPkgLevel reports whether v is a package-level variable.
func isPkgLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}
