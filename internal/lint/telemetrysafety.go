package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// TelemetrySafety returns the analyzer that polices the telemetry layer's
// founding contract: a nil instrument is a no-op, so hot layers attach
// instruments unconditionally and call them unconditionally.
//
// Inside the telemetry package it checks the producer side: every exported
// pointer-receiver method on an instrument type (Counter, Gauge,
// Histogram, Registry) that touches a receiver field must begin with the
// nil-guard idiom (an early return dominated by a receiver == nil test)
// before the first dereference.
//
// Outside the package it checks the consumer side: comparing an instrument
// pointer against nil (or dereferencing one) means a layer has stopped
// trusting the idiom — the guarded call is both wrong-headed and a source
// of drift, because the guard silently diverges from the no-op behavior
// the instruments already implement.
func TelemetrySafety() *Analyzer {
	return &Analyzer{
		Name: "telemetrysafety",
		Doc:  "instrument methods need the nil-guard idiom; callers must not nil-test instruments",
		Run:  runTelemetrySafety,
	}
}

// instrumentTypes are the nil-safe instrument types by name.
var instrumentTypes = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
	"Registry":  true,
}

// callerCheckedTypes are the instrument types callers must never nil-test:
// Registry is excluded because conditionally *creating* a registry
// (telemetry on/off) is the normal configuration pattern.
var callerCheckedTypes = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

const telemetryPkgPath = "dctcpplus/internal/telemetry"

func runTelemetrySafety(p *Package) []Diagnostic {
	if p.Types.Name() == "telemetry" {
		return p.checkInstrumentMethods()
	}
	return p.checkInstrumentCallers()
}

// checkInstrumentMethods enforces the nil-guard idiom on exported pointer
// methods of the instrument types.
func (p *Package) checkInstrumentMethods() []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			recvName, typeName, ptr := receiverInfo(fd)
			if !ptr || !instrumentTypes[typeName] || recvName == "" || recvName == "_" {
				continue
			}
			if pos, bad := p.fieldAccessBeforeNilGuard(fd, recvName); bad {
				out = append(out, p.diag("telemetrysafety", pos.Pos(),
					"%s.%s dereferences the receiver before the nil guard: instrument methods must start with `if %s == nil`",
					typeName, fd.Name.Name, recvName))
			}
		}
	}
	return out
}

// receiverInfo extracts the receiver's name, base type name and whether it
// is a pointer receiver.
func receiverInfo(fd *ast.FuncDecl) (recvName, typeName string, ptr bool) {
	if len(fd.Recv.List) != 1 {
		return "", "", false
	}
	field := fd.Recv.List[0]
	if len(field.Names) == 1 {
		recvName = field.Names[0].Name
	}
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		ptr = true
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		typeName = id.Name
	}
	return recvName, typeName, ptr
}

// fieldAccessBeforeNilGuard scans the method body's top-level statements in
// order. A field access on the receiver (recv.field where field is not a
// method) occurring before an `if recv == nil { return/panic }` guard is a
// violation; accesses after the guard, and methods that only call other
// (themselves guarded) methods, are fine.
func (p *Package) fieldAccessBeforeNilGuard(fd *ast.FuncDecl, recvName string) (ast.Node, bool) {
	type posNode = ast.Node
	guarded := false
	for _, st := range fd.Body.List {
		if !guarded && isNilGuard(st, recvName) {
			guarded = true
			continue
		}
		if guarded {
			return nil, false
		}
		var bad posNode
		ast.Inspect(st, func(n ast.Node) bool {
			if bad != nil {
				return false
			}
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != recvName {
				return true
			}
			if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
				bad = sel
				return false
			}
			return true
		})
		if bad != nil {
			return bad, true
		}
	}
	return nil, false
}

// isNilGuard reports whether st is `if recv == nil { ... }` (possibly with
// extra conjuncts/disjuncts, e.g. `if c == nil || n <= 0`) whose body exits.
func isNilGuard(st ast.Stmt, recvName string) bool {
	ifSt, ok := st.(*ast.IfStmt)
	if !ok || ifSt.Init != nil {
		return false
	}
	if !condTestsNil(ifSt.Cond, recvName) {
		return false
	}
	if len(ifSt.Body.List) == 0 {
		return false
	}
	switch last := ifSt.Body.List[len(ifSt.Body.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		call, ok := last.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		return ok && id.Name == "panic"
	default:
		return false
	}
}

// condTestsNil reports whether cond contains the comparison recv == nil.
func condTestsNil(cond ast.Expr, recvName string) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		x, xo := be.X.(*ast.Ident)
		y, yo := be.Y.(*ast.Ident)
		if xo && yo {
			if (x.Name == recvName && y.Name == "nil") || (y.Name == recvName && x.Name == "nil") {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkInstrumentCallers flags nil-comparisons and explicit dereferences
// of instrument-typed expressions outside the telemetry package.
func (p *Package) checkInstrumentCallers() []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				var operand ast.Expr
				if isNilIdent(n.X) {
					operand = n.Y
				} else if isNilIdent(n.Y) {
					operand = n.X
				} else {
					return true
				}
				if name, ok := p.instrumentPtrType(operand); ok {
					out = append(out, p.diag("telemetrysafety", n.OpPos,
						"nil test on *telemetry.%s: instruments are nil-safe no-ops — call them unconditionally", name))
				}
			case *ast.StarExpr:
				// Only value dereferences: *T in a type position (field and
				// parameter declarations) is the normal way to hold one.
				if tv, ok := p.Info.Types[n]; !ok || !tv.IsValue() {
					return true
				}
				if name, ok := p.instrumentPtrType(n.X); ok {
					out = append(out, p.diag("telemetrysafety", n.Pos(),
						"dereference of *telemetry.%s: copying instrument state bypasses the nil-safe API", name))
				}
			}
			return true
		})
	}
	return out
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// instrumentPtrType reports whether e's type is a pointer to one of the
// telemetry instrument types callers must treat as opaque.
func (p *Package) instrumentPtrType(e ast.Expr) (string, bool) {
	t := p.Info.TypeOf(e)
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !strings.HasSuffix(obj.Pkg().Path(), telemetryPkgPath) {
		return "", false
	}
	return obj.Name(), callerCheckedTypes[obj.Name()]
}
