package lint

// Poollife proves the pooled-packet lifecycle: every path from an alloc
// site (a //state: mint function such as packet.Pool.Get or
// netsim.Host.AllocPacket) must reach exactly one release — a //state:
// kill call (Pool.Put), an ownership transfer into a //state: xfer
// parameter (Host.Send, Port.Enqueue, Link.Propagate), or a sanctioned
// escape inside a //state: sink function (the Port ring slots). On top of
// the shared typestate interpreter (typestate.go) it reports:
//
//   - use-after-free: reading a pooled variable on a path where it was
//     already killed or handed off,
//   - double-free: a kill/xfer of a value that is possibly already gone,
//   - leak-on-path: a function exit reachable while an owned pooled value
//     is still live, a mint result discarded or overwritten, or an owned
//     temporary passed to a parameter that only borrows it,
//   - unsanctioned escape: storing an owned pooled value into a field or
//     container outside a //state: sink function.
//
// The ownership-signature side of the same contract (borrowed parameters
// that consume, returns without a mint contract, malformed //state:
// directives) is reported by Ownxfer, and the handle protocols by
// HandleState.
func Poollife() *Analyzer {
	return &Analyzer{
		Name: "poollife",
		Doc:  "pooled-object lifecycle: use-after-free, double-free and leak-on-path for //state: pooled protocols",
		Run: func(p *Package) []Diagnostic {
			return typestateFindings(p, "poollife")
		},
	}
}
