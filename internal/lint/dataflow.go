package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the intraprocedural dataflow engine behind the unitflow
// analyzer (and the summary store sharedstate and cachekey lean on for
// callee resolution). It computes, per function, the measurement unit each
// local value carries — a taint, seeded by the repository's naming
// convention (qBytes, droppedPkts, cwndSegs) and propagated through
// assignments, short variable declarations, range statements, function
// returns, and call results.
//
// The abstract domain is a four-point lattice over unitClass:
//
//	        unitMixed (⊤: conflicting units met)
//	       /    |     \
//	 unitBytes unitPackets unitSegments
//	       \    |     /
//	        unitUnknown (⊥: no unit information)
//
// joinUnits is the least upper bound. Multiplication, division, and the
// remaining non-additive operators return ⊥ — pkts*MSS is the legal
// conversion form, and clearing the taint there is what keeps conversions
// silent. Addition and subtraction join their operands; a join that lands
// on ⊤ is already a unitsafety/unitflow finding at the operator, so ⊤ never
// propagates a second diagnostic downstream.
//
// Interprocedural lifting: every declared function gets a summary — the
// unit of each result — computed bottom-up over the shared Program call
// graph to a fixed point (the lattice is finite, so iteration terminates;
// a conservative pass cap bounds pathological recursion). A callee whose
// name carries a unit suffix (Link.Bytes) is summarized by its name; an
// unsuffixed callee is summarized by the joined taint of its return
// expressions. Function values and interface calls with no module
// implementation summarize to ⊥ — the same documented hole as the call
// graph itself.
//
// Soundness caveats (documented in DESIGN.md): the engine runs one forward
// pass in source order with strong updates, so taint does not flow around
// loop back edges, and branches are not merged — the textually last write
// before a use wins. Both under- and over-approximation are possible; the
// pass is a lint, not a verifier.

// unitMixed is the lattice top: two different concrete units met.
const unitMixed unitClass = unitSegments + 1

// joinUnits is the least upper bound of the unit lattice.
func joinUnits(a, b unitClass) unitClass {
	switch {
	case a == b:
		return a
	case a == unitUnknown:
		return b
	case b == unitUnknown:
		return a
	default:
		return unitMixed
	}
}

// concreteUnit reports whether u is a single known unit (not ⊥ or ⊤).
func concreteUnit(u unitClass) bool {
	return u == unitBytes || u == unitPackets || u == unitSegments
}

// flowState maps function-local objects to the unit their current value
// carries. Only name-neutral locals are tracked: an identifier whose own
// name resolves a unit (qBytes) is always classified by its name.
type flowState map[types.Object]unitClass

// unitFlow is one function's flow analysis: the state threaded through a
// forward pass over the body, the joined taint of each return expression,
// and an optional diagnostic sink (nil while computing summaries).
type unitFlow struct {
	p    *Package
	prog *Program
	decl *ast.FuncDecl

	state flowState
	rets  []unitClass

	// sink receives unit-mismatch findings; nil runs propagation only.
	sink func(pos token.Pos, format string, args ...any)
}

func newUnitFlow(p *Package, prog *Program, decl *ast.FuncDecl) *unitFlow {
	uf := &unitFlow{p: p, prog: prog, decl: decl, state: make(flowState)}
	if decl.Type.Results != nil {
		uf.rets = make([]unitClass, decl.Type.Results.NumFields())
	}
	return uf
}

// pass runs one forward walk over the function body in source order,
// updating state at every definition and reporting mismatches to sink.
// Nested function literals are walked too (their assignments propagate in
// the enclosing state — closures share their captures), but their return
// statements answer the literal's own signature, not the declaring
// function's, and are excluded from the result-unit checks.
func (uf *unitFlow) pass() {
	var litRanges []posRange
	ast.Inspect(uf.decl.Body, func(node ast.Node) bool {
		if lit, ok := node.(*ast.FuncLit); ok {
			litRanges = append(litRanges, posRange{lit.Pos(), lit.End()})
		}
		return true
	})
	ast.Inspect(uf.decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.AssignStmt:
			uf.assign(node)
		case *ast.ValueSpec:
			uf.valueSpec(node)
		case *ast.RangeStmt:
			uf.rangeStmt(node)
		case *ast.ReturnStmt:
			if !inRanges(litRanges, node.Pos()) {
				uf.returnStmt(node)
			}
		case *ast.CallExpr:
			uf.callArgs(node)
		case *ast.BinaryExpr:
			uf.binary(node)
		case *ast.CompositeLit:
			uf.composite(node)
		}
		return true
	})
}

// exprUnit evaluates the unit an expression's value carries under the
// current state. Non-numeric expressions never carry a unit.
func (uf *unitFlow) exprUnit(e ast.Expr) unitClass {
	if !uf.p.isNumeric(e) {
		return unitUnknown
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return uf.exprUnit(e.X)
	case *ast.Ident:
		if u := unitOfName(e.Name); u != unitUnknown {
			return u
		}
		if obj := uf.objOf(e); obj != nil {
			return uf.state[obj]
		}
		return unitUnknown
	case *ast.SelectorExpr:
		return unitOfName(e.Sel.Name)
	case *ast.IndexExpr:
		// An element inherits its container's unit: reqBytes[i] is bytes.
		return uf.containerUnit(e.X)
	case *ast.CallExpr:
		return uf.callUnit(e)
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB:
			return joinUnits(uf.exprUnit(e.X), uf.exprUnit(e.Y))
		default:
			// *, /, %, shifts, bit ops: the legal conversion forms clear
			// the taint.
			return unitUnknown
		}
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return uf.exprUnit(e.X)
		}
		return unitUnknown
	default:
		return unitUnknown
	}
}

// containerUnit classifies an indexable expression (slice, array, map) by
// name or tracked state, bypassing exprUnit's numeric guard — the container
// itself is not numeric, its elements are.
func (uf *unitFlow) containerUnit(e ast.Expr) unitClass {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return uf.containerUnit(e.X)
	case *ast.Ident:
		if u := unitOfName(e.Name); u != unitUnknown {
			return u
		}
		if obj := uf.objOf(e); obj != nil {
			return uf.state[obj]
		}
	case *ast.SelectorExpr:
		return unitOfName(e.Sel.Name)
	}
	return unitUnknown
}

// callUnit summarizes a call expression: conversions are transparent,
// min/max join their arguments, other builtins clear, and a resolved module
// callee answers by name suffix first, then by its lifted summary.
func (uf *unitFlow) callUnit(call *ast.CallExpr) unitClass {
	if tv, ok := uf.p.Info.Types[call.Fun]; ok && tv.IsType() {
		// A type conversion re-types the value but keeps its unit.
		if len(call.Args) == 1 {
			return uf.exprUnit(call.Args[0])
		}
		return unitUnknown
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := uf.p.Info.Uses[id].(*types.Builtin); isBuiltin {
			if b.Name() == "min" || b.Name() == "max" {
				u := unitUnknown
				for _, a := range call.Args {
					u = joinUnits(u, uf.exprUnit(a))
				}
				return u
			}
			return unitUnknown
		}
	}
	callee, _ := uf.p.calleeOf(call)
	if callee == nil {
		return unitUnknown
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return unitUnknown
	}
	if u := unitOfName(callee.Name()); u != unitUnknown {
		return u
	}
	if sums := uf.prog.unitResultUnits(callee); len(sums) == 1 {
		return sums[0]
	}
	return unitUnknown
}

// objOf resolves an identifier to its object (use or definition).
func (uf *unitFlow) objOf(id *ast.Ident) types.Object {
	if o := uf.p.Info.Uses[id]; o != nil {
		return o
	}
	return uf.p.Info.Defs[id]
}

// declaredUnit is the unit a write destination is committed to by its name
// (identifier or selector field), or ⊥ when the name is neutral or the
// destination is not numeric.
func (uf *unitFlow) declaredUnit(e ast.Expr) unitClass {
	if !uf.p.isNumeric(e) {
		return unitUnknown
	}
	return unitOf(e)
}

// assign handles =, :=, and the additive op-assigns: it checks the incoming
// taint against the destination's declared unit and updates the state of
// name-neutral identifier destinations.
func (uf *unitFlow) assign(as *ast.AssignStmt) {
	switch as.Tok {
	case token.ASSIGN, token.DEFINE, token.ADD_ASSIGN, token.SUB_ASSIGN:
	default:
		// *=, /=, etc. are conversions; clear any tracked taint.
		for _, lhs := range as.Lhs {
			if id, ok := unparen(lhs).(*ast.Ident); ok {
				if obj := uf.objOf(id); obj != nil {
					delete(uf.state, obj)
				}
			}
		}
		return
	}
	if len(as.Lhs) == len(as.Rhs) {
		for i := range as.Lhs {
			uf.flow(as.Lhs[i], uf.exprUnit(as.Rhs[i]), as.Tok)
		}
		return
	}
	// Tuple assignment: a multi-result call or a comma-ok form.
	if len(as.Rhs) != 1 {
		return
	}
	switch rhs := unparen(as.Rhs[0]).(type) {
	case *ast.CallExpr:
		units := uf.tupleUnits(rhs, len(as.Lhs))
		for i := range as.Lhs {
			uf.flow(as.Lhs[i], units[i], as.Tok)
		}
	case *ast.IndexExpr:
		// v, ok := m[k]: the value inherits the map's unit.
		uf.flow(as.Lhs[0], uf.containerUnit(rhs.X), as.Tok)
	}
}

// tupleUnits resolves the per-result units of a multi-result call from the
// callee's lifted summary.
func (uf *unitFlow) tupleUnits(call *ast.CallExpr, n int) []unitClass {
	units := make([]unitClass, n)
	callee, _ := uf.p.calleeOf(call)
	if callee == nil {
		return units
	}
	sums := uf.prog.unitResultUnits(callee)
	copy(units, sums)
	return units
}

// flow records one value flowing into one destination: mismatch check
// against the destination's declared unit, then state update.
func (uf *unitFlow) flow(dst ast.Expr, incoming unitClass, tok token.Token) {
	dst = unparen(dst)
	if du := uf.declaredUnit(dst); concreteUnit(du) && concreteUnit(incoming) && du != incoming {
		uf.report(dst.Pos(), "%s value flows into %s destination %s", incoming, du, renderDst(dst))
	}
	id, ok := dst.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := uf.objOf(id)
	if obj == nil || unitOfName(id.Name) != unitUnknown {
		return // named destinations are classified by name, not flow
	}
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		uf.state[obj] = joinUnits(uf.state[obj], incoming)
	default:
		uf.state[obj] = incoming // strong update
	}
}

// renderDst names an assignment destination for a diagnostic.
func renderDst(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return id.Name + "." + e.Sel.Name
		}
		return e.Sel.Name
	default:
		return "destination"
	}
}

// valueSpec handles var declarations with initializers inside the body.
func (uf *unitFlow) valueSpec(vs *ast.ValueSpec) {
	if len(vs.Values) != len(vs.Names) {
		return
	}
	for i, name := range vs.Names {
		uf.flow(name, uf.exprUnit(vs.Values[i]), token.DEFINE)
	}
}

// rangeStmt propagates the container's unit into the range value variable.
func (uf *unitFlow) rangeStmt(rs *ast.RangeStmt) {
	if rs.Value == nil {
		return
	}
	uf.flow(rs.Value, uf.containerUnit(rs.X), token.DEFINE)
}

// returnStmt joins each returned expression's taint into the summary and
// checks it against the declared unit of the result — the named result's
// name, or the function's own name for a single unnamed result.
func (uf *unitFlow) returnStmt(rs *ast.ReturnStmt) {
	if uf.decl.Type.Results == nil || len(rs.Results) != len(uf.rets) {
		return // no results, bare return with named results, or a tuple-call return
	}
	results := uf.decl.Type.Results.List
	for i, res := range rs.Results {
		ru := uf.exprUnit(res)
		uf.rets[i] = joinUnits(uf.rets[i], ru)
		du := uf.resultDeclaredUnit(results, i)
		if concreteUnit(du) && concreteUnit(ru) && du != ru {
			uf.report(res.Pos(), "%s value returned where %s declares a %s result",
				ru, uf.decl.Name.Name, du)
		}
	}
}

// resultDeclaredUnit is the unit the i-th result is committed to by its
// name, falling back to the function name for a single unnamed result.
func (uf *unitFlow) resultDeclaredUnit(results []*ast.Field, i int) unitClass {
	idx := 0
	for _, f := range results {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		if i < idx+n {
			if len(f.Names) > 0 {
				return unitOfName(f.Names[i-idx].Name)
			}
			if len(uf.rets) == 1 {
				return unitOfName(uf.decl.Name.Name)
			}
			return unitUnknown
		}
		idx += n
	}
	return unitUnknown
}

// callArgs checks each argument's taint against the unit committed by the
// callee's parameter name (module functions with declarations only).
func (uf *unitFlow) callArgs(call *ast.CallExpr) {
	if uf.sink == nil {
		return
	}
	if tv, ok := uf.p.Info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	callee, _ := uf.p.calleeOf(call)
	if callee == nil {
		return
	}
	node := uf.prog.nodes[callee]
	if node == nil || call.Ellipsis.IsValid() {
		return
	}
	params := flattenParams(node.pkg, node.decl.Type.Params)
	sig, _ := callee.Type().(*types.Signature)
	for i, arg := range call.Args {
		if i >= len(params) {
			break
		}
		if sig != nil && sig.Variadic() && i >= sig.Params().Len()-1 {
			break // unit-per-name does not extend into a variadic tail
		}
		p := params[i]
		if p.name == "" || !isNumericType(p.typ) {
			continue
		}
		pu := unitOfName(p.name)
		au := uf.exprUnit(arg)
		if concreteUnit(pu) && concreteUnit(au) && pu != au {
			uf.report(arg.Pos(), "%s value passed to %s parameter %q of %s",
				au, pu, p.name, callee.Name())
		}
	}
}

// param pairs a declared parameter name with its type.
type param struct {
	name string
	typ  types.Type
}

// flattenParams expands a field list into one entry per declared name,
// resolving types through the declaring package's type info.
func flattenParams(pkg *Package, fields *ast.FieldList) []param {
	if fields == nil {
		return nil
	}
	var out []param
	for _, f := range fields.List {
		if len(f.Names) == 0 {
			out = append(out, param{})
			continue
		}
		for _, n := range f.Names {
			var t types.Type
			if v, ok := pkg.Info.Defs[n].(*types.Var); ok {
				t = v.Type()
			}
			out = append(out, param{name: n.Name, typ: t})
		}
	}
	return out
}

// isNumericType reports whether t (possibly nil) is numeric.
func isNumericType(t types.Type) bool {
	if t == nil {
		return true // unresolved: assume numeric rather than silence a check
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

// binary flags additive/comparison operators whose operands' *flow* units
// conflict. Operand pairs that both resolve syntactically by name are
// unitsafety's domain and are skipped here, so no site is reported twice.
func (uf *unitFlow) binary(be *ast.BinaryExpr) {
	if uf.sink == nil || !mixingOps[be.Op] {
		return
	}
	if !uf.p.isNumeric(be.X) || !uf.p.isNumeric(be.Y) {
		return
	}
	if unitOf(be.X) != unitUnknown && unitOf(be.Y) != unitUnknown {
		return
	}
	tx, ty := uf.exprUnit(be.X), uf.exprUnit(be.Y)
	if concreteUnit(tx) && concreteUnit(ty) && tx != ty {
		uf.report(be.OpPos, "operator %s mixes flow units: left operand carries %s, right operand carries %s",
			be.Op, tx, ty)
	}
}

// composite checks keyed struct literals: the value's taint against the
// unit committed by the field name.
func (uf *unitFlow) composite(cl *ast.CompositeLit) {
	t := uf.p.Info.TypeOf(cl)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Struct); !ok {
		return
	}
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		fv, ok := uf.p.Info.Uses[key].(*types.Var)
		if !ok || !isNumericType(fv.Type()) {
			continue
		}
		fu := unitOfName(key.Name)
		vu := uf.exprUnit(kv.Value)
		if concreteUnit(fu) && concreteUnit(vu) && fu != vu {
			uf.report(kv.Value.Pos(), "%s value flows into %s field %s", vu, fu, key.Name)
		}
	}
}

func (uf *unitFlow) report(pos token.Pos, format string, args ...any) {
	if uf.sink != nil {
		uf.sink(pos, format, args...)
	}
}

// unitResultUnits returns fn's lifted summary: the unit of each result, ⊥
// where nothing is known. Safe to call during summary construction — an
// in-progress module answers from the current (monotonically growing)
// table.
func (prog *Program) unitResultUnits(fn *types.Func) []unitClass {
	if prog.unitSummaries == nil {
		return nil
	}
	return prog.unitSummaries[fn]
}

// summaryPassCap bounds the interprocedural fixed-point iteration. The
// lattice has height 2 per result, so real modules converge in two or
// three passes; the cap only guards degenerate recursion.
const summaryPassCap = 6

// buildUnitSummaries computes the per-function result-unit table over the
// whole program to a fixed point, in deterministic node order.
func (prog *Program) buildUnitSummaries() {
	prog.build()
	if prog.unitSummaries != nil {
		return
	}
	prog.unitSummaries = make(map[*types.Func][]unitClass)
	for pass := 0; pass < summaryPassCap; pass++ {
		changed := false
		for _, n := range prog.order {
			sum := prog.summarize(n)
			if !equalUnits(prog.unitSummaries[n.fn], sum) {
				prog.unitSummaries[n.fn] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// summarize computes one function's result units: the declared name wins
// (a result called nBytes or a single-result function called Bytes is a
// byte contract regardless of the body), otherwise the joined taint of the
// return expressions.
func (prog *Program) summarize(n *funcNode) []unitClass {
	if n.decl.Type.Results == nil || n.decl.Type.Results.NumFields() == 0 {
		return nil
	}
	uf := newUnitFlow(n.pkg, prog, n.decl)
	uf.pass()
	out := make([]unitClass, len(uf.rets))
	for i := range out {
		if du := uf.resultDeclaredUnit(n.decl.Type.Results.List, i); du != unitUnknown {
			out[i] = du
			continue
		}
		if concreteUnit(uf.rets[i]) {
			out[i] = uf.rets[i]
		}
	}
	return out
}

func equalUnits(a, b []unitClass) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
