package lint

import "testing"

func TestTimeNamed(t *testing.T) {
	cases := []struct {
		name string
		want bool
	}{
		{"WallNs", true},
		{"slow_time", true},
		{"FCTms", true}, // acronym run followed by a lowercase unit
		{"SimTimeNs", true},
		{"timeout", true},
		{"Deadline", true},
		{"rtt", true},
		{"Elapsed", true},
		{"Bins", false},     // 'ns' without a word boundary
		{"Timeouts", false}, // plural counter, not a duration
		{"GoodputMbps", false},
		{"Rooms", false}, // 'ms' preceded by lowercase
		{"Flows", false},
		{"Atoms", false},
	}
	for _, c := range cases {
		if got := timeNamed(c.name); got != c.want {
			t.Errorf("timeNamed(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestUnitOfNames(t *testing.T) {
	cases := []struct {
		name string
		want unitClass
	}{
		{"qBytes", unitBytes},
		{"ReqBytes", unitBytes},
		{"droppedPkts", unitPackets},
		{"MarkedPackets", unitPackets},
		{"minCwndSegs", unitSegments},
		{"mss", unitSegments},
		{"total", unitUnknown},
		{"kilobytesque", unitUnknown}, // suffix mid-word, no boundary
	}
	for _, c := range cases {
		if got := unitOfName(c.name); got != c.want {
			t.Errorf("unitOfName(%q) = %v, want %v", c.name, got, c.want)
		}
	}
}
