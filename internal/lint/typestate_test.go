package lint

import (
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// newTestProto builds a two-state pooled protocol for pure-lattice tests.
func newTestProto() *protocol {
	return &protocol{name: "Buf", kind: "pooled", states: []string{"owned", "freed"}}
}

// TestJoinEnvMergeAtJoin pins the merge semantics at a control-flow join:
// state sets union, ownership is sticky, and a variable tracked on only
// one incoming path keeps its obligation (a leak on that path is still a
// leak).
func TestJoinEnvMergeAtJoin(t *testing.T) {
	pr := newTestProto()
	x := types.NewVar(token.NoPos, nil, "x", types.Typ[types.Int])
	y := types.NewVar(token.NoPos, nil, "y", types.Typ[types.Int])
	a := tsEnv{x: tsVal{proto: pr, states: pr.bit(0), owned: true}}
	b := tsEnv{
		x: tsVal{proto: pr, states: pr.bit(1), owned: false, tainted: true},
		y: tsVal{proto: pr, states: pr.bit(0), owned: true},
	}

	j := joinEnv(a, b)
	if got, want := j[x].states, pr.bit(0)|pr.bit(1); got != want {
		t.Errorf("joined states of x = %s, want %s", pr.setString(got), pr.setString(want))
	}
	if !j[x].owned {
		t.Error("ownership must be sticky under join: owned on one path means owned after the join")
	}
	if !j[x].tainted {
		t.Error("taint must be sticky under join, or one use-after-free would cascade into exit-leak noise")
	}
	yv, ok := j[y]
	if !ok {
		t.Fatal("variable tracked on only one path was dropped at the join; its leak obligation must survive")
	}
	if !yv.owned || yv.states != pr.bit(0) {
		t.Errorf("one-sided variable changed at join: %+v", yv)
	}

	if !equalEnv(j, joinEnv(b, a)) {
		t.Error("join is not commutative")
	}
	if equalEnv(a, j) {
		t.Error("join of strictly-larger input compared equal; the loop fixpoint would terminate early")
	}
	if !equalEnv(j, joinEnv(j, a)) {
		t.Error("re-joining an absorbed input changed the environment; the fixpoint would never settle")
	}
	if !equalEnv(a, joinEnv(a, nil)) || !equalEnv(a, joinEnv(nil, a)) {
		t.Error("nil must be the identity of join")
	}
}

// fixtureFindingLine locates the 1-based line of a unique marker in a
// fixture source file, so the tests below don't hard-code line numbers.
func fixtureFindingLine(t *testing.T, fixture, file, marker string) int {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", "src", fixture, file))
	if err != nil {
		t.Fatal(err)
	}
	line := 0
	for i, ln := range strings.Split(string(data), "\n") {
		if strings.Contains(ln, marker) {
			if line != 0 {
				t.Fatalf("marker %q is not unique in %s", marker, file)
			}
			line = i + 1
		}
	}
	if line == 0 {
		t.Fatalf("marker %q not found in %s", marker, file)
	}
	return line
}

func loadFixturePkg(t *testing.T, name string) *Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("internal/lint/testdata/src/" + name)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	return pkgs[0]
}

// TestMergeAtJoinFlagsFreedUse drives the interpreter end to end through
// MergeFreedUse in the poollife fixture: the read after the conditional
// free is only reachable as a may-finding through the branch join, while
// BothFree (release on every path) must stay silent.
func TestMergeAtJoinFlagsFreedUse(t *testing.T) {
	p := loadFixturePkg(t, "poollife")
	diags := typestateFindings(p, "poollife")
	wantLine := fixtureFindingLine(t, "poollife", "poollife.go", "n := b.n")
	found := false
	for _, d := range diags {
		if d.Line == wantLine && strings.Contains(d.Message, "use of 'b' after it was freed") {
			found = true
		}
		if strings.Contains(d.Message, "BothFree") {
			t.Errorf("release-on-every-path function flagged: %s", d.Message)
		}
	}
	if !found {
		t.Errorf("no use-after-free reported at the post-join read (line %d); findings: %v", wantLine, diags)
	}
}

// TestLoopWideningFindsSecondPassOverwrite pins the loop fixpoint: the
// re-mint inside LoopOverwrite only overwrites a still-owned value on the
// second pass, once the back edge has joined the first iteration's state
// back into the loop head.
func TestLoopWideningFindsSecondPassOverwrite(t *testing.T) {
	p := loadFixturePkg(t, "poollife")
	diags := typestateFindings(p, "poollife")
	wantLine := fixtureFindingLine(t, "poollife", "poollife.go", "b = p.Get()")
	for _, d := range diags {
		if d.Line == wantLine && strings.Contains(d.Message, "assignment overwrites 'b'") {
			return
		}
	}
	t.Errorf("loop fixpoint missed the second-pass overwrite leak at line %d; findings: %v", wantLine, diags)
}
