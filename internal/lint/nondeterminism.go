package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Nondeterminism returns the analyzer that guards the simulator's core
// property: a run is a pure function of configuration and seed. It flags
//
//  1. wall-clock reads (time.Now and friends) outside the built-in
//     allowlist — run metadata in cmd/ binaries and the telemetry
//     manifest's CreatedAt stamp;
//  2. any import of math/rand or math/rand/v2: every stochastic decision
//     must draw from sim.RNG, whose sequence is pinned by this repository
//     rather than by the Go release;
//  3. iteration over a map whose body is order-sensitive (Go randomizes
//     map range order per run) — the deterministic idioms (collect keys
//     then sort, commutative integer accumulation, keyed writes into
//     another map) pass;
//  4. goroutine spawns inside simulation-scheduled packages (anything
//     importing internal/sim): the event loop is single-threaded by
//     design, and concurrency inside it would make event interleaving
//     scheduler-dependent. internal/exp is exempted — its parallelFor
//     runs whole, isolated simulations per goroutine.
func Nondeterminism() *Analyzer {
	return &Analyzer{
		Name: "nondeterminism",
		Doc:  "forbid wall-clock reads, math/rand, order-sensitive map iteration, and goroutines in sim-scheduled code",
		Run:  runNondeterminism,
	}
}

// wallClockFuncs are the time-package functions that observe or depend on
// the wall clock. Pure constructors/formatters (time.Duration arithmetic,
// time.Unix on a fixed stamp) stay legal: only reading "now" breaks replay.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// wallClockAllowed reports whether file may read the wall clock: command
// binaries (run metadata, progress reporting), the telemetry manifest
// (CreatedAt is wall-clock by definition and excluded from determinism
// diffs), and the sweep runner (per-job wall timings are reporting
// metadata; they never feed back into simulation state).
func wallClockAllowed(file string) bool {
	file = strings.ReplaceAll(file, "\\", "/")
	return strings.Contains(file, "/cmd/") ||
		strings.HasSuffix(file, "internal/telemetry/manifest.go") ||
		strings.HasSuffix(file, "internal/sweep/runner.go")
}

// goroutineAllowed reports whether pkg may spawn goroutines despite
// importing the sim engine. internal/exp's sweep driver and the sweep
// runner parallelize across whole simulations (each goroutine owns a
// private scheduler), so event interleaving inside any one run is
// untouched.
func goroutineAllowed(pkg string) bool {
	return pkg == "dctcpplus/internal/exp" ||
		pkg == "dctcpplus/internal/sweep"
}

func runNondeterminism(p *Package) []Diagnostic {
	var out []Diagnostic
	simScheduled := p.importsSim() && !goroutineAllowed(p.ImportPath)

	for _, f := range p.Files {
		file := p.Fset.Position(f.Pos()).Filename

		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				out = append(out, p.diag("nondeterminism", imp.Pos(),
					"import of %s: use sim.RNG, whose sequence is pinned by this repository", path))
			}
		}

		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || !wallClockFuncs[sel.Sel.Name] {
					return true
				}
				if p.isPkgIdent(sel.X, "time") && !wallClockAllowed(file) {
					out = append(out, p.diag("nondeterminism", n.Pos(),
						"wall-clock read time.%s in simulation code: use the sim.Scheduler clock", sel.Sel.Name))
				}
			case *ast.GoStmt:
				if simScheduled {
					out = append(out, p.diag("nondeterminism", n.Pos(),
						"goroutine spawn in sim-scheduled package %s: the event loop is single-threaded by design", p.ImportPath))
				}
			case *ast.RangeStmt:
				out = append(out, p.checkMapRange(f, n)...)
			}
			return true
		})
	}
	return out
}

// checkMapRange flags a range over a map unless every statement in the
// loop body is order-insensitive.
func (p *Package) checkMapRange(file *ast.File, rs *ast.RangeStmt) []Diagnostic {
	t := p.Info.TypeOf(rs.X)
	if t == nil {
		return nil
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return nil
	}
	ins := mapRangeInspector{
		p:       p,
		keyObj:  p.rangeVarObj(rs.Key),
		valObj:  p.rangeVarObj(rs.Value),
		fn:      enclosingFunc(file, rs.Pos()),
		loopPos: rs.Pos(),
	}
	for _, st := range rs.Body.List {
		if !ins.orderInsensitive(st) {
			return []Diagnostic{p.diag("nondeterminism", rs.Pos(),
				"map iteration order is randomized: this loop body is order-sensitive "+
					"(collect and sort the keys, or restrict the body to commutative updates)")}
		}
	}
	return nil
}

// rangeVarObj resolves the object of a range variable expression (Key or
// Value), or nil.
func (p *Package) rangeVarObj(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := p.Info.Defs[id]; obj != nil {
		return obj
	}
	return p.Info.Uses[id]
}

// enclosingFunc returns the innermost function declaration or literal body
// containing pos, for the sorted-afterwards check.
func enclosingFunc(file *ast.File, pos token.Pos) ast.Node {
	var fn ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if n.Pos() <= pos && pos < n.End() {
				fn = n // keep innermost: later matches are nested deeper
			}
		}
		return true
	})
	return fn
}

// mapRangeInspector classifies loop-body statements of a map range as
// order-insensitive or not.
type mapRangeInspector struct {
	p       *Package
	keyObj  types.Object
	valObj  types.Object
	fn      ast.Node
	loopPos token.Pos
}

// orderInsensitive reports whether executing st for the map's entries in
// any order yields identical state.
func (m *mapRangeInspector) orderInsensitive(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.AssignStmt:
		return m.assignInsensitive(st)
	case *ast.IncDecStmt:
		// n++ / n-- on an integer accumulator commutes exactly.
		return m.isIntLvalue(st.X)
	case *ast.IfStmt:
		if st.Init != nil || !m.pureExpr(st.Cond) {
			return false
		}
		for _, s := range st.Body.List {
			if !m.orderInsensitive(s) {
				return false
			}
		}
		if st.Else != nil {
			els, ok := st.Else.(*ast.BlockStmt)
			if !ok {
				return false
			}
			for _, s := range els.List {
				if !m.orderInsensitive(s) {
					return false
				}
			}
		}
		return true
	case *ast.BranchStmt:
		return st.Tok == token.CONTINUE
	case *ast.ExprStmt:
		// delete(other, k): keyed map ops commute across distinct keys.
		if call, ok := st.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				return true
			}
		}
		return false
	default:
		return false
	}
}

// assignInsensitive classifies assignments:
//
//   - m2[k] = v / m2[k] op= v where k is the range key: each map entry is
//     written exactly once, so order cannot matter;
//   - x += e / x -= e on integer accumulators: exact commutative update
//     (float accumulation is order-sensitive in IEEE arithmetic);
//   - s = append(s, expr): allowed only when s is sorted later in the same
//     function — the collect-then-sort idiom.
func (m *mapRangeInspector) assignInsensitive(st *ast.AssignStmt) bool {
	if len(st.Lhs) != 1 || len(st.Rhs) != 1 {
		return false
	}
	lhs, rhs := st.Lhs[0], st.Rhs[0]

	if idx, ok := lhs.(*ast.IndexExpr); ok {
		if id, ok := idx.Index.(*ast.Ident); ok && m.keyObj != nil {
			obj := m.p.Info.Uses[id]
			if obj == m.keyObj {
				if _, isMap := m.p.Info.TypeOf(idx.X).Underlying().(*types.Map); isMap {
					return m.pureExpr(rhs)
				}
			}
		}
	}

	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return m.isIntLvalue(lhs) && m.pureExpr(rhs)
	case token.ASSIGN:
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" || len(call.Args) < 2 {
			return false
		}
		dst, ok := lhs.(*ast.Ident)
		if !ok {
			return false
		}
		src, ok := call.Args[0].(*ast.Ident)
		if !ok || src.Name != dst.Name {
			return false
		}
		obj := m.p.Info.Uses[dst]
		if obj == nil {
			obj = m.p.Info.Defs[dst]
		}
		return obj != nil && m.sortedLater(obj)
	}
	return false
}

// isIntLvalue reports whether e is an integer-typed assignable expression.
func (m *mapRangeInspector) isIntLvalue(e ast.Expr) bool {
	t := m.p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// pureExpr conservatively decides whether evaluating e has no side effects
// and no order dependence: identifiers, selectors, literals, index
// expressions, conversions and arithmetic over those. Any call is impure.
func (m *mapRangeInspector) pureExpr(e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			// Conversions (T(x)) and len/cap are fine; other calls are not.
			switch fn := call.Fun.(type) {
			case *ast.Ident:
				if fn.Name == "len" || fn.Name == "cap" {
					return true
				}
				if _, isType := m.p.Info.Types[fn]; isType && m.p.Info.Types[fn].IsType() {
					return true
				}
			case *ast.SelectorExpr:
				if tv, ok := m.p.Info.Types[fn]; ok && tv.IsType() {
					return true
				}
			}
			pure = false
			return false
		}
		return true
	})
	return pure
}

// sortedLater reports whether the slice object is passed to a sort call
// (sort.Ints, sort.Strings, sort.Slice, sort.Sort over a wrapper that
// mentions it, slices.Sort*) somewhere after the loop in the enclosing
// function.
func (m *mapRangeInspector) sortedLater(slice types.Object) bool {
	if m.fn == nil {
		return false
	}
	found := false
	ast.Inspect(m.fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < m.loopPos || found {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !m.p.isPkgIdent(sel.X, "sort") && !m.p.isPkgIdent(sel.X, "slices") {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && m.p.Info.Uses[id] == slice {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
