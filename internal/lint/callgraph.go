package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Program is the whole-module call graph shared by every package a Loader
// produces. It exists for the reachability-based analyzers (hotalloc,
// callpurity): a per-packet budget is a property of everything a hot
// function can reach, not of one function body, so the analysis unit has to
// be the module, even though diagnostics are still reported per package.
//
// Construction and its approximations:
//
//   - Nodes are the functions and methods declared (with bodies) in module
//     packages. Function literals have no node of their own: a closure's
//     calls and allocations are attributed to the declaring function, which
//     is where the budget is owed.
//   - Static calls and concrete method calls resolve exactly, via the
//     type-checker's Uses and Selections maps.
//   - Interface method calls are over-approximated by the declared method:
//     an edge is added to every module method with the same name and an
//     identical signature whose receiver type implements the interface.
//     This is sound for the module (no reachable implementation is missed)
//     and tight in practice, because the simulator's interfaces
//     (CongestionControl, FlowHandler, Node) have few implementations.
//   - Calls through plain function values — scheduler callbacks, OnDrop /
//     OnComplete style hooks — are NOT expanded. This is the documented
//     hole in the approximation: observability hooks are allowed to
//     allocate, and the functions those callbacks invoke are annotated as
//     hot roots themselves (Port.transmitDone, Link.deliver, Sender.onRTO),
//     so the per-packet machinery stays covered.
//
// Hot roots are declared in source with a "//hot:path" line in a function's
// doc comment. Reachability is a breadth-first closure from the roots over
// the edge set above; each reached function remembers every root that
// reaches it (in root declaration order), so diagnostics can say why a
// function is subject to hot-path rules — and a callee shared by two roots
// is reported once, with both roots as witnesses, instead of once per root.
type Program struct {
	modPath string
	pkgs    []*Package
	dirty   bool

	nodes     map[*types.Func]*funcNode
	order     []*funcNode            // nodes in deterministic declaration order
	byName    map[string][]*funcNode // methods indexed by name, for interface expansion
	hotFrom   map[*types.Func][]*types.Func
	sweepFrom map[*types.Func][]*types.Func
	terminals map[*types.Func]bool

	// unitSummaries caches the per-function result units the unitflow
	// dataflow engine lifts through this graph (see dataflow.go). Nil until
	// the first unitflow query; invalidated whenever the graph rebuilds.
	unitSummaries map[*types.Func][]unitClass

	// contractTable caches the parsed //inv: contracts (contracts.go) and
	// intervalSummaries the per-function result intervals the interval
	// engine lifts through this graph (interval.go). intervalResults
	// caches the per-package interpreter run shared by the rangeproof,
	// overflow and checkcover analyzers. All nil until first query;
	// invalidated whenever the graph rebuilds.
	contractTable     *contractTable
	intervalSummaries map[*types.Func][]ival
	intervalResults   map[*Package]*intervalAnalysis

	// stateTable caches the parsed //state: protocols and function
	// contracts (typestate.go); typestateResults caches the per-package
	// typestate interpreter run shared by the poollife, handlestate and
	// ownxfer analyzers. Same lifecycle as the interval caches above.
	stateTable       *stateTable
	typestateResults map[*Package]*typestateAnalysis
}

// funcNode is one declared function in the call graph.
type funcNode struct {
	fn    *types.Func
	decl  *ast.FuncDecl
	pkg   *Package
	hot   bool // carries the //hot:path annotation
	sweep bool // carries the //sweep:job annotation

	edges []callEdge
}

// callEdge is one resolved call site.
type callEdge struct {
	callee *types.Func
	pos    token.Pos
}

// newProgram creates an empty call graph for the given module.
func newProgram(modPath string) *Program {
	return &Program{modPath: modPath}
}

// add registers a loaded module package. The graph is rebuilt lazily on the
// next query, so load order does not matter.
func (prog *Program) add(p *Package) {
	prog.pkgs = append(prog.pkgs, p)
	prog.dirty = true
}

// hotAnnotated reports whether the declaration's doc comment carries a
// //hot:path line.
func hotAnnotated(decl *ast.FuncDecl) bool {
	return docAnnotated(decl, "//hot:path")
}

// sweepAnnotated reports whether the declaration's doc comment carries a
// //sweep:job line, marking it as a worker-executed sweep job body.
func sweepAnnotated(decl *ast.FuncDecl) bool {
	return docAnnotated(decl, "//sweep:job")
}

func docAnnotated(decl *ast.FuncDecl, marker string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

// endsInPanic reports whether a statement list unconditionally finishes in
// a panic: its last statement is a panic(...) call. This is the shape of
// the module's terminal helpers (check.Failf), whose whole job is to build
// a rich message and die.
func endsInPanic(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	expr, ok := body.List[len(body.List)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := expr.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// unparen strips parentheses from an expression.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// build (re)constructs nodes, edges and the hot-reachability closure. It is
// cheap relative to type-checking, so a full rebuild on any package-set
// change keeps the logic simple.
func (prog *Program) build() {
	if !prog.dirty {
		return
	}
	prog.dirty = false
	prog.nodes = make(map[*types.Func]*funcNode)
	prog.order = prog.order[:0]
	prog.byName = make(map[string][]*funcNode)
	prog.hotFrom = make(map[*types.Func][]*types.Func)
	prog.sweepFrom = make(map[*types.Func][]*types.Func)
	prog.terminals = make(map[*types.Func]bool)
	prog.unitSummaries = nil
	prog.contractTable = nil
	prog.intervalSummaries = nil
	prog.intervalResults = nil
	prog.stateTable = nil
	prog.typestateResults = nil

	// Pass 1: one node per declared function with a body.
	for _, p := range prog.pkgs {
		for _, f := range p.Files {
			for _, d := range f.Decls {
				decl, ok := d.(*ast.FuncDecl)
				if !ok || decl.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[decl.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &funcNode{fn: fn, decl: decl, pkg: p, hot: hotAnnotated(decl), sweep: sweepAnnotated(decl)}
				prog.nodes[fn] = n
				prog.order = append(prog.order, n)
				if decl.Recv != nil {
					prog.byName[fn.Name()] = append(prog.byName[fn.Name()], n)
				}
				if endsInPanic(decl.Body) {
					prog.terminals[fn] = true
				}
			}
		}
	}

	// Pass 2: resolve call sites. Interface calls expand to every module
	// method with the same name, an identical signature, and an
	// implementing receiver. Iteration runs over the ordered node list, not
	// the map, so edge order — and through it the BFS witness roots below —
	// is identical on every run.
	for _, n := range prog.order {
		n.edges = prog.collectEdges(n)
	}

	// Pass 3: breadth-first closures from the annotation roots, remembering
	// every witness root per reached function — one closure per annotation
	// (//hot:path and //sweep:job taints are independent rule sets).
	prog.closure(prog.hotFrom, func(n *funcNode) bool { return n.hot })
	prog.closure(prog.sweepFrom, func(n *funcNode) bool { return n.sweep })
}

// closure runs one breadth-first reachability pass per root (in root
// declaration order), appending that root to the witness list of every
// function it reaches. The per-root pass — rather than a single multi-source
// BFS — is what lets a function shared by two roots list both of them.
func (prog *Program) closure(from map[*types.Func][]*types.Func, isRoot func(*funcNode) bool) {
	for _, r := range prog.order {
		if !isRoot(r) {
			continue
		}
		seen := map[*types.Func]bool{r.fn: true}
		queue := []*types.Func{r.fn}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			from[fn] = append(from[fn], r.fn)
			n := prog.nodes[fn]
			if n == nil {
				continue
			}
			for _, e := range n.edges {
				if !seen[e.callee] {
					seen[e.callee] = true
					queue = append(queue, e.callee)
				}
			}
		}
	}
}

// collectEdges resolves every call expression in n's body (closures
// included — they belong to the declaring function).
func (prog *Program) collectEdges(n *funcNode) []callEdge {
	var edges []callEdge
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, iface := n.pkg.calleeOf(call)
		if callee == nil {
			return true // builtin, conversion, or dynamic function value
		}
		if !iface {
			edges = append(edges, callEdge{callee: callee, pos: call.Pos()})
			return true
		}
		for _, impl := range prog.implementations(callee) {
			edges = append(edges, callEdge{callee: impl.fn, pos: call.Pos()})
		}
		return true
	})
	return edges
}

// calleeOf resolves the called function object of a call expression and
// whether the call dispatches through an interface. A nil result means the
// call is a builtin, a type conversion, or a dynamic call through a plain
// function value (the documented call-graph hole).
func (p *Package) calleeOf(call *ast.CallExpr) (callee *types.Func, iface bool) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn, false
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil, false
			}
			_, onIface := sel.Recv().Underlying().(*types.Interface)
			return fn, onIface && sel.Kind() == types.MethodVal
		}
		// Package-qualified call (pkg.Fn) has no Selection entry.
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn, false
	}
	return nil, false
}

// implementations returns the module methods an interface method call can
// dispatch to: same name, identical signature, receiver implements the
// interface.
func (prog *Program) implementations(m *types.Func) []*funcNode {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*funcNode
	for _, cand := range prog.byName[m.Name()] {
		csig, ok := cand.fn.Type().(*types.Signature)
		if !ok || csig.Recv() == nil {
			continue
		}
		if !types.Identical(csig, sig) { // receivers are ignored in signature identity
			continue
		}
		recv := csig.Recv().Type()
		// The pointer method set is a superset of the value method set, so
		// testing *T (or T itself when already a pointer) covers both.
		if _, isPtr := recv.(*types.Pointer); !isPtr {
			recv = types.NewPointer(recv)
		}
		if types.Implements(recv, iface) {
			out = append(out, cand)
		}
	}
	return out
}

// hotReachable reports whether fn is statically reachable from a //hot:path
// root, and if so returns the first such root as the provenance witness.
func (prog *Program) hotReachable(fn *types.Func) (*types.Func, bool) {
	prog.build()
	roots := prog.hotFrom[fn]
	if len(roots) == 0 {
		return nil, false
	}
	return roots[0], true
}

// hotRootsOf returns every //hot:path root reaching fn, in root declaration
// order (empty when fn is not hot-reachable).
func (prog *Program) hotRootsOf(fn *types.Func) []*types.Func {
	prog.build()
	return prog.hotFrom[fn]
}

// sweepRootsOf returns every //sweep:job root reaching fn, in root
// declaration order.
func (prog *Program) sweepRootsOf(fn *types.Func) []*types.Func {
	prog.build()
	return prog.sweepFrom[fn]
}

// isTerminal reports whether fn is a never-returning panic helper. Call
// sites of terminal functions (and the arguments of panic itself) are
// exempt from hot-path allocation rules: the program is already dying, and
// a rich diagnostic there is worth any allocation.
func (prog *Program) isTerminal(fn *types.Func) bool {
	prog.build()
	return prog.terminals[fn]
}

// hotNodesIn returns the current package's hot-reachable function nodes in
// source order, paired with their witness roots.
func (prog *Program) hotNodesIn(p *Package) []*funcNode {
	prog.build()
	return prog.nodesIn(p, prog.hotFrom)
}

// sweepReachable reports whether fn is statically reachable from a
// //sweep:job root, returning the first such root as the provenance witness.
func (prog *Program) sweepReachable(fn *types.Func) (*types.Func, bool) {
	prog.build()
	roots := prog.sweepFrom[fn]
	if len(roots) == 0 {
		return nil, false
	}
	return roots[0], true
}

// sweepNodesIn returns the current package's sweep-reachable function
// nodes in source order.
func (prog *Program) sweepNodesIn(p *Package) []*funcNode {
	prog.build()
	return prog.nodesIn(p, prog.sweepFrom)
}

func (prog *Program) nodesIn(p *Package, from map[*types.Func][]*types.Func) []*funcNode {
	var out []*funcNode
	for _, n := range prog.order {
		if n.pkg != p {
			continue
		}
		if len(from[n.fn]) > 0 {
			out = append(out, n)
		}
	}
	return out
}

// rootLabel renders the provenance suffix for hot-path diagnostics, listing
// every root that reaches fn.
func rootLabel(fn *types.Func, roots []*types.Func) string {
	return provenanceLabel("//hot:path", fn, roots)
}

// sweepRootLabel renders the provenance suffix for sweep-taint diagnostics.
func sweepRootLabel(fn *types.Func, roots []*types.Func) string {
	return provenanceLabel("//sweep:job", fn, roots)
}

// provenanceLabel renders a witness suffix: a root names itself, a function
// reached by one root names it, and a function shared by several roots
// lists all of them so the single deduplicated diagnostic still carries the
// full provenance.
func provenanceLabel(marker string, fn *types.Func, roots []*types.Func) string {
	for _, r := range roots {
		if r == fn {
			return "(a " + marker + " root)"
		}
	}
	switch len(roots) {
	case 0:
		return "(a " + marker + " root)"
	case 1:
		return "(reachable from " + marker + " root " + roots[0].FullName() + ")"
	}
	names := make([]string, len(roots))
	for i, r := range roots {
		names[i] = r.FullName()
	}
	return "(reachable from " + marker + " roots " + strings.Join(names, ", ") + ")"
}
