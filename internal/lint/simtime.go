package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SimTime returns the analyzer enforcing sim-time discipline: in any
// package where the sim.Time/sim.Duration types are available (i.e. that
// imports internal/sim), exported API surface — function parameters,
// results, and exported struct fields — must not carry durations or
// instants as raw int64/float64. Raw numbers with a time-suggesting name
// crossing a package boundary are exactly how wall/virtual time and
// mismatched units leak between layers.
//
// Packages that do not import internal/sim (internal/stats is deliberately
// simulator-agnostic, operating on plain float64 samples) are out of
// scope. Serialization boundaries (JSON schema fields like a manifest's
// wall_ns) declare themselves with an inline //lint:allow directive.
func SimTime() *Analyzer {
	return &Analyzer{
		Name: "simtime",
		Doc:  "no raw int64/float64 durations on exported boundaries where sim time types exist",
		Run:  runSimTime,
	}
}

// timeSuffixes are the name endings that mark an identifier as carrying a
// duration or instant. Matching is case-insensitive on the whole final
// word, so counters like Timeouts (plural) do not match timeout.
var timeSuffixes = []string{
	"ns", "nanos", "us", "micros", "ms", "millis", "sec", "secs", "seconds",
	"duration", "delay", "interval", "timeout", "deadline", "rtt", "rto",
	"jitter", "elapsed", "time",
}

// timeNamed reports whether name's trailing word suggests a time quantity.
func timeNamed(name string) bool {
	lower := strings.ToLower(name)
	for _, suf := range timeSuffixes {
		if lower == suf {
			return true
		}
		if strings.HasSuffix(lower, suf) {
			// Require a word boundary before the suffix: "WallNs" and
			// "slow_time" match, "Bins" (suffix "ns"? no — 'i' is lower)
			// must not match via an accidental split.
			idx := len(lower) - len(suf)
			prev := name[idx-1]
			first := name[idx]
			// Word boundary: snake_case, CamelCase (Wall|Ns), or an
			// acronym run followed by a lowercase unit (FCT|ms).
			if prev == '_' || (first >= 'A' && first <= 'Z') ||
				(prev >= 'A' && prev <= 'Z' && idx >= 2 && name[idx-2] >= 'A' && name[idx-2] <= 'Z') {
				return true
			}
		}
	}
	return false
}

// rawNumeric reports whether t is a plain int64 or float64 (predeclared
// basic type, not a named wrapper like sim.Duration).
func rawNumeric(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && (b.Kind() == types.Int64 || b.Kind() == types.Float64)
}

func runSimTime(p *Package) []Diagnostic {
	if !p.importsSim() || p.ImportPath == simPkgPath {
		// The engine itself defines the time types and their numeric
		// conversions; everywhere else those conversions should stay
		// behind its API.
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() {
					continue
				}
				out = append(out, p.checkFuncTimes(d)...)
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok || !ts.Name.IsExported() {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					out = append(out, p.checkStructTimes(ts.Name.Name, st)...)
				}
			}
		}
	}
	return out
}

// checkFuncTimes flags raw-numeric, time-named parameters and results of
// an exported function or method.
func (p *Package) checkFuncTimes(d *ast.FuncDecl) []Diagnostic {
	var out []Diagnostic
	if d.Type.Params != nil {
		for _, field := range d.Type.Params.List {
			t := p.Info.TypeOf(field.Type)
			if t == nil || !rawNumeric(t) {
				continue
			}
			for _, name := range field.Names {
				if timeNamed(name.Name) {
					dg := p.diag("simtime", name.Pos(),
						"exported %s takes raw %s duration parameter %q: use sim.Duration/sim.Time",
						d.Name.Name, t, name.Name)
					dg.Fix = p.durationFix(field.Type, t)
					out = append(out, dg)
				}
			}
		}
	}
	if d.Type.Results != nil {
		for _, field := range d.Type.Results.List {
			t := p.Info.TypeOf(field.Type)
			if t == nil || !rawNumeric(t) {
				continue
			}
			named := false
			for _, name := range field.Names {
				named = true
				if timeNamed(name.Name) {
					dg := p.diag("simtime", name.Pos(),
						"exported %s returns raw %s duration %q: use sim.Duration/sim.Time",
						d.Name.Name, t, name.Name)
					dg.Fix = p.durationFix(field.Type, t)
					out = append(out, dg)
				}
			}
			// An unnamed result is judged by the function's own name:
			// func SlowTimeNs() int64 leaks a raw duration.
			if !named && timeNamed(d.Name.Name) {
				dg := p.diag("simtime", field.Pos(),
					"exported %s returns a raw %s but is named like a time quantity: use sim.Duration/sim.Time",
					d.Name.Name, t)
				dg.Fix = p.durationFix(field.Type, t)
				out = append(out, dg)
			}
		}
	}
	return out
}

// checkStructTimes flags raw-numeric, time-named exported fields of an
// exported struct type.
func (p *Package) checkStructTimes(typeName string, st *ast.StructType) []Diagnostic {
	var out []Diagnostic
	for _, field := range st.Fields.List {
		t := p.Info.TypeOf(field.Type)
		if t == nil || !rawNumeric(t) {
			continue
		}
		for _, name := range field.Names {
			if name.IsExported() && timeNamed(name.Name) {
				dg := p.diag("simtime", name.Pos(),
					"exported field %s.%s carries a raw %s duration: use sim.Duration/sim.Time",
					typeName, name.Name, t)
				dg.Fix = p.durationFix(field.Type, t)
				out = append(out, dg)
			}
		}
	}
	return out
}
