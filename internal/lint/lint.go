// Package lint implements simlint, the repository's domain-specific static
// analysis pass. The paper's results are reproducible only if the simulator
// is bit-for-bit deterministic under a fixed seed and keeps its units
// straight; simlint turns those conventions into machine-checked rules
// using nothing but the standard library (go/parser, go/ast, go/token,
// go/types — the module is dependency-free and must stay that way).
//
// Eighteen analyzers ship with the pass:
//
//   - nondeterminism: wall-clock reads, math/rand, order-sensitive map
//     iteration, and goroutine spawns inside simulation-scheduled code.
//   - simtime: raw int64/float64 durations crossing exported boundaries of
//     packages where the sim.Time/sim.Duration types are available
//     (carries an autofix rewriting int64 carriers to sim.Duration).
//   - unitsafety: arithmetic mixing byte-, packet- and segment-valued
//     identifiers.
//   - unitflow: flow-sensitive upgrade of unitsafety — byte/packet/segment
//     taint tracked through assignments, calls and returns by the dataflow
//     engine (see dataflow.go), with per-function summaries lifted
//     interprocedurally over the call graph.
//   - floateq: ==/!= on floating-point operands outside tests (carries an
//     autofix rewriting to an epsilon comparison).
//   - telemetrysafety: instrument methods that dereference their receiver
//     without the nil-guard idiom the telemetry layer is built on.
//   - hotalloc: heap-allocating constructs in //hot:path functions and
//     everything statically reachable from them (whole-module call graph
//     with interface calls over-approximated by method signature).
//   - exhaustive: switches over module enum types must cover every declared
//     constant or carry a panicking default.
//   - callpurity: nondeterminism sources anywhere in the call graph
//     reachable from //hot:path roots, with no per-package allowances.
//   - sweepsafety: writes to package-level state anywhere reachable from
//     //sweep:job worker bodies.
//   - sharedstate: unsynchronized writes to captured variables inside
//     concurrently executed closures (pool.ForEach literals, goroutines in
//     sweep-reachable code).
//   - cachekey: completeness proof that every field of a
//     //cache:key-annotated struct flows into its cache-key method.
//   - rangeproof: interval abstract interpretation of //inv: range
//     contracts on struct fields and function params/results (see
//     interval.go, contracts.go); writes the prover cannot discharge at
//     function exit must carry a named internal/check assertion.
//   - overflow: unbounded narrow-integer accumulation and
//     wraparound-unsafe sequence arithmetic in //hot:path- or
//     //sweep:job-reachable code.
//   - checkcover: the runtime half of rangeproof — internal/check
//     assertions on annotated fields must be named, must agree with the
//     declared contract, and must exist for every atom left statically
//     unproven.
//   - poollife: path-sensitive typestate proof of the //state: pooled
//     protocols (see typestate.go) — use-after-free, double-free and
//     leak-on-path for pooled packets, with escape into long-lived
//     structs sanctioned only inside //state: sink functions.
//   - handlestate: the //state: handle protocols — Cancel on a
//     possibly-dead scheduler handle, transition misuse (Timer
//     Reset/Stop), and the clear-field-first rule for re-arming
//     callbacks.
//   - ownxfer: ownership-transfer signature hygiene — consuming a
//     borrowed parameter, returning a pooled object without a //state:
//     mint contract, malformed //state: directives, and
//     interface/implementation contract agreement.
//
// Intentional exceptions are declared inline with a directive comment on
// the offending line (or the line above):
//
//	//lint:allow <analyzer> <reason>
//
// The reason is mandatory: an allowlist entry is documentation, and a bare
// directive is itself reported as a diagnostic. A small number of built-in
// path allowlists (wall-clock metadata in cmd/ and the telemetry manifest)
// are documented on the analyzers that apply them.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the analyzer that produced it, a
// human-readable message, and optionally a machine-applicable fix.
type Diagnostic struct {
	File     string        `json:"file"`
	Line     int           `json:"line"`
	Col      int           `json:"col"`
	Analyzer string        `json:"analyzer"`
	Message  string        `json:"message"`
	Fix      *SuggestedFix `json:"fix,omitempty"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named rule set run over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and allow directives.
	Name string
	// Doc is a one-line description (cmd/simlint -help lists it).
	Doc string
	// Run inspects one package and returns its raw findings; the runner
	// applies allow directives afterwards.
	Run func(p *Package) []Diagnostic
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Nondeterminism(),
		SimTime(),
		UnitSafety(),
		FloatEq(),
		TelemetrySafety(),
		Hotalloc(),
		Exhaustive(),
		CallPurity(),
		SweepSafety(),
		UnitFlow(),
		SharedState(),
		CacheKey(),
		RangeProof(),
		Overflow(),
		CheckCover(),
		Poollife(),
		HandleState(),
		OwnXfer(),
	}
}

// diag constructs a Diagnostic at pos.
func (p *Package) diag(name string, pos token.Pos, format string, args ...any) Diagnostic {
	position := p.Fset.Position(pos)
	return Diagnostic{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: name,
		Message:  fmt.Sprintf(format, args...),
	}
}

// directive is one parsed //lint:allow comment.
type directive struct {
	analyzers map[string]bool
	reason    string
	line      int // the source line the directive appears on
}

const directivePrefix = "//lint:allow"

// parseDirectives extracts //lint:allow comments from a file. A directive
// suppresses matching diagnostics on its own line and, when it stands alone
// on a line, on the line directly below — the same placement rules as
// //nolint in common linters.
func parseDirectives(fset *token.FileSet, f *ast.File) []directive {
	var out []directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, directivePrefix))
			fields := strings.Fields(rest)
			d := directive{
				analyzers: make(map[string]bool),
				line:      fset.Position(c.Pos()).Line,
			}
			if len(fields) > 0 {
				for _, name := range strings.Split(fields[0], ",") {
					d.analyzers[name] = true
				}
				d.reason = strings.TrimSpace(strings.TrimPrefix(rest, fields[0]))
			}
			out = append(out, d)
		}
	}
	return out
}

// applyDirectives filters diags through the package's allow directives and
// appends a diagnostic for every malformed (reason-less) directive: the
// allowlist policy requires each exception to say why it exists. With
// reportStale set it additionally reports every well-formed directive that
// suppressed nothing as a "staleallow" finding — a justified exemption
// that has outlived the diagnostic it justified is rot, not documentation.
func applyDirectives(p *Package, diags []Diagnostic, reportStale bool) []Diagnostic {
	type key struct {
		file string
		line int
	}
	type allowEntry struct {
		d    directive
		file string
		used bool
	}
	var entries []*allowEntry
	allowed := make(map[key][]*allowEntry)
	var out []Diagnostic
	for _, f := range p.Files {
		file := p.Fset.Position(f.Pos()).Filename
		for _, d := range parseDirectives(p.Fset, f) {
			if len(d.analyzers) == 0 || d.reason == "" {
				out = append(out, Diagnostic{
					File:     file,
					Line:     d.line,
					Col:      1,
					Analyzer: "directive",
					Message:  "malformed //lint:allow directive: want \"//lint:allow <analyzer> <reason>\"",
				})
				continue
			}
			e := &allowEntry{d: d, file: file}
			entries = append(entries, e)
			// Cover the directive's own line and the next one, so both
			// trailing and standalone placements work.
			allowed[key{file, d.line}] = append(allowed[key{file, d.line}], e)
			allowed[key{file, d.line + 1}] = append(allowed[key{file, d.line + 1}], e)
		}
	}
	for _, dg := range diags {
		suppressed := false
		// Mark every covering directive used, not just the first match: a
		// directive is stale only if no diagnostic at all lands on it.
		for _, e := range allowed[key{dg.File, dg.Line}] {
			if e.d.analyzers[dg.Analyzer] {
				suppressed = true
				e.used = true
			}
		}
		if !suppressed {
			out = append(out, dg)
		}
	}
	if reportStale {
		for _, e := range entries {
			if e.used {
				continue
			}
			names := make([]string, 0, len(e.d.analyzers))
			for name := range e.d.analyzers {
				names = append(names, name)
			}
			sort.Strings(names)
			out = append(out, Diagnostic{
				File:     e.file,
				Line:     e.d.line,
				Col:      1,
				Analyzer: "staleallow",
				Message: fmt.Sprintf("stale //lint:allow %s directive: it suppresses no diagnostic on this or the next line; delete it (or move it back beside the finding it justifies)",
					strings.Join(names, ",")),
			})
		}
	}
	return out
}

// Run executes the analyzers over the packages and returns the surviving
// diagnostics sorted by file, line, column and analyzer.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return runSuite(pkgs, analyzers, false)
}

// RunStale is Run plus stale-directive reporting: every well-formed
// //lint:allow that suppresses no diagnostic in this run is itself
// reported (analyzer "staleallow"), so exemptions cannot rot in place.
func RunStale(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return runSuite(pkgs, analyzers, true)
}

func runSuite(pkgs []*Package, analyzers []*Analyzer, reportStale bool) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		var raw []Diagnostic
		for _, a := range analyzers {
			raw = append(raw, a.Run(p)...)
		}
		out = append(out, applyDirectives(p, raw, reportStale)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	// Deduplicate: a function reachable from several annotation roots is
	// visited once per root witness list, and a single root's label already
	// names every root — identical (position, analyzer, message) findings
	// collapse to one.
	deduped := out[:0]
	for i, d := range out {
		if i > 0 && sameFinding(d, out[i-1]) {
			continue
		}
		deduped = append(deduped, d)
	}
	return deduped
}

// sameFinding reports whether two diagnostics are the same finding (the Fix
// pointer is excluded from identity: equal findings carry equal fixes).
func sameFinding(a, b Diagnostic) bool {
	return a.File == b.File && a.Line == b.Line && a.Col == b.Col &&
		a.Analyzer == b.Analyzer && a.Message == b.Message
}

// importsSim reports whether the package imports the simulation engine (or
// is the engine itself) — the scope condition for the analyzers that only
// make sense where sim.Time/sim.Duration are available.
func (p *Package) importsSim() bool {
	if p.ImportPath == simPkgPath {
		return true
	}
	for _, imp := range p.Types.Imports() {
		if imp.Path() == simPkgPath {
			return true
		}
	}
	return false
}

// simPkgPath is the import path of the discrete-event engine.
const simPkgPath = "dctcpplus/internal/sim"

// isPkgIdent reports whether expr is an identifier resolving to the named
// imported package (e.g. the "time" in time.Now).
func (p *Package) isPkgIdent(expr ast.Expr, path string) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

// basicKind returns the basic kind of e's type, or types.Invalid when the
// type is unknown or not basic.
func (p *Package) basicKind(e ast.Expr) types.BasicKind {
	t := p.Info.TypeOf(e)
	if t == nil {
		return types.Invalid
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return types.Invalid
	}
	return b.Kind()
}

// isFloat reports whether e has floating-point type.
func (p *Package) isFloat(e ast.Expr) bool {
	k := p.basicKind(e)
	return k == types.Float32 || k == types.Float64 ||
		k == types.UntypedFloat
}
