package lint

import (
	"go/ast"
	"go/token"
)

// UnitFlow returns the analyzer that upgrades the name-based unit check to
// flow-sensitive taint. unitsafety only sees a bug when two suffixed names
// meet at one operator; unitflow tracks the unit a *value* carries through
// name-neutral intermediaries, so
//
//	q := link.Bytes()   // q is tainted bytes
//	port.pkts = q       // flagged: bytes value flows into packets field
//
// is caught even though neither line mixes two suffixed names. Taint is
// seeded by the same suffix convention (see unitOf), enters through
// assignments, declarations, range statements and call results — including
// results of module functions summarized interprocedurally over the shared
// call graph (see dataflow.go) — and is checked wherever a value meets a
// unit commitment: an assignment to a suffixed variable or field, a keyed
// struct literal, an argument bound to a suffixed parameter, a return into
// a suffixed result, or an additive/comparison operator joining two taints.
//
// Sites where both operands already resolve by name belong to unitsafety
// and are not re-reported here.
func UnitFlow() *Analyzer {
	return &Analyzer{
		Name: "unitflow",
		Doc:  "track byte/packet/segment taint through assignments and calls; flag cross-unit flows",
		Run:  runUnitFlow,
	}
}

func runUnitFlow(p *Package) []Diagnostic {
	if p.Prog == nil {
		return nil
	}
	p.Prog.buildUnitSummaries()
	var out []Diagnostic
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			uf := newUnitFlow(p, p.Prog, fd)
			uf.sink = func(pos token.Pos, format string, args ...any) {
				out = append(out, p.diag("unitflow", pos, format, args...))
			}
			uf.pass()
		}
	}
	return out
}
