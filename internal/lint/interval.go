package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file implements the interval abstract interpreter behind the
// rangeproof, overflow and checkcover analyzers: a numeric interval
// lattice with widening, a statement-structured interpreter with
// comparison-guided narrowing on branch edges, and per-function result
// summaries lifted over the Program call graph the way the unit lattice
// is (dataflow.go).
//
// Proof semantics and soundness caveats, in one place:
//
//   - Contracts hold at function exit: a field may transiently leave its
//     declared range between statements of one writer, but every path out
//     of the function must restore it (or carry an internal/check
//     assertion — see rangeproof.go).
//   - Reads assume: reading an annotated field or parameter yields its
//     declared interval ("assume on read"). Write obligations apply only
//     in the declaring package; cross-package writes are exempt and are
//     expected to be guarded by constructor validation (Config.validate).
//   - Instances are conflated: p1.qBytes and p2.qBytes share one abstract
//     cell. Sound for proving (joins only), imprecise never unsound.
//   - Arithmetic is mathematical: transfer functions ignore wraparound
//     (the overflow analyzer owns width; rangeproof assumes ideal ints).
//     Conversions use wrap semantics: an argument that provably fits the
//     target type keeps its interval, anything else becomes the target's
//     full range. Float→int conversions assume saturating truncation.
//   - Intervals do not model NaN: a NaN input slips through any interval
//     proof, which is one reason runtime check.* assertions remain the
//     other half of the contract.
//   - Comparison facts learned on branch edges are invalidated by writes
//     to any mentioned variable but NOT by function calls; the module's
//     guard-then-update shapes have no interfering calls in between.
//   - Loops run a bounded descending iteration with widening; deferred
//     and go'd function literals are interpreted inline at their site.
//     goto conservatively kills the current path.
//
// These caveats are deliberate: the interpreter is a prover for the
// module's own guard-and-clamp idioms, not a general verifier.

// ---- the interval lattice ----

var (
	negInf = math.Inf(-1)
	posInf = math.Inf(1)
)

// ival is a closed numeric interval [lo, hi] over the extended reals.
// lo > hi encodes the empty interval (an unreachable value).
type ival struct{ lo, hi float64 }

func topIval() ival        { return ival{negInf, posInf} }
func (v ival) empty() bool { return v.lo > v.hi }

func (v ival) join(o ival) ival {
	if v.empty() {
		return o
	}
	if o.empty() {
		return v
	}
	return ival{math.Min(v.lo, o.lo), math.Max(v.hi, o.hi)}
}

func (v ival) meet(o ival) ival {
	return ival{math.Max(v.lo, o.lo), math.Min(v.hi, o.hi)}
}

// widen keeps the bounds of v that the new value o respects and drops the
// ones it crossed to infinity, guaranteeing loop termination.
func (v ival) widen(o ival) ival {
	if v.empty() {
		return o
	}
	if o.empty() {
		return v
	}
	w := v
	if o.lo < v.lo {
		w.lo = negInf
	}
	if o.hi > v.hi {
		w.hi = posInf
	}
	return w
}

func (v ival) String() string {
	if v.empty() {
		return "(unreachable)"
	}
	lo, hi := "-inf", "+inf"
	if !math.IsInf(v.lo, -1) {
		lo = strconv.FormatFloat(v.lo, 'g', -1, 64)
	}
	if !math.IsInf(v.hi, 1) {
		hi = strconv.FormatFloat(v.hi, 'g', -1, 64)
	}
	return "[" + lo + ", " + hi + "]"
}

// ---- interval arithmetic ----

func (v ival) neg() ival {
	if v.empty() {
		return v
	}
	return ival{-v.hi, -v.lo}
}

func (v ival) add(o ival) ival {
	if v.empty() || o.empty() {
		return ival{1, 0}
	}
	return ival{v.lo + o.lo, v.hi + o.hi}
}

func (v ival) sub(o ival) ival { return v.add(o.neg()) }

// mulEnd multiplies endpoints with the interval convention 0·∞ = 0.
func mulEnd(a, b float64) float64 {
	if a == 0 || b == 0 {
		return 0
	}
	return a * b
}

func (v ival) mul(o ival) ival {
	if v.empty() || o.empty() {
		return ival{1, 0}
	}
	c := [4]float64{mulEnd(v.lo, o.lo), mulEnd(v.lo, o.hi), mulEnd(v.hi, o.lo), mulEnd(v.hi, o.hi)}
	lo, hi := c[0], c[0]
	for _, x := range c[1:] {
		lo, hi = math.Min(lo, x), math.Max(hi, x)
	}
	return ival{lo, hi}
}

// div over-approximates x/y; a divisor interval touching zero yields top
// (for integers that path panics at runtime anyway).
func (v ival) div(o ival) ival {
	if v.empty() || o.empty() {
		return ival{1, 0}
	}
	if o.lo <= 0 && o.hi >= 0 {
		return topIval()
	}
	inv := ival{1 / o.hi, 1 / o.lo}
	return v.mul(inv)
}

// rem over-approximates x % y (truncated remainder: sign follows x,
// magnitude below max|y|).
func (v ival) rem(o ival) ival {
	if v.empty() || o.empty() {
		return ival{1, 0}
	}
	m := math.Max(math.Abs(o.lo), math.Abs(o.hi))
	if !math.IsInf(m, 1) && m > 0 {
		m--
	}
	switch {
	case v.lo >= 0:
		return ival{0, math.Min(v.hi, m)}
	case v.hi <= 0:
		return ival{math.Max(v.lo, -m), 0}
	default:
		return ival{-m, m}
	}
}

// ---- static type ranges ----

var (
	maxI64f = math.Ldexp(1, 63) // outward-rounded MaxInt64
	maxU64f = math.Ldexp(1, 64)
)

// typeRange is the value range the static type admits; top for floats and
// anything non-basic.
func typeRange(t types.Type) ival {
	if t == nil {
		return topIval()
	}
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return topIval()
	}
	switch b.Kind() {
	case types.Int, types.Int64, types.UntypedInt:
		return ival{-maxI64f, maxI64f}
	case types.Int32, types.UntypedRune:
		return ival{math.MinInt32, math.MaxInt32}
	case types.Int16:
		return ival{math.MinInt16, math.MaxInt16}
	case types.Int8:
		return ival{math.MinInt8, math.MaxInt8}
	case types.Uint, types.Uint64, types.Uintptr:
		return ival{0, maxU64f}
	case types.Uint32:
		return ival{0, math.MaxUint32}
	case types.Uint16:
		return ival{0, math.MaxUint16}
	case types.Uint8:
		return ival{0, math.MaxUint8}
	default:
		return topIval()
	}
}

// ---- abstract state ----

// symKey identifies one symbolic atom of one annotated field.
type symKey struct {
	field *types.Var
	idx   int
}

// fact is a comparison learned on a branch edge, canonicalized as
// left <= right (strict: left < right). Facts die when any mentioned
// object is written.
type fact struct {
	left, right string
	strict      bool
	objs        map[types.Object]bool
}

// absState is the abstract store at one program point.
type absState struct {
	vals map[types.Object]ival
	// sym tracks whether each symbolic contract atom of a written field
	// currently holds; a missing key means the field is untouched and the
	// contract is still assumed.
	sym         map[symKey]bool
	facts       []fact
	unreachable bool
}

func newAbsState() *absState {
	return &absState{vals: map[types.Object]ival{}, sym: map[symKey]bool{}}
}

func (st *absState) clone() *absState {
	c := &absState{
		vals:        make(map[types.Object]ival, len(st.vals)),
		sym:         make(map[symKey]bool, len(st.sym)),
		facts:       append([]fact(nil), st.facts...),
		unreachable: st.unreachable,
	}
	for k, v := range st.vals {
		c.vals[k] = v
	}
	for k, v := range st.sym {
		c.sym[k] = v
	}
	return c
}

// invalidate drops facts mentioning obj.
func (st *absState) invalidate(obj types.Object) {
	kept := st.facts[:0]
	for _, f := range st.facts {
		if !f.objs[obj] {
			kept = append(kept, f)
		}
	}
	st.facts = kept
}

// factHolds reports whether left <= right is known, and whether strictly.
func (st *absState) factHolds(left, right string) (strict, ok bool) {
	for _, f := range st.facts {
		if f.left == left && f.right == right {
			ok = true
			strict = strict || f.strict
		}
	}
	return strict, ok
}

// ---- canonical expression rendering for facts and symbolic bounds ----

// objKey renders a types.Object as a stable, collision-free token.
func objKey(o types.Object) string {
	return o.Name() + "@" + strconv.Itoa(int(o.Pos()))
}

// canonExpr renders e as a canonical string keyed on resolved objects, so
// the same value written two ways (with or without a conversion, say)
// compares equal. Returns ok=false for expressions with no stable
// canonical form (calls, indexing, ...).
func canonExpr(p *Package, e ast.Expr, objs map[types.Object]bool) (string, bool) {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return canonExpr(p, e.X, objs)
	case *ast.Ident:
		obj := p.Info.Uses[e]
		if obj == nil {
			obj = p.Info.Defs[e]
		}
		if obj == nil {
			return "", false
		}
		if c := p.Info.Types[e]; c.Value != nil {
			return "#" + c.Value.String(), true
		}
		objs[obj] = true
		return objKey(obj), true
	case *ast.SelectorExpr:
		if c := p.Info.Types[e]; c.Value != nil {
			return "#" + c.Value.String(), true
		}
		if sel, ok := p.Info.Selections[e]; ok {
			base, ok := canonExpr(p, e.X, objs)
			if !ok {
				return "", false
			}
			objs[sel.Obj()] = true
			return base + "." + objKey(sel.Obj()), true
		}
		if obj := p.Info.Uses[e.Sel]; obj != nil { // package-qualified
			objs[obj] = true
			return objKey(obj), true
		}
		return "", false
	case *ast.CallExpr:
		// Conversions are transparent: int64(x) canonicalizes as x.
		if tv, ok := p.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return canonExpr(p, e.Args[0], objs)
		}
		return "", false
	case *ast.UnaryExpr:
		if e.Op == token.ADD {
			return canonExpr(p, e.X, objs)
		}
		return "", false
	case *ast.BasicLit:
		if tv, ok := p.Info.Types[e]; ok && tv.Value != nil {
			return "#" + tv.Value.String(), true
		}
		return "", false
	case *ast.BinaryExpr:
		if e.Op != token.ADD && e.Op != token.SUB {
			return "", false
		}
		l, ok := canonExpr(p, e.X, objs)
		if !ok {
			return "", false
		}
		r, ok := canonExpr(p, e.Y, objs)
		if !ok {
			return "", false
		}
		return "(" + l + e.Op.String() + r + ")", true
	default:
		return "", false
	}
}

// atomBoundCanon renders the symbolic bound of a field-contract atom
// relative to baseCanon, the canonical form of the instance expression
// (the p of p.qBytes): base.cfg.BufferBytes and every spelling that
// canonicalizes the same way compare equal.
func atomBoundCanon(baseCanon string, a atom) (string, bool) {
	if a.path == nil || baseCanon == "" {
		return "", false
	}
	s := baseCanon
	for _, o := range a.path {
		s += "." + objKey(o)
	}
	return s, true
}

// ---- the interpreter ----

// checkAssert is one recognized internal/check call site, the runtime half
// of a contract.
type checkAssert struct {
	fnName     string     // "Unit", "NonNegative", "AtMost", ...
	target     *types.Var // the asserted field, when the value resolves to one
	named      bool       // what-argument is a non-empty string constant
	boundV     ival       // evaluated bound argument (AtLeast/AtMost)
	boundCanon string     // canonical bound expression, "" if none
	baseCanon  string     // canonical instance expression of the value arg
	pos        token.Pos
}

// accumSite is one narrow-typed accumulation candidate for the overflow
// analyzer.
type accumSite struct {
	pos  token.Pos
	expr string // rendered target, e.g. "p.hops"
	typ  *types.Basic
	up   bool // grows upward (+=, ++) vs downward (-=, --)
}

// obligation is a positioned proof failure (call argument, return value or
// composite literal against a contract).
type obligation struct {
	pos token.Pos
	msg string
}

// intervalFlow interprets one declared function (plus its inline function
// literals). With sink=false it only computes the result summary; with
// sink=true it additionally records write sites, proof obligations,
// check.* assertions and narrow accumulations.
type intervalFlow struct {
	p    *Package
	prog *Program
	ct   *contractTable
	decl *ast.FuncDecl
	fn   *types.Func
	sink bool

	rets      []ival // joined result intervals, per index
	retsValid bool
	exit      *absState // join of the state at every exit point
	hasExit   bool

	writes    map[*types.Var]token.Pos // last write site per annotated field
	baseOf    map[*types.Var]string    // instance canon at that write
	checks    []checkAssert
	accums    []accumSite
	obls      []obligation
	seenObl   map[token.Pos]bool
	seenAccum map[token.Pos]bool
	seenCheck map[token.Pos]bool

	breakStack [][]*absState
	contStack  [][]*absState
}

func newIntervalFlow(p *Package, prog *Program, ct *contractTable, decl *ast.FuncDecl, fn *types.Func, sink bool) *intervalFlow {
	nres := 0
	if sig, ok := fn.Type().(*types.Signature); ok {
		nres = sig.Results().Len()
	}
	return &intervalFlow{
		p: p, prog: prog, ct: ct, decl: decl, fn: fn, sink: sink,
		rets:      make([]ival, nres),
		writes:    map[*types.Var]token.Pos{},
		baseOf:    map[*types.Var]string{},
		seenObl:   map[token.Pos]bool{},
		seenAccum: map[token.Pos]bool{},
		seenCheck: map[token.Pos]bool{},
	}
}

// run interprets the function body from a fresh entry state.
func (f *intervalFlow) run() {
	st := newAbsState()
	// Seed contract-carrying parameters and zero-valued named results.
	if fc, ok := f.ct.funcs[f.fn]; ok {
		//lint:allow nondeterminism keyed write, value depends only on the key: order-insensitive
		for pv, atoms := range fc.params {
			st.vals[pv] = f.ct.declaredIval(atoms).meet(typeRange(pv.Type()))
		}
	}
	if f.decl.Type.Results != nil {
		for _, fl := range f.decl.Type.Results.List {
			for _, n := range fl.Names {
				if v, ok := f.p.Info.Defs[n].(*types.Var); ok && isNumericType(v.Type()) {
					st.vals[v] = ival{0, 0}.meet(typeRange(v.Type()))
				}
			}
		}
	}
	f.stmt(f.decl.Body, st)
	if !st.unreachable {
		f.recordExit(st)
	}
}

func (f *intervalFlow) recordExit(st *absState) {
	if !f.hasExit {
		f.exit = st.clone()
		f.hasExit = true
		return
	}
	f.exit = f.joinState(f.exit, st)
}

// ---- state join / widen / compare ----

// stateIval is the interval of obj in st: its tracked value, else its
// declared contract for annotated fields, else the static type range.
func (f *intervalFlow) stateIval(st *absState, obj types.Object) ival {
	if v, ok := st.vals[obj]; ok {
		return v
	}
	if fv, ok := obj.(*types.Var); ok {
		if fc, ok := f.ct.fields[fv]; ok {
			return f.ct.declaredIval(fc.atoms).meet(typeRange(fv.Type()))
		}
	}
	return typeRange(obj.Type())
}

func (f *intervalFlow) joinState(a, b *absState) *absState {
	if a.unreachable {
		return b.clone()
	}
	if b.unreachable {
		return a.clone()
	}
	out := newAbsState()
	//lint:allow nondeterminism keyed write, join is commutative and the value depends only on the key
	for k := range a.vals {
		out.vals[k] = f.stateIval(a, k).join(f.stateIval(b, k))
	}
	//lint:allow nondeterminism keyed write, join is commutative and the value depends only on the key
	for k := range b.vals {
		if _, done := out.vals[k]; !done {
			out.vals[k] = f.stateIval(a, k).join(f.stateIval(b, k))
		}
	}
	symAt := func(st *absState, k symKey) bool {
		v, ok := st.sym[k]
		return !ok || v // missing = untouched = contract assumed
	}
	//lint:allow nondeterminism keyed write, value depends only on the key: order-insensitive
	for k := range a.sym {
		out.sym[k] = symAt(a, k) && symAt(b, k)
	}
	//lint:allow nondeterminism keyed write, value depends only on the key: order-insensitive
	for k := range b.sym {
		if _, done := out.sym[k]; !done {
			out.sym[k] = symAt(a, k) && symAt(b, k)
		}
	}
	for _, fa := range a.facts {
		if s, ok := b.factHolds(fa.left, fa.right); ok {
			g := fa
			g.strict = fa.strict && s
			out.facts = append(out.facts, g)
		}
	}
	return out
}

// widenState widens old toward new per tracked value.
func (f *intervalFlow) widenState(old, new_ *absState) *absState {
	if old.unreachable || new_.unreachable {
		return f.joinState(old, new_)
	}
	out := new_.clone()
	//lint:allow nondeterminism keyed write, value depends only on the key: order-insensitive
	for k, nv := range out.vals {
		out.vals[k] = f.stateIval(old, k).widen(nv)
	}
	return out
}

func eqState(a, b *absState) bool {
	if a.unreachable != b.unreachable || len(a.vals) != len(b.vals) || len(a.sym) != len(b.sym) {
		return false
	}
	//lint:allow nondeterminism pure membership test: the boolean result is order-independent
	for k, v := range a.vals {
		if w, ok := b.vals[k]; !ok || w != v {
			return false
		}
	}
	//lint:allow nondeterminism pure membership test: the boolean result is order-independent
	for k, v := range a.sym {
		if w, ok := b.sym[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// ---- statement interpretation ----

func (f *intervalFlow) stmt(s ast.Stmt, st *absState) {
	if s == nil || st.unreachable {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range s.List {
			if st.unreachable {
				return
			}
			f.stmt(sub, st)
		}
	case *ast.IfStmt:
		f.stmt(s.Init, st)
		f.evalForEffects(s.Cond, st)
		then := st.clone()
		f.assume(s.Cond, then, true)
		f.stmt(s.Body, then)
		els := st.clone()
		f.assume(s.Cond, els, false)
		if s.Else != nil {
			f.stmt(s.Else, els)
		}
		*st = *f.joinState(then, els)
	case *ast.AssignStmt:
		f.assign(s, st)
	case *ast.IncDecStmt:
		one := ival{1, 1}
		old := f.lhsIval(s.X, st)
		var nv ival
		up := s.Tok == token.INC
		if up {
			nv = old.add(one)
		} else {
			nv = old.sub(one)
		}
		f.noteAccum(s.X, up, s.TokPos, st)
		f.writeTo(s.X, nv, nil, token.ILLEGAL, st)
	case *ast.ReturnStmt:
		f.returnStmt(s, st)
	case *ast.ExprStmt:
		f.evalForEffects(s.X, st)
		if call, ok := unparen(s.X).(*ast.CallExpr); ok && f.isTerminalCall(call) {
			st.unreachable = true
		}
	case *ast.DeclStmt:
		f.declStmt(s, st)
	case *ast.ForStmt:
		f.stmt(s.Init, st)
		f.loop(s.Cond, s.Body, s.Post, st)
	case *ast.RangeStmt:
		f.rangeStmt(s, st)
	case *ast.SwitchStmt:
		f.stmt(s.Init, st)
		f.evalForEffects(s.Tag, st)
		f.switchBodies(s.Body, st, nil)
	case *ast.TypeSwitchStmt:
		f.stmt(s.Init, st)
		f.stmt(s.Assign, st)
		f.switchBodies(s.Body, st, nil)
	case *ast.SelectStmt:
		f.switchBodies(s.Body, st, nil)
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if n := len(f.breakStack); n > 0 {
				f.breakStack[n-1] = append(f.breakStack[n-1], st.clone())
			}
			st.unreachable = true
		case token.CONTINUE:
			if n := len(f.contStack); n > 0 {
				f.contStack[n-1] = append(f.contStack[n-1], st.clone())
			}
			st.unreachable = true
		case token.GOTO:
			st.unreachable = true // conservative: path not tracked further
		}
	case *ast.LabeledStmt:
		f.stmt(s.Stmt, st)
	case *ast.DeferStmt, *ast.GoStmt:
		// Interpret inline at the site: an approximation (defers run at
		// exit), adequate for the module's observability-hook literals.
		var call *ast.CallExpr
		if d, ok := s.(*ast.DeferStmt); ok {
			call = d.Call
		} else {
			call = s.(*ast.GoStmt).Call
		}
		f.evalForEffects(call, st)
	case *ast.SendStmt:
		f.evalForEffects(s.Chan, st)
		f.evalForEffects(s.Value, st)
	case *ast.EmptyStmt:
	}
}

// switchBodies joins the entry state with every clause body, carrying
// fallthrough states forward. A missing default keeps the entry state as
// the no-match path; select statements pass the same way (sound, since the
// join includes entry).
func (f *intervalFlow) switchBodies(body *ast.BlockStmt, st *absState, _ []*absState) {
	f.breakStack = append(f.breakStack, nil)
	entry := st.clone()
	out := entry.clone() // the no-match / not-taken path
	var fallthru *absState
	for _, cl := range body.List {
		var list []ast.Stmt
		switch cl := cl.(type) {
		case *ast.CaseClause:
			for _, e := range cl.List {
				f.evalForEffects(e, entry)
			}
			list = cl.Body
		case *ast.CommClause:
			if cl.Comm != nil {
				f.stmt(cl.Comm, entry)
			}
			list = cl.Body
		default:
			continue
		}
		cs := entry.clone()
		if fallthru != nil {
			cs = f.joinState(cs, fallthru)
			fallthru = nil
		}
		fellThrough := false
		for _, sub := range list {
			if br, ok := sub.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fellThrough = true
				break
			}
			f.stmt(sub, cs)
		}
		if fellThrough {
			fallthru = cs
		} else {
			out = f.joinState(out, cs)
		}
	}
	breaks := f.breakStack[len(f.breakStack)-1]
	f.breakStack = f.breakStack[:len(f.breakStack)-1]
	for _, b := range breaks {
		out = f.joinState(out, b)
	}
	*st = *out
}

// loopPassCap bounds the per-loop descending iteration; widening from the
// second pass guarantees it converges well before the cap.
const loopPassCap = 3

func (f *intervalFlow) loop(cond ast.Expr, body *ast.BlockStmt, post ast.Stmt, st *absState) {
	cur := st.clone()
	cur.facts = nil
	var breaks []*absState
	for pass := 0; pass < loopPassCap; pass++ {
		it := cur.clone()
		if cond != nil {
			f.evalForEffects(cond, it)
			f.assume(cond, it, true)
		}
		f.breakStack = append(f.breakStack, nil)
		f.contStack = append(f.contStack, nil)
		f.stmt(body, it)
		conts := f.contStack[len(f.contStack)-1]
		f.contStack = f.contStack[:len(f.contStack)-1]
		for _, c := range conts {
			it = f.joinState(it, c)
		}
		if post != nil && !it.unreachable {
			f.stmt(post, it)
		}
		passBreaks := f.breakStack[len(f.breakStack)-1]
		f.breakStack = f.breakStack[:len(f.breakStack)-1]
		breaks = append(breaks, passBreaks...)
		next := f.joinState(cur, it)
		if pass >= 1 {
			next = f.widenState(cur, next)
		}
		next.facts = nil
		if eqState(cur, next) {
			cur = next
			break
		}
		cur = next
	}
	var out *absState
	if cond != nil {
		out = cur.clone()
		f.assume(cond, out, false)
	} else {
		out = newAbsState()
		out.unreachable = true // for{} exits only via break
	}
	for _, b := range breaks {
		out = f.joinState(out, b)
	}
	out.facts = nil
	*st = *out
}

func (f *intervalFlow) rangeStmt(s *ast.RangeStmt, st *absState) {
	f.evalForEffects(s.X, st)
	cur := st.clone()
	cur.facts = nil
	assignVar := func(e ast.Expr, v ival, target *absState) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			obj := f.p.Info.Defs[id]
			if obj == nil {
				obj = f.p.Info.Uses[id]
			}
			if obj != nil && isNumericType(obj.Type()) {
				target.vals[obj] = v.meet(typeRange(obj.Type()))
				target.invalidate(obj)
			}
		}
	}
	var breaks []*absState
	for pass := 0; pass < loopPassCap; pass++ {
		it := cur.clone()
		if s.Key != nil {
			assignVar(s.Key, ival{0, maxI64f}, it)
		}
		if s.Value != nil {
			assignVar(s.Value, typeRange(f.p.Info.TypeOf(s.Value)), it)
		}
		f.breakStack = append(f.breakStack, nil)
		f.contStack = append(f.contStack, nil)
		f.stmt(s.Body, it)
		conts := f.contStack[len(f.contStack)-1]
		f.contStack = f.contStack[:len(f.contStack)-1]
		for _, c := range conts {
			it = f.joinState(it, c)
		}
		passBreaks := f.breakStack[len(f.breakStack)-1]
		f.breakStack = f.breakStack[:len(f.breakStack)-1]
		breaks = append(breaks, passBreaks...)
		next := f.joinState(cur, it)
		if pass >= 1 {
			next = f.widenState(cur, next)
		}
		next.facts = nil
		if eqState(cur, next) {
			cur = next
			break
		}
		cur = next
	}
	out := cur
	for _, b := range breaks {
		out = f.joinState(out, b)
	}
	out.facts = nil
	*st = *out
}

func (f *intervalFlow) declStmt(s *ast.DeclStmt, st *absState) {
	gd, ok := s.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			obj := f.p.Info.Defs[name]
			if obj == nil {
				continue
			}
			if i < len(vs.Values) {
				v := f.eval(vs.Values[i], st)
				if isNumericType(obj.Type()) {
					st.vals[obj] = v.meet(typeRange(obj.Type()))
				}
			} else if isNumericType(obj.Type()) {
				st.vals[obj] = ival{0, 0}.meet(typeRange(obj.Type()))
			} else {
				// Zero value of a struct with annotated fields must
				// satisfy its contracts.
				f.checkZeroStruct(obj.Type(), name.Pos(), st)
			}
		}
	}
}

func (f *intervalFlow) returnStmt(s *ast.ReturnStmt, st *absState) {
	results := s.Results
	if len(results) == 0 && f.decl.Type.Results != nil {
		// Bare return with named results: read them from the state.
		var vals []ival
		for _, fl := range f.decl.Type.Results.List {
			for _, n := range fl.Names {
				obj := f.p.Info.Defs[n]
				if obj != nil {
					vals = append(vals, f.stateIval(st, obj))
				} else {
					vals = append(vals, topIval())
				}
			}
		}
		f.noteReturn(vals, nil, s.Pos(), st)
	} else {
		vals := make([]ival, len(results))
		for i, r := range results {
			vals[i] = f.eval(r, st)
		}
		f.noteReturn(vals, results, s.Pos(), st)
	}
	f.recordExit(st)
	st.unreachable = true
}

// noteReturn joins the returned intervals into the summary and, in sink
// mode, checks them against the function's result contract.
func (f *intervalFlow) noteReturn(vals []ival, exprs []ast.Expr, pos token.Pos, st *absState) {
	for i, v := range vals {
		if i >= len(f.rets) {
			break
		}
		if !f.retsValid {
			f.rets[i] = v
		} else {
			f.rets[i] = f.rets[i].join(v)
		}
	}
	if len(vals) > 0 {
		f.retsValid = true
	}
	if !f.sink {
		return
	}
	fc, ok := f.ct.funcs[f.fn]
	if !ok || len(fc.result) == 0 || len(vals) != 1 {
		return
	}
	v := vals[0]
	var expr ast.Expr
	if len(exprs) == 1 {
		expr = exprs[0]
	}
	for _, a := range fc.result {
		if f.atomProvenFor(a, v, expr, st) {
			continue
		}
		f.addObl(pos, "returned value cannot be proven to satisfy //inv: %s of %s (computed %s)",
			a.describe(), f.fn.Name(), v)
	}
}

func (f *intervalFlow) isTerminalCall(call *ast.CallExpr) bool {
	if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := f.p.Info.Uses[id].(*types.Builtin); isBuiltin {
			return true
		}
	}
	callee, _ := f.p.calleeOf(call)
	return callee != nil && f.prog.isTerminal(callee)
}

// ---- assignment and writes ----

func (f *intervalFlow) assign(s *ast.AssignStmt, st *absState) {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
			// Tuple assignment from one call: per-result summary.
			f.evalForEffects(s.Rhs[0], st)
			vals := f.callResults(s.Rhs[0], st, len(s.Lhs))
			for i, lhs := range s.Lhs {
				f.writeTo(lhs, vals[i], nil, token.ILLEGAL, st)
			}
			return
		}
		// Parallel semantics: evaluate every rhs before any write.
		vals := make([]ival, len(s.Rhs))
		for i, r := range s.Rhs {
			vals[i] = f.eval(r, st)
		}
		for i, lhs := range s.Lhs {
			if i < len(vals) {
				f.writeTo(lhs, vals[i], s.Rhs[i], token.ASSIGN, st)
			}
		}
	default: // op-assign
		if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
			return
		}
		lhs, rhs := s.Lhs[0], s.Rhs[0]
		old := f.lhsIval(lhs, st)
		rv := f.eval(rhs, st)
		var nv ival
		switch s.Tok {
		case token.ADD_ASSIGN:
			nv = old.add(rv)
			f.noteAccum(lhs, true, s.TokPos, st)
		case token.SUB_ASSIGN:
			nv = old.sub(rv)
			f.noteAccum(lhs, false, s.TokPos, st)
		case token.MUL_ASSIGN:
			nv = old.mul(rv)
		case token.QUO_ASSIGN:
			nv = old.div(rv)
		case token.REM_ASSIGN:
			nv = old.rem(rv)
		default:
			nv = topIval()
		}
		f.writeOpAssign(lhs, nv, rhs, rv, s.Tok, st)
	}
}

// callResults evaluates a multi-result call into per-result intervals.
func (f *intervalFlow) callResults(e ast.Expr, st *absState, n int) []ival {
	out := make([]ival, n)
	for i := range out {
		out[i] = topIval()
	}
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return out
	}
	callee, iface := f.p.calleeOf(call)
	if callee == nil {
		return out
	}
	sums := f.summariesFor(callee, iface)
	for i := range out {
		if i < len(sums) {
			out[i] = sums[i]
		}
	}
	return out
}

// lhsIval is the current abstract value of an assignable expression.
func (f *intervalFlow) lhsIval(lhs ast.Expr, st *absState) ival {
	if obj, _ := f.refObj(lhs); obj != nil {
		return f.stateIval(st, obj)
	}
	return f.eval(lhs, st).meet(typeRange(f.p.Info.TypeOf(lhs)))
}

// refObj resolves an ident or selector to its object; isField reports a
// struct-field target.
func (f *intervalFlow) refObj(e ast.Expr) (types.Object, bool) {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj := f.p.Info.Uses[e]
		if obj == nil {
			obj = f.p.Info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			return v, v.IsField()
		}
		return nil, false
	case *ast.SelectorExpr:
		if sel, ok := f.p.Info.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				return v, true
			}
			return nil, false
		}
		if v, ok := f.p.Info.Uses[e.Sel].(*types.Var); ok { // pkg-qualified var
			return v, false
		}
	}
	return nil, false
}

// writeTo performs a plain (non-op) abstract write.
func (f *intervalFlow) writeTo(lhs ast.Expr, v ival, rhs ast.Expr, tok token.Token, st *absState) {
	obj, isField := f.refObj(lhs)
	if obj == nil {
		return
	}
	st.invalidate(obj)
	if !isNumericType(obj.Type()) {
		return
	}
	st.vals[obj] = v.meet(typeRange(obj.Type()))
	fv, _ := obj.(*types.Var)
	if fv == nil || !isField {
		return
	}
	fc, annotated := f.ct.fields[fv]
	if !annotated || fv.Pkg() != f.p.Types {
		return // write obligations live in the declaring package only
	}
	f.noteWrite(fv, lhs)
	for i, a := range fc.atoms {
		if a.path == nil {
			continue
		}
		key := symKey{fv, i}
		ok := false
		if rhs != nil && tok == token.ASSIGN {
			// Identity: f = cfg.Bound trivially satisfies f <= cfg.Bound.
			if base := f.instanceCanon(lhs); base != "" {
				if bc, okc := atomBoundCanon(base, a); okc {
					objs := map[types.Object]bool{}
					if rc, okr := canonExpr(f.p, rhs, objs); okr && rc == bc {
						ok = true
					}
				}
			}
		}
		if !ok {
			// Numeric bridge: a small constant write satisfies a symbolic
			// bound whose own contract keeps it large enough (qBytes = 0
			// vs qBytes <= cfg.BufferBytes with BufferBytes >= 1).
			ok = f.symNumericBridge(a, v)
		}
		st.sym[key] = ok
	}
}

// writeOpAssign handles += / -= / *= ... including symbolic-atom
// preservation rules.
func (f *intervalFlow) writeOpAssign(lhs ast.Expr, nv ival, rhs ast.Expr, rv ival, tok token.Token, st *absState) {
	obj, isField := f.refObj(lhs)
	if obj == nil {
		return
	}
	fv, _ := obj.(*types.Var)
	var fc *fieldContract
	if fv != nil && isField && fv.Pkg() == f.p.Types {
		fc = f.ct.fields[fv]
	}
	// Consume facts BEFORE the write invalidates them.
	var preserved map[int]bool
	if fc != nil {
		preserved = map[int]bool{}
		base := f.instanceCanon(lhs)
		for i, a := range fc.atoms {
			if a.path == nil {
				continue
			}
			key := symKey{fv, i}
			held, tracked := st.sym[key]
			holds := !tracked || held
			keep := false
			switch tok {
			case token.ADD_ASSIGN:
				if a.upper {
					// f += e keeps f <= B when the guard already proved
					// f + e <= B on this path.
					if base != "" {
						if bc, okc := atomBoundCanon(base, a); okc {
							objs := map[types.Object]bool{}
							lc, okl := canonExpr(f.p, lhs, objs)
							rc, okr := canonExpr(f.p, rhs, objs)
							if okl && okr {
								if _, okf := st.factHolds("("+lc+"+"+rc+")", bc); okf {
									keep = true
								}
							}
						}
					}
				} else {
					keep = holds && rv.lo >= 0 // adding non-negative keeps lower bounds
				}
			case token.SUB_ASSIGN:
				if a.upper {
					keep = holds && rv.lo >= 0 // subtracting non-negative keeps upper bounds
				} else {
					keep = holds && rv.hi <= 0
				}
			}
			preserved[i] = keep || f.symNumericBridge(a, nv)
		}
	}
	st.invalidate(obj)
	if isNumericType(obj.Type()) {
		st.vals[obj] = nv.meet(typeRange(obj.Type()))
	}
	if fc != nil {
		f.noteWrite(fv, lhs)
		for i, a := range fc.atoms {
			if a.path == nil {
				continue
			}
			st.sym[symKey{fv, i}] = preserved[i]
		}
	}
}

// symNumericBridge proves a symbolic atom from numbers alone: the written
// value's extreme against the one-level numeric contract of the bound.
func (f *intervalFlow) symNumericBridge(a atom, v ival) bool {
	term, ok := a.path[len(a.path)-1].(*types.Var)
	if !ok {
		return false
	}
	bc, ok := f.ct.fields[term]
	if !ok {
		return false
	}
	bv := numericIval(bc.atoms)
	if a.upper {
		if a.strict {
			return v.hi < bv.lo
		}
		return v.hi <= bv.lo
	}
	if a.strict {
		return v.lo > bv.hi
	}
	return v.lo >= bv.hi
}

// noteWrite records a write site to an annotated field, remembering the
// instance canon so symbolic bounds can be rendered later.
func (f *intervalFlow) noteWrite(fv *types.Var, lhs ast.Expr) {
	if !f.sink {
		return
	}
	pos := lhs.Pos()
	if prev, ok := f.writes[fv]; !ok || pos > prev {
		f.writes[fv] = pos
	}
	if base := f.instanceCanon(lhs); base != "" {
		f.baseOf[fv] = base
	}
}

// instanceCanon is the canonical form of the instance expression of a
// field access: canon(p) for p.qBytes, "" for a bare ident.
func (f *intervalFlow) instanceCanon(lhs ast.Expr) string {
	sel, ok := unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	objs := map[types.Object]bool{}
	base, ok := canonExpr(f.p, sel.X, objs)
	if !ok {
		return ""
	}
	return base
}

// noteAccum records a narrow-typed accumulation candidate: += / ++ (or
// their downward twins) on a struct field or an element of a field-held
// slice, unless a contract bounds the growing side. Locals are excluded as
// noise (loop counters); only fields accumulate across calls.
func (f *intervalFlow) noteAccum(lhs ast.Expr, up bool, pos token.Pos, st *absState) {
	if !f.sink || f.seenAccum[pos] {
		return
	}
	t := f.p.Info.TypeOf(lhs)
	b, ok := t.(*types.Basic)
	if !ok {
		if named, okN := t.(*types.Named); okN {
			b, ok = named.Underlying().(*types.Basic)
		}
	}
	if !ok || b == nil || b.Info()&types.IsInteger == 0 {
		return
	}
	if !narrowIntKind(b.Kind()) {
		return
	}
	// Field target, or index into a field-held slice/array.
	target := unparen(lhs)
	if ix, okI := target.(*ast.IndexExpr); okI {
		target = unparen(ix.X)
	}
	fv, isField := f.refObj(target)
	if fv == nil || !isField {
		return
	}
	if fvv, okV := fv.(*types.Var); okV {
		if fc, okC := f.ct.fields[fvv]; okC {
			d := f.ct.declaredIval(fc.atoms)
			if up && (!math.IsInf(d.hi, 1) || hasSymAtom(fc, true)) {
				return
			}
			if !up && (!math.IsInf(d.lo, -1) || hasSymAtom(fc, false)) {
				return
			}
		}
	}
	f.seenAccum[pos] = true
	f.accums = append(f.accums, accumSite{pos: pos, expr: types.ExprString(lhs), typ: b, up: up})
}

func hasSymAtom(fc *fieldContract, upper bool) bool {
	for _, a := range fc.atoms {
		if a.path != nil && a.upper == upper {
			return true
		}
	}
	return false
}

// narrowIntKind reports integer kinds the overflow analyzer treats as
// narrow. Plain int/uint count: the module targets 32-bit floors for
// portability, and a cumulative tally that is only safe on 64-bit hosts
// is exactly the bug class this analyzer exists for.
func narrowIntKind(k types.BasicKind) bool {
	switch k {
	case types.Int, types.Int8, types.Int16, types.Int32,
		types.Uint, types.Uint8, types.Uint16, types.Uint32:
		return true
	}
	return false
}

// checkZeroStruct records obligations for zero-valued declarations of
// structs with annotated fields declared in this package.
func (f *intervalFlow) checkZeroStruct(t types.Type, pos token.Pos, st *absState) {
	if !f.sink {
		return
	}
	stc, ok := derefStruct(t)
	if !ok {
		return
	}
	zero := ival{0, 0}
	for i := 0; i < stc.NumFields(); i++ {
		fv := stc.Field(i)
		fc, okC := f.ct.fields[fv]
		if !okC || fv.Pkg() != f.p.Types {
			continue
		}
		for _, a := range fc.atoms {
			if f.atomProvenValue(a, zero) {
				continue
			}
			f.addObl(pos, "zero value leaves %s.%s unproven against //inv: %s",
				ownerName(fc), fv.Name(), a.describe())
		}
	}
}

func ownerName(fc *fieldContract) string {
	if fc.owner != nil {
		return fc.owner.Name()
	}
	return "?"
}

func (f *intervalFlow) addObl(pos token.Pos, format string, args ...any) {
	if !f.sink || f.seenObl[pos] {
		return
	}
	f.seenObl[pos] = true
	f.obls = append(f.obls, obligation{pos: pos, msg: fmt.Sprintf(format, args...)})
}

// ---- expression evaluation ----

// eval computes the interval of e in st. Constants fold first; every other
// result is met with the expression's static type range.
func (f *intervalFlow) eval(e ast.Expr, st *absState) ival {
	if e == nil {
		return topIval()
	}
	if tv, ok := f.p.Info.Types[e]; ok && tv.Value != nil {
		return constIval(tv.Value)
	}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return f.eval(e.X, st)
	case *ast.Ident, *ast.SelectorExpr:
		if obj, _ := f.refObj(e); obj != nil {
			return f.stateIval(st, obj)
		}
	case *ast.UnaryExpr:
		switch e.Op {
		case token.SUB:
			return f.eval(e.X, st).neg()
		case token.ADD:
			return f.eval(e.X, st)
		}
	case *ast.BinaryExpr:
		return f.binary(e, st)
	case *ast.CallExpr:
		return f.call(e, st)
	case *ast.FuncLit:
		f.funcLit(e)
	}
	return typeRange(f.p.Info.TypeOf(e))
}

func constIval(v constant.Value) ival {
	switch v.Kind() {
	case constant.Int, constant.Float:
		x, _ := constant.Float64Val(constant.ToFloat(v))
		return ival{x, x}
	}
	return topIval()
}

func (f *intervalFlow) binary(e *ast.BinaryExpr, st *absState) ival {
	x := f.eval(e.X, st)
	y := f.eval(e.Y, st)
	isInt := isIntegerType(f.p.Info.TypeOf(e))
	tr := typeRange(f.p.Info.TypeOf(e))
	var r ival
	switch e.Op {
	case token.ADD:
		r = x.add(y)
	case token.SUB:
		r = x.sub(y)
		// Relational fact: a fact y <= x sharpens x - y to >= 0 (>= 1 for
		// strict integer facts) — the `acked := ackNo - sndUna` shape.
		objs := map[types.Object]bool{}
		cx, okx := canonExpr(f.p, e.X, objs)
		cy, oky := canonExpr(f.p, e.Y, objs)
		if okx && oky {
			if strict, held := st.factHolds(cy, cx); held {
				lo := 0.0
				if strict && isInt {
					lo = 1
				}
				r = r.meet(ival{lo, posInf})
			}
			if strict, held := st.factHolds(cx, cy); held {
				hi := 0.0
				if strict && isInt {
					hi = -1
				}
				r = r.meet(ival{negInf, hi})
			}
		}
	case token.MUL:
		r = x.mul(y)
	case token.QUO:
		r = x.div(y)
	case token.REM:
		r = x.rem(y)
	case token.AND:
		// Two's complement: one non-negative operand makes the AND
		// non-negative and bounds it by that operand.
		switch {
		case x.lo >= 0 && y.lo >= 0:
			r = ival{0, math.Min(x.hi, y.hi)}
		case x.lo >= 0:
			r = ival{0, x.hi}
		case y.lo >= 0:
			r = ival{0, y.hi}
		default:
			r = topIval()
		}
	case token.AND_NOT:
		if x.lo >= 0 {
			r = ival{0, x.hi}
		} else {
			r = topIval()
		}
	case token.OR, token.XOR:
		if x.lo >= 0 && y.lo >= 0 {
			r = ival{0, posInf} // type-range meet bounds the top end
		} else {
			r = topIval()
		}
	case token.SHL:
		if c, ok := constShift(y); ok {
			r = x.mul(ival{math.Ldexp(1, c), math.Ldexp(1, c)})
		} else if x.lo >= 0 {
			r = ival{0, posInf}
		} else {
			r = topIval()
		}
	case token.SHR:
		if c, ok := constShift(y); ok {
			d := math.Ldexp(1, c)
			r = ival{math.Floor(x.lo / d), math.Floor(x.hi / d)}
		} else if x.lo >= 0 {
			r = ival{0, x.hi}
		} else {
			r = topIval()
		}
	default:
		return topIval() // comparisons, logical ops: not numeric
	}
	return r.meet(tr)
}

func constShift(y ival) (int, bool) {
	//lint:allow floateq exact singleton test on interval endpoints: the bounds are either bit-identical or the shift is unknown
	if y.lo == y.hi && y.lo >= 0 && y.lo < 64 && y.lo == math.Trunc(y.lo) {
		return int(y.lo), true
	}
	return 0, false
}

// call evaluates a call: conversions, builtins, then callee summaries and
// result contracts; interface calls join over the implementations the
// call graph resolves.
func (f *intervalFlow) call(call *ast.CallExpr, st *absState) ival {
	tr := typeRange(f.p.Info.TypeOf(call))
	if tv, ok := f.p.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return f.evalConv(f.p.Info.TypeOf(call), call.Args[0], st)
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := f.p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "len", "cap":
				return ival{0, maxI64f}
			case "min", "max":
				var r ival
				for i, a := range call.Args {
					v := f.eval(a, st)
					if i == 0 {
						r = v
						continue
					}
					if id.Name == "min" {
						r = ival{math.Min(r.lo, v.lo), math.Min(r.hi, v.hi)}
					} else {
						r = ival{math.Max(r.lo, v.lo), math.Max(r.hi, v.hi)}
					}
				}
				return r.meet(tr)
			}
			return tr
		}
	}
	callee, iface := f.p.calleeOf(call)
	if callee == nil {
		return tr
	}
	f.noteCheckCall(call, callee, st)
	f.checkCallArgs(call, callee, st)
	sums := f.summariesFor(callee, iface)
	if len(sums) == 1 {
		return sums[0].meet(tr)
	}
	return tr
}

// summariesFor is the per-result interval summary of a callee, joining
// over implementations for interface methods and meeting any declared
// result contract.
func (f *intervalFlow) summariesFor(callee *types.Func, iface bool) []ival {
	var sums []ival
	if iface {
		for _, impl := range f.prog.implementations(callee) {
			is := f.prog.intervalResultIvals(impl.fn)
			if is == nil {
				sums = nil // an unsummarized implementation: give up
				break
			}
			if sums == nil {
				sums = append([]ival(nil), is...)
			} else {
				for i := range sums {
					if i < len(is) {
						sums[i] = sums[i].join(is[i])
					}
				}
			}
		}
	} else {
		sums = f.prog.intervalResultIvals(callee)
	}
	fc, ok := f.ct.funcs[callee]
	if ok && len(fc.result) > 0 {
		d := f.ct.declaredIval(fc.result)
		if len(sums) == 0 {
			sums = []ival{d}
		} else if len(sums) == 1 {
			sums[0] = sums[0].meet(d)
		}
	}
	return sums
}

// evalConv applies Go conversion semantics: a value that provably fits the
// target keeps its interval; an integer that may not fit wraps (full
// target range); float→int assumes saturating truncation with outward
// rounding.
func (f *intervalFlow) evalConv(target types.Type, arg ast.Expr, st *absState) ival {
	v := f.eval(arg, st)
	tr := typeRange(target)
	if !isIntegerType(target) {
		return v // numeric→float keeps the interval; non-numeric is top anyway
	}
	if isIntegerType(f.p.Info.TypeOf(arg)) {
		if v.lo >= tr.lo && v.hi <= tr.hi {
			return v
		}
		return tr
	}
	return ival{math.Floor(v.lo), math.Ceil(v.hi)}.meet(tr)
}

// evalForEffects walks an expression for its side recordings (calls,
// function literals, composite literals) without needing its value.
func (f *intervalFlow) evalForEffects(e ast.Expr, st *absState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			f.eval(n, st)
			return false // eval descends into args itself via contracts
		case *ast.FuncLit:
			f.funcLit(n)
			return false
		case *ast.CompositeLit:
			f.composite(n, st)
		}
		return true
	})
}

// funcLit interprets a function literal body inline: a fresh entry state
// (its captured fields re-assume their contracts), sharing this flow's
// collectors so writes inside closures still owe their proofs.
func (f *intervalFlow) funcLit(lit *ast.FuncLit) {
	if !f.sink || lit.Body == nil {
		return
	}
	f.stmt(lit.Body, newAbsState())
}

// composite records proof obligations for struct literals of types with
// annotated fields declared in this package — both explicit values and
// the implied zeros of omitted fields.
func (f *intervalFlow) composite(cl *ast.CompositeLit, st *absState) {
	if !f.sink {
		return
	}
	t := f.p.Info.TypeOf(cl)
	stc, ok := derefStruct(t)
	if !ok {
		return
	}
	given := map[*types.Var]ival{}
	keyed := false
	for i, elt := range cl.Elts {
		if kv, okKV := elt.(*ast.KeyValueExpr); okKV {
			keyed = true
			key, okK := kv.Key.(*ast.Ident)
			if !okK {
				continue
			}
			if fv, okF := f.p.Info.Uses[key].(*types.Var); okF {
				given[fv] = f.eval(kv.Value, st)
			}
		} else if i < stc.NumFields() {
			given[stc.Field(i)] = f.eval(elt, st)
		}
	}
	for i := 0; i < stc.NumFields(); i++ {
		fv := stc.Field(i)
		fc, okC := f.ct.fields[fv]
		if !okC || fv.Pkg() != f.p.Types {
			continue
		}
		v, explicit := given[fv]
		if !explicit {
			if !keyed && len(cl.Elts) > 0 {
				continue // positional literal already covered every field
			}
			v = ival{0, 0}
		}
		for _, a := range fc.atoms {
			if f.atomProvenValue(a, v) {
				continue
			}
			f.addObl(cl.Pos(), "composite literal leaves %s.%s unproven against //inv: %s (value %s)",
				ownerName(fc), fv.Name(), a.describe(), v)
		}
	}
}

// ---- contract proof predicates ----

// atomProvenValue checks a numeric proof of one atom for a value: numeric
// atoms compare directly, symbolic atoms go through the numeric bridge.
func (f *intervalFlow) atomProvenValue(a atom, v ival) bool {
	if v.empty() {
		return true // unreachable
	}
	if a.path != nil {
		return f.symNumericBridge(a, v)
	}
	if a.upper {
		if a.strict {
			return v.hi < a.num
		}
		return v.hi <= a.num
	}
	if a.strict {
		return v.lo > a.num
	}
	return v.lo >= a.num
}

// atomProvenFor additionally accepts canonical identity with the symbolic
// bound (returning cfg.MinCwnd itself proves return >= cfg.MinCwnd) and
// one-level numeric implication of the bound's own contract.
func (f *intervalFlow) atomProvenFor(a atom, v ival, expr ast.Expr, st *absState) bool {
	if f.atomProvenValue(a, v) {
		return true
	}
	if a.path == nil {
		return false
	}
	// Declared numeric implication: x >= cfg.MinCwnd with MinCwnd >= 1
	// holds when x provably stays >= ... the bound's numeric contract has
	// already been folded into declaredIval; here try identity.
	if expr == nil {
		return false
	}
	objs := map[types.Object]bool{}
	ec, ok := canonExpr(f.p, expr, objs)
	if !ok {
		return false
	}
	// Identity against the bound path rendered from any base: compare the
	// terminal object chain by suffix.
	suffix := ""
	for _, o := range a.path {
		suffix += "." + objKey(o)
	}
	return strings.HasSuffix(ec, suffix) || ec == suffix[1:]
}

// ---- branch-edge narrowing ----

func (f *intervalFlow) assume(e ast.Expr, st *absState, want bool) {
	if e == nil || st.unreachable {
		return
	}
	switch e := unparen(e).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			f.assume(e.X, st, !want)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			if want {
				f.assume(e.X, st, true)
				f.assume(e.Y, st, true)
			}
		case token.LOR:
			if !want {
				// De Morgan: !(a || b) assumes both negations — the shape
				// of `if g <= 0 || g > 1 { panic }` validation guards.
				f.assume(e.X, st, false)
				f.assume(e.Y, st, false)
			}
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			op := e.Op
			if !want {
				op = negateCmp(op)
			}
			f.assumeCmp(e.X, op, e.Y, st)
		}
	}
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	default:
		return token.EQL
	}
}

func (f *intervalFlow) assumeCmp(x ast.Expr, op token.Token, y ast.Expr, st *absState) {
	vx := f.eval(x, st)
	vy := f.eval(y, st)
	intX := isIntegerType(f.p.Info.TypeOf(x))
	narrow := func(e ast.Expr, bound ival) {
		obj, _ := f.refObj(e)
		if obj == nil || !isNumericType(obj.Type()) {
			return
		}
		nv := f.stateIval(st, obj).meet(bound)
		st.vals[obj] = nv
	}
	adj := 0.0
	if intX {
		adj = 1
	}
	switch op {
	case token.LSS:
		narrow(x, ival{negInf, vy.hi - adj})
		narrow(y, ival{vx.lo + adj, posInf})
	case token.LEQ:
		narrow(x, ival{negInf, vy.hi})
		narrow(y, ival{vx.lo, posInf})
	case token.GTR:
		narrow(x, ival{vy.lo + adj, posInf})
		narrow(y, ival{negInf, vx.hi - adj})
	case token.GEQ:
		narrow(x, ival{vy.lo, posInf})
		narrow(y, ival{negInf, vx.hi})
	case token.EQL:
		narrow(x, vy)
		narrow(y, vx)
	case token.NEQ:
		return
	}
	// Record the fact, normalized as left <= right.
	objs := map[types.Object]bool{}
	cx, okx := canonExpr(f.p, x, objs)
	cy, oky := canonExpr(f.p, y, objs)
	if !okx || !oky {
		return
	}
	add := func(l, r string, strict bool) {
		st.facts = append(st.facts, fact{left: l, right: r, strict: strict, objs: objs})
	}
	switch op {
	case token.LSS:
		add(cx, cy, true)
	case token.LEQ:
		add(cx, cy, false)
	case token.GTR:
		add(cy, cx, true)
	case token.GEQ:
		add(cy, cx, false)
	case token.EQL:
		add(cx, cy, false)
		add(cy, cx, false)
	}
}

// ---- internal/check recognition and call-site obligations ----

const checkPkgPath = "dctcpplus/internal/check"

// checkValueArgIdx maps a check helper to the index of its asserted value
// (and, where present, its bound argument).
func checkArgIdx(name string) (val, bound int, ok bool) {
	switch name {
	case "Unit", "NonNegative", "NonNegativeDur", "ZeroDur":
		return 1, -1, true
	case "AtLeast", "AtMost":
		return 1, 2, true
	}
	return 0, 0, false
}

// noteCheckCall records internal/check assertion sites: the runtime half
// of the contract, consumed by rangeproof (discharge) and checkcover
// (unification hygiene).
func (f *intervalFlow) noteCheckCall(call *ast.CallExpr, callee *types.Func, st *absState) {
	if !f.sink || callee.Pkg() == nil || callee.Pkg().Path() != checkPkgPath {
		return
	}
	if f.seenCheck[call.Pos()] {
		return
	}
	valIdx, boundIdx, ok := checkArgIdx(callee.Name())
	if !ok || valIdx >= len(call.Args) {
		return
	}
	f.seenCheck[call.Pos()] = true
	ca := checkAssert{fnName: callee.Name(), pos: call.Pos()}
	// The what-string must be a non-empty string constant to count as a
	// *named* assertion.
	if len(call.Args) > 0 {
		if tv, okT := f.p.Info.Types[call.Args[0]]; okT && tv.Value != nil && tv.Value.Kind() == constant.String {
			ca.named = constant.StringVal(tv.Value) != ""
		}
	}
	val := unwrapValueExpr(call.Args[valIdx])
	if obj, isField := f.refObj(val); obj != nil && isField {
		ca.target, _ = obj.(*types.Var)
		if sel, okS := unparen(val).(*ast.SelectorExpr); okS {
			objs := map[types.Object]bool{}
			if base, okB := canonExpr(f.p, sel.X, objs); okB {
				ca.baseCanon = base
			}
		}
	}
	if boundIdx >= 0 && boundIdx < len(call.Args) {
		ca.boundV = f.eval(call.Args[boundIdx], st)
		objs := map[types.Object]bool{}
		if c, okC := canonExpr(f.p, call.Args[boundIdx], objs); okC {
			ca.boundCanon = c
		}
	}
	f.checks = append(f.checks, ca)
}

// unwrapValueExpr strips conversions, parens and unary plus around a check
// helper's value argument, so check.AtMost(..., int64(p.qBytes), ...)
// resolves to the field.
func unwrapValueExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.ADD {
				return e
			}
			e = x.X
		case *ast.CallExpr:
			if len(x.Args) != 1 {
				return e
			}
			return unwrapValueExpr(x.Args[0]) // conversion or accessor: look through
		default:
			return e
		}
	}
}

// checkCallArgs records obligations for call arguments against the
// callee's //inv: parameter contracts.
func (f *intervalFlow) checkCallArgs(call *ast.CallExpr, callee *types.Func, st *absState) {
	if !f.sink || call.Ellipsis.IsValid() {
		return
	}
	fc, ok := f.ct.funcs[callee]
	if !ok || len(fc.params) == 0 {
		return
	}
	node := f.prog.nodes[callee]
	if node == nil {
		return
	}
	var paramVars []*types.Var
	for _, fl := range node.decl.Type.Params.List {
		for _, n := range fl.Names {
			pv, _ := node.pkg.Info.Defs[n].(*types.Var)
			paramVars = append(paramVars, pv)
		}
		if len(fl.Names) == 0 {
			paramVars = append(paramVars, nil)
		}
	}
	sig, _ := callee.Type().(*types.Signature)
	for i, arg := range call.Args {
		if i >= len(paramVars) || paramVars[i] == nil {
			continue
		}
		if sig != nil && sig.Variadic() && i >= sig.Params().Len()-1 {
			break
		}
		atoms := fc.params[paramVars[i]]
		if len(atoms) == 0 {
			continue
		}
		v := f.eval(arg, st)
		declared := f.ct.declaredIval(atoms)
		for _, a := range atoms {
			if f.atomProvenFor(a, v, arg, st) {
				continue
			}
			_ = declared
			f.addObl(arg.Pos(), "argument %s cannot be proven to satisfy //inv: %s on parameter %q of %s (computed %s)",
				types.ExprString(arg), a.describe(), paramVars[i].Name(), callee.Name(), v)
		}
	}
}

// ---- summaries lifted over the Program ----

// summary is the per-result interval table for this function after run().
func (f *intervalFlow) summary() []ival {
	sig, _ := f.fn.Type().(*types.Signature)
	if sig == nil {
		return nil
	}
	out := make([]ival, sig.Results().Len())
	for i := range out {
		out[i] = topIval().meet(typeRange(sig.Results().At(i).Type()))
		if f.retsValid && i < len(f.rets) {
			out[i] = f.rets[i].meet(out[i])
		}
	}
	if fc, ok := f.ct.funcs[f.fn]; ok && len(fc.result) > 0 && len(out) == 1 {
		out[0] = out[0].meet(f.ct.declaredIval(fc.result))
	}
	return out
}

// intervalResultIvals answers from the (possibly still converging)
// summary table; nil when the function has no summary yet.
func (prog *Program) intervalResultIvals(fn *types.Func) []ival {
	if prog.intervalSummaries == nil {
		return nil
	}
	return prog.intervalSummaries[fn]
}

// buildIntervalSummaries computes per-function result intervals to a
// bounded descending fixed point over the whole program, in deterministic
// node order (mirrors buildUnitSummaries).
func (prog *Program) buildIntervalSummaries() {
	prog.build()
	if prog.intervalSummaries != nil {
		return
	}
	ct := prog.contracts()
	prog.intervalSummaries = make(map[*types.Func][]ival)
	for pass := 0; pass < summaryPassCap; pass++ {
		changed := false
		for _, n := range prog.order {
			fl := newIntervalFlow(n.pkg, prog, ct, n.decl, n.fn, false)
			fl.run()
			sum := fl.summary()
			old, seen := prog.intervalSummaries[n.fn]
			if !seen || !ivalsEqual(old, sum) {
				prog.intervalSummaries[n.fn] = sum
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

func ivalsEqual(a, b []ival) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ---- the shared per-package analysis ----

// unprovenAtom is one contract atom a writer function could not discharge
// statically.
type unprovenAtom struct {
	field    *types.Var
	contract *fieldContract
	atomIdx  int
	pos      token.Pos // last write site
	got      string    // rendered exit interval
	fnName   string
}

// funcIntervalResult is everything the interpreter learned about one
// function, shared by the three interval analyzers.
type funcIntervalResult struct {
	node     *funcNode
	unproven []unprovenAtom
	checks   []checkAssert
	accums   []accumSite
	obls     []obligation
}

type intervalAnalysis struct {
	funcs []*funcIntervalResult
}

// intervalAnalysisOf runs the interpreter once over every function of p
// (cached per package), after the summaries converge.
func (prog *Program) intervalAnalysisOf(p *Package) *intervalAnalysis {
	prog.build()
	if a, ok := prog.intervalResults[p]; ok {
		return a
	}
	prog.buildIntervalSummaries()
	ct := prog.contracts()
	a := &intervalAnalysis{}
	for _, n := range prog.order {
		if n.pkg != p {
			continue
		}
		fl := newIntervalFlow(n.pkg, prog, ct, n.decl, n.fn, true)
		fl.run()
		a.funcs = append(a.funcs, &funcIntervalResult{
			node:     n,
			unproven: fl.finish(),
			checks:   fl.checks,
			accums:   fl.accums,
			obls:     fl.obls,
		})
	}
	if prog.intervalResults == nil {
		prog.intervalResults = make(map[*Package]*intervalAnalysis)
	}
	prog.intervalResults[p] = a
	return a
}

// finish evaluates the exit-state write obligations: for every annotated
// field this function wrote, each contract atom must hold at every exit.
func (f *intervalFlow) finish() []unprovenAtom {
	if len(f.writes) == 0 {
		return nil
	}
	var out []unprovenAtom
	// Deterministic order: fields sorted by their last-write position.
	var fields []*types.Var
	for fv := range f.writes {
		fields = append(fields, fv)
	}
	sort.Slice(fields, func(i, j int) bool { return f.writes[fields[i]] < f.writes[fields[j]] })
	exit := f.exit
	if !f.hasExit {
		return nil // every path panics: nothing escapes
	}
	for _, fv := range fields {
		fc := f.ct.fields[fv]
		v := f.stateIval(exit, fv)
		for i, a := range fc.atoms {
			proven := false
			if a.path == nil {
				proven = f.atomProvenValue(a, v)
			} else {
				held, tracked := exit.sym[symKey{fv, i}]
				proven = !tracked || held
			}
			if proven {
				continue
			}
			out = append(out, unprovenAtom{
				field: fv, contract: fc, atomIdx: i,
				pos: f.writes[fv], got: v.String(), fnName: f.fn.Name(),
			})
		}
	}
	return out
}
