package lint

// HandleState proves the scheduler-handle lifecycle declared by //state:
// handle protocols (sim.Event: armed -> dead; sim.Timer: disarmed <->
// armed). A recycled handle must never be touched after it may have
// fired: the freelist reuses the struct, so a stale Cancel would cancel
// somebody else's event. On top of the shared typestate interpreter
// (typestate.go) it reports:
//
//   - Cancel (or any //state: kill) on a possibly-dead handle,
//   - reads of a handle variable on a path where it already fired or was
//     cancelled,
//   - //state: move misuse: calling a transition such as Timer.Reset or
//     Timer.Stop when the receiver may be outside the transition's
//     declared source states,
//   - overwriting a handle variable while it may still be armed (the old
//     handle becomes uncancellable),
//   - the clear-field-first rule from internal/sim/scheduler.go: when a
//     struct field of handle type is armed with a callback, the resolved
//     callback body must set that field to nil as its very first
//     statement, before any re-arm or cancel.
func HandleState() *Analyzer {
	return &Analyzer{
		Name: "handlestate",
		Doc:  "scheduler-handle lifecycle: stale Cancel, dead-handle use, transition misuse and the clear-field-first rule",
		Run: func(p *Package) []Diagnostic {
			return typestateFindings(p, "handlestate")
		},
	}
}
