package lint

import (
	"strings"
	"testing"
)

// TestLoadTypeError pins the loader's failure mode on a package that does
// not type-check: a descriptive error mentioning the offending file, never
// a panic, and no package handed back for analysis.
func TestLoadTypeError(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("internal/lint/testdata/broken")
	if err == nil {
		t.Fatalf("Load succeeded with %d package(s), want a type error", len(pkgs))
	}
	if !strings.Contains(err.Error(), "broken.go") {
		t.Errorf("error does not name the offending file: %v", err)
	}
	if !strings.HasPrefix(err.Error(), "lint: ") {
		t.Errorf("error is not namespaced: %v", err)
	}
}

// TestLoadMissingDir pins the behavior on a directory with no Go files:
// "./..." skips it silently, but naming it directly reports the error.
func TestLoadMissingDir(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loader.Load("internal/lint/no/such/dir"); err == nil {
		t.Fatal("Load of a nonexistent directory succeeded")
	}
}

// TestLoaderFindsModuleRoot checks the go.mod walk-up from a subdirectory.
func TestLoaderFindsModuleRoot(t *testing.T) {
	loader, err := NewLoader("testdata/src/clean")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(loader.ModuleRoot(), "repo") {
		t.Errorf("module root = %q, want the repository root", loader.ModuleRoot())
	}
	pkgs, err := loader.Load("./internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "dctcpplus/internal/sim" {
		t.Errorf("loaded %+v, want exactly dctcpplus/internal/sim", pkgs)
	}
}
