package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// This file implements the //inv: range-contract annotation layer: the
// grammar, its parser, and the whole-program contract table the interval
// analyzers (rangeproof, overflow, checkcover) consume.
//
// A contract is a conjunction of comparisons attached to a struct field or
// to a function's parameters/results:
//
//	// alpha is the congestion-extent estimate.
//	//inv: 0 <= alpha && alpha <= 1
//	alpha float64
//
//	// clampCwnd bounds a window value to [MinCwnd, MaxCwnd].
//	//inv: return >= 1
//	func (s *Sender) clampCwnd(w float64) float64 { ... }
//
// Grammar (decimal literals only; one //inv: line may carry several
// clauses, and a declaration may carry several //inv: lines):
//
//	contract := clause { "&&" clause }
//	clause   := operand cmp operand { cmp operand }   // chains: 0 <= x <= 1
//	cmp      := "<" | "<=" | ">" | ">="
//	operand  := number | path
//	path     := ident { "." ident }
//
// Exactly one side of every comparison must be the contract's subject: the
// field name, a parameter name, a named result, or the keyword "return"
// (the function's single result). The other side is the bound — a numeric
// literal, or a symbolic path resolving through sibling fields (for field
// contracts: "cfg.BufferBytes" names the sibling field cfg, then its
// BufferBytes field) or receiver fields and parameters (for function
// contracts). Strict integer bounds normalize away (x > 0 becomes x >= 1);
// strict float bounds keep their strictness through proof checking.
//
// Malformed contracts are themselves diagnostics (analyzer "rangeproof"),
// never panics: the parser reports the byte offset of the first error, a
// property the fuzz test pins.

// invOperand is one parsed comparison operand: a number or a dotted path.
type invOperand struct {
	isNum bool
	num   float64
	path  []string
	off   int // byte offset in the contract text, for error positions
}

// invClause is one parsed comparison, already split out of && conjunctions
// and chained comparisons.
type invClause struct {
	lhs, rhs invOperand
	op       token.Token // LSS, LEQ, GTR, GEQ
	src      string      // rendered clause text for diagnostics
}

// invError is a contract parse error carrying the byte offset of the
// offending token within the //inv: payload.
type invError struct {
	off int
	msg string
}

func (e *invError) Error() string { return fmt.Sprintf("offset %d: %s", e.off, e.msg) }

// invLexer tokenizes a contract payload.
type invLexer struct {
	s   string
	pos int
}

type invTokKind int

const (
	invEOF invTokKind = iota
	invIdent
	invNumber
	invDot
	invAndAnd
	invCmp // text holds the operator
)

type invTok struct {
	kind invTokKind
	text string
	off  int
}

func (l *invLexer) next() (invTok, error) {
	for l.pos < len(l.s) && (l.s[l.pos] == ' ' || l.s[l.pos] == '\t') {
		l.pos++
	}
	if l.pos >= len(l.s) {
		return invTok{kind: invEOF, off: l.pos}, nil
	}
	start := l.pos
	c := l.s[l.pos]
	switch {
	case c == '.':
		l.pos++
		return invTok{kind: invDot, text: ".", off: start}, nil
	case c == '&':
		if l.pos+1 < len(l.s) && l.s[l.pos+1] == '&' {
			l.pos += 2
			return invTok{kind: invAndAnd, text: "&&", off: start}, nil
		}
		return invTok{}, &invError{start, "single '&' (want \"&&\")"}
	case c == '<' || c == '>':
		op := string(c)
		l.pos++
		if l.pos < len(l.s) && l.s[l.pos] == '=' {
			op += "="
			l.pos++
		}
		return invTok{kind: invCmp, text: op, off: start}, nil
	case c == '=':
		return invTok{}, &invError{start, "'==' and '=' are not contract operators (declare a range with <= and >=)"}
	case c >= '0' && c <= '9' || c == '-' || c == '+':
		l.pos++
		for l.pos < len(l.s) {
			d := l.s[l.pos]
			if d >= '0' && d <= '9' || d == '.' || d == 'e' || d == 'E' {
				l.pos++
				continue
			}
			if (d == '+' || d == '-') && (l.s[l.pos-1] == 'e' || l.s[l.pos-1] == 'E') {
				l.pos++
				continue
			}
			break
		}
		return invTok{kind: invNumber, text: l.s[start:l.pos], off: start}, nil
	case c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z':
		l.pos++
		for l.pos < len(l.s) {
			d := l.s[l.pos]
			if d == '_' || d >= 'a' && d <= 'z' || d >= 'A' && d <= 'Z' || d >= '0' && d <= '9' {
				l.pos++
				continue
			}
			break
		}
		return invTok{kind: invIdent, text: l.s[start:l.pos], off: start}, nil
	default:
		return invTok{}, &invError{start, fmt.Sprintf("unexpected character %q", c)}
	}
}

// invParser is a one-token-lookahead recursive-descent parser.
type invParser struct {
	lex invLexer
	tok invTok
}

func (p *invParser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

// parseInv parses one //inv: payload into its comparison clauses.
func parseInv(s string) ([]invClause, error) {
	p := &invParser{lex: invLexer{s: s}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind == invEOF {
		return nil, &invError{p.tok.off, "empty contract"}
	}
	var out []invClause
	for {
		clauses, err := p.parseChain()
		if err != nil {
			return nil, err
		}
		out = append(out, clauses...)
		if p.tok.kind == invEOF {
			return out, nil
		}
		if p.tok.kind != invAndAnd {
			return nil, &invError{p.tok.off, fmt.Sprintf("unexpected %q (want \"&&\" or end of contract)", p.tok.text)}
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
}

// parseChain parses operand cmp operand { cmp operand } into one clause
// per adjacent pair. Chains must keep one direction (0 <= x <= 1 is fine,
// 0 <= x >= 1 is an error).
func (p *invParser) parseChain() ([]invClause, error) {
	ops := []invOperand{}
	first, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	ops = append(ops, first)
	var cmps []invTok
	for p.tok.kind == invCmp {
		cmps = append(cmps, p.tok)
		if err := p.advance(); err != nil {
			return nil, err
		}
		o, err := p.parseOperand()
		if err != nil {
			return nil, err
		}
		ops = append(ops, o)
	}
	if len(cmps) == 0 {
		return nil, &invError{p.tok.off, "operand without a comparison"}
	}
	dir := cmps[0].text[0]
	var out []invClause
	for i, c := range cmps {
		if c.text[0] != dir {
			return nil, &invError{c.off, "mixed comparison directions in one chain"}
		}
		out = append(out, invClause{
			lhs: ops[i],
			rhs: ops[i+1],
			op:  cmpToken(c.text),
			src: renderOperand(ops[i]) + " " + c.text + " " + renderOperand(ops[i+1]),
		})
	}
	return out, nil
}

func cmpToken(s string) token.Token {
	switch s {
	case "<":
		return token.LSS
	case "<=":
		return token.LEQ
	case ">":
		return token.GTR
	default:
		return token.GEQ
	}
}

func (p *invParser) parseOperand() (invOperand, error) {
	//lint:allow exhaustive any other token here is a parse error in user input, reported to the annotation author instead of panicking
	switch p.tok.kind {
	case invNumber:
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return invOperand{}, &invError{p.tok.off, fmt.Sprintf("bad numeric literal %q (decimal literals only)", p.tok.text)}
		}
		o := invOperand{isNum: true, num: v, off: p.tok.off}
		return o, p.advance()
	case invIdent:
		o := invOperand{path: []string{p.tok.text}, off: p.tok.off}
		if err := p.advance(); err != nil {
			return invOperand{}, err
		}
		for p.tok.kind == invDot {
			if err := p.advance(); err != nil {
				return invOperand{}, err
			}
			if p.tok.kind != invIdent {
				return invOperand{}, &invError{p.tok.off, "expected identifier after '.'"}
			}
			o.path = append(o.path, p.tok.text)
			if err := p.advance(); err != nil {
				return invOperand{}, err
			}
		}
		return o, nil
	default:
		return invOperand{}, &invError{p.tok.off, fmt.Sprintf("expected a number or identifier, got %q", p.tok.text)}
	}
}

func renderOperand(o invOperand) string {
	if o.isNum {
		return strconv.FormatFloat(o.num, 'g', -1, 64)
	}
	return strings.Join(o.path, ".")
}

// atom is one normalized contract bound: subject <= bound (upper) or
// subject >= bound (lower). The bound is numeric, or a symbolic path of
// resolved field/parameter objects rooted at a sibling of the subject.
type atom struct {
	upper  bool
	strict bool    // float subjects only; integer strictness normalizes away
	num    float64 // numeric bound when path is nil
	path   []types.Object
	src    string // original clause text for diagnostics
}

// describe renders the atom as the original clause for diagnostics.
func (a atom) describe() string { return a.src }

// fieldContract is the parsed, resolved contract of one annotated struct
// field.
type fieldContract struct {
	field *types.Var
	owner *types.TypeName // the declaring named struct type
	atoms []atom
	pos   token.Pos
}

// funcContract carries the parameter and result contracts of one function.
type funcContract struct {
	params map[*types.Var][]atom
	result []atom // atoms on the single result ("return" or its name)
}

// contractTable is the whole-program contract index, built once per
// Program and invalidated when the graph rebuilds.
type contractTable struct {
	fields map[*types.Var]*fieldContract
	funcs  map[*types.Func]*funcContract
	// errs are parse/resolution failures, reported by rangeproof in the
	// package where the annotation lives.
	errs []Diagnostic
}

const invPrefix = "//inv:"

// invPayload returns the text after the //inv: marker, accepting both the
// raw spelling and the "// inv:" form gofmt's doc-comment printer produces
// (the colon is followed by a space, so the line is not a compiler
// directive and formatting inserts the space). A contract must not stop
// binding because the file was formatted.
func invPayload(c *ast.Comment) (string, bool) {
	if rest, ok := strings.CutPrefix(c.Text, invPrefix); ok {
		return rest, true
	}
	if rest, ok := strings.CutPrefix(c.Text, "// inv:"); ok {
		return rest, true
	}
	return "", false
}

// invLines extracts the //inv: payloads of a comment group in order.
func invLines(groups ...*ast.CommentGroup) []string {
	var out []string
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if rest, ok := invPayload(c); ok {
				out = append(out, strings.TrimSpace(rest))
			}
		}
	}
	return out
}

// invComments returns the comments (doc then trailing) of a field that may
// carry //inv: lines, with their positions for error reporting.
func invPos(groups ...*ast.CommentGroup) token.Pos {
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			if _, ok := invPayload(c); ok {
				return c.Pos()
			}
		}
	}
	return token.NoPos
}

// contracts returns the program's contract table, building it on first
// use.
func (prog *Program) contracts() *contractTable {
	prog.build()
	if prog.contractTable != nil {
		return prog.contractTable
	}
	t := &contractTable{
		fields: make(map[*types.Var]*fieldContract),
		funcs:  make(map[*types.Func]*funcContract),
	}
	for _, p := range prog.pkgs {
		t.collectPackage(p)
	}
	prog.contractTable = t
	return t
}

func (t *contractTable) collectPackage(p *Package) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					t.collectStruct(p, ts, st)
				}
			case *ast.FuncDecl:
				t.collectFunc(p, d)
			}
		}
	}
}

// collectStruct parses the //inv: annotations on one struct type's fields.
func (t *contractTable) collectStruct(p *Package, ts *ast.TypeSpec, st *ast.StructType) {
	tn, _ := p.Info.Defs[ts.Name].(*types.TypeName)
	for _, field := range st.Fields.List {
		lines := invLines(field.Doc, field.Comment)
		if len(lines) == 0 {
			continue
		}
		pos := invPos(field.Doc, field.Comment)
		if len(field.Names) != 1 {
			t.errs = append(t.errs, p.diag("rangeproof", pos,
				"//inv: contract requires exactly one field name per declaration"))
			continue
		}
		name := field.Names[0]
		fv, ok := p.Info.Defs[name].(*types.Var)
		if !ok {
			continue
		}
		if !isNumericType(fv.Type()) {
			t.errs = append(t.errs, p.diag("rangeproof", pos,
				"//inv: contract on non-numeric field %s", name.Name))
			continue
		}
		fc := &fieldContract{field: fv, owner: tn, pos: pos}
		for _, line := range lines {
			clauses, err := parseInv(line)
			if err != nil {
				t.errs = append(t.errs, p.diag("rangeproof", pos,
					"malformed //inv: contract on %s: %v", name.Name, err))
				continue
			}
			atoms, err := t.bindAtoms(p, clauses, name.Name, fv.Type(), func(path []string) ([]types.Object, error) {
				return resolveSiblingPath(fv, path)
			})
			if err != nil {
				t.errs = append(t.errs, p.diag("rangeproof", pos,
					"//inv: contract on %s: %v", name.Name, err))
				continue
			}
			fc.atoms = append(fc.atoms, atoms...)
		}
		if len(fc.atoms) > 0 {
			t.fields[fv] = fc
		}
	}
}

// collectFunc parses the //inv: annotations in a function's doc comment.
// Each clause's subject is a parameter name, a named result, or the
// keyword "return" for a function with one unnamed result.
func (t *contractTable) collectFunc(p *Package, d *ast.FuncDecl) {
	lines := invLines(d.Doc)
	if len(lines) == 0 {
		return
	}
	pos := invPos(d.Doc)
	fn, ok := p.Info.Defs[d.Name].(*types.Func)
	if !ok {
		return
	}
	subjects := make(map[string]types.Object) // params and named results
	for _, par := range flattenParams(p, d.Type.Params) {
		if par.name != "" {
			if obj := paramObj(p, d.Type.Params, par.name); obj != nil {
				subjects[par.name] = obj
			}
		}
	}
	var resultNames []string
	if d.Type.Results != nil {
		for _, fl := range d.Type.Results.List {
			for _, n := range fl.Names {
				resultNames = append(resultNames, n.Name)
			}
		}
	}
	fc := &funcContract{params: make(map[*types.Var][]atom)}
	sig, _ := fn.Type().(*types.Signature)
	resolver := func(path []string) ([]types.Object, error) {
		return resolveFuncPath(p, d, sig, path)
	}
	for _, line := range lines {
		clauses, err := parseInv(line)
		if err != nil {
			t.errs = append(t.errs, p.diag("rangeproof", pos,
				"malformed //inv: contract on %s: %v", d.Name.Name, err))
			continue
		}
		for _, cl := range clauses {
			subject, isResult, err := clauseSubject(cl, subjects, resultNames)
			if err != nil {
				t.errs = append(t.errs, p.diag("rangeproof", pos,
					"//inv: contract on %s: %v", d.Name.Name, err))
				continue
			}
			var subjType types.Type
			if isResult {
				if sig == nil || sig.Results().Len() != 1 {
					t.errs = append(t.errs, p.diag("rangeproof", pos,
						"//inv: result contract on %s requires exactly one result", d.Name.Name))
					continue
				}
				subjType = sig.Results().At(0).Type()
			} else {
				subjType = subjects[subject].Type()
			}
			atoms, err := t.bindAtoms(p, []invClause{cl}, subject, subjType, resolver)
			if err != nil {
				t.errs = append(t.errs, p.diag("rangeproof", pos,
					"//inv: contract on %s: %v", d.Name.Name, err))
				continue
			}
			if isResult {
				fc.result = append(fc.result, atoms...)
			} else {
				pv := subjects[subject].(*types.Var)
				fc.params[pv] = append(fc.params[pv], atoms...)
			}
		}
	}
	if len(fc.params) > 0 || len(fc.result) > 0 {
		t.funcs[fn] = fc
	}
}

// clauseSubject finds which side of a clause is the function contract's
// subject. Returns the subject name and whether it is the result.
func clauseSubject(cl invClause, subjects map[string]types.Object, resultNames []string) (string, bool, error) {
	isSubj := func(o invOperand) (string, bool, bool) {
		if o.isNum || len(o.path) != 1 {
			return "", false, false
		}
		name := o.path[0]
		if name == "return" {
			return name, true, true
		}
		for _, rn := range resultNames {
			if rn == name {
				return name, true, true
			}
		}
		if _, ok := subjects[name]; ok {
			return name, false, true
		}
		return "", false, false
	}
	ln, lres, lok := isSubj(cl.lhs)
	rn, rres, rok := isSubj(cl.rhs)
	switch {
	case lok && rok:
		return "", false, fmt.Errorf("clause %q relates two subjects; one side must be a bound", cl.src)
	case lok:
		return ln, lres, nil
	case rok:
		return rn, rres, nil
	default:
		return "", false, fmt.Errorf("clause %q names no parameter, named result, or \"return\"", cl.src)
	}
}

// bindAtoms normalizes parsed clauses against the subject name: the
// subject must appear alone on exactly one side, the other side becomes
// the bound. Integer strict bounds are normalized to inclusive ones.
func (t *contractTable) bindAtoms(p *Package, clauses []invClause, subject string, subjType types.Type, resolve func([]string) ([]types.Object, error)) ([]atom, error) {
	intSubject := isIntegerType(subjType)
	var out []atom
	for _, cl := range clauses {
		lhsIsSubj := !cl.lhs.isNum && len(cl.lhs.path) == 1 && cl.lhs.path[0] == subject
		rhsIsSubj := !cl.rhs.isNum && len(cl.rhs.path) == 1 && cl.rhs.path[0] == subject
		// The "return" keyword stands for the subject in result contracts.
		if subject == "return" {
			lhsIsSubj = !cl.lhs.isNum && len(cl.lhs.path) == 1 && cl.lhs.path[0] == "return"
			rhsIsSubj = !cl.rhs.isNum && len(cl.rhs.path) == 1 && cl.rhs.path[0] == "return"
		}
		if lhsIsSubj == rhsIsSubj {
			return nil, fmt.Errorf("clause %q must have %s on exactly one side", cl.src, subject)
		}
		bound := cl.rhs
		op := cl.op
		if rhsIsSubj {
			bound = cl.lhs
			// Flip: bound op subject  ==  subject flip(op) bound.
			switch op {
			case token.LSS:
				op = token.GTR
			case token.LEQ:
				op = token.GEQ
			case token.GTR:
				op = token.LSS
			case token.GEQ:
				op = token.LEQ
			}
		}
		a := atom{
			upper:  op == token.LSS || op == token.LEQ,
			strict: op == token.LSS || op == token.GTR,
			src:    cl.src,
		}
		if bound.isNum {
			a.num = bound.num
		} else {
			objs, err := resolve(bound.path)
			if err != nil {
				return nil, fmt.Errorf("clause %q: %v", cl.src, err)
			}
			a.path = objs
		}
		if intSubject && a.strict && a.path == nil {
			// x > 0 is x >= 1 for integers; x < 10 is x <= 9.
			if a.upper {
				a.num--
			} else {
				a.num++
			}
			a.strict = false
		}
		out = append(out, a)
	}
	return out, nil
}

// resolveSiblingPath resolves a symbolic bound path for a field contract:
// the first element names a sibling field of the same struct, later
// elements walk nested struct fields.
func resolveSiblingPath(subject *types.Var, path []string) ([]types.Object, error) {
	owner, ok := fieldOwner(subject)
	if !ok {
		return nil, fmt.Errorf("cannot resolve %q: subject is not a struct field", strings.Join(path, "."))
	}
	return walkFieldPath(owner, path)
}

// fieldOwner finds the struct type a field variable belongs to.
func fieldOwner(fv *types.Var) (*types.Struct, bool) {
	if !fv.IsField() {
		return nil, false
	}
	// The declaring struct is found through the package scope: every named
	// type is checked for containing fv.
	scope := fv.Pkg().Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i) == fv {
				return st, true
			}
		}
	}
	return nil, false
}

// walkFieldPath resolves path[0] as a field of st and the rest through
// nested (possibly named or pointer) struct types.
func walkFieldPath(st *types.Struct, path []string) ([]types.Object, error) {
	out := make([]types.Object, 0, len(path))
	cur := st
	for i, name := range path {
		var next *types.Var
		for j := 0; j < cur.NumFields(); j++ {
			if cur.Field(j).Name() == name {
				next = cur.Field(j)
				break
			}
		}
		if next == nil {
			return nil, fmt.Errorf("no field %q", strings.Join(path[:i+1], "."))
		}
		out = append(out, next)
		if i == len(path)-1 {
			if !isNumericType(next.Type()) {
				return nil, fmt.Errorf("bound %q is not numeric", strings.Join(path, "."))
			}
			return out, nil
		}
		nst, ok := derefStruct(next.Type())
		if !ok {
			return nil, fmt.Errorf("%q is not a struct", strings.Join(path[:i+1], "."))
		}
		cur = nst
	}
	return out, nil
}

// resolveFuncPath resolves a symbolic bound in a function contract: the
// first element is a parameter or a receiver field, the rest walk nested
// structs.
func resolveFuncPath(p *Package, d *ast.FuncDecl, sig *types.Signature, path []string) ([]types.Object, error) {
	if obj := paramObj(p, d.Type.Params, path[0]); obj != nil {
		if len(path) == 1 {
			if !isNumericType(obj.Type()) {
				return nil, fmt.Errorf("bound %q is not numeric", path[0])
			}
			return []types.Object{obj}, nil
		}
		st, ok := derefStruct(obj.Type())
		if !ok {
			return nil, fmt.Errorf("parameter %q is not a struct", path[0])
		}
		rest, err := walkFieldPath(st, path[1:])
		if err != nil {
			return nil, err
		}
		return append([]types.Object{obj}, rest...), nil
	}
	if sig != nil && sig.Recv() != nil {
		if st, ok := derefStruct(sig.Recv().Type()); ok {
			return walkFieldPath(st, path)
		}
	}
	return nil, fmt.Errorf("cannot resolve %q (not a parameter or receiver field)", strings.Join(path, "."))
}

// paramObj finds the declared object of a named parameter.
func paramObj(p *Package, params *ast.FieldList, name string) types.Object {
	if params == nil {
		return nil
	}
	for _, f := range params.List {
		for _, n := range f.Names {
			if n.Name == name {
				return p.Info.Defs[n]
			}
		}
	}
	return nil
}

// derefStruct unwraps pointers and named types down to a struct.
func derefStruct(t types.Type) (*types.Struct, bool) {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// isIntegerType reports whether t is an integer (of any width).
func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// numericIval is the interval implied by a contract's numeric atoms alone
// (symbolic atoms contribute nothing here; declaredIval folds them in).
func numericIval(atoms []atom) ival {
	v := topIval()
	for _, a := range atoms {
		if a.path != nil {
			continue
		}
		if a.upper {
			v = v.meet(ival{lo: negInf, hi: a.num})
		} else {
			v = v.meet(ival{lo: a.num, hi: posInf})
		}
	}
	return v
}

// declaredIval is the interval a reader may assume for an annotated
// subject: numeric atoms directly, plus the one-level numeric implication
// of symbolic bounds (x >= cfg.MinCwnd with MinCwnd >= 1 implies x >= 1).
func (t *contractTable) declaredIval(atoms []atom) ival {
	v := numericIval(atoms)
	for _, a := range atoms {
		if a.path == nil {
			continue
		}
		term, ok := a.path[len(a.path)-1].(*types.Var)
		if !ok {
			continue
		}
		bc, ok := t.fields[term]
		if !ok {
			continue
		}
		bv := numericIval(bc.atoms)
		if a.upper {
			// x <= B and B <= bv.hi imply x <= bv.hi.
			v = v.meet(ival{lo: negInf, hi: bv.hi})
		} else {
			v = v.meet(ival{lo: bv.lo, hi: posInf})
		}
	}
	return v
}
