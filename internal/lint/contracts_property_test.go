package lint

import (
	"path/filepath"
	"testing"

	"dctcpplus/internal/core"
	"dctcpplus/internal/dctcp"
	"dctcpplus/internal/netsim"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/tcp"
	"dctcpplus/internal/workload"
)

// TestContractsHoldAtRuntime cross-validates the prover against the live
// simulator: the same //inv: annotations the interval engine reads from
// the real sources are sampled at runtime during seeded incast runs, and
// every observation must land inside its declared interval. A contract the
// prover trusts but the code violates fails here before it misleads a
// static proof; a contract this test cannot find fails loudly rather than
// silently sampling nothing.
func TestContractsHoldAtRuntime(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks four packages, then runs incasts")
	}

	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./internal/dctcp", "./internal/tcp", "./internal/core", "./internal/netsim")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	tbl := pkgs[0].Prog.contracts()

	alphaIv := declaredFieldIval(t, tbl, "DCTCP", "alpha")
	cwndIv := declaredFieldIval(t, tbl, "Sender", "cwnd")
	slowIv := declaredFieldIval(t, tbl, "Enhancer", "slowTime")
	qIv := declaredFieldIval(t, tbl, "Port", "qBytes")

	// Sanity-pin the numeric halves so a weakened annotation (say alpha's
	// upper bound dropped) fails the test instead of trivializing it.
	if alphaIv.lo != 0 || alphaIv.hi != 1 {
		t.Fatalf("DCTCP.alpha declares [%g, %g], want [0, 1]", alphaIv.lo, alphaIv.hi)
	}
	if cwndIv.lo != 1 {
		t.Fatalf("Sender.cwnd declares lo %g, want 1", cwndIv.lo)
	}
	if slowIv.lo != 0 {
		t.Fatalf("Enhancer.slowTime declares lo %g, want 0", slowIv.lo)
	}
	if qIv.lo != 0 {
		t.Fatalf("Port.qBytes declares lo %g, want 0", qIv.lo)
	}

	for _, run := range []struct {
		seed  uint64
		flows int
	}{
		{seed: 1, flows: 12},
		{seed: 7, flows: 24},
		{seed: 23, flows: 40},
	} {
		sched := sim.NewScheduler()
		topo := netsim.DefaultTopologyConfig()
		tt := netsim.NewTwoTier(sched, 3, 3, topo)

		// Even flows run plain DCTCP (alpha observable), odd flows DCTCP+
		// (slowTime observable); every flow exposes cwnd.
		factory := func(i int) (tcp.Config, tcp.CongestionControl) {
			if i%2 == 0 {
				cfg := dctcp.Config()
				cfg.RTOMin, cfg.RTOInit = 10*sim.Millisecond, 10*sim.Millisecond
				cfg.Seed = run.seed*1000 + uint64(i) + 1
				return cfg, dctcp.New(dctcp.DefaultGain)
			}
			cfg := core.SenderConfig()
			cfg.RTOMin, cfg.RTOInit = 10*sim.Millisecond, 10*sim.Millisecond
			cfg.Seed = run.seed*1000 + uint64(i) + 1
			return cfg, core.New(dctcp.DefaultGain, core.DefaultConfig())
		}
		in := workload.NewIncast(sched, tt, workload.IncastConfig{
			Flows:        run.flows,
			BytesPerFlow: 4000,
			Rounds:       5,
			Factory:      factory,
			Seed:         run.seed,
		})

		samples := 0
		var sample func()
		sample = func() {
			samples++
			for _, c := range in.Conns() {
				if w := c.Sender.CwndMSS(); w < cwndIv.lo || w > cwndIv.hi {
					t.Fatalf("seed %d: cwnd %g outside declared [%g, %g]", run.seed, w, cwndIv.lo, cwndIv.hi)
				}
				switch cc := c.Sender.CC().(type) {
				case *dctcp.DCTCP:
					if a := cc.Alpha(); a < alphaIv.lo || a > alphaIv.hi {
						t.Fatalf("seed %d: alpha %g outside declared [%g, %g]", run.seed, a, alphaIv.lo, alphaIv.hi)
					}
				case *core.Enhancer:
					if s := float64(cc.SlowTime()); s < slowIv.lo || s > slowIv.hi {
						t.Fatalf("seed %d: slowTime %g outside declared [%g, %g]", run.seed, s, slowIv.lo, slowIv.hi)
					}
				}
			}
			// qBytes' upper bound is symbolic (cfg.BufferBytes), so the
			// runtime leg checks against the concrete config of the port
			// being sampled.
			q := tt.BottleneckPort.QueueBytes()
			if float64(q) < qIv.lo || q > topo.SwitchPort.BufferBytes {
				t.Fatalf("seed %d: qBytes %d outside [%g, %d]", run.seed, q, qIv.lo, topo.SwitchPort.BufferBytes)
			}
			sched.After(10*sim.Microsecond, sample)
		}
		sched.After(10*sim.Microsecond, sample)

		in.OnFinished = sched.Halt
		in.Start()
		sched.RunUntil(sim.Time(60 * sim.Second))

		if !in.Finished() {
			t.Fatalf("seed %d: incast did not finish", run.seed)
		}
		if samples < 100 {
			t.Fatalf("seed %d: only %d runtime samples; the property checked almost nothing", run.seed, samples)
		}
	}
}

// declaredFieldIval finds the //inv: contract for owner.field in the table
// built from the real sources and returns the interval a reader may assume.
func declaredFieldIval(t *testing.T, tbl *contractTable, owner, field string) ival {
	t.Helper()
	for fv, fc := range tbl.fields {
		if fc.owner != nil && fc.owner.Name() == owner && fv.Name() == field {
			return tbl.declaredIval(fc.atoms)
		}
	}
	t.Fatalf("no //inv: contract found for %s.%s", owner, field)
	return ival{}
}
