package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// UnitSafety returns the analyzer that flags arithmetic mixing byte-,
// packet- and segment-valued identifiers. The simulator carries all three
// units as plain integers (buffer occupancy in bytes, counters in packets,
// windows in MSS segments), so nothing in the type system stops
// "qBytes + droppedPkts"; the analyzer applies the naming convention the
// codebase already follows. Additive and comparison operators across
// different unit classes are flagged; multiplication and division are the
// legal conversion forms (pkts * MSS = bytes) and stay silent.
func UnitSafety() *Analyzer {
	return &Analyzer{
		Name: "unitsafety",
		Doc:  "flag +,-,comparison arithmetic mixing byte-, packet- and segment-valued identifiers",
		Run:  runUnitSafety,
	}
}

// unitClass is the measurement unit inferred from an identifier's name.
type unitClass int

const (
	unitUnknown unitClass = iota
	unitBytes
	unitPackets
	unitSegments
)

func (u unitClass) String() string {
	switch u {
	case unitBytes:
		return "bytes"
	case unitPackets:
		return "packets"
	case unitSegments:
		return "segments (MSS)"
	case unitMixed:
		return "mixed"
	case unitUnknown:
		return "unknown"
	default:
		panic("lint: unknown unit class")
	}
}

// unitSuffixes maps name endings to unit classes. Longest suffixes are
// listed first within a class so "ReqBytes" resolves before "Bytes" would
// mis-split.
var unitSuffixes = []struct {
	suffix string
	class  unitClass
}{
	{"bytes", unitBytes},
	{"byte", unitBytes},
	{"packets", unitPackets},
	{"packet", unitPackets},
	{"pkts", unitPackets},
	{"pkt", unitPackets},
	{"segments", unitSegments},
	{"segment", unitSegments},
	{"segs", unitSegments},
	{"seg", unitSegments},
	{"mss", unitSegments},
}

// unitOf classifies an expression by the name of its identifier or
// selector field, case-insensitively on the trailing word.
func unitOf(e ast.Expr) unitClass {
	var name string
	switch e := e.(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	case *ast.ParenExpr:
		return unitOf(e.X)
	default:
		return unitUnknown
	}
	return unitOfName(name)
}

// unitOfName classifies an identifier name by its trailing word.
func unitOfName(name string) unitClass {
	lower := strings.ToLower(name)
	for _, s := range unitSuffixes {
		if lower == s.suffix {
			return s.class
		}
		if strings.HasSuffix(lower, s.suffix) {
			idx := len(lower) - len(s.suffix)
			if lower[idx-1] == '_' || (name[idx] >= 'A' && name[idx] <= 'Z') {
				return s.class
			}
		}
	}
	return unitUnknown
}

// mixingOps are the operators for which both operands must share a unit:
// adding or comparing bytes to packets is always a bug, while * and / are
// how units convert.
var mixingOps = map[token.Token]bool{
	token.ADD: true, token.SUB: true,
	token.LSS: true, token.GTR: true, token.LEQ: true, token.GEQ: true,
	token.EQL: true, token.NEQ: true,
}

func runUnitSafety(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || !mixingOps[be.Op] {
				return true
			}
			if !p.isNumeric(be.X) || !p.isNumeric(be.Y) {
				return true
			}
			ux, uy := unitOf(be.X), unitOf(be.Y)
			if ux != unitUnknown && uy != unitUnknown && ux != uy {
				out = append(out, p.diag("unitsafety", be.OpPos,
					"arithmetic mixes units: left operand is %s, right operand is %s", ux, uy))
			}
			return true
		})
	}
	return out
}

// isNumeric reports whether e has a numeric basic type.
func (p *Package) isNumeric(e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}
