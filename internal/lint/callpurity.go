package lint

import (
	"go/ast"
)

// CallPurity returns the analyzer that upgrades the per-function
// nondeterminism rules to whole-call-graph taint: a //hot:path function and
// everything statically reachable from it must be free of nondeterministic
// operations, regardless of which package the operation lands in and
// regardless of the per-package allowances the base nondeterminism analyzer
// grants (cmd/ may read the wall clock for run metadata; internal/exp may
// spawn goroutines for sweep parallelism — hot-path code may do neither).
//
// Sources flagged inside hot-reachable functions:
//
//   - wall-clock reads (time.Now and friends) — virtual time comes from
//     the scheduler;
//   - any call into math/rand — stochastic decisions draw from sim.RNG;
//   - goroutine spawns — the event loop is single-threaded by design;
//   - order-sensitive iteration over a map (Go randomizes range order).
//
// Each finding is reported once, in the package that contains the source,
// with the hot root it is reachable from as provenance; the taint is
// carried by the shared call graph (see Program), not by repeating the
// report at every frame of the call chain.
func CallPurity() *Analyzer {
	return &Analyzer{
		Name: "callpurity",
		Doc:  "forbid nondeterminism anywhere in the call graph reachable from //hot:path roots",
		Run:  runCallPurity,
	}
}

func runCallPurity(p *Package) []Diagnostic {
	if p.Prog == nil {
		return nil
	}
	var out []Diagnostic
	for _, n := range p.Prog.hotNodesIn(p) {
		where := rootLabel(n.fn, p.Prog.hotRootsOf(n.fn))
		file := fileOf(p, n.decl)

		ast.Inspect(n.decl.Body, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.CallExpr:
				sel, ok := unparen(node.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if wallClockFuncs[sel.Sel.Name] && p.isPkgIdent(sel.X, "time") {
					out = append(out, p.diag("callpurity", node.Pos(),
						"wall-clock read time.%s on a hot path %s: use the sim.Scheduler clock",
						sel.Sel.Name, where))
				}
				if p.isPkgIdent(sel.X, "math/rand") || p.isPkgIdent(sel.X, "math/rand/v2") {
					out = append(out, p.diag("callpurity", node.Pos(),
						"math/rand call on a hot path %s: draw from sim.RNG", where))
				}
			case *ast.GoStmt:
				out = append(out, p.diag("callpurity", node.Pos(),
					"goroutine spawn on a hot path %s: the event loop is single-threaded", where))
			case *ast.RangeStmt:
				for _, d := range p.checkMapRange(file, node) {
					d.Analyzer = "callpurity"
					d.Message = "order-sensitive map iteration on a hot path " + where +
						": range order is randomized per run"
					out = append(out, d)
				}
			}
			return true
		})
	}
	return out
}

// fileOf returns the AST file containing the declaration.
func fileOf(p *Package, decl *ast.FuncDecl) *ast.File {
	for _, f := range p.Files {
		if f.Pos() <= decl.Pos() && decl.Pos() < f.End() {
			return f
		}
	}
	return nil
}
