package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotalloc returns the analyzer that enforces the zero-allocation budget on
// hot paths. A function annotated //hot:path — the per-packet and per-ACK
// roots of the simulator — and everything statically reachable from it
// (see Program for the call-graph construction) must not contain
// heap-allocating constructs:
//
//   - new(T), make(...), and &T{...} / slice / map composite literals;
//   - append (growth allocates; audited amortized-growth sites carry a
//     //lint:allow hotalloc directive explaining why they are safe);
//   - function literals (a closure evaluated on the hot path escapes to its
//     caller and allocates — bind callbacks once at construction instead);
//   - defer (allocates a frame record and is banned from per-packet code);
//   - fmt.* calls (interface boxing plus formatting buffers);
//   - string concatenation;
//   - implicit interface boxing at call sites: passing a non-pointer
//     concrete value where an interface parameter is declared. Pointers are
//     exempt — storing a pointer in an interface fits the data word, which
//     is exactly why the scheduler's arg-carrying events take func(any)
//     plus a pointer argument.
//
// Two exemptions apply, both derived from the call graph: the arguments of
// panic(...), and calls to (and bodies of) terminal panic helpers such as
// check.Failf — a dying simulation may allocate for a good message.
func Hotalloc() *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc:  "forbid heap-allocating constructs in //hot:path functions and everything they reach",
		Run:  runHotalloc,
	}
}

func runHotalloc(p *Package) []Diagnostic {
	if p.Prog == nil {
		return nil
	}
	var out []Diagnostic
	for _, n := range p.Prog.hotNodesIn(p) {
		out = append(out, p.hotallocFunc(n, p.Prog.hotRootsOf(n.fn))...)
	}
	return out
}

// exemptRanges collects the source intervals inside which allocation is
// forgiven: arguments of panic(...) and entire calls to terminal functions.
func (p *Package) exemptRanges(body *ast.BlockStmt) []posRange {
	var out []posRange
	ast.Inspect(body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := unparen(call.Fun).(*ast.Ident); ok {
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "panic" {
				out = append(out, posRange{call.Pos(), call.End()})
				return true
			}
		}
		if callee, _ := p.calleeOf(call); callee != nil && p.Prog.isTerminal(callee) {
			out = append(out, posRange{call.Pos(), call.End()})
		}
		return true
	})
	return out
}

type posRange struct{ lo, hi token.Pos }

func inRanges(rs []posRange, pos token.Pos) bool {
	for _, r := range rs {
		if r.lo <= pos && pos < r.hi {
			return true
		}
	}
	return false
}

// hotallocFunc flags the allocating constructs in one hot-reachable
// function body.
func (p *Package) hotallocFunc(n *funcNode, roots []*types.Func) []Diagnostic {
	var out []Diagnostic
	exempt := p.exemptRanges(n.decl.Body)
	where := rootLabel(n.fn, roots)
	flag := func(pos token.Pos, format string, args ...any) {
		if inRanges(exempt, pos) {
			return
		}
		d := p.diag("hotalloc", pos, format, args...)
		d.Message += " in hot-path function " + n.fn.FullName() + " " + where
		out = append(out, d)
	}

	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			p.hotallocCall(node, flag)
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if _, ok := unparen(node.X).(*ast.CompositeLit); ok {
					flag(node.Pos(), "heap allocation: &composite literal escapes")
				}
			}
		case *ast.CompositeLit:
			t := p.Info.TypeOf(node)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					flag(node.Pos(), "heap allocation: slice/map composite literal")
				}
			}
		case *ast.FuncLit:
			flag(node.Pos(), "closure evaluated on the hot path allocates; bind the callback once at construction")
			// The literal's own body still belongs to this function's
			// budget; keep descending.
		case *ast.DeferStmt:
			flag(node.Pos(), "defer allocates a frame record")
		case *ast.BinaryExpr:
			if node.Op == token.ADD && p.isString(node) && !p.isConstExpr(node) {
				flag(node.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			if node.Tok == token.ADD_ASSIGN && len(node.Lhs) == 1 && p.isString(node.Lhs[0]) {
				flag(node.Pos(), "string concatenation allocates")
			}
		}
		return true
	})
	return out
}

// hotallocCall flags builtin allocators, fmt usage, and implicit interface
// boxing of arguments in one call expression.
func (p *Package) hotallocCall(call *ast.CallExpr, flag func(pos token.Pos, format string, args ...any)) {
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	if id, ok := unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "new":
				flag(call.Pos(), "heap allocation: new")
			case "make":
				flag(call.Pos(), "heap allocation: make")
			case "append":
				flag(call.Pos(), "append may grow its backing array; preallocate, or annotate audited amortized growth")
			}
			return
		}
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && p.isPkgIdent(sel.X, "fmt") {
		flag(call.Pos(), "fmt.%s boxes arguments and builds format buffers", sel.Sel.Name)
		return
	}
	p.hotallocBoxing(call, flag)
}

// hotallocBoxing flags arguments implicitly boxed into interface
// parameters. Pointer-shaped values (pointers, channels, maps, funcs) fit
// an interface's data word without allocating and pass; everything else —
// scalars, strings, slices, structs — escapes to the heap on conversion.
func (p *Package) hotallocBoxing(call *ast.CallExpr, flag func(pos token.Pos, format string, args ...any)) {
	sig, ok := p.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return // dynamic shape unknown, or slice passed through unboxed
	}
	for i, arg := range call.Args {
		var paramT types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			last := sig.Params().At(sig.Params().Len() - 1)
			slice, ok := last.Type().(*types.Slice)
			if !ok {
				continue
			}
			paramT = slice.Elem()
		case i < sig.Params().Len():
			paramT = sig.Params().At(i).Type()
		default:
			continue
		}
		if _, isIface := paramT.Underlying().(*types.Interface); !isIface {
			continue
		}
		argT := p.Info.TypeOf(arg)
		if argT == nil || isPointerShaped(argT) {
			continue
		}
		if _, already := argT.Underlying().(*types.Interface); already {
			continue
		}
		if b, ok := argT.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		flag(arg.Pos(), "argument boxes into interface parameter (pass a pointer, or use a typed parameter)")
	}
}

// isPointerShaped reports whether a value of type t fits an interface's
// data word without a heap allocation when boxed.
func isPointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// isString reports whether e has string type.
func (p *Package) isString(e ast.Expr) bool {
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConstExpr reports whether e folds to a compile-time constant (constant
// string concatenation costs nothing at run time).
func (p *Package) isConstExpr(e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}
