package lint

import (
	"go/ast"
	"go/types"
)

// SweepSafety returns the analyzer that keeps sweep job bodies
// data-race-free by construction. A //sweep:job function is executed on a
// worker goroutine with an arbitrary number of siblings; the sweep's
// determinism argument ("a job is a pure function of its Point") holds
// only if the job and everything statically reachable from it never
// *writes* shared state. The analyzer taints the call graph from every
// //sweep:job root — the same whole-module closure callpurity uses for
// //hot:path — and flags, inside any tainted function:
//
//   - assignments (including +=, ++ and friends) whose destination roots
//     at a package-level variable, directly or through a pointer, index,
//     slice or field path;
//   - the mutating builtins delete, clear and copy applied to a
//     package-level variable.
//
// Reads of package-level state are allowed: configuration tables like
// exp.Protocols are written only during init, and forbidding reads would
// outlaw every lookup table in the simulator. Writes that are genuinely
// safe (an atomic counter behind a sanctioned API) belong behind a method
// of a passed-in object — the telemetry registry is the model — or, as a
// last resort, under a //lint:allow sweepsafety directive with a reason.
func SweepSafety() *Analyzer {
	return &Analyzer{
		Name: "sweepsafety",
		Doc:  "forbid writes to package-level state anywhere reachable from //sweep:job worker bodies",
		Run:  runSweepSafety,
	}
}

func runSweepSafety(p *Package) []Diagnostic {
	if p.Prog == nil {
		return nil
	}
	var out []Diagnostic
	for _, n := range p.Prog.sweepNodesIn(p) {
		where := sweepRootLabel(n.fn, p.Prog.sweepRootsOf(n.fn))

		ast.Inspect(n.decl.Body, func(node ast.Node) bool {
			switch node := node.(type) {
			case *ast.AssignStmt:
				for _, lhs := range node.Lhs {
					if v := p.pkgLevelTarget(lhs); v != nil {
						out = append(out, p.diag("sweepsafety", lhs.Pos(),
							"write to package-level %s in worker-executed sweep code %s: jobs run concurrently and must mutate only job-local state",
							v.Name(), where))
					}
				}
			case *ast.IncDecStmt:
				if v := p.pkgLevelTarget(node.X); v != nil {
					out = append(out, p.diag("sweepsafety", node.X.Pos(),
						"write to package-level %s in worker-executed sweep code %s: jobs run concurrently and must mutate only job-local state",
						v.Name(), where))
				}
			case *ast.CallExpr:
				if name, arg := mutatingBuiltin(p, node); arg != nil {
					if v := p.pkgLevelTarget(arg); v != nil {
						out = append(out, p.diag("sweepsafety", arg.Pos(),
							"%s mutates package-level %s in worker-executed sweep code %s: jobs run concurrently and must mutate only job-local state",
							name, v.Name(), where))
					}
				}
			}
			return true
		})
	}
	return out
}

// pkgLevelTarget resolves the variable a write destination ultimately
// addresses, returning it when it is package-level. It unwraps the
// lvalue's access path (fields, indexes, slices, dereferences): writing
// Global.Field, Global[i], or *GlobalPtr all mutate state shared across
// workers, exactly like writing Global itself.
func (p *Package) pkgLevelTarget(expr ast.Expr) *types.Var {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SelectorExpr:
			if id, ok := e.X.(*ast.Ident); ok {
				if _, isPkg := p.Info.Uses[id].(*types.PkgName); isPkg {
					expr = e.Sel // qualified reference: pkg.Var
					continue
				}
			}
			expr = e.X
		case *ast.Ident:
			v, ok := p.Info.Uses[e].(*types.Var)
			if !ok {
				v, ok = p.Info.Defs[e].(*types.Var)
			}
			if !ok || v.Pkg() == nil {
				return nil
			}
			if v.Parent() == v.Pkg().Scope() {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// mutatingBuiltin recognizes the builtins that mutate their first argument
// in place, returning the builtin's name and that argument.
func mutatingBuiltin(p *Package, call *ast.CallExpr) (string, ast.Expr) {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || len(call.Args) == 0 {
		return "", nil
	}
	if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return "", nil
	}
	switch id.Name {
	case "delete", "clear", "copy":
		return id.Name, call.Args[0]
	}
	return "", nil
}
