package lint

import (
	"encoding/json"
	"path/filepath"
)

// SARIF renders diagnostics as a SARIF 2.1.0 log (the minimal subset CI
// code-scanning uploads require): one run, the simlint tool with a rule per
// analyzer, and one result per diagnostic. File paths are emitted with
// forward slashes, as SARIF URIs require; Results is always non-nil so a
// clean run serializes as an empty array rather than null.
func SARIF(diags []Diagnostic, analyzers []*Analyzer) ([]byte, error) {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
		})
	}
	// The directive pseudo-analyzer reports malformed //lint:allow comments,
	// and staleallow (the -stale-allow mode) reports well-formed ones that
	// no longer suppress any diagnostic.
	rules = append(rules, sarifRule{
		ID:               "directive",
		ShortDescription: sarifText{Text: "malformed //lint:allow directive"},
	})
	rules = append(rules, sarifRule{
		ID:               "staleallow",
		ShortDescription: sarifText{Text: "//lint:allow directive that suppresses no diagnostic"},
	})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(d.File)},
					Region: sarifRegion{
						StartLine:   d.Line,
						StartColumn: d.Col,
					},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:           "simlint",
				InformationURI: "https://github.com/dctcpplus",
				Rules:          rules,
			}},
			Results: results,
		}},
	}
	return json.MarshalIndent(log, "", "  ")
}

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}
