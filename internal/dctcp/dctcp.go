// Package dctcp implements Data Center TCP congestion control (Alizadeh et
// al., SIGCOMM 2010) as a tcp.CongestionControl module: an EWMA estimator
// of the marked-packet fraction (Equation 1 of the DCTCP+ paper) and a
// proportional once-per-window reduction (Equation 2):
//
//	alpha <- (1-g)*alpha + g*F
//	W     <- (1 - alpha/2) * W,  W in [MinCwnd, MaxCwnd]
//
// where F is the fraction of bytes acknowledged with ECN-Echo during the
// last window of data. The module relies on the engine's ECNPrecise
// receiver mode for exact echo semantics.
package dctcp

import (
	"dctcpplus/internal/check"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/tcp"
	"dctcpplus/internal/telemetry"
)

// DefaultGain is the paper-recommended EWMA gain g = 1/16.
const DefaultGain = 1.0 / 16

// DCTCP is the congestion-control module. One instance serves exactly one
// sender.
type DCTCP struct {
	// g is the EWMA gain; the constructor rejects anything else.
	//inv: g > 0 && g <= 1
	g float64
	// alpha is the congestion-extent estimate, a convex combination of its
	// previous value and a fraction — Equation 1 keeps it a probability.
	//inv: 0 <= alpha && alpha <= 1
	alpha float64

	ackedBytes  int64
	markedBytes int64
	windowEnd   int64 // snd_nxt at the start of the current observation window
	updates     int64 // completed alpha folds (the value itself may repeat)

	// Telemetry instruments; nil (no-op) unless AttachTelemetry was called.
	mAlphaUpdates *telemetry.Counter
	mWindowCuts   *telemetry.Counter
	mAlpha        *telemetry.Gauge
}

// New returns a DCTCP module with gain g (use DefaultGain). Alpha starts at
// 1, matching the Linux module's conservative initialization: the first
// congestion signal halves the window until real estimates accumulate.
func New(g float64) *DCTCP {
	if g <= 0 || g > 1 {
		panic("dctcp: gain must be in (0, 1]")
	}
	return &DCTCP{g: g, alpha: 1}
}

// Name returns "dctcp".
func (d *DCTCP) Name() string { return "dctcp" }

// Alpha returns the current congestion-extent estimate in [0, 1].
func (d *DCTCP) Alpha() float64 { return d.alpha }

// Gain returns the EWMA gain g.
func (d *DCTCP) Gain() float64 { return d.g }

// Updates returns the number of completed once-per-window alpha folds.
// Consecutive folds can leave alpha numerically unchanged (F repeats), so
// cadence observers must watch this counter, not the value.
func (d *DCTCP) Updates() int64 { return d.updates }

// AttachTelemetry registers the estimator's instruments on reg under the
// given labels: counters for per-window alpha updates and ECN-driven window
// cuts, plus a gauge tracking the latest alpha. With a nil registry the
// instruments stay nil and every update is a no-op.
func (d *DCTCP) AttachTelemetry(reg *telemetry.Registry, labels ...telemetry.Label) {
	d.mAlphaUpdates = reg.Counter("dctcp_alpha_updates_total", labels...)
	d.mWindowCuts = reg.Counter("dctcp_window_cuts_total", labels...)
	d.mAlpha = reg.Gauge("dctcp_alpha", labels...)
}

// Init starts the first observation window.
func (d *DCTCP) Init(s *tcp.Sender) { d.windowEnd = s.SndNxt() }

// OnAck accumulates acknowledged and marked bytes and, once per window of
// data (when the cumulative ACK passes the snd_nxt recorded at the window
// start), folds the marked fraction F into alpha.
func (d *DCTCP) OnAck(s *tcp.Sender, acked int64, ece bool) {
	d.ackedBytes += acked
	if ece {
		d.markedBytes += acked
	}
	if s.SndUna() >= d.windowEnd && d.ackedBytes > 0 {
		f := float64(d.markedBytes) / float64(d.ackedBytes)
		d.alpha = (1-d.g)*d.alpha + d.g*f
		check.Unit("dctcp.alpha", d.alpha)
		d.ackedBytes, d.markedBytes = 0, 0
		d.windowEnd = s.SndNxt()
		d.updates++
		d.mAlphaUpdates.Add(1)
		d.mAlpha.Set(d.alpha)
	}
}

// SsthreshAfterECN scales the window by (1 - alpha/2): a small alpha —
// mild congestion — trims gently; alpha near 1 behaves like Reno.
func (d *DCTCP) SsthreshAfterECN(s *tcp.Sender) float64 {
	d.mWindowCuts.Add(1)
	return s.CwndMSS() * (1 - d.alpha/2)
}

// SsthreshAfterLoss halves the window, as the Linux DCTCP module does for
// genuine loss.
func (d *DCTCP) SsthreshAfterLoss(s *tcp.Sender) float64 {
	return s.CwndMSS() / 2
}

// OnTimeout keeps alpha — the estimator state survives RTOs — but
// restarts the observation window at the rewound snd_nxt. The engine has
// already performed the go-back-N rewind (snd_nxt = snd_una) when this
// hook runs, so the windowEnd recorded before the timeout can exceed the
// new snd_nxt; left in place, it would stall alpha updates until the whole
// pre-timeout window was re-acknowledged, with the retransmitted bytes
// double-counted in the marked-fraction accumulators.
func (d *DCTCP) OnTimeout(s *tcp.Sender) {
	d.ackedBytes, d.markedBytes = 0, 0
	d.windowEnd = s.SndNxt()
}

// PacingDelay is zero: plain DCTCP never paces — that inability to slow
// down below the window floor is precisely the pitfall DCTCP+ fixes.
func (d *DCTCP) PacingDelay(*tcp.Sender) sim.Duration { return 0 }

// Config returns a tcp.Config preset for DCTCP endpoints: precise ECN echo
// enabled and per-segment ACKs. Delayed ACKs coarsen the marked-byte
// fraction F (a delayed ACK attributes its whole byte range to one ECE
// bit) and — fatally for minimum-window operation — stall a one-segment
// window on the 40ms delayed-ACK timer, so DCTCP deployments acknowledge
// every segment on these tiny-RTT paths.
func Config() tcp.Config {
	cfg := tcp.DefaultConfig()
	cfg.ECN = tcp.ECNPrecise
	cfg.DelAckCount = 1
	return cfg
}
