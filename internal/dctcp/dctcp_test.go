package dctcp

import (
	"math"
	"testing"
	"testing/quick"

	"dctcpplus/internal/netsim"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/tcp"
)

func TestNewValidation(t *testing.T) {
	for _, g := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("gain %v did not panic", g)
				}
			}()
			New(g)
		}()
	}
	d := New(DefaultGain)
	if d.Gain() != 1.0/16 || d.Alpha() != 1 || d.Name() != "dctcp" {
		t.Error("constructor defaults wrong")
	}
}

// fakeSenderWire builds a two-host path with a CE-mangling filter for
// integration tests of the alpha estimator.
type markWire struct {
	sched *sim.Scheduler
	conn  *tcp.Conn
	mark  *bool // when true, every data packet is CE-marked
}

func newMarkWire(cfgMut func(*tcp.Config)) (*markWire, *DCTCP) {
	s := sim.NewScheduler()
	a := netsim.NewHost(s, 1, "a")
	b := netsim.NewHost(s, 2, "b")
	mark := new(bool)
	// Direct links with a marking shim on the data direction.
	shim := &markShim{dst: b, mark: mark}
	a.SetUplink(netsim.NewPort(s, netsim.NewLink(s, shim, 1e9, 50*sim.Microsecond),
		netsim.PortConfig{BufferBytes: 4 << 20}))
	b.SetUplink(netsim.NewPort(s, netsim.NewLink(s, a, 1e9, 50*sim.Microsecond),
		netsim.PortConfig{BufferBytes: 4 << 20}))
	cfg := Config()
	if cfgMut != nil {
		cfgMut(&cfg)
	}
	d := New(DefaultGain)
	c := tcp.NewConn(cfg, d, a, b, 3)
	return &markWire{sched: s, conn: c, mark: mark}, d
}

type markShim struct {
	dst  netsim.Node
	mark *bool
}

func (m *markShim) ID() packet.NodeID { return 50 }
func (m *markShim) Deliver(p *packet.Packet) {
	if *m.mark && p.IsData() && p.ECN == packet.ECT {
		p.ECN = packet.CE
	}
	m.dst.Deliver(p)
}

func TestAlphaDecaysWithoutMarks(t *testing.T) {
	w, d := newMarkWire(nil)
	w.conn.Sender.Send(2 << 20) // 2MB clean transfer, alpha starts at 1
	w.sched.Run()
	if !w.conn.Sender.Done() {
		t.Fatal("transfer incomplete")
	}
	if d.Alpha() > 0.2 {
		t.Errorf("alpha = %v after unmarked transfer, want near 0", d.Alpha())
	}
}

func TestAlphaRisesUnderPersistentMarking(t *testing.T) {
	w, d := newMarkWire(nil)
	// First decay alpha with a clean transfer...
	w.conn.Sender.Send(1 << 20)
	w.sched.Run()
	low := d.Alpha()
	// ...then mark everything.
	*w.mark = true
	w.conn.Sender.Send(1 << 20)
	w.sched.Run()
	if !w.conn.Sender.Done() {
		t.Fatal("transfer incomplete")
	}
	if d.Alpha() <= low || d.Alpha() < 0.5 {
		t.Errorf("alpha = %v after full marking (was %v), want risen toward 1", d.Alpha(), low)
	}
}

func TestSsthreshAfterECNScalesWithAlpha(t *testing.T) {
	w, d := newMarkWire(nil)
	s := w.conn.Sender
	d.alpha = 0.5
	want := s.CwndMSS() * 0.75
	if got := d.SsthreshAfterECN(s); math.Abs(got-want) > 1e-9 {
		t.Errorf("ssthresh = %v, want %v", got, want)
	}
	d.alpha = 1
	if got := d.SsthreshAfterECN(s); math.Abs(got-s.CwndMSS()/2) > 1e-9 {
		t.Errorf("alpha=1 ssthresh = %v, want half", got)
	}
	if got := d.SsthreshAfterLoss(s); math.Abs(got-s.CwndMSS()/2) > 1e-9 {
		t.Errorf("loss ssthresh = %v, want half", got)
	}
}

func TestAlphaEWMAExactArithmetic(t *testing.T) {
	// Drive OnAck directly with a synthetic sender to check Equation 1.
	w, d := newMarkWire(nil)
	s := w.conn.Sender
	d.alpha = 0.5
	d.windowEnd = 0
	d.ackedBytes, d.markedBytes = 0, 0
	// Simulate: 1000 acked bytes, 250 marked, window boundary crossed.
	d.ackedBytes = 750
	d.markedBytes = 0
	d.OnAck(s, 250, true) // total acked 1000, marked 250 -> F=0.25
	want := (1-d.g)*0.5 + d.g*0.25
	if math.Abs(d.alpha-want) > 1e-12 {
		t.Errorf("alpha = %v, want %v", d.alpha, want)
	}
	// Counters must reset after the fold.
	if d.ackedBytes != 0 || d.markedBytes != 0 {
		t.Error("window counters not reset")
	}
}

// Property: alpha always stays in [0, 1] for any mark/ack pattern.
func TestAlphaBoundsProperty(t *testing.T) {
	f := func(marks []bool) bool {
		w, d := newMarkWire(nil)
		s := w.conn.Sender
		for _, m := range marks {
			d.OnAck(s, 1460, m)
			if d.alpha < 0 || d.alpha > 1 {
				return false
			}
			// Force frequent window boundaries.
			d.windowEnd = 0
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPacingDelayZero(t *testing.T) {
	w, d := newMarkWire(nil)
	if d.PacingDelay(w.conn.Sender) != 0 {
		t.Error("plain DCTCP must not pace")
	}
}

func TestConfigPreset(t *testing.T) {
	cfg := Config()
	if cfg.ECN != tcp.ECNPrecise {
		t.Error("DCTCP preset must use precise ECN echo")
	}
}

func TestDCTCPKeepsQueueNearK(t *testing.T) {
	// A single long DCTCP flow through a marking bottleneck should hold
	// the queue near K rather than filling the buffer — the headline DCTCP
	// property the paper's §II-A describes.
	s := sim.NewScheduler()
	star := netsim.NewStar(s, 2, netsim.DefaultTopologyConfig())
	cfg := Config()
	cfg.MaxCwnd = 200
	d := New(DefaultGain)
	c := tcp.NewConn(cfg, d, star.Hosts[0], star.Hosts[1], 9)

	// Sample the bottleneck queue (switch -> host1 port) during the bulk
	// of the transfer.
	port := star.Switch.RouteTo(star.Hosts[1].ID())
	var samples []int
	var tick func()
	tick = func() {
		samples = append(samples, port.QueueBytes())
		s.After(100*sim.Microsecond, tick)
	}
	s.After(5*sim.Millisecond, tick) // skip slow start
	c.Sender.OnComplete = func(int64) { s.Halt() }
	c.Sender.Send(20 << 20)
	s.Run()

	if len(samples) < 50 {
		t.Fatalf("only %d queue samples", len(samples))
	}
	var sum, over float64
	for _, q := range samples {
		sum += float64(q)
		if q > 3*32<<10 {
			over++
		}
	}
	mean := sum / float64(len(samples))
	k := float64(32 << 10)
	if mean > 2.5*k {
		t.Errorf("mean queue %0.f bytes, want oscillating near K=%0.f", mean, k)
	}
	if over/float64(len(samples)) > 0.1 {
		t.Errorf("queue above 3K for %.0f%% of samples", 100*over/float64(len(samples)))
	}
	if st := c.Sender.Stats(); st.Timeouts != 0 {
		t.Errorf("single flow should not time out, got %d", st.Timeouts)
	}
}

// dropShim discards data packets while *drop is set; ACKs always pass.
type dropShim struct {
	dst  netsim.Node
	drop *bool
}

func (m *dropShim) ID() packet.NodeID { return 51 }
func (m *dropShim) Deliver(p *packet.Packet) {
	if *m.drop && p.IsData() {
		return
	}
	m.dst.Deliver(p)
}

// TestWindowReanchorsAfterRTO is the regression for the observation-window
// anchor across a go-back-N rewind. Before the fix, windowEnd kept the
// pre-timeout snd_nxt, which exceeds the rewound snd_nxt: alpha updates
// then stall until the entire lost window is re-acknowledged, and the
// retransmitted bytes are double-counted in the marked-fraction
// accumulators. OnTimeout must re-anchor the window at the rewound
// snd_nxt and clear the accumulators.
func TestWindowReanchorsAfterRTO(t *testing.T) {
	s := sim.NewScheduler()
	a := netsim.NewHost(s, 1, "a")
	b := netsim.NewHost(s, 2, "b")
	drop := new(bool)
	shim := &dropShim{dst: b, drop: drop}
	a.SetUplink(netsim.NewPort(s, netsim.NewLink(s, shim, 1e9, 50*sim.Microsecond),
		netsim.PortConfig{BufferBytes: 4 << 20}))
	b.SetUplink(netsim.NewPort(s, netsim.NewLink(s, a, 1e9, 50*sim.Microsecond),
		netsim.PortConfig{BufferBytes: 4 << 20}))
	cfg := Config()
	cfg.InitialCwnd = 8
	cfg.RTOMin = 10 * sim.Millisecond
	d := New(DefaultGain)
	c := tcp.NewConn(cfg, d, a, b, 3)
	snd := c.Sender

	// Cut the data path once 10 MSS are acknowledged — mid-window, with
	// alpha's observation anchor strictly ahead of snd_una.
	checked := false
	snd.OnAckProbe = func(ps *tcp.Sender, _ bool) {
		if !*drop && !checked && ps.SndUna() >= 10*packet.MSS {
			*drop = true
		}
	}
	snd.OnTimeoutEvent = func(tcp.TimeoutKind) {
		if checked {
			return
		}
		checked = true
		*drop = false // let the retransmissions through
		// The RTO handler has not rewound yet when this hook fires;
		// inspect the estimator right after it completes.
		s.After(0, func() {
			if d.windowEnd != snd.SndUna() {
				t.Errorf("windowEnd = %d after RTO, want re-anchored at rewound snd_una %d",
					d.windowEnd, snd.SndUna())
			}
			if d.ackedBytes != 0 || d.markedBytes != 0 {
				t.Errorf("accumulators survived the RTO: acked=%d marked=%d",
					d.ackedBytes, d.markedBytes)
			}
		})
	}

	snd.Send(64 * packet.MSS)
	s.RunUntil(sim.Time(5 * sim.Second))
	if !checked {
		t.Fatal("no RTO fired; the scenario never exercised the rewind")
	}
	if !snd.Done() {
		t.Fatal("transfer did not complete after recovery")
	}
}
