// Package netsim models the network substrate of the DCTCP+ testbed: point
// to point links with finite rate and propagation delay, output-queued
// switches with static shared per-port buffers and ECN marking at a
// threshold K (the DCTCP AQM), and hosts that demultiplex arriving segments
// to transport endpoints.
//
// The model matches the paper's testbed (§III): NetFPGA-style GbE switches
// with a static 128KB buffer per port and K=32KB, 1Gbps host links, and a
// canonical 2-tier tree topology.
package netsim

import (
	"fmt"

	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
)

// Node is any element that can receive packets from a link.
type Node interface {
	ID() packet.NodeID
	// Deliver hands an arriving packet to the node. The node takes
	// ownership of the packet.
	//
	//state: xfer pkt
	Deliver(pkt *packet.Packet)
}

// maxHops guards against routing loops: no sane configuration of this
// simulator produces a path longer than this.
const maxHops = 32

// Link is a unidirectional point-to-point channel with a transmission rate
// and a fixed propagation delay. Serialization is modeled by the Port that
// feeds the link; the link itself only adds propagation latency, so
// back-to-back packets may be "in flight" simultaneously (as on real wire).
type Link struct {
	sched *sim.Scheduler
	dst   Node

	// RateBps is the transmission rate in bits per second.
	RateBps int64
	// Delay is the one-way propagation delay.
	Delay sim.Duration

	// Fault injection (SetLoss): independent per-packet drop probability,
	// for robustness tests of the transport against non-congestive loss.
	lossRate  float64
	lossRNG   *sim.RNG
	lost      int64
	lostBytes int64

	// Fault injection (SetDown): while the link is down every packet
	// handed to Propagate is blackholed — the internal/fault blackout
	// primitive.
	down            bool
	blackholed      int64
	blackholedBytes int64

	pool      *packet.Pool // optional packet freelist; nil = pooling off
	deliverFn func(any)    // deliver, bound once at construction
}

// NewLink creates a link to dst with the given rate and propagation delay.
func NewLink(sched *sim.Scheduler, dst Node, rateBps int64, delay sim.Duration) *Link {
	if rateBps <= 0 {
		panic("netsim: link rate must be positive")
	}
	if delay < 0 {
		panic("netsim: negative link delay")
	}
	l := &Link{sched: sched, dst: dst, RateBps: rateBps, Delay: delay}
	l.deliverFn = l.deliver
	return l
}

// SetPool attaches a packet freelist; packets dropped by fault injection
// are returned to it. Installed by Topology.EnablePacketPool.
func (l *Link) SetPool(pool *packet.Pool) { l.pool = pool }

// SerializationDelay returns the time to clock out bytes at the link rate.
func (l *Link) SerializationDelay(bytes int) sim.Duration {
	// bytes*8 bits at RateBps bits/sec, in nanoseconds.
	return sim.Duration(int64(bytes) * 8 * int64(sim.Second) / l.RateBps)
}

// SetLoss enables independent random packet loss on the link at the given
// rate in [0, 1], drawn from a stream seeded with seed. Used for fault
// injection; production topologies leave it at zero.
func (l *Link) SetLoss(rate float64, seed uint64) {
	if rate < 0 || rate > 1 {
		panic("netsim: loss rate out of [0,1]")
	}
	l.lossRate = rate
	l.lossRNG = sim.NewRNG(seed)
}

// Lost returns the number of packets dropped by injected random loss.
func (l *Link) Lost() int64 { return l.lost }

// LostBytes returns the bytes dropped by injected random loss.
func (l *Link) LostBytes() int64 { return l.lostBytes }

// SetDown raises or clears a link blackout. While down, every packet
// handed to Propagate is blackholed (counted, then recycled); packets
// already in flight on the wire still deliver. Used by internal/fault for
// deterministic link-failure windows.
func (l *Link) SetDown(down bool) { l.down = down }

// IsDown reports whether the link is currently blacked out.
func (l *Link) IsDown() bool { return l.down }

// Blackholed returns the number of packets dropped by link blackouts.
func (l *Link) Blackholed() int64 { return l.blackholed }

// BlackholedBytes returns the bytes dropped by link blackouts.
func (l *Link) BlackholedBytes() int64 { return l.blackholedBytes }

// SetRate changes the transmission rate mid-run (fault injection: link
// degradation). The port reads the rate at each serialization, so the new
// rate applies from the next packet clocked out.
func (l *Link) SetRate(rateBps int64) {
	if rateBps <= 0 {
		panic("netsim: link rate must be positive")
	}
	l.RateBps = rateBps
}

// SetDelay changes the propagation delay mid-run (fault injection: path
// rerouting / delay jitter). Packets already propagating keep the delay
// they departed with; later packets may therefore arrive out of order,
// exactly as on a real reroute.
func (l *Link) SetDelay(d sim.Duration) {
	if d < 0 {
		panic("netsim: negative link delay")
	}
	l.Delay = d
}

// Propagate schedules delivery of pkt at the destination after the
// propagation delay. The caller is responsible for having accounted for
// serialization time (the Port does this). The link consumes the packet
// on every path: blackholed and lost packets go back to the pool, the
// rest ride the delivery event to the destination node.
//
// state: xfer pkt
func (l *Link) Propagate(pkt *packet.Packet) {
	if pkt.Hop() > maxHops {
		panic(fmt.Sprintf("netsim: packet exceeded %d hops (routing loop?): %v", maxHops, pkt))
	}
	if l.down {
		l.blackholed++
		l.blackholedBytes += int64(pkt.Size())
		l.pool.Put(pkt)
		return
	}
	if l.lossRate > 0 && l.lossRNG.Float64() < l.lossRate {
		l.lost++
		l.lostBytes += int64(pkt.Size())
		l.pool.Put(pkt)
		return
	}
	// Arg-carrying schedule with the once-bound deliverFn: several packets
	// can be propagating on the same link concurrently, and none of them
	// costs a closure.
	l.sched.AfterArg(l.Delay, l.deliverFn, pkt)
}

// deliver hands a propagated packet to the destination node. It runs as a
// scheduler callback — invisible to the static call graph — so it is a hot
// root itself; everything per-packet downstream (switch forwarding, host
// demux, TCP ACK processing, congestion control) inherits the budget from
// here.
//
//hot:path
func (l *Link) deliver(arg any) {
	l.dst.Deliver(arg.(*packet.Packet))
}

// Dst returns the node at the receiving end of the link.
func (l *Link) Dst() Node { return l.dst }
