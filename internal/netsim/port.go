package netsim

import (
	"dctcpplus/internal/check"
	"dctcpplus/internal/packet"
	"dctcpplus/internal/sim"
	"dctcpplus/internal/telemetry"
)

// PortStats counts the traffic handled by one output port.
type PortStats struct {
	EnqueuedPkts  int64
	EnqueuedBytes int64
	DequeuedPkts  int64
	DequeuedBytes int64
	DroppedPkts   int64
	DroppedBytes  int64
	MarkedPkts    int64 // packets whose ECN codepoint was set to CE
	MaxQueueBytes int   // high-water mark of the queue depth
}

// MarkPolicy selects the port's ECN marking discipline.
type MarkPolicy int

const (
	// MarkInstantaneous is the DCTCP switch rule: mark every ECN-capable
	// packet arriving while the instantaneous queue exceeds K. This is
	// what the paper's NetFPGA switches implement.
	MarkInstantaneous MarkPolicy = iota
	// MarkREDLinear marks probabilistically, RED-style: probability 0 at
	// REDMinBytes rising linearly to REDMaxProb at REDMaxBytes, and 1
	// above. Provided as an ablation substrate — many commodity switches
	// only offer RED/ECN, and the DCTCP paper discusses this configuration
	// (min=max=K recovers the instantaneous rule).
	MarkREDLinear
	// MarkPhantomQueue implements HULL's Phantom Queue (Alizadeh et al.,
	// NSDI 2012 — §VII names HULL as a composition target): a virtual
	// counter drains at PhantomDrainFactor x link rate and marks once it
	// exceeds PhantomThresholdBytes. Because the phantom queue grows
	// whenever utilization exceeds the drain factor, marking starts before
	// any real queue builds — trading ~ (1 - factor) of bandwidth for
	// near-empty buffers.
	MarkPhantomQueue
)

// PortConfig describes one output port's buffering and AQM behaviour.
type PortConfig struct {
	// BufferBytes is the static buffer associated with the port. Packets
	//inv: BufferBytes >= 1
	// arriving when the queue cannot hold them are tail-dropped. The
	// paper's switches use 128KB per port.
	BufferBytes int

	// MarkThresholdBytes is the DCTCP ECN threshold K: "the switch sets the
	// ECN bit for all the incoming packets once the queue length exceeds
	// the reference buffer threshold K" (§II-A). Zero disables marking
	// (a plain drop-tail port). The paper sets K=32KB.
	MarkThresholdBytes int

	// Policy selects the marking discipline (default MarkInstantaneous).
	Policy MarkPolicy
	// REDMinBytes/REDMaxBytes/REDMaxProb parameterize MarkREDLinear.
	REDMinBytes int
	REDMaxBytes int
	REDMaxProb  float64

	// PhantomDrainFactor (gamma, e.g. 0.95) and PhantomThresholdBytes
	// (e.g. 3KB) parameterize MarkPhantomQueue.
	PhantomDrainFactor    float64
	PhantomThresholdBytes int

	// Seed drives the RED coin flips (deterministic per port).
	Seed uint64
}

// HULLPortConfig returns a phantom-queue port preset in the spirit of the
// HULL paper: gamma = 0.95, marking threshold 3KB, on top of the testbed's
// 128KB buffer.
func HULLPortConfig() PortConfig {
	return PortConfig{
		BufferBytes:           128 << 10,
		Policy:                MarkPhantomQueue,
		PhantomDrainFactor:    0.95,
		PhantomThresholdBytes: 3 << 10,
	}
}

// DefaultPortConfig returns the paper's switch settings.
func DefaultPortConfig() PortConfig {
	return PortConfig{BufferBytes: 128 << 10, MarkThresholdBytes: 32 << 10}
}

// Port is an output-queued switch/host port: a byte-limited FIFO drained at
// the attached link's rate. ECN marking happens on enqueue against the
// instantaneous queue occupancy, exactly the DCTCP switch rule.
type Port struct {
	sched *sim.Scheduler
	link  *Link
	cfg   PortConfig

	// q is a power-of-two ring buffer holding the FIFO: qLen packets
	// starting at qHead. A ring (instead of append/slice-off) keeps the
	// backing array at its high-water capacity, so steady-state
	// enqueue/dequeue never allocates.
	q     []*packet.Packet
	qHead int
	qLen  int
	// qBytes is the queue occupancy: tail drop in Enqueue rejects any
	// arrival that would push it past the static buffer.
	//inv: 0 <= qBytes && qBytes <= cfg.BufferBytes
	qBytes int
	busy   bool
	paused bool // fault injection: frozen serialization (host stall)
	rng    *sim.RNG
	pool   *packet.Pool // optional packet freelist; nil = pooling off
	txFn   func(any)    // transmitDone, bound once at construction

	// Phantom queue state (MarkPhantomQueue).
	vqBytes  float64
	vqLastAt sim.Time

	stats PortStats

	// Telemetry instruments; nil (no-op) unless AttachTelemetry was called.
	mEnqueued   *telemetry.Counter
	mDropped    *telemetry.Counter
	mMarked     *telemetry.Counter
	mQueueDepth *telemetry.Histogram

	// OnDrop, if set, is invoked for every tail-dropped packet (used by
	// tests and loss accounting).
	OnDrop func(pkt *packet.Packet)
	// OnQueueChange, if set, observes every enqueue/dequeue with the new
	// occupancy in bytes (used by queue-length tracers).
	OnQueueChange func(now sim.Time, qBytes int)
	// OnTransmit, if set, observes every packet as it begins serialization
	// onto the link (the packet-capture hook used by trace.PacketTap).
	OnTransmit func(pkt *packet.Packet)
}

// NewPort creates a port feeding the given link.
func NewPort(sched *sim.Scheduler, link *Link, cfg PortConfig) *Port {
	if cfg.BufferBytes <= 0 {
		panic("netsim: port buffer must be positive")
	}
	if cfg.Policy == MarkREDLinear {
		switch {
		case cfg.REDMinBytes < 0 || cfg.REDMaxBytes < cfg.REDMinBytes:
			panic("netsim: invalid RED thresholds")
		case cfg.REDMaxProb < 0 || cfg.REDMaxProb > 1:
			panic("netsim: RED max probability out of [0,1]")
		}
	}
	if cfg.Policy == MarkPhantomQueue {
		switch {
		case cfg.PhantomDrainFactor <= 0 || cfg.PhantomDrainFactor > 1:
			panic("netsim: phantom drain factor out of (0,1]")
		case cfg.PhantomThresholdBytes <= 0:
			panic("netsim: phantom threshold must be positive")
		}
	}
	p := &Port{sched: sched, link: link, cfg: cfg, rng: sim.NewRNG(cfg.Seed ^ 0x9047)}
	p.txFn = p.transmitDone
	return p
}

// SetPool attaches a packet freelist; tail-dropped packets are returned to
// it. Installed by Topology.EnablePacketPool.
func (p *Port) SetPool(pool *packet.Pool) { p.pool = pool }

// push appends a packet at the tail of the ring, growing it when full.
// The ring slot is the sanctioned long-lived store for an in-queue packet:
// ownership parks here until pop hands it to the serializer.
//
// state: xfer pkt
// state: sink
func (p *Port) push(pkt *packet.Packet) {
	if p.qLen == len(p.q) {
		p.grow()
	}
	p.q[(p.qHead+p.qLen)&(len(p.q)-1)] = pkt
	//lint:allow overflow every queued packet occupies at least HeaderBytes of the finite buffer, so qLen is bounded by BufferBytes/HeaderBytes
	p.qLen++
}

// pop removes and returns the head-of-line packet. Caller checks qLen > 0.
// Ownership leaves the ring with the packet.
//
// state: mint
func (p *Port) pop() *packet.Packet {
	pkt := p.q[p.qHead]
	p.q[p.qHead] = nil
	p.qHead = (p.qHead + 1) & (len(p.q) - 1)
	//lint:allow overflow every caller checks qLen > 0 before pop, per the contract above
	p.qLen--
	return pkt
}

// grow doubles the ring, unwrapping the queue to the front.
func (p *Port) grow() {
	n := 2 * len(p.q)
	if n == 0 {
		n = 16
	}
	//lint:allow hotalloc ring growth is amortized: capacity doubles to the queue's high-water mark and is then reused forever
	nq := make([]*packet.Packet, n)
	for i := 0; i < p.qLen; i++ {
		nq[i] = p.q[(p.qHead+i)&(len(p.q)-1)]
	}
	p.q = nq
	p.qHead = 0
}

// phantomUpdate drains the virtual queue for elapsed time and adds the
// arriving packet, returning the post-arrival occupancy.
func (p *Port) phantomUpdate(size int) float64 {
	now := p.sched.Now()
	elapsed := now.Sub(p.vqLastAt).Seconds()
	p.vqLastAt = now
	drain := p.cfg.PhantomDrainFactor * float64(p.link.RateBps) / 8 * elapsed
	p.vqBytes -= drain
	if p.vqBytes < 0 {
		p.vqBytes = 0
	}
	p.vqBytes += float64(size)
	return p.vqBytes
}

// PhantomQueueBytes returns the current virtual-queue occupancy (only
// meaningful under MarkPhantomQueue).
func (p *Port) PhantomQueueBytes() float64 { return p.vqBytes }

// shouldMark applies the configured marking discipline against the queue
// occupancy seen by an arriving packet.
func (p *Port) shouldMark(qBytes int) bool {
	switch p.cfg.Policy {
	case MarkInstantaneous:
		return p.cfg.MarkThresholdBytes > 0 && qBytes > p.cfg.MarkThresholdBytes
	case MarkREDLinear:
		switch {
		case qBytes <= p.cfg.REDMinBytes:
			return false
		case qBytes >= p.cfg.REDMaxBytes:
			return true
		default:
			span := float64(p.cfg.REDMaxBytes - p.cfg.REDMinBytes)
			prob := p.cfg.REDMaxProb * float64(qBytes-p.cfg.REDMinBytes) / span
			return p.rng.Float64() < prob
		}
	case MarkPhantomQueue:
		// Decision is made against the virtual queue, updated by Enqueue
		// before calling shouldMark; qBytes (the real queue) is unused.
		return p.vqBytes > float64(p.cfg.PhantomThresholdBytes)
	default:
		panic("netsim: unknown mark policy")
	}
}

// AttachTelemetry registers the port's instruments on reg under the given
// labels: enqueue/drop/CE-mark counters and a queue-depth histogram
// observed at every enqueue. With a nil registry the instruments stay nil
// and every update is a no-op.
func (p *Port) AttachTelemetry(reg *telemetry.Registry, labels ...telemetry.Label) {
	p.mEnqueued = reg.Counter("netsim_port_enqueued_pkts_total", labels...)
	p.mDropped = reg.Counter("netsim_port_dropped_pkts_total", labels...)
	p.mMarked = reg.Counter("netsim_port_ce_marked_pkts_total", labels...)
	p.mQueueDepth = reg.Histogram("netsim_port_queue_depth_bytes", labels...)
}

// QueueBytes returns the instantaneous queue occupancy in bytes.
func (p *Port) QueueBytes() int { return p.qBytes }

// QueueLen returns the number of queued packets.
func (p *Port) QueueLen() int { return p.qLen }

// Stats returns a snapshot of the port counters.
func (p *Port) Stats() PortStats { return p.stats }

// Config returns the port configuration.
func (p *Port) Config() PortConfig { return p.cfg }

// Link returns the attached outgoing link.
func (p *Port) Link() *Link { return p.link }

// SetBufferBytes changes the port's static buffer mid-run (fault
// injection: buffer resizing). Shrinking below the current occupancy is
// allowed — queued packets stay, but no arrival is admitted until the
// queue drains under the new limit.
func (p *Port) SetBufferBytes(n int) {
	if n <= 0 {
		panic("netsim: port buffer must be positive")
	}
	p.cfg.BufferBytes = n
}

// SetMarkThreshold changes the ECN marking threshold K mid-run (fault
// injection: AQM parameter drift). Zero disables marking.
func (p *Port) SetMarkThreshold(n int) {
	if n < 0 {
		panic("netsim: negative mark threshold")
	}
	p.cfg.MarkThresholdBytes = n
}

// Pause freezes the port: packets still enqueue (and tail-drop against the
// buffer), but nothing new starts serializing until Resume. A packet
// already being clocked out finishes normally. This is the internal/fault
// host-stall primitive (a GC-pause-style sender freeze).
func (p *Port) Pause() { p.paused = true }

// Resume unfreezes a paused port and, if the queue is nonempty and no
// packet is mid-serialization, restarts transmission.
func (p *Port) Resume() {
	p.paused = false
	if !p.busy && p.qLen > 0 {
		p.transmitNext()
	}
}

// Paused reports whether the port is currently frozen.
func (p *Port) Paused() bool { return p.paused }

// Enqueue accepts a packet for transmission. If the static buffer cannot
// hold it, the packet is dropped (tail drop). If the instantaneous queue
// occupancy exceeds the marking threshold K and the packet is ECN-capable,
// its codepoint is set to CE. Either way the packet is consumed: dropped
// ones return to the pool, accepted ones park in the ring until
// transmission.
//
// state: xfer pkt
//
//hot:path
func (p *Port) Enqueue(pkt *packet.Packet) {
	size := pkt.Size()
	if p.qBytes+size > p.cfg.BufferBytes {
		p.stats.DroppedPkts++
		p.stats.DroppedBytes += int64(size)
		p.mDropped.Add(1)
		if p.OnDrop != nil {
			p.OnDrop(pkt)
		}
		p.pool.Put(pkt)
		return
	}
	// Marking rule: evaluate the discipline against the queue length seen
	// by the arriving packet. Marking applies only to ECN-capable packets;
	// NotECT traffic (plain TCP without ECN) would be dropped by a real
	// RED/ECN switch only above the buffer limit, which tail drop covers.
	// The phantom queue accounts every accepted arrival (ECT or not), as
	// HULL's virtual counter sits on the link, not the transport.
	if p.cfg.Policy == MarkPhantomQueue {
		p.phantomUpdate(size)
	}
	if pkt.ECN == packet.ECT && p.shouldMark(p.qBytes) {
		pkt.ECN = packet.CE
		p.stats.MarkedPkts++
		p.mMarked.Add(1)
	}
	p.push(pkt)
	p.qBytes += size
	check.AtMost("netsim.port queue bytes", int64(p.qBytes), int64(p.cfg.BufferBytes))
	p.stats.EnqueuedPkts++
	p.stats.EnqueuedBytes += int64(size)
	p.mEnqueued.Add(1)
	p.mQueueDepth.Observe(int64(p.qBytes))
	if p.qBytes > p.stats.MaxQueueBytes {
		p.stats.MaxQueueBytes = p.qBytes
	}
	if p.OnQueueChange != nil {
		p.OnQueueChange(p.sched.Now(), p.qBytes)
	}
	if !p.busy {
		p.transmitNext()
	}
}

// transmitNext clocks the head-of-line packet onto the link, holding the
// port busy for its serialization time, then hands it to the link for
// propagation and continues with the next queued packet.
func (p *Port) transmitNext() {
	if p.qLen == 0 || p.paused {
		p.busy = false
		return
	}
	p.busy = true
	pkt := p.pop()
	size := pkt.Size()
	p.qBytes -= size
	check.NonNegative("netsim.port queue bytes", int64(p.qBytes))
	p.stats.DequeuedPkts++
	p.stats.DequeuedBytes += int64(size)
	if p.OnQueueChange != nil {
		p.OnQueueChange(p.sched.Now(), p.qBytes)
	}
	if p.OnTransmit != nil {
		p.OnTransmit(pkt)
	}
	// Arg-carrying schedule with the once-bound txFn: the per-packet path
	// creates no closure (a fresh closure capturing pkt would allocate).
	p.sched.AfterArg(p.link.SerializationDelay(size), p.txFn, pkt)
}

// transmitDone fires when the head-of-line packet finishes serializing:
// hand it to the link for propagation and start on the next packet. It runs
// as a scheduler callback, which the call graph cannot see through — so it
// is a hot root in its own right.
//
//hot:path
func (p *Port) transmitDone(arg any) {
	p.link.Propagate(arg.(*packet.Packet))
	p.transmitNext()
}
